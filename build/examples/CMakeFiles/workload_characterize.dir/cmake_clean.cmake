file(REMOVE_RECURSE
  "CMakeFiles/workload_characterize.dir/workload_characterize.cpp.o"
  "CMakeFiles/workload_characterize.dir/workload_characterize.cpp.o.d"
  "workload_characterize"
  "workload_characterize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_characterize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
