# Empty dependencies file for workload_characterize.
# This may be replaced when dependencies are built.
