# Empty compiler generated dependencies file for plan_similarity.
# This may be replaced when dependencies are built.
