file(REMOVE_RECURSE
  "CMakeFiles/plan_similarity.dir/plan_similarity.cpp.o"
  "CMakeFiles/plan_similarity.dir/plan_similarity.cpp.o.d"
  "plan_similarity"
  "plan_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
