# Empty dependencies file for config_recommendation.
# This may be replaced when dependencies are built.
