file(REMOVE_RECURSE
  "CMakeFiles/config_recommendation.dir/config_recommendation.cpp.o"
  "CMakeFiles/config_recommendation.dir/config_recommendation.cpp.o.d"
  "config_recommendation"
  "config_recommendation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_recommendation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
