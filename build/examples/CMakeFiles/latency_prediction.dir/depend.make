# Empty dependencies file for latency_prediction.
# This may be replaced when dependencies are built.
