file(REMOVE_RECURSE
  "CMakeFiles/latency_prediction.dir/latency_prediction.cpp.o"
  "CMakeFiles/latency_prediction.dir/latency_prediction.cpp.o.d"
  "latency_prediction"
  "latency_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
