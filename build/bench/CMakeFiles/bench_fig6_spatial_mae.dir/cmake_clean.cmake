file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_spatial_mae.dir/bench_fig6_spatial_mae.cc.o"
  "CMakeFiles/bench_fig6_spatial_mae.dir/bench_fig6_spatial_mae.cc.o.d"
  "bench_fig6_spatial_mae"
  "bench_fig6_spatial_mae.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_spatial_mae.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
