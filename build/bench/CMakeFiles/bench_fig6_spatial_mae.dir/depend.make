# Empty dependencies file for bench_fig6_spatial_mae.
# This may be replaced when dependencies are built.
