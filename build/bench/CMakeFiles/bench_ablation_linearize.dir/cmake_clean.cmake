file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_linearize.dir/bench_ablation_linearize.cc.o"
  "CMakeFiles/bench_ablation_linearize.dir/bench_ablation_linearize.cc.o.d"
  "bench_ablation_linearize"
  "bench_ablation_linearize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_linearize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
