# Empty dependencies file for bench_ablation_linearize.
# This may be replaced when dependencies are built.
