file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_8_tpcds_baselines.dir/bench_fig7_8_tpcds_baselines.cc.o"
  "CMakeFiles/bench_fig7_8_tpcds_baselines.dir/bench_fig7_8_tpcds_baselines.cc.o.d"
  "bench_fig7_8_tpcds_baselines"
  "bench_fig7_8_tpcds_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_8_tpcds_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
