# Empty dependencies file for bench_fig7_8_tpcds_baselines.
# This may be replaced when dependencies are built.
