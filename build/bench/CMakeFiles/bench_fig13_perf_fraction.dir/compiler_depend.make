# Empty compiler generated dependencies file for bench_fig13_perf_fraction.
# This may be replaced when dependencies are built.
