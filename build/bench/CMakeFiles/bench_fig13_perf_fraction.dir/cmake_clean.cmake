file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_perf_fraction.dir/bench_fig13_perf_fraction.cc.o"
  "CMakeFiles/bench_fig13_perf_fraction.dir/bench_fig13_perf_fraction.cc.o.d"
  "bench_fig13_perf_fraction"
  "bench_fig13_perf_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_perf_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
