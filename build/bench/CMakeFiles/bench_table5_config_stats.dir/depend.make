# Empty dependencies file for bench_table5_config_stats.
# This may be replaced when dependencies are built.
