# Empty dependencies file for bench_fig5_spatial_variability.
# This may be replaced when dependencies are built.
