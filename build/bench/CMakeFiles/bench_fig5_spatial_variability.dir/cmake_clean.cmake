file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_spatial_variability.dir/bench_fig5_spatial_variability.cc.o"
  "CMakeFiles/bench_fig5_spatial_variability.dir/bench_fig5_spatial_variability.cc.o.d"
  "bench_fig5_spatial_variability"
  "bench_fig5_spatial_variability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_spatial_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
