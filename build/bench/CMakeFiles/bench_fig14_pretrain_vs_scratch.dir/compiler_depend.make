# Empty compiler generated dependencies file for bench_fig14_pretrain_vs_scratch.
# This may be replaced when dependencies are built.
