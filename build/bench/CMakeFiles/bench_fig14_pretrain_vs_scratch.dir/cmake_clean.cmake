file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_pretrain_vs_scratch.dir/bench_fig14_pretrain_vs_scratch.cc.o"
  "CMakeFiles/bench_fig14_pretrain_vs_scratch.dir/bench_fig14_pretrain_vs_scratch.cc.o.d"
  "bench_fig14_pretrain_vs_scratch"
  "bench_fig14_pretrain_vs_scratch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_pretrain_vs_scratch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
