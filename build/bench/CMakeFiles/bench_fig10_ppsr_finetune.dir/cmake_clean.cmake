file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_ppsr_finetune.dir/bench_fig10_ppsr_finetune.cc.o"
  "CMakeFiles/bench_fig10_ppsr_finetune.dir/bench_fig10_ppsr_finetune.cc.o.d"
  "bench_fig10_ppsr_finetune"
  "bench_fig10_ppsr_finetune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_ppsr_finetune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
