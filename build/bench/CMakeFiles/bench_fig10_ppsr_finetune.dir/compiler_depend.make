# Empty compiler generated dependencies file for bench_fig10_ppsr_finetune.
# This may be replaced when dependencies are built.
