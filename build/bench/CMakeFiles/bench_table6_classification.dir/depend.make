# Empty dependencies file for bench_table6_classification.
# This may be replaced when dependencies are built.
