file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_classification.dir/bench_table6_classification.cc.o"
  "CMakeFiles/bench_table6_classification.dir/bench_table6_classification.cc.o.d"
  "bench_table6_classification"
  "bench_table6_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
