file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_embedding_size.dir/bench_fig9_embedding_size.cc.o"
  "CMakeFiles/bench_fig9_embedding_size.dir/bench_fig9_embedding_size.cc.o.d"
  "bench_fig9_embedding_size"
  "bench_fig9_embedding_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_embedding_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
