# Empty dependencies file for bench_fig12_perf_pretrain.
# This may be replaced when dependencies are built.
