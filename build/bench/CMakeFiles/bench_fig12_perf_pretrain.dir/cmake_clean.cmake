file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_perf_pretrain.dir/bench_fig12_perf_pretrain.cc.o"
  "CMakeFiles/bench_fig12_perf_pretrain.dir/bench_fig12_perf_pretrain.cc.o.d"
  "bench_fig12_perf_pretrain"
  "bench_fig12_perf_pretrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_perf_pretrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
