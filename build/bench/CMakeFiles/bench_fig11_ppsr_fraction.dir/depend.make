# Empty dependencies file for bench_fig11_ppsr_fraction.
# This may be replaced when dependencies are built.
