# Empty compiler generated dependencies file for bench_fig15_multicolumn.
# This may be replaced when dependencies are built.
