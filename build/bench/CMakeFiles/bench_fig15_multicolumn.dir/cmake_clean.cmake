file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_multicolumn.dir/bench_fig15_multicolumn.cc.o"
  "CMakeFiles/bench_fig15_multicolumn.dir/bench_fig15_multicolumn.cc.o.d"
  "bench_fig15_multicolumn"
  "bench_fig15_multicolumn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_multicolumn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
