file(REMOVE_RECURSE
  "libqpe.a"
)
