# Empty dependencies file for qpe.
# This may be replaced when dependencies are built.
