
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/qpe.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/qpe.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/catalog/schemas.cc" "src/CMakeFiles/qpe.dir/catalog/schemas.cc.o" "gcc" "src/CMakeFiles/qpe.dir/catalog/schemas.cc.o.d"
  "/root/repo/src/config/db_config.cc" "src/CMakeFiles/qpe.dir/config/db_config.cc.o" "gcc" "src/CMakeFiles/qpe.dir/config/db_config.cc.o.d"
  "/root/repo/src/config/lhs_sampler.cc" "src/CMakeFiles/qpe.dir/config/lhs_sampler.cc.o" "gcc" "src/CMakeFiles/qpe.dir/config/lhs_sampler.cc.o.d"
  "/root/repo/src/data/dataset_io.cc" "src/CMakeFiles/qpe.dir/data/dataset_io.cc.o" "gcc" "src/CMakeFiles/qpe.dir/data/dataset_io.cc.o.d"
  "/root/repo/src/data/datasets.cc" "src/CMakeFiles/qpe.dir/data/datasets.cc.o" "gcc" "src/CMakeFiles/qpe.dir/data/datasets.cc.o.d"
  "/root/repo/src/data/features.cc" "src/CMakeFiles/qpe.dir/data/features.cc.o" "gcc" "src/CMakeFiles/qpe.dir/data/features.cc.o.d"
  "/root/repo/src/data/plan_corpus.cc" "src/CMakeFiles/qpe.dir/data/plan_corpus.cc.o" "gcc" "src/CMakeFiles/qpe.dir/data/plan_corpus.cc.o.d"
  "/root/repo/src/encoder/encoder_suite.cc" "src/CMakeFiles/qpe.dir/encoder/encoder_suite.cc.o" "gcc" "src/CMakeFiles/qpe.dir/encoder/encoder_suite.cc.o.d"
  "/root/repo/src/encoder/performance_encoder.cc" "src/CMakeFiles/qpe.dir/encoder/performance_encoder.cc.o" "gcc" "src/CMakeFiles/qpe.dir/encoder/performance_encoder.cc.o.d"
  "/root/repo/src/encoder/ppsr.cc" "src/CMakeFiles/qpe.dir/encoder/ppsr.cc.o" "gcc" "src/CMakeFiles/qpe.dir/encoder/ppsr.cc.o.d"
  "/root/repo/src/encoder/structure_encoder.cc" "src/CMakeFiles/qpe.dir/encoder/structure_encoder.cc.o" "gcc" "src/CMakeFiles/qpe.dir/encoder/structure_encoder.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/CMakeFiles/qpe.dir/nn/module.cc.o" "gcc" "src/CMakeFiles/qpe.dir/nn/module.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/CMakeFiles/qpe.dir/nn/optimizer.cc.o" "gcc" "src/CMakeFiles/qpe.dir/nn/optimizer.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/CMakeFiles/qpe.dir/nn/serialize.cc.o" "gcc" "src/CMakeFiles/qpe.dir/nn/serialize.cc.o.d"
  "/root/repo/src/nn/tensor.cc" "src/CMakeFiles/qpe.dir/nn/tensor.cc.o" "gcc" "src/CMakeFiles/qpe.dir/nn/tensor.cc.o.d"
  "/root/repo/src/nn/transformer.cc" "src/CMakeFiles/qpe.dir/nn/transformer.cc.o" "gcc" "src/CMakeFiles/qpe.dir/nn/transformer.cc.o.d"
  "/root/repo/src/plan/explain.cc" "src/CMakeFiles/qpe.dir/plan/explain.cc.o" "gcc" "src/CMakeFiles/qpe.dir/plan/explain.cc.o.d"
  "/root/repo/src/plan/linearize.cc" "src/CMakeFiles/qpe.dir/plan/linearize.cc.o" "gcc" "src/CMakeFiles/qpe.dir/plan/linearize.cc.o.d"
  "/root/repo/src/plan/plan_node.cc" "src/CMakeFiles/qpe.dir/plan/plan_node.cc.o" "gcc" "src/CMakeFiles/qpe.dir/plan/plan_node.cc.o.d"
  "/root/repo/src/plan/serialize.cc" "src/CMakeFiles/qpe.dir/plan/serialize.cc.o" "gcc" "src/CMakeFiles/qpe.dir/plan/serialize.cc.o.d"
  "/root/repo/src/plan/taxonomy.cc" "src/CMakeFiles/qpe.dir/plan/taxonomy.cc.o" "gcc" "src/CMakeFiles/qpe.dir/plan/taxonomy.cc.o.d"
  "/root/repo/src/simdb/executor.cc" "src/CMakeFiles/qpe.dir/simdb/executor.cc.o" "gcc" "src/CMakeFiles/qpe.dir/simdb/executor.cc.o.d"
  "/root/repo/src/simdb/planner.cc" "src/CMakeFiles/qpe.dir/simdb/planner.cc.o" "gcc" "src/CMakeFiles/qpe.dir/simdb/planner.cc.o.d"
  "/root/repo/src/simdb/workload_runner.cc" "src/CMakeFiles/qpe.dir/simdb/workload_runner.cc.o" "gcc" "src/CMakeFiles/qpe.dir/simdb/workload_runner.cc.o.d"
  "/root/repo/src/simdb/workloads.cc" "src/CMakeFiles/qpe.dir/simdb/workloads.cc.o" "gcc" "src/CMakeFiles/qpe.dir/simdb/workloads.cc.o.d"
  "/root/repo/src/smatch/smatch.cc" "src/CMakeFiles/qpe.dir/smatch/smatch.cc.o" "gcc" "src/CMakeFiles/qpe.dir/smatch/smatch.cc.o.d"
  "/root/repo/src/tasks/baselines.cc" "src/CMakeFiles/qpe.dir/tasks/baselines.cc.o" "gcc" "src/CMakeFiles/qpe.dir/tasks/baselines.cc.o.d"
  "/root/repo/src/tasks/classifier.cc" "src/CMakeFiles/qpe.dir/tasks/classifier.cc.o" "gcc" "src/CMakeFiles/qpe.dir/tasks/classifier.cc.o.d"
  "/root/repo/src/tasks/embeddings.cc" "src/CMakeFiles/qpe.dir/tasks/embeddings.cc.o" "gcc" "src/CMakeFiles/qpe.dir/tasks/embeddings.cc.o.d"
  "/root/repo/src/tasks/knob_importance.cc" "src/CMakeFiles/qpe.dir/tasks/knob_importance.cc.o" "gcc" "src/CMakeFiles/qpe.dir/tasks/knob_importance.cc.o.d"
  "/root/repo/src/tasks/latency_model.cc" "src/CMakeFiles/qpe.dir/tasks/latency_model.cc.o" "gcc" "src/CMakeFiles/qpe.dir/tasks/latency_model.cc.o.d"
  "/root/repo/src/tasks/qppnet.cc" "src/CMakeFiles/qpe.dir/tasks/qppnet.cc.o" "gcc" "src/CMakeFiles/qpe.dir/tasks/qppnet.cc.o.d"
  "/root/repo/src/tasks/workload_similarity.cc" "src/CMakeFiles/qpe.dir/tasks/workload_similarity.cc.o" "gcc" "src/CMakeFiles/qpe.dir/tasks/workload_similarity.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/qpe.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/qpe.dir/util/rng.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/CMakeFiles/qpe.dir/util/stats.cc.o" "gcc" "src/CMakeFiles/qpe.dir/util/stats.cc.o.d"
  "/root/repo/src/util/table_printer.cc" "src/CMakeFiles/qpe.dir/util/table_printer.cc.o" "gcc" "src/CMakeFiles/qpe.dir/util/table_printer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
