# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/config_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/smatch_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/simdb_test[1]_include.cmake")
include("/root/repo/build/tests/nn_tensor_test[1]_include.cmake")
include("/root/repo/build/tests/nn_module_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/encoder_test[1]_include.cmake")
include("/root/repo/build/tests/tasks_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/explain_suite_test[1]_include.cmake")
include("/root/repo/build/tests/executor_detail_test[1]_include.cmake")
include("/root/repo/build/tests/nn_gradcheck_test[1]_include.cmake")
include("/root/repo/build/tests/dataset_io_test[1]_include.cmake")
include("/root/repo/build/tests/knob_importance_test[1]_include.cmake")
include("/root/repo/build/tests/workload_stats_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
