add_test([=[IntegrationTest.PretrainCheckpointLoadAndServeBothTasks]=]  /root/repo/build/tests/integration_test [==[--gtest_filter=IntegrationTest.PretrainCheckpointLoadAndServeBothTasks]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[IntegrationTest.PretrainCheckpointLoadAndServeBothTasks]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  integration_test_TESTS IntegrationTest.PretrainCheckpointLoadAndServeBothTasks)
