# Empty compiler generated dependencies file for smatch_test.
# This may be replaced when dependencies are built.
