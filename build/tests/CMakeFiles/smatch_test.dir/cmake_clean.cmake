file(REMOVE_RECURSE
  "CMakeFiles/smatch_test.dir/smatch_test.cc.o"
  "CMakeFiles/smatch_test.dir/smatch_test.cc.o.d"
  "smatch_test"
  "smatch_test.pdb"
  "smatch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smatch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
