file(REMOVE_RECURSE
  "CMakeFiles/config_test.dir/config_test.cc.o"
  "CMakeFiles/config_test.dir/config_test.cc.o.d"
  "config_test"
  "config_test.pdb"
  "config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
