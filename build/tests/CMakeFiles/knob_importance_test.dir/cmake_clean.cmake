file(REMOVE_RECURSE
  "CMakeFiles/knob_importance_test.dir/knob_importance_test.cc.o"
  "CMakeFiles/knob_importance_test.dir/knob_importance_test.cc.o.d"
  "knob_importance_test"
  "knob_importance_test.pdb"
  "knob_importance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knob_importance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
