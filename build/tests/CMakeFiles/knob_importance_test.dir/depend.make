# Empty dependencies file for knob_importance_test.
# This may be replaced when dependencies are built.
