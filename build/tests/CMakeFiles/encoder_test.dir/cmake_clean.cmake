file(REMOVE_RECURSE
  "CMakeFiles/encoder_test.dir/encoder_test.cc.o"
  "CMakeFiles/encoder_test.dir/encoder_test.cc.o.d"
  "encoder_test"
  "encoder_test.pdb"
  "encoder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encoder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
