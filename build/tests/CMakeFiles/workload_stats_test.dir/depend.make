# Empty dependencies file for workload_stats_test.
# This may be replaced when dependencies are built.
