file(REMOVE_RECURSE
  "CMakeFiles/workload_stats_test.dir/workload_stats_test.cc.o"
  "CMakeFiles/workload_stats_test.dir/workload_stats_test.cc.o.d"
  "workload_stats_test"
  "workload_stats_test.pdb"
  "workload_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
