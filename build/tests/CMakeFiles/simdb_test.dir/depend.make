# Empty dependencies file for simdb_test.
# This may be replaced when dependencies are built.
