file(REMOVE_RECURSE
  "CMakeFiles/simdb_test.dir/simdb_test.cc.o"
  "CMakeFiles/simdb_test.dir/simdb_test.cc.o.d"
  "simdb_test"
  "simdb_test.pdb"
  "simdb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
