# Empty dependencies file for executor_detail_test.
# This may be replaced when dependencies are built.
