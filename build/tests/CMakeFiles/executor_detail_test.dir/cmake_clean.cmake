file(REMOVE_RECURSE
  "CMakeFiles/executor_detail_test.dir/executor_detail_test.cc.o"
  "CMakeFiles/executor_detail_test.dir/executor_detail_test.cc.o.d"
  "executor_detail_test"
  "executor_detail_test.pdb"
  "executor_detail_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/executor_detail_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
