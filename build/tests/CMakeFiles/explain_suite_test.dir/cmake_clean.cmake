file(REMOVE_RECURSE
  "CMakeFiles/explain_suite_test.dir/explain_suite_test.cc.o"
  "CMakeFiles/explain_suite_test.dir/explain_suite_test.cc.o.d"
  "explain_suite_test"
  "explain_suite_test.pdb"
  "explain_suite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_suite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
