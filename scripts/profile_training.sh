#!/usr/bin/env bash
# One-command training profile: builds bench_micro in a dedicated
# Release+gprof tree (build-profile, shared with profile_serving.sh), runs
# the training-step benchmarks once, and prints the top-10 flat-profile
# rows. This is the decomposition tool behind the packed training work —
# it answers "where do training cycles actually go" (packed forward,
# backward kernels, optimizer, dataset assembly) without guessing from
# epoch-time deltas.
#
# gprof instead of perf: the container images this runs in have binutils
# (gprof) but no perf_event access. -pg instrumentation perturbs the
# absolute numbers a little, so read the *shares*, not the ns — the
# regression gate owns absolute numbers.
#
# Usage: scripts/profile_training.sh [top_n]
#   QPE_PROFILE_SMOKE=1  cap the benchmark time so the script doubles as a
#                        CI smoke test of the profiling toolchain itself.
set -euo pipefail

cd "$(dirname "$0")/.."

TOP_N="${1:-10}"
BUILD_DIR="${QPE_PROFILE_BUILD_DIR:-build-profile}"

if ! command -v gprof >/dev/null 2>&1; then
  echo "ERROR: gprof not found on PATH (install binutils)"
  exit 1
fi

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_CXX_FLAGS=-pg -DCMAKE_EXE_LINKER_FLAGS=-pg >/dev/null
cmake --build "${BUILD_DIR}" --target bench_micro -j"$(nproc)"

# gmon.out lands in the working directory; keep it out of the repo root.
PROFILE_DIR="$(mktemp -d /tmp/qpe_profile.XXXXXX)"
trap 'rm -rf "${PROFILE_DIR}"' EXIT

BENCH="$(pwd)/${BUILD_DIR}/bench/bench_micro"
# Single-threaded runs only (BM_TrainStepPpsr/1): gprof's sampling only
# covers the main thread, so multi-threaded rows would under-attribute the
# shard work. The in-process train_step_speedup A/B that bench_micro runs
# at startup profiles both the per-plan and packed paths for free.
MIN_TIME=0.5
if [[ "${QPE_PROFILE_SMOKE:-0}" != "0" ]]; then
  MIN_TIME=0.05
fi
(
  cd "${PROFILE_DIR}"
  "${BENCH}" \
    --benchmark_filter='BM_TrainStepPpsr/1|BM_TrainStepPerfEncoder/1' \
    --benchmark_min_time="${MIN_TIME}" >/dev/null
)

if [[ ! -f "${PROFILE_DIR}/gmon.out" ]]; then
  echo "ERROR: bench_micro produced no gmon.out (built without -pg?)"
  exit 1
fi

echo
echo "== top ${TOP_N} functions by flat self-time (gprof, bench_micro training) =="
# -b: skip the explanatory boilerplate; -p: flat profile only. The first
# 5 lines of -b -p output are the table header.
gprof -b -p "${BENCH}" "${PROFILE_DIR}/gmon.out" | head -n "$((TOP_N + 5))"
