#!/usr/bin/env bash
# Builds the project, runs the full test suite, and regenerates every paper
# table/figure, capturing outputs into test_output.txt / bench_output.txt at
# the repo root. This is the one-command reproduction of EXPERIMENTS.md.
set -uo pipefail

cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

# Fault-tolerance verification: ASan robustness suites, fault injection,
# and the crash-resume smoke (see scripts/verify_robustness.sh).
./scripts/verify_robustness.sh 2>&1 | tee -a test_output.txt

# Profiling-toolchain smoke: build the gprof tree and take capped-workload
# flat profiles of bench_serving and the training benchmarks (see
# scripts/profile_serving.sh and scripts/profile_training.sh for the
# full-workload versions used when chasing a regression).
QPE_PROFILE_SMOKE=1 ./scripts/profile_serving.sh 2>&1 | tee -a test_output.txt
QPE_PROFILE_SMOKE=1 ./scripts/profile_training.sh 2>&1 | tee -a test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "===== $b =====" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
  echo | tee -a bench_output.txt
done
