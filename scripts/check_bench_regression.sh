#!/usr/bin/env bash
# Benchmark regression gate: rebuilds bench_serving and bench_micro from a
# Release tree, runs them to temporary files, and compares the fresh
# numbers against the committed baselines.
#
#   - BENCH_serving.json: a drop of more than 10% on any throughput metric
#     (per-plan, raw-batched, batched-serving, or warm-cache plans/sec)
#     fails with exit 1.
#   - BENCH_micro.json: a cpu_time increase of more than 25% on the
#     training-step benchmarks (BM_TrainStepPpsr, BM_TrainStepPerfEncoder)
#     fails with exit 1. The threshold is coarser than serving because a
#     whole training epoch has more run-to-run variance than the
#     best-of-N serving loops.
#
# Both comparisons refuse baselines recorded from a non-Release build: a
# debug-recorded baseline makes any Release run look like a huge win and
# the gate stops gating. Re-record with scripts/run_bench_baseline.sh.
#
# The committed baseline is a portable-build number; the comparison build
# is portable too, so a QPE_NATIVE-tuned tree never masks (or fakes) a
# regression. CPU-frequency scaling on shared hosts adds real run-to-run
# variance — bench_serving already defends with process-CPU-time and
# best-of repetitions — so the thresholds are deliberately coarse.
#
# Usage: scripts/check_bench_regression.sh [serving_baseline.json] [micro_baseline.json]
set -euo pipefail

cd "$(dirname "$0")/.."

SERVING_BASELINE="${1:-BENCH_serving.json}"
MICRO_BASELINE="${2:-BENCH_micro.json}"
for baseline in "${SERVING_BASELINE}" "${MICRO_BASELINE}"; do
  if [[ ! -f "${baseline}" ]]; then
    echo "missing baseline ${baseline} — run scripts/run_bench_baseline.sh first"
    exit 1
  fi
done

BUILD_DIR="${QPE_BENCH_BUILD_DIR:-build-release}"
cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${BUILD_DIR}" --target bench_serving bench_micro -j"$(nproc)"

FRESH_SERVING="$(mktemp /tmp/bench_serving.XXXXXX.json)"
FRESH_MICRO="$(mktemp /tmp/bench_micro.XXXXXX.json)"
trap 'rm -f "${FRESH_SERVING}" "${FRESH_MICRO}"' EXIT
"./${BUILD_DIR}/bench/bench_serving" "${FRESH_SERVING}"
echo
"./${BUILD_DIR}/bench/bench_micro" \
  --benchmark_filter='BM_TrainStep' \
  --benchmark_min_time=0.2 \
  --benchmark_out="${FRESH_MICRO}" \
  --benchmark_out_format=json

python3 - "${SERVING_BASELINE}" "${FRESH_SERVING}" "${MICRO_BASELINE}" "${FRESH_MICRO}" <<'PY'
import json
import sys

SERVING_THRESHOLD = 0.10   # throughput: fail below (1 - 0.10) x baseline
MICRO_THRESHOLD = 0.25     # cpu_time:   fail above (1 + 0.25) x baseline
SERVING_METRICS = [
    "per_plan_plans_per_sec",
    "raw_batched_plans_per_sec",
    "batched_plans_per_sec",
    "cached_plans_per_sec",
]
MICRO_PREFIXES = ("BM_TrainStepPpsr", "BM_TrainStepPerfEncoder")

with open(sys.argv[1]) as f:
    serving_base = json.load(f)
with open(sys.argv[2]) as f:
    serving_fresh = json.load(f)
with open(sys.argv[3]) as f:
    micro_base = json.load(f)
with open(sys.argv[4]) as f:
    micro_fresh = json.load(f)

failed = False

# A baseline recorded from a debug (or unstamped) build defeats the gate.
base_types = {
    sys.argv[1]: serving_base.get("build_type", ""),
    sys.argv[3]: micro_base.get("context", {}).get("qpe_build_type", ""),
}
for name, build_type in base_types.items():
    if build_type != "Release":
        print(f"FAIL: baseline {name} was recorded from build type "
              f"'{build_type or 'unknown'}', not Release — re-record with "
              "scripts/run_bench_baseline.sh")
        failed = True
if failed:
    sys.exit(1)

print()
print(f"{'metric':<34} {'baseline':>12} {'fresh':>12} {'ratio':>7}")
for metric in SERVING_METRICS:
    base = serving_base.get(metric)
    now = serving_fresh.get(metric)
    if base is None or now is None:
        print(f"{metric:<34} missing from baseline or fresh run")
        failed = True
        continue
    ratio = now / base if base else float("inf")
    flag = ""
    if ratio < 1.0 - SERVING_THRESHOLD:
        flag = "  REGRESSION"
        failed = True
    print(f"{metric:<34} {base:>12.1f} {now:>12.1f} {ratio:>6.2f}x{flag}")


def train_step_times(report):
    times = {}
    for bench in report.get("benchmarks", []):
        name = bench.get("name", "")
        if name.startswith(MICRO_PREFIXES) and bench.get("run_type") != "aggregate":
            times[name] = bench["cpu_time"]
    return times


base_times = train_step_times(micro_base)
fresh_times = train_step_times(micro_fresh)
for name in sorted(base_times):
    base = base_times[name]
    now = fresh_times.get(name)
    if now is None:
        print(f"{name:<34} missing from fresh run")
        failed = True
        continue
    ratio = now / base if base else float("inf")
    flag = ""
    if ratio > 1.0 + MICRO_THRESHOLD:
        flag = "  REGRESSION"
        failed = True
    print(f"{name + ' cpu_time(ms)':<34} {base:>12.2f} {now:>12.2f} "
          f"{ratio:>6.2f}x{flag}")
if not base_times:
    print("no BM_TrainStep benchmarks found in micro baseline")
    failed = True

if failed:
    print("\nFAIL: benchmark regression vs committed baselines")
    sys.exit(1)
print(f"\nOK: serving within {SERVING_THRESHOLD:.0%} and train-step "
      f"cpu_time within {MICRO_THRESHOLD:.0%} of baseline")
PY
