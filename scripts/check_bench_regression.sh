#!/usr/bin/env bash
# Serving-throughput regression gate: rebuilds bench_serving, runs it to a
# temporary file, and compares the fresh numbers against the committed
# BENCH_serving.json baseline. A drop of more than 10% on any throughput
# metric (per-plan, raw-batched, batched-serving, or warm-cache plans/sec)
# fails the script with exit 1.
#
# The committed baseline is a portable-build number; the comparison build
# is portable too, so a QPE_NATIVE-tuned tree never masks (or fakes) a
# regression. CPU-frequency scaling on shared hosts adds real run-to-run
# variance — bench_serving already defends with process-CPU-time and
# best-of repetitions — so the threshold is deliberately coarse (10%).
#
# Usage: scripts/check_bench_regression.sh [baseline.json]
set -euo pipefail

cd "$(dirname "$0")/.."

BASELINE="${1:-BENCH_serving.json}"
if [[ ! -f "${BASELINE}" ]]; then
  echo "missing baseline ${BASELINE} — run scripts/run_bench_baseline.sh first"
  exit 1
fi

cmake -B build -S . >/dev/null
cmake --build build --target bench_serving -j"$(nproc)"

FRESH="$(mktemp /tmp/bench_serving.XXXXXX.json)"
trap 'rm -f "${FRESH}"' EXIT
./build/bench/bench_serving "${FRESH}"

python3 - "${BASELINE}" "${FRESH}" <<'PY'
import json
import sys

THRESHOLD = 0.10
METRICS = [
    "per_plan_plans_per_sec",
    "raw_batched_plans_per_sec",
    "batched_plans_per_sec",
    "cached_plans_per_sec",
]

with open(sys.argv[1]) as f:
    baseline = json.load(f)
with open(sys.argv[2]) as f:
    fresh = json.load(f)

failed = False
print()
print(f"{'metric':<28} {'baseline':>12} {'fresh':>12} {'ratio':>7}")
for metric in METRICS:
    base = baseline.get(metric)
    now = fresh.get(metric)
    if base is None or now is None:
        print(f"{metric:<28} missing from baseline or fresh run")
        failed = True
        continue
    ratio = now / base if base else float("inf")
    flag = ""
    if ratio < 1.0 - THRESHOLD:
        flag = "  REGRESSION"
        failed = True
    print(f"{metric:<28} {base:>12.1f} {now:>12.1f} {ratio:>6.2f}x{flag}")

if failed:
    print(f"\nFAIL: throughput dropped more than {THRESHOLD:.0%} vs baseline")
    sys.exit(1)
print(f"\nOK: all throughput metrics within {THRESHOLD:.0%} of baseline")
PY
