#!/usr/bin/env bash
# Benchmark regression gate: rebuilds bench_serving and bench_micro from a
# Release tree, runs them to temporary files, and compares the fresh
# numbers against the committed baselines.
#
#   - BENCH_serving.json: a drop of more than 10% on any throughput metric
#     (per-plan, raw-batched, batched-serving, int8-quantized, or
#     warm-cache plans/sec) fails with exit 1. The daemon's closed-loop
#     p99 request latency (daemon_p99_ms) is gated too, at a doubling:
#     it is a wall-clock number over a real socket (queueing + IPC
#     included), so it carries more run-to-run variance than the
#     CPU-time throughput metrics — but an unbounded-queue or
#     admission-control regression shows up as far more than 2x.
#     drift_overhead_pct is an absolute gate: the drift sentinel's
#     per-request observation cost must stay under 5% of the daemon's
#     p99 request latency, whatever the baseline recorded.
#     Two absolute speedup floors guard the packed pipeline's reason to
#     exist: raw_batch_speedup (raw batched vs per-plan encode) must stay
#     >= 1.0 and quantized_speedup (int8 vs fp32 batched) must stay
#     >= 1.0 — both regressed silently below break-even once before the
#     floors existed, because the relative gate only compares against
#     whatever the baseline recorded.
#   - BENCH_micro.json: a cpu_time increase of more than 25% on the
#     training-step benchmarks (BM_TrainStepPpsr, BM_TrainStepPerfEncoder)
#     or on the dispatched SIMD kernel benchmarks (BM_MatMulForwardSimd,
#     BM_LayerNormSimd, BM_SoftmaxMaskedSimd, BM_AttentionPackedSimd,
#     BM_Int8Gemm) fails with exit 1. The threshold is coarser than
#     serving because single-process micro loops see more run-to-run
#     frequency variance than the best-of-N serving measurements. The
#     compared statistic is the median-of-repetitions aggregate (the only
#     rows an aggregates-only baseline carries); baselines with raw
#     repetition rows degrade to min-of-N. train_step_speedup — the
#     packed-training step vs per-plan op-chain graphs, stamped into the
#     JSON context by bench_micro itself — holds an absolute >= 1.2 floor
#     like the serving speedup floors, so the packed training win cannot
#     silently regress to break-even.
#
# Both comparisons refuse baselines recorded from a non-Release build: a
# debug-recorded baseline makes any Release run look like a huge win and
# the gate stops gating. They likewise refuse a baseline whose stamped
# SIMD level ("scalar"/"avx2"/"neon") differs from the level the fresh
# binaries dispatch on this machine — comparing a scalar-recorded baseline
# against a vectorized run (or vice versa) measures the ISA, not the code
# change. Re-record with scripts/run_bench_baseline.sh.
#
# The committed baseline is a portable-build number; the comparison build
# is portable too, so a QPE_NATIVE-tuned tree never masks (or fakes) a
# regression. CPU-frequency scaling on shared hosts adds real run-to-run
# variance — bench_serving already defends with process-CPU-time and
# best-of repetitions — so the thresholds are deliberately coarse.
#
# Usage: scripts/check_bench_regression.sh [serving_baseline.json] [micro_baseline.json]
set -euo pipefail

cd "$(dirname "$0")/.."

SERVING_BASELINE="${1:-BENCH_serving.json}"
MICRO_BASELINE="${2:-BENCH_micro.json}"
for baseline in "${SERVING_BASELINE}" "${MICRO_BASELINE}"; do
  if [[ ! -f "${baseline}" ]]; then
    echo "missing baseline ${baseline} — run scripts/run_bench_baseline.sh first"
    exit 1
  fi
done

BUILD_DIR="${QPE_BENCH_BUILD_DIR:-build-release}"
cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${BUILD_DIR}" --target bench_serving bench_micro -j"$(nproc)"

FRESH_SERVING="$(mktemp /tmp/bench_serving.XXXXXX.json)"
FRESH_MICRO="$(mktemp /tmp/bench_micro.XXXXXX.json)"
trap 'rm -f "${FRESH_SERVING}" "${FRESH_MICRO}"' EXIT
"./${BUILD_DIR}/bench/bench_serving" "${FRESH_SERVING}"
echo
"./${BUILD_DIR}/bench/bench_micro" \
  --benchmark_filter='BM_TrainStep|BM_MatMulForwardSimd|BM_LayerNormSimd|BM_SoftmaxMaskedSimd|BM_AttentionPackedSimd|BM_AttentionBlockedSimd|BM_EmbedGatherSimd|BM_Int8Gemm' \
  --benchmark_min_time=0.2 \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_out="${FRESH_MICRO}" \
  --benchmark_out_format=json

python3 - "${SERVING_BASELINE}" "${FRESH_SERVING}" "${MICRO_BASELINE}" "${FRESH_MICRO}" <<'PY'
import json
import sys

SERVING_THRESHOLD = 0.10   # throughput: fail below (1 - 0.10) x baseline
MICRO_THRESHOLD = 0.25     # cpu_time:   fail above (1 + 0.25) x baseline
LATENCY_THRESHOLD = 1.00   # wall p99:   fail above (1 + 1.00) x baseline
SERVING_METRICS = [
    "per_plan_plans_per_sec",
    "raw_batched_plans_per_sec",
    "batched_plans_per_sec",
    "quantized_plans_per_sec",
    "cached_plans_per_sec",
]
SERVING_LATENCY_METRICS = [
    "daemon_p99_ms",
]
MICRO_PREFIXES = (
    "BM_TrainStepPpsr",
    "BM_TrainStepPerfEncoder",
    "BM_MatMulForwardSimd",
    "BM_LayerNormSimd",
    "BM_SoftmaxMaskedSimd",
    "BM_AttentionPackedSimd",
    "BM_AttentionBlockedSimd",
    "BM_EmbedGatherSimd",
    "BM_Int8Gemm",
)
# Absolute floors on the fresh run, independent of the baseline: the
# packed batch path must beat per-plan encode by a real margin, and the
# int8 path must at least tie the fp32 batched path. A fresh run below a
# floor fails even if the committed baseline was already below it. The
# values bake in this container's ±8-10% run-to-run noise: raw batching
# records ~1.45x (floor 1.2 still fails any structural regression), and
# int8 records ~1.06x — a genuine regression (e.g. losing the packed
# int16 tiles) measures ~0.75x, safely below the 0.95 floor, while noise
# around a true ~1.05x stays above it.
SERVING_SPEEDUP_FLOORS = {
    "raw_batch_speedup": 1.2,
    "quantized_speedup": 0.95,
}
# Same idea for training: bench_micro stamps train_step_speedup into its
# JSON context — per-plan op-chain training graphs (QPE_PACKED_TRAIN=0)
# vs the packed columnar forward/backward, best-of-3 single-threaded PPSR
# epochs measured in-process, so the ratio is frequency-insensitive. The
# packed step records ~1.5x on this container; a floor of 1.2 absorbs the
# ±10% noise while still failing any structural regression (losing the
# packed path entirely measures 1.0x).
MICRO_SPEEDUP_FLOORS = {
    "train_step_speedup": 1.2,
}

with open(sys.argv[1]) as f:
    serving_base = json.load(f)
with open(sys.argv[2]) as f:
    serving_fresh = json.load(f)
with open(sys.argv[3]) as f:
    micro_base = json.load(f)
with open(sys.argv[4]) as f:
    micro_fresh = json.load(f)

failed = False

# A baseline recorded from a debug (or unstamped) build defeats the gate.
base_types = {
    sys.argv[1]: serving_base.get("build_type", ""),
    sys.argv[3]: micro_base.get("context", {}).get("qpe_build_type", ""),
}
for name, build_type in base_types.items():
    if build_type != "Release":
        print(f"FAIL: baseline {name} was recorded from build type "
              f"'{build_type or 'unknown'}', not Release — re-record with "
              "scripts/run_bench_baseline.sh")
        failed = True

# A baseline recorded at a different SIMD level than the fresh binaries
# dispatch here compares ISAs, not code changes. (The fresh run's stamp is
# ground truth for this machine; QPE_SIMD overrides affect it too, so a
# forced-scalar A/B run must point the gate at a scalar-recorded baseline.)
base_simd = {
    sys.argv[1]: serving_base.get("simd_level", ""),
    sys.argv[3]: micro_base.get("context", {}).get("qpe_simd_level", ""),
}
fresh_simd = {
    sys.argv[1]: serving_fresh.get("simd_level", ""),
    sys.argv[3]: micro_fresh.get("context", {}).get("qpe_simd_level", ""),
}
for name in base_simd:
    if base_simd[name] != fresh_simd[name]:
        print(f"FAIL: baseline {name} was recorded at SIMD level "
              f"'{base_simd[name] or 'unknown'}' but this machine dispatches "
              f"'{fresh_simd[name] or 'unknown'}' — re-record with "
              "scripts/run_bench_baseline.sh on matching hardware")
        failed = True
if failed:
    sys.exit(1)

print()
print(f"{'metric':<34} {'baseline':>12} {'fresh':>12} {'ratio':>7}")
for metric in SERVING_METRICS:
    base = serving_base.get(metric)
    now = serving_fresh.get(metric)
    if base is None or now is None:
        print(f"{metric:<34} missing from baseline or fresh run")
        failed = True
        continue
    ratio = now / base if base else float("inf")
    flag = ""
    if ratio < 1.0 - SERVING_THRESHOLD:
        flag = "  REGRESSION"
        failed = True
    print(f"{metric:<34} {base:>12.1f} {now:>12.1f} {ratio:>6.2f}x{flag}")

for metric in SERVING_LATENCY_METRICS:
    base = serving_base.get(metric)
    now = serving_fresh.get(metric)
    if base is None or now is None:
        print(f"{metric:<34} missing from baseline or fresh run")
        failed = True
        continue
    ratio = now / base if base else float("inf")
    flag = ""
    if ratio > 1.0 + LATENCY_THRESHOLD:
        flag = "  REGRESSION"
        failed = True
    print(f"{metric:<34} {base:>12.3f} {now:>12.3f} {ratio:>6.2f}x{flag}")

for metric, floor in SERVING_SPEEDUP_FLOORS.items():
    now = serving_fresh.get(metric)
    if now is None:
        print(f"{metric:<34} missing from fresh run")
        failed = True
        continue
    flag = ""
    if now < floor:
        flag = "  REGRESSION"
        failed = True
    print(f"{metric + f' (abs floor {floor:g})':<34} {'—':>12} "
          f"{now:>12.3f} {'':>7}{flag}")

# Absolute gate, not relative: the sentinel's observe cost must be noise
# next to a request's p99 regardless of what the baseline machine recorded.
DRIFT_OVERHEAD_LIMIT_PCT = 5.0
drift_pct = serving_fresh.get("drift_overhead_pct")
if drift_pct is None:
    print(f"{'drift_overhead_pct':<34} missing from fresh run")
    failed = True
else:
    flag = ""
    if drift_pct > DRIFT_OVERHEAD_LIMIT_PCT:
        flag = "  REGRESSION"
        failed = True
    print(f"{'drift_overhead_pct (abs limit 5)':<34} {'—':>12} "
          f"{drift_pct:>12.3f} {'':>7}{flag}")


def micro_times(report):
    # Preferred statistic: the MEDIAN-of-repetitions aggregate row — the
    # only per-benchmark rows the baseline keeps since run_bench_baseline.sh
    # went aggregates-only (the per-repetition rows were ~4.7k lines of
    # diff per re-record and the gate never read them individually).
    # Baselines recorded before that carry raw repetition rows instead;
    # those degrade to min-of-N (best-of-1 for the oldest), which still
    # compares fine against a fresh median at the coarse 25% threshold.
    medians = {}
    raw = {}
    for bench in report.get("benchmarks", []):
        name = bench.get("name", "")
        unit = bench.get("time_unit", "ns")
        if bench.get("run_type") == "aggregate":
            if bench.get("aggregate_name") != "median":
                continue
            base = bench.get("run_name") or name.removesuffix("_median")
            if base.startswith(MICRO_PREFIXES):
                medians[base] = (bench["cpu_time"], unit)
        elif name.startswith(MICRO_PREFIXES):
            t = bench["cpu_time"]
            if name not in raw or t < raw[name][0]:
                raw[name] = (t, unit)
    # A median beats a raw minimum when both exist for the same benchmark.
    return {**raw, **medians}


for metric, floor in MICRO_SPEEDUP_FLOORS.items():
    try:
        now = float(micro_fresh.get("context", {}).get(metric, ""))
    except ValueError:
        now = None
    if now is None:
        print(f"{metric:<34} missing from fresh run")
        failed = True
        continue
    flag = ""
    if now < floor:
        flag = "  REGRESSION"
        failed = True
    print(f"{metric + f' (abs floor {floor:g})':<34} {'—':>12} "
          f"{now:>12.3f} {'':>7}{flag}")

base_times = micro_times(micro_base)
fresh_times = micro_times(micro_fresh)
for name in sorted(base_times):
    base, unit = base_times[name]
    now = fresh_times.get(name, (None, unit))[0]
    if now is None:
        print(f"{name:<34} missing from fresh run")
        failed = True
        continue
    ratio = now / base if base else float("inf")
    flag = ""
    if ratio > 1.0 + MICRO_THRESHOLD:
        flag = "  REGRESSION"
        failed = True
    print(f"{name + f' cpu_time({unit})':<34} {base:>12.2f} {now:>12.2f} "
          f"{ratio:>6.2f}x{flag}")
if not base_times:
    print("no gated micro benchmarks found in micro baseline")
    failed = True

if failed:
    print("\nFAIL: benchmark regression vs committed baselines")
    sys.exit(1)
print(f"\nOK: serving within {SERVING_THRESHOLD:.0%}, daemon p99 within "
      f"{1 + LATENCY_THRESHOLD:.1f}x, drift overhead under "
      f"{DRIFT_OVERHEAD_LIMIT_PCT:.0f}%, serving and training speedup "
      f"floors held, micro cpu_time within {MICRO_THRESHOLD:.0%} of baseline")
PY
