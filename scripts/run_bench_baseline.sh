#!/usr/bin/env bash
# Builds bench_micro and records the parallel-engine micro-benchmarks
# (blocked vs reference MatMul kernels, fused vs unfused serving kernels,
# and full training steps at 1 vs 4 threads) into BENCH_micro.json, then
# builds bench_serving and records the end-to-end serving numbers
# (per-plan vs batched vs warm-cache plans/sec, request latency
# percentiles) into BENCH_serving.json at the repo root.
#
# Both baselines are portable-build numbers (no -march=native) so they are
# reproducible on any x86-64 host; configure with -DQPE_NATIVE=ON for
# arch-specific codegen when benchmarking a specific machine, but do not
# commit those numbers over the portable baseline.
#
# Read the *wall-clock* (real_time) column: google-benchmark's cpu_time only
# measures the main thread, so it under-reports multi-threaded runs. On a
# single-core machine the 4-thread rows match the 1-thread rows in wall time
# by construction; the kernel-level win shows up as BM_MatMul/N/1 vs
# BM_MatMulReference/N.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build --target bench_micro bench_serving -j"$(nproc)"

./build/bench/bench_micro \
  --benchmark_filter='BM_MatMul|BM_TrainStep|Fused|BM_SoftmaxRows' \
  --benchmark_min_time=0.05 \
  --benchmark_out=BENCH_micro.json \
  --benchmark_out_format=json

echo
./build/bench/bench_serving BENCH_serving.json

echo
echo "Wrote $(pwd)/BENCH_micro.json and $(pwd)/BENCH_serving.json"
