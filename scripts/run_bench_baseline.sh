#!/usr/bin/env bash
# Builds bench_micro and records the parallel-engine micro-benchmarks
# (blocked vs reference MatMul kernels, fused vs unfused serving kernels,
# and full training steps at 1 vs 4 threads) into BENCH_micro.json, then
# builds bench_serving and records the end-to-end serving numbers
# (per-plan vs batched vs warm-cache plans/sec, request latency
# percentiles) into BENCH_serving.json at the repo root.
#
# Baselines are ONLY recorded from a Release build. The default `build`
# tree is configured without CMAKE_BUILD_TYPE (no optimization), and a
# baseline recorded from it makes every later Release run look 5-10x
# faster than "baseline" — the regression gate becomes noise. This script
# therefore configures a dedicated build-release tree and refuses to
# commit numbers unless both binaries self-report a Release build type
# (the qpe_build_type JSON context / build_type JSON field, stamped from
# CMAKE_BUILD_TYPE at compile time).
#
# Both baselines are portable-build numbers (no -march=native) so they are
# reproducible on any x86-64 host; configure with -DQPE_NATIVE=ON for
# arch-specific codegen when benchmarking a specific machine, but do not
# commit those numbers over the portable baseline.
#
# Read the *wall-clock* (real_time) column: google-benchmark's cpu_time only
# measures the main thread, so it under-reports multi-threaded runs. On a
# single-core machine the 4-thread rows match the 1-thread rows in wall time
# by construction; the kernel-level win shows up as BM_MatMul/N/1 vs
# BM_MatMulReference/N.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${QPE_BENCH_BUILD_DIR:-build-release}"
cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${BUILD_DIR}" --target bench_micro bench_serving -j"$(nproc)"

# min_time 0.2s: the train-step benchmarks run ~20 ms/iteration, and a
# 0.05s window records 2-3 warmup-dominated iterations — too noisy to gate
# a 25% regression threshold on. 3 repetitions with aggregates only: the
# microsecond-scale kernel benches see 30%+ single-shot swings on shared
# hosts, so the gate compares the per-benchmark MEDIAN across repetitions
# on both sides — and keeping only the aggregate rows in the committed
# file cuts its size by ~4x (per-repetition rows added ~4.7k lines of
# diff per re-record and carry no information the gate uses).
"./${BUILD_DIR}/bench/bench_micro" \
  --benchmark_filter='BM_MatMul|BM_TrainStep|Fused|BM_SoftmaxRows|BM_LayerNorm|BM_SoftmaxMasked|BM_AttentionPacked|BM_AttentionBlocked|BM_EmbedGather|BM_Int8Gemm' \
  --benchmark_min_time=0.2 \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_out=BENCH_micro.json \
  --benchmark_out_format=json

echo
"./${BUILD_DIR}/bench/bench_serving" BENCH_serving.json

# Refuse to leave non-Release numbers behind as the committed baseline, and
# verify both files carry the detected SIMD level (the binaries stamp it
# at startup: "scalar", "avx2" or "neon"). The regression gate later
# refuses baselines whose level does not match the machine it runs on —
# scalar-recorded numbers would make any vectorized run look like a win.
python3 - <<'PY'
import json
import sys

with open("BENCH_micro.json") as f:
    micro_ctx = json.load(f)["context"]
with open("BENCH_serving.json") as f:
    serving = json.load(f)
micro = micro_ctx.get("qpe_build_type", "")
micro_simd = micro_ctx.get("qpe_simd_level", "")
serving_simd = serving.get("simd_level", "")

bad = [name for name, value in [("BENCH_micro.json", micro),
                                ("BENCH_serving.json",
                                 serving.get("build_type", ""))]
       if value != "Release"]
if bad:
    for name in bad:
        print(f"ERROR: {name} was recorded from a non-Release build")
    print("refusing to keep a debug-recorded baseline; "
          "delete the files and rerun")
    sys.exit(1)
if not micro_simd or not serving_simd or micro_simd != serving_simd:
    print(f"ERROR: SIMD level missing or inconsistent between baselines "
          f"(micro: '{micro_simd}', serving: '{serving_simd}')")
    sys.exit(1)
print("\nbaseline build type: Release (verified in both files)")
print(f"baseline SIMD level: {serving_simd}")
PY

echo
echo "Wrote $(pwd)/BENCH_micro.json and $(pwd)/BENCH_serving.json"
