#!/usr/bin/env bash
# Builds bench_micro and records the parallel-engine micro-benchmarks
# (blocked vs reference MatMul kernels, and full training steps at 1 vs 4
# threads) into BENCH_micro.json at the repo root.
#
# Read the *wall-clock* (real_time) column: google-benchmark's cpu_time only
# measures the main thread, so it under-reports multi-threaded runs. On a
# single-core machine the 4-thread rows match the 1-thread rows in wall time
# by construction; the kernel-level win shows up as BM_MatMul/N/1 vs
# BM_MatMulReference/N.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build --target bench_micro -j"$(nproc)"

./build/bench/bench_micro \
  --benchmark_filter='BM_MatMul|BM_TrainStep' \
  --benchmark_min_time=0.05 \
  --benchmark_out=BENCH_micro.json \
  --benchmark_out_format=json

echo
echo "Wrote $(pwd)/BENCH_micro.json"
