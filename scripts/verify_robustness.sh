#!/usr/bin/env bash
# Verifies the fault-tolerance layer end to end:
#
#  1. Builds with AddressSanitizer (-DQPE_SANITIZE=address) and runs the
#     robustness suites — checkpoint corruption matrix, transactional
#     LoadModule, fault-injection sweeps, bit-exact resume — under ASan, so
#     any leak or out-of-bounds access on an error path fails the run.
#  2. Exercises the QPE_FAULT environment hook: an injected checkpoint
#     fault must surface as a descriptive error (non-zero exit), not a
#     partial file.
#  3. Ingestion fuzz sweep: 10k seeded byte-level mutations of EXPLAIN text
#     plus tree-level corruptions, run under ASan — any crash, leak, or
#     non-finite embedding from an accepted plan fails the run.
#  4. Crash-resume smoke: kills a checkpointed workload_explorer run
#     mid-flight with SIGKILL, resumes it, and requires the resumed run's
#     model fingerprint to be bit-identical to an uninterrupted run's.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "=== [1/4] AddressSanitizer robustness suites ==="
cmake -B build-asan -S . -DQPE_SANITIZE=address >/dev/null
cmake --build build-asan -j"$(nproc)" \
  --target checkpoint_test dataset_io_test robustness_test ingestion_test \
  serving_test arena_test simd_quant_test workload_explorer

ASAN_OPTIONS="halt_on_error=1${ASAN_OPTIONS:+:$ASAN_OPTIONS}" \
  ./build-asan/tests/checkpoint_test
ASAN_OPTIONS="halt_on_error=1${ASAN_OPTIONS:+:$ASAN_OPTIONS}" \
  ./build-asan/tests/dataset_io_test
ASAN_OPTIONS="halt_on_error=1${ASAN_OPTIONS:+:$ASAN_OPTIONS}" \
  ./build-asan/tests/robustness_test
ASAN_OPTIONS="halt_on_error=1${ASAN_OPTIONS:+:$ASAN_OPTIONS}" \
  ./build-asan/tests/serving_test
# The arena cooperates with sanitizers by disabling recycling
# (QPE_SANITIZE_BUILD): every Acquire allocates fresh and EndEpoch really
# frees, so ASan sees each graph buffer's true lifetime.
ASAN_OPTIONS="halt_on_error=1${ASAN_OPTIONS:+:$ASAN_OPTIONS}" \
  ./build-asan/tests/arena_test
# SIMD/quantization suite under ASan: the dispatch pins to the scalar
# reference (QPE_SANITIZE_BUILD), but the parity tests still drive the
# vector kernel tables directly through TableFor() — so ASan checks the
# AVX2/NEON tail-lane handling for out-of-bounds reads — and the int8
# calibration + quantized-encoder paths run end to end.
ASAN_OPTIONS="halt_on_error=1${ASAN_OPTIONS:+:$ASAN_OPTIONS}" \
  ./build-asan/tests/simd_quant_test

explorer=./build-asan/examples/workload_explorer

echo
echo "=== [2/4] Ingestion fuzz sweep (10k seeded mutations under ASan) ==="
# The ingestion suite runs its parser/sanitizer/encoder tests plus two fuzz
# loops (byte-level EXPLAIN mutations, tree-level corruptions); the fixed
# seeds inside the tests plus QPE_FUZZ_ITERS make every iteration
# reproducible. Lenient mode must accept-and-repair without ever producing
# a non-finite embedding; strict mode must reject with a descriptive Status
# and never a partial tree.
QPE_FUZZ_ITERS=10000 \
  ASAN_OPTIONS="halt_on_error=1${ASAN_OPTIONS:+:$ASAN_OPTIONS}" \
  ./build-asan/tests/ingestion_test
echo "ingestion fuzz sweep passed: no crashes, no leaks, finite embeddings"

echo
echo "=== [3/4] Environment-driven fault injection (QPE_FAULT) ==="
fault_dir=$(mktemp -d)
trap 'rm -rf "$fault_dir"' EXIT
# The very first checkpoint write fails; the run must exit non-zero and
# name the injected fault instead of leaving a torn checkpoint behind.
if out=$(QPE_FAULT="checkpoint.open_tmp:1" \
    "$explorer" --threads=1 --checkpoint-dir="$fault_dir" 0.05 8 2>&1); then
  echo "FAIL: run with an injected checkpoint fault exited 0"
  echo "$out"
  exit 1
fi
echo "$out" | grep -q "injected fault" || {
  echo "FAIL: injected fault not surfaced in the error output"
  echo "$out"
  exit 1
}
if compgen -G "$fault_dir/*.tmp" >/dev/null; then
  echo "FAIL: injected fault leaked a temp file in $fault_dir"
  exit 1
fi
echo "injected checkpoint fault surfaced cleanly, no temp file leaked"

echo
echo "=== [4/4] Crash-resume smoke (SIGKILL mid-run) ==="
SF=0.2
CONFIGS=24
fingerprint() { grep -o "model fingerprint: [0-9]*" | awk '{print $3}'; }

clean_dir=$(mktemp -d)
crash_dir=$(mktemp -d)
trap 'rm -rf "$fault_dir" "$clean_dir" "$crash_dir"' EXIT

start_ns=$(date +%s%N)
expected=$("$explorer" --threads=1 --checkpoint-dir="$clean_dir" \
    "$SF" "$CONFIGS" | fingerprint)
elapsed_ms=$(( ($(date +%s%N) - start_ns) / 1000000 ))
[ -n "$expected" ] || { echo "FAIL: no fingerprint from the clean run"; exit 1; }
echo "uninterrupted run: fingerprint $expected (${elapsed_ms} ms)"

# Kill a second run halfway through the measured wall time. Wherever the
# SIGKILL lands — during workload execution, mid-epoch, between checkpoint
# writes — the atomic-rename protocol guarantees the resumed run continues
# from a consistent state and must reproduce the exact same weights.
half_s=$(awk "BEGIN { printf \"%.3f\", $elapsed_ms / 2000.0 }")
timeout -s KILL "$half_s" \
  "$explorer" --threads=1 --checkpoint-dir="$crash_dir" "$SF" "$CONFIGS" \
  >/dev/null 2>&1 && echo "note: run finished before the kill" || true

resumed=$("$explorer" --threads=1 --checkpoint-dir="$crash_dir" --resume \
    "$SF" "$CONFIGS" | fingerprint)
echo "killed-at-${half_s}s + resumed run: fingerprint ${resumed:-<none>}"

if [ "$resumed" != "$expected" ]; then
  echo "FAIL: resumed fingerprint differs from the uninterrupted run"
  exit 1
fi

echo
echo "Robustness verification passed: ASan clean, ingestion fuzz clean,"
echo "faults degrade cleanly, crash-resume is bit-exact."
