#!/usr/bin/env bash
# Verifies the fault-tolerance layer end to end:
#
#  1. Builds with AddressSanitizer (-DQPE_SANITIZE=address) and runs the
#     robustness suites — checkpoint corruption matrix, transactional
#     LoadModule, fault-injection sweeps, bit-exact resume — under ASan, so
#     any leak or out-of-bounds access on an error path fails the run.
#  2. Exercises the QPE_FAULT environment hook: an injected checkpoint
#     fault must surface as a descriptive error (non-zero exit), not a
#     partial file.
#  3. Ingestion fuzz sweep: 10k seeded byte-level mutations of EXPLAIN text
#     plus tree-level corruptions, run under ASan — any crash, leak, or
#     non-finite embedding from an accepted plan fails the run.
#  4. Crash-resume smoke: kills a checkpointed workload_explorer run
#     mid-flight with SIGKILL, resumes it, and requires the resumed run's
#     model fingerprint to be bit-identical to an uninterrupted run's.
#  5. Serving-daemon chaos: under ASan, qpe_served takes live traffic and
#     drains cleanly on SIGTERM (leak check at exit); a second daemon is
#     SIGKILLed mid-traffic and its restart must restore the warm embedding
#     cache from the last crash-safe snapshot and keep serving.
#  6. Drift chaos: a drift-enabled daemon takes a structurally novel
#     stream, declares drift (responses flagged STALE), starts the
#     self-healing fine-tune, and is SIGKILLed mid-ADAPTING; the restart
#     must resume the round from its checkpoint, swap the adapted model
#     in, and serve the once-novel stream without a stale flag.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "=== [1/6] AddressSanitizer robustness suites ==="
cmake -B build-asan -S . -DQPE_SANITIZE=address >/dev/null
cmake --build build-asan -j"$(nproc)" \
  --target checkpoint_test dataset_io_test robustness_test ingestion_test \
  serving_test daemon_test drift_test arena_test simd_quant_test \
  packed_pipeline_test workload_explorer qpe_served qpe_client

ASAN_OPTIONS="halt_on_error=1${ASAN_OPTIONS:+:$ASAN_OPTIONS}" \
  ./build-asan/tests/checkpoint_test
ASAN_OPTIONS="halt_on_error=1${ASAN_OPTIONS:+:$ASAN_OPTIONS}" \
  ./build-asan/tests/dataset_io_test
ASAN_OPTIONS="halt_on_error=1${ASAN_OPTIONS:+:$ASAN_OPTIONS}" \
  ./build-asan/tests/robustness_test
ASAN_OPTIONS="halt_on_error=1${ASAN_OPTIONS:+:$ASAN_OPTIONS}" \
  ./build-asan/tests/serving_test
# The daemon suite under ASan: wire-protocol fuzzing, admission edge cases,
# socket fault injection, drain/SIGTERM paths — every error path leak-checked.
ASAN_OPTIONS="halt_on_error=1${ASAN_OPTIONS:+:$ASAN_OPTIONS}" \
  ./build-asan/tests/daemon_test
# Drift suite under ASan: sketches, the hysteresis monitor, wire v2
# trailer negotiation, crash-safe adaptation rounds, and the in-process
# drain-abort/resume/self-heal drill — every adaptation error path
# leak-checked.
ASAN_OPTIONS="halt_on_error=1${ASAN_OPTIONS:+:$ASAN_OPTIONS}" \
  ./build-asan/tests/drift_test
# The arena cooperates with sanitizers by disabling recycling
# (QPE_SANITIZE_BUILD): every Acquire allocates fresh and EndEpoch really
# frees, so ASan sees each graph buffer's true lifetime.
ASAN_OPTIONS="halt_on_error=1${ASAN_OPTIONS:+:$ASAN_OPTIONS}" \
  ./build-asan/tests/arena_test
# SIMD/quantization suite under ASan: the dispatch pins to the scalar
# reference (QPE_SANITIZE_BUILD), but the parity tests still drive the
# vector kernel tables directly through TableFor() — so ASan checks the
# AVX2/NEON tail-lane handling for out-of-bounds reads — and the int8
# calibration + quantized-encoder paths run end to end.
ASAN_OPTIONS="halt_on_error=1${ASAN_OPTIONS:+:$ASAN_OPTIONS}" \
  ./build-asan/tests/simd_quant_test
# Packed columnar pipeline under ASan, with the dispatch pinned scalar
# (QPE_SANITIZE_BUILD): the growable workspace buffers, the packed
# training forward/backward's scatter/gather indexing into the ragged
# layout, and the workspace-capture backward closures all get their
# bounds and lifetimes checked — including the new PackedTrainTest
# end-to-end training runs.
ASAN_OPTIONS="halt_on_error=1${ASAN_OPTIONS:+:$ASAN_OPTIONS}" \
  ./build-asan/tests/packed_pipeline_test

explorer=./build-asan/examples/workload_explorer

echo
echo "=== [2/6] Ingestion fuzz sweep (10k seeded mutations under ASan) ==="
# The ingestion suite runs its parser/sanitizer/encoder tests plus two fuzz
# loops (byte-level EXPLAIN mutations, tree-level corruptions); the fixed
# seeds inside the tests plus QPE_FUZZ_ITERS make every iteration
# reproducible. Lenient mode must accept-and-repair without ever producing
# a non-finite embedding; strict mode must reject with a descriptive Status
# and never a partial tree.
QPE_FUZZ_ITERS=10000 \
  ASAN_OPTIONS="halt_on_error=1${ASAN_OPTIONS:+:$ASAN_OPTIONS}" \
  ./build-asan/tests/ingestion_test
echo "ingestion fuzz sweep passed: no crashes, no leaks, finite embeddings"

echo
echo "=== [3/6] Environment-driven fault injection (QPE_FAULT) ==="
fault_dir=$(mktemp -d)
trap 'rm -rf "$fault_dir"' EXIT
# The very first checkpoint write fails; the run must exit non-zero and
# name the injected fault instead of leaving a torn checkpoint behind.
if out=$(QPE_FAULT="checkpoint.open_tmp:1" \
    "$explorer" --threads=1 --checkpoint-dir="$fault_dir" 0.05 8 2>&1); then
  echo "FAIL: run with an injected checkpoint fault exited 0"
  echo "$out"
  exit 1
fi
echo "$out" | grep -q "injected fault" || {
  echo "FAIL: injected fault not surfaced in the error output"
  echo "$out"
  exit 1
}
if compgen -G "$fault_dir/*.tmp" >/dev/null; then
  echo "FAIL: injected fault leaked a temp file in $fault_dir"
  exit 1
fi
echo "injected checkpoint fault surfaced cleanly, no temp file leaked"

echo
echo "=== [4/6] Crash-resume smoke (SIGKILL mid-run) ==="
SF=0.2
CONFIGS=24
fingerprint() { grep -o "model fingerprint: [0-9]*" | awk '{print $3}'; }

clean_dir=$(mktemp -d)
crash_dir=$(mktemp -d)
trap 'rm -rf "$fault_dir" "$clean_dir" "$crash_dir"' EXIT

start_ns=$(date +%s%N)
expected=$("$explorer" --threads=1 --checkpoint-dir="$clean_dir" \
    "$SF" "$CONFIGS" | fingerprint)
elapsed_ms=$(( ($(date +%s%N) - start_ns) / 1000000 ))
[ -n "$expected" ] || { echo "FAIL: no fingerprint from the clean run"; exit 1; }
echo "uninterrupted run: fingerprint $expected (${elapsed_ms} ms)"

# Kill a second run halfway through the measured wall time. Wherever the
# SIGKILL lands — during workload execution, mid-epoch, between checkpoint
# writes — the atomic-rename protocol guarantees the resumed run continues
# from a consistent state and must reproduce the exact same weights.
half_s=$(awk "BEGIN { printf \"%.3f\", $elapsed_ms / 2000.0 }")
timeout -s KILL "$half_s" \
  "$explorer" --threads=1 --checkpoint-dir="$crash_dir" "$SF" "$CONFIGS" \
  >/dev/null 2>&1 && echo "note: run finished before the kill" || true

resumed=$("$explorer" --threads=1 --checkpoint-dir="$crash_dir" --resume \
    "$SF" "$CONFIGS" | fingerprint)
echo "killed-at-${half_s}s + resumed run: fingerprint ${resumed:-<none>}"

if [ "$resumed" != "$expected" ]; then
  echo "FAIL: resumed fingerprint differs from the uninterrupted run"
  exit 1
fi

echo
echo "=== [5/6] Serving-daemon chaos (drain, SIGKILL mid-traffic, warm restart) ==="
served=./build-asan/examples/qpe_served
qclient=./build-asan/examples/qpe_client
daemon_dir=$(mktemp -d)
trap 'rm -rf "$fault_dir" "$clean_dir" "$crash_dir" "$daemon_dir"' EXIT
sock="$daemon_dir/qpe.sock"
warm="$daemon_dir/warm.qpew"

# Wait for the daemon's "listening on" line rather than the socket file: a
# SIGKILLed predecessor leaves a stale socket file behind, so testing -S
# would race ahead of the restarted daemon's warm restore + bind.
wait_for_ready() {
  for _ in $(seq 1 100); do
    grep -q "listening on" "$1" 2>/dev/null && return 0
    sleep 0.1
  done
  echo "FAIL: daemon never reported listening ($1)"
  cat "$1" 2>/dev/null || true
  return 1
}

# 5a. Live traffic, then SIGTERM: the daemon must drain gracefully, exit 0
# (ASan leak-checks the whole process at exit), and leave a warm snapshot.
"$served" --socket="$sock" --small --workers=1 --warm-state="$warm" \
  --snapshot-every=4 >"$daemon_dir/served_drain.log" 2>&1 &
served_pid=$!
wait_for_ready "$daemon_dir/served_drain.log"
"$qclient" --socket="$sock" --plans=24 --per-request=6 >/dev/null
kill -TERM "$served_pid"
if ! wait "$served_pid"; then
  echo "FAIL: daemon exited non-zero after SIGTERM drain"
  cat "$daemon_dir/served_drain.log"
  exit 1
fi
grep -q "drained, exiting" "$daemon_dir/served_drain.log" || {
  echo "FAIL: no drain message in the daemon log"
  cat "$daemon_dir/served_drain.log"
  exit 1
}
[ -f "$warm" ] || { echo "FAIL: no warm snapshot after drain"; exit 1; }
echo "SIGTERM drain: clean exit, ASan leak check passed, snapshot written"

# 5b. SIGKILL mid-traffic: nothing is flushed, so the restart restores from
# the last *periodic* snapshot — the crash-safe write discipline means the
# file is either that snapshot or the previous one, never torn.
"$served" --socket="$sock" --small --workers=1 --warm-state="$warm" \
  --snapshot-every=4 >"$daemon_dir/served_kill.log" 2>&1 &
served_pid=$!
wait_for_ready "$daemon_dir/served_kill.log"
"$qclient" --socket="$sock" --plans=32 --per-request=4 >/dev/null 2>&1 &
traffic_pid=$!
sleep 0.5
kill -KILL "$served_pid"
wait "$served_pid" 2>/dev/null || true
wait "$traffic_pid" 2>/dev/null || true

"$served" --socket="$sock" --small --workers=1 --warm-state="$warm" \
  >"$daemon_dir/served_restart.log" 2>&1 &
served_pid=$!
wait_for_ready "$daemon_dir/served_restart.log"
# `|| true`: under set -e a failed grep in the assignment would abort the
# script silently instead of reaching the FAIL branch below.
restored=$(grep -o "warm cache restored: [0-9]*" \
  "$daemon_dir/served_restart.log" | awk '{print $4}' || true)
if [ -z "${restored:-}" ] || [ "$restored" -eq 0 ]; then
  echo "FAIL: restarted daemon did not restore the warm cache"
  cat "$daemon_dir/served_restart.log"
  exit 1
fi
# The restarted daemon must actually serve — same plans as before the kill,
# now answered from the restored cache.
"$qclient" --socket="$sock" --ping >/dev/null
"$qclient" --socket="$sock" --plans=24 --per-request=6 >/dev/null
kill -TERM "$served_pid"
wait "$served_pid" || {
  echo "FAIL: restarted daemon exited non-zero on drain"
  cat "$daemon_dir/served_restart.log"
  exit 1
}
echo "SIGKILL mid-traffic + restart: warm cache restored ($restored entries), serving resumed"

echo
echo "=== [6/6] Drift chaos (drift -> alarm -> SIGKILL mid-ADAPTING -> resume -> heal) ==="
drift_dir=$(mktemp -d)
trap 'rm -rf "$fault_dir" "$clean_dir" "$crash_dir" "$daemon_dir" "$drift_dir"' EXIT
dsock="$drift_dir/qpe.sock"
adapt="$drift_dir/adapt"

wait_for_log() {
  # Generous bound: the resumed fine-tune replays every remaining epoch
  # under ASan before "adaptation complete" appears.
  for _ in $(seq 1 1200); do
    grep -q "$2" "$1" 2>/dev/null && return 0
    sleep 0.1
  done
  echo "FAIL: timed out waiting for '$2' in $1"
  cat "$1" 2>/dev/null || true
  return 1
}

# Small detector window so a short drifted burst closes enough windows to
# alarm; enough fine-tune epochs (each one checkpointed) that the round
# far outlives the drifted stream and the SIGKILL below lands mid-round.
serve_drifty() {
  "$served" --socket="$dsock" --small --workers=1 --drift \
    --drift-window=32 --adapt-dir="$adapt" --adapt-epochs=64 \
    --adapt-pairs=16 >"$1" 2>&1 &
  served_pid=$!
  wait_for_ready "$1"
}

# 6a. Baseline traffic must never flag stale. The client replays the
# daemon's own baseline corpus: same generator, same options, same seed
# (--drift-corpus-seed defaults to 7, 96 plans), so the stream is exactly
# the plans the sketches were built over — the definition of "no drift".
serve_drifty "$drift_dir/served_drift.log"
"$qclient" --socket="$dsock" --plans=96 --per-request=8 --seed=7 \
  >"$drift_dir/client_baseline.log"
if grep -q "STALE" "$drift_dir/client_baseline.log"; then
  echo "FAIL: baseline traffic was flagged stale"
  cat "$drift_dir/client_baseline.log"
  exit 1
fi

# 6b. A structurally novel stream (plans twice the baseline's depth) must
# drive the monitor to DRIFTED: stale-flagged responses and an adaptation
# round. --retries covers the admission hiccups of an adapting daemon.
"$qclient" --socket="$dsock" --plans=192 --per-request=8 --seed=9 \
  --min-nodes=28 --max-nodes=48 --retries=3 \
  >"$drift_dir/client_drift.log"
grep -q "STALE" "$drift_dir/client_drift.log" || {
  echo "FAIL: drifted stream never produced a stale-flagged response"
  cat "$drift_dir/client_drift.log"
  cat "$drift_dir/served_drift.log"
  exit 1
}
wait_for_log "$drift_dir/served_drift.log" "adaptation started"

# 6c. SIGKILL mid-ADAPTING: the manifest survives; nothing else of the
# round may matter. The restart must resume from the last checkpoint,
# finish the round, and swap the adapted weights in.
kill -KILL "$served_pid"
wait "$served_pid" 2>/dev/null || true
[ -f "$adapt/manifest.qpam" ] || {
  echo "FAIL: no adaptation manifest survived the SIGKILL"
  ls -la "$adapt" 2>/dev/null || true
  exit 1
}
serve_drifty "$drift_dir/served_resume.log"
wait_for_log "$drift_dir/served_resume.log" "resuming interrupted adaptation"
wait_for_log "$drift_dir/served_resume.log" "adaptation complete: fingerprint"

# 6d. Healed: the once-novel stream is the model's new normal — responses
# carry no stale flag and the round left a refreshed fingerprint.
"$qclient" --socket="$dsock" --plans=64 --per-request=8 --seed=9 \
  --min-nodes=28 --max-nodes=48 --retries=3 \
  >"$drift_dir/client_healed.log"
if grep -q "STALE" "$drift_dir/client_healed.log"; then
  echo "FAIL: responses still stale after the resumed adaptation completed"
  cat "$drift_dir/client_healed.log"
  cat "$drift_dir/served_resume.log"
  exit 1
fi
"$qclient" --socket="$dsock" --stats >"$drift_dir/stats.json"
grep -q '"adaptations_resumed": 1' "$drift_dir/stats.json" || {
  echo "FAIL: stats do not record the resumed adaptation round"
  cat "$drift_dir/stats.json"
  exit 1
}
kill -TERM "$served_pid"
wait "$served_pid" || {
  echo "FAIL: drift daemon exited non-zero on final drain"
  cat "$drift_dir/served_resume.log"
  exit 1
}
echo "drift chaos: alarm raised, SIGKILL mid-ADAPTING, round resumed from"
echo "its checkpoint, adapted model swapped in, stream serves un-stale"

echo
echo "Robustness verification passed: ASan clean, ingestion fuzz clean,"
echo "faults degrade cleanly, crash-resume is bit-exact, daemon drains,"
echo "survives SIGKILL, restarts warm, and self-heals from drift."
