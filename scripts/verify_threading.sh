#!/usr/bin/env bash
# Builds the library with ThreadSanitizer (-DQPE_SANITIZE=thread) and runs
# the threading test suite — thread-pool semantics, blocked-vs-naive MatMul
# equivalence, and the threads=1 vs threads=4 bit-exact determinism tests —
# plus the serving suite (sharded embedding cache under concurrent
# hit/miss/eviction traffic, EmbeddingService with data-parallel
# micro-batches) under TSan, so any data race in the parallel engine or the
# serving layer fails the run. The arena suite rides along: per-thread
# arenas plus the relaxed-atomic telemetry counters must stay race-free
# under the multi-threaded training tests. The simd_quant suite runs too:
# sanitizer builds pin the kernel dispatch to the scalar reference
# (QPE_SANITIZE_BUILD), but the dispatch machinery, the quantization
# calibration pass and the int8 serving engine all still execute — TSan
# checks the lazy kernel-table initialization and the quantized encoder's
# shared read-only state under the service's data-parallel micro-batches.
# The daemon suite's cache-concurrency tests run too: a warm snapshot
# walking all shards while writers insert/lookup is exactly the
# reader-vs-writer interleaving the daemon's snapshot thread produces.
# The packed-pipeline suite covers the columnar training path: its
# PackedTrainTest cases run TrainPpsr with data-parallel shards writing
# through thread-local packed workspaces and GradientCapture redirects at
# 1 vs 4 threads — with the dispatch pinned scalar (QPE_SANITIZE_BUILD),
# TSan sees exactly the shard interleavings production training runs.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build-tsan -S . -DQPE_SANITIZE=thread >/dev/null
cmake --build build-tsan --target threading_test serving_test arena_test \
  simd_quant_test daemon_test packed_pipeline_test -j"$(nproc)"

TSAN_OPTIONS="halt_on_error=1${TSAN_OPTIONS:+:$TSAN_OPTIONS}" \
  ./build-tsan/tests/threading_test
TSAN_OPTIONS="halt_on_error=1${TSAN_OPTIONS:+:$TSAN_OPTIONS}" \
  ./build-tsan/tests/serving_test
TSAN_OPTIONS="halt_on_error=1${TSAN_OPTIONS:+:$TSAN_OPTIONS}" \
  ./build-tsan/tests/arena_test
TSAN_OPTIONS="halt_on_error=1${TSAN_OPTIONS:+:$TSAN_OPTIONS}" \
  ./build-tsan/tests/simd_quant_test
# Packed columnar pipeline, inference and training: thread-local workspace
# reuse, the packed training forward/backward under multi-threaded
# ParallelGradientStep shards, and the threads=1 vs threads=4 bitwise
# determinism contract.
TSAN_OPTIONS="halt_on_error=1${TSAN_OPTIONS:+:$TSAN_OPTIONS}" \
  ./build-tsan/tests/packed_pipeline_test
# Snapshot-vs-insert and stats-vs-traffic consistency on the sharded cache
# (the rest of the daemon suite is socket-bound, not concurrency-bound).
TSAN_OPTIONS="halt_on_error=1${TSAN_OPTIONS:+:$TSAN_OPTIONS}" \
  ./build-tsan/tests/daemon_test --gtest_filter='CacheStatsTest.*'

echo
echo "ThreadSanitizer run clean."
