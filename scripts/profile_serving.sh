#!/usr/bin/env bash
# One-command serving profile: builds bench_serving in a dedicated
# Release+gprof tree (build-profile), runs it once, and prints the top-10
# flat-profile rows. This is the decomposition tool behind the packed
# pipeline work — it answers "where do serving cycles actually go"
# (gather/pack, attention, GEMM, quantize) without guessing from
# throughput deltas.
#
# gprof instead of perf: the container images this runs in have binutils
# (gprof) but no perf_event access. -pg instrumentation perturbs the
# absolute numbers a little, so read the *shares*, not the ns — the
# regression gate owns absolute numbers.
#
# Usage: scripts/profile_serving.sh [top_n]
#   QPE_PROFILE_SMOKE=1  cap the serving workload (QPE_BENCH_SMOKE) so the
#                        script doubles as a CI smoke test of the
#                        profiling toolchain itself.
set -euo pipefail

cd "$(dirname "$0")/.."

TOP_N="${1:-10}"
BUILD_DIR="${QPE_PROFILE_BUILD_DIR:-build-profile}"

if ! command -v gprof >/dev/null 2>&1; then
  echo "ERROR: gprof not found on PATH (install binutils)"
  exit 1
fi

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_CXX_FLAGS=-pg -DCMAKE_EXE_LINKER_FLAGS=-pg >/dev/null
cmake --build "${BUILD_DIR}" --target bench_serving -j"$(nproc)"

# gmon.out lands in the working directory; keep it (and the JSON the
# benchmark insists on writing) out of the repo root.
PROFILE_DIR="$(mktemp -d /tmp/qpe_profile.XXXXXX)"
trap 'rm -rf "${PROFILE_DIR}"' EXIT

BENCH="$(pwd)/${BUILD_DIR}/bench/bench_serving"
(
  cd "${PROFILE_DIR}"
  if [[ "${QPE_PROFILE_SMOKE:-0}" != "0" ]]; then
    export QPE_BENCH_SMOKE=1
  fi
  "${BENCH}" profile_serving.json >/dev/null
)

if [[ ! -f "${PROFILE_DIR}/gmon.out" ]]; then
  echo "ERROR: bench_serving produced no gmon.out (built without -pg?)"
  exit 1
fi

echo
echo "== top ${TOP_N} functions by flat self-time (gprof, bench_serving) =="
# -b: skip the explanatory boilerplate; -p: flat profile only. The first
# 5 lines of -b -p output are the table header.
gprof -b -p "${BENCH}" "${PROFILE_DIR}/gmon.out" | head -n "$((TOP_N + 5))"
