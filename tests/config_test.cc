#include <set>
#include <vector>

#include "config/db_config.h"
#include "config/lhs_sampler.h"
#include "gtest/gtest.h"
#include "util/rng.h"
#include "util/stats.h"

namespace qpe::config {
namespace {

TEST(DbConfigTest, ThirteenKnobs) {
  EXPECT_EQ(kNumKnobs, 13);
  EXPECT_EQ(KnobTable().size(), 13u);
}

TEST(DbConfigTest, DefaultIsMidpoint) {
  DbConfig config;
  for (int k = 0; k < kNumKnobs; ++k) {
    const KnobInfo& info = KnobTable()[k];
    EXPECT_DOUBLE_EQ(config.Get(static_cast<Knob>(k)),
                     0.5 * (info.min_value + info.max_value));
  }
}

TEST(DbConfigTest, SetGetRoundTrip) {
  DbConfig config;
  config.Set(Knob::kWorkMem, 123456.0);
  EXPECT_DOUBLE_EQ(config.Get(Knob::kWorkMem), 123456.0);
}

TEST(DbConfigTest, FeatureDimIncludesLogFeatures) {
  int log_knobs = 0;
  for (const auto& info : KnobTable()) log_knobs += info.log_scale_feature;
  EXPECT_EQ(DbConfig::FeatureDim(), kNumKnobs + log_knobs);
  EXPECT_EQ(static_cast<int>(DbConfig().ToFeatures().size()),
            DbConfig::FeatureDim());
}

TEST(DbConfigTest, RawFeaturesNormalizedToUnit) {
  DbConfig config;
  for (int k = 0; k < kNumKnobs; ++k) {
    config.Set(static_cast<Knob>(k), KnobTable()[k].max_value);
  }
  const std::vector<double> features = config.ToFeatures();
  for (int k = 0; k < kNumKnobs; ++k) {
    EXPECT_DOUBLE_EQ(features[k], 1.0);
  }
}

TEST(DbConfigTest, KnobRangesContainPaperPercentiles) {
  // Spot-check a few Table 5 values sit inside our sampling ranges.
  EXPECT_LE(GetKnobInfo(Knob::kWorkMem).min_value, 1048576.0);       // 5th pct
  EXPECT_GE(GetKnobInfo(Knob::kWorkMem).max_value, 31457280.0);      // 95th
  EXPECT_LE(GetKnobInfo(Knob::kSharedBuffers).min_value, 131072.0);  // 5th
  EXPECT_GE(GetKnobInfo(Knob::kSharedBuffers).max_value, 3932160.0);
  EXPECT_LE(GetKnobInfo(Knob::kEffectiveCacheSize).min_value, 131072.0);
  EXPECT_GE(GetKnobInfo(Knob::kEffectiveCacheSize).max_value, 1966080.0);
}

TEST(LhsSamplerTest, ValuesWithinRanges) {
  LhsSampler sampler(util::Rng(1));
  for (const DbConfig& config : sampler.Sample(50)) {
    for (int k = 0; k < kNumKnobs; ++k) {
      const KnobInfo& info = KnobTable()[k];
      EXPECT_GE(config.Get(static_cast<Knob>(k)), info.min_value);
      EXPECT_LE(config.Get(static_cast<Knob>(k)), info.max_value);
    }
  }
}

TEST(LhsSamplerTest, OneSamplePerStratum) {
  // The defining LHS property: with n samples, each of the n equal strata of
  // every knob contains exactly one sample.
  const int n = 40;
  LhsSampler sampler(util::Rng(2));
  const std::vector<DbConfig> configs = sampler.Sample(n);
  for (int k = 0; k < kNumKnobs; ++k) {
    const KnobInfo& info = KnobTable()[k];
    const double width = (info.max_value - info.min_value) / n;
    std::set<int> strata;
    for (const DbConfig& config : configs) {
      const double v = config.Get(static_cast<Knob>(k));
      int stratum = static_cast<int>((v - info.min_value) / width);
      stratum = std::min(stratum, n - 1);
      strata.insert(stratum);
    }
    EXPECT_EQ(strata.size(), static_cast<size_t>(n)) << "knob " << info.name;
  }
}

TEST(LhsSamplerTest, MedianNearMidpoint) {
  LhsSampler sampler(util::Rng(3));
  const std::vector<DbConfig> configs = sampler.Sample(200);
  for (int k = 0; k < kNumKnobs; ++k) {
    const KnobInfo& info = KnobTable()[k];
    std::vector<double> values;
    for (const DbConfig& config : configs) {
      values.push_back(config.Get(static_cast<Knob>(k)));
    }
    const double mid = 0.5 * (info.min_value + info.max_value);
    const double span = info.max_value - info.min_value;
    EXPECT_NEAR(util::Median(values), mid, 0.05 * span) << info.name;
  }
}

TEST(LhsSamplerTest, DeterministicForSameSeed) {
  LhsSampler a(util::Rng(9)), b(util::Rng(9));
  const auto ca = a.Sample(10);
  const auto cb = b.Sample(10);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(ca[i].values(), cb[i].values());
  }
}

TEST(LhsSamplerTest, UniformBaselineInRange) {
  LhsSampler sampler(util::Rng(4));
  for (const DbConfig& config : sampler.SampleUniform(20)) {
    for (int k = 0; k < kNumKnobs; ++k) {
      const KnobInfo& info = KnobTable()[k];
      EXPECT_GE(config.Get(static_cast<Knob>(k)), info.min_value);
      EXPECT_LE(config.Get(static_cast<Knob>(k)), info.max_value);
    }
  }
}

}  // namespace
}  // namespace qpe::config
