#include <memory>
#include <string>

#include "gtest/gtest.h"
#include "plan/linearize.h"
#include "plan/plan_node.h"
#include "plan/serialize.h"
#include "plan/taxonomy.h"

namespace qpe::plan {
namespace {

OperatorType Op(const std::string& token) { return OperatorType::Parse(token); }

// Builds the running example from the paper's Figure 1 / Table 3 (TPC-H Q5
// shape): Filter(Sort(Aggregate(HashJoin(NestedLoop(...), ...)))).
std::unique_ptr<PlanNode> BuildPaperExample() {
  auto root = std::make_unique<PlanNode>(Op("Filter"));
  PlanNode* sort = root->AddChild(Op("Sort"));
  PlanNode* agg = sort->AddChild(Op("Aggregate"));
  PlanNode* hash_join = agg->AddChild(Op("Join-Hash"));
  PlanNode* nested1 = hash_join->AddChild(Op("Loop-Nested"));
  PlanNode* join2 = nested1->AddChild(Op("Join-Hash"));
  PlanNode* hash = join2->AddChild(Op("Hash"));
  PlanNode* nested2 = hash->AddChild(Op("Loop-Nested"));
  PlanNode* nested3 = nested2->AddChild(Op("Loop-Nested"));
  nested3->AddChild(Op("Scan-Index"));
  nested3->AddChild(Op("Scan-Seq"));
  nested2->AddChild(Op("Scan-Heap-Bitmap"));
  join2->AddChild(Op("Scan-Index-Bitmap"));
  nested1->AddChild(Op("Scan-Index"));
  hash_join->AddChild(Op("Scan-Seq"));
  return root;
}

TEST(TaxonomyTest, SpecialTokensExist) {
  const Taxonomy& tax = Taxonomy::Get();
  EXPECT_GE(tax.br_open(), 0);
  EXPECT_GE(tax.br_close(), 0);
  EXPECT_GE(tax.cls(), 0);
  EXPECT_GE(tax.sep(), 0);
  EXPECT_EQ(tax.Level1Name(0), "NIL");
  EXPECT_EQ(tax.Level2Name(0), "NIL");
  EXPECT_EQ(tax.Level3Name(0), "NIL");
}

TEST(TaxonomyTest, LookupRoundTrip) {
  const Taxonomy& tax = Taxonomy::Get();
  for (int i = 0; i < tax.Level1Count(); ++i) {
    EXPECT_EQ(tax.Level1Id(tax.Level1Name(i)), i);
  }
  for (int i = 0; i < tax.Level2Count(); ++i) {
    EXPECT_EQ(tax.Level2Id(tax.Level2Name(i)), i);
  }
  for (int i = 0; i < tax.Level3Count(); ++i) {
    EXPECT_EQ(tax.Level3Id(tax.Level3Name(i)), i);
  }
}

TEST(TaxonomyTest, UnknownNameMapsToReservedUnknownToken) {
  const Taxonomy& tax = Taxonomy::Get();
  // Lenient lookups resolve foreign names to the reserved UNKNOWN sub-type
  // (a real embedding row), never to a sentinel a consumer could index with.
  EXPECT_EQ(tax.Level1Id("NotAnOperator"), tax.unknown1());
  EXPECT_EQ(tax.Level2Id("NotAnOperator"), tax.unknown2());
  EXPECT_EQ(tax.Level3Id("NotAnOperator"), tax.unknown3());
  EXPECT_EQ(tax.Level1Name(tax.unknown1()), "UNKNOWN");
  // Strict lookups keep the detection capability.
  EXPECT_EQ(tax.FindLevel1("NotAnOperator"), -1);
  EXPECT_EQ(tax.FindLevel2("NotAnOperator"), -1);
  EXPECT_EQ(tax.FindLevel3("NotAnOperator"), -1);
  EXPECT_EQ(tax.FindLevel1("Scan"), tax.Level1Id("Scan"));
}

TEST(TaxonomyTest, OutOfRangeIdNamesAsUnknown) {
  const Taxonomy& tax = Taxonomy::Get();
  EXPECT_EQ(tax.Level1Name(-1), "UNKNOWN");
  EXPECT_EQ(tax.Level1Name(tax.Level1Count() + 40), "UNKNOWN");
  EXPECT_EQ(tax.Level2Name(255), "UNKNOWN");
  EXPECT_EQ(tax.Level3Name(255), "UNKNOWN");
}

TEST(OperatorTypeTest, ParseHyphenated) {
  const OperatorType scan = Op("Scan-Heap-Bitmap");
  EXPECT_EQ(scan.ToString(), "Scan-Heap-Bitmap");
  const OperatorType join = Op("Join-Merge-Left");
  EXPECT_EQ(join.ToString(), "Join-Merge-Left");
}

TEST(OperatorTypeTest, MissingLevelsAreNil) {
  const OperatorType sort = Op("Sort");
  EXPECT_EQ(sort.level2, 0);
  EXPECT_EQ(sort.level3, 0);
  EXPECT_EQ(sort.ToString(), "Sort");
  EXPECT_EQ(sort.ToString(/*full=*/true), "Sort-NIL-NIL");
}

TEST(OperatorTypeTest, FullStringParseRoundTrip) {
  const OperatorType t = Op("Join-Merge-Left");
  EXPECT_EQ(OperatorType::Parse(t.ToString(true)), t);
}

TEST(OperatorTypeTest, GroupMapping) {
  EXPECT_EQ(GroupOf(Op("Scan-Seq")), OperatorGroup::kScan);
  EXPECT_EQ(GroupOf(Op("Scan-Heap-Bitmap")), OperatorGroup::kScan);
  EXPECT_EQ(GroupOf(Op("Join-Hash")), OperatorGroup::kJoin);
  EXPECT_EQ(GroupOf(Op("Join-Merge-Left")), OperatorGroup::kJoin);
  EXPECT_EQ(GroupOf(Op("Loop-Nested")), OperatorGroup::kJoin);
  EXPECT_EQ(GroupOf(Op("Sort")), OperatorGroup::kSort);
  EXPECT_EQ(GroupOf(Op("Aggregate-Hash")), OperatorGroup::kAggregate);
  EXPECT_EQ(GroupOf(Op("GroupAggregate")), OperatorGroup::kAggregate);
  EXPECT_EQ(GroupOf(Op("Limit")), OperatorGroup::kOther);
  EXPECT_EQ(GroupOf(Op("Materialize")), OperatorGroup::kOther);
}

TEST(PlanNodeTest, NumNodesAndDepth) {
  const auto plan = BuildPaperExample();
  EXPECT_EQ(plan->NumNodes(), 15);
  EXPECT_EQ(plan->Depth(), 10);
}

TEST(PlanNodeTest, CloneIsDeepAndEqualShape) {
  const auto plan = BuildPaperExample();
  const auto copy = plan->Clone();
  EXPECT_EQ(copy->NumNodes(), plan->NumNodes());
  EXPECT_EQ(ToBracketString(LinearizeDfsBracket(*copy)),
            ToBracketString(LinearizeDfsBracket(*plan)));
}

TEST(LinearizeTest, ClsAndSepDelimit) {
  const auto plan = BuildPaperExample();
  const auto tokens = LinearizeDfsBracket(*plan, /*add_cls_sep=*/true);
  const Taxonomy& tax = Taxonomy::Get();
  EXPECT_EQ(tokens.front().level1, tax.cls());
  EXPECT_EQ(tokens.back().level1, tax.sep());
}

TEST(LinearizeTest, BracketsBalance) {
  const auto plan = BuildPaperExample();
  const auto tokens = LinearizeDfsBracket(*plan);
  const Taxonomy& tax = Taxonomy::Get();
  int depth = 0;
  for (const auto& t : tokens) {
    if (t.level1 == tax.br_open()) ++depth;
    if (t.level1 == tax.br_close()) --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(LinearizeTest, TokenCountFormula) {
  // CLS + SEP + one token per node + 2 brackets per internal node.
  const auto plan = BuildPaperExample();
  const auto tokens = LinearizeDfsBracket(*plan);
  int internal = 0;
  plan->Visit([&](const PlanNode& n) { internal += !n.children().empty(); });
  EXPECT_EQ(static_cast<int>(tokens.size()), 2 + plan->NumNodes() + 2 * internal);
}

TEST(LinearizeTest, DeterministicUnderChildOrder) {
  // Children are sorted by typename, so insertion order must not matter.
  auto a = std::make_unique<PlanNode>(Op("Join-Hash"));
  a->AddChild(Op("Scan-Seq"));
  a->AddChild(Op("Scan-Index"));
  auto b = std::make_unique<PlanNode>(Op("Join-Hash"));
  b->AddChild(Op("Scan-Index"));
  b->AddChild(Op("Scan-Seq"));
  EXPECT_EQ(ToBracketString(LinearizeDfsBracket(*a)),
            ToBracketString(LinearizeDfsBracket(*b)));
}

TEST(LinearizeTest, BracketDisambiguatesWhereDfsDoesNot) {
  // Chain: A -> B -> C versus A with children B and C. Plain DFS gives the
  // same sequence; DFS-bracket distinguishes them.
  auto chain = std::make_unique<PlanNode>(Op("Sort"));
  chain->AddChild(Op("Aggregate"))->AddChild(Op("Scan-Seq"));
  auto fanout = std::make_unique<PlanNode>(Op("Sort"));
  fanout->AddChild(Op("Aggregate"));
  fanout->AddChild(Op("Scan-Seq"));

  const auto dfs_chain = LinearizeDfs(*chain);
  const auto dfs_fanout = LinearizeDfs(*fanout);
  ASSERT_EQ(dfs_chain.size(), dfs_fanout.size());
  bool same = true;
  for (size_t i = 0; i < dfs_chain.size(); ++i) {
    same = same && dfs_chain[i] == dfs_fanout[i];
  }
  EXPECT_TRUE(same);

  EXPECT_NE(ToBracketString(LinearizeDfsBracket(*chain)),
            ToBracketString(LinearizeDfsBracket(*fanout)));
}

TEST(LinearizeTest, BfsOrdersByLevel) {
  const auto plan = BuildPaperExample();
  const auto tokens = LinearizeBfs(*plan);
  EXPECT_EQ(static_cast<int>(tokens.size()), plan->NumNodes());
  EXPECT_EQ(tokens[0].ToString(), "Filter");
  EXPECT_EQ(tokens[1].ToString(), "Sort");
}

TEST(SerializeTest, NodeRoundTrip) {
  auto plan = BuildPaperExample();
  plan->props().plan_rows = 1234;
  plan->props().actual_total_time_ms = 56.5;
  plan->children()[0]->props().sort_method = SortMethod::kExternalMerge;
  const std::string text = SerializePlanNode(*plan);
  const auto parsed = ParsePlanNode(text);
  ASSERT_NE(parsed, nullptr);
  EXPECT_EQ(parsed->NumNodes(), plan->NumNodes());
  EXPECT_DOUBLE_EQ(parsed->props().plan_rows, 1234);
  EXPECT_DOUBLE_EQ(parsed->props().actual_total_time_ms, 56.5);
  EXPECT_EQ(parsed->children()[0]->props().sort_method,
            SortMethod::kExternalMerge);
  EXPECT_EQ(SerializePlanNode(*parsed), text);
}

TEST(SerializeTest, RelationsRoundTrip) {
  PlanNode scan(Op("Scan-Seq"));
  scan.AddRelation("lineitem");
  scan.AddRelation("orders");
  const auto parsed = ParsePlanNode(SerializePlanNode(scan));
  ASSERT_NE(parsed, nullptr);
  ASSERT_EQ(parsed->relations().size(), 2u);
  EXPECT_EQ(parsed->relations()[0], "lineitem");
  EXPECT_EQ(parsed->relations()[1], "orders");
}

TEST(SerializeTest, PlanMetadataRoundTrip) {
  Plan plan;
  plan.root = BuildPaperExample();
  plan.benchmark = "tpch";
  plan.template_id = "Q5";
  plan.cluster_id = 7;
  const auto parsed = ParsePlan(SerializePlan(plan));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->benchmark, "tpch");
  EXPECT_EQ(parsed->template_id, "Q5");
  EXPECT_EQ(parsed->cluster_id, 7);
  EXPECT_EQ(parsed->NumNodes(), 15);
}

TEST(SerializeTest, MalformedInputRejected) {
  EXPECT_EQ(ParsePlanNode("(op"), nullptr);
  EXPECT_EQ(ParsePlanNode("(notop \"Sort\")"), nullptr);
  EXPECT_EQ(ParsePlanNode("(op \"Sort\" :bogus_prop 3)"), nullptr);
  EXPECT_FALSE(ParsePlan("(op \"Sort\")").has_value());
}

}  // namespace
}  // namespace qpe::plan
