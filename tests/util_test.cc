#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <vector>

#include "gtest/gtest.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace qpe::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanApproximatelyHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all values hit
}

TEST(RngTest, NormalMoments) {
  Rng rng(5);
  const int n = 200000;
  double sum = 0, ss = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    ss += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(ss / n, 1.0, 0.03);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ZipfSkewedTowardSmallIndices) {
  Rng rng(17);
  int first = 0, last = 0;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.Zipf(100, 1.0);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
    if (v == 0) ++first;
    if (v == 99) ++last;
  }
  EXPECT_GT(first, last * 10);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(19);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) {
    ++counts[rng.Categorical({1.0, 2.0, 7.0})];
  }
  EXPECT_NEAR(counts[0] / 30000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 30000.0, 0.2, 0.02);
  EXPECT_NEAR(counts[2] / 30000.0, 0.7, 0.02);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(23);
  const std::vector<int> p = rng.Permutation(50);
  std::set<int> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 49);
}

TEST(RngTest, ForkIndependentButDeterministic) {
  Rng a(42), b(42);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  EXPECT_EQ(fa.NextU64(), fb.NextU64());
}

TEST(StatsTest, MeanMedian) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Median({5, 1, 3}), 3.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(StatsTest, PercentileInterpolation) {
  std::vector<double> v = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 50.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 30.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 20.0);
}

TEST(StatsTest, StdDevOfConstantIsZero) {
  EXPECT_DOUBLE_EQ(StdDev({3, 3, 3, 3}), 0.0);
}

TEST(StatsTest, MaeAndRmse) {
  const std::vector<double> pred = {1, 2, 3};
  const std::vector<double> target = {2, 2, 5};
  EXPECT_DOUBLE_EQ(MeanAbsoluteError(pred, target), 1.0);
  EXPECT_NEAR(RootMeanSquaredError(pred, target), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(StatsTest, MismatchedSizesReturnZero) {
  EXPECT_DOUBLE_EQ(MeanAbsoluteError({1, 2}, {1}), 0.0);
}

TEST(StatsTest, FractionWithinAbsoluteError) {
  EXPECT_DOUBLE_EQ(
      FractionWithinAbsoluteError({1, 2, 3, 4}, {1, 3, 10, 4}, 1.0), 0.75);
}

TEST(StatsTest, PearsonCorrelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer_name", "22"});
  std::ostringstream oss;
  table.Print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("| name        | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer_name | 22    |"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(2.0, 0), "2");
}

}  // namespace
}  // namespace qpe::util
