// Numerical gradient checks at module granularity: LayerNorm, multi-head
// attention, a full transformer encoder layer, the LSTM, and the
// performance-encoder architecture. These catch subtle backward bugs that
// unit-level op checks can miss (shared subexpressions, broadcast chains).
// The key module checks additionally rerun under every forced QPE_SIMD
// dispatch level, so the vectorized backward kernels face the same
// central-difference scrutiny as the scalar reference.

#include <cmath>
#include <functional>
#include <vector>

#include "gtest/gtest.h"
#include "nn/loss.h"
#include "nn/module.h"
#include "nn/simd.h"
#include "nn/transformer.h"
#include "util/rng.h"

namespace qpe::nn {
namespace {

// Restores the dispatched kernel table on scope exit so a forced level
// never leaks into other tests.
class SimdLevelGuard {
 public:
  SimdLevelGuard() : saved_(simd::ActiveLevel()) {}
  ~SimdLevelGuard() { simd::ForceLevel(saved_); }

 private:
  simd::Level saved_;
};

// Runs `body` once with the dispatch forced to scalar and once at the
// hardware's own level (skipping the second run on scalar-only hardware or
// sanitizer builds, where ForceLevel clamps back down).
void ForEachSimdLevel(const std::function<void()>& body) {
  SimdLevelGuard guard;
  for (const simd::Level level :
       {simd::Level::kScalar, simd::HardwareLevel()}) {
    if (simd::ForceLevel(level) != level) continue;
    SCOPED_TRACE(simd::LevelName(level));
    body();
  }
}

// Checks d(scalar_fn)/d(param) against central differences for a sampled
// subset of each parameter's entries (full sweeps are too slow for big
// modules).
void CheckModuleGradients(Module* module,
                          const std::function<Tensor()>& scalar_fn,
                          int samples_per_param = 4,
                          float tolerance = 3e-2f) {
  module->ZeroGrad();
  Tensor loss = scalar_fn();
  loss.Backward();
  std::vector<std::vector<float>> analytic;
  for (const Tensor& p : module->Parameters()) analytic.push_back(p.grad());

  util::Rng pick(12345);
  const float eps = 5e-3f;
  auto params = module->Parameters();
  for (size_t t = 0; t < params.size(); ++t) {
    Tensor p = params[t];
    for (int s = 0; s < samples_per_param; ++s) {
      const int i = static_cast<int>(pick.UniformInt(0, p.numel() - 1));
      const float original = p.value()[i];
      p.value()[i] = original + eps;
      const float plus = scalar_fn().value()[0];
      p.value()[i] = original - eps;
      const float minus = scalar_fn().value()[0];
      p.value()[i] = original;
      const float numeric = (plus - minus) / (2 * eps);
      EXPECT_NEAR(analytic[t][i], numeric,
                  tolerance * std::max(1.0f, std::abs(numeric)))
          << "param " << t << " entry " << i;
    }
  }
}

Tensor RandInput(int rows, int cols, uint64_t seed) {
  util::Rng rng(seed);
  Tensor x = Tensor::Zeros(rows, cols);
  for (float& v : x.value()) v = static_cast<float>(rng.Uniform(-1, 1));
  return x;
}

TEST(ModuleGradCheck, LayerNorm) {
  ForEachSimdLevel([] {
    LayerNorm norm(6);
    const Tensor x = RandInput(3, 6, 1);
    const Tensor w = RandInput(3, 6, 2);
    CheckModuleGradients(&norm, [&]() {
      return Sum(Mul(norm.Forward(x), w));
    });
  });
}

TEST(ModuleGradCheck, MultiHeadSelfAttention) {
  ForEachSimdLevel([] {
    util::Rng rng(3);
    MultiHeadSelfAttention attention(8, 2, &rng);
    const Tensor x = RandInput(5, 8, 4);
    const Tensor w = RandInput(5, 8, 5);
    CheckModuleGradients(&attention, [&]() {
      return Sum(Mul(attention.Forward(x), w));
    });
  });
}

TEST(ModuleGradCheck, TransformerEncoderLayer) {
  ForEachSimdLevel([] {
    util::Rng rng(6);
    TransformerEncoderLayer layer(8, 2, 16, 0.0f, &rng);
    layer.SetTraining(false);
    const Tensor x = RandInput(4, 8, 7);
    CheckModuleGradients(&layer, [&]() {
      return Mean(Square(layer.Forward(x, nullptr)));
    });
  });
}

TEST(ModuleGradCheck, Lstm) {
  util::Rng rng(8);
  Lstm lstm(3, 5, &rng);
  const Tensor x = RandInput(6, 3, 9);
  const Tensor w = RandInput(1, 5, 10);
  CheckModuleGradients(&lstm, [&]() {
    return Sum(Mul(lstm.Forward(x), w));
  });
}

TEST(ModuleGradCheck, EmbeddingThroughAttention) {
  // Gradient must flow through GatherRows into the embedding table.
  util::Rng rng(11);
  Embedding embedding(7, 8, &rng);
  MultiHeadSelfAttention attention(8, 2, &rng);
  // Combine both modules' params into one wrapper for the check.
  struct Wrapper : Module {
    explicit Wrapper(util::Rng* rng) {
      embed = RegisterModule("embed", std::make_unique<Embedding>(7, 8, rng));
      attn = RegisterModule("attn",
                            std::make_unique<MultiHeadSelfAttention>(8, 2, rng));
    }
    Embedding* embed;
    MultiHeadSelfAttention* attn;
  };
  ForEachSimdLevel([] {
    util::Rng rng2(12);
    Wrapper wrapper(&rng2);
    const std::vector<int> tokens = {1, 4, 2, 1, 6};
    CheckModuleGradients(&wrapper, [&]() {
      return Mean(
          Square(wrapper.attn->Forward(wrapper.embed->Forward(tokens))));
    });
  });
}

TEST(ModuleGradCheck, BatchNormEvalMode) {
  // In eval mode batch norm is an affine map; its gamma/beta gradients must
  // check out.
  BatchNorm1d norm(4);
  norm.SetTraining(false);
  const Tensor x = RandInput(3, 4, 13);
  CheckModuleGradients(&norm, [&]() {
    return Mean(Square(norm.Forward(x)));
  });
}

}  // namespace
}  // namespace qpe::nn
