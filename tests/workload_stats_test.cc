// Statistical/structural properties of the workload generators and a few
// remaining edge cases across modules.

#include <map>
#include <set>

#include "gtest/gtest.h"
#include "nn/optimizer.h"
#include "nn/tensor.h"
#include "plan/linearize.h"
#include "simdb/workloads.h"
#include "smatch/smatch.h"

namespace qpe {
namespace {

TEST(JobWorkloadStatsTest, ClusterSizesMatchJob) {
  // 113 templates in 33 clusters: 14 clusters of 4 variants, 19 of 3 —
  // summing to 113 like the real benchmark.
  const simdb::JobWorkload job;
  std::map<int, int> sizes;
  for (int t = 0; t < job.NumTemplates(); ++t) ++sizes[job.ClusterOf(t)];
  int fours = 0, threes = 0;
  for (const auto& [cluster, size] : sizes) {
    if (size == 4) ++fours;
    else if (size == 3) ++threes;
    else FAIL() << "cluster " << cluster << " has size " << size;
  }
  EXPECT_EQ(fours, 14);
  EXPECT_EQ(threes, 19);
}

TEST(JobWorkloadStatsTest, VariantNamesFollowJobConvention) {
  const simdb::JobWorkload job;
  EXPECT_EQ(job.TemplateName(0), "1a");
  EXPECT_EQ(job.TemplateName(1), "1b");
  EXPECT_EQ(job.TemplateName(112).back(), 'c');  // last cluster has 3
}

TEST(JobWorkloadStatsTest, EveryTemplateJoinsTitle) {
  const simdb::JobWorkload job;
  for (int t = 0; t < job.NumTemplates(); ++t) {
    const simdb::QuerySpec& spec = job.Template(t);
    bool has_title = false;
    for (const auto& table : spec.tables) has_title |= table == "title";
    EXPECT_TRUE(has_title) << spec.template_id;
    // JOB queries are SELECT MIN(...): plain aggregate, no grouping.
    EXPECT_TRUE(spec.has_aggregate);
    EXPECT_EQ(spec.num_group_keys, 0);
  }
}

TEST(TpcdsWorkloadStatsTest, TemplatesAreDeterministic) {
  const simdb::TpcdsWorkload a(0.1), b(0.1);
  for (int t = 0; t < a.NumTemplates(); ++t) {
    EXPECT_EQ(a.Template(t).tables, b.Template(t).tables);
    ASSERT_EQ(a.Template(t).filters.size(), b.Template(t).filters.size());
    for (size_t f = 0; f < a.Template(t).filters.size(); ++f) {
      EXPECT_DOUBLE_EQ(a.Template(t).filters[f].selectivity,
                       b.Template(t).filters[f].selectivity);
    }
  }
}

TEST(TpcdsWorkloadStatsTest, EveryTemplateHasAFactTable) {
  const simdb::TpcdsWorkload tpcds(0.1);
  const std::set<std::string> facts = {"store_sales", "catalog_sales",
                                       "web_sales", "store_returns",
                                       "inventory"};
  for (int t = 0; t < tpcds.NumTemplates(); ++t) {
    EXPECT_TRUE(facts.count(tpcds.Template(t).tables[0]))
        << tpcds.TemplateName(t);
    // Joins at least two dimensions.
    EXPECT_GE(tpcds.Template(t).joins.size(), 2u);
  }
}

TEST(SpatialWorkloadStatsTest, JackpineAndOsmPrefixes) {
  const simdb::SpatialWorkload spatial;
  int jackpine = 0, osm = 0;
  for (int t = 0; t < spatial.NumTemplates(); ++t) {
    if (spatial.TemplateName(t).rfind("OSM", 0) == 0) ++osm;
    else ++jackpine;
  }
  EXPECT_EQ(jackpine, 12);
  EXPECT_EQ(osm, 8);
}

TEST(SpatialWorkloadStatsTest, SpatialPredicatesMarked) {
  const simdb::SpatialWorkload spatial;
  int spatial_joins = 0;
  for (int t = 0; t < spatial.NumTemplates(); ++t) {
    for (const auto& join : spatial.Template(t).joins) {
      EXPECT_TRUE(join.spatial) << spatial.TemplateName(t);
      ++spatial_joins;
    }
  }
  EXPECT_GT(spatial_joins, 8);
}

TEST(TpchWorkloadStatsTest, JoinCountsSpanSimpleToComplex) {
  const simdb::TpchWorkload tpch(0.1);
  size_t min_joins = 99, max_joins = 0;
  for (int t = 0; t < tpch.NumTemplates(); ++t) {
    min_joins = std::min(min_joins, tpch.Template(t).joins.size());
    max_joins = std::max(max_joins, tpch.Template(t).joins.size());
  }
  EXPECT_EQ(min_joins, 0u);   // Q1/Q6 are single-table
  EXPECT_GE(max_joins, 5u);   // Q8 joins 7 tables
}

// --- Remaining edge cases ---

TEST(LinearizeEdgeTest, SingleNodePlan) {
  plan::PlanNode leaf(plan::OperatorType::Parse("Scan-Seq"));
  const auto tokens = plan::LinearizeDfsBracket(leaf);
  // CLS, node (no brackets for a leaf root), SEP.
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].ToString(), "Scan-Seq");
}

TEST(SmatchEdgeTest, SingleNodesExact) {
  plan::PlanNode a(plan::OperatorType::Parse("Scan-Seq"));
  plan::PlanNode b(plan::OperatorType::Parse("Scan-Seq"));
  EXPECT_DOUBLE_EQ(smatch::Score(a, b).f1, 1.0);
  EXPECT_DOUBLE_EQ(smatch::ScoreExact(a, b).f1, 1.0);
}

TEST(OptimizerEdgeTest, ZeroGradAfterStepMatters) {
  // Without ZeroGrad, gradients accumulate and double the step.
  nn::Tensor w1 = nn::Tensor::Scalar(1.0f, true);
  nn::Tensor w2 = nn::Tensor::Scalar(1.0f, true);
  nn::Sgd opt1({w1}, 0.1f);
  nn::Sgd opt2({w2}, 0.1f);
  for (int i = 0; i < 2; ++i) {
    nn::Square(w1).Backward();  // accumulates: no ZeroGrad
    opt1.Step();
  }
  for (int i = 0; i < 2; ++i) {
    opt2.ZeroGrad();
    nn::Square(w2).Backward();
    opt2.Step();
  }
  EXPECT_NE(w1.value()[0], w2.value()[0]);
}

TEST(TensorEdgeTest, CrossEntropySingleClassIsZero) {
  const nn::Tensor logits = nn::Tensor::FromVector(2, 1, {3.0f, -1.0f}, true);
  const nn::Tensor loss = nn::CrossEntropy(logits, {0, 0});
  EXPECT_NEAR(loss.value()[0], 0.0f, 1e-6f);
}

TEST(TensorEdgeTest, MeanOfSingleElement) {
  const nn::Tensor t = nn::Tensor::Scalar(7.0f);
  EXPECT_FLOAT_EQ(nn::Mean(t).value()[0], 7.0f);
}

}  // namespace
}  // namespace qpe
