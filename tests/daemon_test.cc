// Serving-daemon tests: the length-prefixed wire protocol (round trips,
// hostile-input rejection, MutateBytes fuzzing), socket IO helpers and the
// async-signal-safe self-pipe, token buckets, admission control (zero-quota
// tenants, expired deadlines, bounded queues, weighted-fair dequeue, drain
// and abort), cache snapshot/restore and torn-free stats, crash-safe warm
// state, and the ServingDaemon end to end over a real Unix socket —
// including typed shedding under overload, graceful drain with warm
// restart, garbage frames, injected IO faults, and the SIGTERM path.

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "data/plan_corpus.h"
#include "encoder/structure_encoder.h"
#include "gtest/gtest.h"
#include "plan/serialize.h"
#include "serve/admission.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/embedding_cache.h"
#include "serve/embedding_service.h"
#include "serve/tenant.h"
#include "serve/warm_state.h"
#include "serve/wire_protocol.h"
#include "util/fault_injection.h"
#include "util/fuzz.h"
#include "util/rng.h"
#include "util/socket.h"
#include "util/status.h"

namespace qpe {
namespace {

using serve::AdmissionController;
using serve::DaemonClient;
using serve::EncodeRequest;
using serve::EncodeResponse;
using serve::ErrorResponse;
using serve::Frame;
using serve::FrameParse;
using serve::FrameType;
using serve::QueuedRequest;
using serve::ServingDaemon;
using serve::ServingDaemonConfig;
using serve::TenantConfig;
using serve::WireError;

encoder::StructureEncoderConfig SmallConfig() {
  encoder::StructureEncoderConfig config;
  config.level1_dim = 12;
  config.level2_dim = 6;
  config.level3_dim = 6;
  config.num_heads = 2;
  config.ff_dim = 32;
  config.num_layers = 2;
  config.max_len = 128;
  config.dropout = 0.0f;
  return config;
}

std::vector<std::string> SamplePlanTexts(int count, uint64_t seed) {
  data::CorpusOptions options;
  options.min_nodes = 4;
  options.max_nodes = 16;
  data::RandomPlanGenerator generator(util::Rng(seed), options);
  std::vector<std::string> plans;
  plans.reserve(count);
  for (int i = 0; i < count; ++i) {
    plans.push_back(plan::SerializePlanNode(*generator.Generate()));
  }
  return plans;
}

std::string TestSocketPath(const char* tag) {
  return "/tmp/qpe_daemon_test_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

QueuedRequest MakeRequest(const std::string& tenant, uint32_t cost,
                          double deadline =
                              std::numeric_limits<double>::infinity()) {
  QueuedRequest request;
  request.tenant = tenant;
  request.cost = cost;
  request.deadline = deadline;
  return request;
}

// Reads one frame off a raw fd (header then payload), like DaemonClient
// does, for tests that write hostile bytes directly.
util::Status ReadFrameRaw(int fd, Frame* out) {
  char header[serve::kFrameHeaderSize];
  if (util::Status s = util::ReadFull(fd, header, sizeof(header)); !s.ok()) {
    return s;
  }
  uint32_t magic = 0, payload_size = 0;
  std::memcpy(&magic, header, 4);
  std::memcpy(&payload_size, header + 8, 4);
  if (magic != serve::kWireMagic) return util::DataLossError("bad magic");
  out->type = static_cast<FrameType>(header[5]);
  out->payload.resize(payload_size);
  if (payload_size == 0) return util::OkStatus();
  return util::ReadFull(fd, out->payload.data(), payload_size);
}

// --- Wire protocol ---------------------------------------------------------

TEST(WireProtocolTest, FrameRoundTripAllTypes) {
  for (const FrameType type :
       {FrameType::kEncodeRequest, FrameType::kStatsRequest,
        FrameType::kPingRequest, FrameType::kEncodeResponse,
        FrameType::kStatsResponse, FrameType::kPongResponse,
        FrameType::kErrorResponse}) {
    const std::string payload = type == FrameType::kPingRequest
                                    ? ""
                                    : std::string("payload-bytes\x00\xff", 15);
    const std::string wire = serve::EncodeFrame(type, payload);
    ASSERT_EQ(wire.size(), serve::kFrameHeaderSize + payload.size());
    Frame frame;
    size_t consumed = 0;
    util::Status error;
    ASSERT_EQ(serve::NextFrame(wire, 1 << 20, &frame, &consumed, &error),
              FrameParse::kFrame);
    EXPECT_EQ(consumed, wire.size());
    EXPECT_EQ(frame.type, type);
    EXPECT_EQ(frame.payload, payload);
  }
}

TEST(WireProtocolTest, NextFrameExtractsBackToBackFrames) {
  const std::string a = serve::EncodeFrame(FrameType::kPingRequest, "");
  const std::string b = serve::EncodeFrame(FrameType::kStatsRequest, "");
  std::string buf = a + b;
  Frame frame;
  size_t consumed = 0;
  util::Status error;
  ASSERT_EQ(serve::NextFrame(buf, 1 << 20, &frame, &consumed, &error),
            FrameParse::kFrame);
  EXPECT_EQ(frame.type, FrameType::kPingRequest);
  buf.erase(0, consumed);
  ASSERT_EQ(serve::NextFrame(buf, 1 << 20, &frame, &consumed, &error),
            FrameParse::kFrame);
  EXPECT_EQ(frame.type, FrameType::kStatsRequest);
  EXPECT_EQ(buf.size(), consumed);
}

TEST(WireProtocolTest, EveryPrefixOfValidFrameNeedsMore) {
  const std::string wire =
      serve::EncodeFrame(FrameType::kEncodeRequest, "abcdef");
  for (size_t len = 0; len < wire.size(); ++len) {
    Frame frame;
    size_t consumed = 0;
    util::Status error;
    EXPECT_EQ(serve::NextFrame(std::string_view(wire.data(), len), 1 << 20,
                               &frame, &consumed, &error),
              FrameParse::kNeedMore)
        << "prefix length " << len;
  }
}

TEST(WireProtocolTest, GarbageIsRejectedBeforeFullHeaderArrives) {
  // The first byte already rules out the magic: the parser must not wait
  // for 12 bytes to call it garbage.
  Frame frame;
  size_t consumed = 0;
  util::Status error;
  EXPECT_EQ(serve::NextFrame("garbage!", 1 << 20, &frame, &consumed, &error),
            FrameParse::kError);
  EXPECT_FALSE(error.ok());
}

TEST(WireProtocolTest, HostileHeadersAreTypedErrors) {
  const auto parse = [](std::string wire) {
    Frame frame;
    size_t consumed = 0;
    util::Status error;
    const FrameParse result =
        serve::NextFrame(wire, /*max_payload=*/4096, &frame, &consumed,
                         &error);
    return std::make_pair(result, error);
  };
  std::string good = serve::EncodeFrame(FrameType::kPingRequest, "");

  std::string bad_version = good;
  bad_version[4] = 9;
  EXPECT_EQ(parse(bad_version).first, FrameParse::kError);

  std::string bad_type = good;
  bad_type[5] = 120;
  EXPECT_EQ(parse(bad_type).first, FrameParse::kError);

  std::string bad_reserved = good;
  bad_reserved[6] = 1;
  EXPECT_EQ(parse(bad_reserved).first, FrameParse::kError);

  std::string oversized = good;
  const uint32_t huge = 1u << 30;  // > max_payload: reject without buffering
  std::memcpy(oversized.data() + 8, &huge, 4);
  const auto [result, error] = parse(oversized);
  EXPECT_EQ(result, FrameParse::kError);
  EXPECT_FALSE(error.ok());
}

TEST(WireProtocolTest, EncodeRequestRoundTripAndHeadPeek) {
  EncodeRequest request;
  request.tenant = "analytics";
  request.deadline_ms = 1500;
  request.plans = {"(op \"Sort\")", "(op \"Scan-Seq\" :rel orders)"};
  const std::string payload = serve::EncodeEncodeRequestPayload(request);

  const auto head = serve::PeekEncodeRequestHead(payload, 16);
  ASSERT_TRUE(head.ok()) << head.status().ToString();
  EXPECT_EQ(head->tenant, "analytics");
  EXPECT_EQ(head->deadline_ms, 1500u);
  EXPECT_EQ(head->plan_count, 2u);

  const auto parsed = serve::ParseEncodeRequestPayload(payload, 16);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->tenant, request.tenant);
  EXPECT_EQ(parsed->deadline_ms, request.deadline_ms);
  EXPECT_EQ(parsed->plans, request.plans);

  // A plan count over the limit is rejected by the cheap peek already.
  EXPECT_FALSE(serve::PeekEncodeRequestHead(payload, 1).ok());
  EXPECT_FALSE(serve::ParseEncodeRequestPayload(payload, 1).ok());
  // Truncation anywhere is an error, never an over-read.
  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(serve::ParseEncodeRequestPayload(
                     std::string_view(payload.data(), len), 16)
                     .ok());
  }
}

TEST(WireProtocolTest, EncodeResponseRoundTrip) {
  EncodeResponse response;
  response.dim = 3;
  response.embeddings = {{1.5f, -2.0f, 0.25f}, {0.0f, 7.0f, -0.5f}};
  const std::string payload = serve::EncodeEncodeResponsePayload(response);
  const auto parsed = serve::ParseEncodeResponsePayload(payload);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->dim, 3u);
  EXPECT_EQ(parsed->embeddings, response.embeddings);
}

TEST(WireProtocolTest, ErrorResponseRoundTrip) {
  ErrorResponse error;
  error.code = WireError::kResourceExhausted;
  error.retry_after_ms = serve::kRetryNever;
  error.message = "tenant quota can never cover this request";
  const std::string payload = serve::EncodeErrorResponsePayload(error);
  const auto parsed = serve::ParseErrorResponsePayload(payload);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->code, WireError::kResourceExhausted);
  EXPECT_EQ(parsed->retry_after_ms, serve::kRetryNever);
  EXPECT_EQ(parsed->message, error.message);
}

TEST(WireProtocolTest, FuzzedFramesNeverCrashOrOverRead) {
  EncodeRequest request;
  request.tenant = "fuzz";
  request.deadline_ms = 250;
  request.plans = SamplePlanTexts(3, 11);
  const std::string seed_frame = serve::EncodeFrame(
      FrameType::kEncodeRequest, serve::EncodeEncodeRequestPayload(request));

  util::Rng rng(20260808);
  const int iters = util::FuzzIterationsFromEnv(400);
  for (int i = 0; i < iters; ++i) {
    std::string buf = util::MutateBytes(seed_frame, &rng, 1 + (i % 8));
    // Drive the buffer exactly as the daemon's IO loop does.
    int guard = 0;
    while (++guard < 64) {
      Frame frame;
      size_t consumed = 0;
      util::Status error;
      const FrameParse result =
          serve::NextFrame(buf, /*max_payload=*/1 << 16, &frame, &consumed,
                           &error);
      if (result == FrameParse::kNeedMore || result == FrameParse::kError) {
        break;
      }
      ASSERT_LE(consumed, buf.size()) << "iteration " << i;
      ASSERT_GT(consumed, size_t{0}) << "iteration " << i;
      // A structurally valid frame may still carry a mutated payload: the
      // payload parsers must reject or accept without crashing either way.
      (void)serve::ParseEncodeRequestPayload(frame.payload, 64);
      (void)serve::PeekEncodeRequestHead(frame.payload, 64);
      buf.erase(0, consumed);
    }
  }
}

TEST(WireProtocolTest, FuzzedPayloadsNeverCrash) {
  EncodeRequest request;
  request.tenant = "fuzz";
  request.plans = SamplePlanTexts(2, 12);
  const std::string request_payload =
      serve::EncodeEncodeRequestPayload(request);
  EncodeResponse response;
  response.dim = 4;
  response.embeddings = {{1, 2, 3, 4}};
  const std::string response_payload =
      serve::EncodeEncodeResponsePayload(response);
  ErrorResponse error;
  error.code = WireError::kUnavailable;
  error.message = "draining";
  const std::string error_payload = serve::EncodeErrorResponsePayload(error);

  util::Rng rng(7);
  const int iters = util::FuzzIterationsFromEnv(400);
  for (int i = 0; i < iters; ++i) {
    (void)serve::ParseEncodeRequestPayload(
        util::MutateBytes(request_payload, &rng, 1 + (i % 6)), 64);
    (void)serve::PeekEncodeRequestHead(
        util::MutateBytes(request_payload, &rng, 1 + (i % 6)), 64);
    (void)serve::ParseEncodeResponsePayload(
        util::MutateBytes(response_payload, &rng, 1 + (i % 6)));
    (void)serve::ParseErrorResponsePayload(
        util::MutateBytes(error_payload, &rng, 1 + (i % 6)));
  }
}

// --- Socket helpers and the self-pipe --------------------------------------

TEST(SocketTest, WriteFullSurvivesInjectedShortWrites) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  util::UniqueFd a(fds[0]), b(fds[1]);
  const std::string message(100, 'x');
  {
    // Every chunk is truncated to one byte: 100 matching calls, all armed
    // one at a time would be slow — arm the first and rely on the loop.
    util::ScopedFaultInjection guard("socket.write.short", 1);
    ASSERT_TRUE(util::WriteFull(a.get(), message.data(), message.size()).ok());
  }
  std::string received(message.size(), '\0');
  ASSERT_TRUE(util::ReadFull(b.get(), received.data(), received.size()).ok());
  EXPECT_EQ(received, message);
}

TEST(SocketTest, WriteFullReportsInjectedFailure) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  util::UniqueFd a(fds[0]), b(fds[1]);
  util::ScopedFaultInjection guard("socket.write", 1);
  const util::Status s = util::WriteFull(a.get(), "abc", 3);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), util::StatusCode::kIo);
}

TEST(SocketTest, ReadFullDistinguishesCleanEofFromTruncation) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  util::UniqueFd a(fds[0]), b(fds[1]);

  // Peer closes before any byte: clean hangup (kNotFound).
  a.Reset();
  char buf[8];
  util::Status s = util::ReadFull(b.get(), buf, sizeof(buf));
  EXPECT_EQ(s.code(), util::StatusCode::kNotFound);

  // Peer closes mid-message: data loss.
  int fds2[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds2), 0);
  util::UniqueFd c(fds2[0]), d(fds2[1]);
  ASSERT_TRUE(util::WriteFull(c.get(), "abc", 3).ok());
  c.Reset();
  s = util::ReadFull(d.get(), buf, sizeof(buf));
  EXPECT_EQ(s.code(), util::StatusCode::kDataLoss);
}

TEST(SocketTest, SelfPipeNotifyAndDrain) {
  util::SelfPipe pipe;
  ASSERT_TRUE(pipe.valid());
  EXPECT_FALSE(pipe.Drain());
  pipe.Notify();
  pipe.Notify();  // coalesced: still one drain
  EXPECT_TRUE(pipe.Drain());
  EXPECT_FALSE(pipe.Drain());
}

TEST(SocketTest, SignalHandlerRoutesSigtermThroughSelfPipe) {
  util::SelfPipe pipe;
  ASSERT_TRUE(pipe.valid());
  ASSERT_TRUE(util::InstallShutdownSignalHandler(&pipe).ok());
  ASSERT_EQ(::kill(::getpid(), SIGTERM), 0);
  // The handler's write is asynchronous; poll for it.
  pollfd pfd{pipe.read_fd(), POLLIN, 0};
  ASSERT_GT(::poll(&pfd, 1, 2000), 0) << "signal never reached the pipe";
  EXPECT_TRUE(pipe.Drain());
  util::ResetShutdownSignalHandler();
}

// --- Token bucket ----------------------------------------------------------

TEST(TokenBucketTest, SpendsBurstThenRefillsAtRate) {
  serve::TokenBucket bucket(/*rate_per_sec=*/5.0, /*burst=*/10.0);
  double retry = 0;
  EXPECT_TRUE(bucket.TrySpend(10, /*now=*/0.0, &retry));  // full burst
  EXPECT_FALSE(bucket.TrySpend(1, 0.0, &retry));
  EXPECT_NEAR(retry, 0.2, 1e-9);  // 1 token at 5/sec
  EXPECT_TRUE(bucket.TrySpend(1, 0.2, &retry));
  // Refill clamps at burst: after a long idle it holds exactly `burst`.
  EXPECT_NEAR(bucket.tokens_at(1000.0), 10.0, 1e-9);
}

TEST(TokenBucketTest, RefillClampsToBurst) {
  serve::TokenBucket bucket(5.0, 10.0);
  double retry = 0;
  ASSERT_TRUE(bucket.TrySpend(10, 0.0, &retry));
  EXPECT_NEAR(bucket.tokens_at(100.0), 10.0, 1e-9);  // clamped, not 500
}

TEST(TokenBucketTest, ImpossibleCostsReportNever) {
  double retry = 0;
  serve::TokenBucket zero(0.0, 0.0);
  EXPECT_FALSE(zero.TrySpend(1, 0.0, &retry));
  EXPECT_LT(retry, 0);  // never

  serve::TokenBucket small(5.0, 4.0);
  EXPECT_FALSE(small.TrySpend(5, 0.0, &retry));  // cost > burst
  EXPECT_LT(retry, 0);
}

// --- Admission control -----------------------------------------------------

AdmissionController::Config TwoTenantConfig() {
  AdmissionController::Config config;
  config.default_tenant.max_queued_requests = 64;
  return config;
}

TEST(AdmissionTest, ZeroQuotaTenantIsAlwaysShedWithRetryNever) {
  AdmissionController::Config config;
  TenantConfig zero;
  zero.rate_plans_per_sec = 0;
  zero.burst_plans = 0;
  config.tenants["free-tier"] = zero;
  AdmissionController admission(config);

  const auto result = admission.Offer(MakeRequest("free-tier", 1), 0.0);
  EXPECT_EQ(result.decision, AdmissionController::Decision::kShedQuota);
  EXPECT_EQ(result.retry_after_ms, serve::kRetryNever);

  const auto counters = admission.CountersSnapshot();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].second.shed_quota, 1u);
  EXPECT_EQ(counters[0].second.admitted, 0u);
}

TEST(AdmissionTest, QuotaShedCarriesFiniteRetryHint) {
  AdmissionController::Config config;
  TenantConfig limited;
  limited.rate_plans_per_sec = 10;
  limited.burst_plans = 4;
  config.tenants["limited"] = limited;
  AdmissionController admission(config);

  EXPECT_EQ(admission.Offer(MakeRequest("limited", 4), 0.0).decision,
            AdmissionController::Decision::kAdmitted);
  const auto shed = admission.Offer(MakeRequest("limited", 4), 0.0);
  EXPECT_EQ(shed.decision, AdmissionController::Decision::kShedQuota);
  EXPECT_GE(shed.retry_after_ms, 1u);
  EXPECT_LT(shed.retry_after_ms, serve::kRetryNever);
}

TEST(AdmissionTest, ExpiredDeadlineIsShedAtOffer) {
  AdmissionController admission(TwoTenantConfig());
  const auto result =
      admission.Offer(MakeRequest("t", 1, /*deadline=*/1.0), /*now=*/1.0);
  EXPECT_EQ(result.decision, AdmissionController::Decision::kShedDeadline);
  const auto counters = admission.CountersSnapshot();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].second.shed_deadline, 1u);
}

TEST(AdmissionTest, BoundedQueueShedsWithRetryHint) {
  AdmissionController::Config config;
  config.default_tenant.max_queued_requests = 2;
  config.queue_full_retry_ms = 35;
  AdmissionController admission(config);

  EXPECT_EQ(admission.Offer(MakeRequest("t", 1), 0.0).decision,
            AdmissionController::Decision::kAdmitted);
  EXPECT_EQ(admission.Offer(MakeRequest("t", 1), 0.0).decision,
            AdmissionController::Decision::kAdmitted);
  const auto shed = admission.Offer(MakeRequest("t", 1), 0.0);
  EXPECT_EQ(shed.decision, AdmissionController::Decision::kShedQueueFull);
  EXPECT_EQ(shed.retry_after_ms, 35u);
  EXPECT_EQ(admission.TotalQueued(), 2u);
}

TEST(AdmissionTest, WeightedFairDequeueServesProportionally) {
  AdmissionController::Config config;
  config.default_tenant.max_queued_requests = 64;
  TenantConfig heavy;
  heavy.weight = 2.0;
  config.tenants["heavy"] = heavy;
  AdmissionController admission(config);

  for (int i = 0; i < 30; ++i) {
    ASSERT_EQ(admission.Offer(MakeRequest("heavy", 1), 0.0).decision,
              AdmissionController::Decision::kAdmitted);
    ASSERT_EQ(admission.Offer(MakeRequest("light", 1), 0.0).decision,
              AdmissionController::Decision::kAdmitted);
  }
  int heavy_served = 0, light_served = 0;
  for (int i = 0; i < 30; ++i) {
    const auto work = admission.TryPop();
    ASSERT_TRUE(work.has_value());
    (work->tenant == "heavy" ? heavy_served : light_served)++;
  }
  // Start-time WFQ with weights 2:1 serves exactly 2:1 while both are
  // backlogged.
  EXPECT_EQ(heavy_served, 20);
  EXPECT_EQ(light_served, 10);
}

TEST(AdmissionTest, DrainFlushesQueuedWorkThenStopsConsumers) {
  AdmissionController admission(TwoTenantConfig());
  ASSERT_EQ(admission.Offer(MakeRequest("t", 1), 0.0).decision,
            AdmissionController::Decision::kAdmitted);
  ASSERT_EQ(admission.Offer(MakeRequest("t", 1), 0.0).decision,
            AdmissionController::Decision::kAdmitted);
  admission.SetDraining();

  // New work is shed...
  EXPECT_EQ(admission.Offer(MakeRequest("t", 1), 0.0).decision,
            AdmissionController::Decision::kShedDraining);
  // ...but everything admitted still flows out, then consumers see the end.
  EXPECT_TRUE(admission.PopBlocking().has_value());
  EXPECT_TRUE(admission.PopBlocking().has_value());
  EXPECT_FALSE(admission.PopBlocking().has_value());
}

TEST(AdmissionTest, AbortReturnsQueuedWorkAndWakesConsumers) {
  AdmissionController admission(TwoTenantConfig());
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(admission.Offer(MakeRequest("t", 1), 0.0).decision,
              AdmissionController::Decision::kAdmitted);
  }
  const std::vector<QueuedRequest> leftover = admission.Abort();
  EXPECT_EQ(leftover.size(), 3u);
  EXPECT_EQ(admission.TotalQueued(), 0u);
  EXPECT_FALSE(admission.PopBlocking().has_value());
}

// --- Cache snapshot/restore and consistent stats ---------------------------

TEST(CacheSnapshotTest, RestoreReproducesEntriesAndLruOrder) {
  serve::EmbeddingCacheConfig config;
  config.capacity = 3;
  config.shards = 1;  // one globally-ordered LRU for the eviction check
  serve::EmbeddingCache cache(config);
  cache.Insert(1, {1.0f});
  cache.Insert(2, {2.0f});
  cache.Insert(3, {3.0f});
  ASSERT_TRUE(cache.Lookup(2, nullptr));  // refresh: LRU order is now 1,3,2

  serve::EmbeddingCache restored(config);
  restored.Restore(cache.Snapshot());
  EXPECT_EQ(restored.GetStats().entries, 3u);
  std::vector<float> value;
  ASSERT_TRUE(restored.Lookup(3, &value));
  EXPECT_EQ(value, std::vector<float>{3.0f});

  // The restored cache must evict in the original's LRU order — with key 3
  // freshly touched above, key 1 is the least recently used.
  restored.Insert(4, {4.0f});
  EXPECT_FALSE(restored.Contains(1));
  EXPECT_TRUE(restored.Contains(2));
  EXPECT_TRUE(restored.Contains(3));
  EXPECT_TRUE(restored.Contains(4));
}

TEST(CacheSnapshotTest, RestoreDoesNotCountHitsOrMisses) {
  serve::EmbeddingCache cache;
  cache.Insert(10, {1.0f});
  cache.Insert(11, {2.0f});
  serve::EmbeddingCache restored;
  restored.Restore(cache.Snapshot());
  const auto stats = restored.GetStats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(CacheStatsTest, SnapshotIsConsistentUnderConcurrentWrites) {
  // A writer alternates a guaranteed miss on shard 0 (key 2, never
  // inserted) with a guaranteed hit on shard 1 (key 1, inserted once), in
  // that order. At any consistent cut, misses - hits is 0 or 1. A
  // shard-at-a-time reader could observe shard 0's counter from long before
  // shard 1's and report hits far ahead of misses — the torn read this
  // test exists to catch.
  serve::EmbeddingCacheConfig config;
  config.capacity = 16;
  config.shards = 2;
  serve::EmbeddingCache cache(config);
  cache.Insert(1, {1.0f});  // shard 1 (low bit)

  std::atomic<bool> done{false};
  std::thread writer([&cache, &done] {
    for (int i = 0; i < 20000; ++i) {
      cache.Lookup(2, nullptr);  // miss, shard 0
      cache.Lookup(1, nullptr);  // hit, shard 1
    }
    done.store(true);
  });
  bool torn = false;
  uint64_t last_total = 0;
  while (!done.load() && !torn) {
    const auto stats = cache.GetStats();
    if (stats.misses < stats.hits || stats.misses - stats.hits > 1) {
      torn = true;
    }
    // Totals must also be monotone across snapshots.
    const uint64_t total = stats.hits + stats.misses;
    if (total < last_total) torn = true;
    last_total = total;
  }
  writer.join();
  EXPECT_FALSE(torn) << "GetStats observed a torn hit/miss snapshot";
  const auto final_stats = cache.GetStats();
  EXPECT_EQ(final_stats.hits, 20000u);
  EXPECT_EQ(final_stats.misses, 20000u);
}

TEST(CacheStatsTest, SnapshotIsWellFormedUnderConcurrentInserts) {
  // The daemon's snapshot thread walks the cache while encode workers keep
  // inserting (a warm snapshot racing live traffic). Every snapshot taken
  // mid-stream must be internally consistent: no torn rows (every
  // embedding keeps its full width and its key's marker value), no
  // duplicate keys, and never more entries than the capacity bound. Run
  // under TSan this also proves Snapshot holds the shard locks it claims.
  serve::EmbeddingCacheConfig config;
  config.capacity = 64;
  config.shards = 4;
  serve::EmbeddingCache cache(config);
  constexpr uint32_t kDim = 8;

  std::atomic<bool> done{false};
  std::thread writer([&cache, &done] {
    for (uint64_t i = 0; i < 20000; ++i) {
      std::vector<float> row(kDim, static_cast<float>(i));
      cache.Insert(i, std::move(row));
    }
    done.store(true);
  });
  bool malformed = false;
  int snapshots = 0;
  while (!done.load() && !malformed) {
    const auto snapshot = cache.Snapshot();
    ++snapshots;
    if (snapshot.size() > config.capacity) malformed = true;
    std::vector<uint64_t> keys;
    for (const auto& [key, row] : snapshot) {
      keys.push_back(key);
      if (row.size() != kDim) {
        malformed = true;
        break;
      }
      for (float v : row) {
        if (v != static_cast<float>(key)) {  // torn row: mixed writes
          malformed = true;
          break;
        }
      }
    }
    std::sort(keys.begin(), keys.end());
    if (std::adjacent_find(keys.begin(), keys.end()) != keys.end()) {
      malformed = true;
    }
  }
  writer.join();
  EXPECT_FALSE(malformed) << "Snapshot observed a torn or duplicated entry";
  EXPECT_GT(snapshots, 0);
  // The final snapshot replays into an identical cache.
  const auto final_snapshot = cache.Snapshot();
  EXPECT_EQ(final_snapshot.size(), config.capacity);
  serve::EmbeddingCache replica(config);
  replica.Restore(cache.Snapshot());
  EXPECT_EQ(replica.GetStats().entries, config.capacity);
}

// --- Warm state ------------------------------------------------------------

serve::WarmState MakeWarmState(uint64_t fingerprint, uint32_t dim,
                               int entries) {
  serve::WarmState state;
  state.model_fingerprint = fingerprint;
  state.dim = dim;
  for (int i = 0; i < entries; ++i) {
    std::vector<float> row(dim);
    for (uint32_t d = 0; d < dim; ++d) {
      row[d] = static_cast<float>(i) + 0.25f * static_cast<float>(d);
    }
    state.entries.emplace_back(1000 + i, std::move(row));
  }
  return state;
}

TEST(WarmStateTest, SaveLoadRoundTrip) {
  const std::string path =
      testing::TempDir() + "warm_roundtrip_" + std::to_string(::getpid());
  const serve::WarmState state = MakeWarmState(0xfeed, 4, 3);
  ASSERT_TRUE(serve::SaveWarmState(path, state).ok());
  ASSERT_TRUE(serve::WarmStateExists(path));

  serve::WarmState loaded;
  ASSERT_TRUE(serve::LoadWarmState(path, 0xfeed, &loaded).ok());
  EXPECT_EQ(loaded.model_fingerprint, 0xfeedu);
  EXPECT_EQ(loaded.dim, 4u);
  ASSERT_EQ(loaded.entries.size(), 3u);
  EXPECT_EQ(loaded.entries[1].first, 1001u);
  EXPECT_EQ(loaded.entries[1].second, state.entries[1].second);
  std::remove(path.c_str());
}

TEST(WarmStateTest, FingerprintMismatchRefusesRestore) {
  const std::string path =
      testing::TempDir() + "warm_fp_" + std::to_string(::getpid());
  ASSERT_TRUE(serve::SaveWarmState(path, MakeWarmState(0xaaaa, 2, 1)).ok());
  serve::WarmState loaded;
  loaded.dim = 77;  // canary: must stay untouched on refusal
  const util::Status s = serve::LoadWarmState(path, 0xbbbb, &loaded);
  EXPECT_EQ(s.code(), util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(loaded.dim, 77u);
  std::remove(path.c_str());
}

TEST(WarmStateTest, CorruptionAndTruncationAreDataLoss) {
  const std::string path =
      testing::TempDir() + "warm_corrupt_" + std::to_string(::getpid());
  ASSERT_TRUE(serve::SaveWarmState(path, MakeWarmState(0x1, 3, 4)).ok());
  std::string bytes;
  {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << is.rdbuf();
    bytes = buffer.str();
  }
  // Flip one payload byte: CRC must catch it.
  std::string flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x40;
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(flipped.data(), static_cast<std::streamsize>(flipped.size()));
  }
  serve::WarmState loaded;
  EXPECT_EQ(serve::LoadWarmState(path, 0, &loaded).code(),
            util::StatusCode::kDataLoss);
  // Truncate: header claims more payload than the file holds.
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_FALSE(serve::LoadWarmState(path, 0, &loaded).ok());
  std::remove(path.c_str());
}

TEST(WarmStateTest, WriteFaultsLeaveNoTornFileBehind) {
  const std::string path =
      testing::TempDir() + "warm_fault_" + std::to_string(::getpid());
  const serve::WarmState original = MakeWarmState(0x2, 2, 2);
  ASSERT_TRUE(serve::SaveWarmState(path, original).ok());

  for (const char* site : {"warm_state.open_tmp", "warm_state.write",
                           "warm_state.flush", "warm_state.rename"}) {
    util::ScopedFaultInjection guard(site, 1);
    const util::Status s = serve::SaveWarmState(path, MakeWarmState(0x3, 2, 5));
    EXPECT_FALSE(s.ok()) << site;
    // The failed save left no temp file and did not touch the original.
    EXPECT_FALSE(serve::WarmStateExists(path + ".tmp")) << site;
    serve::WarmState loaded;
    ASSERT_TRUE(serve::LoadWarmState(path, 0x2, &loaded).ok()) << site;
    EXPECT_EQ(loaded.entries.size(), 2u) << site;
  }
  std::remove(path.c_str());
}

TEST(WarmStateTest, RaggedEntryIsRejectedOnSave) {
  serve::WarmState state = MakeWarmState(0x4, 3, 1);
  state.entries[0].second.resize(2);  // dim says 3
  const std::string path =
      testing::TempDir() + "warm_ragged_" + std::to_string(::getpid());
  EXPECT_EQ(serve::SaveWarmState(path, state).code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_FALSE(serve::WarmStateExists(path));
}

// --- ServingDaemon end to end ----------------------------------------------

class DaemonTest : public testing::Test {
 protected:
  // Builds a deterministic small encoder; every daemon in a test shares it.
  DaemonTest() : rng_(42), encoder_(SmallConfig(), &rng_) {}

  ServingDaemonConfig BaseConfig(const char* tag) {
    ServingDaemonConfig config;
    config.socket_path = TestSocketPath(tag);
    config.workers = 2;
    config.model_fingerprint = serve::ModelFingerprint(encoder_);
    config.drain_deadline_seconds = 5.0;
    return config;
  }

  util::Rng rng_;
  encoder::TransformerPlanEncoder encoder_;
};

TEST_F(DaemonTest, PingEncodeStatsEndToEnd) {
  const ServingDaemonConfig config = BaseConfig("basic");
  ServingDaemon daemon(&encoder_, config);
  ASSERT_TRUE(daemon.Start().ok());

  auto client_or = DaemonClient::Connect(config.socket_path);
  ASSERT_TRUE(client_or.ok()) << client_or.status().ToString();
  DaemonClient client = std::move(*client_or);
  ASSERT_TRUE(client.Ping().ok());

  EncodeRequest request;
  request.tenant = "default";
  request.plans = SamplePlanTexts(5, 99);
  const auto response = client.Encode(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->embeddings.size(), 5u);
  EXPECT_EQ(response->dim, static_cast<uint32_t>(encoder_.output_dim()));

  // Bit-exactness across the wire: the daemon's embeddings must equal a
  // local EmbeddingService's for the same plans (the serving contract).
  serve::EmbeddingService local(&encoder_);
  std::vector<std::unique_ptr<plan::PlanNode>> plans;
  std::vector<const plan::PlanNode*> ptrs;
  for (const std::string& text : request.plans) {
    auto parsed = plan::ParsePlanNodeChecked(text);
    ASSERT_TRUE(parsed.ok());
    plans.push_back(std::move(*parsed));
    ptrs.push_back(plans.back().get());
  }
  const std::vector<nn::Tensor> expected = local.EncodeAll(ptrs);
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(static_cast<int>(response->embeddings[i].size()),
              expected[i].cols());
    for (int c = 0; c < expected[i].cols(); ++c) {
      EXPECT_EQ(response->embeddings[i][c], expected[i].at(0, c))
          << "embedding " << i << " differs across the wire at column " << c;
    }
  }

  const auto stats_json = client.StatsJson();
  ASSERT_TRUE(stats_json.ok()) << stats_json.status().ToString();
  EXPECT_NE(stats_json->find("\"service\""), std::string::npos);
  EXPECT_NE(stats_json->find("\"default\""), std::string::npos);

  daemon.Stop();
  const serve::DaemonStats stats = daemon.GetStats();
  EXPECT_EQ(stats.protocol_errors, 0u);
  ASSERT_EQ(stats.tenants.size(), 1u);
  EXPECT_EQ(stats.tenants[0].second.admitted, 1u);
  EXPECT_EQ(stats.tenants[0].second.completed, 1u);
  EXPECT_EQ(stats.tenants[0].second.plans, 5u);
}

TEST_F(DaemonTest, ZeroQuotaTenantGetsTypedShedOverTheWire) {
  ServingDaemonConfig config = BaseConfig("zeroquota");
  TenantConfig zero;
  zero.rate_plans_per_sec = 0;
  zero.burst_plans = 0;
  config.admission.tenants["free-tier"] = zero;
  ServingDaemon daemon(&encoder_, config);
  ASSERT_TRUE(daemon.Start().ok());

  auto client = DaemonClient::Connect(config.socket_path);
  ASSERT_TRUE(client.ok());
  EncodeRequest request;
  request.tenant = "free-tier";
  request.plans = SamplePlanTexts(2, 5);
  ErrorResponse error;
  const auto response = client->Encode(request, &error);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(error.code, WireError::kResourceExhausted);
  EXPECT_EQ(error.retry_after_ms, serve::kRetryNever);

  // The shed is per-tenant: the default tenant still gets service on the
  // very same connection.
  request.tenant = "default";
  EXPECT_TRUE(client->Encode(request).ok());
  daemon.Stop();
}

TEST_F(DaemonTest, AlreadyExpiredDeadlineGetsTypedError) {
  const ServingDaemonConfig config = BaseConfig("deadline");
  ServingDaemon daemon(&encoder_, config);
  ASSERT_TRUE(daemon.Start().ok());

  auto client = DaemonClient::Connect(config.socket_path);
  ASSERT_TRUE(client.ok());
  EncodeRequest request;
  request.tenant = "default";
  request.deadline_ms = 0;  // expired on arrival by definition
  request.plans = SamplePlanTexts(1, 6);
  ErrorResponse error;
  const auto response = client->Encode(request, &error);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(error.code, WireError::kDeadlineExceeded);

  daemon.Stop();
  const auto stats = daemon.GetStats();
  ASSERT_EQ(stats.tenants.size(), 1u);
  EXPECT_EQ(stats.tenants[0].second.shed_deadline, 1u);
}

TEST_F(DaemonTest, OverloadShedsWithTypedErrorsAndBoundedQueue) {
  ServingDaemonConfig config = BaseConfig("overload");
  config.workers = 1;
  config.admission.default_tenant.max_queued_requests = 1;
  ServingDaemon daemon(&encoder_, config);
  ASSERT_TRUE(daemon.Start().ok());

  // Pipeline 12 ENCODE frames without reading responses: the IO thread
  // admits them microseconds apart while each encode takes milliseconds,
  // so the 1-deep queue must shed most of them.
  auto fd_or = util::ConnectUnix(config.socket_path);
  ASSERT_TRUE(fd_or.ok());
  EncodeRequest request;
  request.tenant = "default";
  request.plans = SamplePlanTexts(8, 13);
  const std::string frame = serve::EncodeFrame(
      FrameType::kEncodeRequest, serve::EncodeEncodeRequestPayload(request));
  std::string burst;
  const int kRequests = 12;
  for (int i = 0; i < kRequests; ++i) burst += frame;
  ASSERT_TRUE(util::WriteFull(fd_or->get(), burst.data(), burst.size()).ok());

  int ok = 0, shed = 0;
  for (int i = 0; i < kRequests; ++i) {
    Frame response;
    ASSERT_TRUE(ReadFrameRaw(fd_or->get(), &response).ok()) << "response " << i;
    if (response.type == FrameType::kEncodeResponse) {
      ++ok;
    } else {
      ASSERT_EQ(response.type, FrameType::kErrorResponse);
      const auto error = serve::ParseErrorResponsePayload(response.payload);
      ASSERT_TRUE(error.ok());
      EXPECT_EQ(error->code, WireError::kResourceExhausted);
      EXPECT_GE(error->retry_after_ms, 1u);
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, kRequests);
  EXPECT_GE(ok, 1) << "at least the first request must be admitted";
  EXPECT_GE(shed, 1) << "a 1-deep queue cannot absorb a 12-request burst";

  // Overload degraded requests, not the daemon: it serves again afterwards.
  auto client = DaemonClient::Connect(config.socket_path);
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client->Ping().ok());
  daemon.Stop();
}

TEST_F(DaemonTest, GarbageBytesGetTypedErrorAndDisconnect) {
  const ServingDaemonConfig config = BaseConfig("garbage");
  ServingDaemon daemon(&encoder_, config);
  ASSERT_TRUE(daemon.Start().ok());

  auto fd_or = util::ConnectUnix(config.socket_path);
  ASSERT_TRUE(fd_or.ok());
  const std::string garbage = "this is definitely not a QPE1 frame";
  ASSERT_TRUE(
      util::WriteFull(fd_or->get(), garbage.data(), garbage.size()).ok());
  Frame response;
  ASSERT_TRUE(ReadFrameRaw(fd_or->get(), &response).ok());
  ASSERT_EQ(response.type, FrameType::kErrorResponse);
  const auto error = serve::ParseErrorResponsePayload(response.payload);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->code, WireError::kInvalidArgument);
  // The daemon then hangs up on the unframed stream.
  char byte;
  EXPECT_EQ(util::ReadFull(fd_or->get(), &byte, 1).code(),
            util::StatusCode::kNotFound);

  // One hostile client never takes the daemon down.
  auto client = DaemonClient::Connect(config.socket_path);
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client->Ping().ok());
  daemon.Stop();
  EXPECT_GE(daemon.GetStats().protocol_errors, 1u);
}

TEST_F(DaemonTest, OversizedFrameIsRejectedNotBuffered) {
  ServingDaemonConfig config = BaseConfig("oversize");
  config.max_payload_bytes = 1024;
  ServingDaemon daemon(&encoder_, config);
  ASSERT_TRUE(daemon.Start().ok());

  auto fd_or = util::ConnectUnix(config.socket_path);
  ASSERT_TRUE(fd_or.ok());
  // A valid header whose payload_size is over the daemon's limit. Only the
  // header is sent: the daemon must reject on the claim alone.
  std::string header = serve::EncodeFrame(FrameType::kEncodeRequest, "");
  const uint32_t huge = 1u << 24;
  std::memcpy(header.data() + 8, &huge, 4);
  ASSERT_TRUE(util::WriteFull(fd_or->get(), header.data(), header.size()).ok());
  Frame response;
  ASSERT_TRUE(ReadFrameRaw(fd_or->get(), &response).ok());
  EXPECT_EQ(response.type, FrameType::kErrorResponse);
  daemon.Stop();
  EXPECT_GE(daemon.GetStats().protocol_errors, 1u);
}

TEST_F(DaemonTest, DrainPersistsWarmStateAndRestartServesFromCache) {
  ServingDaemonConfig config = BaseConfig("drain");
  config.warm_state_path =
      testing::TempDir() + "daemon_drain_warm_" + std::to_string(::getpid());
  std::remove(config.warm_state_path.c_str());
  const std::vector<std::string> plans = SamplePlanTexts(6, 77);

  std::vector<std::vector<float>> first_run;
  {
    ServingDaemon daemon(&encoder_, config);
    ASSERT_TRUE(daemon.Start().ok());
    auto client = DaemonClient::Connect(config.socket_path);
    ASSERT_TRUE(client.ok());
    EncodeRequest request;
    request.tenant = "default";
    request.plans = plans;
    const auto response = client->Encode(request);
    ASSERT_TRUE(response.ok());
    first_run = response->embeddings;
    daemon.Stop();  // graceful drain: final warm snapshot
    EXPECT_GE(daemon.GetStats().snapshots_written, 1u);
  }
  ASSERT_TRUE(serve::WarmStateExists(config.warm_state_path));

  // Same model fingerprint: the restart restores the cache and serves the
  // whole request from it, bit-identically.
  {
    ServingDaemon daemon(&encoder_, config);
    ASSERT_TRUE(daemon.Start().ok());
    EXPECT_EQ(daemon.GetStats().warm_restored_entries, 6u);
    auto client = DaemonClient::Connect(config.socket_path);
    ASSERT_TRUE(client.ok());
    EncodeRequest request;
    request.tenant = "default";
    request.plans = plans;
    const auto response = client->Encode(request);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->embeddings, first_run);
    daemon.Stop();
    const auto stats = daemon.GetStats();
    EXPECT_EQ(stats.service.cache.hits, 6u);
    EXPECT_EQ(stats.service.cache.misses, 0u);
    EXPECT_EQ(stats.service.encoded_plans, 0u);
  }

  // A different model refuses the snapshot and starts cold.
  {
    ServingDaemonConfig cold = config;
    cold.model_fingerprint = config.model_fingerprint ^ 0x1;
    ServingDaemon daemon(&encoder_, cold);
    ASSERT_TRUE(daemon.Start().ok());
    EXPECT_EQ(daemon.GetStats().warm_restored_entries, 0u);
    daemon.Stop();
  }
  std::remove(config.warm_state_path.c_str());
}

// Every way a warm snapshot can be damaged on disk — truncation, a flipped
// payload byte (CRC mismatch), a header version from the future, a model
// fingerprint from a different build — must leave the restarted daemon
// indistinguishable from a cold start: Start() succeeds, not one snapshot
// entry reaches the cache, and the first request is served by encoding.
// This is the daemon-level counterpart of the WarmStateTest load tests:
// those prove LoadWarmState rejects the file, this proves the daemon
// survives the rejection.
TEST_F(DaemonTest, CorruptWarmStateVariantsAllStartColdAndStillServe) {
  ServingDaemonConfig config = BaseConfig("warmmatrix");
  config.warm_state_path = testing::TempDir() + "daemon_warm_matrix_" +
                           std::to_string(::getpid());
  std::remove(config.warm_state_path.c_str());
  const std::vector<std::string> plans = SamplePlanTexts(5, 61);

  // Produce a pristine snapshot the honest way: serve, then drain.
  {
    ServingDaemon daemon(&encoder_, config);
    ASSERT_TRUE(daemon.Start().ok());
    auto client = DaemonClient::Connect(config.socket_path);
    ASSERT_TRUE(client.ok());
    EncodeRequest request;
    request.tenant = "default";
    request.plans = plans;
    ASSERT_TRUE(client->Encode(request).ok());
    daemon.Stop();
  }
  std::string pristine;
  {
    std::ifstream is(config.warm_state_path, std::ios::binary);
    ASSERT_TRUE(is.good());
    std::ostringstream os;
    os << is.rdbuf();
    pristine = os.str();
  }
  // header: magic u32 | version u32 | payload_size u64 | crc u32 = 20 bytes
  ASSERT_GT(pristine.size(), 20u);

  struct Variant {
    const char* name;
    std::string bytes;            // file contents to plant
    uint64_t fingerprint_xor;     // perturbs the serving model's fingerprint
  };
  std::string truncated = pristine.substr(0, pristine.size() / 2);
  std::string flipped = pristine;
  flipped[flipped.size() - 1] ^= 0x01;  // payload byte: CRC must catch it
  std::string version_skew = pristine;
  version_skew[4] ^= 0x40;  // version u32 at offset 4: a future format
  const Variant variants[] = {
      {"truncated", truncated, 0},
      {"flipped_payload_byte", flipped, 0},
      {"version_skew", version_skew, 0},
      {"fingerprint_mismatch", pristine, 0xDEADBEEFu},
  };

  for (const Variant& variant : variants) {
    SCOPED_TRACE(variant.name);
    {
      std::ofstream os(config.warm_state_path,
                       std::ios::binary | std::ios::trunc);
      os.write(variant.bytes.data(),
               static_cast<std::streamsize>(variant.bytes.size()));
      ASSERT_TRUE(os.good());
    }
    ServingDaemonConfig damaged = config;
    damaged.model_fingerprint = config.model_fingerprint ^
                                variant.fingerprint_xor;
    ServingDaemon daemon(&encoder_, damaged);
    ASSERT_TRUE(daemon.Start().ok());
    // Zero cache mutation: the rejected snapshot contributed nothing.
    EXPECT_EQ(daemon.GetStats().warm_restored_entries, 0u);
    EXPECT_EQ(daemon.GetStats().service.cache.entries, 0u);

    auto client = DaemonClient::Connect(config.socket_path);
    ASSERT_TRUE(client.ok());
    EncodeRequest request;
    request.tenant = "default";
    request.plans = plans;
    const auto response = client->Encode(request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->embeddings.size(), plans.size());
    daemon.Stop();
    const auto stats = daemon.GetStats();
    EXPECT_EQ(stats.service.cache.hits, 0u);          // nothing was warm
    EXPECT_EQ(stats.service.cache.misses, plans.size());
    EXPECT_EQ(stats.service.encoded_plans, plans.size());
  }
  std::remove(config.warm_state_path.c_str());
}

TEST_F(DaemonTest, PeriodicSnapshotsHappenWithoutDrain) {
  ServingDaemonConfig config = BaseConfig("periodic");
  config.warm_state_path =
      testing::TempDir() + "daemon_periodic_warm_" + std::to_string(::getpid());
  std::remove(config.warm_state_path.c_str());
  config.snapshot_every_requests = 1;
  ServingDaemon daemon(&encoder_, config);
  ASSERT_TRUE(daemon.Start().ok());

  auto client = DaemonClient::Connect(config.socket_path);
  ASSERT_TRUE(client.ok());
  EncodeRequest request;
  request.tenant = "default";
  request.plans = SamplePlanTexts(3, 31);
  ASSERT_TRUE(client->Encode(request).ok());

  // The IO thread snapshots on its next poll tick; a SIGKILL after this
  // point would still restart warm (the script chaos suite kills for real).
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (daemon.GetStats().snapshots_written == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(daemon.GetStats().snapshots_written, 1u);
  EXPECT_TRUE(serve::WarmStateExists(config.warm_state_path));
  daemon.Stop();
  std::remove(config.warm_state_path.c_str());
}

TEST_F(DaemonTest, DrainWithHalfReadRequestCompletesWithinDeadline) {
  ServingDaemonConfig config = BaseConfig("halfread");
  config.drain_deadline_seconds = 1.0;
  ServingDaemon daemon(&encoder_, config);
  ASSERT_TRUE(daemon.Start().ok());

  // A connection stalls mid-frame: header claims a payload that never
  // arrives. Drain must not wait for it.
  auto fd_or = util::ConnectUnix(config.socket_path);
  ASSERT_TRUE(fd_or.ok());
  const std::string full = serve::EncodeFrame(
      FrameType::kEncodeRequest,
      serve::EncodeEncodeRequestPayload(
          [] {
            EncodeRequest r;
            r.tenant = "default";
            r.plans = SamplePlanTexts(1, 3);
            return r;
          }()));
  ASSERT_TRUE(util::WriteFull(fd_or->get(), full.data(), full.size() / 2).ok());

  const auto t0 = std::chrono::steady_clock::now();
  daemon.Stop();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // Bound: drain deadline + poll granularity + generous CI slack, far below
  // "hangs forever".
  EXPECT_LT(elapsed, 4.0);
  // The half-read connection was closed out from under the stalled client:
  // clean EOF, or ECONNRESET since the daemon discarded our unread bytes.
  char byte;
  const util::Status read_status = util::ReadFull(fd_or->get(), &byte, 1);
  EXPECT_TRUE(read_status.code() == util::StatusCode::kNotFound ||
              read_status.code() == util::StatusCode::kIo)
      << read_status.ToString();
}

TEST_F(DaemonTest, SigtermDrainsThroughSelfPipe) {
  ServingDaemonConfig config = BaseConfig("sigterm");
  config.install_signal_handlers = true;
  ServingDaemon daemon(&encoder_, config);
  ASSERT_TRUE(daemon.Start().ok());
  auto client = DaemonClient::Connect(config.socket_path);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Ping().ok());

  // A real SIGTERM, exactly as a process manager would deliver it. The
  // handler only touches the pre-opened self-pipe, so this is safe at any
  // moment — including mid-encode.
  ASSERT_EQ(::kill(::getpid(), SIGTERM), 0);
  daemon.Join();
  util::ResetShutdownSignalHandler();
  EXPECT_TRUE(daemon.draining());

  // New connections are refused after drain.
  EXPECT_FALSE(DaemonClient::Connect(config.socket_path).ok());
}

TEST_F(DaemonTest, InjectedReadFaultDegradesOneConnectionOnly) {
  const ServingDaemonConfig config = BaseConfig("readfault");
  ServingDaemon daemon(&encoder_, config);
  ASSERT_TRUE(daemon.Start().ok());

  auto client_or = DaemonClient::Connect(config.socket_path);
  ASSERT_TRUE(client_or.ok());
  {
    util::ScopedFaultInjection guard("daemon.conn.read", 1);
    // The IO thread's next read attempt on this connection fails; the
    // daemon drops the connection, not itself.
    const util::Status s = client_or->Ping();
    EXPECT_FALSE(s.ok());
  }
  auto client2 = DaemonClient::Connect(config.socket_path);
  ASSERT_TRUE(client2.ok());
  EXPECT_TRUE(client2->Ping().ok());
  daemon.Stop();
  EXPECT_GE(daemon.GetStats().io_errors, 1u);
}

TEST_F(DaemonTest, InjectedResponseWriteFaultDropsConnectionNotDaemon) {
  const ServingDaemonConfig config = BaseConfig("writefault");
  ServingDaemon daemon(&encoder_, config);
  ASSERT_TRUE(daemon.Start().ok());

  // Raw ::send so the client side never passes through WriteFull — the
  // armed "socket.write" fault can only fire on the daemon's response path.
  auto fd_or = util::ConnectUnix(config.socket_path);
  ASSERT_TRUE(fd_or.ok());
  const std::string ping = serve::EncodeFrame(FrameType::kPingRequest, "");
  {
    util::ScopedFaultInjection guard("socket.write", 1);
    ASSERT_EQ(::send(fd_or->get(), ping.data(), ping.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(ping.size()));
    // The daemon's PONG write fails, so it closes the connection.
    char byte;
    EXPECT_EQ(util::ReadFull(fd_or->get(), &byte, 1).code(),
              util::StatusCode::kNotFound);
  }
  auto client = DaemonClient::Connect(config.socket_path);
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client->Ping().ok());
  daemon.Stop();
  EXPECT_GE(daemon.GetStats().io_errors, 1u);
}

TEST_F(DaemonTest, AcceptFaultDoesNotStopListening) {
  const ServingDaemonConfig config = BaseConfig("acceptfault");
  ServingDaemon daemon(&encoder_, config);
  ASSERT_TRUE(daemon.Start().ok());

  // connect(2) succeeds against the backlog regardless of what the
  // daemon's accept does; the armed fault makes the daemon's next accept
  // attempt fail. Listening must survive it, so at worst this client is
  // picked up on a later poll tick — and a fresh client always gets in.
  {
    util::ScopedFaultInjection guard("daemon.accept", 1);
    auto client = DaemonClient::Connect(config.socket_path);
    ASSERT_TRUE(client.ok());
    (void)client->Ping();  // may or may not be served, must not hang
  }
  auto client = DaemonClient::Connect(config.socket_path);
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client->Ping().ok());
  daemon.Stop();
}

}  // namespace
}  // namespace qpe
