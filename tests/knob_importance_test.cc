#include <algorithm>

#include "config/lhs_sampler.h"
#include "gtest/gtest.h"
#include "simdb/workloads.h"
#include "tasks/embeddings.h"
#include "tasks/knob_importance.h"

namespace qpe::tasks {
namespace {

int RankOf(const std::vector<KnobImportance>& importances, config::Knob knob) {
  for (size_t i = 0; i < importances.size(); ++i) {
    if (importances[i].knob == knob) return static_cast<int>(i);
  }
  return -1;
}

TEST(SimulatedSensitivityTest, EffectiveKnobsOutrankNuisanceKnobs) {
  const simdb::TpchWorkload tpch(0.2);
  const auto importances =
      SimulatedSensitivity(tpch, {2, 4, 17}, /*instances=*/2, 5);
  ASSERT_EQ(importances.size(), static_cast<size_t>(config::kNumKnobs));
  // The knobs the executor/planner actually consult must rank above the
  // pure-nuisance knobs.
  const int cache_rank = std::min(
      RankOf(importances, config::Knob::kSharedBuffers),
      RankOf(importances, config::Knob::kEffectiveCacheSize));
  const int work_mem_rank = RankOf(importances, config::Knob::kWorkMem);
  const int bgwriter_rank = RankOf(importances, config::Knob::kBgwriterDelay);
  const int deadlock_rank =
      RankOf(importances, config::Knob::kDeadlockTimeout);
  EXPECT_LT(cache_rank, bgwriter_rank);
  EXPECT_LT(cache_rank, deadlock_rank);
  EXPECT_LT(work_mem_rank, bgwriter_rank);
  // Nuisance knobs have exactly zero simulated sensitivity.
  for (const auto& importance : importances) {
    if (importance.knob == config::Knob::kBgwriterDelay ||
        importance.knob == config::Knob::kDeadlockTimeout ||
        importance.knob == config::Knob::kCheckpointTimeout ||
        importance.knob == config::Knob::kWalBuffers) {
      EXPECT_DOUBLE_EQ(importance.score, 0.0);
    }
  }
}

TEST(PermutationImportanceTest, ScoresComputedForEveryKnob) {
  const simdb::TpchWorkload tpch(0.05);
  config::LhsSampler sampler((util::Rng(1)));
  simdb::RunOptions options;
  const auto records = simdb::RunWorkloadTemplates(
      tpch, {2, 4}, sampler.Sample(10), options);

  EmbeddingFeaturizer::Config f_config;  // db features only
  EmbeddingFeaturizer featurizer(f_config);
  util::Rng rng(2);
  LatencyPredictor model(&featurizer, 32, &rng);
  LatencyPredictor::TrainOptions train_options;
  train_options.epochs = 40;
  model.Train(records, train_options);

  const auto importances = PermutationImportance(model, records, 3);
  ASSERT_EQ(importances.size(), static_cast<size_t>(config::kNumKnobs));
  // Sorted descending.
  for (size_t i = 1; i < importances.size(); ++i) {
    EXPECT_GE(importances[i - 1].score, importances[i].score);
  }
}

}  // namespace
}  // namespace qpe::tasks
