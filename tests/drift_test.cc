// Drift-sentinel tests: the sketch primitives (bloom, count-min, k-means
// baseline), the hysteresis state machine, wire-protocol v1/v2
// compatibility for the drift trailer, client retry/backoff with
// deterministic jitter and bounded reconnect, the crash-safe adaptation
// round (commit point, abort, bit-exact resume), and the synthetic drift
// suite — knob shift, novel templates, scale-factor jump, stationary
// control — replayed through a real daemon over its Unix socket, ending
// with the full self-healing loop: drift -> ADAPTING -> drain mid-round ->
// restart resumes -> refreshed model serves HEALTHY.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "config/db_config.h"
#include "data/plan_corpus.h"
#include "drift/adaptation.h"
#include "drift/baseline.h"
#include "drift/detector.h"
#include "drift/monitor.h"
#include "drift/sentinel.h"
#include "drift/sketches.h"
#include "encoder/structure_encoder.h"
#include "gtest/gtest.h"
#include "plan/serialize.h"
#include "plan/taxonomy.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/warm_state.h"
#include "serve/wire_protocol.h"
#include "simdb/planner.h"
#include "simdb/workloads.h"
#include "util/rng.h"
#include "util/socket.h"

namespace qpe {
namespace {

using drift::DriftComponent;
using drift::DriftState;
using serve::DaemonClient;
using serve::EncodeRequest;
using serve::EncodeResponse;
using serve::ErrorResponse;
using serve::ServingDaemon;
using serve::ServingDaemonConfig;

encoder::StructureEncoderConfig SmallConfig() {
  encoder::StructureEncoderConfig config;
  config.level1_dim = 12;
  config.level2_dim = 6;
  config.level3_dim = 6;
  config.num_heads = 2;
  config.ff_dim = 32;
  config.num_layers = 2;
  config.max_len = 128;
  config.dropout = 0.0f;
  return config;
}

std::string TestSocketPath(const char* tag) {
  return "/tmp/qpe_drift_test_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

std::string TestDir(const char* tag) {
  return testing::TempDir() + "qpe_drift_" + std::string(tag) + "_" +
         std::to_string(::getpid());
}

std::vector<std::string> RandomPlanTexts(int count, uint64_t seed) {
  data::CorpusOptions options;
  options.min_nodes = 4;
  options.max_nodes = 16;
  data::RandomPlanGenerator generator(util::Rng(seed), options);
  std::vector<std::string> plans;
  plans.reserve(count);
  for (int i = 0; i < count; ++i) {
    plans.push_back(plan::SerializePlanNode(*generator.Generate()));
  }
  return plans;
}

// Serialized physical plans for `per_template` instantiations of every
// template in `workload`, planned under `db_config` — the simdb-backed
// stream the synthetic drift suite replays through the daemon. The stream
// is deterministically shuffled: a live workload interleaves templates, and
// un-shuffled template blocks would make every window a biased sample of
// the distribution (the first window would see only the first templates).
std::vector<std::string> WorkloadPlanTexts(
    const simdb::BenchmarkWorkload& workload, const config::DbConfig& db_config,
    int per_template, uint64_t seed) {
  const simdb::Planner planner(&workload.GetCatalog(), &db_config);
  util::Rng rng(seed);
  std::vector<std::string> out;
  for (int t = 0; t < workload.NumTemplates(); ++t) {
    for (int i = 0; i < per_template; ++i) {
      const simdb::QuerySpec spec = workload.Instantiate(t, &rng);
      const plan::Plan planned = planner.PlanQuery(spec);
      out.push_back(plan::SerializePlanNode(*planned.root));
    }
  }
  const std::vector<int> perm = rng.Permutation(static_cast<int>(out.size()));
  std::vector<std::string> shuffled;
  shuffled.reserve(out.size());
  for (const int index : perm) shuffled.push_back(std::move(out[index]));
  return shuffled;
}

template <typename Pred>
bool WaitFor(Pred pred, double timeout_seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return pred();
}

// --- Sketches ---------------------------------------------------------------

TEST(SketchTest, BloomFilterHasNoFalseNegatives) {
  drift::BloomFilter bloom(1 << 14, 4);
  util::Rng rng(7);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 500; ++i) keys.push_back(rng.NextU64());
  for (const uint64_t k : keys) bloom.Insert(k);
  for (const uint64_t k : keys) EXPECT_TRUE(bloom.MightContain(k));
  // False-positive rate stays small at this load factor.
  int false_positives = 0;
  for (int i = 0; i < 2000; ++i) {
    if (bloom.MightContain(rng.NextU64())) ++false_positives;
  }
  EXPECT_LT(false_positives, 100);  // < 5%
  EXPECT_GT(bloom.FillRatio(), 0.0);
  EXPECT_LT(bloom.FillRatio(), 0.5);
}

TEST(SketchTest, CountMinSketchNeverUndercounts) {
  drift::CountMinSketch sketch(256, 4);
  util::Rng rng(11);
  std::vector<std::pair<uint32_t, uint64_t>> truth;
  for (int i = 0; i < 64; ++i) {
    truth.emplace_back(static_cast<uint32_t>(rng.UniformInt(0, (1 << 20) - 1)),
                       static_cast<uint64_t>(rng.UniformInt(1, 16)));
  }
  for (const auto& [code, count] : truth) {
    for (uint64_t c = 0; c < count; ++c) sketch.Add(code, 1);
  }
  for (const auto& [code, count] : truth) {
    EXPECT_GE(sketch.Estimate(code), count);
  }
  sketch.Clear();
  EXPECT_EQ(sketch.Estimate(truth.front().first), 0u);
}

TEST(SketchTest, KMeansProducesNonEmptyClustersAndDistances) {
  util::Rng rng(3);
  const size_t dim = 4;
  std::vector<std::vector<float>> points;
  // Two well-separated blobs.
  for (int i = 0; i < 40; ++i) {
    std::vector<float> p(dim);
    const float center = i < 20 ? 0.0f : 10.0f;
    for (size_t d = 0; d < dim; ++d) {
      p[d] = center + static_cast<float>(rng.Uniform()) * 0.5f;
    }
    points.push_back(std::move(p));
  }
  std::vector<float> nearest;
  drift::CentroidSet set = drift::KMeansCluster(points, 2, 20, &rng, &nearest);
  ASSERT_EQ(set.cluster_count(), 2);
  ASSERT_EQ(nearest.size(), points.size());
  double occupancy_sum = 0;
  for (const double o : set.occupancy) {
    EXPECT_GT(o, 0.0);
    occupancy_sum += o;
  }
  EXPECT_NEAR(occupancy_sum, 1.0, 1e-9);
  // The two blobs split evenly, and every point sits near its centroid.
  EXPECT_NEAR(set.occupancy[0], 0.5, 1e-9);
  for (const float d : nearest) EXPECT_LT(d, 2.0f);
  // A far-away point lands past every training distance.
  std::vector<float> far(dim, 100.0f);
  float distance = 0;
  drift::NearestCentroid(set, far.data(), dim, &distance);
  EXPECT_GT(distance, *std::max_element(nearest.begin(), nearest.end()));
}

// --- Monitor hysteresis -----------------------------------------------------

drift::DriftWindowReport ReportWithScore(double score) {
  drift::DriftWindowReport report;
  report.score = score;
  return report;
}

TEST(MonitorTest, SingleBurstCannotFlapIntoDrifted) {
  drift::DriftMonitorConfig config;
  config.windows_to_drift = 2;
  config.windows_to_recover = 3;
  drift::DriftMonitor monitor(config);
  EXPECT_EQ(monitor.state(), DriftState::kHealthy);

  // One high window: SUSPECT, not DRIFTED.
  EXPECT_EQ(monitor.OnWindow(ReportWithScore(0.9)), DriftState::kSuspect);
  EXPECT_FALSE(monitor.stale());
  // A quiet window resets the high streak...
  EXPECT_EQ(monitor.OnWindow(ReportWithScore(0.1)), DriftState::kSuspect);
  // ...so another single burst still cannot trip the alarm.
  EXPECT_EQ(monitor.OnWindow(ReportWithScore(0.9)), DriftState::kSuspect);
  EXPECT_EQ(monitor.alarms(), 0u);

  // Two consecutive high windows: DRIFTED, responses go stale.
  EXPECT_EQ(monitor.OnWindow(ReportWithScore(0.9)), DriftState::kDrifted);
  EXPECT_TRUE(monitor.stale());
  EXPECT_EQ(monitor.alarms(), 1u);

  // Recovery needs windows_to_recover consecutive quiet windows.
  monitor.OnWindow(ReportWithScore(0.1));
  monitor.OnWindow(ReportWithScore(0.1));
  EXPECT_EQ(monitor.state(), DriftState::kDrifted);
  EXPECT_EQ(monitor.OnWindow(ReportWithScore(0.1)), DriftState::kHealthy);
  EXPECT_FALSE(monitor.stale());
}

TEST(MonitorTest, AdaptationEdgesAndScoreImmunity) {
  drift::DriftMonitor monitor;
  // BeginAdaptation is only legal from DRIFTED.
  EXPECT_FALSE(monitor.BeginAdaptation());
  monitor.OnWindow(ReportWithScore(0.9));
  monitor.OnWindow(ReportWithScore(0.9));
  ASSERT_EQ(monitor.state(), DriftState::kDrifted);
  EXPECT_TRUE(monitor.BeginAdaptation());
  EXPECT_EQ(monitor.state(), DriftState::kAdapting);
  EXPECT_TRUE(monitor.stale());

  // ADAPTING ignores scores entirely (old baseline, no signal).
  monitor.OnWindow(ReportWithScore(0.0));
  monitor.OnWindow(ReportWithScore(1.0));
  EXPECT_EQ(monitor.state(), DriftState::kAdapting);

  // Abort falls back to DRIFTED (retry-eligible); complete goes HEALTHY.
  monitor.AbortAdaptation();
  EXPECT_EQ(monitor.state(), DriftState::kDrifted);
  EXPECT_TRUE(monitor.BeginAdaptation());
  monitor.CompleteAdaptation();
  EXPECT_EQ(monitor.state(), DriftState::kHealthy);
  EXPECT_FALSE(monitor.stale());

  // Restart path re-enters ADAPTING from anywhere.
  monitor.ForceAdapting();
  EXPECT_EQ(monitor.state(), DriftState::kAdapting);
}

// --- Wire protocol v1/v2 ----------------------------------------------------

TEST(WireV2Test, DriftTrailerRoundTripsAndV1OmitsIt) {
  EncodeResponse response;
  response.dim = 2;
  response.embeddings = {{1.0f, 2.0f}, {3.0f, 4.0f}};
  response.stale = true;
  response.drift_state = static_cast<uint8_t>(DriftState::kDrifted);
  response.drift_score = 0.75f;

  const std::string v2 = serve::EncodeEncodeResponsePayload(response, 2);
  const std::string v1 = serve::EncodeEncodeResponsePayload(response, 1);
  EXPECT_EQ(v2.size(), v1.size() + 6);  // stale u8 | state u8 | score f32

  auto from_v2 = serve::ParseEncodeResponsePayload(v2);
  ASSERT_TRUE(from_v2.ok()) << from_v2.status().ToString();
  EXPECT_TRUE(from_v2->stale);
  EXPECT_EQ(from_v2->drift_state, static_cast<uint8_t>(DriftState::kDrifted));
  EXPECT_FLOAT_EQ(from_v2->drift_score, 0.75f);

  // A v1 payload parses with the trailer at its defaults — old daemons keep
  // talking to new clients.
  auto from_v1 = serve::ParseEncodeResponsePayload(v1);
  ASSERT_TRUE(from_v1.ok()) << from_v1.status().ToString();
  EXPECT_FALSE(from_v1->stale);
  EXPECT_EQ(from_v1->drift_state, 0);
  ASSERT_EQ(from_v1->embeddings.size(), 2u);
  EXPECT_EQ(from_v1->embeddings[1][1], 4.0f);

  // A truncated trailer is corruption, not a version.
  auto torn = serve::ParseEncodeResponsePayload(
      std::string_view(v2.data(), v2.size() - 3));
  EXPECT_FALSE(torn.ok());
}

TEST(WireV2Test, FrameHeaderAcceptsSupportedVersionRange) {
  for (const uint8_t version : {uint8_t{1}, uint8_t{2}}) {
    const std::string wire =
        serve::EncodeFrame(serve::FrameType::kPingRequest, "", version);
    serve::Frame frame;
    size_t consumed = 0;
    util::Status error;
    ASSERT_EQ(serve::NextFrame(wire, 1 << 20, &frame, &consumed, &error),
              serve::FrameParse::kFrame)
        << "version " << int(version);
    EXPECT_EQ(frame.version, version);
  }
  for (const uint8_t version : {uint8_t{0}, uint8_t{3}, uint8_t{200}}) {
    std::string wire =
        serve::EncodeFrame(serve::FrameType::kPingRequest, "", 1);
    wire[4] = static_cast<char>(version);
    serve::Frame frame;
    size_t consumed = 0;
    util::Status error;
    EXPECT_EQ(serve::NextFrame(wire, 1 << 20, &frame, &consumed, &error),
              serve::FrameParse::kError)
        << "version " << int(version);
  }
}

// --- Crash-safe adaptation --------------------------------------------------

class AdaptationTest : public testing::Test {
 protected:
  AdaptationTest() : rng_(42), base_(SmallConfig(), &rng_) {}

  drift::AdaptationConfig Config(const std::string& dir) {
    drift::AdaptationConfig config;
    config.dir = dir;
    config.epochs = 2;
    config.pairs = 8;
    config.batch_size = 4;
    config.seed = 5;
    return config;
  }

  util::Rng rng_;
  encoder::TransformerPlanEncoder base_;
};

TEST_F(AdaptationTest, CompletedRoundRefreshesWeightsAndClearsManifest) {
  const std::string dir = TestDir("adapt_complete");
  drift::ClearAdaptation(dir);
  const std::vector<std::string> slice = RandomPlanTexts(12, 31);

  auto result = drift::RunAdaptation(base_, slice, Config(dir));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result->encoder, nullptr);
  EXPECT_FALSE(result->aborted);
  EXPECT_FALSE(result->resumed);
  EXPECT_EQ(result->slice_plans.size(), slice.size());

  // Fine-tuning moved the weights.
  EXPECT_NE(serve::ModelFingerprint(*result->encoder),
            serve::ModelFingerprint(base_));

  // Commit protocol: no manifest remains, the adapted weights do, and they
  // load back bit-identical.
  EXPECT_FALSE(drift::AdaptationPending(dir));
  ASSERT_TRUE(drift::AdaptedWeightsPresent(dir));
  auto loaded = drift::LoadAdaptedEncoder(dir, base_.config());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(serve::ModelFingerprint(**loaded),
            serve::ModelFingerprint(*result->encoder));

  drift::ClearAdaptation(dir);
  EXPECT_FALSE(drift::AdaptedWeightsPresent(dir));
}

TEST_F(AdaptationTest, AbortedRoundResumesBitExactly) {
  const std::string dir_full = TestDir("adapt_full");
  const std::string dir_cut = TestDir("adapt_cut");
  drift::ClearAdaptation(dir_full);
  drift::ClearAdaptation(dir_cut);
  const std::vector<std::string> slice = RandomPlanTexts(12, 32);

  // Reference: one uninterrupted round.
  auto full = drift::RunAdaptation(base_, slice, Config(dir_full));
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  const uint64_t want = serve::ModelFingerprint(*full->encoder);

  // Interrupted round: the abort flag stops training before the first
  // batch, exactly like a SIGKILL after the manifest committed — no
  // training checkpoint is written.
  std::atomic<bool> abort_now{true};
  drift::AdaptationConfig cut = Config(dir_cut);
  cut.abort = &abort_now;
  auto aborted = drift::RunAdaptation(base_, slice, cut);
  ASSERT_TRUE(aborted.ok()) << aborted.status().ToString();
  EXPECT_TRUE(aborted->aborted);
  EXPECT_EQ(aborted->encoder, nullptr);
  EXPECT_TRUE(drift::AdaptationPending(dir_cut));
  EXPECT_FALSE(drift::AdaptedWeightsPresent(dir_cut));

  // Resume: the persisted (slice, manifest) replay the round bit-exactly —
  // the caller's slice argument is ignored in favour of the committed one.
  auto resumed =
      drift::RunAdaptation(base_, /*slice=*/{}, Config(dir_cut));
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ASSERT_NE(resumed->encoder, nullptr);
  EXPECT_TRUE(resumed->resumed);
  EXPECT_EQ(serve::ModelFingerprint(*resumed->encoder), want);
  EXPECT_FALSE(drift::AdaptationPending(dir_cut));

  drift::ClearAdaptation(dir_full);
  drift::ClearAdaptation(dir_cut);
}

TEST_F(AdaptationTest, EmptySliceIsRejectedBeforeAnyStateIsWritten) {
  const std::string dir = TestDir("adapt_empty");
  drift::ClearAdaptation(dir);
  auto result = drift::RunAdaptation(base_, /*slice=*/{}, Config(dir));
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(drift::AdaptationPending(dir));
}

// --- Synthetic drift suite through the daemon socket ------------------------

class DriftDaemonTest : public testing::Test {
 protected:
  DriftDaemonTest() : rng_(42), encoder_(SmallConfig(), &rng_) {}

  // A drift-enabled daemon whose baseline is `corpus` (serialized plans).
  // Window size and thresholds are calibrated for the synthetic scenarios:
  // with 64-plan windows over shuffled streams, the stationary control's
  // fused score stays under ~0.19 (multinomial sampling noise of the
  // cluster/token histograms) while the weakest real scenario — the knob
  // shift, which restructures only ~a third of the plans — sustains 0.27+.
  ServingDaemonConfig DriftConfig(const char* tag,
                                  std::vector<std::string> corpus) {
    ServingDaemonConfig config;
    config.socket_path = TestSocketPath(tag);
    config.workers = 1;  // deterministic window composition
    config.model_fingerprint = serve::ModelFingerprint(encoder_);
    config.enable_drift = true;
    config.drift_corpus = std::move(corpus);
    config.drift_sentinel.detector.window_size = 64;
    config.drift_sentinel.monitor.suspect_threshold = 0.12;
    config.drift_sentinel.monitor.drift_threshold = 0.23;
    return config;
  }

  // Streams `texts` through the client in requests of 8 plans.
  void Send(DaemonClient& client, const std::vector<std::string>& texts,
            EncodeResponse* last = nullptr) {
    for (size_t i = 0; i < texts.size(); i += 8) {
      EncodeRequest request;
      request.tenant = "default";
      for (size_t j = i; j < std::min(texts.size(), i + 8); ++j) {
        request.plans.push_back(texts[j]);
      }
      auto response = client.Encode(request);
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      if (last != nullptr) *last = std::move(*response);
    }
  }

  util::Rng rng_;
  encoder::TransformerPlanEncoder encoder_;
};

TEST_F(DriftDaemonTest, KnobShiftIsDetectedWithScanTokenAttribution) {
  const simdb::TpchWorkload tpch(0.1);
  const config::DbConfig base_knobs;  // midpoint of every range
  // The shifted configuration makes random IO nearly free and the cache
  // huge: the planner flips sequential scans to index/bitmap plans — the
  // classic "someone changed a knob in prod" drift.
  config::DbConfig shifted = base_knobs;
  shifted.Set(config::Knob::kRandomPageCost,
              config::GetKnobInfo(config::Knob::kRandomPageCost).min_value);
  shifted.Set(
      config::Knob::kEffectiveCacheSize,
      config::GetKnobInfo(config::Knob::kEffectiveCacheSize).max_value);
  shifted.Set(config::Knob::kSharedBuffers,
              config::GetKnobInfo(config::Knob::kSharedBuffers).max_value);

  ServingDaemonConfig config = DriftConfig(
      "knob", WorkloadPlanTexts(tpch, base_knobs, /*per_template=*/5, 17));
  ServingDaemon daemon(&encoder_, config);
  ASSERT_TRUE(daemon.Start().ok());
  auto client_or = DaemonClient::Connect(config.socket_path);
  ASSERT_TRUE(client_or.ok());
  DaemonClient client = std::move(*client_or);

  // Warm-up window from the baseline distribution: not stale.
  EncodeResponse response;
  std::vector<std::string> warmup = WorkloadPlanTexts(tpch, base_knobs, 3, 99);
  warmup.resize(64);  // exactly one window
  Send(client, warmup, &response);
  EXPECT_FALSE(response.stale);
  const uint64_t windows_before = daemon.GetStats().drift.windows;

  // Three windows of the shifted distribution must trip the alarm.
  Send(client, WorkloadPlanTexts(tpch, shifted, 10, 23), &response);
  serve::DaemonStats stats = daemon.GetStats();
  EXPECT_EQ(stats.drift.state, DriftState::kDrifted);
  EXPECT_GE(stats.drift.alarms, 1u);
  EXPECT_LE(stats.drift.windows - windows_before, 3u)
      << "detection took more than 3 windows";
  EXPECT_TRUE(response.stale);
  EXPECT_EQ(response.drift_state, static_cast<uint8_t>(DriftState::kDrifted));
  EXPECT_GT(response.drift_score, 0.0f);

  // Attribution: the biggest token-frequency mover is a scan-family
  // operator — that is what the knob shift actually changed.
  ASSERT_TRUE(stats.drift.has_report);
  ASSERT_FALSE(stats.drift.last_report.top_tokens.empty());
  const std::string& top = stats.drift.last_report.top_tokens[0].name;
  EXPECT_EQ(plan::GroupOf(plan::OperatorType::Parse(top)),
            plan::OperatorGroup::kScan)
      << "top token attribution was " << top;

  // STATS surfaces the full drift block over the wire.
  auto json = client.StatsJson();
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json->find("\"drift\""), std::string::npos);
  EXPECT_NE(json->find("\"state\": \"DRIFTED\""), std::string::npos);
  EXPECT_NE(json->find("\"top_tokens\""), std::string::npos);
  daemon.Stop();
}

TEST_F(DriftDaemonTest, NovelTemplatesDominateAsNovelPlans) {
  const simdb::TpchWorkload tpch(0.1);
  const config::DbConfig knobs;
  ServingDaemonConfig config =
      DriftConfig("novel", WorkloadPlanTexts(tpch, knobs, 5, 17));
  ServingDaemon daemon(&encoder_, config);
  ASSERT_TRUE(daemon.Start().ok());
  auto client_or = DaemonClient::Connect(config.socket_path);
  ASSERT_TRUE(client_or.ok());
  DaemonClient client = std::move(*client_or);

  const uint64_t windows_before = daemon.GetStats().drift.windows;
  // A workload this model has never seen: TPC-DS star joins instead of
  // TPC-H. Every fingerprint is new.
  const simdb::TpcdsWorkload tpcds(0.1, /*num_templates=*/24);
  EncodeResponse response;
  Send(client, WorkloadPlanTexts(tpcds, knobs, 8, 29), &response);

  serve::DaemonStats stats = daemon.GetStats();
  EXPECT_EQ(stats.drift.state, DriftState::kDrifted);
  EXPECT_LE(stats.drift.windows - windows_before, 3u);
  EXPECT_TRUE(response.stale);
  ASSERT_TRUE(stats.drift.has_report);
  EXPECT_EQ(stats.drift.last_report.dominant, DriftComponent::kNovelPlans);
  EXPECT_GT(stats.drift.last_report.novel_rate, 0.5);
  daemon.Stop();
}

TEST_F(DriftDaemonTest, ScaleFactorJumpIsDetected) {
  const config::DbConfig knobs;
  const simdb::TpchWorkload small_scale(0.05);
  ServingDaemonConfig config =
      DriftConfig("scale", WorkloadPlanTexts(small_scale, knobs, 5, 17));
  ServingDaemon daemon(&encoder_, config);
  ASSERT_TRUE(daemon.Start().ok());
  auto client_or = DaemonClient::Connect(config.socket_path);
  ASSERT_TRUE(client_or.ok());
  DaemonClient client = std::move(*client_or);

  const uint64_t windows_before = daemon.GetStats().drift.windows;
  // The same 22 templates against a database 40x the size: cardinalities
  // explode and the planner restructures joins and scans.
  const simdb::TpchWorkload big_scale(2.0);
  EncodeResponse response;
  Send(client, WorkloadPlanTexts(big_scale, knobs, 9, 23), &response);

  serve::DaemonStats stats = daemon.GetStats();
  EXPECT_EQ(stats.drift.state, DriftState::kDrifted);
  EXPECT_LE(stats.drift.windows - windows_before, 3u);
  EXPECT_TRUE(response.stale);
  ASSERT_TRUE(stats.drift.has_report);
  EXPECT_GT(stats.drift.last_report.score, 0.0);
  EXPECT_FALSE(stats.drift.last_report.top_tokens.empty() &&
               stats.drift.last_report.top_clusters.empty());
  daemon.Stop();
}

TEST_F(DriftDaemonTest, StationaryControlNeverAlarms) {
  const simdb::TpchWorkload tpch(0.1);
  const config::DbConfig knobs;
  ServingDaemonConfig config =
      DriftConfig("control", WorkloadPlanTexts(tpch, knobs, 5, 17));
  ServingDaemon daemon(&encoder_, config);
  ASSERT_TRUE(daemon.Start().ok());
  auto client_or = DaemonClient::Connect(config.socket_path);
  ASSERT_TRUE(client_or.ok());
  DaemonClient client = std::move(*client_or);

  // Four windows of fresh instantiations from the SAME distribution —
  // different literals, different seeds, same templates and knobs.
  EncodeResponse response;
  Send(client, WorkloadPlanTexts(tpch, knobs, 12, 1234), &response);

  serve::DaemonStats stats = daemon.GetStats();
  EXPECT_EQ(stats.drift.alarms, 0u);
  EXPECT_NE(stats.drift.state, DriftState::kDrifted);
  EXPECT_FALSE(response.stale);
  EXPECT_EQ(response.drift_state,
            static_cast<uint8_t>(stats.drift.state));
  EXPECT_GE(stats.drift.windows, 3u);
  daemon.Stop();
}

// A v1 client against a drift-enabled (v2) daemon: the response comes back
// stamped v1 with no trailer — old clients keep parsing.
TEST_F(DriftDaemonTest, V1ClientGetsTrailerFreeResponses) {
  ServingDaemonConfig config =
      DriftConfig("v1compat", RandomPlanTexts(64, 17));
  ServingDaemon daemon(&encoder_, config);
  ASSERT_TRUE(daemon.Start().ok());

  auto fd = util::ConnectUnix(config.socket_path);
  ASSERT_TRUE(fd.ok());
  EncodeRequest request;
  request.tenant = "default";
  request.plans = RandomPlanTexts(3, 55);
  const std::string frame =
      serve::EncodeFrame(serve::FrameType::kEncodeRequest,
                         serve::EncodeEncodeRequestPayload(request),
                         /*version=*/1);
  ASSERT_TRUE(util::WriteFull(fd->get(), frame.data(), frame.size()).ok());

  char header[serve::kFrameHeaderSize];
  ASSERT_TRUE(util::ReadFull(fd->get(), header, sizeof(header)).ok());
  EXPECT_EQ(header[4], 1) << "response must be stamped with the requester's "
                             "wire version";
  EXPECT_EQ(static_cast<serve::FrameType>(header[5]),
            serve::FrameType::kEncodeResponse);
  uint32_t payload_size = 0;
  std::memcpy(&payload_size, header + 8, 4);
  std::string payload(payload_size, '\0');
  ASSERT_TRUE(util::ReadFull(fd->get(), payload.data(), payload_size).ok());
  auto response = serve::ParseEncodeResponsePayload(payload);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->embeddings.size(), 3u);
  // v1 payload: count u32 | dim u32 | count*dim f32 rows, no trailer. The
  // parse above already rejects stray trailing bytes, but assert the
  // arithmetic explicitly.
  EXPECT_EQ(payload_size, 8u + 3u * response->dim * sizeof(float));
  daemon.Stop();
}

// --- Client retry/backoff ---------------------------------------------------

class RetryTest : public testing::Test {
 protected:
  RetryTest() : rng_(42), encoder_(SmallConfig(), &rng_) {}

  ServingDaemonConfig BaseConfig(const char* tag) {
    ServingDaemonConfig config;
    config.socket_path = TestSocketPath(tag);
    config.workers = 1;
    config.model_fingerprint = serve::ModelFingerprint(encoder_);
    return config;
  }

  util::Rng rng_;
  encoder::TransformerPlanEncoder encoder_;
};

TEST_F(RetryTest, HonorsRetryAfterHintUntilQuotaRefills) {
  ServingDaemonConfig config = BaseConfig("retry_quota");
  serve::TenantConfig metered;
  metered.rate_plans_per_sec = 50;
  metered.burst_plans = 8;
  config.admission.tenants["metered"] = metered;
  ServingDaemon daemon(&encoder_, config);
  ASSERT_TRUE(daemon.Start().ok());
  auto client_or = DaemonClient::Connect(config.socket_path);
  ASSERT_TRUE(client_or.ok());
  DaemonClient client = std::move(*client_or);

  EncodeRequest request;
  request.tenant = "metered";
  request.plans = RandomPlanTexts(8, 77);

  // First request drains the burst...
  ASSERT_TRUE(client.Encode(request).ok());
  // ...the immediate repeat is shed with a finite hint, and EncodeWithRetry
  // sleeps it off and succeeds.
  serve::RetryPolicy policy;
  policy.max_retries = 5;
  policy.initial_backoff_ms = 1;
  policy.jitter_seed = 9;
  serve::RetryStats stats;
  ErrorResponse error;
  auto response = client.EncodeWithRetry(request, policy, &error, &stats);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_GE(stats.attempts, 2);
  ASSERT_FALSE(stats.backoffs_ms.empty());
  // The first backoff respected the daemon's hint (floor, not ceiling).
  EXPECT_GE(stats.backoffs_ms[0], 1u);
  EXPECT_LE(stats.backoffs_ms[0],
            policy.max_backoff_ms + policy.max_backoff_ms / 4);
  daemon.Stop();
}

TEST_F(RetryTest, RetryNeverShedIsNotRetried) {
  ServingDaemonConfig config = BaseConfig("retry_never");
  serve::TenantConfig zero;
  zero.rate_plans_per_sec = 0;
  zero.burst_plans = 0;
  config.admission.tenants["free-tier"] = zero;
  ServingDaemon daemon(&encoder_, config);
  ASSERT_TRUE(daemon.Start().ok());
  auto client_or = DaemonClient::Connect(config.socket_path);
  ASSERT_TRUE(client_or.ok());
  DaemonClient client = std::move(*client_or);

  EncodeRequest request;
  request.tenant = "free-tier";
  request.plans = RandomPlanTexts(2, 78);
  serve::RetryPolicy policy;
  policy.max_retries = 5;
  serve::RetryStats stats;
  ErrorResponse error;
  auto response = client.EncodeWithRetry(request, policy, &error, &stats);
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(stats.attempts, 1) << "kRetryNever must not be retried";
  EXPECT_TRUE(stats.backoffs_ms.empty());
  EXPECT_EQ(error.retry_after_ms, serve::kRetryNever);
  daemon.Stop();
}

TEST_F(RetryTest, ReconnectsAcrossDaemonRestartOnce) {
  ServingDaemonConfig config = BaseConfig("retry_restart");
  EncodeRequest request;
  request.tenant = "default";
  request.plans = RandomPlanTexts(3, 79);

  auto first = std::make_unique<ServingDaemon>(&encoder_, config);
  ASSERT_TRUE(first->Start().ok());
  auto client_or = DaemonClient::Connect(config.socket_path);
  ASSERT_TRUE(client_or.ok());
  DaemonClient client = std::move(*client_or);
  ASSERT_TRUE(client.Encode(request).ok());

  // The daemon restarts out from under the connected client.
  first->Stop();
  first.reset();
  ServingDaemon second(&encoder_, config);
  ASSERT_TRUE(second.Start().ok());

  serve::RetryPolicy policy;
  policy.max_retries = 3;
  policy.max_reconnects = 2;
  policy.initial_backoff_ms = 1;
  serve::RetryStats stats;
  auto response = client.EncodeWithRetry(request, policy, nullptr, &stats);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->embeddings.size(), 3u);
  EXPECT_GE(stats.reconnects, 1);
  second.Stop();
}

TEST_F(RetryTest, BackoffScheduleIsDeterministicAndBounded) {
  // With nothing listening, the transport-loss path runs the full backoff
  // ladder; two identical policies must replay identical schedules (that is
  // the whole point of the deterministic jitter).
  EncodeRequest request;
  request.tenant = "default";
  request.plans = RandomPlanTexts(1, 80);

  auto run = [&]() {
    serve::RetryPolicy policy;
    policy.max_retries = 4;
    policy.max_reconnects = 3;
    policy.initial_backoff_ms = 8;
    policy.max_backoff_ms = 20;
    policy.jitter_seed = 1234;
    policy.sleep_override = [](uint32_t) {};  // record, don't wait
    serve::RetryStats stats;
    DaemonClient client;  // never connected: every attempt is transport loss
    auto response = client.EncodeWithRetry(request, policy, nullptr, &stats);
    EXPECT_FALSE(response.ok());
    return stats;
  };
  const serve::RetryStats a = run();
  const serve::RetryStats b = run();
  EXPECT_EQ(a.backoffs_ms, b.backoffs_ms);
  // The reconnect budget bounds the ladder: 3 backoffs, then give up.
  ASSERT_EQ(a.backoffs_ms.size(), 3u);
  EXPECT_EQ(a.reconnects, 3);
  for (const uint32_t backoff : a.backoffs_ms) {
    EXPECT_GE(backoff, 8u);
    EXPECT_LE(backoff, 20u + 5u) << "cap plus max jitter";
  }
}

// --- Self-healing end to end ------------------------------------------------

// The full loop: novel workload -> DRIFTED -> ADAPTING (stale responses all
// the way) -> drain aborts the round mid-flight like a SIGKILL -> a second
// daemon resumes the persisted round, completes it, swaps the refreshed
// encoder in atomically, rebaselines, and serves HEALTHY with a new
// fingerprint.
TEST_F(DriftDaemonTest, DrainDuringAdaptationResumesOnRestartAndHeals) {
  const simdb::TpchWorkload tpch(0.1);
  const config::DbConfig knobs;
  const std::string adapt_dir = TestDir("selfheal");
  drift::ClearAdaptation(adapt_dir);

  ServingDaemonConfig config =
      DriftConfig("selfheal", WorkloadPlanTexts(tpch, knobs, 5, 17));
  // The novel-template stream scores far above the default thresholds, so
  // this test runs them un-tuned with small 32-plan windows — and after the
  // post-adaptation rebaseline (corpus ∪ slice) the same stream must score
  // *below* them, proving the rebaseline absorbed the drift.
  config.drift_sentinel.detector.window_size = 32;
  config.drift_sentinel.monitor = drift::DriftMonitorConfig{};
  config.adaptation.dir = adapt_dir;
  config.adaptation.epochs = 8;
  config.adaptation.pairs = 8;
  config.adaptation.batch_size = 4;
  const uint64_t base_fingerprint = config.model_fingerprint;

  const simdb::TpcdsWorkload tpcds(0.1, /*num_templates=*/24);
  const std::vector<std::string> drifted =
      WorkloadPlanTexts(tpcds, knobs, 4, 29);

  bool resumed_round = false;
  {
    ServingDaemon daemon(&encoder_, config);
    ASSERT_TRUE(daemon.Start().ok());
    auto client_or = DaemonClient::Connect(config.socket_path);
    ASSERT_TRUE(client_or.ok());
    DaemonClient client = std::move(*client_or);
    EncodeResponse response;
    Send(client, drifted, &response);

    // The alarm fires and the daemon starts adapting on its own.
    ASSERT_TRUE(WaitFor(
        [&] {
          const serve::DaemonStats stats = daemon.GetStats();
          return stats.drift.state == DriftState::kAdapting ||
                 stats.adaptations_completed > 0;
        },
        30.0))
        << "daemon never reached ADAPTING";
    if (daemon.GetStats().drift.state == DriftState::kAdapting) {
      // Responses during adaptation still flag staleness.
      EncodeRequest probe;
      probe.tenant = "default";
      probe.plans = {drifted[0]};
      auto stale_response = client.Encode(probe);
      ASSERT_TRUE(stale_response.ok());
      EXPECT_TRUE(stale_response->stale);
      EXPECT_GE(stale_response->drift_state,
                static_cast<uint8_t>(DriftState::kDrifted));
    }

    // Drain mid-round: the abort is SIGKILL-equivalent for the training
    // loop — manifest and checkpoint survive.
    daemon.Stop();
  }
  // If the round managed to finish before the drain landed, the restart
  // below exercises the adapted-weights path instead of resume; both are
  // legal ends of the crash window, but the common (and asserted) path is
  // a pending manifest.
  resumed_round = drift::AdaptationPending(adapt_dir);
  EXPECT_TRUE(resumed_round || drift::AdaptedWeightsPresent(adapt_dir));

  // Restart: Start() re-enters ADAPTING (or installs the finished weights),
  // the round completes, and the daemon heals.
  ServingDaemon daemon(&encoder_, config);
  ASSERT_TRUE(daemon.Start().ok());
  ASSERT_TRUE(WaitFor(
      [&] {
        const serve::DaemonStats stats = daemon.GetStats();
        return stats.drift.state == DriftState::kHealthy &&
               stats.current_fingerprint != base_fingerprint;
      },
      60.0))
      << "restarted daemon never healed";

  const serve::DaemonStats stats = daemon.GetStats();
  if (resumed_round) {
    EXPECT_EQ(stats.adaptations_resumed, 1u);
    EXPECT_EQ(stats.adaptations_completed, 1u);
  }
  EXPECT_NE(stats.current_fingerprint, base_fingerprint);

  // The refreshed model serves the previously-novel workload as normal:
  // fresh responses are not stale, and the once-drifted stream no longer
  // alarms (it was folded into the new baseline).
  auto client_or = DaemonClient::Connect(config.socket_path);
  ASSERT_TRUE(client_or.ok());
  DaemonClient client = std::move(*client_or);
  EncodeResponse response;
  Send(client, drifted, &response);
  EXPECT_FALSE(response.stale);
  EXPECT_NE(daemon.GetStats().drift.state, DriftState::kDrifted);
  daemon.Stop();
  drift::ClearAdaptation(adapt_dir);
}

}  // namespace
}  // namespace qpe
