// Fault-tolerance tests: crash-safe checkpoint format (corruption matrix),
// transactional loading (zero mutation on any failure), deterministic fault
// injection through every IO site, and bit-exact interrupt/resume for all
// three training loops.

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "data/datasets.h"
#include "data/plan_corpus.h"
#include "encoder/performance_encoder.h"
#include "encoder/ppsr.h"
#include "encoder/structure_encoder.h"
#include "gtest/gtest.h"
#include "nn/checkpoint.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "util/fault_injection.h"
#include "util/rng.h"
#include "util/status.h"

namespace qpe::nn {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<std::vector<float>> AllValues(const Module& module) {
  std::vector<std::vector<float>> values;
  for (const auto& [name, tensor] : module.NamedParameters()) {
    values.push_back(tensor.value());
  }
  return values;
}

bool SameState(const OptimizerState& a, const OptimizerState& b) {
  return a.kind == b.kind && a.step_count == b.step_count && a.slots == b.slots;
}

std::string ReadFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// A tiny perf-encoder dataset with synthetic features so the resume tests
// run in milliseconds and depend only on the RNG seed.
encoder::PerfEncoderConfig TinyConfig() {
  encoder::PerfEncoderConfig config;
  config.node_dim = 6;
  config.meta_dim = 3;
  config.db_dim = 2;
  config.column_hidden = 8;
  config.embed_dim = 8;
  return config;
}

data::OperatorSample SyntheticSample(util::Rng* rng) {
  data::OperatorSample sample;
  for (int i = 0; i < 6; ++i) sample.node_features.push_back(rng->Uniform());
  for (int i = 0; i < 3; ++i) sample.meta_features.push_back(rng->Uniform());
  for (int i = 0; i < 2; ++i) sample.db_features.push_back(rng->Uniform());
  sample.actual_total_time_ms = 1.0 + 40.0 * rng->Uniform();
  sample.total_cost = 10.0 + 100.0 * rng->Uniform();
  sample.startup_cost = rng->Uniform();
  return sample;
}

data::OperatorDataset SyntheticDataset(int train_n = 48) {
  util::Rng rng(123);
  data::OperatorDataset dataset;
  for (int i = 0; i < train_n; ++i) {
    dataset.train.push_back(SyntheticSample(&rng));
  }
  for (int i = 0; i < 8; ++i) dataset.val.push_back(SyntheticSample(&rng));
  for (int i = 0; i < 8; ++i) dataset.test.push_back(SyntheticSample(&rng));
  return dataset;
}

// Builds a checkpoint with non-trivial Adam moments by running a couple of
// real training epochs against it.
struct SavedCheckpoint {
  std::string path;
  std::vector<std::vector<float>> model_values;
};

SavedCheckpoint MakeValidCheckpoint(const char* name) {
  SavedCheckpoint saved;
  saved.path = TempPath(name);
  std::remove(saved.path.c_str());
  const data::OperatorDataset dataset = SyntheticDataset();
  util::Rng rng(7);
  encoder::PerformanceEncoder model(TinyConfig(), &rng);
  encoder::PerfTrainOptions options;
  options.epochs = 2;
  options.checkpoint.path = saved.path;
  util::Status io_status;
  options.io_status = &io_status;
  TrainPerformanceEncoder(&model, dataset, options);
  EXPECT_TRUE(io_status.ok()) << io_status.ToString();
  EXPECT_TRUE(CheckpointExists(saved.path));
  saved.model_values = AllValues(model);
  return saved;
}

// A fresh model/optimizer pair that every failed load must leave untouched.
struct Victim {
  Victim() : rng(99), model(TinyConfig(), &rng),
             optimizer(model.Parameters(), 1e-3f) {}

  util::Rng rng;
  encoder::PerformanceEncoder model;
  Adam optimizer;
};

// --- Save/load round trip -------------------------------------------------

TEST(CheckpointTest, RoundTripRestoresModelOptimizerAndState) {
  const SavedCheckpoint saved =
      MakeValidCheckpoint("qpe_ckpt_roundtrip.ckpt");

  Victim victim;
  EXPECT_NE(AllValues(victim.model), saved.model_values);
  TrainingState state;
  const util::Status s = LoadTrainingCheckpoint(saved.path, &victim.model,
                                                &victim.optimizer, &state);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(AllValues(victim.model), saved.model_values);
  EXPECT_EQ(state.next_epoch, 2);
  EXPECT_GT(state.global_step, 0);
  const OptimizerState opt = victim.optimizer.ExportState();
  EXPECT_EQ(opt.kind, "adam");
  EXPECT_EQ(opt.step_count, state.global_step);
  std::remove(saved.path.c_str());
}

TEST(CheckpointTest, MissingFileIsNotFound) {
  Victim victim;
  TrainingState state;
  const util::Status s = LoadTrainingCheckpoint(
      TempPath("qpe_ckpt_never_written.ckpt"), &victim.model,
      &victim.optimizer, &state);
  EXPECT_EQ(s.code(), util::StatusCode::kNotFound);
}

// --- Corruption matrix ----------------------------------------------------

// Every corrupted variant must fail with a descriptive Status and leave the
// destination model + optimizer byte-identical to their pre-call state.
void ExpectCleanRejection(const std::string& corrupt_path,
                          util::StatusCode expected_code,
                          const std::string& expected_substring) {
  Victim victim;
  const auto values_before = AllValues(victim.model);
  const OptimizerState opt_before = victim.optimizer.ExportState();
  TrainingState state;
  state.next_epoch = 41;  // sentinel: must survive the failed load
  const util::Status s = LoadTrainingCheckpoint(corrupt_path, &victim.model,
                                                &victim.optimizer, &state);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), expected_code) << s.ToString();
  EXPECT_NE(s.message().find(expected_substring), std::string::npos)
      << "missing '" << expected_substring << "' in: " << s.ToString();
  EXPECT_EQ(AllValues(victim.model), values_before);
  EXPECT_TRUE(SameState(victim.optimizer.ExportState(), opt_before));
  EXPECT_EQ(state.next_epoch, 41);
}

TEST(CheckpointTest, CorruptionMatrixFailsCleanly) {
  const SavedCheckpoint saved = MakeValidCheckpoint("qpe_ckpt_matrix.ckpt");
  const std::string bytes = ReadFile(saved.path);
  constexpr size_t kHeaderSize = 20;  // magic + version + size + crc
  ASSERT_GT(bytes.size(), kHeaderSize + 64);
  const std::string corrupt_path = TempPath("qpe_ckpt_matrix_corrupt.ckpt");

  // Zero-length file.
  WriteFile(corrupt_path, "");
  ExpectCleanRejection(corrupt_path, util::StatusCode::kDataLoss, "checkpoint");

  // Truncated mid-header.
  WriteFile(corrupt_path, bytes.substr(0, 10));
  ExpectCleanRejection(corrupt_path, util::StatusCode::kDataLoss, "checkpoint");

  // Truncated mid-payload: the header's payload size no longer matches.
  WriteFile(corrupt_path, bytes.substr(0, bytes.size() - 37));
  ExpectCleanRejection(corrupt_path, util::StatusCode::kDataLoss, "payload");

  // A single flipped bit deep in the payload: caught by the CRC.
  {
    std::string flipped = bytes;
    flipped[kHeaderSize + flipped.size() / 2] ^= 0x10;
    WriteFile(corrupt_path, flipped);
    ExpectCleanRejection(corrupt_path, util::StatusCode::kDataLoss,
                         "CRC mismatch");
  }

  // Version-field mismatch (CRC still valid: it covers the payload only).
  {
    std::string future = bytes;
    future[4] = 99;  // little-endian u32 version at offset 4
    WriteFile(corrupt_path, future);
    ExpectCleanRejection(corrupt_path, util::StatusCode::kFailedPrecondition,
                         "format version");
  }

  // Bad magic.
  {
    std::string wrong = bytes;
    wrong[0] ^= 0xFF;
    WriteFile(corrupt_path, wrong);
    ExpectCleanRejection(corrupt_path, util::StatusCode::kDataLoss,
                         "bad magic");
  }

  std::remove(corrupt_path.c_str());
  std::remove(saved.path.c_str());
}

// A checkpoint for a different architecture must be rejected without
// touching the destination (the shape check runs during staging).
TEST(CheckpointTest, ArchitectureMismatchRejectedWithoutMutation) {
  const SavedCheckpoint saved = MakeValidCheckpoint("qpe_ckpt_arch.ckpt");
  util::Rng rng(5);
  encoder::PerfEncoderConfig other = TinyConfig();
  other.embed_dim = 12;  // different merge/head shapes
  encoder::PerformanceEncoder model(other, &rng);
  Adam optimizer(model.Parameters(), 1e-3f);
  const auto values_before = AllValues(model);
  TrainingState state;
  const util::Status s =
      LoadTrainingCheckpoint(saved.path, &model, &optimizer, &state);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), util::StatusCode::kFailedPrecondition) << s.ToString();
  EXPECT_EQ(AllValues(model), values_before);
  std::remove(saved.path.c_str());
}

// --- Fault injection ------------------------------------------------------

TEST(CheckpointTest, InjectedSaveFaultsLeaveNoFileBehind) {
  const data::OperatorDataset dataset = SyntheticDataset(16);
  util::Rng rng(7);
  encoder::PerformanceEncoder model(TinyConfig(), &rng);
  Adam optimizer(model.Parameters(), 1e-3f);
  TrainingState state;
  const std::string path = TempPath("qpe_ckpt_fault_save.ckpt");
  std::remove(path.c_str());
  const std::string tmp_path = path + ".tmp";

  // Walk the fault through every checkpoint-write site (open, write, flush,
  // rename): each must fail with a descriptive IO Status, leave no final
  // file, and leak no temp file. Eventually the fault index exceeds the
  // number of sites and the save succeeds.
  int failures = 0;
  bool succeeded = false;
  for (int nth = 1; nth <= 10 && !succeeded; ++nth) {
    util::ScopedFaultInjection guard("checkpoint.", nth);
    const util::Status s = SaveTrainingCheckpoint(path, model, optimizer,
                                                  state);
    if (s.ok()) {
      succeeded = true;
      break;
    }
    ++failures;
    EXPECT_EQ(s.code(), util::StatusCode::kIo) << s.ToString();
    EXPECT_NE(s.message().find("injected fault"), std::string::npos)
        << s.ToString();
    EXPECT_FALSE(CheckpointExists(path)) << "partial checkpoint after fault";
    EXPECT_FALSE(CheckpointExists(tmp_path)) << "leaked temp file";
  }
  EXPECT_TRUE(succeeded) << "save never recovered past the fault sweep";
  EXPECT_GE(failures, 3);  // at least open/write/rename are separate sites
  EXPECT_TRUE(CheckpointExists(path));
  EXPECT_FALSE(CheckpointExists(tmp_path));
  std::remove(path.c_str());
}

TEST(CheckpointTest, InjectedReadFaultLeavesModelUntouched) {
  const SavedCheckpoint saved = MakeValidCheckpoint("qpe_ckpt_fault_read.ckpt");
  Victim victim;
  const auto values_before = AllValues(victim.model);
  TrainingState state;
  util::ScopedFaultInjection guard("checkpoint.read", 1);
  const util::Status s = LoadTrainingCheckpoint(saved.path, &victim.model,
                                                &victim.optimizer, &state);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("injected fault"), std::string::npos);
  EXPECT_EQ(AllValues(victim.model), values_before);
  std::remove(saved.path.c_str());
}

// A failed periodic save must not abort training: the error is surfaced via
// io_status and the run still completes every epoch.
TEST(CheckpointTest, FailedPeriodicSaveDegradesButTrainingContinues) {
  const data::OperatorDataset dataset = SyntheticDataset(16);
  util::Rng rng(7);
  encoder::PerformanceEncoder model(TinyConfig(), &rng);
  encoder::PerfTrainOptions options;
  options.epochs = 3;
  options.checkpoint.path = TempPath("qpe_ckpt_degrade.ckpt");
  std::remove(options.checkpoint.path.c_str());
  util::Status io_status;
  options.io_status = &io_status;
  util::ScopedFaultInjection guard("checkpoint.rename", 1);
  const auto history = TrainPerformanceEncoder(&model, dataset, options);
  EXPECT_EQ(history.size(), 3u);
  EXPECT_FALSE(io_status.ok());
  EXPECT_NE(io_status.message().find("injected fault"), std::string::npos);
  std::remove(options.checkpoint.path.c_str());
}

// A corrupt resume file must abort the run (zero epochs) instead of being
// silently overwritten by a fresh training run.
TEST(CheckpointTest, CorruptResumeFileAbortsInsteadOfOverwriting) {
  const SavedCheckpoint saved = MakeValidCheckpoint("qpe_ckpt_noclobber.ckpt");
  std::string bytes = ReadFile(saved.path);
  bytes[bytes.size() / 2] ^= 0x01;
  WriteFile(saved.path, bytes);

  const data::OperatorDataset dataset = SyntheticDataset(16);
  util::Rng rng(7);
  encoder::PerformanceEncoder model(TinyConfig(), &rng);
  encoder::PerfTrainOptions options;
  options.epochs = 3;
  options.checkpoint.path = saved.path;
  util::Status io_status;
  options.io_status = &io_status;
  const auto history = TrainPerformanceEncoder(&model, dataset, options);
  EXPECT_TRUE(history.empty());
  EXPECT_EQ(io_status.code(), util::StatusCode::kDataLoss)
      << io_status.ToString();
  EXPECT_EQ(ReadFile(saved.path), bytes) << "corrupt checkpoint was clobbered";
  std::remove(saved.path.c_str());
}

// --- Transactional LoadModule (partial-mutation regression) ---------------

TEST(LoadModuleTest, ShapeMismatchLeavesDestinationUntouched) {
  util::Rng r1(1), r2(2);
  // First layer matches, second differs: staging must reach the mismatch
  // only after earlier tensors validated, and still mutate nothing.
  Mlp source({4, 6, 3}, Activation::kRelu, Activation::kNone, &r1);
  Mlp dest({4, 6, 4}, Activation::kRelu, Activation::kNone, &r2);
  std::ostringstream os;
  SaveModule(source, os);
  const auto values_before = AllValues(dest);

  std::istringstream is(os.str());
  EXPECT_FALSE(LoadModule(&dest, is));
  EXPECT_EQ(AllValues(dest), values_before);

  std::istringstream is2(os.str());
  const util::Status s = LoadModuleStatus(&dest, is2);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), util::StatusCode::kFailedPrecondition) << s.ToString();
  // The diagnostic names the offending tensor and both shapes.
  EXPECT_NE(s.message().find("layer1.weight"), std::string::npos)
      << s.ToString();
  EXPECT_EQ(AllValues(dest), values_before);
}

TEST(LoadModuleTest, TruncatedStreamLeavesDestinationUntouched) {
  util::Rng r1(3), r2(4);
  Mlp source({4, 6, 3}, Activation::kRelu, Activation::kNone, &r1);
  Mlp dest({4, 6, 3}, Activation::kRelu, Activation::kNone, &r2);
  std::ostringstream os;
  SaveModule(source, os);
  const std::string bytes = os.str();
  const auto values_before = AllValues(dest);

  // Cut in the middle of the last tensor's data.
  std::istringstream is(bytes.substr(0, bytes.size() - 5));
  const util::Status s = LoadModuleStatus(&dest, is);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), util::StatusCode::kDataLoss) << s.ToString();
  EXPECT_NE(s.message().find("truncated"), std::string::npos) << s.ToString();
  EXPECT_EQ(AllValues(dest), values_before);
}

// --- Bit-exact interrupt/resume ------------------------------------------

// Acceptance criterion: a run checkpointed and interrupted at epoch k, then
// resumed, must finish with bit-identical parameters to an uninterrupted
// run at the same thread count.
TEST(ResumeTest, PerfEncoderResumeIsBitExact) {
  const data::OperatorDataset dataset = SyntheticDataset();
  const std::string path = TempPath("qpe_resume_perf.ckpt");
  std::remove(path.c_str());

  encoder::PerfTrainOptions uninterrupted;
  uninterrupted.epochs = 6;
  uninterrupted.batch_size = 16;
  util::Rng rng_a(77);
  encoder::PerformanceEncoder model_a(TinyConfig(), &rng_a);
  const auto history_a = TrainPerformanceEncoder(&model_a, dataset,
                                                 uninterrupted);
  ASSERT_EQ(history_a.size(), 6u);

  // Interrupted run: 3 epochs with checkpointing, then resume to 6.
  util::Rng rng_b(77);
  encoder::PerformanceEncoder model_b(TinyConfig(), &rng_b);
  encoder::PerfTrainOptions first_half = uninterrupted;
  first_half.epochs = 3;
  first_half.checkpoint.path = path;
  util::Status io_status;
  first_half.io_status = &io_status;
  ASSERT_EQ(TrainPerformanceEncoder(&model_b, dataset, first_half).size(), 3u);
  ASSERT_TRUE(io_status.ok()) << io_status.ToString();

  // The resumed process starts from a *fresh* model, as after a crash.
  util::Rng rng_c(77);
  encoder::PerformanceEncoder model_c(TinyConfig(), &rng_c);
  encoder::PerfTrainOptions second_half = uninterrupted;
  second_half.checkpoint.path = path;
  second_half.io_status = &io_status;
  const auto resumed = TrainPerformanceEncoder(&model_c, dataset, second_half);
  ASSERT_TRUE(io_status.ok()) << io_status.ToString();
  EXPECT_EQ(resumed.size(), 3u) << "resume should run only epochs 3..5";

  EXPECT_EQ(AllValues(model_c), AllValues(model_a));
  // And the resumed epochs reproduce the uninterrupted history exactly.
  for (size_t i = 0; i < resumed.size(); ++i) {
    EXPECT_DOUBLE_EQ(resumed[i].val_mae_ms, history_a[i + 3].val_mae_ms);
  }
  std::remove(path.c_str());
}

TEST(ResumeTest, PpsrResumeIsBitExact) {
  data::PairDatasetOptions pair_options;
  pair_options.num_pairs = 20;
  pair_options.corpus.max_nodes = 12;
  const data::PlanPairDataset dataset = BuildCorpusPairDataset(pair_options);
  const std::string path = TempPath("qpe_resume_ppsr.ckpt");
  std::remove(path.c_str());

  encoder::PpsrTrainOptions uninterrupted;
  uninterrupted.epochs = 4;
  util::Rng rng_a(31);
  encoder::PpsrModel model_a(
      std::make_unique<encoder::FnnPlanEncoder>(8, 6, &rng_a), &rng_a);
  TrainPpsr(&model_a, dataset.train, uninterrupted);

  util::Rng rng_b(31);
  encoder::PpsrModel model_b(
      std::make_unique<encoder::FnnPlanEncoder>(8, 6, &rng_b), &rng_b);
  encoder::PpsrTrainOptions first_half = uninterrupted;
  first_half.epochs = 2;
  first_half.checkpoint.path = path;
  encoder::PpsrTrainStats stats;
  first_half.stats = &stats;
  TrainPpsr(&model_b, dataset.train, first_half);
  ASSERT_TRUE(stats.io_status.ok()) << stats.io_status.ToString();

  util::Rng rng_c(31);
  encoder::PpsrModel model_c(
      std::make_unique<encoder::FnnPlanEncoder>(8, 6, &rng_c), &rng_c);
  encoder::PpsrTrainOptions second_half = uninterrupted;
  second_half.checkpoint.path = path;
  second_half.stats = &stats;
  TrainPpsr(&model_c, dataset.train, second_half);
  ASSERT_TRUE(stats.io_status.ok()) << stats.io_status.ToString();
  EXPECT_EQ(stats.resumed_from_epoch, 2);

  EXPECT_EQ(AllValues(model_c), AllValues(model_a));
  std::remove(path.c_str());
}

TEST(ResumeTest, SparseAutoencoderResumeIsBitExact) {
  std::vector<std::unique_ptr<plan::PlanNode>> owned;
  std::vector<const plan::PlanNode*> plans;
  data::CorpusOptions corpus;
  corpus.min_nodes = 4;
  corpus.max_nodes = 14;
  for (int i = 0; i < 12; ++i) {
    data::RandomPlanGenerator generator(util::Rng(200 + i), corpus);
    owned.push_back(generator.Generate());
    plans.push_back(owned.back().get());
  }
  const std::string path = TempPath("qpe_resume_sae.ckpt");
  std::remove(path.c_str());

  util::Rng rng_a(13);
  encoder::SparseAutoencoder model_a(8, &rng_a);
  PretrainSparseAutoencoder(&model_a, plans, 6, 5e-3f, 1, 2);

  util::Rng rng_b(13);
  encoder::SparseAutoencoder model_b(8, &rng_b);
  CheckpointConfig checkpoint;
  checkpoint.path = path;
  PretrainSparseAutoencoder(&model_b, plans, 3, 5e-3f, 1, 2, checkpoint);

  util::Rng rng_c(13);
  encoder::SparseAutoencoder model_c(8, &rng_c);
  PretrainSparseAutoencoder(&model_c, plans, 6, 5e-3f, 1, 2, checkpoint);

  EXPECT_EQ(AllValues(model_c), AllValues(model_a));
  std::remove(path.c_str());
}

// --- Loss-spike guard -----------------------------------------------------

TEST(LossSpikeGuardTest, NonFiniteBatchesAreSkippedAndCounted) {
  data::OperatorDataset dataset = SyntheticDataset();
  // Poison one training sample with a huge feature value: the squared loss
  // overflows float to Inf for every batch containing it. (A literal NaN
  // would be silently squashed by ReLU / label clamping before the loss.)
  dataset.train[5].node_features[0] = 1e30;

  util::Rng rng(7);
  encoder::PerformanceEncoder model(TinyConfig(), &rng);
  encoder::PerfTrainOptions options;
  options.epochs = 3;
  options.batch_size = 16;  // 48 samples -> 3 batches, 1 poisoned per epoch
  const auto history = TrainPerformanceEncoder(&model, dataset, options);
  ASSERT_EQ(history.size(), 3u);

  int skipped = 0, nonfinite = 0;
  for (const auto& stats : history) {
    skipped += stats.skipped_batches;
    nonfinite += stats.nonfinite_losses;
  }
  EXPECT_EQ(skipped, 3) << "exactly the poisoned batch, every epoch";
  EXPECT_EQ(nonfinite, skipped);

  // The guard kept the poison out of the weights and Adam moments.
  for (const auto& values : AllValues(model)) {
    for (float v : values) ASSERT_TRUE(std::isfinite(v));
  }
  // Clean validation data still evaluates to a finite MAE.
  EXPECT_TRUE(std::isfinite(history.back().val_mae_ms));
}

}  // namespace
}  // namespace qpe::nn
