// Tests for the graph-epoch tensor arena: storage recycling across epochs,
// escape safety, the steady-state allocation-free property of the training
// hot loop, bit-exactness of arena-on vs arena-off and across thread
// counts, the fused Adam/AdamW optimizer step, and the telemetry counters.

#include <cmath>
#include <memory>
#include <vector>

#include "data/datasets.h"
#include "data/features.h"
#include "data/plan_corpus.h"
#include "encoder/performance_encoder.h"
#include "encoder/ppsr.h"
#include "encoder/structure_encoder.h"
#include "gtest/gtest.h"
#include "nn/arena.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "nn/tensor.h"
#include "util/thread_pool.h"

namespace qpe {
namespace {

using encoder::PerformanceEncoder;
using encoder::PpsrModel;
using encoder::TransformerPlanEncoder;

// Restores the single-thread default when a test body returns.
struct ThreadCountGuard {
  explicit ThreadCountGuard(int n) { util::SetMaxThreads(n); }
  ~ThreadCountGuard() { util::SetMaxThreads(1); }
};

// Flips the process-wide arena kill switch for a scope (the A/B lever for
// the arena-on vs arena-off equivalence tests).
struct ArenaEnabledGuard {
  explicit ArenaEnabledGuard(bool enabled)
      : previous_(nn::TensorArena::Enabled()) {
    nn::TensorArena::SetEnabled(enabled);
  }
  ~ArenaEnabledGuard() { nn::TensorArena::SetEnabled(previous_); }
  bool previous_;
};

// --- Recycling mechanics ----------------------------------------------------

TEST(TensorArenaTest, RecyclesBuffersAcrossEpochs) {
  if (!nn::TensorArena::RecyclingEnabled()) {
    GTEST_SKIP() << "recycling disabled in sanitizer builds";
  }
  nn::TensorArena arena;
  // The epoch mixes overwrite-style ops (Add/Scale) with an accumulating
  // MatMul, so both Fill::kOverwrite and Fill::kZero recycled buffers are
  // checked for correct contents on reuse.
  auto run_epoch = [&arena] {
    nn::ArenaScope scope(&arena);
    const nn::Tensor a = nn::Tensor::FromVector(2, 2, {1, 2, 3, 4});
    const nn::Tensor b = Scale(Add(a, a), 0.5f);
    const nn::Tensor c = MatMul(b, a);  // [[7,10],[15,22]]
    EXPECT_FLOAT_EQ(b.value()[3], 4.0f);
    EXPECT_FLOAT_EQ(c.value()[0], 7.0f);
    EXPECT_FLOAT_EQ(c.value()[3], 22.0f);
  };

  run_epoch();
  const nn::MemoryStats first = arena.stats();
  EXPECT_GT(first.arena_misses, 0u);
  EXPECT_GT(first.recycled_buffers, 0u);
  EXPECT_EQ(first.epochs, 1u);

  run_epoch();
  const nn::MemoryStats second = arena.stats();
  // Identical shapes: every buffer comes back out of the pools, so the
  // second epoch allocates nothing and produces the same values.
  EXPECT_EQ(second.arena_misses, first.arena_misses);
  EXPECT_GT(second.arena_hits, first.arena_hits);
  EXPECT_EQ(second.epochs, 2u);
}

TEST(TensorArenaTest, EscapedTensorSurvivesEpoch) {
  nn::TensorArena arena;
  nn::Tensor escaped;
  {
    nn::ArenaScope scope(&arena);
    const nn::Tensor a = nn::Tensor::FromVector(2, 2, {1, 2, 3, 4});
    escaped = Scale(a, 2.0f);
  }
  // The epoch ended while `escaped` still held a reference: the arena must
  // release the node (heap-owned from now on), never recycle it.
  ASSERT_EQ(escaped.value().size(), 4u);
  EXPECT_FLOAT_EQ(escaped.value()[0], 2.0f);
  EXPECT_FLOAT_EQ(escaped.value()[3], 8.0f);
  EXPECT_GE(arena.stats().released_buffers, 1u);
}

TEST(TensorArenaTest, ParametersNeverEnterTheArena) {
  nn::TensorArena arena;
  nn::ArenaScope scope(&arena);
  const nn::MemoryStats before = arena.stats();
  const nn::Tensor param = nn::Tensor::FromVector(4, 4, std::vector<float>(16),
                                                  /*requires_grad=*/true);
  const nn::MemoryStats after = arena.stats();
  EXPECT_TRUE(param.requires_grad());
  EXPECT_EQ(after.arena_hits, before.arena_hits);
  EXPECT_EQ(after.arena_misses, before.arena_misses);
}

TEST(TensorArenaTest, NestedScopeDoesNotFragmentTheEpoch) {
  nn::TensorArena arena;
  nn::ArenaScope outer(&arena);
  const nn::Tensor a = nn::Tensor::FromVector(1, 2, {1, 2});
  {
    // A nested default scope must not end the outer epoch: `a` is still
    // live, and recycling it mid-graph would corrupt the computation.
    nn::ArenaScope inner;
    const nn::Tensor b = Add(a, a);
    EXPECT_FLOAT_EQ(b.value()[1], 4.0f);
  }
  EXPECT_EQ(arena.stats().epochs, 0u);
  EXPECT_FLOAT_EQ(a.value()[0], 1.0f);
}

// --- Steady-state allocation-free training ---------------------------------

TEST(TensorArenaTest, TrainingLoopIsAllocationFreeAfterWarmup) {
  if (!nn::TensorArena::RecyclingEnabled()) {
    GTEST_SKIP() << "recycling disabled in sanitizer builds";
  }
  util::Rng rng(5);
  nn::Mlp mlp({8, 16, 16, 4}, nn::Activation::kRelu, nn::Activation::kNone,
              &rng);
  nn::Adam optimizer(mlp.Parameters(), 1e-3f);

  util::Rng data_rng(6);
  std::vector<float> x_data(4 * 8), y_data(4 * 4);
  for (float& v : x_data) v = static_cast<float>(data_rng.Uniform(-1.0, 1.0));
  for (float& v : y_data) v = static_cast<float>(data_rng.Uniform(-1.0, 1.0));

  nn::TensorArena arena;
  uint64_t misses_after_warmup = 0;
  constexpr int kSteps = 8;
  for (int step = 0; step < kSteps; ++step) {
    {
      nn::ArenaScope scope(&arena);
      const nn::Tensor x = nn::Tensor::FromVector(4, 8, x_data);
      const nn::Tensor y = nn::Tensor::FromVector(4, 4, y_data);
      nn::Tensor loss = Mean(Square(Sub(mlp.Forward(x), y)));
      optimizer.ZeroGrad();
      loss.Backward();
      optimizer.Step();
    }
    // The first step populates the pools; every later step must be served
    // entirely from recycled storage — the allocation-free hot loop this
    // arena exists for.
    if (step == 0) {
      misses_after_warmup = arena.stats().arena_misses;
      EXPECT_GT(misses_after_warmup, 0u);
    } else {
      EXPECT_EQ(arena.stats().arena_misses, misses_after_warmup)
          << "step " << step << " allocated fresh graph storage";
    }
  }
  EXPECT_EQ(arena.stats().epochs, static_cast<uint64_t>(kSteps));
}

// --- Bit-exactness: arena on vs off, threads 1 vs 4 -------------------------

encoder::StructureEncoderConfig TinyEncoderConfig() {
  encoder::StructureEncoderConfig config;
  config.level1_dim = 12;
  config.level2_dim = 6;
  config.level3_dim = 6;
  config.num_heads = 2;
  config.ff_dim = 32;
  config.num_layers = 1;
  config.max_len = 64;
  config.dropout = 0.1f;  // exercises the dropout-mask arena tensors
  return config;
}

struct PpsrRunResult {
  double final_loss = 0;
  double train_mae = 0;
  std::vector<float> embedding;
};

PpsrRunResult RunSmallPpsrTraining(int threads) {
  ThreadCountGuard guard(threads);
  data::PairDatasetOptions options;
  options.num_pairs = 24;
  options.corpus.min_nodes = 4;
  options.corpus.max_nodes = 12;
  const data::PlanPairDataset dataset = data::BuildCorpusPairDataset(options);

  util::Rng rng(14);
  PpsrModel model(
      std::make_unique<TransformerPlanEncoder>(TinyEncoderConfig(), &rng),
      &rng);
  encoder::PpsrTrainOptions train_options;
  train_options.epochs = 2;
  PpsrRunResult result;
  result.final_loss = TrainPpsr(&model, dataset.train, train_options);
  result.train_mae = EvaluatePpsrMae(model, dataset.train);
  data::CorpusOptions corpus;
  corpus.min_nodes = 4;
  corpus.max_nodes = 12;
  data::RandomPlanGenerator generator(util::Rng(7), corpus);
  const auto plan = generator.Generate();
  result.embedding = model.encoder()->Encode(*plan, nullptr).value();
  return result;
}

void ExpectPpsrRunsIdentical(const PpsrRunResult& a, const PpsrRunResult& b) {
  EXPECT_EQ(a.final_loss, b.final_loss);
  EXPECT_EQ(a.train_mae, b.train_mae);
  ASSERT_EQ(a.embedding.size(), b.embedding.size());
  for (size_t i = 0; i < a.embedding.size(); ++i) {
    EXPECT_EQ(a.embedding[i], b.embedding[i]) << "embedding mismatch at " << i;
  }
}

TEST(ArenaBitExactnessTest, PpsrTrainingArenaOnEqualsArenaOff) {
  PpsrRunResult with_arena, without_arena;
  {
    ArenaEnabledGuard guard(true);
    with_arena = RunSmallPpsrTraining(1);
  }
  {
    ArenaEnabledGuard guard(false);
    without_arena = RunSmallPpsrTraining(1);
  }
  ExpectPpsrRunsIdentical(with_arena, without_arena);
}

TEST(ArenaBitExactnessTest, PpsrTrainingArenaOnThreadCountInvariant) {
  ArenaEnabledGuard guard(true);
  const PpsrRunResult t1 = RunSmallPpsrTraining(1);
  const PpsrRunResult t4 = RunSmallPpsrTraining(4);
  ExpectPpsrRunsIdentical(t1, t4);
}

data::OperatorDataset SyntheticPerfDataset() {
  data::OperatorDataset dataset;
  dataset.train.resize(48);
  util::Rng feature_rng(10);
  for (size_t i = 0; i < dataset.train.size(); ++i) {
    auto& sample = dataset.train[i];
    sample.node_features.resize(data::kNodeFeatureDim);
    sample.meta_features.resize(catalog::Catalog::kMetaFeatureDim);
    sample.db_features.resize(config::DbConfig::FeatureDim());
    for (double& v : sample.node_features) v = feature_rng.Uniform();
    for (double& v : sample.meta_features) v = feature_rng.Uniform();
    for (double& v : sample.db_features) v = feature_rng.Uniform();
    sample.actual_total_time_ms = 10.0 * (i % 7 + 1);
    sample.total_cost = 100.0 * (i % 5 + 1);
    sample.startup_cost = 1.0 * (i % 3 + 1);
  }
  return dataset;
}

encoder::PerfEncoderConfig TinyPerfConfig() {
  encoder::PerfEncoderConfig config;
  config.node_dim = data::kNodeFeatureDim;
  config.meta_dim = catalog::Catalog::kMetaFeatureDim;
  config.db_dim = config::DbConfig::FeatureDim();
  config.column_hidden = 16;
  config.embed_dim = 16;
  return config;
}

std::vector<float> RunSmallPerfTraining(int threads) {
  ThreadCountGuard guard(threads);
  const data::OperatorDataset dataset = SyntheticPerfDataset();
  util::Rng rng(22);
  PerformanceEncoder model(TinyPerfConfig(), &rng);
  encoder::PerfTrainOptions options;
  options.epochs = 2;
  const auto history = encoder::TrainPerformanceEncoder(&model, dataset, options);
  std::vector<float> flat;
  for (const auto& stats : history) {
    flat.push_back(static_cast<float>(stats.train_mae_ms));
  }
  std::vector<int> indices;
  for (int i = 0; i < 8; ++i) indices.push_back(i);
  const encoder::PerfBatch batch =
      encoder::MakePerfBatch(dataset.train, indices);
  const nn::Tensor pred =
      model.PredictLabels(model.Embed(batch.node, batch.meta, batch.db));
  flat.insert(flat.end(), pred.value().begin(), pred.value().end());
  return flat;
}

TEST(ArenaBitExactnessTest, PerfTrainingArenaOnEqualsArenaOff) {
  std::vector<float> with_arena, without_arena;
  {
    ArenaEnabledGuard guard(true);
    with_arena = RunSmallPerfTraining(1);
  }
  {
    ArenaEnabledGuard guard(false);
    without_arena = RunSmallPerfTraining(1);
  }
  ASSERT_EQ(with_arena.size(), without_arena.size());
  for (size_t i = 0; i < with_arena.size(); ++i) {
    EXPECT_EQ(with_arena[i], without_arena[i]) << "mismatch at " << i;
  }
}

TEST(ArenaBitExactnessTest, PerfTrainingArenaOnThreadCountInvariant) {
  ArenaEnabledGuard guard(true);
  const std::vector<float> t1 = RunSmallPerfTraining(1);
  const std::vector<float> t4 = RunSmallPerfTraining(4);
  ASSERT_EQ(t1.size(), t4.size());
  for (size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i], t4[i]) << "mismatch at " << i;
  }
}

// --- Fused optimizer step ---------------------------------------------------

// The pre-fusion reference update: separate moment, bias-correction, and
// parameter passes, with the arithmetic the fused loop must reproduce
// exactly.
void ReferenceAdamStep(std::vector<float>& value,
                       const std::vector<float>& grad, std::vector<float>& m,
                       std::vector<float>& v, int step_count, float lr,
                       float beta1, float beta2, float eps) {
  const float bias1 = 1.0f - std::pow(beta1, static_cast<float>(step_count));
  const float bias2 = 1.0f - std::pow(beta2, static_cast<float>(step_count));
  for (size_t j = 0; j < value.size(); ++j) {
    m[j] = beta1 * m[j] + (1.0f - beta1) * grad[j];
    v[j] = beta2 * v[j] + (1.0f - beta2) * grad[j] * grad[j];
    const float m_hat = m[j] / bias1;
    const float v_hat = v[j] / bias2;
    value[j] -= lr * m_hat / (std::sqrt(v_hat) + eps);
  }
}

TEST(FusedOptimizerTest, AdamMatchesReferenceBitwise) {
  util::Rng rng(33);
  std::vector<float> init(24), grad1(24), grad2(24);
  for (float& x : init) x = static_cast<float>(rng.Uniform(-1.0, 1.0));
  for (float& x : grad1) x = static_cast<float>(rng.Uniform(-1.0, 1.0));
  for (float& x : grad2) x = static_cast<float>(rng.Uniform(-1.0, 1.0));

  nn::Tensor p = nn::Tensor::FromVector(4, 6, init, /*requires_grad=*/true);
  nn::Adam adam({p}, /*lr=*/0.01f);

  std::vector<float> ref_value = init;
  std::vector<float> ref_m(24, 0.0f), ref_v(24, 0.0f);
  int step = 0;
  for (const auto& grad : {grad1, grad2}) {
    p.ZeroGrad();
    for (size_t j = 0; j < grad.size(); ++j) p.grad()[j] = grad[j];
    adam.Step();
    ReferenceAdamStep(ref_value, grad, ref_m, ref_v, ++step, 0.01f, 0.9f,
                      0.999f, 1e-8f);
  }
  for (size_t j = 0; j < ref_value.size(); ++j) {
    EXPECT_EQ(p.value()[j], ref_value[j]) << "value mismatch at " << j;
  }
}

TEST(FusedOptimizerTest, AdamWWithZeroDecayMatchesAdamBitwise) {
  std::vector<float> init = {0.5f, -1.25f, 2.0f, -0.375f};
  std::vector<float> grad = {0.1f, -0.2f, 0.3f, -0.4f};
  nn::Tensor pa = nn::Tensor::FromVector(1, 4, init, true);
  nn::Tensor pw = nn::Tensor::FromVector(1, 4, init, true);
  nn::Adam adam({pa}, 0.05f);
  nn::AdamW adamw({pw}, 0.05f, /*weight_decay=*/0.0f);
  for (int step = 0; step < 3; ++step) {
    pa.ZeroGrad();
    pw.ZeroGrad();
    for (size_t j = 0; j < grad.size(); ++j) {
      pa.grad()[j] = grad[j];
      pw.grad()[j] = grad[j];
    }
    adam.Step();
    adamw.Step();
  }
  for (size_t j = 0; j < init.size(); ++j) {
    EXPECT_EQ(pa.value()[j], pw.value()[j]) << "mismatch at " << j;
  }
}

TEST(FusedOptimizerTest, AdamWAppliesDecoupledDecay) {
  // With zero gradient the Adam term is exactly 0 (m stays 0), so one AdamW
  // step reduces to value -= lr * wd * value.
  std::vector<float> init = {2.0f, -4.0f};
  nn::Tensor p = nn::Tensor::FromVector(1, 2, init, true);
  nn::AdamW adamw({p}, /*lr=*/0.1f, /*weight_decay=*/0.5f);
  p.ZeroGrad();
  adamw.Step();
  for (size_t j = 0; j < init.size(); ++j) {
    EXPECT_FLOAT_EQ(p.value()[j], init[j] - 0.1f * 0.5f * init[j]);
  }
}

TEST(FusedOptimizerTest, AdamWStateIsNotInterchangeableWithAdam) {
  nn::Tensor p = nn::Tensor::FromVector(1, 2, {1.0f, 2.0f}, true);
  nn::Adam adam({p}, 0.01f);
  nn::AdamW adamw({p}, 0.01f, 0.1f);
  EXPECT_EQ(adam.ExportState().kind, "adam");
  EXPECT_EQ(adamw.ExportState().kind, "adamw");
  EXPECT_FALSE(adamw.ImportState(adam.ExportState()).ok());
  EXPECT_FALSE(adam.ImportState(adamw.ExportState()).ok());
  EXPECT_TRUE(adamw.ImportState(adamw.ExportState()).ok());
}

// --- Telemetry --------------------------------------------------------------

TEST(MemoryStatsTest, CountersAccountForArenaTraffic) {
  nn::TensorArena arena;
  {
    nn::ArenaScope scope(&arena);
    const nn::Tensor a = nn::Tensor::FromVector(8, 8, std::vector<float>(64));
    const nn::Tensor b = Add(a, a);
    (void)b;
  }
  const nn::MemoryStats stats = arena.stats();
  EXPECT_GE(stats.bytes_requested, 2u * 64u * sizeof(float));
  EXPECT_EQ(stats.arena_hits + stats.arena_misses,
            stats.recycled_buffers + stats.released_buffers);
  EXPECT_EQ(stats.epochs, 1u);
  EXPECT_GT(stats.peak_arena_bytes, 0u);
}

TEST(MemoryStatsTest, GlobalStatsIncludeEveryArena) {
  const nn::MemoryStats before = nn::GlobalMemoryStats();
  nn::TensorArena arena;
  {
    nn::ArenaScope scope(&arena);
    const nn::Tensor a = nn::Tensor::FromVector(4, 4, std::vector<float>(16));
    (void)a;
  }
  const nn::MemoryStats after = nn::GlobalMemoryStats();
  EXPECT_GE(after.bytes_requested,
            before.bytes_requested + 16u * sizeof(float));
  EXPECT_GE(after.epochs, before.epochs + 1u);
}

TEST(MemoryStatsTest, PeakRssIsReported) {
  EXPECT_GT(nn::PeakRssBytes(), 0u);
}

}  // namespace
}  // namespace qpe
