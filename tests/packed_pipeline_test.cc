// Packed-batch pipeline tests: FromLengthsChecked validation, the fused
// embedding-gather kernel, the head-blocked attention kernel, the packed
// int8 GEMM, the quantize_buffer contract (ties away from zero,
// saturation), packed-vs-per-plan encoder parity at adversarial batch
// shapes x SIMD levels x thread counts, the QPE_PACKED / QPE_HEAD_BLOCK /
// QPE_INT8_PACKED A/B knobs, and the arena-steady-state contract (zero
// heap acquisitions per micro-batch after warmup).

#include <climits>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "data/datasets.h"
#include "data/plan_corpus.h"
#include "encoder/ppsr.h"
#include "encoder/quantized_encoder.h"
#include "encoder/structure_encoder.h"
#include "gtest/gtest.h"
#include "nn/arena.h"
#include "nn/packed_batch.h"
#include "nn/packed_forward.h"
#include "nn/quant.h"
#include "nn/simd.h"
#include "nn/tensor.h"
#include "nn/transformer.h"
#include "plan/plan_node.h"
#include "serve/embedding_service.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace qpe {
namespace {

using nn::BatchLayout;
using nn::simd::Kernels;
using nn::simd::Level;

// Restores the dispatched kernel table on scope exit so a forced level
// never leaks into other tests.
class SimdLevelGuard {
 public:
  SimdLevelGuard() : saved_(nn::simd::ActiveLevel()) {}
  ~SimdLevelGuard() { nn::simd::ForceLevel(saved_); }

 private:
  Level saved_;
};

// Restores the global thread count on scope exit.
class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(util::MaxThreads()) {}
  ~ThreadCountGuard() { util::SetMaxThreads(saved_); }

 private:
  int saved_;
};

// Sets an environment variable for the scope, restoring the previous value
// (or unsetting) on exit. The pipeline knobs re-read the environment on
// every call, so this is enough for in-process A/B.
class EnvVarGuard {
 public:
  EnvVarGuard(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    setenv(name, value, /*overwrite=*/1);
  }
  ~EnvVarGuard() {
    if (had_old_) {
      setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

std::vector<float> RandomVec(size_t n, util::Rng* rng, float scale = 1.0f) {
  std::vector<float> v(n);
  for (float& x : v) {
    x = scale * static_cast<float>(rng->Uniform() * 2.0 - 1.0);
  }
  return v;
}

std::vector<int8_t> RandomInt8(size_t n, util::Rng* rng) {
  std::vector<int8_t> v(n);
  for (int8_t& x : v) {
    x = static_cast<int8_t>(
        static_cast<int>(rng->Uniform() * 255.0) - 127);
  }
  return v;
}

// The vector table compiled into this binary (if the hardware supports
// it); on scalar-only hardware the parity tests run scalar-vs-scalar and
// trivially pass.
const Kernels* VectorTable() {
  return nn::simd::TableFor(nn::simd::HardwareLevel());
}

encoder::StructureEncoderConfig SmallConfig() {
  encoder::StructureEncoderConfig config;
  config.level1_dim = 12;
  config.level2_dim = 6;
  config.level3_dim = 6;
  config.num_heads = 2;
  config.ff_dim = 32;
  config.num_layers = 2;
  config.max_len = 128;
  config.dropout = 0.0f;
  return config;
}

std::vector<std::unique_ptr<plan::PlanNode>> SamplePlans(int count,
                                                         uint64_t seed,
                                                         int min_nodes = 4,
                                                         int max_nodes = 24) {
  data::CorpusOptions options;
  options.min_nodes = min_nodes;
  options.max_nodes = max_nodes;
  data::RandomPlanGenerator generator(util::Rng(seed), options);
  std::vector<std::unique_ptr<plan::PlanNode>> plans;
  plans.reserve(count);
  for (int i = 0; i < count; ++i) plans.push_back(generator.Generate());
  return plans;
}

std::vector<const plan::PlanNode*> Pointers(
    const std::vector<std::unique_ptr<plan::PlanNode>>& plans) {
  std::vector<const plan::PlanNode*> ptrs;
  ptrs.reserve(plans.size());
  for (const auto& p : plans) ptrs.push_back(p.get());
  return ptrs;
}

// --- BatchLayout::FromLengthsChecked hardening ------------------------------

TEST(FromLengthsCheckedTest, AcceptsValidLengths) {
  const auto layout = BatchLayout::FromLengthsChecked({1, 5, 3});
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout.value().total_rows, 9);
  EXPECT_EQ(layout.value().offsets, (std::vector<int>{0, 1, 6}));
  EXPECT_EQ(layout.value().positions,
            (std::vector<int>{0, 0, 1, 2, 3, 4, 0, 1, 2}));
}

TEST(FromLengthsCheckedTest, RejectsZeroAndNegativeLengths) {
  const auto zero = BatchLayout::FromLengthsChecked({3, 0, 2});
  ASSERT_FALSE(zero.ok());
  EXPECT_NE(zero.status().message().find("sequence 1"), std::string::npos)
      << zero.status().message();
  EXPECT_NE(zero.status().message().find("non-positive"), std::string::npos);

  const auto negative = BatchLayout::FromLengthsChecked({-5});
  ASSERT_FALSE(negative.ok());
  EXPECT_NE(negative.status().message().find("sequence 0"),
            std::string::npos);
  EXPECT_NE(negative.status().message().find("-5"), std::string::npos);
}

TEST(FromLengthsCheckedTest, RejectsTotalRowsOverflow) {
  // Each length is individually valid; the running total overflows int.
  // Validation must reject this before allocating anything proportional to
  // the bogus total (the test would OOM otherwise).
  const auto overflow = BatchLayout::FromLengthsChecked({INT_MAX, INT_MAX});
  ASSERT_FALSE(overflow.ok());
  EXPECT_NE(overflow.status().message().find("overflow"), std::string::npos)
      << overflow.status().message();
  EXPECT_NE(overflow.status().message().find("sequence 1"),
            std::string::npos);
}

TEST(FromLengthsCheckedTest, EmptyBatchIsValid) {
  const auto layout = BatchLayout::FromLengthsChecked({});
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout.value().total_rows, 0);
  EXPECT_EQ(layout.value().size(), 0);
}

// --- Fused embedding gather + positional add --------------------------------

TEST(PackedKernelTest, EmbedGatherAddMatchesScalarBitwise) {
  const Kernels* vec = VectorTable();
  const Kernels* scalar = nn::simd::TableFor(Level::kScalar);
  ASSERT_NE(scalar, nullptr);
  util::Rng rng(91);
  // Odd per-level dims so every segment exercises its tail lanes.
  const int d1 = 13, d2 = 5, d3 = 7;
  const int d = d1 + d2 + d3;
  const int vocab1 = 19, vocab2 = 11, vocab3 = 9, max_len = 17;
  const std::vector<float> e1 = RandomVec(static_cast<size_t>(vocab1) * d1,
                                          &rng);
  const std::vector<float> e2 = RandomVec(static_cast<size_t>(vocab2) * d2,
                                          &rng);
  const std::vector<float> e3 = RandomVec(static_cast<size_t>(vocab3) * d3,
                                          &rng);
  const std::vector<float> pos = RandomVec(static_cast<size_t>(max_len) * d,
                                           &rng);
  for (const int rows : {1, 3, 17}) {
    std::vector<int> ids1(rows), ids2(rows), ids3(rows), positions(rows);
    for (int r = 0; r < rows; ++r) {
      ids1[r] = static_cast<int>(rng.Uniform() * vocab1);
      ids2[r] = static_cast<int>(rng.Uniform() * vocab2);
      ids3[r] = static_cast<int>(rng.Uniform() * vocab3);
      positions[r] = static_cast<int>(rng.Uniform() * max_len);
    }
    std::vector<float> out_s(static_cast<size_t>(rows) * d, -1.0f);
    std::vector<float> out_v(static_cast<size_t>(rows) * d, -2.0f);
    scalar->embed_gather_add(e1.data(), e2.data(), e3.data(), pos.data(),
                             ids1.data(), ids2.data(), ids3.data(),
                             positions.data(), out_s.data(), rows, d1, d2,
                             d3);
    vec->embed_gather_add(e1.data(), e2.data(), e3.data(), pos.data(),
                          ids1.data(), ids2.data(), ids3.data(),
                          positions.data(), out_v.data(), rows, d1, d2, d3);
    // Reference: explicit gather + add. Pure copies and adds, so every
    // level must match it bit for bit.
    for (int r = 0; r < rows; ++r) {
      const float* prow = pos.data() + static_cast<size_t>(positions[r]) * d;
      for (int c = 0; c < d; ++c) {
        const float* table =
            c < d1 ? e1.data() + static_cast<size_t>(ids1[r]) * d1 + c
            : c < d1 + d2
                ? e2.data() + static_cast<size_t>(ids2[r]) * d2 + (c - d1)
                : e3.data() + static_cast<size_t>(ids3[r]) * d3 +
                      (c - d1 - d2);
        const float expect = *table + prow[c];
        const size_t idx = static_cast<size_t>(r) * d + c;
        ASSERT_EQ(out_s[idx], expect) << "row " << r << " col " << c;
        ASSERT_EQ(out_v[idx], expect) << "row " << r << " col " << c;
      }
    }
  }
}

// --- Head-blocked attention -------------------------------------------------

TEST(PackedKernelTest, AttentionBlockedMatchesInterleavedPerLevel) {
  // The blocked kernel reproduces the interleaved kernel's arithmetic per
  // output element, so within one level the two must agree bit for bit —
  // including at vector levels, where both use the same polynomial exp.
  util::Rng rng(92);
  const int num_heads = 3, head_dim = 5;
  const int d = num_heads * head_dim;
  const std::vector<int> lengths = {1, 7, 3, 1, 12};
  const BatchLayout layout = BatchLayout::FromLengths(lengths);
  const int rows = layout.total_rows;
  int max_len = 0;
  for (const int len : lengths) max_len = std::max(max_len, len);
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));

  const std::vector<float> q = RandomVec(static_cast<size_t>(rows) * d, &rng);
  const std::vector<float> k = RandomVec(static_cast<size_t>(rows) * d, &rng);
  const std::vector<float> v = RandomVec(static_cast<size_t>(rows) * d, &rng);
  std::vector<float> kbt(static_cast<size_t>(rows) * d);
  std::vector<float> vb(static_cast<size_t>(rows) * d);
  nn::RepackHeadsKT(k.data(), rows, d, num_heads, kbt.data());
  nn::RepackHeadsVB(v.data(), rows, d, num_heads, vb.data());
  std::vector<float> probs(static_cast<size_t>(max_len) * max_len);

  for (const Level level : {Level::kScalar, nn::simd::HardwareLevel()}) {
    const Kernels* table = nn::simd::TableFor(level);
    if (table == nullptr) continue;
    std::vector<float> out_packed(static_cast<size_t>(rows) * d, 0.0f);
    std::vector<float> out_blocked(static_cast<size_t>(rows) * d, -1.0f);
    table->attention_forward_packed(q.data(), k.data(), v.data(),
                                    out_packed.data(), layout.offsets.data(),
                                    layout.lengths.data(), layout.size(),
                                    num_heads, d, scale);
    table->attention_forward_blocked(
        q.data(), kbt.data(), vb.data(), out_blocked.data(),
        layout.offsets.data(), layout.lengths.data(), layout.size(),
        num_heads, rows, d, scale, probs.data());
    for (size_t i = 0; i < out_packed.size(); ++i) {
      ASSERT_EQ(out_packed[i], out_blocked[i])
          << "level " << table->name << " index " << i;
    }
  }
}

// --- Packed int8 GEMM -------------------------------------------------------

TEST(PackedKernelTest, Int8GemmPackedMatchesUnpackedBitwise) {
  const Kernels* scalar = nn::simd::TableFor(Level::kScalar);
  const Kernels* vec = VectorTable();
  util::Rng rng(93);
  // k not a multiple of 16 and n not a multiple of 4 exercise both padding
  // dimensions of the tile layout.
  const int shapes[][3] = {{1, 1, 1},   {3, 7, 5},   {2, 16, 4},
                           {5, 24, 6},  {17, 48, 33}, {4, 130, 99}};
  for (const auto& s : shapes) {
    const int m = s[0], k = s[1], n = s[2];
    const int k_pad = nn::simd::Int8PackedKPad(k);
    const std::vector<int8_t> a = RandomInt8(static_cast<size_t>(m) * k,
                                             &rng);
    const std::vector<int8_t> w = RandomInt8(static_cast<size_t>(n) * k,
                                             &rng);
    const std::vector<float> a_scale = RandomVec(m, &rng, 0.05f);
    const std::vector<float> b_scale = RandomVec(n, &rng, 0.05f);
    const std::vector<float> bias = RandomVec(n, &rng);

    // Padded activations: k tail of every row zeroed, as the caller
    // contract requires.
    std::vector<int8_t> a_pad(static_cast<size_t>(m) * k_pad, 0);
    for (int i = 0; i < m; ++i) {
      std::copy(a.begin() + static_cast<size_t>(i) * k,
                a.begin() + static_cast<size_t>(i) * k + k,
                a_pad.begin() + static_cast<size_t>(i) * k_pad);
    }
    std::vector<int16_t> packed(nn::simd::Int8PackedSize(k, n));
    nn::simd::PackInt8WeightTiles(w.data(), k, n, packed.data());

    for (const float* b_ptr : {bias.data(), static_cast<const float*>(
                                                nullptr)}) {
      std::vector<float> ref(static_cast<size_t>(m) * n, 0.0f);
      scalar->int8_gemm(a.data(), w.data(), ref.data(), m, k, n,
                        a_scale.data(), b_scale.data(), b_ptr);
      for (const Kernels* table : {scalar, vec}) {
        if (table == nullptr) continue;
        std::vector<float> got(static_cast<size_t>(m) * n, -1.0f);
        table->int8_gemm_packed(a_pad.data(), packed.data(), got.data(), m,
                                k, n, a_scale.data(), b_scale.data(), b_ptr);
        // Integer accumulation is exact, so the packed layout must
        // reproduce the unpacked result bit for bit at every level.
        for (size_t i = 0; i < ref.size(); ++i) {
          ASSERT_EQ(ref[i], got[i]) << "level " << table->name << " shape "
                                    << m << "x" << k << "x" << n << " index "
                                    << i << (b_ptr ? " bias" : " no-bias");
        }
      }
    }
  }
}

// --- quantize_buffer --------------------------------------------------------

TEST(PackedKernelTest, QuantizeBufferMatchesQuantizeValue) {
  const Kernels* scalar = nn::simd::TableFor(Level::kScalar);
  const Kernels* vec = VectorTable();
  util::Rng rng(94);
  const float scale = 0.25f;
  const float inv = 1.0f / scale;
  // Ties (x/scale = ±N.5) must round away from zero; large magnitudes
  // saturate to ±127; everything else rounds to nearest.
  std::vector<float> x = {0.0f,   -0.0f,  0.375f, -0.375f, 0.125f,
                          -0.125f, 31.75f, -31.75f, 1000.0f, -1000.0f,
                          0.124999f, 5.0f};
  std::vector<float> noise = RandomVec(21, &rng, 40.0f);
  x.insert(x.end(), noise.begin(), noise.end());
  for (const int n : {1, 7, static_cast<int>(x.size())}) {
    for (const Kernels* table : {scalar, vec}) {
      if (table == nullptr) continue;
      std::vector<int8_t> out(n, 99);
      table->quantize_buffer(x.data(), n, inv, out.data());
      for (int i = 0; i < n; ++i) {
        ASSERT_EQ(out[i], nn::QuantizeValue(x[i], inv))
            << "level " << table->name << " n " << n << " x " << x[i];
      }
    }
  }
  // Explicit tie spot-checks against hand-computed values.
  const float tie[] = {0.375f, -0.375f};  // /0.25 = 1.5, -1.5
  int8_t got[2];
  scalar->quantize_buffer(tie, 2, inv, got);
  EXPECT_EQ(got[0], 2);
  EXPECT_EQ(got[1], -2);
  const float sat[] = {1000.0f, -1000.0f};
  scalar->quantize_buffer(sat, 2, inv, got);
  EXPECT_EQ(got[0], 127);
  EXPECT_EQ(got[1], -127);
}

// --- Packed encoder vs per-plan Encode at adversarial shapes ----------------
//
// The packing/unpacking property: for every batch shape, SIMD level, and
// thread count, packed EncodeBatch must reproduce the per-plan Encode
// path — bitwise at forced scalar, within epsilon at the hardware level
// (the vector exp is the one sanctioned divergence).

void CheckPackedMatchesPerPlan(const encoder::TransformerPlanEncoder& enc,
                               std::span<const plan::PlanNode* const> ptrs,
                               bool bitwise, const char* what) {
  nn::NoGradGuard no_grad;
  const std::vector<nn::Tensor> batched = enc.EncodeBatch(ptrs, nullptr);
  ASSERT_EQ(batched.size(), ptrs.size());
  for (size_t i = 0; i < ptrs.size(); ++i) {
    const nn::Tensor single = enc.Encode(*ptrs[i], nullptr);
    ASSERT_EQ(batched[i].rows(), 1);
    ASSERT_EQ(batched[i].cols(), single.cols());
    for (int c = 0; c < single.cols(); ++c) {
      if (bitwise) {
        ASSERT_EQ(batched[i].at(0, c), single.at(0, c))
            << what << " plan " << i << " dim " << c;
      } else {
        const float a = single.at(0, c);
        const float tol = 1e-6f * (1.0f + std::fabs(a));
        ASSERT_NEAR(a, batched[i].at(0, c), tol)
            << what << " plan " << i << " dim " << c;
      }
    }
  }
}

TEST(PackedEncoderTest, AdversarialShapesAcrossLevelsAndThreads) {
  SimdLevelGuard level_guard;
  ThreadCountGuard thread_guard;
  util::Rng rng(95);
  // max_len 16: the deep plan below truncates while the tiny ones fit.
  encoder::StructureEncoderConfig config = SmallConfig();
  config.max_len = 16;
  const encoder::TransformerPlanEncoder enc(config, &rng);

  // Batch of 1; a batch of uniformly tiny plans; one deep (truncated) plan
  // among tiny ones — the max_len row next to length-3 rows is the worst
  // case for the ragged layout.
  const auto single = SamplePlans(1, 201);
  auto tiny = SamplePlans(9, 202, /*min_nodes=*/1, /*max_nodes=*/2);
  auto mixed = SamplePlans(6, 203, /*min_nodes=*/1, /*max_nodes=*/2);
  auto deep = SamplePlans(1, 204, /*min_nodes=*/40, /*max_nodes=*/60);
  mixed.insert(mixed.begin() + 3, std::move(deep[0]));

  struct Case {
    const char* name;
    std::vector<const plan::PlanNode*> ptrs;
  };
  const Case cases[] = {{"batch-of-1", Pointers(single)},
                        {"all-tiny", Pointers(tiny)},
                        {"deep-among-tiny", Pointers(mixed)}};

  for (const Level level : {Level::kScalar, nn::simd::HardwareLevel()}) {
    if (nn::simd::ForceLevel(level) != level) continue;  // sanitize build
    const bool bitwise = level == Level::kScalar;
    for (const int threads : {1, 4}) {
      util::SetMaxThreads(threads);
      for (const Case& c : cases) {
        CheckPackedMatchesPerPlan(
            enc, c.ptrs, bitwise,
            (std::string(c.name) + " level " +
             nn::simd::LevelName(level) + " threads " +
             std::to_string(threads))
                .c_str());
      }
    }
  }
}

// --- Env-knob A/B -----------------------------------------------------------

TEST(PackedEncoderTest, PackedKnobMatchesLegacyOpChainBitwise) {
  // QPE_PACKED=0 re-routes EncodeBatch through the tensor op-chain; at
  // forced scalar the two pipelines must agree bit for bit.
  SimdLevelGuard guard;
  if (nn::simd::ForceLevel(Level::kScalar) != Level::kScalar) GTEST_SKIP();
  util::Rng rng(96);
  const encoder::TransformerPlanEncoder enc(SmallConfig(), &rng);
  const auto plans = SamplePlans(7, 205);
  const auto ptrs = Pointers(plans);
  nn::NoGradGuard no_grad;
  std::vector<nn::Tensor> legacy, packed;
  {
    EnvVarGuard off("QPE_PACKED", "0");
    legacy = enc.EncodeBatch(ptrs, nullptr);
  }
  {
    EnvVarGuard on("QPE_PACKED", "1");
    packed = enc.EncodeBatch(ptrs, nullptr);
  }
  ASSERT_EQ(legacy.size(), packed.size());
  for (size_t i = 0; i < legacy.size(); ++i) {
    for (int c = 0; c < legacy[i].cols(); ++c) {
      ASSERT_EQ(legacy[i].at(0, c), packed[i].at(0, c))
          << "plan " << i << " dim " << c;
    }
  }
}

TEST(PackedEncoderTest, HeadBlockKnobNeverChangesBits) {
  // The blocked attention kernel is bit-identical to the interleaved one
  // at every level, so QPE_HEAD_BLOCK must not change any output bit even
  // at the hardware level.
  util::Rng rng(97);
  const encoder::TransformerPlanEncoder enc(SmallConfig(), &rng);
  const auto plans = SamplePlans(7, 206);
  const auto ptrs = Pointers(plans);
  nn::NoGradGuard no_grad;
  std::vector<nn::Tensor> interleaved, blocked;
  {
    EnvVarGuard off("QPE_HEAD_BLOCK", "0");
    interleaved = enc.EncodeBatch(ptrs, nullptr);
  }
  {
    EnvVarGuard on("QPE_HEAD_BLOCK", "1");
    blocked = enc.EncodeBatch(ptrs, nullptr);
  }
  ASSERT_EQ(interleaved.size(), blocked.size());
  for (size_t i = 0; i < interleaved.size(); ++i) {
    for (int c = 0; c < interleaved[i].cols(); ++c) {
      ASSERT_EQ(interleaved[i].at(0, c), blocked[i].at(0, c))
          << "plan " << i << " dim " << c;
    }
  }
}

TEST(PackedEncoderTest, Int8PackedKnobNeverChangesBits) {
  // Both int8 layouts accumulate the same integer dots, so the quantized
  // encoder's output must be bit-identical with the knob on and off.
  util::Rng rng(98);
  const encoder::TransformerPlanEncoder fp32(SmallConfig(), &rng);
  const auto calib = SamplePlans(8, 207);
  const auto qenc = fp32.Quantize(Pointers(calib));
  const auto plans = SamplePlans(7, 208);
  const auto ptrs = Pointers(plans);
  std::vector<nn::Tensor> legacy, packed;
  {
    EnvVarGuard off("QPE_INT8_PACKED", "0");
    legacy = qenc->EncodeBatch(ptrs, nullptr);
  }
  {
    EnvVarGuard on("QPE_INT8_PACKED", "1");
    packed = qenc->EncodeBatch(ptrs, nullptr);
  }
  ASSERT_EQ(legacy.size(), packed.size());
  for (size_t i = 0; i < legacy.size(); ++i) {
    for (int c = 0; c < legacy[i].cols(); ++c) {
      ASSERT_EQ(legacy[i].at(0, c), packed[i].at(0, c))
          << "plan " << i << " dim " << c;
    }
  }
}

// --- Packed training vs per-plan op chain -----------------------------------
//
// QPE_PACKED_TRAIN=0 re-routes EncodeBatchGrad through the per-plan Encode
// loop (the gradient-bit reference). The packed training path must match it
// bit for bit — forward values, dropout streams, and every accumulated
// parameter gradient — at EVERY SIMD level (both paths dispatch the same
// kernel table; there is no sanctioned divergence like the inference exp).

std::vector<std::vector<float>> ParamGrads(const nn::Module& m) {
  std::vector<std::vector<float>> grads;
  for (const auto& [name, tensor] : m.NamedParameters()) {
    grads.push_back(tensor.grad());
  }
  return grads;
}

TEST(PackedTrainTest, EncodeBatchGradMatchesPerPlanBitwise) {
  SimdLevelGuard level_guard;
  util::Rng rng(101);
  for (const bool projection : {false, true}) {
    encoder::StructureEncoderConfig config = SmallConfig();
    config.dropout = 0.25f;  // exercises the mask-stream contract
    config.output_dim = projection ? 10 : 0;
    encoder::TransformerPlanEncoder enc(config, &rng);
    enc.SetTraining(true);
    const auto plans = SamplePlans(5, 212);
    const auto ptrs = Pointers(plans);

    for (const Level level : {Level::kScalar, nn::simd::HardwareLevel()}) {
      if (nn::simd::ForceLevel(level) != level) continue;  // sanitize build
      auto run = [&](const char* knob) {
        EnvVarGuard packed("QPE_PACKED_TRAIN", knob);
        enc.ZeroGrad();
        util::Rng dropout_rng(7);
        const std::vector<nn::Tensor> outs =
            enc.EncodeBatchGrad(ptrs, &dropout_rng);
        // Distinct per-plan weights so a swapped or misrouted gradient
        // cannot cancel out.
        nn::Tensor loss = Sum(outs[0]);
        for (size_t i = 1; i < outs.size(); ++i) {
          loss = Add(loss, Scale(Sum(outs[i]), 0.5f + static_cast<float>(i)));
        }
        loss.Backward();
        std::vector<std::vector<float>> values;
        for (const nn::Tensor& t : outs) values.push_back(t.value());
        return std::make_pair(values, ParamGrads(enc));
      };
      const auto per_plan = run("0");
      const auto packed = run("1");
      ASSERT_EQ(per_plan.first.size(), packed.first.size());
      for (size_t i = 0; i < per_plan.first.size(); ++i) {
        ASSERT_EQ(per_plan.first[i], packed.first[i])
            << "values, plan " << i << " level " << nn::simd::LevelName(level)
            << (projection ? " projection" : "");
      }
      ASSERT_EQ(per_plan.second.size(), packed.second.size());
      for (size_t i = 0; i < per_plan.second.size(); ++i) {
        ASSERT_EQ(per_plan.second[i], packed.second[i])
            << "grads, param " << i << " level " << nn::simd::LevelName(level)
            << (projection ? " projection" : "");
      }
    }
  }
}

TEST(PackedTrainTest, TrainPpsrPackedKnobAndThreadsMatchBitwise) {
  // End-to-end: whole TrainPpsr runs (dropout, Adam, grad clipping, shard
  // reduction) must land on bit-identical weights with the packed training
  // path on or off, at 1 or 4 threads.
  data::PairDatasetOptions options;
  options.num_pairs = 27;
  options.corpus.min_nodes = 4;
  options.corpus.max_nodes = 12;
  const data::PlanPairDataset dataset = BuildCorpusPairDataset(options);

  SimdLevelGuard level_guard;
  ThreadCountGuard thread_guard;
  encoder::StructureEncoderConfig config = SmallConfig();
  config.dropout = 0.1f;
  config.output_dim = 10;

  auto train = [&](const char* knob, int threads) {
    EnvVarGuard packed("QPE_PACKED_TRAIN", knob);
    util::SetMaxThreads(threads);
    util::Rng rng(42);
    encoder::PpsrModel model(
        std::make_unique<encoder::TransformerPlanEncoder>(config, &rng), &rng);
    encoder::PpsrTrainOptions train_options;
    train_options.epochs = 2;
    TrainPpsr(&model, dataset.train, train_options);
    std::vector<std::vector<float>> values;
    for (const auto& [name, tensor] : model.NamedParameters()) {
      values.push_back(tensor.value());
    }
    return values;
  };

  for (const Level level : {Level::kScalar, nn::simd::HardwareLevel()}) {
    if (nn::simd::ForceLevel(level) != level) continue;  // sanitize build
    const auto reference = train("0", 1);
    const struct {
      const char* knob;
      int threads;
    } cases[] = {{"1", 1}, {"1", 4}, {"0", 4}};
    for (const auto& c : cases) {
      const auto got = train(c.knob, c.threads);
      ASSERT_EQ(reference.size(), got.size());
      for (size_t i = 0; i < reference.size(); ++i) {
        ASSERT_EQ(reference[i], got[i])
            << "param " << i << " level " << nn::simd::LevelName(level)
            << " packed " << c.knob << " threads " << c.threads;
      }
    }
  }
}

// --- Arena steady state -----------------------------------------------------

TEST(PackedSteadyStateTest, ZeroArenaTrafficAndGrowthAfterWarmup) {
  // After warmup, repeated identical micro-batches through the serving
  // facade must touch the arena zero times (the packed workspace persists,
  // results are built outside any arena) and never grow the workspace.
  ThreadCountGuard thread_guard;
  util::SetMaxThreads(1);
  util::Rng rng(99);
  const encoder::TransformerPlanEncoder enc(SmallConfig(), &rng);
  serve::EmbeddingServiceConfig config;
  config.enable_cache = false;  // every request re-encodes every plan
  config.batch_size = 8;
  serve::EmbeddingService service(&enc, config);
  const auto plans = SamplePlans(24, 209);
  const auto ptrs = Pointers(plans);

  for (int warm = 0; warm < 3; ++warm) (void)service.EncodeAll(ptrs);

  const nn::MemoryStats before = nn::GlobalMemoryStats();
  const uint64_t growth_before = nn::PackedBatch::TotalGrowthEvents();
  for (int iter = 0; iter < 5; ++iter) (void)service.EncodeAll(ptrs);
  const nn::MemoryStats after = nn::GlobalMemoryStats();
  const uint64_t growth_after = nn::PackedBatch::TotalGrowthEvents();

  EXPECT_EQ(after.bytes_requested, before.bytes_requested);
  EXPECT_EQ(after.arena_hits, before.arena_hits);
  EXPECT_EQ(after.arena_misses, before.arena_misses);
  EXPECT_EQ(growth_after, growth_before);
  EXPECT_EQ(service.GetStats().packed_growth_events, growth_after);
}

TEST(PackedSteadyStateTest, LargerBatchRecordsGrowthEvent) {
  // The growth telemetry must actually fire when the high-water mark
  // moves: encoding a strictly larger batch after warmup grows at least
  // one workspace buffer.
  ThreadCountGuard thread_guard;
  util::SetMaxThreads(1);
  util::Rng rng(100);
  encoder::StructureEncoderConfig config = SmallConfig();
  const encoder::TransformerPlanEncoder enc(config, &rng);
  nn::NoGradGuard no_grad;
  const auto small = SamplePlans(2, 210, /*min_nodes=*/1, /*max_nodes=*/2);
  (void)enc.EncodeBatch(Pointers(small), nullptr);
  (void)enc.EncodeBatch(Pointers(small), nullptr);

  const uint64_t before = nn::PackedBatch::TotalGrowthEvents();
  const auto big = SamplePlans(32, 211, /*min_nodes=*/20, /*max_nodes=*/24);
  (void)enc.EncodeBatch(Pointers(big), nullptr);
  EXPECT_GT(nn::PackedBatch::TotalGrowthEvents(), before);
}

}  // namespace
}  // namespace qpe
