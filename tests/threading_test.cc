// Tests for the parallel compute layer: the thread pool itself, the
// autograd/threading primitives (GradientCapture, NoGradGuard), the blocked
// MatMul kernels against the naive reference, and — most importantly — the
// determinism contract: every parallel path must produce identical results
// for threads=1 and threads=N given the same seed.

#include <atomic>
#include <cmath>
#include <memory>
#include <vector>

#include "config/lhs_sampler.h"
#include "data/datasets.h"
#include "data/features.h"
#include "data/plan_corpus.h"
#include "encoder/performance_encoder.h"
#include "encoder/ppsr.h"
#include "encoder/structure_encoder.h"
#include "gtest/gtest.h"
#include "nn/parallel.h"
#include "nn/tensor.h"
#include "simdb/workload_runner.h"
#include "simdb/workloads.h"
#include "util/thread_pool.h"

namespace qpe {
namespace {

using encoder::PerformanceEncoder;
using encoder::PpsrModel;
using encoder::SparseAutoencoder;
using encoder::TransformerPlanEncoder;

// Restores the single-thread default when a test body returns.
struct ThreadCountGuard {
  explicit ThreadCountGuard(int n) { util::SetMaxThreads(n); }
  ~ThreadCountGuard() { util::SetMaxThreads(1); }
};

// --- ThreadPool / ParallelFor ---------------------------------------------

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::vector<std::atomic<int>> counts(100);
  pool.Run(100, [&](int i) { counts[i].fetch_add(1); });
  for (auto& c : counts) EXPECT_EQ(c.load(), 1);
  // The pool is reusable for further batches.
  pool.Run(100, [&](int i) { counts[i].fetch_add(1); });
  for (auto& c : counts) EXPECT_EQ(c.load(), 2);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  util::ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  int count = 0;  // non-atomic: everything runs on this thread
  pool.Run(10, [&](int) { ++count; });
  EXPECT_EQ(count, 10);
}

TEST(ThreadPoolTest, NestedParallelRunExecutesInline) {
  ThreadCountGuard guard(4);
  std::atomic<int> total{0};
  util::ParallelRun(4, [&](int) {
    EXPECT_TRUE(util::InParallelRegion());
    util::ParallelRun(4, [&](int) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 16);
  EXPECT_FALSE(util::InParallelRegion());
}

TEST(ThreadPoolTest, SetMaxThreadsControlsKnob) {
  util::SetMaxThreads(3);
  EXPECT_EQ(util::MaxThreads(), 3);
  util::SetMaxThreads(1);
  EXPECT_EQ(util::MaxThreads(), 1);
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  ThreadCountGuard guard(4);
  std::vector<std::atomic<int>> hits(1000);
  util::ParallelFor(1000, /*grain=*/16, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, RespectsGrain) {
  ThreadCountGuard guard(4);
  std::atomic<int> chunks{0};
  util::ParallelFor(100, /*grain=*/100, [&](int64_t begin, int64_t end) {
    chunks.fetch_add(1);
    EXPECT_EQ(begin, 0);
    EXPECT_EQ(end, 100);
  });
  EXPECT_EQ(chunks.load(), 1);
}

// --- GradientCapture / NoGradGuard ----------------------------------------

TEST(GradientCaptureTest, RedirectsTargetGradients) {
  nn::Tensor w = nn::Tensor::FromVector(2, 2, {1, 2, 3, 4}, true);
  nn::Tensor x = nn::Tensor::FromVector(2, 2, {5, 6, 7, 8});
  std::vector<std::vector<float>> buffers;
  {
    nn::GradientCapture capture({w}, &buffers);
    const nn::Tensor loss = Sum(Mul(w, x));
    loss.Backward();
  }
  // d(sum(w*x))/dw = x, all of it landing in the capture buffer, none in
  // the parameter's own grad storage.
  ASSERT_EQ(buffers.size(), 1u);
  ASSERT_EQ(buffers[0].size(), 4u);
  EXPECT_FLOAT_EQ(buffers[0][0], 5.0f);
  EXPECT_FLOAT_EQ(buffers[0][3], 8.0f);
  for (float g : w.grad()) EXPECT_EQ(g, 0.0f);
  // After the capture is gone, gradients accumulate normally again.
  Sum(Mul(w, x)).Backward();
  EXPECT_FLOAT_EQ(w.grad()[0], 5.0f);
}

TEST(NoGradGuardTest, SkipsGraphConstruction) {
  nn::Tensor w = nn::Tensor::FromVector(1, 3, {1, 2, 3}, true);
  nn::NoGradGuard no_grad;
  const nn::Tensor out = Scale(Relu(w), 2.0f);
  EXPECT_FALSE(out.requires_grad());
  EXPECT_FLOAT_EQ(out.value()[2], 6.0f);
}

TEST(ParallelGradientStepTest, MatchesSequentialAccumulation) {
  ThreadCountGuard guard(4);
  nn::Tensor w = nn::Tensor::FromVector(1, 4, {1, -2, 3, -4}, true);
  const std::vector<nn::Tensor> params = {w};

  // Reference: accumulate shard losses sequentially into w's grad.
  std::vector<float> expected(4, 0.0f);
  for (int s = 0; s < 8; ++s) {
    nn::Tensor x = nn::Tensor::Full(1, 4, static_cast<float>(s + 1));
    const nn::Tensor loss = Sum(Square(Mul(w, x)));
    w.ZeroGrad();
    loss.Backward();
    for (int i = 0; i < 4; ++i) expected[i] += w.grad()[i];
  }

  w.ZeroGrad();
  nn::ShardGradBuffers scratch;
  nn::ParallelGradientStep(
      params, 8,
      [&](int s) {
        nn::Tensor x = nn::Tensor::Full(1, 4, static_cast<float>(s + 1));
        return Sum(Square(Mul(w, x)));
      },
      &scratch);
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(w.grad()[i], expected[i]);
}

// --- Blocked MatMul vs the naive reference kernel --------------------------

void CheckMatMulAgainstReference(int m, int k, int n, int threads) {
  ThreadCountGuard guard(threads);
  util::Rng rng(static_cast<uint64_t>(m * 10007 + k * 101 + n));
  std::vector<float> a_data(static_cast<size_t>(m) * k);
  std::vector<float> b_data(static_cast<size_t>(k) * n);
  for (float& v : a_data) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  for (float& v : b_data) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  // Sprinkle zeros so the sparsity fast path is exercised too.
  for (size_t i = 0; i < a_data.size(); i += 7) a_data[i] = 0.0f;

  nn::Tensor a1 = nn::Tensor::FromVector(m, k, a_data, true);
  nn::Tensor b1 = nn::Tensor::FromVector(k, n, b_data, true);
  nn::Tensor a2 = nn::Tensor::FromVector(m, k, a_data, true);
  nn::Tensor b2 = nn::Tensor::FromVector(k, n, b_data, true);

  const nn::Tensor out_blocked = MatMul(a1, b1);
  const nn::Tensor out_ref = MatMulReference(a2, b2);
  ASSERT_EQ(out_blocked.rows(), m);
  ASSERT_EQ(out_blocked.cols(), n);
  for (int i = 0; i < m * n; ++i) {
    EXPECT_NEAR(out_blocked.value()[i], out_ref.value()[i],
                1e-5 * (std::abs(out_ref.value()[i]) + 1.0))
        << "forward mismatch at " << i;
  }

  // Non-uniform upstream gradient so transpose bugs cannot cancel out.
  Sum(Square(out_blocked)).Backward();
  Sum(Square(out_ref)).Backward();
  for (int i = 0; i < m * k; ++i) {
    EXPECT_NEAR(a1.grad()[i], a2.grad()[i],
                1e-4 * (std::abs(a2.grad()[i]) + 1.0))
        << "dA mismatch at " << i;
  }
  for (int i = 0; i < k * n; ++i) {
    EXPECT_NEAR(b1.grad()[i], b2.grad()[i],
                1e-4 * (std::abs(b2.grad()[i]) + 1.0))
        << "dB mismatch at " << i;
  }
}

TEST(MatMulEquivalenceTest, SmallNonSquareSingleThread) {
  CheckMatMulAgainstReference(5, 3, 7, 1);
  CheckMatMulAgainstReference(35, 17, 23, 1);
}

TEST(MatMulEquivalenceTest, LargeAboveParallelThreshold) {
  // 2*64*130*70 flops crosses the parallel dispatch threshold, so the
  // blocked kernels actually fan out to the pool here.
  CheckMatMulAgainstReference(64, 130, 70, 4);
  CheckMatMulAgainstReference(70, 64, 130, 4);
}

TEST(MatMulEquivalenceTest, VectorShapes) {
  CheckMatMulAgainstReference(1, 48, 48, 1);   // row vector times matrix
  CheckMatMulAgainstReference(48, 48, 1, 4);   // matrix times column vector
}

TEST(MatMulDeterminismTest, ThreadCountInvariant) {
  util::Rng rng(77);
  std::vector<float> a_data(64 * 96), b_data(96 * 80);
  for (float& v : a_data) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  for (float& v : b_data) v = static_cast<float>(rng.Uniform(-1.0, 1.0));

  auto run = [&](int threads) {
    ThreadCountGuard guard(threads);
    nn::Tensor a = nn::Tensor::FromVector(64, 96, a_data, true);
    nn::Tensor b = nn::Tensor::FromVector(96, 80, b_data, true);
    const nn::Tensor out = MatMul(a, b);
    Sum(Square(out)).Backward();
    std::vector<float> flat = out.value();
    flat.insert(flat.end(), a.grad().begin(), a.grad().end());
    flat.insert(flat.end(), b.grad().begin(), b.grad().end());
    return flat;
  };

  const std::vector<float> t1 = run(1);
  const std::vector<float> t4 = run(4);
  ASSERT_EQ(t1.size(), t4.size());
  for (size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i], t4[i]) << "bitwise mismatch at " << i;
  }
}

// --- Training determinism: threads=1 vs threads=4 --------------------------

encoder::StructureEncoderConfig TinyEncoderConfig() {
  encoder::StructureEncoderConfig config;
  config.level1_dim = 12;
  config.level2_dim = 6;
  config.level3_dim = 6;
  config.num_heads = 2;
  config.ff_dim = 32;
  config.num_layers = 1;
  config.max_len = 64;
  config.dropout = 0.1f;  // exercises the per-shard dropout RNG forking
  return config;
}

struct PpsrRunResult {
  double final_loss = 0;
  double train_mae = 0;
  std::vector<float> embedding;
};

PpsrRunResult RunSmallPpsrTraining(int threads) {
  ThreadCountGuard guard(threads);
  data::PairDatasetOptions options;
  options.num_pairs = 24;
  options.corpus.min_nodes = 4;
  options.corpus.max_nodes = 12;
  const data::PlanPairDataset dataset = data::BuildCorpusPairDataset(options);

  util::Rng rng(14);
  PpsrModel model(
      std::make_unique<TransformerPlanEncoder>(TinyEncoderConfig(), &rng),
      &rng);
  encoder::PpsrTrainOptions train_options;
  train_options.epochs = 2;
  PpsrRunResult result;
  result.final_loss = TrainPpsr(&model, dataset.train, train_options);
  result.train_mae = EvaluatePpsrMae(model, dataset.train);
  data::CorpusOptions corpus;
  corpus.min_nodes = 4;
  corpus.max_nodes = 12;
  data::RandomPlanGenerator generator(util::Rng(7), corpus);
  const auto plan = generator.Generate();
  result.embedding = model.encoder()->Encode(*plan, nullptr).value();
  return result;
}

TEST(TrainingDeterminismTest, PpsrThreadCountInvariant) {
  const PpsrRunResult t1 = RunSmallPpsrTraining(1);
  const PpsrRunResult t4 = RunSmallPpsrTraining(4);
  EXPECT_EQ(t1.final_loss, t4.final_loss);
  EXPECT_EQ(t1.train_mae, t4.train_mae);
  ASSERT_EQ(t1.embedding.size(), t4.embedding.size());
  for (size_t i = 0; i < t1.embedding.size(); ++i) {
    EXPECT_EQ(t1.embedding[i], t4.embedding[i])
        << "embedding mismatch at " << i;
  }
}

data::OperatorDataset SmallScanDataset() {
  const simdb::TpchWorkload tpch(0.05);
  config::LhsSampler sampler((util::Rng(19)));
  const auto configs = sampler.Sample(4);
  simdb::RunOptions run_options;
  run_options.instances_per_template = 2;
  const auto executed =
      simdb::RunWorkloadTemplates(tpch, {0, 2, 5}, configs, run_options);
  auto samples = data::ExtractOperatorSamples(executed, tpch.GetCatalog(),
                                              plan::OperatorGroup::kScan);
  return data::SplitOperatorSamples(std::move(samples), 20);
}

encoder::PerfEncoderConfig TinyPerfConfig() {
  encoder::PerfEncoderConfig config;
  config.node_dim = data::kNodeFeatureDim;
  config.meta_dim = catalog::Catalog::kMetaFeatureDim;
  config.db_dim = config::DbConfig::FeatureDim();
  config.column_hidden = 16;
  config.embed_dim = 16;
  return config;
}

struct PerfRunResult {
  std::vector<double> history_mae;
  std::vector<float> predictions;
};

PerfRunResult RunSmallPerfTraining(int threads) {
  ThreadCountGuard guard(threads);
  const data::OperatorDataset dataset = SmallScanDataset();
  util::Rng rng(22);
  PerformanceEncoder model(TinyPerfConfig(), &rng);
  encoder::PerfTrainOptions options;
  options.epochs = 3;
  const auto history = TrainPerformanceEncoder(&model, dataset, options);
  PerfRunResult result;
  for (const auto& stats : history) {
    result.history_mae.push_back(stats.train_mae_ms);
    result.history_mae.push_back(stats.val_mae_ms);
  }
  std::vector<int> indices;
  for (size_t i = 0; i < dataset.train.size() && i < 8; ++i) {
    indices.push_back(static_cast<int>(i));
  }
  const encoder::PerfBatch batch = encoder::MakePerfBatch(dataset.train, indices);
  const nn::Tensor pred =
      model.PredictLabels(model.Embed(batch.node, batch.meta, batch.db));
  result.predictions = pred.value();
  return result;
}

TEST(TrainingDeterminismTest, PerfEncoderThreadCountInvariant) {
  const PerfRunResult t1 = RunSmallPerfTraining(1);
  const PerfRunResult t4 = RunSmallPerfTraining(4);
  ASSERT_EQ(t1.history_mae.size(), t4.history_mae.size());
  for (size_t i = 0; i < t1.history_mae.size(); ++i) {
    EXPECT_EQ(t1.history_mae[i], t4.history_mae[i]) << "MAE mismatch at " << i;
  }
  ASSERT_EQ(t1.predictions.size(), t4.predictions.size());
  for (size_t i = 0; i < t1.predictions.size(); ++i) {
    EXPECT_EQ(t1.predictions[i], t4.predictions[i])
        << "prediction mismatch at " << i;
  }
}

std::vector<float> RunSparseAePretrain(int threads, int batch_size) {
  ThreadCountGuard guard(threads);
  data::CorpusOptions corpus;
  corpus.min_nodes = 4;
  corpus.max_nodes = 16;
  data::RandomPlanGenerator generator(util::Rng(42), corpus);
  std::vector<std::unique_ptr<plan::PlanNode>> plans;
  std::vector<const plan::PlanNode*> ptrs;
  for (int i = 0; i < 12; ++i) {
    plans.push_back(generator.Generate());
    ptrs.push_back(plans.back().get());
  }
  util::Rng rng(9);
  SparseAutoencoder autoencoder(8, &rng);
  PretrainSparseAutoencoder(&autoencoder, ptrs, /*epochs=*/3, /*lr=*/5e-3f,
                            /*seed=*/1, batch_size);
  std::vector<float> flat;
  for (const nn::Tensor& p : autoencoder.Parameters()) {
    flat.insert(flat.end(), p.value().begin(), p.value().end());
  }
  return flat;
}

TEST(TrainingDeterminismTest, SparseAutoencoderThreadCountInvariant) {
  const std::vector<float> t1 = RunSparseAePretrain(1, /*batch_size=*/6);
  const std::vector<float> t4 = RunSparseAePretrain(4, /*batch_size=*/6);
  ASSERT_EQ(t1.size(), t4.size());
  for (size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i], t4[i]) << "parameter mismatch at " << i;
  }
}

// --- Data pipeline determinism ---------------------------------------------

TEST(DataDeterminismTest, PairLabelsThreadCountInvariant) {
  data::PairDatasetOptions options;
  options.num_pairs = 40;
  options.corpus.min_nodes = 4;
  options.corpus.max_nodes = 16;
  auto build = [&](int threads) {
    ThreadCountGuard guard(threads);
    return data::BuildCorpusPairDataset(options);
  };
  const data::PlanPairDataset t1 = build(1);
  const data::PlanPairDataset t4 = build(4);
  ASSERT_EQ(t1.train.size(), t4.train.size());
  for (size_t i = 0; i < t1.train.size(); ++i) {
    EXPECT_EQ(t1.train[i].smatch, t4.train[i].smatch)
        << "label mismatch at " << i;
  }
}

TEST(DataDeterminismTest, WorkloadRunnerThreadCountInvariant) {
  const simdb::TpchWorkload tpch(0.05);
  config::LhsSampler sampler((util::Rng(3)));
  const auto configs = sampler.Sample(3);
  simdb::RunOptions run_options;
  run_options.instances_per_template = 2;
  auto run = [&](int threads) {
    ThreadCountGuard guard(threads);
    return simdb::RunWorkloadTemplates(tpch, {0, 1, 4}, configs, run_options);
  };
  const auto t1 = run(1);
  const auto t4 = run(4);
  ASSERT_EQ(t1.size(), t4.size());
  for (size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].latency_ms, t4[i].latency_ms) << "latency at " << i;
    EXPECT_EQ(t1[i].template_index, t4[i].template_index);
    EXPECT_EQ(t1[i].instance_index, t4[i].instance_index);
  }
}

}  // namespace
}  // namespace qpe
