#include <set>
#include <string>

#include "catalog/schemas.h"
#include "config/db_config.h"
#include "config/lhs_sampler.h"
#include "gtest/gtest.h"
#include "plan/linearize.h"
#include "simdb/executor.h"
#include "simdb/planner.h"
#include "simdb/workload_runner.h"
#include "simdb/workloads.h"
#include "util/rng.h"
#include "util/stats.h"

namespace qpe::simdb {
namespace {

config::DbConfig MidConfig() { return config::DbConfig(); }

QuerySpec SimpleJoinSpec() {
  QuerySpec spec;
  spec.tables = {"orders", "lineitem"};
  JoinSpec join;
  join.left_table = "orders";
  join.left_column = "o_orderkey";
  join.right_table = "lineitem";
  join.right_column = "l_orderkey";
  spec.joins = {join};
  FilterSpec filter;
  filter.table = "orders";
  filter.column = "o_orderdate";
  filter.selectivity = 0.05;
  spec.filters = {filter};
  spec.has_aggregate = true;
  spec.num_group_keys = 1;
  spec.group_fraction = 0.001;
  spec.has_sort = true;
  spec.cardinality_seed = 777;
  return spec;
}

TEST(PlannerTest, ProducesConnectedTree) {
  const catalog::Catalog cat = catalog::MakeTpchCatalog(1.0);
  const config::DbConfig cfg = MidConfig();
  Planner planner(&cat, &cfg);
  const plan::Plan planned = planner.PlanQuery(SimpleJoinSpec());
  ASSERT_NE(planned.root, nullptr);
  EXPECT_GE(planned.NumNodes(), 4);
  // Two scan relations appear somewhere in the tree.
  std::set<std::string> rels;
  planned.root->Visit([&](const plan::PlanNode& n) {
    for (const auto& r : n.relations()) rels.insert(r);
  });
  EXPECT_TRUE(rels.count("orders"));
  EXPECT_TRUE(rels.count("lineitem"));
}

TEST(PlannerTest, EstimatesPopulated) {
  const catalog::Catalog cat = catalog::MakeTpchCatalog(1.0);
  const config::DbConfig cfg = MidConfig();
  Planner planner(&cat, &cfg);
  const plan::Plan planned = planner.PlanQuery(SimpleJoinSpec());
  planned.root->Visit([&](const plan::PlanNode& n) {
    EXPECT_GE(n.props().plan_rows, 0) << n.type().ToString();
    EXPECT_GE(n.props().total_cost, 0) << n.type().ToString();
  });
  EXPECT_GT(planned.root->props().total_cost, 0);
}

TEST(PlannerTest, LowRandomPageCostPrefersIndexScan) {
  const catalog::Catalog cat = catalog::MakeTpchCatalog(1.0);
  QuerySpec spec;
  spec.tables = {"orders"};
  FilterSpec filter;
  filter.table = "orders";
  filter.column = "o_orderdate";  // indexed, correlated
  filter.selectivity = 0.001;
  spec.filters = {filter};

  config::DbConfig cheap_random = MidConfig();
  cheap_random.Set(config::Knob::kRandomPageCost, 100);  // 0.1x
  cheap_random.Set(config::Knob::kEffectiveCacheSize, 2097152);
  config::DbConfig dear_random = MidConfig();
  dear_random.Set(config::Knob::kRandomPageCost, 10000);  // 10x
  dear_random.Set(config::Knob::kEffectiveCacheSize, 65536);
  dear_random.Set(config::Knob::kSharedBuffers, 16384);

  Planner cheap_planner(&cat, &cheap_random);
  Planner dear_planner(&cat, &dear_random);
  const std::string cheap_type =
      cheap_planner.PlanQuery(spec).root->type().ToString();
  const std::string dear_type =
      dear_planner.PlanQuery(spec).root->type().ToString();
  // Cheap random IO: some index-based access path. The expensive-random
  // config should not pick the plain index scan for the same query.
  EXPECT_NE(cheap_type, "Scan-Seq");
  EXPECT_NE(cheap_type, dear_type);
}

TEST(PlannerTest, HighSelectivityUsesSeqScanFamily) {
  const catalog::Catalog cat = catalog::MakeTpchCatalog(1.0);
  QuerySpec spec;
  spec.tables = {"lineitem"};
  FilterSpec filter;
  filter.table = "lineitem";
  filter.column = "l_shipdate";
  filter.selectivity = 0.95;
  spec.filters = {filter};
  const config::DbConfig cfg = MidConfig();
  Planner planner(&cat, &cfg);
  // A 95%-selectivity filter must not pick an index path; big tables may be
  // scanned in parallel under a Gather node.
  const plan::Plan planned = planner.PlanQuery(spec);
  const std::string root_type = planned.root->type().ToString();
  if (root_type == "Gather") {
    ASSERT_EQ(planned.root->children().size(), 1u);
    EXPECT_EQ(planned.root->children()[0]->type().ToString(),
              "Scan-Seq-Parallel");
  } else {
    EXPECT_EQ(root_type, "Scan-Seq");
  }
}

TEST(PlannerTest, ParallelScanOnlyForBigTables) {
  const catalog::Catalog cat = catalog::MakeTpchCatalog(1.0);
  const config::DbConfig cfg = MidConfig();
  Planner planner(&cat, &cfg);
  // Tiny table: never parallel.
  QuerySpec small;
  small.tables = {"nation"};
  EXPECT_EQ(planner.PlanQuery(small).root->type().ToString(), "Scan-Seq");
  // Huge unfiltered scan: parallel wins (CPU divides, setup amortized).
  QuerySpec big;
  big.tables = {"lineitem"};
  EXPECT_EQ(planner.PlanQuery(big).root->type().ToString(), "Gather");
}

TEST(ExecutorTest, ParallelScanFasterThanSerialForCpuBound) {
  const catalog::Catalog cat = catalog::MakeTpchCatalog(1.0);
  // Fully cached: CPU dominates, so 4 workers should win clearly.
  config::DbConfig warm = MidConfig();
  warm.Set(config::Knob::kSharedBuffers, 4194304 * 1000.0);
  QuerySpec spec;
  spec.tables = {"lineitem"};
  spec.cardinality_seed = 11;
  Planner planner(&cat, &warm);
  ExecutorSim executor(&cat, &warm);
  plan::Plan parallel_plan = planner.PlanQuery(spec);
  ASSERT_EQ(parallel_plan.root->type().ToString(), "Gather");
  util::Rng noise(1);
  const double parallel_ms =
      executor.Execute(&parallel_plan, spec.cardinality_seed, &noise);

  // Force the serial plan by planning a copy with the Gather stripped: use
  // a small work table trick — compare against the serial estimate instead.
  plan::Plan serial_plan;
  serial_plan.root =
      std::make_unique<plan::PlanNode>(plan::OperatorType::Parse("Scan-Seq"));
  serial_plan.root->AddRelation("lineitem");
  serial_plan.root->props().plan_rows =
      cat.FindTable("lineitem")->row_count;
  serial_plan.root->props().plan_width = 100;
  util::Rng noise2(1);
  const double serial_ms =
      executor.Execute(&serial_plan, spec.cardinality_seed, &noise2);
  EXPECT_LT(parallel_ms, serial_ms);
}

TEST(PlannerTest, SmallWorkMemBatchesHashJoin) {
  const catalog::Catalog cat = catalog::MakeTpchCatalog(1.0);
  config::DbConfig small_mem = MidConfig();
  small_mem.Set(config::Knob::kWorkMem, 65536);  // 64 KB
  Planner planner(&cat, &small_mem);
  const plan::Plan planned = planner.PlanQuery(SimpleJoinSpec());
  double max_batches = 0;
  planned.root->Visit([&](const plan::PlanNode& n) {
    max_batches = std::max(max_batches, n.props().hash_batches);
  });
  double large_sort_or_batches = max_batches;
  // Either the hash join batches, or the planner avoided hash join; in the
  // latter case an external sort shows up for merge/group paths.
  planned.root->Visit([&](const plan::PlanNode& n) {
    if (n.props().sort_space_on_disk) large_sort_or_batches += 1;
  });
  EXPECT_GT(large_sort_or_batches, 1.0);
}

TEST(PlannerTest, WorkMemSwitchesAggregateStrategy) {
  const catalog::Catalog cat = catalog::MakeTpchCatalog(1.0);
  QuerySpec spec = SimpleJoinSpec();
  spec.group_fraction = 0.5;  // many groups
  config::DbConfig small_mem = MidConfig();
  small_mem.Set(config::Knob::kWorkMem, 65536);
  config::DbConfig big_mem = MidConfig();
  big_mem.Set(config::Knob::kWorkMem, 33554432);

  auto agg_strategy = [&](const config::DbConfig& cfg) {
    Planner planner(&cat, &cfg);
    const plan::Plan planned = planner.PlanQuery(spec);
    plan::AggregateStrategy strategy = plan::AggregateStrategy::kNone;
    planned.root->Visit([&](const plan::PlanNode& n) {
      if (n.props().aggregate_strategy != plan::AggregateStrategy::kNone) {
        strategy = n.props().aggregate_strategy;
      }
    });
    return strategy;
  };
  EXPECT_EQ(agg_strategy(small_mem), plan::AggregateStrategy::kSorted);
  // Plenty of work_mem and few enough groups -> hash aggregation. (The
  // group count here is large, so sorted remains possible; use a smaller
  // group fraction for the hashed expectation.)
  spec.group_fraction = 1e-6;
  EXPECT_EQ(agg_strategy(big_mem), plan::AggregateStrategy::kHashed);
}

TEST(ExecutorTest, FillsActualsAndPositiveLatency) {
  const catalog::Catalog cat = catalog::MakeTpchCatalog(0.1);
  const config::DbConfig cfg = MidConfig();
  Planner planner(&cat, &cfg);
  ExecutorSim executor(&cat, &cfg);
  plan::Plan planned = planner.PlanQuery(SimpleJoinSpec());
  util::Rng noise(1);
  const double latency = executor.Execute(&planned, 777, &noise);
  EXPECT_GT(latency, 0);
  EXPECT_DOUBLE_EQ(planned.root->props().actual_total_time_ms, latency);
  planned.root->Visit([&](const plan::PlanNode& n) {
    EXPECT_GE(n.props().actual_rows, 1) << n.type().ToString();
    EXPECT_GE(n.props().actual_total_time_ms, 0);
    EXPECT_LE(n.props().actual_startup_time_ms,
              n.props().actual_total_time_ms + 1e-9);
  });
}

TEST(ExecutorTest, ParentTimeIncludesChildren) {
  const catalog::Catalog cat = catalog::MakeTpchCatalog(0.1);
  const config::DbConfig cfg = MidConfig();
  Planner planner(&cat, &cfg);
  ExecutorSim executor(&cat, &cfg);
  plan::Plan planned = planner.PlanQuery(SimpleJoinSpec());
  util::Rng noise(1);
  executor.Execute(&planned, 777, &noise);
  planned.root->Visit([&](const plan::PlanNode& n) {
    if (n.type().ToString() == "Limit") return;  // limit can stop early
    for (const auto& child : n.children()) {
      EXPECT_GE(n.props().actual_total_time_ms,
                child->props().actual_total_time_ms * 0.99)
          << n.type().ToString();
    }
  });
}

TEST(ExecutorTest, CardinalitiesStableAcrossConfigs) {
  // Same instance, different knobs -> same data -> (roughly) same actual
  // rows at the scan level when the chosen scan type matches.
  const catalog::Catalog cat = catalog::MakeTpchCatalog(0.1);
  config::DbConfig a = MidConfig();
  config::DbConfig b = MidConfig();
  b.Set(config::Knob::kSharedBuffers, 4194304);
  const QuerySpec spec = SimpleJoinSpec();
  double rows_a = 0, rows_b = 0;
  {
    Planner planner(&cat, &a);
    ExecutorSim executor(&cat, &a);
    plan::Plan p = planner.PlanQuery(spec);
    util::Rng noise(1);
    executor.Execute(&p, spec.cardinality_seed, &noise);
    rows_a = p.root->props().actual_rows;
  }
  {
    Planner planner(&cat, &b);
    ExecutorSim executor(&cat, &b);
    plan::Plan p = planner.PlanQuery(spec);
    util::Rng noise(99);
    executor.Execute(&p, spec.cardinality_seed, &noise);
    rows_b = p.root->props().actual_rows;
  }
  EXPECT_DOUBLE_EQ(rows_a, rows_b);
}

TEST(ExecutorTest, MoreCacheIsFaster) {
  const catalog::Catalog cat = catalog::MakeTpchCatalog(1.0);
  QuerySpec spec;
  spec.tables = {"lineitem"};
  spec.has_aggregate = true;
  spec.cardinality_seed = 5;
  config::DbConfig cold = MidConfig();
  cold.Set(config::Knob::kSharedBuffers, 16384);
  cold.Set(config::Knob::kEffectiveCacheSize, 65536);
  config::DbConfig warm = MidConfig();
  warm.Set(config::Knob::kSharedBuffers, 4194304 * 400.0);  // cache ~ table
  warm.Set(config::Knob::kEffectiveCacheSize, 2097152 * 400.0);

  auto latency = [&](const config::DbConfig& cfg) {
    Planner planner(&cat, &cfg);
    ExecutorSim executor(&cat, &cfg);
    plan::Plan p = planner.PlanQuery(spec);
    util::Rng noise(1);
    return executor.Execute(&p, spec.cardinality_seed, &noise);
  };
  EXPECT_GT(latency(cold), latency(warm));
}

TEST(ExecutorTest, SmallWorkMemSlowsBigSort) {
  const catalog::Catalog cat = catalog::MakeTpchCatalog(1.0);
  QuerySpec spec;
  spec.tables = {"orders"};
  spec.has_sort = true;
  spec.cardinality_seed = 6;
  config::DbConfig small_mem = MidConfig();
  small_mem.Set(config::Knob::kWorkMem, 65536);
  config::DbConfig big_mem = MidConfig();
  big_mem.Set(config::Knob::kWorkMem, 33554432 * 20.0);

  auto run = [&](const config::DbConfig& cfg) {
    Planner planner(&cat, &cfg);
    ExecutorSim executor(&cat, &cfg);
    plan::Plan p = planner.PlanQuery(spec);
    util::Rng noise(1);
    const double lat = executor.Execute(&p, spec.cardinality_seed, &noise);
    plan::SortMethod method = plan::SortMethod::kUnknown;
    p.root->Visit([&](const plan::PlanNode& n) {
      if (n.props().sort_method != plan::SortMethod::kUnknown) {
        method = n.props().sort_method;
      }
    });
    return std::make_pair(lat, method);
  };
  const auto [small_lat, small_method] = run(small_mem);
  const auto [big_lat, big_method] = run(big_mem);
  EXPECT_EQ(small_method, plan::SortMethod::kExternalMerge);
  EXPECT_EQ(big_method, plan::SortMethod::kQuicksort);
  EXPECT_GT(small_lat, big_lat);
}

TEST(WorkloadsTest, TemplateCounts) {
  EXPECT_EQ(TpchWorkload(0.1).NumTemplates(), 22);
  EXPECT_EQ(TpcdsWorkload(0.1).NumTemplates(), 60);
  EXPECT_EQ(JobWorkload().NumTemplates(), 113);
  EXPECT_EQ(SpatialWorkload().NumTemplates(), 20);
}

TEST(WorkloadsTest, JobClustersCoverRange) {
  const JobWorkload job;
  std::set<int> clusters;
  for (int i = 0; i < job.NumTemplates(); ++i) {
    clusters.insert(job.ClusterOf(i));
  }
  EXPECT_EQ(clusters.size(), 33u);
  EXPECT_EQ(*clusters.begin(), 0);
  EXPECT_EQ(*clusters.rbegin(), 32);
}

TEST(WorkloadsTest, JobVariantsShareJoinGraph) {
  const JobWorkload job;
  // Templates 0..3 are cluster 0 variants: same tables, different filters.
  const QuerySpec& a = job.Template(0);
  const QuerySpec& b = job.Template(1);
  EXPECT_EQ(a.cluster_id, b.cluster_id);
  EXPECT_EQ(a.tables, b.tables);
  bool filters_differ = a.filters.size() != b.filters.size();
  for (size_t i = 0; !filters_differ && i < a.filters.size(); ++i) {
    filters_differ = a.filters[i].selectivity != b.filters[i].selectivity;
  }
  EXPECT_TRUE(filters_differ);
}

TEST(WorkloadsTest, AllTemplatesReferToCatalogTables) {
  const TpchWorkload tpch(0.1);
  const TpcdsWorkload tpcds(0.1);
  const JobWorkload job;
  const SpatialWorkload spatial;
  for (const BenchmarkWorkload* workload :
       {static_cast<const BenchmarkWorkload*>(&tpch),
        static_cast<const BenchmarkWorkload*>(&tpcds),
        static_cast<const BenchmarkWorkload*>(&job),
        static_cast<const BenchmarkWorkload*>(&spatial)}) {
    for (int i = 0; i < workload->NumTemplates(); ++i) {
      const QuerySpec& spec = workload->Template(i);
      for (const std::string& table : spec.tables) {
        EXPECT_NE(workload->GetCatalog().FindTable(table), nullptr)
            << spec.benchmark << " " << spec.template_id << " " << table;
      }
      for (const FilterSpec& filter : spec.filters) {
        const auto* table = workload->GetCatalog().FindTable(filter.table);
        ASSERT_NE(table, nullptr);
        EXPECT_NE(table->FindColumn(filter.column), nullptr)
            << spec.template_id << " " << filter.table << "." << filter.column;
      }
      for (const JoinSpec& join : spec.joins) {
        const auto* lt = workload->GetCatalog().FindTable(join.left_table);
        const auto* rt = workload->GetCatalog().FindTable(join.right_table);
        ASSERT_NE(lt, nullptr) << spec.template_id;
        ASSERT_NE(rt, nullptr) << spec.template_id;
        EXPECT_NE(lt->FindColumn(join.left_column), nullptr)
            << spec.template_id << " " << join.left_table << "."
            << join.left_column;
        EXPECT_NE(rt->FindColumn(join.right_column), nullptr)
            << spec.template_id << " " << join.right_table << "."
            << join.right_column;
      }
    }
  }
}

TEST(WorkloadsTest, InstantiateJittersSelectivity) {
  const TpchWorkload tpch(0.1);
  util::Rng rng(3);
  const QuerySpec a = tpch.Instantiate(2, &rng);
  const QuerySpec b = tpch.Instantiate(2, &rng);
  ASSERT_FALSE(a.filters.empty());
  EXPECT_NE(a.filters[0].selectivity, b.filters[0].selectivity);
  EXPECT_NE(a.cardinality_seed, b.cardinality_seed);
}

TEST(WorkloadsTest, AllTemplatesPlanAndExecute) {
  const TpchWorkload tpch(0.05);
  const SpatialWorkload spatial(0.05);
  const config::DbConfig cfg = MidConfig();
  for (const BenchmarkWorkload* workload :
       {static_cast<const BenchmarkWorkload*>(&tpch),
        static_cast<const BenchmarkWorkload*>(&spatial)}) {
    util::Rng rng(1);
    Planner planner(&workload->GetCatalog(), &cfg);
    ExecutorSim executor(&workload->GetCatalog(), &cfg);
    for (int i = 0; i < workload->NumTemplates(); ++i) {
      const QuerySpec spec = workload->Instantiate(i, &rng);
      plan::Plan p = planner.PlanQuery(spec);
      ASSERT_NE(p.root, nullptr) << spec.template_id;
      util::Rng noise(i);
      const double latency =
          executor.Execute(&p, spec.cardinality_seed, &noise);
      EXPECT_GT(latency, 0) << spec.template_id;
    }
  }
}

TEST(WorkloadRunnerTest, RecordCountAndVariability) {
  const TpchWorkload tpch(0.05);
  config::LhsSampler sampler((util::Rng(4)));
  const auto configs = sampler.Sample(8);
  RunOptions options;
  options.instances_per_template = 1;
  const auto executed =
      RunWorkloadTemplates(tpch, {2, 4}, configs, options);
  EXPECT_EQ(executed.size(), 2u * 8u);
  // Latency varies across configurations for the same template instance.
  std::vector<double> q3;
  for (const auto& record : executed) {
    if (record.template_index == 2) q3.push_back(record.latency_ms);
  }
  EXPECT_EQ(q3.size(), 8u);
  EXPECT_GT(util::StdDev(q3), 0.0);
}

TEST(WorkloadRunnerTest, DeterministicForSeed) {
  const TpchWorkload tpch(0.05);
  config::LhsSampler sampler((util::Rng(4)));
  const auto configs = sampler.Sample(3);
  RunOptions options;
  options.seed = 11;
  const auto a = RunWorkloadTemplates(tpch, {0}, configs, options);
  const auto b = RunWorkloadTemplates(tpch, {0}, configs, options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].latency_ms, b[i].latency_ms);
  }
}

}  // namespace
}  // namespace qpe::simdb
