// Robustness and numerical-stability edge cases across the stack.

#include <cmath>
#include <limits>

#include "catalog/schemas.h"
#include "config/db_config.h"
#include "data/features.h"
#include "gtest/gtest.h"
#include "nn/loss.h"
#include "nn/module.h"
#include "nn/tensor.h"
#include "plan/serialize.h"
#include "simdb/executor.h"
#include "simdb/planner.h"
#include "simdb/workloads.h"

namespace qpe {
namespace {

TEST(NumericalStabilityTest, SoftmaxWithHugeLogits) {
  const nn::Tensor logits =
      nn::Tensor::FromVector(1, 3, {1000.0f, 999.0f, -1000.0f});
  const nn::Tensor probs = nn::SoftmaxRows(logits);
  for (int c = 0; c < 3; ++c) {
    EXPECT_TRUE(std::isfinite(probs.at(0, c)));
  }
  EXPECT_GT(probs.at(0, 0), probs.at(0, 1));
  EXPECT_NEAR(probs.at(0, 2), 0.0f, 1e-6f);
}

TEST(NumericalStabilityTest, CrossEntropyWithHugeLogits) {
  const nn::Tensor logits =
      nn::Tensor::FromVector(1, 2, {500.0f, -500.0f}, true);
  const nn::Tensor loss = nn::CrossEntropy(logits, {1});
  EXPECT_TRUE(std::isfinite(loss.value()[0]));
  loss.Backward();
  for (float g : logits.grad()) EXPECT_TRUE(std::isfinite(g));
}

TEST(NumericalStabilityTest, LogOfZeroClamped) {
  const nn::Tensor zero = nn::Tensor::Zeros(1, 1);
  EXPECT_TRUE(std::isfinite(nn::Log(zero).value()[0]));
}

TEST(NumericalStabilityTest, ExpOverflowClamped) {
  const nn::Tensor big = nn::Tensor::Full(1, 1, 1000.0f);
  EXPECT_TRUE(std::isfinite(nn::Exp(big).value()[0]));
}

TEST(NumericalStabilityTest, DropoutZeroProbabilityIsIdentity) {
  util::Rng rng(1);
  const nn::Tensor x = nn::Tensor::FromVector(1, 4, {1, 2, 3, 4});
  const nn::Tensor y = nn::Dropout(x, 0.0f, &rng);
  for (int c = 0; c < 4; ++c) EXPECT_FLOAT_EQ(y.at(0, c), x.at(0, c));
}

TEST(NumericalStabilityTest, DecodeLabelClamped) {
  EXPECT_TRUE(std::isfinite(data::DecodeLabel(100.0)));
  EXPECT_TRUE(std::isfinite(data::DecodeLabel(-5.0)));
  EXPECT_DOUBLE_EQ(data::DecodeLabel(-5.0), 0.0);
}

TEST(PlannerRobustnessTest, UnknownTableIsSkipped) {
  const catalog::Catalog cat = catalog::MakeTpchCatalog(0.1);
  const config::DbConfig cfg;
  simdb::Planner planner(&cat, &cfg);
  simdb::QuerySpec spec;
  spec.tables = {"lineitem", "no_such_table"};
  const plan::Plan planned = planner.PlanQuery(spec);
  ASSERT_NE(planned.root, nullptr);
  // Only the known table is planned.
  int scans = 0;
  planned.root->Visit([&](const plan::PlanNode& n) {
    scans += !n.relations().empty();
  });
  EXPECT_GE(scans, 1);
}

TEST(PlannerRobustnessTest, ExtremeSelectivitiesClamped) {
  const catalog::Catalog cat = catalog::MakeTpchCatalog(0.1);
  const config::DbConfig cfg;
  simdb::Planner planner(&cat, &cfg);
  simdb::QuerySpec spec;
  spec.tables = {"orders"};
  simdb::FilterSpec filter;
  filter.table = "orders";
  filter.column = "o_orderdate";
  for (double selectivity : {0.0, 1e-12, 1.0, 5.0}) {
    filter.selectivity = selectivity;
    spec.filters = {filter};
    const plan::Plan planned = planner.PlanQuery(spec);
    ASSERT_NE(planned.root, nullptr);
    EXPECT_GE(planned.root->props().plan_rows, 1.0);
    EXPECT_TRUE(std::isfinite(planned.root->props().total_cost));
  }
}

TEST(PlannerRobustnessTest, DisconnectedJoinGraphStopsGracefully) {
  const catalog::Catalog cat = catalog::MakeTpchCatalog(0.1);
  const config::DbConfig cfg;
  simdb::Planner planner(&cat, &cfg);
  simdb::QuerySpec spec;
  spec.tables = {"orders", "part"};  // no join edge between them
  const plan::Plan planned = planner.PlanQuery(spec);
  ASSERT_NE(planned.root, nullptr);  // one side survives as the result
}

TEST(ExecutorRobustnessTest, EmptyPlanReturnsZero) {
  const catalog::Catalog cat = catalog::MakeTpchCatalog(0.1);
  const config::DbConfig cfg;
  simdb::ExecutorSim executor(&cat, &cfg);
  plan::Plan empty;
  util::Rng noise(1);
  EXPECT_DOUBLE_EQ(executor.Execute(&empty, 1, &noise), 0.0);
}

TEST(SerializeRobustnessTest, DeeplyNestedPlanRoundTrips) {
  auto root = std::make_unique<plan::PlanNode>(
      plan::OperatorType::Parse("Materialize"));
  plan::PlanNode* cursor = root.get();
  for (int i = 0; i < 150; ++i) {
    cursor = cursor->AddChild(plan::OperatorType::Parse("Materialize"));
  }
  cursor->AddChild(plan::OperatorType::Parse("Scan-Seq"));
  const auto parsed = plan::ParsePlanNode(plan::SerializePlanNode(*root));
  ASSERT_NE(parsed, nullptr);
  EXPECT_EQ(parsed->NumNodes(), root->NumNodes());
}

TEST(ConfigRobustnessTest, FeaturesFiniteAtExtremes) {
  config::DbConfig config;
  for (int k = 0; k < config::kNumKnobs; ++k) {
    config.Set(static_cast<config::Knob>(k),
               config::KnobTable()[k].max_value * 10);  // out of range
  }
  for (double f : config.ToFeatures()) {
    EXPECT_TRUE(std::isfinite(f));
  }
}

TEST(MetaFeatureRobustnessTest, SpatialFlagPropagates) {
  const catalog::Catalog spatial = catalog::MakeSpatialCatalog(0.1);
  const catalog::Catalog tpch = catalog::MakeTpchCatalog(0.1);
  const auto spatial_features = spatial.MetaFeatures({"arealm"});
  const auto tpch_features = tpch.MetaFeatures({"orders"});
  EXPECT_DOUBLE_EQ(spatial_features.back(), 1.0);
  EXPECT_DOUBLE_EQ(tpch_features.back(), 0.0);
}

}  // namespace
}  // namespace qpe
