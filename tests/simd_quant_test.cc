// SIMD dispatch + int8 quantization tests: forced-scalar vs vectorized
// kernel parity at odd sizes (tail-lane handling), dispatch/env parsing,
// quantization round-trip, the fused LinearRowBias node, and the
// accuracy-delta gate for the int8 quantized plan encoder.

#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "data/plan_corpus.h"
#include "encoder/quantized_encoder.h"
#include "encoder/structure_encoder.h"
#include "gtest/gtest.h"
#include "nn/quant.h"
#include "nn/simd.h"
#include "nn/tensor.h"
#include "nn/transformer.h"
#include "plan/plan_node.h"
#include "serve/embedding_service.h"
#include "util/rng.h"

namespace qpe {
namespace {

using nn::simd::Kernels;
using nn::simd::Level;

// Restores the dispatched kernel table on scope exit so a forced level
// never leaks into other tests.
class SimdLevelGuard {
 public:
  SimdLevelGuard() : saved_(nn::simd::ActiveLevel()) {}
  ~SimdLevelGuard() { nn::simd::ForceLevel(saved_); }

 private:
  Level saved_;
};

std::vector<float> RandomVec(size_t n, util::Rng* rng, float scale = 1.0f) {
  std::vector<float> v(n);
  for (float& x : v) {
    x = scale * static_cast<float>(rng->Uniform() * 2.0 - 1.0);
  }
  return v;
}

// Epsilon contract for the float kernels: vector results must stay within
// tight relative error of the scalar reference. Most kernels are
// bit-identical by construction; the softmax/attention kernels use the
// allowance for their polynomial vector exp (~2 ulp vs std::exp), which
// is well inside this bound.
void ExpectAllNear(const std::vector<float>& a, const std::vector<float>& b,
                   float eps = 1e-6f) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    const float tol = eps * (1.0f + std::fabs(a[i]));
    ASSERT_NEAR(a[i], b[i], tol) << "index " << i;
  }
}

// The vector table compiled into this binary (if the hardware supports
// it); null means scalar-only hardware, in which case parity tests
// trivially pass on the scalar table itself.
const Kernels* VectorTable() {
  return nn::simd::TableFor(nn::simd::HardwareLevel());
}

// --- Dispatch machinery -----------------------------------------------------

TEST(SimdDispatchTest, ParseLevel) {
  EXPECT_EQ(nn::simd::ParseLevel("0", Level::kAvx2), Level::kScalar);
  EXPECT_EQ(nn::simd::ParseLevel("scalar", Level::kAvx2), Level::kScalar);
  EXPECT_EQ(nn::simd::ParseLevel("off", Level::kAvx2), Level::kScalar);
  EXPECT_EQ(nn::simd::ParseLevel("avx2", Level::kScalar), Level::kAvx2);
  EXPECT_EQ(nn::simd::ParseLevel("neon", Level::kScalar), Level::kNeon);
  EXPECT_EQ(nn::simd::ParseLevel("1", Level::kAvx2), Level::kAvx2);
  EXPECT_EQ(nn::simd::ParseLevel("auto", Level::kNeon), Level::kNeon);
  EXPECT_EQ(nn::simd::ParseLevel("", Level::kAvx2), Level::kAvx2);
  EXPECT_EQ(nn::simd::ParseLevel(nullptr, Level::kScalar), Level::kScalar);
  EXPECT_EQ(nn::simd::ParseLevel("garbage", Level::kAvx2), Level::kAvx2);
}

TEST(SimdDispatchTest, ScalarTableAlwaysAvailable) {
  const Kernels* scalar = nn::simd::TableFor(Level::kScalar);
  ASSERT_NE(scalar, nullptr);
  EXPECT_EQ(scalar->level, Level::kScalar);
  EXPECT_STREQ(scalar->name, "scalar");
}

TEST(SimdDispatchTest, ActiveTableMatchesLevel) {
  EXPECT_EQ(nn::simd::K().level, nn::simd::ActiveLevel());
  EXPECT_STREQ(nn::simd::LevelName(nn::simd::ActiveLevel()),
               nn::simd::K().name);
}

TEST(SimdDispatchTest, ForceLevelClampsToAvailable) {
  SimdLevelGuard guard;
  // Scalar is always installable.
  EXPECT_EQ(nn::simd::ForceLevel(Level::kScalar), Level::kScalar);
  EXPECT_EQ(nn::simd::ActiveLevel(), Level::kScalar);
#if !defined(QPE_SANITIZE_BUILD)
  // Forcing the hardware's own level reinstalls it; forcing a level this
  // binary does not implement clamps to scalar.
  const Level hw = nn::simd::HardwareLevel();
  EXPECT_EQ(nn::simd::ForceLevel(hw), hw);
#if defined(QPE_HAVE_AVX2)
  EXPECT_EQ(nn::simd::ForceLevel(Level::kNeon), Level::kScalar);
#elif defined(QPE_HAVE_NEON)
  EXPECT_EQ(nn::simd::ForceLevel(Level::kAvx2), Level::kScalar);
#endif
#else
  // Sanitizer builds pin the dispatch to scalar regardless of request.
  EXPECT_EQ(nn::simd::ForceLevel(nn::simd::HardwareLevel()), Level::kScalar);
#endif
}

// --- Kernel parity: forced scalar vs vectorized, odd sizes ------------------
//
// Row/column counts deliberately include 1, 3, 17 and 129: not multiples of
// any vector width, so every kernel's tail-lane path executes.

TEST(SimdParityTest, MatMulForwardRange) {
  const Kernels* vec = VectorTable();
  ASSERT_NE(vec, nullptr);
  const Kernels* scalar = nn::simd::TableFor(Level::kScalar);
  util::Rng rng(42);
  const int shapes[][3] = {{1, 1, 1},   {3, 7, 5},    {17, 48, 33},
                           {129, 64, 129}, {2, 3, 300}, {5, 129, 17}};
  for (const auto& s : shapes) {
    const int m = s[0], k = s[1], n = s[2];
    std::vector<float> a = RandomVec(static_cast<size_t>(m) * k, &rng);
    // Sprinkle zeros so the sparsity skip in the kernel is exercised.
    for (size_t i = 0; i < a.size(); i += 5) a[i] = 0.0f;
    const std::vector<float> b = RandomVec(static_cast<size_t>(k) * n, &rng);
    std::vector<float> out_s(static_cast<size_t>(m) * n, 0.0f);
    std::vector<float> out_v(static_cast<size_t>(m) * n, 0.0f);
    scalar->matmul_forward_range(a.data(), b.data(), out_s.data(), 0, m, k, n);
    vec->matmul_forward_range(a.data(), b.data(), out_v.data(), 0, m, k, n);
    ExpectAllNear(out_s, out_v);
  }
}

TEST(SimdParityTest, BiasRelu) {
  const Kernels* vec = VectorTable();
  const Kernels* scalar = nn::simd::TableFor(Level::kScalar);
  util::Rng rng(43);
  for (const int m : {1, 3, 17, 129}) {
    for (const int n : {1, 3, 8, 17, 48, 129}) {
      const std::vector<float> a = RandomVec(static_cast<size_t>(m) * n, &rng);
      const std::vector<float> bias = RandomVec(n, &rng);
      std::vector<float> out_s(a.size()), out_v(a.size());
      scalar->bias_relu(a.data(), bias.data(), out_s.data(), m, n);
      vec->bias_relu(a.data(), bias.data(), out_v.data(), m, n);
      ExpectAllNear(out_s, out_v);
    }
  }
}

TEST(SimdParityTest, LayerNormRows) {
  const Kernels* vec = VectorTable();
  const Kernels* scalar = nn::simd::TableFor(Level::kScalar);
  util::Rng rng(44);
  for (const int m : {1, 3, 17, 129}) {
    for (const int n : {1, 3, 17, 48, 129}) {
      const std::vector<float> x =
          RandomVec(static_cast<size_t>(m) * n, &rng, 3.0f);
      const std::vector<float> gamma = RandomVec(n, &rng);
      const std::vector<float> beta = RandomVec(n, &rng);
      const float invn = 1.0f / static_cast<float>(n);
      std::vector<float> out_s(x.size()), out_v(x.size());
      scalar->layer_norm_rows(x.data(), gamma.data(), beta.data(),
                              out_s.data(), m, n, invn);
      vec->layer_norm_rows(x.data(), gamma.data(), beta.data(), out_v.data(),
                           m, n, invn);
      ExpectAllNear(out_s, out_v);
    }
  }
}

TEST(SimdParityTest, SoftmaxRowsMasked) {
  const Kernels* vec = VectorTable();
  const Kernels* scalar = nn::simd::TableFor(Level::kScalar);
  util::Rng rng(45);
  for (const int m : {1, 3, 17}) {
    for (const int n : {1, 3, 17, 129}) {
      const std::vector<float> a =
          RandomVec(static_cast<size_t>(m) * n, &rng, 4.0f);
      std::vector<int> valid(m);
      for (int r = 0; r < m; ++r) {
        valid[r] = 1 + static_cast<int>(rng.Uniform() * n);
      }
      if (m > 2) valid[m - 1] = 0;  // fully masked row stays zero
      std::vector<float> out_s(a.size(), 0.0f), out_v(a.size(), 0.0f);
      scalar->softmax_rows_masked(a.data(), out_s.data(), valid.data(), m, n);
      vec->softmax_rows_masked(a.data(), out_v.data(), valid.data(), m, n);
      ExpectAllNear(out_s, out_v);
    }
  }
}

TEST(SimdParityTest, AttentionForwardPacked) {
  const Kernels* vec = VectorTable();
  const Kernels* scalar = nn::simd::TableFor(Level::kScalar);
  util::Rng rng(46);
  struct Case {
    std::vector<int> lengths;
    int num_heads;
    int dim;
  };
  const Case cases[] = {
      {{1}, 1, 7},                 // single token, odd head dim
      {{3, 17, 1}, 4, 48},         // model-shaped heads, ragged batch
      {{29, 5}, 2, 24},            // odd lengths
      {{129}, 4, 48},              // long sequence crosses lane blocks
  };
  for (const Case& c : cases) {
    std::vector<int> offsets;
    int total = 0;
    for (const int len : c.lengths) {
      offsets.push_back(total);
      total += len;
    }
    const float scale =
        1.0f / std::sqrt(static_cast<float>(c.dim / c.num_heads));
    const std::vector<float> q =
        RandomVec(static_cast<size_t>(total) * c.dim, &rng);
    const std::vector<float> k =
        RandomVec(static_cast<size_t>(total) * c.dim, &rng);
    const std::vector<float> v =
        RandomVec(static_cast<size_t>(total) * c.dim, &rng);
    std::vector<float> out_s(q.size(), 0.0f), out_v(q.size(), 0.0f);
    scalar->attention_forward_packed(
        q.data(), k.data(), v.data(), out_s.data(), offsets.data(),
        c.lengths.data(), static_cast<int>(c.lengths.size()), c.num_heads,
        c.dim, scale);
    vec->attention_forward_packed(
        q.data(), k.data(), v.data(), out_v.data(), offsets.data(),
        c.lengths.data(), static_cast<int>(c.lengths.size()), c.num_heads,
        c.dim, scale);
    ExpectAllNear(out_s, out_v);
  }
}

// --- Backward kernel parity -------------------------------------------------
//
// The backward table's contract is stricter than the forward epsilon: every
// kernel except attention_backward_packed preserves the scalar accumulation
// order per gradient element, so scalar and vector tables must match BIT FOR
// BIT, including at adversarial odd shapes where only the tail lanes run.
// Gradient buffers accumulate (+=), so each case seeds both tables' buffers
// with identical random prior values to cover the accumulate path too.

TEST(SimdParityTest, MatMulBackwardABitExact) {
  const Kernels* vec = VectorTable();
  const Kernels* scalar = nn::simd::TableFor(Level::kScalar);
  util::Rng rng(51);
  const int shapes[][3] = {{1, 1, 1},   {3, 7, 5},    {17, 48, 33},
                           {129, 64, 129}, {2, 3, 300}, {5, 129, 17}};
  for (const auto& s : shapes) {
    const int m = s[0], k = s[1], n = s[2];
    const std::vector<float> og = RandomVec(static_cast<size_t>(m) * n, &rng);
    const std::vector<float> b = RandomVec(static_cast<size_t>(k) * n, &rng);
    std::vector<float> ag_s = RandomVec(static_cast<size_t>(m) * k, &rng);
    std::vector<float> ag_v = ag_s;
    // Split the row range to exercise the sharded [i0, i1) entry point.
    const int mid = m / 2;
    scalar->matmul_backward_a(og.data(), b.data(), ag_s.data(), 0, mid, k, n);
    scalar->matmul_backward_a(og.data(), b.data(), ag_s.data(), mid, m, k, n);
    vec->matmul_backward_a(og.data(), b.data(), ag_v.data(), 0, mid, k, n);
    vec->matmul_backward_a(og.data(), b.data(), ag_v.data(), mid, m, k, n);
    for (size_t i = 0; i < ag_s.size(); ++i) {
      ASSERT_EQ(ag_s[i], ag_v[i]) << "index " << i;
    }
  }
}

TEST(SimdParityTest, MatMulBackwardBBitExact) {
  const Kernels* vec = VectorTable();
  const Kernels* scalar = nn::simd::TableFor(Level::kScalar);
  util::Rng rng(52);
  const int shapes[][3] = {{1, 1, 1},   {3, 7, 5},    {17, 48, 33},
                           {129, 64, 129}, {2, 3, 300}, {5, 129, 17}};
  for (const auto& s : shapes) {
    const int m = s[0], k = s[1], n = s[2];
    std::vector<float> a = RandomVec(static_cast<size_t>(m) * k, &rng);
    // Sprinkle zeros: the aval == 0 skip must be kept at every level.
    for (size_t i = 0; i < a.size(); i += 3) a[i] = 0.0f;
    const std::vector<float> og = RandomVec(static_cast<size_t>(m) * n, &rng);
    std::vector<float> bg_s = RandomVec(static_cast<size_t>(k) * n, &rng);
    std::vector<float> bg_v = bg_s;
    const int mid = k / 2;
    scalar->matmul_backward_b(a.data(), og.data(), bg_s.data(), 0, mid, m, k,
                              n);
    scalar->matmul_backward_b(a.data(), og.data(), bg_s.data(), mid, k, m, k,
                              n);
    vec->matmul_backward_b(a.data(), og.data(), bg_v.data(), 0, mid, m, k, n);
    vec->matmul_backward_b(a.data(), og.data(), bg_v.data(), mid, k, m, k, n);
    for (size_t i = 0; i < bg_s.size(); ++i) {
      ASSERT_EQ(bg_s[i], bg_v[i]) << "index " << i;
    }
  }
}

TEST(SimdParityTest, BiasActBackwardBitExact) {
  const Kernels* vec = VectorTable();
  const Kernels* scalar = nn::simd::TableFor(Level::kScalar);
  util::Rng rng(53);
  for (const int m : {1, 3, 17, 129}) {
    for (const int n : {1, 3, 17, 48, 129}) {
      const size_t total = static_cast<size_t>(m) * n;
      // Forward output of bias_relu: nonnegative with exact zeros where the
      // pre-activation was clamped, so the > 0 gate sees both branches.
      const std::vector<float> pre = RandomVec(total, &rng);
      const std::vector<float> bias = RandomVec(n, &rng, 0.25f);
      std::vector<float> ov(total);
      scalar->bias_relu(pre.data(), bias.data(), ov.data(), m, n);
      const std::vector<float> og = RandomVec(total, &rng);
      std::vector<float> ag_s = RandomVec(total, &rng), ag_v = ag_s;
      std::vector<float> bg_s = RandomVec(n, &rng), bg_v = bg_s;
      scalar->bias_act_backward(ov.data(), og.data(), ag_s.data(), bg_s.data(),
                                m, n);
      vec->bias_act_backward(ov.data(), og.data(), ag_v.data(), bg_v.data(), m,
                             n);
      for (size_t i = 0; i < total; ++i) {
        ASSERT_EQ(ag_s[i], ag_v[i]) << "ag " << i;
      }
      for (int i = 0; i < n; ++i) {
        ASSERT_EQ(bg_s[i], bg_v[i]) << "bg " << i;
      }
      // Nullable-gradient paths: ag only, then bg only.
      std::vector<float> ag2_s = ag_s, ag2_v = ag_v;
      scalar->bias_act_backward(ov.data(), og.data(), ag2_s.data(), nullptr, m,
                                n);
      vec->bias_act_backward(ov.data(), og.data(), ag2_v.data(), nullptr, m,
                             n);
      std::vector<float> bg2_s = bg_s, bg2_v = bg_v;
      scalar->bias_act_backward(ov.data(), og.data(), nullptr, bg2_s.data(), m,
                                n);
      vec->bias_act_backward(ov.data(), og.data(), nullptr, bg2_v.data(), m,
                             n);
      for (size_t i = 0; i < total; ++i) {
        ASSERT_EQ(ag2_s[i], ag2_v[i]) << "ag-only " << i;
      }
      for (int i = 0; i < n; ++i) {
        ASSERT_EQ(bg2_s[i], bg2_v[i]) << "bg-only " << i;
      }
    }
  }
}

TEST(SimdParityTest, LayerNormRowsBackwardBitExact) {
  const Kernels* vec = VectorTable();
  const Kernels* scalar = nn::simd::TableFor(Level::kScalar);
  util::Rng rng(54);
  for (const int m : {1, 3, 17, 129}) {
    for (const int n : {1, 3, 17, 48, 129}) {
      const size_t total = static_cast<size_t>(m) * n;
      const std::vector<float> x = RandomVec(total, &rng, 3.0f);
      const std::vector<float> gamma = RandomVec(n, &rng);
      const std::vector<float> og = RandomVec(total, &rng);
      const float invn = 1.0f / static_cast<float>(n);
      std::vector<float> xg_s = RandomVec(total, &rng), xg_v = xg_s;
      std::vector<float> gg_s = RandomVec(n, &rng), gg_v = gg_s;
      std::vector<float> bg_s = RandomVec(n, &rng), bg_v = bg_s;
      scalar->layer_norm_rows_backward(x.data(), gamma.data(), og.data(),
                                       xg_s.data(), gg_s.data(), bg_s.data(),
                                       m, n, invn);
      vec->layer_norm_rows_backward(x.data(), gamma.data(), og.data(),
                                    xg_v.data(), gg_v.data(), bg_v.data(), m,
                                    n, invn);
      for (size_t i = 0; i < total; ++i) {
        ASSERT_EQ(xg_s[i], xg_v[i]) << "xg " << i;
      }
      for (int i = 0; i < n; ++i) {
        ASSERT_EQ(gg_s[i], gg_v[i]) << "gg " << i;
        ASSERT_EQ(bg_s[i], bg_v[i]) << "bg " << i;
      }
      // Input-grad-only path (frozen affine params).
      std::vector<float> xg2_s = xg_s, xg2_v = xg_v;
      scalar->layer_norm_rows_backward(x.data(), gamma.data(), og.data(),
                                       xg2_s.data(), nullptr, nullptr, m, n,
                                       invn);
      vec->layer_norm_rows_backward(x.data(), gamma.data(), og.data(),
                                    xg2_v.data(), nullptr, nullptr, m, n,
                                    invn);
      for (size_t i = 0; i < total; ++i) {
        ASSERT_EQ(xg2_s[i], xg2_v[i]) << "xg-only " << i;
      }
    }
  }
}

TEST(SimdParityTest, SoftmaxRowsMaskedBackwardBitExact) {
  const Kernels* vec = VectorTable();
  const Kernels* scalar = nn::simd::TableFor(Level::kScalar);
  util::Rng rng(55);
  for (const int m : {1, 3, 17}) {
    for (const int n : {1, 3, 17, 129}) {
      const size_t total = static_cast<size_t>(m) * n;
      const std::vector<float> logits = RandomVec(total, &rng, 4.0f);
      std::vector<int> valid(m);
      for (int r = 0; r < m; ++r) {
        valid[r] = 1 + static_cast<int>(rng.Uniform() * n);
      }
      if (m > 2) valid[m - 1] = 0;  // fully masked row contributes nothing
      // Both tables consume the SAME forward probabilities (the scalar
      // ones): the backward itself must be bit-exact given equal inputs.
      std::vector<float> y(total, 0.0f);
      scalar->softmax_rows_masked(logits.data(), y.data(), valid.data(), m, n);
      const std::vector<float> gy = RandomVec(total, &rng);
      std::vector<float> gx_s = RandomVec(total, &rng), gx_v = gx_s;
      scalar->softmax_rows_masked_backward(y.data(), gy.data(), gx_s.data(),
                                           valid.data(), m, n);
      vec->softmax_rows_masked_backward(y.data(), gy.data(), gx_v.data(),
                                        valid.data(), m, n);
      for (size_t i = 0; i < total; ++i) {
        ASSERT_EQ(gx_s[i], gx_v[i]) << "gx " << i;
      }
    }
  }
}

TEST(SimdParityTest, AttentionBackwardPacked) {
  const Kernels* vec = VectorTable();
  const Kernels* scalar = nn::simd::TableFor(Level::kScalar);
  util::Rng rng(56);
  struct Case {
    std::vector<int> lengths;
    int num_heads;
    int dim;
  };
  const Case cases[] = {
      {{1}, 1, 7},          // single token, odd head dim
      {{3, 17, 1}, 4, 48},  // model-shaped heads, ragged batch
      {{29, 5}, 2, 24},     // odd lengths
      {{129}, 4, 48},       // long sequence crosses lane blocks
  };
  for (const Case& c : cases) {
    std::vector<int> offsets;
    int total = 0;
    for (const int len : c.lengths) {
      offsets.push_back(total);
      total += len;
    }
    const int num_seqs = static_cast<int>(c.lengths.size());
    const float scale =
        1.0f / std::sqrt(static_cast<float>(c.dim / c.num_heads));
    const size_t size = static_cast<size_t>(total) * c.dim;
    const std::vector<float> q = RandomVec(size, &rng);
    const std::vector<float> k = RandomVec(size, &rng);
    const std::vector<float> v = RandomVec(size, &rng);
    const std::vector<float> og = RandomVec(size, &rng);
    std::vector<float> qg_s = RandomVec(size, &rng), qg_v = qg_s;
    std::vector<float> kg_s = RandomVec(size, &rng), kg_v = kg_s;
    std::vector<float> vg_s = RandomVec(size, &rng), vg_v = vg_s;
    scalar->attention_backward_packed(q.data(), k.data(), v.data(), og.data(),
                                      qg_s.data(), kg_s.data(), vg_s.data(),
                                      offsets.data(), c.lengths.data(),
                                      num_seqs, c.num_heads, c.dim, scale);
    vec->attention_backward_packed(q.data(), k.data(), v.data(), og.data(),
                                   qg_v.data(), kg_v.data(), vg_v.data(),
                                   offsets.data(), c.lengths.data(), num_seqs,
                                   c.num_heads, c.dim, scale);
    // The recomputed softmax probabilities go through V::Exp, so (exactly
    // like the forward) cross-level equality is epsilon-gated rather than
    // bitwise.
    ExpectAllNear(qg_s, qg_v);
    ExpectAllNear(kg_s, kg_v);
    ExpectAllNear(vg_s, vg_v);
    // vg-only path (frozen q/k projections upstream).
    std::vector<float> vg2_s = vg_s, vg2_v = vg_v;
    scalar->attention_backward_packed(
        q.data(), k.data(), v.data(), og.data(), nullptr, nullptr,
        vg2_s.data(), offsets.data(), c.lengths.data(), num_seqs, c.num_heads,
        c.dim, scale);
    vec->attention_backward_packed(q.data(), k.data(), v.data(), og.data(),
                                   nullptr, nullptr, vg2_v.data(),
                                   offsets.data(), c.lengths.data(), num_seqs,
                                   c.num_heads, c.dim, scale);
    ExpectAllNear(vg2_s, vg2_v);
  }
}

TEST(SimdParityTest, Int8GemmBitExactAcrossLevels) {
  const Kernels* vec = VectorTable();
  const Kernels* scalar = nn::simd::TableFor(Level::kScalar);
  util::Rng rng(47);
  const int shapes[][3] = {{1, 1, 1}, {3, 17, 5}, {7, 48, 33}, {5, 96, 24},
                           {2, 129, 9}};
  for (const auto& s : shapes) {
    const int m = s[0], k = s[1], n = s[2];
    std::vector<int8_t> a(static_cast<size_t>(m) * k);
    std::vector<int8_t> b(static_cast<size_t>(n) * k);
    for (int8_t& x : a) {
      x = static_cast<int8_t>(static_cast<int>(rng.Uniform() * 255) - 127);
    }
    for (int8_t& x : b) {
      x = static_cast<int8_t>(static_cast<int>(rng.Uniform() * 255) - 127);
    }
    const std::vector<float> a_scale = RandomVec(m, &rng, 0.01f);
    const std::vector<float> b_scale = RandomVec(n, &rng, 0.01f);
    const std::vector<float> bias = RandomVec(n, &rng);
    std::vector<float> c_s(static_cast<size_t>(m) * n);
    std::vector<float> c_v(static_cast<size_t>(m) * n);
    scalar->int8_gemm(a.data(), b.data(), c_s.data(), m, k, n, a_scale.data(),
                      b_scale.data(), bias.data());
    vec->int8_gemm(a.data(), b.data(), c_v.data(), m, k, n, a_scale.data(),
                   b_scale.data(), bias.data());
    // Integer accumulation is exact: results must match bit for bit.
    for (size_t i = 0; i < c_s.size(); ++i) {
      ASSERT_EQ(c_s[i], c_v[i]) << "index " << i;
    }
    // Null bias path.
    scalar->int8_gemm(a.data(), b.data(), c_s.data(), m, k, n, a_scale.data(),
                      b_scale.data(), nullptr);
    vec->int8_gemm(a.data(), b.data(), c_v.data(), m, k, n, a_scale.data(),
                   b_scale.data(), nullptr);
    for (size_t i = 0; i < c_s.size(); ++i) {
      ASSERT_EQ(c_s[i], c_v[i]) << "index " << i;
    }
  }
}

// Dispatched ops keep producing the same bits when the level is forced
// down to scalar: the autograd kernels' contract with the rest of the repo.
TEST(SimdParityTest, DispatchedOpsBitIdenticalScalarVsVector) {
  SimdLevelGuard guard;
  util::Rng rng(48);
  const nn::Tensor a = nn::Tensor::Xavier(17, 23, &rng);
  const nn::Tensor b = nn::Tensor::Xavier(23, 9, &rng);
  const nn::Tensor bias = nn::Tensor::Xavier(1, 9, &rng);

  nn::simd::ForceLevel(nn::simd::HardwareLevel());
  const nn::Tensor vec_mm = MatMul(a, b);
  const nn::Tensor vec_lin = LinearRowBias(a, b, bias);
  nn::simd::ForceLevel(Level::kScalar);
  const nn::Tensor sc_mm = MatMul(a, b);
  const nn::Tensor sc_lin = LinearRowBias(a, b, bias);

  for (int i = 0; i < vec_mm.numel(); ++i) {
    ASSERT_EQ(vec_mm.value()[i], sc_mm.value()[i]);
    ASSERT_EQ(vec_lin.value()[i], sc_lin.value()[i]);
  }
}

// --- LinearRowBias ----------------------------------------------------------

TEST(LinearRowBiasTest, ForwardBitIdenticalToChain) {
  util::Rng rng(49);
  const nn::Tensor x = nn::Tensor::Xavier(13, 29, &rng);
  const nn::Tensor w = nn::Tensor::Xavier(29, 11, &rng);
  const nn::Tensor bias = nn::Tensor::Xavier(1, 11, &rng);
  const nn::Tensor fused = LinearRowBias(x, w, bias);
  const nn::Tensor chain = Add(MatMul(x, w), bias);
  ASSERT_EQ(fused.rows(), chain.rows());
  ASSERT_EQ(fused.cols(), chain.cols());
  for (int i = 0; i < fused.numel(); ++i) {
    ASSERT_EQ(fused.value()[i], chain.value()[i]) << "index " << i;
  }
}

TEST(LinearRowBiasTest, BackwardMatchesChain) {
  util::Rng rng(50);
  const nn::Tensor x0 = nn::Tensor::Xavier(7, 19, &rng);
  const nn::Tensor w0 = nn::Tensor::Xavier(19, 5, &rng);
  const nn::Tensor b0 = nn::Tensor::Xavier(1, 5, &rng);
  const nn::Tensor xa = nn::Tensor::FromVector(7, 19, x0.value(), true);
  const nn::Tensor wa = nn::Tensor::FromVector(19, 5, w0.value(), true);
  const nn::Tensor ba = nn::Tensor::FromVector(1, 5, b0.value(), true);
  const nn::Tensor xb = nn::Tensor::FromVector(7, 19, x0.value(), true);
  const nn::Tensor wb = nn::Tensor::FromVector(19, 5, w0.value(), true);
  const nn::Tensor bb = nn::Tensor::FromVector(1, 5, b0.value(), true);
  Sum(LinearRowBias(xa, wa, ba)).Backward();
  Sum(Add(MatMul(xb, wb), bb)).Backward();
  for (int i = 0; i < xa.numel(); ++i) {
    ASSERT_EQ(xa.grad()[i], xb.grad()[i]) << "x grad " << i;
  }
  for (int i = 0; i < wa.numel(); ++i) {
    ASSERT_EQ(wa.grad()[i], wb.grad()[i]) << "w grad " << i;
  }
  for (int i = 0; i < ba.numel(); ++i) {
    ASSERT_EQ(ba.grad()[i], bb.grad()[i]) << "bias grad " << i;
  }
}

// --- LinearRowBiasRelu ------------------------------------------------------

TEST(LinearRowBiasReluTest, ForwardBitIdenticalToChain) {
  util::Rng rng(57);
  const nn::Tensor x = nn::Tensor::Xavier(13, 29, &rng);
  const nn::Tensor w = nn::Tensor::Xavier(29, 11, &rng);
  const nn::Tensor bias = nn::Tensor::Xavier(1, 11, &rng);
  const nn::Tensor fused = LinearRowBiasRelu(x, w, bias);
  const nn::Tensor chain = Relu(Add(MatMul(x, w), bias));
  ASSERT_EQ(fused.rows(), chain.rows());
  ASSERT_EQ(fused.cols(), chain.cols());
  for (int i = 0; i < fused.numel(); ++i) {
    ASSERT_EQ(fused.value()[i], chain.value()[i]) << "index " << i;
  }
}

TEST(LinearRowBiasReluTest, BackwardMatchesChain) {
  util::Rng rng(58);
  const nn::Tensor x0 = nn::Tensor::Xavier(7, 19, &rng);
  const nn::Tensor w0 = nn::Tensor::Xavier(19, 5, &rng);
  const nn::Tensor b0 = nn::Tensor::Xavier(1, 5, &rng);
  const nn::Tensor xa = nn::Tensor::FromVector(7, 19, x0.value(), true);
  const nn::Tensor wa = nn::Tensor::FromVector(19, 5, w0.value(), true);
  const nn::Tensor ba = nn::Tensor::FromVector(1, 5, b0.value(), true);
  const nn::Tensor xb = nn::Tensor::FromVector(7, 19, x0.value(), true);
  const nn::Tensor wb = nn::Tensor::FromVector(19, 5, w0.value(), true);
  const nn::Tensor bb = nn::Tensor::FromVector(1, 5, b0.value(), true);
  // Square the output so the upstream gradient is non-constant and signed:
  // the ReLU gate then has to zero real values, not just ones.
  Sum(Square(LinearRowBiasRelu(xa, wa, ba))).Backward();
  Sum(Square(Relu(LinearRowBias(xb, wb, bb)))).Backward();
  for (int i = 0; i < xa.numel(); ++i) {
    ASSERT_EQ(xa.grad()[i], xb.grad()[i]) << "x grad " << i;
  }
  for (int i = 0; i < wa.numel(); ++i) {
    ASSERT_EQ(wa.grad()[i], wb.grad()[i]) << "w grad " << i;
  }
  for (int i = 0; i < ba.numel(); ++i) {
    ASSERT_EQ(ba.grad()[i], bb.grad()[i]) << "bias grad " << i;
  }
}

// The fused node must also agree across dispatch levels (its backward
// routes through bias_act_backward + the matmul backward kernels).
TEST(LinearRowBiasReluTest, BitIdenticalScalarVsVector) {
  SimdLevelGuard guard;
  util::Rng rng(59);
  const nn::Tensor x0 = nn::Tensor::Xavier(17, 23, &rng);
  const nn::Tensor w0 = nn::Tensor::Xavier(23, 9, &rng);
  const nn::Tensor b0 = nn::Tensor::Xavier(1, 9, &rng);
  std::vector<float> value_by_level[2];
  std::vector<float> xg_by_level[2];
  const Level levels[2] = {nn::simd::HardwareLevel(), Level::kScalar};
  for (int li = 0; li < 2; ++li) {
    nn::simd::ForceLevel(levels[li]);
    const nn::Tensor x = nn::Tensor::FromVector(17, 23, x0.value(), true);
    const nn::Tensor w = nn::Tensor::FromVector(23, 9, w0.value(), true);
    const nn::Tensor b = nn::Tensor::FromVector(1, 9, b0.value(), true);
    const nn::Tensor out = LinearRowBiasRelu(x, w, b);
    Sum(out).Backward();
    value_by_level[li] = out.value();
    xg_by_level[li] = x.grad();
  }
  for (size_t i = 0; i < value_by_level[0].size(); ++i) {
    ASSERT_EQ(value_by_level[0][i], value_by_level[1][i]) << "value " << i;
  }
  for (size_t i = 0; i < xg_by_level[0].size(); ++i) {
    ASSERT_EQ(xg_by_level[0][i], xg_by_level[1][i]) << "x grad " << i;
  }
}

// --- Fused Adam update ------------------------------------------------------

// adam_step is elementwise with correctly rounded ops only, so every level
// must match the scalar reference bit for bit — parameter values, and both
// moment buffers, across several update steps and both decay modes.
TEST(SimdParityTest, AdamStepBitExact) {
  const Kernels* vec = VectorTable();
  const Kernels* scalar = nn::simd::TableFor(Level::kScalar);
  util::Rng rng(60);
  const float lr = 2e-3f, beta1 = 0.9f, beta2 = 0.999f, eps = 1e-8f;
  for (const int n : {1, 5, 17, 129, 1000}) {
    for (const float weight_decay : {0.0f, 0.01f}) {
      std::vector<float> value_s = RandomVec(n, &rng);
      std::vector<float> m_s = RandomVec(n, &rng, 0.1f);
      std::vector<float> v_s(n);
      for (int i = 0; i < n; ++i) v_s[i] = rng.Uniform() * 0.01f;
      std::vector<float> value_v = value_s, m_v = m_s, v_v = v_s;
      for (int step = 1; step <= 3; ++step) {
        const std::vector<float> grad = RandomVec(n, &rng);
        const float bias1 = 1.0f - std::pow(beta1, static_cast<float>(step));
        const float bias2 = 1.0f - std::pow(beta2, static_cast<float>(step));
        scalar->adam_step(value_s.data(), grad.data(), m_s.data(), v_s.data(),
                          n, lr, beta1, beta2, eps, bias1, bias2,
                          weight_decay);
        vec->adam_step(value_v.data(), grad.data(), m_v.data(), v_v.data(), n,
                       lr, beta1, beta2, eps, bias1, bias2, weight_decay);
        for (int i = 0; i < n; ++i) {
          ASSERT_EQ(value_s[i], value_v[i]) << "value " << i;
          ASSERT_EQ(m_s[i], m_v[i]) << "m " << i;
          ASSERT_EQ(v_s[i], v_v[i]) << "v " << i;
        }
      }
    }
  }
}

// --- BatchLayout SoA --------------------------------------------------------

TEST(BatchLayoutTest, PositionsColumnMatchesLengths) {
  const nn::BatchLayout layout = nn::BatchLayout::FromLengths({3, 1, 4});
  EXPECT_EQ(layout.total_rows, 8);
  const std::vector<int> expected = {0, 1, 2, 0, 0, 1, 2, 3};
  EXPECT_EQ(layout.positions, expected);
  EXPECT_EQ(layout.offsets, (std::vector<int>{0, 3, 4}));
}

// --- Quantization primitives ------------------------------------------------

TEST(QuantTest, QuantizeValueRoundsAndSaturates) {
  EXPECT_EQ(nn::QuantizeValue(0.0f, 1.0f), 0);
  EXPECT_EQ(nn::QuantizeValue(1.4f, 1.0f), 1);
  EXPECT_EQ(nn::QuantizeValue(1.5f, 1.0f), 2);   // ties away from zero
  EXPECT_EQ(nn::QuantizeValue(-1.5f, 1.0f), -2);
  EXPECT_EQ(nn::QuantizeValue(1000.0f, 1.0f), 127);
  EXPECT_EQ(nn::QuantizeValue(-1000.0f, 1.0f), -127);  // symmetric: no -128
}

TEST(QuantTest, RoundTripErrorBoundedByHalfScale) {
  util::Rng rng(51);
  const std::vector<float> x = RandomVec(1000, &rng, 2.0f);
  float absmax = 0;
  for (const float v : x) absmax = std::max(absmax, std::fabs(v));
  const float scale = absmax / 127.0f;
  std::vector<int8_t> q(x.size());
  nn::QuantizeBuffer(x.data(), x.size(), scale, q.data());
  for (size_t i = 0; i < x.size(); ++i) {
    const float dequant = static_cast<float>(q[i]) * scale;
    EXPECT_LE(std::fabs(dequant - x[i]), 0.5f * scale + 1e-6f) << "index " << i;
  }
}

TEST(QuantTest, CalibratorTracksAbsmax) {
  nn::QuantCalibrator cal;
  EXPECT_EQ(cal.absmax(), 0.0f);
  EXPECT_GE(cal.scale(), nn::kMinQuantScale);  // degenerate: floor, not 0
  const float chunk1[] = {0.5f, -2.0f, 1.0f};
  const float chunk2[] = {-0.25f, 1.5f};
  cal.Observe(chunk1, 3);
  cal.Observe(chunk2, 2);
  EXPECT_FLOAT_EQ(cal.absmax(), 2.0f);
  EXPECT_FLOAT_EQ(cal.scale(), 2.0f / 127.0f);
}

TEST(QuantTest, QuantizedLinearApproximatesFp32) {
  util::Rng rng(52);
  const int m = 9, in = 48, out = 33;
  const nn::Tensor w = nn::Tensor::Xavier(in, out, &rng);
  const nn::Tensor bias = nn::Tensor::Xavier(1, out, &rng);
  const std::vector<float> x = RandomVec(static_cast<size_t>(m) * in, &rng);
  nn::QuantCalibrator cal;
  cal.Observe(x.data(), x.size());
  const nn::QuantizedLinear q = nn::QuantizedLinear::FromLinear(
      w, bias, cal.scale());
  EXPECT_EQ(q.in_features(), in);
  EXPECT_EQ(q.out_features(), out);
  std::vector<float> y(static_cast<size_t>(m) * out);
  std::vector<int8_t> qx;
  std::vector<float> rs;
  q.Forward(x.data(), m, y.data(), &qx, &rs);
  // fp32 reference.
  const std::vector<float>& wv = w.value();
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < out; ++j) {
      float ref = bias.value()[j];
      for (int p = 0; p < in; ++p) {
        ref += x[static_cast<size_t>(i) * in + p] *
               wv[static_cast<size_t>(p) * out + j];
      }
      // Error budget: per-term quantization noise accumulated over `in`
      // products; loose analytic bound, tight in practice.
      const float tol = 0.02f + 0.02f * std::fabs(ref);
      EXPECT_NEAR(y[static_cast<size_t>(i) * out + j], ref, tol)
          << "(" << i << ", " << j << ")";
    }
  }
}

// --- Quantized plan encoder -------------------------------------------------

encoder::StructureEncoderConfig SmallConfig(int output_dim = 0) {
  encoder::StructureEncoderConfig config;
  config.level1_dim = 12;
  config.level2_dim = 6;
  config.level3_dim = 6;
  config.num_heads = 2;
  config.ff_dim = 32;
  config.num_layers = 2;
  config.max_len = 128;
  config.dropout = 0.0f;
  config.output_dim = output_dim;
  return config;
}

std::vector<std::unique_ptr<plan::PlanNode>> SamplePlans(int count,
                                                         uint64_t seed,
                                                         int max_nodes = 24) {
  data::CorpusOptions options;
  options.min_nodes = 4;
  options.max_nodes = max_nodes;
  data::RandomPlanGenerator generator(util::Rng(seed), options);
  std::vector<std::unique_ptr<plan::PlanNode>> plans;
  plans.reserve(count);
  for (int i = 0; i < count; ++i) plans.push_back(generator.Generate());
  return plans;
}

std::vector<const plan::PlanNode*> Pointers(
    const std::vector<std::unique_ptr<plan::PlanNode>>& plans) {
  std::vector<const plan::PlanNode*> ptrs;
  ptrs.reserve(plans.size());
  for (const auto& p : plans) ptrs.push_back(p.get());
  return ptrs;
}

double CosineDistance(const std::vector<float>& a, const std::vector<float>& b) {
  double dot = 0, na = 0, nb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na == 0 || nb == 0) return 1.0;
  return 1.0 - dot / (std::sqrt(na) * std::sqrt(nb));
}

// Accuracy-delta gate 1: quantization may not move any plan's embedding
// far from its fp32 twin (max cosine distance over a fresh evaluation set).
TEST(QuantizedEncoderTest, CosineDistanceToFp32WithinGate) {
  util::Rng rng(99);
  encoder::TransformerPlanEncoder fp32(SmallConfig(), &rng);
  fp32.SetTraining(false);
  const auto cal_plans = SamplePlans(24, 7001);
  const auto eval_plans = SamplePlans(32, 7002);
  const auto quantized = fp32.Quantize(Pointers(cal_plans));
  ASSERT_EQ(quantized->output_dim(), fp32.output_dim());
  EXPECT_EQ(quantized->num_quantized_sites(), 2 * 6);  // no projection
  const auto ptrs = Pointers(eval_plans);
  const auto fp32_out = fp32.EncodeBatch(ptrs, nullptr);
  const auto int8_out = quantized->EncodeBatch(ptrs, nullptr);
  ASSERT_EQ(fp32_out.size(), int8_out.size());
  double max_dist = 0;
  for (size_t i = 0; i < fp32_out.size(); ++i) {
    max_dist = std::max(
        max_dist, CosineDistance(fp32_out[i].value(), int8_out[i].value()));
  }
  // Gate: measured max ~1e-4 on this model; 0.01 leaves an order of
  // magnitude of headroom while still catching a broken scale or layout.
  EXPECT_LT(max_dist, 0.01);
}

// Accuracy-delta gate 2 (downstream proxy): nearest-neighbor structure of
// the embedding space survives quantization — for most plans, the fp32
// nearest neighbor stays the int8 nearest neighbor.
TEST(QuantizedEncoderTest, NearestNeighborAgreementWithinGate) {
  util::Rng rng(100);
  encoder::TransformerPlanEncoder fp32(SmallConfig(), &rng);
  fp32.SetTraining(false);
  const auto cal_plans = SamplePlans(24, 7003);
  const auto eval_plans = SamplePlans(40, 7004);
  const auto quantized = fp32.Quantize(Pointers(cal_plans));
  const auto ptrs = Pointers(eval_plans);
  const auto fp32_out = fp32.EncodeBatch(ptrs, nullptr);
  const auto int8_out = quantized->EncodeBatch(ptrs, nullptr);
  auto nearest = [](const std::vector<nn::Tensor>& embs, size_t i) {
    size_t best = i == 0 ? 1 : 0;
    double best_dist = 2.0;
    for (size_t j = 0; j < embs.size(); ++j) {
      if (j == i) continue;
      const double d = CosineDistance(embs[i].value(), embs[j].value());
      if (d < best_dist) {
        best_dist = d;
        best = j;
      }
    }
    return best;
  };
  int agree = 0;
  for (size_t i = 0; i < fp32_out.size(); ++i) {
    if (nearest(fp32_out, i) == nearest(int8_out, i)) ++agree;
  }
  // Gate: at least 80% top-1 neighbor agreement (measured: ~100%).
  EXPECT_GE(agree, static_cast<int>(0.8 * fp32_out.size()));
}

// The int8 engine is exact integer arithmetic per GEMM and row-independent
// everywhere else: a plan's embedding is the same bits alone or batched.
TEST(QuantizedEncoderTest, BatchedBitIdenticalToSingle) {
  util::Rng rng(101);
  encoder::TransformerPlanEncoder fp32(SmallConfig(16), &rng);  // + projection
  fp32.SetTraining(false);
  const auto cal_plans = SamplePlans(16, 7005);
  const auto eval_plans = SamplePlans(9, 7006);
  const auto quantized = fp32.Quantize(Pointers(cal_plans));
  EXPECT_EQ(quantized->num_quantized_sites(), 2 * 6 + 1);
  EXPECT_EQ(quantized->output_dim(), 16);
  const auto ptrs = Pointers(eval_plans);
  const auto batched = quantized->EncodeBatch(ptrs, nullptr);
  for (size_t i = 0; i < ptrs.size(); ++i) {
    const nn::Tensor single = quantized->Encode(*ptrs[i], nullptr);
    ASSERT_EQ(single.numel(), batched[i].numel());
    for (int c = 0; c < single.numel(); ++c) {
      ASSERT_EQ(single.value()[c], batched[i].value()[c])
          << "plan " << i << " col " << c;
    }
  }
  // And deterministic across repeated calls.
  const auto again = quantized->EncodeBatch(ptrs, nullptr);
  for (size_t i = 0; i < ptrs.size(); ++i) {
    for (int c = 0; c < batched[i].numel(); ++c) {
      ASSERT_EQ(batched[i].value()[c], again[i].value()[c]);
    }
  }
}

// The quantized encoder slots into EmbeddingService unchanged (opt-in
// quantized serving = construct the service with the quantized encoder).
TEST(QuantizedEncoderTest, ServesThroughEmbeddingService) {
  util::Rng rng(102);
  encoder::TransformerPlanEncoder fp32(SmallConfig(), &rng);
  fp32.SetTraining(false);
  const auto cal_plans = SamplePlans(16, 7007);
  const auto eval_plans = SamplePlans(12, 7008);
  const auto quantized = fp32.Quantize(Pointers(cal_plans));
  serve::EmbeddingService service(quantized.get());
  const auto ptrs = Pointers(eval_plans);
  const auto served = service.EncodeAll(ptrs);
  const auto direct = quantized->EncodeBatch(ptrs, nullptr);
  ASSERT_EQ(served.size(), direct.size());
  for (size_t i = 0; i < served.size(); ++i) {
    for (int c = 0; c < served[i].numel(); ++c) {
      ASSERT_EQ(served[i].value()[c], direct[i].value()[c]);
    }
  }
  const serve::ServiceStats stats = service.GetStats();
  EXPECT_STREQ(stats.simd_level,
               nn::simd::LevelName(nn::simd::ActiveLevel()));
}

// Calibrated input scales are positive, finite, and cover every site.
TEST(QuantizedEncoderTest, CalibratedScalesAreSane) {
  util::Rng rng(103);
  encoder::TransformerPlanEncoder fp32(SmallConfig(), &rng);
  fp32.SetTraining(false);
  const auto cal_plans = SamplePlans(16, 7009);
  const auto quantized = fp32.Quantize(Pointers(cal_plans));
  const std::vector<float> scales = quantized->input_scales();
  ASSERT_EQ(static_cast<int>(scales.size()),
            quantized->num_quantized_sites());
  for (const float s : scales) {
    EXPECT_TRUE(std::isfinite(s));
    EXPECT_GE(s, nn::kMinQuantScale);
    EXPECT_LT(s, 100.0f);
  }
}

}  // namespace
}  // namespace qpe
