// End-to-end integration: the full deployment story at miniature scale —
// pretrain both encoder families, checkpoint the suite, load it into a
// fresh process-like state, and drive both downstream tasks from the loaded
// weights. This is the test that fails if any stage's contract drifts.

#include <filesystem>

#include "config/lhs_sampler.h"
#include "data/datasets.h"
#include "encoder/encoder_suite.h"
#include "encoder/ppsr.h"
#include "gtest/gtest.h"
#include "nn/serialize.h"
#include "simdb/workload_runner.h"
#include "simdb/workloads.h"
#include "tasks/classifier.h"
#include "tasks/latency_model.h"

namespace qpe {
namespace {

TEST(IntegrationTest, PretrainCheckpointLoadAndServeBothTasks) {
  // ---- 1. Data: one small TPC-H run ------------------------------------
  const simdb::TpchWorkload tpch(0.05);
  config::LhsSampler sampler((util::Rng(1)));
  simdb::RunOptions run_options;
  run_options.instances_per_template = 2;
  const auto executed = simdb::RunWorkloadTemplates(
      tpch, {0, 2, 3, 5, 13, 17}, sampler.Sample(6), run_options);
  ASSERT_EQ(executed.size(), 6u * 2u * 6u);

  // ---- 2. Pretrain the suite -------------------------------------------
  encoder::EncoderSuite::Config suite_config;
  suite_config.structure.dropout = 0.0f;
  encoder::EncoderSuite suite(suite_config);

  // Structure: a few PPSR steps on a tiny corpus (we only need the weights
  // to round-trip, not to be good).
  {
    data::PairDatasetOptions pair_options;
    pair_options.num_pairs = 30;
    pair_options.corpus.max_nodes = 15;
    const auto pairs = data::BuildCorpusPairDataset(pair_options);
    util::Rng rng(2);
    encoder::PpsrModel ppsr(
        std::make_unique<encoder::TransformerPlanEncoder>(
            suite_config.structure, &rng),
        &rng);
    encoder::PpsrTrainOptions options;
    options.epochs = 1;
    encoder::TrainPpsr(&ppsr, pairs.train, options);
    ASSERT_TRUE(nn::CopyParameters(
        *static_cast<const encoder::TransformerPlanEncoder*>(ppsr.encoder()),
        suite.structure()));
  }
  // Performance: train the scan encoder only (others keep init weights).
  {
    auto samples = data::ExtractOperatorSamples(executed, tpch.GetCatalog(),
                                                plan::OperatorGroup::kScan);
    ASSERT_GE(samples.size(), 50u);
    auto dataset = data::SplitOperatorSamples(std::move(samples), 3);
    encoder::PerfTrainOptions options;
    options.epochs = 10;
    encoder::TrainPerformanceEncoder(
        suite.performance(plan::OperatorGroup::kScan), dataset, options);
  }

  // ---- 3. Checkpoint and reload ----------------------------------------
  const std::string dir =
      (std::filesystem::temp_directory_path() / "qpe_integration").string();
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(suite.SaveToDirectory(dir));
  encoder::EncoderSuite::Config fresh_config = suite_config;
  fresh_config.seed = 999;
  encoder::EncoderSuite loaded(fresh_config);
  ASSERT_TRUE(loaded.LoadFromDirectory(dir));
  std::filesystem::remove_all(dir);

  // ---- 4. Downstream: latency prediction from the loaded suite ----------
  tasks::EmbeddingFeaturizer featurizer(
      loaded.FeaturizerConfig(&tpch.GetCatalog()));
  std::vector<simdb::ExecutedQuery> train, test;
  for (size_t i = 0; i < executed.size(); ++i) {
    (i % 5 == 0 ? test : train).push_back(executed[i].Clone());
  }
  util::Rng rng(4);
  tasks::LatencyPredictor predictor(&featurizer, 32, &rng);
  tasks::LatencyPredictor::TrainOptions latency_options;
  latency_options.epochs = 60;
  predictor.Train(train, latency_options);
  double mean = 0;
  for (const auto& record : train) mean += record.latency_ms;
  mean /= train.size();
  double mean_mae = 0;
  for (const auto& record : test) {
    mean_mae += std::abs(record.latency_ms - mean);
  }
  mean_mae /= test.size();
  EXPECT_LT(predictor.EvaluateMaeMs(test), mean_mae);

  // ---- 5. Downstream: classification from the same features -------------
  const auto features = featurizer.FeaturizeAll(executed);
  std::vector<int> labels;
  std::vector<int> unique_templates = {0, 2, 3, 5, 13, 17};
  for (const auto& record : executed) {
    for (size_t u = 0; u < unique_templates.size(); ++u) {
      if (unique_templates[u] == record.template_index) {
        labels.push_back(static_cast<int>(u));
      }
    }
  }
  ASSERT_EQ(labels.size(), executed.size());
  tasks::QueryClassifier::Config c_config;
  c_config.feature_dim = featurizer.FeatureDim();
  c_config.hidden_dim = 32;
  c_config.num_templates = 6;
  c_config.num_clusters = 3;
  c_config.template_to_cluster = {0, 0, 1, 1, 2, 2};
  tasks::QueryClassifier classifier(c_config, &rng);
  tasks::QueryClassifier::TrainOptions classifier_options;
  classifier_options.epochs = 25;
  classifier.Train(features, labels, classifier_options);
  const auto accuracy = classifier.Evaluate(features, labels);
  // Six very different TPC-H templates: near-perfect separation expected.
  EXPECT_GT(accuracy.template_accuracy, 0.8);
  EXPECT_GE(accuracy.cluster_accuracy, accuracy.template_accuracy);
}

}  // namespace
}  // namespace qpe
