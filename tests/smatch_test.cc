#include <memory>

#include "gtest/gtest.h"
#include "plan/plan_node.h"
#include "plan/taxonomy.h"
#include "smatch/smatch.h"
#include "util/rng.h"

namespace qpe::smatch {
namespace {

using plan::OperatorType;
using plan::PlanNode;

OperatorType Op(const std::string& token) { return OperatorType::Parse(token); }

std::unique_ptr<PlanNode> SmallPlanA() {
  auto root = std::make_unique<PlanNode>(Op("Sort"));
  PlanNode* join = root->AddChild(Op("Join-Hash"));
  join->AddChild(Op("Scan-Seq"));
  join->AddChild(Op("Scan-Index"));
  return root;
}

std::unique_ptr<PlanNode> SmallPlanB() {
  auto root = std::make_unique<PlanNode>(Op("Sort"));
  PlanNode* join = root->AddChild(Op("Join-Merge"));
  join->AddChild(Op("Scan-Seq"));
  join->AddChild(Op("Scan-Seq"));
  return root;
}

// Random tree over a small operator pool, for property sweeps.
std::unique_ptr<PlanNode> RandomTree(util::Rng* rng, int nodes) {
  static const char* kPool[] = {"Sort",       "Join-Hash", "Join-Merge",
                                "Loop-Nested", "Scan-Seq",  "Scan-Index",
                                "Aggregate-Hash", "Limit"};
  std::vector<PlanNode*> all;
  auto root = std::make_unique<PlanNode>(Op(kPool[rng->UniformInt(0, 7)]));
  all.push_back(root.get());
  for (int i = 1; i < nodes; ++i) {
    PlanNode* parent = all[rng->UniformInt(0, all.size() - 1)];
    all.push_back(parent->AddChild(Op(kPool[rng->UniformInt(0, 7)])));
  }
  return root;
}

TEST(SmatchTest, IdenticalPlansScoreOne) {
  const auto a = SmallPlanA();
  const auto b = a->Clone();
  const SmatchScore score = Score(*a, *b);
  EXPECT_DOUBLE_EQ(score.f1, 1.0);
  EXPECT_DOUBLE_EQ(score.precision, 1.0);
  EXPECT_DOUBLE_EQ(score.recall, 1.0);
}

TEST(SmatchTest, ScoreInUnitInterval) {
  const auto a = SmallPlanA();
  const auto b = SmallPlanB();
  const SmatchScore score = Score(*a, *b);
  EXPECT_GT(score.f1, 0.0);
  EXPECT_LT(score.f1, 1.0);
}

TEST(SmatchTest, CompletelyDifferentTypesStillMatchNilLevels) {
  // Two single-node plans with different L1 but both NIL L2/L3 share 2 of 3
  // instance triples.
  PlanNode a(Op("Sort"));
  PlanNode b(Op("Limit"));
  const SmatchScore score = Score(a, b);
  EXPECT_NEAR(score.f1, 2.0 / 3.0, 1e-9);
}

TEST(SmatchTest, SymmetricF1) {
  util::Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    const auto a = RandomTree(&rng, 8);
    const auto b = RandomTree(&rng, 11);
    const double ab = Score(*a, *b).f1;
    const double ba = Score(*b, *a).f1;
    EXPECT_NEAR(ab, ba, 1e-9);
  }
}

TEST(SmatchTest, PrecisionRecallSwapUnderArgumentSwap) {
  const auto a = SmallPlanA();
  auto b = SmallPlanA();
  b->AddChild(Op("Limit"));  // make sizes differ
  const SmatchScore ab = Score(*a, *b);
  const SmatchScore ba = Score(*b, *a);
  EXPECT_NEAR(ab.precision, ba.recall, 1e-9);
  EXPECT_NEAR(ab.recall, ba.precision, 1e-9);
}

TEST(SmatchTest, HillClimbMatchesExactOnSmallPlans) {
  util::Rng rng(7);
  for (int trial = 0; trial < 25; ++trial) {
    const auto a = RandomTree(&rng, 2 + trial % 6);
    const auto b = RandomTree(&rng, 2 + (trial * 3) % 6);
    const SmatchScore approx = Score(*a, *b);
    const SmatchScore exact = ScoreExact(*a, *b);
    // Hill climbing is a lower bound and usually equals the optimum here.
    EXPECT_LE(approx.matched_triples, exact.matched_triples);
    EXPECT_GE(approx.matched_triples, exact.matched_triples - 1);
  }
}

TEST(SmatchTest, ExactIdentityIsPerfect) {
  const auto a = SmallPlanA();
  EXPECT_DOUBLE_EQ(ScoreExact(*a, *a->Clone()).f1, 1.0);
}

TEST(SmatchTest, SubtreeScoresHigherThanUnrelated) {
  // A plan vs. the same plan with a small addition should be more similar
  // than the plan vs. a structurally different plan.
  const auto base = SmallPlanA();
  auto extended = SmallPlanA();
  extended->AddChild(Op("Limit"));
  const double close = Score(*base, *extended).f1;
  const double far = Score(*base, *SmallPlanB()).f1;
  EXPECT_GT(close, far);
}

TEST(SmatchTest, FlattenCountsNodesAndEdges) {
  const auto a = SmallPlanA();
  const FlatPlan flat = Flatten(*a);
  EXPECT_EQ(flat.types.size(), 4u);
  EXPECT_EQ(flat.edges.size(), 3u);
  EXPECT_EQ(flat.NumTriples(), 15);
}

TEST(SmatchTest, DeterministicAcrossCalls) {
  util::Rng rng(5);
  const auto a = RandomTree(&rng, 20);
  const auto b = RandomTree(&rng, 20);
  const double s1 = Score(*a, *b).f1;
  const double s2 = Score(*a, *b).f1;
  EXPECT_DOUBLE_EQ(s1, s2);
}

TEST(SmatchTest, LargePlansComplete) {
  util::Rng rng(11);
  const auto a = RandomTree(&rng, 150);
  const auto b = RandomTree(&rng, 180);
  const SmatchScore score = Score(*a, *b);
  EXPECT_GT(score.f1, 0.0);
  EXPECT_LE(score.f1, 1.0);
}

TEST(SmatchTest, EmptyRightPlanGivesZero) {
  const auto a = SmallPlanA();
  FlatPlan empty;
  const SmatchScore score = Score(Flatten(*a), empty);
  EXPECT_DOUBLE_EQ(score.f1, 0.0);
}

// Property sweep: restarts should never decrease the score.
class SmatchRestartTest : public ::testing::TestWithParam<int> {};

TEST_P(SmatchRestartTest, MoreRestartsNeverWorse) {
  util::Rng rng(31 + GetParam());
  const auto a = RandomTree(&rng, 12);
  const auto b = RandomTree(&rng, 14);
  SmatchOptions one;
  one.restarts = 1;
  SmatchOptions many;
  many.restarts = 8;
  EXPECT_GE(Score(*a, *b, many).matched_triples,
            Score(*a, *b, one).matched_triples);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmatchRestartTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace qpe::smatch
