// Parameterized property sweeps across workloads, templates, and
// configurations: invariants of the planner, executor, linearization,
// Smatch, and feature extraction that must hold for *every* query the
// system can produce.

#include <cmath>
#include <memory>
#include <set>
#include <tuple>

#include "catalog/schemas.h"
#include "config/lhs_sampler.h"
#include "data/features.h"
#include "data/plan_corpus.h"
#include "gtest/gtest.h"
#include "plan/linearize.h"
#include "plan/serialize.h"
#include "simdb/executor.h"
#include "simdb/planner.h"
#include "simdb/workloads.h"
#include "smatch/smatch.h"

namespace qpe {
namespace {

enum class WorkloadKind { kTpch, kTpcds, kJob, kSpatial };

std::unique_ptr<simdb::BenchmarkWorkload> MakeWorkload(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kTpch:
      return std::make_unique<simdb::TpchWorkload>(0.05);
    case WorkloadKind::kTpcds:
      return std::make_unique<simdb::TpcdsWorkload>(0.05);
    case WorkloadKind::kJob:
      return std::make_unique<simdb::JobWorkload>();
    case WorkloadKind::kSpatial:
      return std::make_unique<simdb::SpatialWorkload>(0.05);
  }
  return nullptr;
}

const char* KindName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kTpch: return "tpch";
    case WorkloadKind::kTpcds: return "tpcds";
    case WorkloadKind::kJob: return "job";
    case WorkloadKind::kSpatial: return "spatial";
  }
  return "?";
}

// (workload, config seed): every template of every workload is planned and
// executed under a random configuration, and all invariants are checked.
class PlanExecuteProperty
    : public ::testing::TestWithParam<std::tuple<WorkloadKind, int>> {};

TEST_P(PlanExecuteProperty, InvariantsHoldForEveryTemplate) {
  const auto [kind, config_seed] = GetParam();
  const auto workload = MakeWorkload(kind);
  config::LhsSampler sampler((util::Rng(config_seed)));
  const config::DbConfig db_config = sampler.Sample(1)[0];
  simdb::Planner planner(&workload->GetCatalog(), &db_config);
  simdb::ExecutorSim executor(&workload->GetCatalog(), &db_config);
  util::Rng rng(1000 + config_seed);

  // JOB has 113 templates; sample a subset to bound the sweep.
  const int step = workload->NumTemplates() > 30 ? 7 : 1;
  for (int t = 0; t < workload->NumTemplates(); t += step) {
    SCOPED_TRACE(std::string(KindName(kind)) + " " +
                 workload->TemplateName(t));
    const simdb::QuerySpec spec = workload->Instantiate(t, &rng);
    plan::Plan planned = planner.PlanQuery(spec);
    ASSERT_NE(planned.root, nullptr);

    // -- Planner invariants --
    // Every spec table is scanned exactly once.
    std::set<std::string> scanned;
    int scan_count = 0;
    planned.root->Visit([&](const plan::PlanNode& n) {
      if (plan::GroupOf(n.type()) == plan::OperatorGroup::kScan &&
          n.type().ToString() != "Scan-Index-Bitmap" &&
          n.props().actual_loops <= 1) {
        for (const auto& r : n.relations()) scanned.insert(r);
        ++scan_count;
      }
      // Estimates are sane everywhere.
      EXPECT_GE(n.props().plan_rows, 0);
      EXPECT_GE(n.props().plan_width, 0);
      EXPECT_GE(n.props().total_cost, 0);
      EXPECT_LE(n.props().startup_cost, n.props().total_cost + 1e-6);
      // Join nodes have exactly two children; scans are leaves or have the
      // bitmap-index child.
      if (plan::GroupOf(n.type()) == plan::OperatorGroup::kJoin) {
        EXPECT_EQ(n.children().size(), 2u) << n.type().ToString();
      }
    });
    (void)scan_count;

    // The linearization is valid and parses back.
    const auto tokens = plan::LinearizeDfsBracket(*planned.root);
    const plan::Taxonomy& tax = plan::Taxonomy::Get();
    int depth = 0;
    for (const auto& token : tokens) {
      if (token.level1 == tax.br_open()) ++depth;
      if (token.level1 == tax.br_close()) --depth;
      ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);

    // Serialization round trip preserves structure.
    const auto reparsed = plan::ParsePlanNode(
        plan::SerializePlanNode(*planned.root));
    ASSERT_NE(reparsed, nullptr);
    EXPECT_EQ(reparsed->NumNodes(), planned.root->NumNodes());

    // -- Executor invariants --
    util::Rng noise(t);
    const double latency =
        executor.Execute(&planned, spec.cardinality_seed, &noise);
    EXPECT_GT(latency, 0);
    EXPECT_TRUE(std::isfinite(latency));
    planned.root->Visit([&](const plan::PlanNode& n) {
      EXPECT_GE(n.props().actual_rows, 0);
      EXPECT_TRUE(std::isfinite(n.props().actual_total_time_ms));
      EXPECT_GE(n.props().actual_total_time_ms, 0);
      EXPECT_LE(n.props().actual_startup_time_ms,
                n.props().actual_total_time_ms + 1e-9);
      EXPECT_GE(n.props().shared_hit_blocks, 0);
      EXPECT_GE(n.props().shared_read_blocks, 0);
      // Feature extraction never produces NaNs or blow-ups.
      for (double f : data::NodeFeatures(n)) {
        EXPECT_TRUE(std::isfinite(f));
        EXPECT_LT(std::abs(f), 100.0);
      }
    });

    // Smatch self-similarity of a real plan is exactly 1.
    EXPECT_DOUBLE_EQ(
        smatch::Score(*planned.root, *planned.root->Clone()).f1, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, PlanExecuteProperty,
    ::testing::Combine(::testing::Values(WorkloadKind::kTpch,
                                         WorkloadKind::kTpcds,
                                         WorkloadKind::kJob,
                                         WorkloadKind::kSpatial),
                       ::testing::Values(1, 2, 3)),
    [](const auto& info) {
      return std::string(KindName(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// Knob monotonicity properties, swept over several query templates.
class KnobMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(KnobMonotonicity, LargerCacheNeverMuchSlower) {
  const int t = GetParam();
  simdb::TpchWorkload tpch(0.2);
  util::Rng rng(50 + t);
  const simdb::QuerySpec spec = tpch.Instantiate(t, &rng);

  auto latency = [&](double cache_scale) {
    config::DbConfig db_config;
    db_config.Set(config::Knob::kSharedBuffers, 16384 * cache_scale);
    db_config.Set(config::Knob::kEffectiveCacheSize, 65536 * cache_scale);
    simdb::Planner planner(&tpch.GetCatalog(), &db_config);
    simdb::ExecutorSim executor(&tpch.GetCatalog(), &db_config);
    plan::Plan planned = planner.PlanQuery(spec);
    util::Rng noise(7);  // same noise stream for both runs
    return executor.Execute(&planned, spec.cardinality_seed, &noise);
  };
  // A 1000x larger cache must never make the query substantially slower
  // (plan changes may shift work, hence the 10% tolerance).
  EXPECT_LT(latency(1000.0), latency(1.0) * 1.10) << "template " << t;
}

INSTANTIATE_TEST_SUITE_P(TpchTemplates, KnobMonotonicity,
                         ::testing::Values(0, 2, 4, 8, 9, 12, 17, 21));

// Smatch metric properties over random plan pairs.
class SmatchMetricProperty : public ::testing::TestWithParam<int> {};

TEST_P(SmatchMetricProperty, BoundsSymmetryIdentity) {
  util::Rng rng(300 + GetParam());
  data::CorpusOptions options;
  options.min_nodes = 3;
  options.max_nodes = 30;
  data::RandomPlanGenerator generator(rng.Fork(), options);
  const auto a = generator.Generate();
  const auto b = generator.Generate();

  const smatch::SmatchScore ab = smatch::Score(*a, *b);
  EXPECT_GE(ab.f1, 0.0);
  EXPECT_LE(ab.f1, 1.0);
  EXPECT_NEAR(ab.f1, smatch::Score(*b, *a).f1, 1e-9);
  EXPECT_DOUBLE_EQ(smatch::Score(*a, *a->Clone()).f1, 1.0);
  // F1 is the harmonic mean of precision and recall.
  if (ab.precision + ab.recall > 0) {
    EXPECT_NEAR(ab.f1,
                2 * ab.precision * ab.recall / (ab.precision + ab.recall),
                1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmatchMetricProperty, ::testing::Range(0, 12));

}  // namespace
}  // namespace qpe
