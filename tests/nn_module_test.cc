#include <cmath>
#include <memory>
#include <sstream>

#include "gtest/gtest.h"
#include "nn/loss.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "nn/transformer.h"
#include "util/rng.h"

namespace qpe::nn {
namespace {

TEST(LinearTest, ShapesAndParameterCount) {
  util::Rng rng(1);
  Linear layer(4, 3, &rng);
  EXPECT_EQ(layer.ParameterCount(), 4 * 3 + 3);
  const Tensor y = layer.Forward(Tensor::Zeros(5, 4));
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 3);
}

TEST(MlpTest, LearnsLinearFunction) {
  util::Rng rng(2);
  Mlp mlp({2, 16, 1}, Activation::kRelu, Activation::kNone, &rng);
  Adam opt(mlp.Parameters(), 0.01f);
  // y = 2x0 - 3x1 + 1
  std::vector<float> xs, ys;
  for (int i = 0; i < 64; ++i) {
    const float x0 = static_cast<float>(rng.Uniform(-1, 1));
    const float x1 = static_cast<float>(rng.Uniform(-1, 1));
    xs.push_back(x0);
    xs.push_back(x1);
    ys.push_back(2 * x0 - 3 * x1 + 1);
  }
  const Tensor x = Tensor::FromVector(64, 2, xs);
  const Tensor y = Tensor::FromVector(64, 1, ys);
  float final_loss = 1e9f;
  for (int epoch = 0; epoch < 300; ++epoch) {
    const Tensor loss = MseLoss(mlp.Forward(x), y);
    opt.ZeroGrad();
    loss.Backward();
    opt.Step();
    final_loss = loss.value()[0];
  }
  EXPECT_LT(final_loss, 0.01f);
}

TEST(MlpTest, LearnsXor) {
  util::Rng rng(3);
  Mlp mlp({2, 8, 1}, Activation::kTanh, Activation::kSigmoid, &rng);
  Adam opt(mlp.Parameters(), 0.05f);
  const Tensor x = Tensor::FromVector(4, 2, {0, 0, 0, 1, 1, 0, 1, 1});
  const Tensor y = Tensor::FromVector(4, 1, {0, 1, 1, 0});
  for (int epoch = 0; epoch < 500; ++epoch) {
    const Tensor loss = BceLoss(mlp.Forward(x), y);
    opt.ZeroGrad();
    loss.Backward();
    opt.Step();
  }
  const Tensor pred = mlp.Forward(x);
  EXPECT_LT(pred.at(0, 0), 0.2f);
  EXPECT_GT(pred.at(1, 0), 0.8f);
  EXPECT_GT(pred.at(2, 0), 0.8f);
  EXPECT_LT(pred.at(3, 0), 0.2f);
}

TEST(EmbeddingTest, GathersAndTrains) {
  util::Rng rng(4);
  Embedding embedding(10, 4, &rng);
  const Tensor e = embedding.Forward({1, 5, 1});
  EXPECT_EQ(e.rows(), 3);
  EXPECT_EQ(e.cols(), 4);
  // Rows 0 and 2 identical (same token).
  for (int c = 0; c < 4; ++c) EXPECT_FLOAT_EQ(e.at(0, c), e.at(2, c));
}

TEST(LayerNormTest, NormalizesRows) {
  util::Rng rng(5);
  LayerNorm norm(8);
  Tensor x = Tensor::Zeros(3, 8);
  for (float& v : x.value()) v = static_cast<float>(rng.Uniform(-5, 5));
  const Tensor y = norm.Forward(x);
  for (int r = 0; r < 3; ++r) {
    float mean = 0, var = 0;
    for (int c = 0; c < 8; ++c) mean += y.at(r, c);
    mean /= 8;
    for (int c = 0; c < 8; ++c) var += (y.at(r, c) - mean) * (y.at(r, c) - mean);
    var /= 8;
    EXPECT_NEAR(mean, 0.0f, 1e-4f);
    EXPECT_NEAR(var, 1.0f, 1e-2f);
  }
}

TEST(BatchNormTest, TrainNormalizesAndEvalUsesRunningStats) {
  util::Rng rng(6);
  BatchNorm1d norm(4);
  norm.SetTraining(true);
  Tensor x = Tensor::Zeros(32, 4);
  for (float& v : x.value()) v = static_cast<float>(rng.Uniform(5, 9));
  for (int i = 0; i < 50; ++i) norm.Forward(x);  // warm running stats
  const Tensor y_train = norm.Forward(x);
  float mean = 0;
  for (int r = 0; r < 32; ++r) mean += y_train.at(r, 0);
  EXPECT_NEAR(mean / 32, 0.0f, 1e-3f);

  norm.SetTraining(false);
  const Tensor y_eval = norm.Forward(SliceRows(x, 0, 1));
  // Eval output is near the train-normalized value for the same row.
  EXPECT_NEAR(y_eval.at(0, 0), y_train.at(0, 0), 0.3f);
}

TEST(ModuleTest, NamedParametersStable) {
  util::Rng rng(7);
  Mlp mlp({2, 4, 1}, Activation::kRelu, Activation::kNone, &rng);
  const auto named = mlp.NamedParameters();
  ASSERT_EQ(named.size(), 4u);
  EXPECT_EQ(named[0].first, "layer0.weight");
  EXPECT_EQ(named[1].first, "layer0.bias");
  EXPECT_EQ(named[2].first, "layer1.weight");
  EXPECT_EQ(named[3].first, "layer1.bias");
}

TEST(SerializeTest, SaveLoadRoundTrip) {
  util::Rng rng(8);
  Mlp source({3, 8, 2}, Activation::kRelu, Activation::kNone, &rng);
  Mlp dest({3, 8, 2}, Activation::kRelu, Activation::kNone, &rng);
  std::stringstream buffer;
  SaveModule(source, buffer);
  ASSERT_TRUE(LoadModule(&dest, buffer));
  const Tensor x = Tensor::FromVector(1, 3, {0.5f, -0.2f, 1.0f});
  const Tensor ys = source.Forward(x);
  const Tensor yd = dest.Forward(x);
  for (int c = 0; c < 2; ++c) EXPECT_FLOAT_EQ(ys.at(0, c), yd.at(0, c));
}

TEST(SerializeTest, ShapeMismatchRejected) {
  util::Rng rng(9);
  Mlp source({3, 8, 2}, Activation::kRelu, Activation::kNone, &rng);
  Mlp wrong({3, 9, 2}, Activation::kRelu, Activation::kNone, &rng);
  std::stringstream buffer;
  SaveModule(source, buffer);
  EXPECT_FALSE(LoadModule(&wrong, buffer));
}

TEST(SerializeTest, CopyParameters) {
  util::Rng rng(10);
  Mlp source({2, 4, 1}, Activation::kRelu, Activation::kNone, &rng);
  Mlp dest({2, 4, 1}, Activation::kRelu, Activation::kNone, &rng);
  ASSERT_TRUE(CopyParameters(source, &dest));
  const Tensor x = Tensor::FromVector(1, 2, {1.0f, 2.0f});
  EXPECT_FLOAT_EQ(source.Forward(x).at(0, 0), dest.Forward(x).at(0, 0));
}

TEST(OptimizerTest, SgdReducesQuadratic) {
  Tensor w = Tensor::Scalar(5.0f, true);
  Sgd opt({w}, 0.1f);
  for (int i = 0; i < 100; ++i) {
    const Tensor loss = Square(w);
    opt.ZeroGrad();
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(w.value()[0], 0.0f, 1e-3f);
}

TEST(OptimizerTest, SgdMomentumConverges) {
  Tensor w = Tensor::Scalar(5.0f, true);
  Sgd opt({w}, 0.05f, 0.9f);
  for (int i = 0; i < 200; ++i) {
    const Tensor loss = Square(w);
    opt.ZeroGrad();
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(w.value()[0], 0.0f, 1e-2f);
}

TEST(OptimizerTest, AdamConvergesOnIllConditioned) {
  Tensor w = Tensor::FromVector(1, 2, {5.0f, 5.0f}, true);
  Adam opt({w}, 0.1f);
  const Tensor scale = Tensor::FromVector(1, 2, {100.0f, 0.01f});
  for (int i = 0; i < 500; ++i) {
    const Tensor loss = Sum(Mul(scale, Square(w)));
    opt.ZeroGrad();
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(w.value()[0], 0.0f, 0.05f);
  EXPECT_NEAR(w.value()[1], 0.0f, 0.6f);
}

TEST(TransformerTest, AttentionShapePreserved) {
  util::Rng rng(11);
  MultiHeadSelfAttention attention(16, 4, &rng);
  const Tensor y = attention.Forward(Tensor::Zeros(7, 16));
  EXPECT_EQ(y.rows(), 7);
  EXPECT_EQ(y.cols(), 16);
}

TEST(TransformerTest, EncoderForwardAndGradFlow) {
  util::Rng rng(12);
  TransformerEncoder encoder(16, 4, 32, 2, 50, 0.0f, &rng);
  Tensor x = Tensor::Zeros(9, 16, /*requires_grad=*/true);
  for (float& v : x.value()) v = static_cast<float>(rng.Uniform(-1, 1));
  const Tensor y = encoder.Forward(x, nullptr);
  EXPECT_EQ(y.rows(), 9);
  EXPECT_EQ(y.cols(), 16);
  Tensor loss = Mean(Square(y));
  encoder.ZeroGrad();
  loss.Backward();
  float grad_norm = 0;
  for (const Tensor& p : encoder.Parameters()) {
    for (float g : p.grad()) grad_norm += g * g;
  }
  EXPECT_GT(grad_norm, 0.0f);
}

TEST(TransformerTest, LearnsToCountToken) {
  // Tiny sanity task: predict (scaled) count of token-1 embeddings in the
  // sequence from the first position's output.
  util::Rng rng(13);
  Embedding embedding(3, 8, &rng);
  TransformerEncoder encoder(8, 2, 16, 1, 20, 0.0f, &rng);
  Linear head(8, 1, &rng);
  std::vector<Tensor> params = embedding.Parameters();
  for (const Tensor& p : encoder.Parameters()) params.push_back(p);
  for (const Tensor& p : head.Parameters()) params.push_back(p);
  Adam opt(params, 0.01f);

  auto make_seq = [&](int count) {
    std::vector<int> tokens(10, 0);
    tokens[0] = 2;  // CLS-ish marker
    for (int i = 0; i < count; ++i) tokens[1 + i] = 1;
    return tokens;
  };
  float final_loss = 1e9f;
  for (int epoch = 0; epoch < 150; ++epoch) {
    Tensor total = Tensor::Scalar(0.0f);
    for (int count = 0; count <= 8; ++count) {
      const Tensor h = encoder.Forward(embedding.Forward(make_seq(count)),
                                       nullptr);
      const Tensor pred = head.Forward(SliceRows(h, 0, 1));
      const Tensor target = Tensor::Scalar(count / 8.0f);
      total = Add(total, Square(Sub(pred, target)));
    }
    const Tensor loss = Scale(total, 1.0f / 9.0f);
    opt.ZeroGrad();
    loss.Backward();
    opt.Step();
    final_loss = loss.value()[0];
  }
  EXPECT_LT(final_loss, 0.01f);
}

TEST(LstmTest, ShapesAndFinalState) {
  util::Rng rng(14);
  Lstm lstm(4, 6, &rng);
  Tensor x = Tensor::Zeros(5, 4);
  for (float& v : x.value()) v = static_cast<float>(rng.Uniform(-1, 1));
  const Tensor all = lstm.ForwardAll(x);
  EXPECT_EQ(all.rows(), 5);
  EXPECT_EQ(all.cols(), 6);
  const Tensor last = lstm.Forward(x);
  for (int c = 0; c < 6; ++c) EXPECT_FLOAT_EQ(last.at(0, c), all.at(4, c));
}

TEST(LstmTest, LearnsParity) {
  // Classic LSTM sanity check: parity of a bit sequence.
  util::Rng rng(15);
  Lstm lstm(1, 8, &rng);
  Linear head(8, 1, &rng);
  std::vector<Tensor> params = lstm.Parameters();
  for (const Tensor& p : head.Parameters()) params.push_back(p);
  Adam opt(params, 0.02f);
  float final_loss = 1e9f;
  for (int epoch = 0; epoch < 250; ++epoch) {
    util::Rng data_rng(100);  // fixed small dataset
    Tensor total = Tensor::Scalar(0.0f);
    const int kExamples = 16;
    for (int e = 0; e < kExamples; ++e) {
      const int len = 4;
      std::vector<float> bits(len);
      int parity = 0;
      for (int i = 0; i < len; ++i) {
        bits[i] = data_rng.Bernoulli(0.5) ? 1.0f : 0.0f;
        parity ^= static_cast<int>(bits[i]);
      }
      const Tensor x = Tensor::FromVector(len, 1, bits);
      const Tensor prob = Sigmoid(head.Forward(lstm.Forward(x)));
      const Tensor target = Tensor::Scalar(static_cast<float>(parity));
      total = Add(total, BceLoss(prob, target));
    }
    const Tensor loss = Scale(total, 1.0f / kExamples);
    opt.ZeroGrad();
    loss.Backward();
    ClipGradNorm(params, 5.0f);
    opt.Step();
    final_loss = loss.value()[0];
  }
  EXPECT_LT(final_loss, 0.15f);
}

}  // namespace
}  // namespace qpe::nn
