#include "catalog/catalog.h"
#include "catalog/schemas.h"
#include "gtest/gtest.h"

namespace qpe::catalog {
namespace {

TEST(CatalogTest, TableLookup) {
  Catalog catalog("test", 1.0);
  TableStats t;
  t.name = "foo";
  t.row_count = 100;
  t.columns = {{"a", 10, 0, 4, 0, true}};
  catalog.AddTable(t);
  ASSERT_NE(catalog.FindTable("foo"), nullptr);
  EXPECT_EQ(catalog.FindTable("bar"), nullptr);
  EXPECT_EQ(catalog.FindTable("foo")->IndexedColumnCount(), 1);
}

TEST(CatalogTest, PageCountFromWidth) {
  TableStats t;
  t.name = "t";
  t.row_count = 1000;
  t.columns = {{"a", 10, 0, 100, 0, false}};
  // 1000 rows * (24 header + 100) bytes = 124000 bytes -> ceil(/8192) = 16.
  EXPECT_DOUBLE_EQ(t.RowWidth(), 124.0);
  EXPECT_DOUBLE_EQ(t.PageCount(), 16.0);
}

TEST(CatalogTest, EmptyTableStillOnePage) {
  TableStats t;
  t.name = "t";
  t.row_count = 0;
  EXPECT_DOUBLE_EQ(t.PageCount(), 1.0);
}

TEST(CatalogTest, MetaFeaturesFixedDim) {
  const Catalog catalog = MakeTpchCatalog(1.0);
  EXPECT_EQ(static_cast<int>(catalog.MetaFeatures({"lineitem"}).size()),
            Catalog::kMetaFeatureDim);
  EXPECT_EQ(static_cast<int>(catalog.MetaFeatures({}).size()),
            Catalog::kMetaFeatureDim);
  EXPECT_EQ(static_cast<int>(catalog.MetaFeatures({"no_such_table"}).size()),
            Catalog::kMetaFeatureDim);
}

TEST(CatalogTest, MetaFeaturesMonotoneInRelations) {
  const Catalog catalog = MakeTpchCatalog(1.0);
  const auto one = catalog.MetaFeatures({"lineitem"});
  const auto two = catalog.MetaFeatures({"lineitem", "orders"});
  EXPECT_GT(two[0], one[0]);  // rows feature grows
  EXPECT_GT(two[1], one[1]);  // pages feature grows
}

TEST(SchemasTest, TpchHasEightTables) {
  const Catalog catalog = MakeTpchCatalog(1.0);
  EXPECT_EQ(catalog.tables().size(), 8u);
  ASSERT_NE(catalog.FindTable("lineitem"), nullptr);
  EXPECT_DOUBLE_EQ(catalog.FindTable("lineitem")->row_count, 6000000.0);
  EXPECT_DOUBLE_EQ(catalog.FindTable("region")->row_count, 5.0);
  EXPECT_FALSE(catalog.spatial());
}

TEST(SchemasTest, TpchScalesLinearly) {
  const Catalog sf1 = MakeTpchCatalog(1.0);
  const Catalog sf10 = MakeTpchCatalog(10.0);
  EXPECT_DOUBLE_EQ(sf10.FindTable("lineitem")->row_count,
                   10.0 * sf1.FindTable("lineitem")->row_count);
  // Fixed-size tables don't scale.
  EXPECT_DOUBLE_EQ(sf10.FindTable("nation")->row_count, 25.0);
}

TEST(SchemasTest, TpcdsHasFactAndDimTables) {
  const Catalog catalog = MakeTpcdsCatalog(1.0);
  EXPECT_GE(catalog.tables().size(), 15u);
  ASSERT_NE(catalog.FindTable("store_sales"), nullptr);
  ASSERT_NE(catalog.FindTable("date_dim"), nullptr);
  EXPECT_GT(catalog.FindTable("store_sales")->row_count,
            catalog.FindTable("store")->row_count);
}

TEST(SchemasTest, ImdbHasTwentyOneTables) {
  const Catalog catalog = MakeImdbCatalog();
  EXPECT_EQ(catalog.tables().size(), 21u);
  ASSERT_NE(catalog.FindTable("cast_info"), nullptr);
  ASSERT_NE(catalog.FindTable("title"), nullptr);
  EXPECT_GT(catalog.FindTable("cast_info")->row_count, 3e7);
}

TEST(SchemasTest, SpatialFlaggedAndHasGeomColumns) {
  const Catalog catalog = MakeSpatialCatalog(1.0);
  EXPECT_TRUE(catalog.spatial());
  for (const char* name : {"arealm", "edges", "osm_points", "osm_polygons"}) {
    const TableStats* table = catalog.FindTable(name);
    ASSERT_NE(table, nullptr) << name;
    EXPECT_NE(table->FindColumn("geom"), nullptr) << name;
    EXPECT_TRUE(table->FindColumn("geom")->indexed) << name;
  }
}

TEST(SchemasTest, AllColumnsHavePositiveNdv) {
  for (const Catalog& catalog :
       {MakeTpchCatalog(1.0), MakeTpcdsCatalog(1.0), MakeImdbCatalog(),
        MakeSpatialCatalog(1.0)}) {
    for (const TableStats& table : catalog.tables()) {
      EXPECT_GT(table.row_count, 0) << table.name;
      for (const ColumnStats& col : table.columns) {
        EXPECT_GE(col.ndv, 1.0) << table.name << "." << col.name;
        EXPECT_GE(col.null_frac, 0.0);
        EXPECT_LE(col.null_frac, 1.0);
      }
    }
  }
}

}  // namespace
}  // namespace qpe::catalog
