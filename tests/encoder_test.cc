#include <cmath>
#include <memory>
#include <sstream>

#include "config/lhs_sampler.h"
#include "data/datasets.h"
#include "data/features.h"
#include "data/plan_corpus.h"
#include "encoder/performance_encoder.h"
#include "encoder/ppsr.h"
#include "encoder/structure_encoder.h"
#include "gtest/gtest.h"
#include "nn/serialize.h"
#include "simdb/workloads.h"
#include "simdb/workload_runner.h"

namespace qpe::encoder {
namespace {

StructureEncoderConfig SmallConfig() {
  StructureEncoderConfig config;
  config.level1_dim = 12;
  config.level2_dim = 6;
  config.level3_dim = 6;
  config.num_heads = 2;
  config.ff_dim = 32;
  config.num_layers = 1;
  config.max_len = 128;
  config.dropout = 0.0f;
  return config;
}

std::unique_ptr<plan::PlanNode> SamplePlan(uint64_t seed, int max_nodes = 20) {
  data::CorpusOptions options;
  options.min_nodes = 4;
  options.max_nodes = max_nodes;
  data::RandomPlanGenerator generator(util::Rng(seed), options);
  return generator.Generate();
}

TEST(TokenIdsTest, SplitsLevels) {
  const auto plan = SamplePlan(1);
  const auto tokens = plan::LinearizeDfsBracket(*plan);
  const TokenIds ids = TokensToIds(tokens);
  EXPECT_EQ(ids.level1.size(), tokens.size());
  EXPECT_EQ(ids.level2.size(), tokens.size());
  EXPECT_EQ(ids.level3.size(), tokens.size());
}

TEST(BagOfTokensTest, NormalizedCounts) {
  const auto plan = SamplePlan(2);
  const auto bag = BagOfTokens(*plan);
  EXPECT_EQ(static_cast<int>(bag.size()), BagOfTokensDim());
  // Each level's counts sum to ~1 (normalized by node count).
  const plan::Taxonomy& tax = plan::Taxonomy::Get();
  double level1_sum = 0;
  for (int i = 0; i < tax.Level1Count(); ++i) level1_sum += bag[i];
  EXPECT_NEAR(level1_sum, 1.0, 1e-9);
}

TEST(TransformerPlanEncoderTest, OutputShape) {
  util::Rng rng(3);
  TransformerPlanEncoder encoder(SmallConfig(), &rng);
  const auto plan = SamplePlan(4);
  const nn::Tensor embedding = encoder.Encode(*plan, nullptr);
  EXPECT_EQ(embedding.rows(), 1);
  EXPECT_EQ(embedding.cols(), SmallConfig().ModelDim());
}

TEST(TransformerPlanEncoderTest, ProjectionChangesOutputDim) {
  StructureEncoderConfig config = SmallConfig();
  config.output_dim = 10;
  util::Rng rng(4);
  TransformerPlanEncoder encoder(config, &rng);
  EXPECT_EQ(encoder.output_dim(), 10);
  const auto plan = SamplePlan(5);
  EXPECT_EQ(encoder.Encode(*plan, nullptr).cols(), 10);
}

TEST(TransformerPlanEncoderTest, DeterministicInEval) {
  util::Rng rng(5);
  TransformerPlanEncoder encoder(SmallConfig(), &rng);
  const auto plan = SamplePlan(6);
  const nn::Tensor a = encoder.Encode(*plan, nullptr);
  const nn::Tensor b = encoder.Encode(*plan, nullptr);
  for (int c = 0; c < a.cols(); ++c) EXPECT_FLOAT_EQ(a.at(0, c), b.at(0, c));
}

TEST(TransformerPlanEncoderTest, DifferentPlansDifferentEmbeddings) {
  util::Rng rng(6);
  TransformerPlanEncoder encoder(SmallConfig(), &rng);
  const auto pa = SamplePlan(7);
  const auto pb = SamplePlan(8);
  const nn::Tensor a = encoder.Encode(*pa, nullptr);
  const nn::Tensor b = encoder.Encode(*pb, nullptr);
  double diff = 0;
  for (int c = 0; c < a.cols(); ++c) diff += std::abs(a.at(0, c) - b.at(0, c));
  EXPECT_GT(diff, 1e-4);
}

TEST(LstmPlanEncoderTest, OutputShape) {
  util::Rng rng(9);
  LstmPlanEncoder encoder(SmallConfig(), &rng);
  const auto plan = SamplePlan(10);
  const nn::Tensor embedding = encoder.Encode(*plan, nullptr);
  EXPECT_EQ(embedding.rows(), 1);
  EXPECT_EQ(embedding.cols(), SmallConfig().ModelDim());
}

TEST(FnnPlanEncoderTest, OutputShape) {
  util::Rng rng(11);
  FnnPlanEncoder encoder(16, 8, &rng);
  const auto plan = SamplePlan(12);
  EXPECT_EQ(encoder.Encode(*plan, nullptr).cols(), 8);
}

TEST(SparseAutoencoderTest, PretrainingReducesReconstruction) {
  util::Rng rng(13);
  SparseAutoencoder autoencoder(12, &rng);
  std::vector<std::unique_ptr<plan::PlanNode>> owned;
  std::vector<const plan::PlanNode*> plans;
  for (int i = 0; i < 20; ++i) {
    owned.push_back(SamplePlan(100 + i));
    plans.push_back(owned.back().get());
  }
  double before = 0;
  for (const auto* p : plans) {
    before += autoencoder.ReconstructionLoss(*p).value()[0];
  }
  PretrainSparseAutoencoder(&autoencoder, plans, 40, 5e-3f, 1);
  double after = 0;
  for (const auto* p : plans) {
    after += autoencoder.ReconstructionLoss(*p).value()[0];
  }
  EXPECT_LT(after, before * 0.5);
}

TEST(PpsrTest, TrainingReducesLossAndBeatsMeanPredictor) {
  data::PairDatasetOptions options;
  options.num_pairs = 66;
  options.corpus.min_nodes = 4;
  options.corpus.max_nodes = 16;
  const data::PlanPairDataset dataset = BuildCorpusPairDataset(options);

  util::Rng rng(14);
  PpsrModel model(std::make_unique<TransformerPlanEncoder>(SmallConfig(), &rng),
                  &rng);
  const double untrained_mae = EvaluatePpsrMae(model, dataset.train);
  PpsrTrainOptions train_options;
  train_options.epochs = 6;
  TrainPpsr(&model, dataset.train, train_options);
  const double trained_mae = EvaluatePpsrMae(model, dataset.train);
  EXPECT_LT(trained_mae, untrained_mae);

  // Beats always-predicting-the-mean on train data.
  double mean = 0;
  for (const auto& pair : dataset.train) mean += pair.smatch;
  mean /= dataset.train.size();
  double mean_mae = 0;
  for (const auto& pair : dataset.train) mean_mae += std::abs(pair.smatch - mean);
  mean_mae /= dataset.train.size();
  EXPECT_LT(trained_mae, mean_mae);
}

TEST(PpsrTest, FrozenEncoderTrainsOnlyHead) {
  util::Rng rng(15);
  PpsrModel model(std::make_unique<FnnPlanEncoder>(16, 8, &rng), &rng);
  const auto before = model.encoder()->NamedParameters();
  std::vector<std::vector<float>> encoder_values;
  for (const auto& [name, tensor] : before) encoder_values.push_back(tensor.value());

  data::PairDatasetOptions options;
  options.num_pairs = 22;
  options.corpus.max_nodes = 12;
  const data::PlanPairDataset dataset = BuildCorpusPairDataset(options);
  PpsrTrainOptions train_options;
  train_options.epochs = 2;
  train_options.freeze_encoder = true;
  TrainPpsr(&model, dataset.train, train_options);

  const auto after = model.encoder()->NamedParameters();
  for (size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i].second.value(), encoder_values[i]) << "param " << i;
  }
}

TEST(PpsrTest, PredictionInUnitInterval) {
  util::Rng rng(16);
  PpsrModel model(std::make_unique<TransformerPlanEncoder>(SmallConfig(), &rng),
                  &rng);
  const auto pa = SamplePlan(17);
  const auto pb = SamplePlan(18);
  const float pred = model.PredictSimilarity(*pa, *pb, nullptr).value()[0];
  EXPECT_GT(pred, 0.0f);
  EXPECT_LT(pred, 1.0f);
}

// --- Performance encoder ---

data::OperatorDataset MakeScanDataset() {
  const simdb::TpchWorkload tpch(0.05);
  config::LhsSampler sampler((util::Rng(19)));
  const auto configs = sampler.Sample(6);
  simdb::RunOptions run_options;
  run_options.instances_per_template = 2;
  const auto executed =
      simdb::RunWorkloadTemplates(tpch, {0, 2, 3, 5}, configs, run_options);
  auto samples = data::ExtractOperatorSamples(executed, tpch.GetCatalog(),
                                              plan::OperatorGroup::kScan);
  return data::SplitOperatorSamples(std::move(samples), 20);
}

PerfEncoderConfig SmallPerfConfig() {
  PerfEncoderConfig config;
  config.node_dim = data::kNodeFeatureDim;
  config.meta_dim = catalog::Catalog::kMetaFeatureDim;
  config.db_dim = config::DbConfig::FeatureDim();
  config.column_hidden = 16;
  config.embed_dim = 16;
  return config;
}

TEST(PerformanceEncoderTest, EmbeddingShape) {
  util::Rng rng(21);
  PerformanceEncoder model(SmallPerfConfig(), &rng);
  const data::OperatorDataset dataset = MakeScanDataset();
  ASSERT_GE(dataset.train.size(), 4u);
  const encoder::PerfBatch batch =
      MakePerfBatch(dataset.train, {0, 1, 2, 3});
  const nn::Tensor embedding = model.Embed(batch.node, batch.meta, batch.db);
  EXPECT_EQ(embedding.rows(), 4);
  EXPECT_EQ(embedding.cols(), 16);
  EXPECT_EQ(model.PredictLabels(embedding).cols(), 3);
}

TEST(PerformanceEncoderTest, TrainingReducesMae) {
  util::Rng rng(22);
  PerformanceEncoder model(SmallPerfConfig(), &rng);
  const data::OperatorDataset dataset = MakeScanDataset();
  const double before = EvaluatePerfMaeMs(model, dataset.train);
  PerfTrainOptions options;
  options.epochs = 15;
  const auto history = TrainPerformanceEncoder(&model, dataset, options);
  EXPECT_EQ(static_cast<int>(history.size()), 15);
  EXPECT_LT(history.back().train_mae_ms, before);
  // Convergence: last epoch no worse than 4x the first epoch (noisy data).
  EXPECT_LT(history.back().train_mae_ms, history.front().train_mae_ms * 4);
}

TEST(PerformanceEncoderTest, EarlyStoppingHonoursPatience) {
  util::Rng rng(23);
  PerformanceEncoder model(SmallPerfConfig(), &rng);
  const data::OperatorDataset dataset = MakeScanDataset();
  PerfTrainOptions options;
  options.epochs = 50;
  options.patience_epochs = 3;
  const auto history = TrainPerformanceEncoder(&model, dataset, options);
  EXPECT_LE(static_cast<int>(history.size()), 50);
}

TEST(PerformanceEncoderTest, SingleColumnVariantTrains) {
  util::Rng rng(24);
  SingleColumnPerformanceEncoder model(SmallPerfConfig(), &rng);
  const data::OperatorDataset dataset = MakeScanDataset();
  PerfTrainOptions options;
  options.epochs = 5;
  const auto history = TrainPerformanceEncoder(&model, dataset, options);
  EXPECT_FALSE(history.empty());
  EXPECT_GT(history.back().train_mae_ms, 0);
}

TEST(PerformanceEncoderTest, PretrainedWeightsTransfer) {
  util::Rng rng(25);
  PerformanceEncoder pretrained(SmallPerfConfig(), &rng);
  const data::OperatorDataset dataset = MakeScanDataset();
  PerfTrainOptions options;
  options.epochs = 8;
  TrainPerformanceEncoder(&pretrained, dataset, options);

  util::Rng rng2(26);
  PerformanceEncoder finetune(SmallPerfConfig(), &rng2);
  ASSERT_TRUE(nn::CopyParameters(pretrained, &finetune));
  EXPECT_NEAR(EvaluatePerfMaeMs(pretrained, dataset.test),
              EvaluatePerfMaeMs(finetune, dataset.test), 1e-6);
}

TEST(PerformanceEncoderTest, SerializationRoundTrip) {
  util::Rng rng(27);
  PerformanceEncoder source(SmallPerfConfig(), &rng);
  util::Rng rng2(28);
  PerformanceEncoder dest(SmallPerfConfig(), &rng2);
  std::stringstream buffer;
  nn::SaveModule(source, buffer);
  ASSERT_TRUE(nn::LoadModule(&dest, buffer));
  const data::OperatorDataset dataset = MakeScanDataset();
  EXPECT_NEAR(EvaluatePerfMaeMs(source, dataset.test),
              EvaluatePerfMaeMs(dest, dataset.test), 1e-6);
}

}  // namespace
}  // namespace qpe::encoder
