#include <cstdio>
#include <fstream>
#include <sstream>
#include <filesystem>

#include "config/lhs_sampler.h"
#include "data/dataset_io.h"
#include "gtest/gtest.h"
#include "plan/serialize.h"
#include "util/fault_injection.h"
#include "util/status.h"
#include "simdb/workload_runner.h"
#include "simdb/workloads.h"
#include "util/table_printer.h"

namespace qpe::data {
namespace {

std::vector<simdb::ExecutedQuery> SmallDataset() {
  const simdb::TpchWorkload tpch(0.05);
  config::LhsSampler sampler((util::Rng(1)));
  simdb::RunOptions options;
  return simdb::RunWorkloadTemplates(tpch, {0, 2}, sampler.Sample(3), options);
}

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(DatasetIoTest, RoundTripPreservesEverything) {
  const auto original = SmallDataset();
  const std::string path = TempPath("qpe_dataset_io_test.txt");
  ASSERT_TRUE(SaveExecutedQueries(original, path));
  bool ok = false;
  const auto loaded = LoadExecutedQueries(path, &ok);
  ASSERT_TRUE(ok);
  ASSERT_EQ(loaded.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i].latency_ms, original[i].latency_ms);
    EXPECT_EQ(loaded[i].template_index, original[i].template_index);
    EXPECT_EQ(loaded[i].instance_index, original[i].instance_index);
    EXPECT_EQ(loaded[i].query.NumNodes(), original[i].query.NumNodes());
    EXPECT_EQ(loaded[i].query.benchmark, original[i].query.benchmark);
    for (int k = 0; k < config::kNumKnobs; ++k) {
      EXPECT_NEAR(loaded[i].db_config.Get(static_cast<config::Knob>(k)),
                  original[i].db_config.Get(static_cast<config::Knob>(k)),
                  std::abs(original[i].db_config.Get(
                      static_cast<config::Knob>(k))) * 1e-5);
    }
    // Actual properties survive (the encoders need them).
    EXPECT_NEAR(loaded[i].query.root->props().actual_total_time_ms,
                original[i].query.root->props().actual_total_time_ms, 1e-3);
  }
  std::remove(path.c_str());
}

TEST(DatasetIoTest, MissingFileFails) {
  bool ok = true;
  const auto loaded = LoadExecutedQueries("/no/such/qpe_file.txt", &ok);
  EXPECT_FALSE(ok);
  EXPECT_TRUE(loaded.empty());
}

TEST(DatasetIoTest, MalformedLineRejected) {
  const std::string path = TempPath("qpe_dataset_io_bad.txt");
  {
    std::ofstream os(path);
    os << "(record :latency banana)\n";
  }
  bool ok = true;
  const auto loaded = LoadExecutedQueries(path, &ok);
  EXPECT_FALSE(ok);
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, EmptyFileIsOkAndEmpty) {
  const std::string path = TempPath("qpe_dataset_io_empty.txt");
  { std::ofstream os(path); }
  bool ok = false;
  const auto loaded = LoadExecutedQueries(path, &ok);
  EXPECT_TRUE(ok);
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

// --- Checked loader diagnostics (line numbers + reason) -------------------

TEST(DatasetIoCheckedTest, ReportsLineNumberOfFirstMalformedRecord) {
  const auto dataset = SmallDataset();
  const std::string path = TempPath("qpe_dataset_io_lineno.txt");
  ASSERT_TRUE(SaveExecutedQueries(dataset, path));
  {
    std::ofstream os(path, std::ios::app);
    os << "this is not a record\n";
  }
  const auto loaded = LoadExecutedQueriesChecked(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kDataLoss);
  const std::string expected =
      "line " + std::to_string(dataset.size() + 1);
  EXPECT_NE(loaded.status().message().find(expected), std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(DatasetIoCheckedTest, ReportsMissingTokenReason) {
  const std::string path = TempPath("qpe_dataset_io_token.txt");
  {
    std::ofstream os(path);
    os << "(record :latency 1.5 :instance 0)\n";
  }
  const auto loaded = LoadExecutedQueriesChecked(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 1"), std::string::npos);
  EXPECT_NE(loaded.status().message().find(":template"), std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(DatasetIoCheckedTest, ForwardsPlanParseDiagnostics) {
  const auto dataset = SmallDataset();
  const std::string path = TempPath("qpe_dataset_io_plan.txt");
  ASSERT_TRUE(SaveExecutedQueries(dataset, path));
  // Corrupt the plan section of the saved record: the loader must forward
  // the plan parser's reason and offset, prefixed with the line number.
  std::ifstream is(path);
  std::string line;
  std::getline(is, line);
  is.close();
  const size_t op = line.find("(op ");
  ASSERT_NE(op, std::string::npos);
  line.replace(op, 4, "(xx ");
  {
    std::ofstream os(path);
    os << line << "\n";
  }
  const auto loaded = LoadExecutedQueriesChecked(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 1"), std::string::npos);
  EXPECT_NE(loaded.status().message().find("at offset"), std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(DatasetIoCheckedTest, MissingFileIsNotFound) {
  const auto loaded = LoadExecutedQueriesChecked("/no/such/qpe_file.txt");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kNotFound);
}

TEST(DatasetIoCheckedTest, SaveFaultInjectionFailsWithIoStatus) {
  const auto dataset = SmallDataset();
  const std::string path = TempPath("qpe_dataset_io_fault.txt");
  util::ScopedFaultInjection guard("dataset.save.open", 1);
  const util::Status s = SaveExecutedQueriesStatus(dataset, path);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), util::StatusCode::kIo);
  EXPECT_NE(s.message().find("injected fault"), std::string::npos)
      << s.ToString();
}

TEST(ParsePlanCheckedTest, UnknownPropertyNamesOffset) {
  const auto parsed =
      plan::ParsePlanChecked("(plan :cluster 0 (op \"Sort\" :bogus 1))");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), util::StatusCode::kDataLoss);
  EXPECT_NE(parsed.status().message().find("unknown property 'bogus'"),
            std::string::npos)
      << parsed.status().ToString();
  EXPECT_NE(parsed.status().message().find("at offset"), std::string::npos);
}

TEST(ParsePlanCheckedTest, UnterminatedPlanRejected) {
  const auto parsed =
      plan::ParsePlanChecked("(plan :cluster 0 (op \"Sort\")");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("unterminated"), std::string::npos)
      << parsed.status().ToString();
}

TEST(TablePrinterCsvTest, EscapesAndAligns) {
  util::TablePrinter table({"name", "value"});
  table.AddRow({"plain", "1"});
  table.AddRow({"with,comma", "2"});
  table.AddRow({"with\"quote", "3"});
  std::ostringstream oss;
  table.PrintCsv(oss);
  EXPECT_EQ(oss.str(),
            "name,value\n"
            "plain,1\n"
            "\"with,comma\",2\n"
            "\"with\"\"quote\",3\n");
}

}  // namespace
}  // namespace qpe::data
