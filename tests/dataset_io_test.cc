#include <cstdio>
#include <fstream>
#include <sstream>
#include <filesystem>

#include "config/lhs_sampler.h"
#include "data/dataset_io.h"
#include "gtest/gtest.h"
#include "simdb/workload_runner.h"
#include "simdb/workloads.h"
#include "util/table_printer.h"

namespace qpe::data {
namespace {

std::vector<simdb::ExecutedQuery> SmallDataset() {
  const simdb::TpchWorkload tpch(0.05);
  config::LhsSampler sampler((util::Rng(1)));
  simdb::RunOptions options;
  return simdb::RunWorkloadTemplates(tpch, {0, 2}, sampler.Sample(3), options);
}

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(DatasetIoTest, RoundTripPreservesEverything) {
  const auto original = SmallDataset();
  const std::string path = TempPath("qpe_dataset_io_test.txt");
  ASSERT_TRUE(SaveExecutedQueries(original, path));
  bool ok = false;
  const auto loaded = LoadExecutedQueries(path, &ok);
  ASSERT_TRUE(ok);
  ASSERT_EQ(loaded.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i].latency_ms, original[i].latency_ms);
    EXPECT_EQ(loaded[i].template_index, original[i].template_index);
    EXPECT_EQ(loaded[i].instance_index, original[i].instance_index);
    EXPECT_EQ(loaded[i].query.NumNodes(), original[i].query.NumNodes());
    EXPECT_EQ(loaded[i].query.benchmark, original[i].query.benchmark);
    for (int k = 0; k < config::kNumKnobs; ++k) {
      EXPECT_NEAR(loaded[i].db_config.Get(static_cast<config::Knob>(k)),
                  original[i].db_config.Get(static_cast<config::Knob>(k)),
                  std::abs(original[i].db_config.Get(
                      static_cast<config::Knob>(k))) * 1e-5);
    }
    // Actual properties survive (the encoders need them).
    EXPECT_NEAR(loaded[i].query.root->props().actual_total_time_ms,
                original[i].query.root->props().actual_total_time_ms, 1e-3);
  }
  std::remove(path.c_str());
}

TEST(DatasetIoTest, MissingFileFails) {
  bool ok = true;
  const auto loaded = LoadExecutedQueries("/no/such/qpe_file.txt", &ok);
  EXPECT_FALSE(ok);
  EXPECT_TRUE(loaded.empty());
}

TEST(DatasetIoTest, MalformedLineRejected) {
  const std::string path = TempPath("qpe_dataset_io_bad.txt");
  {
    std::ofstream os(path);
    os << "(record :latency banana)\n";
  }
  bool ok = true;
  const auto loaded = LoadExecutedQueries(path, &ok);
  EXPECT_FALSE(ok);
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, EmptyFileIsOkAndEmpty) {
  const std::string path = TempPath("qpe_dataset_io_empty.txt");
  { std::ofstream os(path); }
  bool ok = false;
  const auto loaded = LoadExecutedQueries(path, &ok);
  EXPECT_TRUE(ok);
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST(TablePrinterCsvTest, EscapesAndAligns) {
  util::TablePrinter table({"name", "value"});
  table.AddRow({"plain", "1"});
  table.AddRow({"with,comma", "2"});
  table.AddRow({"with\"quote", "3"});
  std::ostringstream oss;
  table.PrintCsv(oss);
  EXPECT_EQ(oss.str(),
            "name,value\n"
            "plain,1\n"
            "\"with,comma\",2\n"
            "\"with\"\"quote\",3\n");
}

}  // namespace
}  // namespace qpe::data
