#include <cmath>
#include <limits>
#include <set>

#include "catalog/schemas.h"
#include "config/lhs_sampler.h"
#include "data/datasets.h"
#include "data/features.h"
#include "data/plan_corpus.h"
#include "plan/linearize.h"
#include "gtest/gtest.h"
#include "simdb/workloads.h"

namespace qpe::data {
namespace {

TEST(FeaturesTest, NodeFeatureDimMatches) {
  plan::PlanNode node(plan::OperatorType::Parse("Scan-Seq"));
  EXPECT_EQ(static_cast<int>(NodeFeatures(node).size()), kNodeFeatureDim);
}

TEST(FeaturesTest, LabelsNeverInFeatures) {
  plan::PlanNode a(plan::OperatorType::Parse("Sort"));
  plan::PlanNode b(plan::OperatorType::Parse("Sort"));
  b.props().total_cost = 12345;
  b.props().actual_total_time_ms = 999;
  b.props().startup_cost = 77;
  EXPECT_EQ(NodeFeatures(a), NodeFeatures(b));
}

TEST(FeaturesTest, FeaturesReflectProperties) {
  plan::PlanNode a(plan::OperatorType::Parse("Scan-Seq"));
  plan::PlanNode b(plan::OperatorType::Parse("Scan-Seq"));
  b.props().actual_rows = 100000;
  b.props().has_filter = true;
  EXPECT_NE(NodeFeatures(a), NodeFeatures(b));
}

TEST(FeaturesTest, SubtreeRelationsUnion) {
  plan::PlanNode join(plan::OperatorType::Parse("Join-Hash"));
  plan::PlanNode* left = join.AddChild(plan::OperatorType::Parse("Scan-Seq"));
  plan::PlanNode* right = join.AddChild(plan::OperatorType::Parse("Scan-Seq"));
  left->AddRelation("orders");
  right->AddRelation("lineitem");
  right->AddRelation("orders");  // duplicate collapses
  const auto relations = SubtreeRelations(join);
  EXPECT_EQ(relations.size(), 2u);
}

TEST(FeaturesTest, LabelEncodeDecodeRoundTrip) {
  for (double v : {0.0, 1.0, 12.5, 1000.0, 5e6}) {
    EXPECT_NEAR(DecodeLabel(EncodeLabel(v)), v, 1e-6 * (1 + v));
  }
}

TEST(FeaturesTest, EncodeLabelMonotone) {
  EXPECT_LT(EncodeLabel(10), EncodeLabel(100));
  EXPECT_LT(EncodeLabel(100), EncodeLabel(10000));
}

TEST(FeaturesTest, SumFeatures) {
  EXPECT_EQ(SumFeatures({{1, 2}, {3, 4}}), (std::vector<double>{4, 6}));
  EXPECT_TRUE(SumFeatures({}).empty());
}

TEST(FeaturesTest, NanRowsFeaturizeFiniteAndAreCounted) {
  plan::PlanNode node(plan::OperatorType::Parse("Scan-Seq"));
  node.props().actual_rows = std::nan("");
  node.props().plan_rows = std::nan("");
  plan::IngestionStats stats;
  for (double v : NodeFeatures(node, &stats)) {
    EXPECT_TRUE(std::isfinite(v));
  }
  EXPECT_EQ(stats.nonfinite_values, 2);
}

TEST(FeaturesTest, InfiniteTimesAndBlocksFeaturizeFinite) {
  plan::PlanNode node(plan::OperatorType::Parse("Join-Hash"));
  node.props().shared_read_blocks = std::numeric_limits<double>::infinity();
  node.props().hash_buckets = -std::numeric_limits<double>::infinity();
  node.props().plan_width = std::numeric_limits<double>::infinity();
  plan::IngestionStats stats;
  for (double v : NodeFeatures(node, &stats)) {
    EXPECT_TRUE(std::isfinite(v));
  }
  EXPECT_EQ(stats.nonfinite_values, 3);
}

TEST(FeaturesTest, NegativeCountsClampToZeroAndAreCounted) {
  plan::PlanNode node(plan::OperatorType::Parse("Sort"));
  node.props().actual_rows = -10;
  node.props().sort_space_used_kb = -1;
  node.props().num_sort_keys = -2;
  plan::IngestionStats stats;
  const std::vector<double> f = NodeFeatures(node, &stats);
  for (double v : f) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, -1.0);  // scan_direction may legitimately be -1
  }
  EXPECT_EQ(stats.negative_values, 3);
  // Clamped features equal the all-zero baseline, not garbage.
  plan::PlanNode clean(plan::OperatorType::Parse("Sort"));
  EXPECT_EQ(f, NodeFeatures(clean));
}

TEST(FeaturesTest, InvalidEnumCodesClampIntoRange) {
  plan::PlanNode node(plan::OperatorType::Parse("Sort"));
  node.props().sort_method = static_cast<plan::SortMethod>(200);
  node.props().join_kind = static_cast<plan::JoinKind>(-7);
  node.props().scan_direction = 55;
  plan::IngestionStats stats;
  for (double v : NodeFeatures(node, &stats)) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_LE(std::abs(v), 2.0);
  }
  EXPECT_EQ(stats.invalid_enums, 3);
}

TEST(FeaturesTest, NonfiniteLabelsEncodeAsZero) {
  EXPECT_DOUBLE_EQ(EncodeLabel(std::nan("")), 0.0);
  EXPECT_DOUBLE_EQ(EncodeLabel(std::numeric_limits<double>::infinity()), 0.0);
  EXPECT_DOUBLE_EQ(EncodeLabel(-std::numeric_limits<double>::infinity()), 0.0);
  EXPECT_DOUBLE_EQ(EncodeLabel(-5.0), 0.0);
}

TEST(PlanCorpusTest, SizeWithinBounds) {
  CorpusOptions options;
  options.min_nodes = 5;
  options.max_nodes = 60;
  RandomPlanGenerator generator(util::Rng(1), options);
  for (int i = 0; i < 30; ++i) {
    const auto plan = generator.Generate();
    EXPECT_GE(plan->NumNodes(), options.min_nodes);
    EXPECT_LE(plan->NumNodes(), options.max_nodes);
  }
}

TEST(PlanCorpusTest, DeterministicForSeed) {
  RandomPlanGenerator a((util::Rng(7)));
  RandomPlanGenerator b((util::Rng(7)));
  const auto pa = a.Generate();
  const auto pb = b.Generate();
  EXPECT_EQ(plan::ToBracketString(plan::LinearizeDfsBracket(*pa)),
            plan::ToBracketString(plan::LinearizeDfsBracket(*pb)));
}

TEST(PlanCorpusTest, DiverseOperators) {
  RandomPlanGenerator generator((util::Rng(3)));
  std::set<std::string> seen;
  for (int i = 0; i < 20; ++i) {
    const auto plan = generator.Generate();
    plan->Visit([&](const plan::PlanNode& n) {
      seen.insert(n.type().ToString());
    });
  }
  EXPECT_GT(seen.size(), 15u);
}

TEST(PlanCorpusTest, MutationPreservesShape) {
  RandomPlanGenerator generator((util::Rng(4)));
  const auto original = generator.Generate();
  const auto mutated = generator.Mutate(*original, 0.5);
  EXPECT_EQ(mutated->NumNodes(), original->NumNodes());
  EXPECT_EQ(mutated->Depth(), original->Depth());
}

TEST(PlanCorpusTest, MutationZeroRateIsIdentity) {
  RandomPlanGenerator generator((util::Rng(5)));
  const auto original = generator.Generate();
  const auto copy = generator.Mutate(*original, 0.0);
  EXPECT_EQ(plan::ToBracketString(plan::LinearizeDfsBracket(*original)),
            plan::ToBracketString(plan::LinearizeDfsBracket(*copy)));
}

TEST(DatasetsTest, SplitIndicesPartition) {
  util::Rng rng(6);
  std::vector<int> main_idx, a_idx, b_idx;
  SplitIndices(100, 0.1, 0.2, &rng, &main_idx, &a_idx, &b_idx);
  EXPECT_EQ(a_idx.size(), 10u);
  EXPECT_EQ(b_idx.size(), 20u);
  EXPECT_EQ(main_idx.size(), 70u);
  std::set<int> all(main_idx.begin(), main_idx.end());
  all.insert(a_idx.begin(), a_idx.end());
  all.insert(b_idx.begin(), b_idx.end());
  EXPECT_EQ(all.size(), 100u);
}

TEST(DatasetsTest, CorpusPairDataset) {
  PairDatasetOptions options;
  options.num_pairs = 44;
  options.corpus.max_nodes = 25;
  const PlanPairDataset dataset = BuildCorpusPairDataset(options);
  EXPECT_EQ(dataset.train.size() + dataset.dev.size() + dataset.test.size(),
            44u);
  EXPECT_GE(dataset.dev.size(), 1u);
  EXPECT_GE(dataset.test.size(), 1u);
  for (const auto& split : {&dataset.train, &dataset.dev, &dataset.test}) {
    for (const PlanPair& pair : *split) {
      EXPECT_GE(pair.smatch, 0.0);
      EXPECT_LE(pair.smatch, 1.0);
      ASSERT_NE(pair.left, nullptr);
      ASSERT_NE(pair.right, nullptr);
    }
  }
}

TEST(DatasetsTest, RelatedPairsScoreHigherOnAverage) {
  PairDatasetOptions related;
  related.num_pairs = 30;
  related.related_fraction = 1.0;
  related.corpus.max_nodes = 25;
  PairDatasetOptions unrelated = related;
  unrelated.related_fraction = 0.0;
  unrelated.seed = related.seed + 1;
  auto avg = [](const PlanPairDataset& d) {
    double total = 0;
    int count = 0;
    for (const auto* split : {&d.train, &d.dev, &d.test}) {
      for (const PlanPair& pair : *split) {
        total += pair.smatch;
        ++count;
      }
    }
    return total / count;
  };
  EXPECT_GT(avg(BuildCorpusPairDataset(related)),
            avg(BuildCorpusPairDataset(unrelated)) + 0.1);
}

TEST(DatasetsTest, WorkloadPairDataset) {
  const simdb::TpchWorkload tpch(0.05);
  PairDatasetOptions options;
  options.num_pairs = 22;
  const PlanPairDataset dataset = BuildWorkloadPairDataset(tpch, options);
  EXPECT_EQ(dataset.train.size() + dataset.dev.size() + dataset.test.size(),
            22u);
}

TEST(DatasetsTest, OperatorSampleExtraction) {
  const simdb::TpchWorkload tpch(0.05);
  config::LhsSampler sampler((util::Rng(8)));
  const auto configs = sampler.Sample(3);
  simdb::RunOptions run_options;
  const auto executed =
      simdb::RunWorkloadTemplates(tpch, {2, 4}, configs, run_options);
  const auto scan_samples = ExtractOperatorSamples(
      executed, tpch.GetCatalog(), plan::OperatorGroup::kScan);
  ASSERT_FALSE(scan_samples.empty());
  for (const OperatorSample& sample : scan_samples) {
    EXPECT_EQ(static_cast<int>(sample.node_features.size()), kNodeFeatureDim);
    EXPECT_EQ(static_cast<int>(sample.meta_features.size()),
              catalog::Catalog::kMetaFeatureDim);
    EXPECT_EQ(static_cast<int>(sample.db_features.size()),
              config::DbConfig::FeatureDim());
    EXPECT_GE(sample.actual_total_time_ms, 0);
  }
  // Q3/Q5 have joins, so join samples exist too.
  EXPECT_FALSE(ExtractOperatorSamples(executed, tpch.GetCatalog(),
                                      plan::OperatorGroup::kJoin)
                   .empty());
}

TEST(DatasetsTest, SplitOperatorSamplesRatio) {
  std::vector<OperatorSample> samples(100);
  const OperatorDataset dataset = SplitOperatorSamples(std::move(samples), 9);
  EXPECT_EQ(dataset.val.size(), 10u);
  EXPECT_EQ(dataset.test.size(), 10u);
  EXPECT_EQ(dataset.train.size(), 80u);
}

}  // namespace
}  // namespace qpe::data
