// Focused tests of the executor simulator's accounting details and the
// planner's physical structure choices — the substrate behaviours the
// encoders learn from.

#include <cmath>
#include <string>

#include "catalog/schemas.h"
#include "config/db_config.h"
#include "gtest/gtest.h"
#include "plan/explain.h"
#include "simdb/executor.h"
#include "simdb/planner.h"
#include "simdb/workloads.h"

namespace qpe::simdb {
namespace {

plan::Plan PlanAndExecute(const BenchmarkWorkload& workload,
                          const QuerySpec& spec,
                          const config::DbConfig& db_config,
                          uint64_t noise_seed = 1) {
  Planner planner(&workload.GetCatalog(), &db_config);
  ExecutorSim executor(&workload.GetCatalog(), &db_config);
  plan::Plan planned = planner.PlanQuery(spec);
  util::Rng noise(noise_seed);
  executor.Execute(&planned, spec.cardinality_seed, &noise);
  return planned;
}

TEST(ExecutorDetailTest, SeqScanBufferAccountingSumsToPages) {
  const TpchWorkload tpch(0.1);
  QuerySpec spec;
  spec.tables = {"lineitem"};
  spec.cardinality_seed = 3;
  const config::DbConfig db_config;
  const plan::Plan planned = PlanAndExecute(tpch, spec, db_config);
  ASSERT_EQ(planned.root->type().ToString(), "Scan-Seq");
  const auto& props = planned.root->props();
  const double pages = tpch.GetCatalog().FindTable("lineitem")->PageCount();
  EXPECT_NEAR(props.shared_hit_blocks + props.shared_read_blocks, pages,
              pages * 0.01);
}

TEST(ExecutorDetailTest, WarmCacheShiftsReadsToHits) {
  const TpchWorkload tpch(0.1);
  QuerySpec spec;
  spec.tables = {"orders"};
  spec.cardinality_seed = 4;
  config::DbConfig cold;
  cold.Set(config::Knob::kSharedBuffers, 16384);
  cold.Set(config::Knob::kEffectiveCacheSize, 65536);
  config::DbConfig warm;
  warm.Set(config::Knob::kSharedBuffers, 4194304 * 400.0);
  warm.Set(config::Knob::kEffectiveCacheSize, 2097152 * 400.0);
  const plan::Plan cold_plan = PlanAndExecute(tpch, spec, cold);
  const plan::Plan warm_plan = PlanAndExecute(tpch, spec, warm);
  EXPECT_GT(warm_plan.root->props().shared_hit_blocks,
            cold_plan.root->props().shared_hit_blocks);
  EXPECT_LT(warm_plan.root->props().shared_read_blocks,
            cold_plan.root->props().shared_read_blocks);
}

TEST(ExecutorDetailTest, ExternalSortWritesTempBlocks) {
  const TpchWorkload tpch(0.5);
  QuerySpec spec;
  spec.tables = {"orders"};
  spec.has_sort = true;
  spec.cardinality_seed = 5;
  config::DbConfig small_mem;
  small_mem.Set(config::Knob::kWorkMem, 65536);
  const plan::Plan planned = PlanAndExecute(tpch, spec, small_mem);
  double temp_written = 0;
  plan::SortMethod method = plan::SortMethod::kUnknown;
  planned.root->Visit([&](const plan::PlanNode& n) {
    temp_written += n.props().temp_written_blocks;
    if (n.props().sort_method != plan::SortMethod::kUnknown) {
      method = n.props().sort_method;
    }
  });
  // Only count once (root aggregates children).
  EXPECT_EQ(method, plan::SortMethod::kExternalMerge);
  EXPECT_GT(temp_written, 0);
}

TEST(ExecutorDetailTest, BatchedHashJoinWritesTempBlocks) {
  const TpchWorkload tpch(0.5);
  QuerySpec spec;
  spec.tables = {"orders", "lineitem"};
  JoinSpec join;
  join.left_table = "orders";
  join.left_column = "o_orderkey";
  join.right_table = "lineitem";
  join.right_column = "l_orderkey";
  spec.joins = {join};
  spec.cardinality_seed = 6;
  config::DbConfig small_mem;
  small_mem.Set(config::Knob::kWorkMem, 131072);
  const plan::Plan planned = PlanAndExecute(tpch, spec, small_mem);
  double max_batches = 0;
  planned.root->Visit([&](const plan::PlanNode& n) {
    max_batches = std::max(max_batches, n.props().hash_batches);
  });
  if (max_batches > 1) {
    EXPECT_GT(planned.root->props().temp_written_blocks, 0);
  }
}

TEST(ExecutorDetailTest, SpatialJoinUsesIndexNestedLoop) {
  const SpatialWorkload spatial(0.1);
  util::Rng rng(2);
  // Q1 is a spatial join (arealm x areawater).
  const QuerySpec spec = spatial.Instantiate(0, &rng);
  const config::DbConfig db_config;
  const plan::Plan planned = PlanAndExecute(spatial, spec, db_config);
  bool found_spatial_probe = false;
  planned.root->Visit([&](const plan::PlanNode& n) {
    if (n.type().ToString() == "Loop-Nested" && n.children().size() == 2 &&
        n.children()[1]->type().ToString() == "Scan-Index" &&
        n.children()[1]->props().has_recheck_condition) {
      found_spatial_probe = true;
    }
  });
  EXPECT_TRUE(found_spatial_probe)
      << plan::Explain(*planned.root, {.analyze = false, .buffers = false});
}

TEST(ExecutorDetailTest, BitmapScanHasIndexChild) {
  const TpchWorkload tpch(1.0);
  QuerySpec spec;
  spec.tables = {"lineitem"};
  FilterSpec filter;
  filter.table = "lineitem";
  filter.column = "l_shipdate";  // indexed
  filter.selectivity = 0.02;     // mid selectivity -> bitmap territory
  spec.filters = {filter};
  spec.cardinality_seed = 7;
  config::DbConfig db_config;
  db_config.Set(config::Knob::kRandomPageCost, 4000);
  Planner planner(&tpch.GetCatalog(), &db_config);
  const plan::Plan planned = planner.PlanQuery(spec);
  if (planned.root->type().ToString() == "Scan-Heap-Bitmap") {
    ASSERT_EQ(planned.root->children().size(), 1u);
    EXPECT_EQ(planned.root->children()[0]->type().ToString(),
              "Scan-Index-Bitmap");
  }
}

TEST(ExecutorDetailTest, NuisanceKnobsDoNotAffectLatency) {
  // bgwriter/checkpoint/deadlock/wal knobs must not change read latency:
  // the models must learn to ignore them, so the simulator must actually
  // make them irrelevant.
  const TpchWorkload tpch(0.1);
  util::Rng rng(8);
  const QuerySpec spec = tpch.Instantiate(2, &rng);
  config::DbConfig base;
  config::DbConfig tweaked;
  tweaked.Set(config::Knob::kBgwriterDelay, 9000);
  tweaked.Set(config::Knob::kBgwriterLruMaxpages, 900);
  tweaked.Set(config::Knob::kCheckpointTimeout, 500);
  tweaked.Set(config::Knob::kDeadlockTimeout, 500000);
  tweaked.Set(config::Knob::kWalBuffers, 131000);
  tweaked.Set(config::Knob::kMaintenanceWorkMem, 16000000);
  tweaked.Set(config::Knob::kMaxStackDepth, 5000);
  auto run = [&](const config::DbConfig& cfg) {
    Planner planner(&tpch.GetCatalog(), &cfg);
    ExecutorSim executor(&tpch.GetCatalog(), &cfg);
    plan::Plan planned = planner.PlanQuery(spec);
    util::Rng noise(9);
    return executor.Execute(&planned, spec.cardinality_seed, &noise);
  };
  EXPECT_DOUBLE_EQ(run(base), run(tweaked));
}

TEST(ExecutorDetailTest, StatisticsTargetImprovesEstimates) {
  // Higher default_statistics_target -> smaller |plan_rows - actual_rows|
  // misestimation, on average over instances.
  const TpchWorkload tpch(0.1);
  auto mean_log_error = [&](double dst) {
    config::DbConfig db_config;
    db_config.Set(config::Knob::kDefaultStatisticsTarget, dst);
    Planner planner(&tpch.GetCatalog(), &db_config);
    ExecutorSim executor(&tpch.GetCatalog(), &db_config);
    util::Rng rng(10);
    double total = 0;
    int count = 0;
    for (int i = 0; i < 30; ++i) {
      const QuerySpec spec = tpch.Instantiate(2, &rng);
      plan::Plan planned = planner.PlanQuery(spec);
      util::Rng noise(i);
      executor.Execute(&planned, spec.cardinality_seed, &noise);
      planned.root->Visit([&](const plan::PlanNode& n) {
        if (n.props().plan_rows > 0 && n.props().actual_rows > 0) {
          total += std::abs(std::log(n.props().actual_rows) -
                            std::log(n.props().plan_rows));
          ++count;
        }
      });
    }
    return total / count;
  };
  EXPECT_LT(mean_log_error(9500), mean_log_error(50));
}

}  // namespace
}  // namespace qpe::simdb
