// Foreign-plan ingestion: EXPLAIN-text parsing, graceful-degradation
// sanitization, strict-mode rejection, and the round-trip / fuzzing
// guarantees (any PlanNode in, finite embedding out).

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "config/db_config.h"
#include "data/features.h"
#include "data/plan_corpus.h"
#include "encoder/structure_encoder.h"
#include "gtest/gtest.h"
#include "plan/explain.h"
#include "plan/explain_parser.h"
#include "plan/sanitize.h"
#include "simdb/executor.h"
#include "simdb/planner.h"
#include "simdb/workloads.h"
#include "smatch/smatch.h"
#include "util/fuzz.h"

namespace qpe {
namespace {

using plan::IngestionPolicy;
using plan::OperatorType;
using plan::ParseExplain;
using plan::ParseExplainOptions;
using plan::PlanNode;

ParseExplainOptions Strict() {
  ParseExplainOptions options;
  options.policy = IngestionPolicy::kStrict;
  return options;
}

// Small-but-real encoder configs keep the fuzz loops fast.
encoder::StructureEncoderConfig TinyConfig() {
  encoder::StructureEncoderConfig config;
  config.level1_dim = 8;
  config.level2_dim = 4;
  config.level3_dim = 4;
  config.num_heads = 2;
  config.ff_dim = 16;
  config.num_layers = 1;
  config.max_len = 64;
  config.dropout = 0.0f;
  return config;
}

bool AllFinite(const nn::Tensor& t) {
  for (float v : t.value()) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

// Runs every structure encoder over the plan and checks the embeddings are
// finite — the core "ANY PlanNode yields a finite embedding" guarantee.
void ExpectAllEncodersFinite(const PlanNode& root) {
  util::Rng rng(11);
  const encoder::StructureEncoderConfig config = TinyConfig();
  const encoder::TransformerPlanEncoder transformer(config, &rng);
  const encoder::LstmPlanEncoder lstm(config, &rng);
  const encoder::FnnPlanEncoder fnn(16, 8, &rng);
  const encoder::SparseAutoencoder autoencoder(8, &rng);
  EXPECT_TRUE(AllFinite(transformer.Encode(root, nullptr)));
  EXPECT_TRUE(AllFinite(lstm.Encode(root, nullptr)));
  EXPECT_TRUE(AllFinite(fnn.Encode(root, nullptr)));
  EXPECT_TRUE(AllFinite(autoencoder.Encode(root, nullptr)));
  for (double v : encoder::BagOfTokens(root)) EXPECT_TRUE(std::isfinite(v));
}

plan::Plan PlanWorkloadQuery(const simdb::BenchmarkWorkload& workload,
                             int template_index, bool execute) {
  config::DbConfig db_config;
  util::Rng rng(17 + template_index);
  const simdb::QuerySpec spec = workload.Instantiate(template_index, &rng);
  simdb::Planner planner(&workload.GetCatalog(), &db_config);
  plan::Plan planned = planner.PlanQuery(spec);
  if (execute) {
    simdb::ExecutorSim executor(&workload.GetCatalog(), &db_config);
    util::Rng noise(23 + template_index);
    executor.Execute(&planned, spec.cardinality_seed, &noise);
  }
  return planned;
}

// --- Parser basics ---------------------------------------------------------

TEST(ExplainParserTest, ParsesHandWrittenSnippet) {
  const std::string text =
      "Sort  (cost=98.20..98.20 rows=13 width=64) (actual time=12.400..12.500 rows=11 loops=1)\n"
      "  Sort Method: quicksort  Memory: 25kB\n"
      "  ->  Hash Join  (cost=0.40..91.10 rows=13 width=64) (actual time=1.000..11.000 rows=11 loops=1)\n"
      "        ->  Seq Scan on lineitem  (cost=0.00..80.00 rows=600 width=32) (actual time=0.010..8.000 rows=600 loops=1)\n"
      "        ->  Index Scan on orders  (cost=0.20..9.00 rows=10 width=32) (actual time=0.020..1.500 rows=10 loops=1)\n"
      "              Index Cond: (set)\n";
  auto parsed = ParseExplain(text, Strict());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const PlanNode& root = *parsed->root;
  EXPECT_EQ(root.type(), OperatorType::Parse("Sort"));
  EXPECT_EQ(root.props().sort_method, plan::SortMethod::kQuicksort);
  EXPECT_DOUBLE_EQ(root.props().peak_memory_kb, 25);
  EXPECT_DOUBLE_EQ(root.props().total_cost, 98.20);
  EXPECT_DOUBLE_EQ(root.props().actual_total_time_ms, 12.5);
  ASSERT_EQ(root.children().size(), 1u);
  const PlanNode& join = *root.children()[0];
  EXPECT_EQ(join.type(), OperatorType::Parse("Join-Hash"));
  ASSERT_EQ(join.children().size(), 2u);
  EXPECT_EQ(join.children()[0]->relations()[0], "lineitem");
  EXPECT_EQ(join.children()[1]->type(), OperatorType::Parse("Scan-Index"));
  EXPECT_TRUE(join.children()[1]->props().has_index_condition);
  EXPECT_TRUE(parsed->stats.Clean());
}

TEST(ExplainParserTest, EmptyInputIsAnErrorInBothModes) {
  EXPECT_FALSE(ParseExplain("").ok());
  EXPECT_FALSE(ParseExplain("", Strict()).ok());
  EXPECT_FALSE(ParseExplain("\n\n  \n").ok());
}

TEST(ExplainParserTest, StrictRejectsMalformedCostWithLineAndColumn) {
  const std::string text =
      "Sort  (cost=98.20..98.20 rows=13 width=64)\n"
      "  ->  Hash Join  (cost=0.40..banana rows=13 width=64)\n";
  auto parsed = ParseExplain(text, Strict());
  ASSERT_FALSE(parsed.ok());
  const std::string message = parsed.status().ToString();
  EXPECT_NE(message.find("line 2"), std::string::npos) << message;
  EXPECT_NE(message.find("col"), std::string::npos) << message;
  EXPECT_NE(message.find("cost"), std::string::npos) << message;
}

TEST(ExplainParserTest, StrictRejectsUnknownOperatorNamingTheWord) {
  const std::string text =
      "Quantum Warp Drive  (cost=1.00..2.00 rows=1 width=8)\n";
  auto parsed = ParseExplain(text, Strict());
  ASSERT_FALSE(parsed.ok());
  const std::string message = parsed.status().ToString();
  EXPECT_NE(message.find("line 1"), std::string::npos) << message;
  EXPECT_NE(message.find("Drive"), std::string::npos) << message;
}

TEST(ExplainParserTest, LenientMapsUnknownOperatorToUnknownToken) {
  const std::string text =
      "Quantum Warp Drive  (cost=1.00..2.00 rows=1 width=8)\n";
  auto parsed = ParseExplain(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const plan::Taxonomy& tax = plan::Taxonomy::Get();
  EXPECT_EQ(parsed->root->type().level1, tax.unknown1());
  EXPECT_GE(parsed->stats.unknown_operators, 1);
  EXPECT_FALSE(parsed->warnings.empty());
  ExpectAllEncodersFinite(*parsed->root);
}

TEST(ExplainParserTest, MissingActualsDegradeToEstimates) {
  // Plain EXPLAIN (no ANALYZE): uniform absence is a format, not a defect.
  const std::string text =
      "Hash Join  (cost=0.40..91.10 rows=130 width=64)\n"
      "  ->  Seq Scan on lineitem  (cost=0.00..80.00 rows=600 width=32)\n"
      "  ->  Seq Scan on orders  (cost=0.00..9.00 rows=10 width=32)\n";
  auto parsed = ParseExplain(text, Strict());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_DOUBLE_EQ(parsed->root->props().actual_rows, 130);
  EXPECT_DOUBLE_EQ(parsed->root->props().actual_loops, 1);
  EXPECT_EQ(parsed->stats.missing_actuals, 0);
}

TEST(ExplainParserTest, StrictRejectsMixedAnalyzeOutput) {
  const std::string text =
      "Hash Join  (cost=0.40..91.10 rows=130 width=64) (actual time=1.000..2.000 rows=130 loops=1)\n"
      "  ->  Seq Scan on lineitem  (cost=0.00..80.00 rows=600 width=32)\n";
  auto strict = ParseExplain(text, Strict());
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.status().ToString().find("line 2"), std::string::npos);
  // Lenient counts the degradation instead.
  auto lenient = ParseExplain(text);
  ASSERT_TRUE(lenient.ok());
  EXPECT_EQ(lenient->stats.missing_actuals, 1);
}

TEST(ExplainParserTest, LenientSurvivesRealPostgresOutput) {
  // Genuine psql formatting: header, alias after the relation, predicate
  // text in Index Cond / Filter, Sort Key, Heap Blocks, buffers detail.
  const std::string text =
      "                         QUERY PLAN\n"
      "-------------------------------------------------------------\n"
      " Sort  (cost=230.01..230.51 rows=200 width=44) (actual time=3.400..3.420 rows=180 loops=1)\n"
      "   Sort Key: t.category, (count(*)) DESC\n"
      "   Sort Method: quicksort  Memory: 40kB\n"
      "   Buffers: shared hit=120 read=7\n"
      "   ->  HashAggregate  (cost=210.00..212.00 rows=200 width=44) (actual time=3.000..3.100 rows=180 loops=1)\n"
      "         Group Key: t.category\n"
      "         ->  Bitmap Heap Scan on items t  (cost=12.00..180.00 rows=4000 width=12) (actual time=0.200..1.900 rows=3900 loops=1)\n"
      "               Recheck Cond: (price > 10)\n"
      "               Filter: (in_stock AND (price > 10))\n"
      "               Rows Removed by Filter: 55\n"
      "               Heap Blocks: exact=90\n"
      "               ->  Bitmap Index Scan on items_price_idx  (cost=0.00..11.00 rows=4100 width=0) (actual time=0.150..0.150 rows=4100 loops=1)\n"
      "                     Index Cond: (price > 10)\n"
      "(15 rows)\n";
  auto parsed = ParseExplain(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->stats.nodes, 4);
  const PlanNode& root = *parsed->root;
  EXPECT_EQ(root.type(), OperatorType::Parse("Sort"));
  EXPECT_DOUBLE_EQ(root.props().num_sort_keys, 2);
  EXPECT_DOUBLE_EQ(root.props().shared_hit_blocks, 120);
  ASSERT_EQ(root.children().size(), 1u);
  const PlanNode& scan = *root.children()[0]->children()[0];
  EXPECT_EQ(scan.type(), OperatorType::Parse("Scan-Heap-Bitmap"));
  EXPECT_EQ(scan.relations()[0], "items");  // alias stripped
  EXPECT_TRUE(scan.props().has_filter);
  EXPECT_TRUE(scan.props().has_recheck_condition);
  EXPECT_DOUBLE_EQ(scan.props().rows_removed_by_filter, 55);
  EXPECT_DOUBLE_EQ(scan.props().heap_blocks, 90);
  // Unknown lines (header, Group Key, row count) were counted, not fatal.
  EXPECT_GT(parsed->stats.unparsed_lines, 0);
  ExpectAllEncodersFinite(root);
}

TEST(ExplainParserTest, SecondRootGraftsLenientlyRejectsStrictly) {
  const std::string text =
      "Sort  (cost=1.00..2.00 rows=1 width=8)\n"
      "Limit  (cost=1.00..2.00 rows=1 width=8)\n";
  auto lenient = ParseExplain(text);
  ASSERT_TRUE(lenient.ok());
  EXPECT_EQ(lenient->stats.orphan_nodes, 1);
  EXPECT_EQ(lenient->root->children().size(), 1u);  // grafted under the root
  EXPECT_FALSE(ParseExplain(text, Strict()).ok());
}

// --- Golden round trip over every simdb workload ---------------------------

void ExpectByteIdenticalRoundTrip(const simdb::BenchmarkWorkload& workload,
                                  const char* name) {
  for (int t = 0; t < workload.NumTemplates(); ++t) {
    const plan::Plan planned = PlanWorkloadQuery(workload, t, /*execute=*/true);
    for (const bool analyze : {true, false}) {
      plan::ExplainOptions options;
      options.analyze = analyze;
      options.buffers = analyze;
      const std::string text = plan::Explain(*planned.root, options);
      auto parsed = ParseExplain(text, Strict());
      ASSERT_TRUE(parsed.ok()) << name << " template " << t << " analyze="
                               << analyze << ": " << parsed.status().ToString()
                               << "\n" << text;
      const std::string again = plan::Explain(*parsed->root, options);
      ASSERT_EQ(text, again) << name << " template " << t;
      const smatch::SmatchScore score = smatch::Score(*planned.root,
                                                      *parsed->root);
      ASSERT_DOUBLE_EQ(score.f1, 1.0) << name << " template " << t;
    }
  }
}

TEST(ExplainRoundTripTest, TpchByteIdentical) {
  ExpectByteIdenticalRoundTrip(simdb::TpchWorkload(0.05), "tpch");
}

TEST(ExplainRoundTripTest, TpcdsByteIdentical) {
  ExpectByteIdenticalRoundTrip(simdb::TpcdsWorkload(0.05, 20), "tpcds");
}

TEST(ExplainRoundTripTest, JobByteIdentical) {
  ExpectByteIdenticalRoundTrip(simdb::JobWorkload(), "job");
}

TEST(ExplainRoundTripTest, SpatialByteIdentical) {
  ExpectByteIdenticalRoundTrip(simdb::SpatialWorkload(), "spatial");
}

// --- Sanitization ----------------------------------------------------------

TEST(SanitizeTest, RepairsHostileValuesAndReportsThem) {
  PlanNode root(OperatorType::Parse("Sort"));
  root.props().plan_rows = std::nan("");
  root.props().actual_rows = -5;
  root.props().peak_memory_kb = 1e300;
  root.props().sort_method = static_cast<plan::SortMethod>(99);
  root.props().actual_loops = std::nan("");
  const plan::IngestionStats stats = plan::SanitizePlan(&root);
  EXPECT_EQ(stats.nonfinite_values, 1);
  EXPECT_EQ(stats.negative_values, 1);
  EXPECT_EQ(stats.out_of_range_values, 1);
  EXPECT_EQ(stats.invalid_enums, 1);
  EXPECT_EQ(stats.missing_actuals, 1);
  EXPECT_DOUBLE_EQ(root.props().plan_rows, 0);
  EXPECT_DOUBLE_EQ(root.props().actual_loops, 1);
  EXPECT_TRUE(plan::ValidatePlan(root).ok());
  EXPECT_NE(stats.ToString().find("non-finite"), std::string::npos);
}

TEST(SanitizeTest, TruncatesDeepAndWideTreesDeterministically) {
  plan::SanitizeLimits limits;
  limits.max_depth = 8;
  limits.max_children = 4;
  limits.max_nodes = 64;
  // A 40-deep chain whose head also has 10 children.
  PlanNode root(OperatorType::Parse("Materialize"));
  PlanNode* tip = &root;
  for (int d = 0; d < 40; ++d) {
    tip = tip->AddChild(OperatorType::Parse("Materialize"));
  }
  for (int c = 0; c < 10; ++c) root.AddChild(OperatorType::Parse("Scan-Seq"));
  const plan::IngestionStats stats = plan::SanitizePlan(&root, limits);
  EXPECT_GT(stats.truncated_depth, 0);
  EXPECT_GT(stats.truncated_children, 0);
  EXPECT_LE(root.Depth(), limits.max_depth);
  EXPECT_LE(root.NumNodes(), limits.max_nodes);
  EXPECT_TRUE(plan::ValidatePlan(root, limits).ok());
  // Same input, same truncation.
  PlanNode root2(OperatorType::Parse("Materialize"));
  tip = &root2;
  for (int d = 0; d < 40; ++d) {
    tip = tip->AddChild(OperatorType::Parse("Materialize"));
  }
  for (int c = 0; c < 10; ++c) root2.AddChild(OperatorType::Parse("Scan-Seq"));
  plan::SanitizePlan(&root2, limits);
  EXPECT_DOUBLE_EQ(smatch::Score(root, root2).f1, 1.0);
}

TEST(SanitizeTest, ValidateNamesTheOffendingNodeAndProperty) {
  PlanNode root(OperatorType::Parse("Sort"));
  PlanNode* child = root.AddChild(OperatorType::Parse("Scan-Seq"));
  child->props().plan_rows = -3;
  const util::Status status = plan::ValidatePlan(root);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("node #1"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.ToString().find("plan_rows"), std::string::npos);
}

// --- Encoder hardening -----------------------------------------------------

TEST(EncoderHardeningTest, ScrambledOperatorIdsEncodeFinite) {
  // Regression for the -1-sentinel era: out-of-vocabulary ids must hit the
  // UNKNOWN row, not read past the embedding tables.
  PlanNode root(OperatorType(250, 251, 252));
  root.AddChild(OperatorType(199, 0, 77));
  ExpectAllEncodersFinite(root);
  const std::vector<OperatorType> tokens = {OperatorType(250, 251, 252)};
  const encoder::TokenIds ids = encoder::TokensToIds(tokens);
  const plan::Taxonomy& tax = plan::Taxonomy::Get();
  EXPECT_EQ(ids.level1[0], tax.unknown1());
  EXPECT_EQ(ids.level2[0], tax.unknown2());
  EXPECT_EQ(ids.level3[0], tax.unknown3());
}

TEST(EncoderHardeningTest, TransformerTruncatesBeyondMaxLen) {
  PlanNode root(OperatorType::Parse("Materialize"));
  PlanNode* tip = &root;
  for (int d = 0; d < 300; ++d) {
    tip = tip->AddChild(OperatorType::Parse("Materialize"));
  }
  util::Rng rng(3);
  const encoder::TransformerPlanEncoder transformer(TinyConfig(), &rng);
  EXPECT_TRUE(AllFinite(transformer.Encode(root, nullptr)));
}

// --- Fuzzing ---------------------------------------------------------------

TEST(IngestionFuzzTest, ByteMutationsNeverCrashAndAcceptedPlansEncodeFinite) {
  const simdb::TpchWorkload tpch(0.05);
  const plan::Plan planned = PlanWorkloadQuery(tpch, 4, /*execute=*/true);
  const std::string seed_text = plan::Explain(*planned.root);
  const int iters = util::FuzzIterationsFromEnv(300);
  util::Rng rng(0xFEEDFACE);
  const encoder::StructureEncoderConfig config = TinyConfig();
  util::Rng model_rng(5);
  const encoder::TransformerPlanEncoder transformer(config, &model_rng);
  int accepted = 0;
  for (int i = 0; i < iters; ++i) {
    const std::string mutated =
        util::MutateBytes(seed_text, &rng, 1 + static_cast<int>(rng.UniformInt(0, 7)));
    // Strict must reject or accept without crashing; no partial trees.
    auto strict = ParseExplain(mutated, Strict());
    if (!strict.ok()) {
      EXPECT_FALSE(strict.status().ToString().empty());
    }
    auto lenient = data::IngestExplainText(mutated);
    if (!lenient.ok()) continue;
    ++accepted;
    ASSERT_TRUE(plan::ValidatePlan(*lenient->plan.root).ok());
    const nn::Tensor embedding = transformer.Encode(*lenient->plan.root, nullptr);
    ASSERT_TRUE(AllFinite(embedding)) << "iteration " << i;
    for (double v : encoder::BagOfTokens(*lenient->plan.root)) {
      ASSERT_TRUE(std::isfinite(v)) << "iteration " << i;
    }
  }
  // The mutator is gentle enough that a healthy share still parses.
  EXPECT_GT(accepted, 0);
}

TEST(IngestionFuzzTest, TreeMutationsAlwaysSanitizeToValidFinitePlans) {
  const int iters = util::FuzzIterationsFromEnv(200);
  util::Rng gen_rng(0xDADA);
  data::CorpusOptions corpus;
  corpus.max_nodes = 40;
  data::RandomPlanGenerator generator(util::Rng(0xBEEF), corpus);
  const encoder::StructureEncoderConfig config = TinyConfig();
  util::Rng model_rng(7);
  const encoder::TransformerPlanEncoder transformer(config, &model_rng);
  const encoder::LstmPlanEncoder lstm(config, &model_rng);
  for (int i = 0; i < iters; ++i) {
    auto root = generator.Generate();
    data::CorruptPlan(root.get(), &gen_rng, 1 + i % 6);
    plan::IngestionStats stats = plan::SanitizePlan(root.get());
    ASSERT_TRUE(plan::ValidatePlan(*root).ok()) << "iteration " << i;
    ASSERT_TRUE(AllFinite(transformer.Encode(*root, nullptr)))
        << "iteration " << i;
    ASSERT_TRUE(AllFinite(lstm.Encode(*root, nullptr))) << "iteration " << i;
    root->Visit([&](const PlanNode& node) {
      for (double v : data::NodeFeatures(node, &stats)) {
        ASSERT_TRUE(std::isfinite(v)) << "iteration " << i;
      }
    });
  }
}

// --- Ingestion entry point -------------------------------------------------

TEST(IngestExplainTest, EndToEndLenientProducesReportAndSafePlan) {
  const std::string text =
      "Hyper Drive  (cost=1.00..2.00 rows=nan width=8)\n"
      "  ->  Seq Scan on stars  (cost=0.00..1.00 rows=-4 width=8)\n";
  auto ingested = data::IngestExplainText(text);
  ASSERT_TRUE(ingested.ok()) << ingested.status().ToString();
  EXPECT_EQ(ingested->plan.benchmark, "foreign");
  EXPECT_EQ(ingested->stats.nodes, 2);
  EXPECT_GE(ingested->stats.unknown_operators, 1);
  EXPECT_GE(ingested->stats.nonfinite_values, 1);
  EXPECT_GE(ingested->stats.negative_values, 1);
  EXPECT_TRUE(plan::ValidatePlan(*ingested->plan.root).ok());
  EXPECT_FALSE(ingested->warnings.empty());
  auto strict = data::IngestExplainText(text, IngestionPolicy::kStrict);
  EXPECT_FALSE(strict.ok());
}

TEST(IngestExplainTest, MissingFileIsNotFound) {
  auto ingested = data::IngestExplainFile("/nonexistent/qpe_explain.txt");
  ASSERT_FALSE(ingested.ok());
  EXPECT_EQ(ingested.status().code(), util::StatusCode::kNotFound);
}

TEST(WarningLogTest, CapsEntriesAndCountsOverflow) {
  util::WarningLog log(3);
  for (int i = 0; i < 10; ++i) log.Add("warning " + std::to_string(i));
  EXPECT_EQ(log.entries().size(), 3u);
  EXPECT_EQ(log.total(), 10u);
  EXPECT_EQ(log.dropped(), 7u);
  EXPECT_NE(log.ToString().find("7 more"), std::string::npos);
}

}  // namespace
}  // namespace qpe
