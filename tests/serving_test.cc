// Serving-layer tests: batched-vs-single encode bit-exactness across batch
// sizes and thread counts, the plan-fingerprint, the sharded LRU embedding
// cache (determinism, eviction order, counters), and the EmbeddingService
// facade (dedup, warm-replay hit rate, concurrent callers).

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "config/db_config.h"
#include "data/plan_corpus.h"
#include "encoder/structure_encoder.h"
#include "gtest/gtest.h"
#include "nn/tensor.h"
#include "nn/transformer.h"
#include "plan/fingerprint.h"
#include "plan/linearize.h"
#include "plan/plan_node.h"
#include "serve/embedding_cache.h"
#include "serve/embedding_service.h"
#include "simdb/planner.h"
#include "simdb/workloads.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace qpe {
namespace {

encoder::StructureEncoderConfig SmallConfig() {
  encoder::StructureEncoderConfig config;
  config.level1_dim = 12;
  config.level2_dim = 6;
  config.level3_dim = 6;
  config.num_heads = 2;
  config.ff_dim = 32;
  config.num_layers = 2;
  config.max_len = 128;
  config.dropout = 0.0f;
  return config;
}

std::vector<std::unique_ptr<plan::PlanNode>> SamplePlans(int count,
                                                         uint64_t seed,
                                                         int max_nodes = 24) {
  data::CorpusOptions options;
  options.min_nodes = 4;
  options.max_nodes = max_nodes;
  data::RandomPlanGenerator generator(util::Rng(seed), options);
  std::vector<std::unique_ptr<plan::PlanNode>> plans;
  plans.reserve(count);
  for (int i = 0; i < count; ++i) plans.push_back(generator.Generate());
  return plans;
}

std::vector<const plan::PlanNode*> Pointers(
    const std::vector<std::unique_ptr<plan::PlanNode>>& plans) {
  std::vector<const plan::PlanNode*> ptrs;
  ptrs.reserve(plans.size());
  for (const auto& p : plans) ptrs.push_back(p.get());
  return ptrs;
}

// Restores the global thread count on scope exit.
class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(util::MaxThreads()) {}
  ~ThreadCountGuard() { util::SetMaxThreads(saved_); }

 private:
  int saved_;
};

// --- Batched-vs-single bit-exactness ---------------------------------------

TEST(EncodeBatchTest, BitExactAcrossBatchSizesAndThreadCounts) {
  ThreadCountGuard guard;
  util::Rng rng(41);
  const encoder::TransformerPlanEncoder encoder(SmallConfig(), &rng);
  for (const int batch : {1, 3, 17}) {
    const auto plans = SamplePlans(batch, 100 + batch);
    const auto ptrs = Pointers(plans);
    for (const int threads : {1, 4}) {
      util::SetMaxThreads(threads);
      nn::NoGradGuard no_grad;
      const std::vector<nn::Tensor> batched =
          encoder.EncodeBatch(ptrs, nullptr);
      ASSERT_EQ(static_cast<int>(batched.size()), batch);
      for (int i = 0; i < batch; ++i) {
        const nn::Tensor single = encoder.Encode(*plans[i], nullptr);
        ASSERT_EQ(batched[i].rows(), 1);
        ASSERT_EQ(batched[i].cols(), single.cols());
        for (int c = 0; c < single.cols(); ++c) {
          // Exact float equality: the packed batch path must be
          // bit-identical to the single-plan path.
          EXPECT_EQ(batched[i].at(0, c), single.at(0, c))
              << "batch " << batch << " threads " << threads << " plan " << i
              << " dim " << c;
        }
      }
    }
  }
}

TEST(EncodeBatchTest, BitExactWithProjectionHead) {
  util::Rng rng(42);
  encoder::StructureEncoderConfig config = SmallConfig();
  config.output_dim = 16;
  const encoder::TransformerPlanEncoder encoder(config, &rng);
  const auto plans = SamplePlans(5, 7);
  nn::NoGradGuard no_grad;
  const auto batched = encoder.EncodeBatch(Pointers(plans), nullptr);
  for (size_t i = 0; i < plans.size(); ++i) {
    const nn::Tensor single = encoder.Encode(*plans[i], nullptr);
    ASSERT_EQ(batched[i].cols(), 16);
    for (int c = 0; c < 16; ++c) EXPECT_EQ(batched[i].at(0, c), single.at(0, c));
  }
}

TEST(EncodeBatchTest, TruncatesLongPlansLikeSinglePath) {
  util::Rng rng(43);
  encoder::StructureEncoderConfig config = SmallConfig();
  config.max_len = 16;  // force truncation: linearizations exceed this
  const encoder::TransformerPlanEncoder encoder(config, &rng);
  const auto plans = SamplePlans(3, 11, /*max_nodes=*/40);
  nn::NoGradGuard no_grad;
  const auto batched = encoder.EncodeBatch(Pointers(plans), nullptr);
  for (size_t i = 0; i < plans.size(); ++i) {
    const nn::Tensor single = encoder.Encode(*plans[i], nullptr);
    for (int c = 0; c < single.cols(); ++c) {
      EXPECT_EQ(batched[i].at(0, c), single.at(0, c));
    }
  }
}

TEST(EncodeBatchTest, EmptyBatchReturnsEmpty) {
  util::Rng rng(44);
  const encoder::TransformerPlanEncoder encoder(SmallConfig(), &rng);
  EXPECT_TRUE(encoder.EncodeBatch({}, nullptr).empty());
}

TEST(EncodeBatchTest, BaseClassLoopMatchesEncode) {
  // Non-transformer encoders use the default per-plan loop.
  util::Rng rng(45);
  const encoder::FnnPlanEncoder encoder(16, 8, &rng);
  const auto plans = SamplePlans(4, 13);
  const auto batched = encoder.EncodeBatch(Pointers(plans), nullptr);
  for (size_t i = 0; i < plans.size(); ++i) {
    const nn::Tensor single = encoder.Encode(*plans[i], nullptr);
    for (int c = 0; c < single.cols(); ++c) {
      EXPECT_EQ(batched[i].at(0, c), single.at(0, c));
    }
  }
}

TEST(EncodeBatchTest, GeluTransformerBatchedMatchesSingleBitExact) {
  // The GELU feed-forward variant routes the batched path through the
  // fused BiasGelu kernel; it must match the single-sequence Gelu chain.
  util::Rng rng(46);
  const nn::TransformerEncoder transformer(
      /*dim=*/24, /*num_heads=*/2, /*ff_dim=*/48, /*num_layers=*/1,
      /*max_len=*/64, /*dropout=*/0.0f, &rng, nn::FfActivation::kGelu);
  util::Rng data_rng(47);
  const auto random_seq = [&](int t) {
    nn::Tensor x = nn::Tensor::Zeros(t, 24);
    for (float& v : x.value()) {
      v = static_cast<float>(data_rng.Uniform(-1.0, 1.0));
    }
    return x;
  };
  const nn::Tensor x1 = random_seq(5);
  const nn::Tensor x2 = random_seq(9);
  nn::NoGradGuard no_grad;
  const nn::BatchLayout layout = nn::BatchLayout::FromLengths({5, 9});
  const nn::Tensor batched =
      transformer.ForwardBatch(nn::ConcatRows({x1, x2}), layout);
  const nn::Tensor single1 = transformer.Forward(x1, nullptr);
  const nn::Tensor single2 = transformer.Forward(x2, nullptr);
  for (int r = 0; r < 5; ++r) {
    for (int c = 0; c < 24; ++c) EXPECT_EQ(batched.at(r, c), single1.at(r, c));
  }
  for (int r = 0; r < 9; ++r) {
    for (int c = 0; c < 24; ++c) {
      EXPECT_EQ(batched.at(5 + r, c), single2.at(r, c));
    }
  }
}

// --- Plan fingerprints ------------------------------------------------------

TEST(FingerprintTest, StableAndCloneInvariant) {
  const auto plans = SamplePlans(6, 21);
  for (const auto& p : plans) {
    const uint64_t fp = plan::FingerprintPlan(*p);
    EXPECT_EQ(fp, plan::FingerprintPlan(*p));  // deterministic
    const auto clone = p->Clone();
    EXPECT_EQ(fp, plan::FingerprintPlan(*clone));  // structure-only
    EXPECT_EQ(fp, plan::FingerprintTokens(plan::LinearizeDfsBracket(*p)));
  }
}

TEST(FingerprintTest, CollisionSanityOnAllWorkloadTemplates) {
  // One plan per template across all four benchmark workloads (the
  // repo's 175-template catalog: TPC-H 22, TPC-DS 20, JOB 113, Spatial 20).
  std::vector<std::unique_ptr<plan::PlanNode>> plans;
  util::Rng rng(99);
  const config::DbConfig db_config;
  const auto add_workload = [&](const simdb::BenchmarkWorkload& workload) {
    simdb::Planner planner(&workload.GetCatalog(), &db_config);
    for (int t = 0; t < workload.NumTemplates(); ++t) {
      plans.push_back(
          std::move(planner.PlanQuery(workload.Instantiate(t, &rng)).root));
    }
  };
  add_workload(simdb::TpchWorkload(0.05));
  add_workload(simdb::TpcdsWorkload(0.05, 20));
  add_workload(simdb::JobWorkload());
  add_workload(simdb::SpatialWorkload());
  ASSERT_EQ(plans.size(), 175u);

  // Fingerprints must agree exactly with token-sequence identity: equal
  // sequences share a fingerprint, distinct sequences must not collide
  // (at 175 keys a 64-bit hash collision indicates a broken hash).
  std::map<std::string, uint64_t> by_tokens;
  std::map<uint64_t, std::string> by_fingerprint;
  for (const auto& p : plans) {
    const auto tokens = plan::LinearizeDfsBracket(*p);
    std::string token_key;
    token_key.reserve(tokens.size() * 3);
    for (const auto& t : tokens) {
      token_key.push_back(static_cast<char>(t.level1));
      token_key.push_back(static_cast<char>(t.level2));
      token_key.push_back(static_cast<char>(t.level3));
    }
    const uint64_t fp = plan::FingerprintTokens(tokens);
    const auto [tok_it, tok_new] = by_tokens.try_emplace(token_key, fp);
    EXPECT_EQ(tok_it->second, fp);  // same tokens -> same fingerprint
    const auto [fp_it, fp_new] = by_fingerprint.try_emplace(fp, token_key);
    EXPECT_EQ(fp_it->second, token_key);  // same fingerprint -> same tokens
  }
  EXPECT_EQ(by_tokens.size(), by_fingerprint.size());
  EXPECT_GT(by_tokens.size(), 50u);  // the catalog is structurally diverse
}

// --- Embedding cache --------------------------------------------------------

TEST(EmbeddingCacheTest, HitReturnsIdenticalEmbeddingAndCounts) {
  serve::EmbeddingCacheConfig config;
  config.capacity = 8;
  config.shards = 2;
  serve::EmbeddingCache cache(config);
  const std::vector<float> embedding = {1.5f, -2.25f, 0.0f, 3.75f};
  EXPECT_FALSE(cache.Lookup(42, nullptr));  // miss
  cache.Insert(42, embedding);
  std::vector<float> out;
  ASSERT_TRUE(cache.Lookup(42, &out));
  EXPECT_EQ(out, embedding);  // exact bytes back
  const auto stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
}

TEST(EmbeddingCacheTest, EvictsInLruOrder) {
  serve::EmbeddingCacheConfig config;
  config.capacity = 3;
  config.shards = 1;  // single shard: one global LRU order
  serve::EmbeddingCache cache(config);
  cache.Insert(1, {1.0f});
  cache.Insert(2, {2.0f});
  cache.Insert(3, {3.0f});
  // Touch 1 so 2 becomes the least recently used.
  EXPECT_TRUE(cache.Lookup(1, nullptr));
  cache.Insert(4, {4.0f});
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));  // evicted
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_TRUE(cache.Contains(4));
  cache.Insert(5, {5.0f});
  EXPECT_FALSE(cache.Contains(3));  // next LRU out
  EXPECT_EQ(cache.GetStats().evictions, 2u);
  EXPECT_EQ(cache.GetStats().entries, 3u);
}

TEST(EmbeddingCacheTest, ReinsertRefreshesInsteadOfEvicting) {
  serve::EmbeddingCacheConfig config;
  config.capacity = 2;
  config.shards = 1;
  serve::EmbeddingCache cache(config);
  cache.Insert(1, {1.0f});
  cache.Insert(2, {2.0f});
  cache.Insert(1, {1.5f});  // refresh: 2 is now LRU
  cache.Insert(3, {3.0f});
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  std::vector<float> out;
  ASSERT_TRUE(cache.Lookup(1, &out));
  EXPECT_EQ(out[0], 1.5f);  // refreshed value
}

TEST(EmbeddingCacheTest, ClearResetsEntriesAndCounters) {
  serve::EmbeddingCache cache;
  cache.Insert(7, {1.0f});
  EXPECT_TRUE(cache.Lookup(7, nullptr));
  cache.Clear();
  const auto stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_FALSE(cache.Contains(7));
}

// --- EmbeddingService -------------------------------------------------------

TEST(EmbeddingServiceTest, ServesBitExactEmbeddingsColdAndWarm) {
  util::Rng rng(51);
  const encoder::TransformerPlanEncoder encoder(SmallConfig(), &rng);
  serve::EmbeddingService service(&encoder);
  const auto plans = SamplePlans(9, 31);
  const auto ptrs = Pointers(plans);
  const auto cold = service.EncodeAll(ptrs);
  const auto warm = service.EncodeAll(ptrs);  // all hits
  nn::NoGradGuard no_grad;
  for (size_t i = 0; i < plans.size(); ++i) {
    const nn::Tensor reference = encoder.Encode(*plans[i], nullptr);
    for (int c = 0; c < reference.cols(); ++c) {
      EXPECT_EQ(cold[i].at(0, c), reference.at(0, c)) << "cold " << i;
      EXPECT_EQ(warm[i].at(0, c), reference.at(0, c)) << "warm " << i;
    }
  }
  const auto stats = service.GetStats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.plans, 2 * plans.size());
  EXPECT_EQ(stats.cache.hits, plans.size());
}

TEST(EmbeddingServiceTest, DeduplicatesRepeatsWithinOneRequest) {
  util::Rng rng(52);
  const encoder::TransformerPlanEncoder encoder(SmallConfig(), &rng);
  serve::EmbeddingService service(&encoder);
  const auto plans = SamplePlans(1, 33);
  std::vector<const plan::PlanNode*> repeated(8, plans[0].get());
  const auto results = service.EncodeAll(repeated);
  ASSERT_EQ(results.size(), 8u);
  for (int i = 1; i < 8; ++i) {
    for (int c = 0; c < results[0].cols(); ++c) {
      EXPECT_EQ(results[i].at(0, c), results[0].at(0, c));
    }
  }
  // Eight plans served, but the encoder ran exactly once.
  const auto stats = service.GetStats();
  EXPECT_EQ(stats.plans, 8u);
  EXPECT_EQ(stats.encoded_plans, 1u);
}

TEST(EmbeddingServiceTest, TemplateReplayReachesWarmHitRate) {
  // A workload replaying its templates: the first pass misses, the
  // following replays hit. Ten passes -> 90% hit rate, the acceptance
  // threshold of the serving layer.
  util::Rng rng(53);
  const encoder::TransformerPlanEncoder encoder(SmallConfig(), &rng);
  serve::EmbeddingService service(&encoder);
  util::Rng plan_rng(54);
  const config::DbConfig db_config;
  const simdb::TpchWorkload tpch(0.05);
  simdb::Planner planner(&tpch.GetCatalog(), &db_config);
  std::vector<std::unique_ptr<plan::PlanNode>> plans;
  for (int t = 0; t < tpch.NumTemplates(); ++t) {
    plans.push_back(
        std::move(planner.PlanQuery(tpch.Instantiate(t, &plan_rng)).root));
  }
  const auto ptrs = Pointers(plans);
  for (int pass = 0; pass < 10; ++pass) (void)service.EncodeAll(ptrs);
  const auto stats = service.GetStats();
  EXPECT_EQ(stats.plans, 10u * plans.size());
  EXPECT_GE(stats.cache.HitRate(), 0.9);
  EXPECT_GT(stats.plans_per_second, 0.0);
  EXPECT_GE(stats.p99_ms, stats.p50_ms);
}

TEST(EmbeddingServiceTest, EvictionKeepsServingCorrectEmbeddings) {
  util::Rng rng(55);
  const encoder::TransformerPlanEncoder encoder(SmallConfig(), &rng);
  serve::EmbeddingServiceConfig config;
  config.cache.capacity = 4;  // far smaller than the plan set
  config.cache.shards = 1;
  serve::EmbeddingService service(&encoder, config);
  const auto plans = SamplePlans(12, 35);
  const auto ptrs = Pointers(plans);
  (void)service.EncodeAll(ptrs);
  const auto again = service.EncodeAll(ptrs);
  EXPECT_GT(service.GetStats().cache.evictions, 0u);
  nn::NoGradGuard no_grad;
  for (size_t i = 0; i < plans.size(); ++i) {
    const nn::Tensor reference = encoder.Encode(*plans[i], nullptr);
    for (int c = 0; c < reference.cols(); ++c) {
      EXPECT_EQ(again[i].at(0, c), reference.at(0, c));
    }
  }
}

TEST(EmbeddingServiceTest, CacheDisabledStillServes) {
  util::Rng rng(56);
  const encoder::TransformerPlanEncoder encoder(SmallConfig(), &rng);
  serve::EmbeddingServiceConfig config;
  config.enable_cache = false;
  serve::EmbeddingService service(&encoder, config);
  const auto plans = SamplePlans(3, 37);
  const auto ptrs = Pointers(plans);
  (void)service.EncodeAll(ptrs);
  (void)service.EncodeAll(ptrs);
  const auto stats = service.GetStats();
  EXPECT_EQ(stats.encoded_plans, 6u);  // every plan re-encoded
  EXPECT_EQ(stats.cache.hits + stats.cache.misses, 0u);
  EXPECT_EQ(service.cache(), nullptr);
}

TEST(EmbeddingServiceTest, ConcurrentCallersSeeConsistentEmbeddings) {
  // Several request threads share one service and one cache; run under
  // TSan by scripts/verify_threading.sh. Every caller must read
  // bit-identical embeddings whether it encoded or hit the cache.
  util::Rng rng(57);
  const encoder::TransformerPlanEncoder encoder(SmallConfig(), &rng);
  serve::EmbeddingService service(&encoder);
  const auto plans = SamplePlans(10, 39);
  const auto ptrs = Pointers(plans);
  std::vector<std::vector<nn::Tensor>> results(4);
  {
    std::vector<std::thread> callers;
    callers.reserve(4);
    for (int t = 0; t < 4; ++t) {
      callers.emplace_back(
          [&, t]() { results[t] = service.EncodeAll(ptrs); });
    }
    for (auto& caller : callers) caller.join();
  }
  nn::NoGradGuard no_grad;
  for (size_t i = 0; i < plans.size(); ++i) {
    const nn::Tensor reference = encoder.Encode(*plans[i], nullptr);
    for (int t = 0; t < 4; ++t) {
      for (int c = 0; c < reference.cols(); ++c) {
        EXPECT_EQ(results[t][i].at(0, c), reference.at(0, c))
            << "caller " << t << " plan " << i;
      }
    }
  }
  const auto stats = service.GetStats();
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_EQ(stats.plans, 4u * plans.size());
}

}  // namespace
}  // namespace qpe
