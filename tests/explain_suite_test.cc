// Tests for the EXPLAIN renderer, the EncoderSuite bundle, and workload
// similarity utilities.

#include <cstdio>
#include <filesystem>
#include <string>

#include "config/db_config.h"
#include "data/plan_corpus.h"
#include "encoder/encoder_suite.h"
#include "gtest/gtest.h"
#include "plan/explain.h"
#include "simdb/executor.h"
#include "simdb/planner.h"
#include "simdb/workloads.h"
#include "tasks/workload_similarity.h"

namespace qpe {
namespace {

plan::Plan PlannedTpchQuery(int template_index, bool execute) {
  static const simdb::TpchWorkload* const kTpch =
      new simdb::TpchWorkload(0.05);
  config::DbConfig db_config;
  util::Rng rng(1);
  const simdb::QuerySpec spec = kTpch->Instantiate(template_index, &rng);
  simdb::Planner planner(&kTpch->GetCatalog(), &db_config);
  plan::Plan planned = planner.PlanQuery(spec);
  if (execute) {
    simdb::ExecutorSim executor(&kTpch->GetCatalog(), &db_config);
    util::Rng noise(2);
    executor.Execute(&planned, spec.cardinality_seed, &noise);
  }
  return planned;
}

TEST(ExplainTest, RendersTreeWithCostsAndActuals) {
  const plan::Plan planned = PlannedTpchQuery(2, /*execute=*/true);
  const std::string text = plan::Explain(*planned.root);
  EXPECT_NE(text.find("cost="), std::string::npos);
  EXPECT_NE(text.find("actual time="), std::string::npos);
  EXPECT_NE(text.find("->"), std::string::npos);
  EXPECT_NE(text.find("Buffers: shared hit="), std::string::npos);
  // Scan nodes name their relation.
  EXPECT_NE(text.find(" on "), std::string::npos);
}

TEST(ExplainTest, PlainExplainOmitsActuals) {
  const plan::Plan planned = PlannedTpchQuery(2, /*execute=*/false);
  plan::ExplainOptions options;
  options.analyze = false;
  const std::string text = plan::Explain(*planned.root, options);
  EXPECT_NE(text.find("cost="), std::string::npos);
  EXPECT_EQ(text.find("actual time="), std::string::npos);
  EXPECT_EQ(text.find("Buffers:"), std::string::npos);
}

TEST(ExplainTest, DisplayNamesReverseTaxonomy) {
  plan::PlanNode bitmap(plan::OperatorType::Parse("Scan-Heap-Bitmap"));
  EXPECT_NE(plan::Explain(bitmap).find("Bitmap Heap Scan"),
            std::string::npos);
  plan::PlanNode join(plan::OperatorType::Parse("Join-Hash"));
  EXPECT_NE(plan::Explain(join).find("Hash Join"), std::string::npos);
  plan::PlanNode nested(plan::OperatorType::Parse("Loop-Nested"));
  EXPECT_NE(plan::Explain(nested).find("Nested Loop"), std::string::npos);
}

TEST(ExplainTest, IndentationGrowsWithDepth) {
  const plan::Plan planned = PlannedTpchQuery(4, /*execute=*/false);  // Q5
  const std::string text = plan::Explain(*planned.root);
  // The deepest scan line is indented further than the first child line.
  const size_t first_arrow = text.find("->");
  const size_t last_arrow = text.rfind("->");
  ASSERT_NE(first_arrow, std::string::npos);
  size_t first_col = first_arrow - text.rfind('\n', first_arrow) - 1;
  size_t last_col = last_arrow - text.rfind('\n', last_arrow) - 1;
  EXPECT_GT(last_col, first_col);
}

TEST(EncoderSuiteTest, SaveLoadRoundTrip) {
  const std::string dir =
      std::filesystem::temp_directory_path() / "qpe_suite_test";
  std::filesystem::create_directories(dir);

  encoder::EncoderSuite::Config config;
  config.seed = 5;
  encoder::EncoderSuite source(config);
  ASSERT_TRUE(source.SaveToDirectory(dir));

  encoder::EncoderSuite::Config other = config;
  other.seed = 99;  // different init, same shapes
  encoder::EncoderSuite loaded(other);
  ASSERT_TRUE(loaded.LoadFromDirectory(dir));

  data::RandomPlanGenerator generator((util::Rng(3)));
  const auto plan = generator.Generate();
  const nn::Tensor a = source.structure()->Encode(*plan, nullptr);
  const nn::Tensor b = loaded.structure()->Encode(*plan, nullptr);
  for (int c = 0; c < a.cols(); ++c) EXPECT_FLOAT_EQ(a.at(0, c), b.at(0, c));

  std::filesystem::remove_all(dir);
}

TEST(EncoderSuiteTest, LoadFromMissingDirectoryFails) {
  encoder::EncoderSuite suite;
  EXPECT_FALSE(suite.LoadFromDirectory("/nonexistent_qpe_dir"));
}

TEST(EncoderSuiteTest, FeaturizerConfigWiresAllEncoders) {
  const simdb::TpchWorkload tpch(0.05);
  encoder::EncoderSuite suite;
  const auto config = suite.FeaturizerConfig(&tpch.GetCatalog());
  EXPECT_EQ(config.structure, suite.structure());
  for (int g = 0; g < 4; ++g) {
    EXPECT_NE(config.performance[g], nullptr);
  }
  tasks::EmbeddingFeaturizer featurizer(config);
  EXPECT_GT(featurizer.FeatureDim(), 48);
}

TEST(WorkloadSimilarityTest, IdenticalWorkloadsCosineOne) {
  encoder::EncoderSuite suite;
  data::RandomPlanGenerator generator((util::Rng(7)));
  const auto p1 = generator.Generate();
  const auto p2 = generator.Generate();
  const std::vector<tasks::WeightedPlan> workload = {{p1.get(), 0.7},
                                                     {p2.get(), 0.3}};
  const auto a = tasks::WorkloadEmbedding(*suite.structure(), workload);
  const auto b = tasks::WorkloadEmbedding(*suite.structure(), workload);
  EXPECT_NEAR(tasks::CosineSimilarity(a, b), 1.0, 1e-6);
}

TEST(WorkloadSimilarityTest, WeightsMatter) {
  encoder::EncoderSuite suite;
  data::RandomPlanGenerator generator((util::Rng(8)));
  const auto p1 = generator.Generate();
  const auto p2 = generator.Generate();
  const auto heavy_p1 = tasks::WorkloadEmbedding(
      *suite.structure(), {{p1.get(), 0.9}, {p2.get(), 0.1}});
  const auto heavy_p2 = tasks::WorkloadEmbedding(
      *suite.structure(), {{p1.get(), 0.1}, {p2.get(), 0.9}});
  const auto only_p1 =
      tasks::WorkloadEmbedding(*suite.structure(), {{p1.get(), 1.0}});
  EXPECT_LT(tasks::EuclideanDistance(heavy_p1, only_p1),
            tasks::EuclideanDistance(heavy_p2, only_p1));
}

TEST(WorkloadSimilarityTest, EmptyWorkloadIsZero) {
  encoder::EncoderSuite suite;
  const auto embedding = tasks::WorkloadEmbedding(*suite.structure(), {});
  for (double v : embedding) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(WorkloadSimilarityTest, KMeansSeparatesObviousClusters) {
  // Two tight blobs in 2-D.
  std::vector<std::vector<double>> rows;
  util::Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    rows.push_back({rng.Normal(0, 0.1), rng.Normal(0, 0.1)});
  }
  for (int i = 0; i < 20; ++i) {
    rows.push_back({rng.Normal(10, 0.1), rng.Normal(10, 0.1)});
  }
  const auto assignment = tasks::KMeansCluster(rows, 2, 20, 42);
  ASSERT_EQ(assignment.size(), 40u);
  for (int i = 1; i < 20; ++i) EXPECT_EQ(assignment[i], assignment[0]);
  for (int i = 21; i < 40; ++i) EXPECT_EQ(assignment[i], assignment[20]);
  EXPECT_NE(assignment[0], assignment[20]);
}

TEST(WorkloadSimilarityTest, KMeansDeterministic) {
  std::vector<std::vector<double>> rows;
  util::Rng rng(10);
  for (int i = 0; i < 30; ++i) {
    rows.push_back({rng.Uniform(), rng.Uniform(), rng.Uniform()});
  }
  EXPECT_EQ(tasks::KMeansCluster(rows, 3, 15, 7),
            tasks::KMeansCluster(rows, 3, 15, 7));
}

TEST(WorkloadSimilarityTest, CosineEdgeCases) {
  EXPECT_DOUBLE_EQ(tasks::CosineSimilarity({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(tasks::CosineSimilarity({0, 0}, {1, 1}), 0.0);
  EXPECT_NEAR(tasks::CosineSimilarity({1, 2}, {2, 4}), 1.0, 1e-12);
  EXPECT_NEAR(tasks::CosineSimilarity({1, 0}, {-1, 0}), -1.0, 1e-12);
}

}  // namespace
}  // namespace qpe
