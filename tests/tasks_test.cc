#include <cmath>
#include <memory>

#include "config/lhs_sampler.h"
#include "data/datasets.h"
#include "data/features.h"
#include "encoder/performance_encoder.h"
#include "encoder/structure_encoder.h"
#include "gtest/gtest.h"
#include "simdb/workload_runner.h"
#include "simdb/workloads.h"
#include "tasks/baselines.h"
#include "tasks/classifier.h"
#include "tasks/embeddings.h"
#include "tasks/latency_model.h"
#include "tasks/qppnet.h"

namespace qpe::tasks {
namespace {

// Small executed-query dataset shared by the latency tests.
std::vector<simdb::ExecutedQuery> MakeExecuted(int num_configs = 8) {
  const simdb::TpchWorkload tpch(0.05);
  config::LhsSampler sampler((util::Rng(1)));
  const auto configs = sampler.Sample(num_configs);
  simdb::RunOptions options;
  options.instances_per_template = 2;
  return simdb::RunWorkloadTemplates(tpch, {0, 2, 3, 5, 10, 13}, configs,
                                     options);
}

void SplitTrainTest(const std::vector<simdb::ExecutedQuery>& all,
                    std::vector<simdb::ExecutedQuery>* train,
                    std::vector<simdb::ExecutedQuery>* test) {
  for (size_t i = 0; i < all.size(); ++i) {
    simdb::ExecutedQuery copy;
    copy.query = all[i].query.CloneDeep();
    copy.db_config = all[i].db_config;
    copy.latency_ms = all[i].latency_ms;
    copy.template_index = all[i].template_index;
    (i % 5 == 0 ? test : train)->push_back(std::move(copy));
  }
}

double MeanPredictorMae(const std::vector<simdb::ExecutedQuery>& train,
                        const std::vector<simdb::ExecutedQuery>& test) {
  double mean = 0;
  for (const auto& r : train) mean += r.latency_ms;
  mean /= train.size();
  double mae = 0;
  for (const auto& r : test) mae += std::abs(r.latency_ms - mean);
  return mae / test.size();
}

TEST(SolveRidgeTest, SolvesLinearSystem) {
  // A = [[2,0],[0,4]], b = [2, 8] -> x = [1, 2] (lambda=0).
  const auto x = SolveRidge({{2, 0}, {0, 4}}, {2, 8}, 0.0);
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 1.0, 1e-9);
  EXPECT_NEAR(x[1], 2.0, 1e-9);
}

TEST(SolveRidgeTest, RidgeShrinks) {
  const auto x = SolveRidge({{1, 0}, {0, 1}}, {1, 1}, 1.0);
  EXPECT_NEAR(x[0], 0.5, 1e-9);
}

TEST(PlanLevelFeaturesTest, FixedDim) {
  const auto executed = MakeExecuted(2);
  const size_t dim = PlanLevelFeatures(executed[0]).size();
  for (const auto& record : executed) {
    EXPECT_EQ(PlanLevelFeatures(record).size(), dim);
  }
}

TEST(BaselinesTest, AllBaselinesBeatOrMatchMeanPredictor) {
  const auto all = MakeExecuted();
  std::vector<simdb::ExecutedQuery> train, test;
  SplitTrainTest(all, &train, &test);
  const double mean_mae = MeanPredictorMae(train, test);

  TamBaseline tam;
  SvrBaseline svr;
  RbfBaseline rbf;
  for (LatencyBaseline* baseline :
       std::vector<LatencyBaseline*>{&tam, &svr, &rbf}) {
    baseline->Train(train);
    const double mae = baseline->EvaluateMaeMs(test);
    EXPECT_GT(mae, 0) << baseline->name();
    EXPECT_LT(mae, mean_mae * 1.5) << baseline->name();
  }
}

TEST(BaselinesTest, RbfInterpolatesTrainPoints) {
  const auto all = MakeExecuted(4);
  std::vector<simdb::ExecutedQuery> train, test;
  SplitTrainTest(all, &train, &test);
  RbfBaseline rbf;
  rbf.Train(train);
  // On its own training points RBF should do quite well.
  EXPECT_LT(rbf.EvaluateMaeMs(train), MeanPredictorMae(train, train));
}

TEST(QppNetTest, TrainsAndPredicts) {
  const auto all = MakeExecuted(4);
  std::vector<simdb::ExecutedQuery> train, test;
  SplitTrainTest(all, &train, &test);
  QppNet::Config config;
  config.epochs = 8;
  util::Rng rng(2);
  QppNet qppnet(config, &rng);
  qppnet.Train(train);
  const double mae = qppnet.EvaluateMaeMs(test);
  EXPECT_GT(mae, 0);
  EXPECT_LT(mae, MeanPredictorMae(train, test) * 2.0);
}

TEST(EmbeddingFeaturizerTest, DimsAndAblations) {
  util::Rng rng(3);
  encoder::StructureEncoderConfig s_config;
  s_config.level1_dim = 12;
  s_config.level2_dim = 6;
  s_config.level3_dim = 6;
  s_config.num_heads = 2;
  s_config.ff_dim = 32;
  s_config.num_layers = 1;
  s_config.dropout = 0;
  encoder::TransformerPlanEncoder structure(s_config, &rng);
  encoder::PerfEncoderConfig p_config;
  p_config.db_dim = config::DbConfig::FeatureDim();
  p_config.meta_dim = catalog::Catalog::kMetaFeatureDim;
  p_config.node_dim = data::kNodeFeatureDim;
  p_config.column_hidden = 8;
  p_config.embed_dim = 8;
  encoder::PerformanceEncoder scan_encoder(p_config, &rng);

  const simdb::TpchWorkload tpch(0.05);
  const auto executed = MakeExecuted(2);

  EmbeddingFeaturizer::Config both;
  both.structure = &structure;
  both.performance[static_cast<int>(plan::OperatorGroup::kScan)] = &scan_encoder;
  both.catalog = &tpch.GetCatalog();
  EmbeddingFeaturizer featurizer(both);
  // structure (24) + scan embedding (8) + scan group predictions (3) + db.
  EXPECT_EQ(featurizer.FeatureDim(),
            24 + 8 + 3 + config::DbConfig::FeatureDim());
  EXPECT_EQ(static_cast<int>(featurizer.Featurize(executed[0]).size()),
            featurizer.FeatureDim());

  EmbeddingFeaturizer::Config structure_only;
  structure_only.structure = &structure;
  structure_only.include_db_features = false;
  EmbeddingFeaturizer s_featurizer(structure_only);
  EXPECT_EQ(s_featurizer.FeatureDim(), 24);
}

TEST(LatencyPredictorTest, BeatsMeanPredictor) {
  const auto all = MakeExecuted();
  std::vector<simdb::ExecutedQuery> train, test;
  SplitTrainTest(all, &train, &test);

  const simdb::TpchWorkload tpch(0.05);
  util::Rng rng(4);
  encoder::PerfEncoderConfig p_config;
  p_config.column_hidden = 16;
  p_config.embed_dim = 16;
  encoder::PerformanceEncoder scan_enc(p_config, &rng);
  encoder::PerformanceEncoder join_enc(p_config, &rng);

  EmbeddingFeaturizer::Config f_config;
  f_config.performance[static_cast<int>(plan::OperatorGroup::kScan)] = &scan_enc;
  f_config.performance[static_cast<int>(plan::OperatorGroup::kJoin)] = &join_enc;
  f_config.catalog = &tpch.GetCatalog();
  EmbeddingFeaturizer featurizer(f_config);

  LatencyPredictor predictor(&featurizer, 32, &rng);
  LatencyPredictor::TrainOptions options;
  options.epochs = 120;
  predictor.Train(train, options);
  EXPECT_LT(predictor.EvaluateMaeMs(test), MeanPredictorMae(train, test));
}

TEST(QueryClassifierTest, LearnsSeparableFeatures) {
  // Toy: 12 templates in 4 clusters; features = noisy one-hot template.
  const int num_templates = 12, num_clusters = 4;
  std::vector<int> template_to_cluster(num_templates);
  for (int t = 0; t < num_templates; ++t) template_to_cluster[t] = t / 3;

  util::Rng rng(5);
  std::vector<std::vector<float>> features;
  std::vector<int> labels;
  for (int i = 0; i < 360; ++i) {
    const int t = i % num_templates;
    std::vector<float> row(num_templates + 2);
    for (auto& v : row) v = static_cast<float>(rng.Normal(0, 0.3));
    row[t] += 2.0f;
    features.push_back(std::move(row));
    labels.push_back(t);
  }

  QueryClassifier::Config config;
  config.feature_dim = num_templates + 2;
  config.hidden_dim = 24;
  config.num_templates = num_templates;
  config.num_clusters = num_clusters;
  config.template_to_cluster = template_to_cluster;
  QueryClassifier classifier(config, &rng);
  QueryClassifier::TrainOptions options;
  options.epochs = 30;
  classifier.Train(features, labels, options);
  const auto accuracy = classifier.Evaluate(features, labels);
  EXPECT_GT(accuracy.template_accuracy, 0.8);
  EXPECT_GE(accuracy.cluster_accuracy, accuracy.template_accuracy);
}

TEST(QueryClassifierTest, ClusterAccuracyAtLeastTemplateOnAmbiguous) {
  // Features only identify the cluster (not the template within it): the
  // cluster accuracy should be high while template accuracy stays near
  // 1/templates-per-cluster.
  const int num_templates = 8, num_clusters = 4;
  std::vector<int> template_to_cluster = {0, 0, 1, 1, 2, 2, 3, 3};
  util::Rng rng(6);
  std::vector<std::vector<float>> features;
  std::vector<int> labels;
  for (int i = 0; i < 240; ++i) {
    const int t = i % num_templates;
    std::vector<float> row(num_clusters);
    for (auto& v : row) v = static_cast<float>(rng.Normal(0, 0.2));
    row[template_to_cluster[t]] += 2.0f;
    features.push_back(std::move(row));
    labels.push_back(t);
  }
  QueryClassifier::Config config;
  config.feature_dim = num_clusters;
  config.hidden_dim = 16;
  config.num_templates = num_templates;
  config.num_clusters = num_clusters;
  config.template_to_cluster = template_to_cluster;
  QueryClassifier classifier(config, &rng);
  QueryClassifier::TrainOptions options;
  options.epochs = 25;
  classifier.Train(features, labels, options);
  const auto accuracy = classifier.Evaluate(features, labels);
  EXPECT_GT(accuracy.cluster_accuracy, 0.85);
  EXPECT_LT(accuracy.template_accuracy, 0.8);
}

TEST(QueryClassifierTest, PredictTemplateInRange) {
  QueryClassifier::Config config;
  config.feature_dim = 4;
  config.num_templates = 6;
  config.num_clusters = 2;
  config.template_to_cluster = {0, 0, 0, 1, 1, 1};
  util::Rng rng(7);
  QueryClassifier classifier(config, &rng);
  const int prediction = classifier.PredictTemplate({0.1f, 0.2f, 0.3f, 0.4f});
  EXPECT_GE(prediction, 0);
  EXPECT_LT(prediction, 6);
}

}  // namespace
}  // namespace qpe::tasks
