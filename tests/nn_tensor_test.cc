#include <cmath>
#include <functional>
#include <vector>

#include "gtest/gtest.h"
#include "nn/loss.h"
#include "nn/simd.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace qpe::nn {
namespace {

// Pins the kernel dispatch to a level for a test's duration and restores
// the previous level on exit. The fused-vs-chain comparisons below are
// bitwise only at the scalar level (the chain ops use scalar std::exp;
// a vector table's exp lanes are polynomial under the epsilon contract).
class SimdLevelGuard {
 public:
  explicit SimdLevelGuard(simd::Level level)
      : previous_(simd::ActiveLevel()) {
    simd::ForceLevel(level);
  }
  ~SimdLevelGuard() { simd::ForceLevel(previous_); }

 private:
  simd::Level previous_;
};

// Numerical gradient check: compares autograd gradients of
// scalar_fn(inputs...) against central finite differences.
void CheckGradients(const std::vector<Tensor>& inputs,
                    const std::function<Tensor()>& scalar_fn,
                    float tolerance = 2e-2f) {
  Tensor loss = scalar_fn();
  ASSERT_EQ(loss.numel(), 1);
  for (Tensor input : inputs) input.ZeroGrad();
  loss.Backward();
  // Capture analytic gradients before perturbing values.
  std::vector<std::vector<float>> analytic;
  for (const Tensor& input : inputs) analytic.push_back(input.grad());

  const float eps = 1e-2f;
  for (size_t t = 0; t < inputs.size(); ++t) {
    Tensor input = inputs[t];
    for (int i = 0; i < input.numel(); ++i) {
      const float original = input.value()[i];
      input.value()[i] = original + eps;
      const float plus = scalar_fn().value()[0];
      input.value()[i] = original - eps;
      const float minus = scalar_fn().value()[0];
      input.value()[i] = original;
      const float numeric = (plus - minus) / (2 * eps);
      EXPECT_NEAR(analytic[t][i], numeric,
                  tolerance * std::max(1.0f, std::abs(numeric)))
          << "tensor " << t << " element " << i;
    }
  }
}

Tensor RandTensor(int rows, int cols, util::Rng* rng, float scale = 1.0f) {
  Tensor t = Tensor::Zeros(rows, cols, /*requires_grad=*/true);
  for (float& v : t.value()) {
    v = static_cast<float>(rng->Uniform(-scale, scale));
  }
  return t;
}

TEST(TensorTest, ConstructionShapes) {
  const Tensor t = Tensor::Zeros(3, 4);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 4);
  EXPECT_EQ(t.numel(), 12);
  EXPECT_FALSE(t.requires_grad());
  EXPECT_TRUE(Tensor::Scalar(2.0f, true).requires_grad());
}

TEST(TensorTest, MatMulForward) {
  const Tensor a = Tensor::FromVector(2, 3, {1, 2, 3, 4, 5, 6});
  const Tensor b = Tensor::FromVector(3, 2, {7, 8, 9, 10, 11, 12});
  const Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154);
}

TEST(TensorTest, MatMulGradient) {
  util::Rng rng(1);
  Tensor a = RandTensor(3, 4, &rng);
  Tensor b = RandTensor(4, 2, &rng);
  CheckGradients({a, b}, [&]() { return Sum(MatMul(a, b)); });
}

TEST(TensorTest, AddBroadcastRowGradient) {
  util::Rng rng(2);
  Tensor a = RandTensor(3, 4, &rng);
  Tensor b = RandTensor(1, 4, &rng);
  CheckGradients({a, b}, [&]() { return Sum(Add(a, b)); });
}

TEST(TensorTest, SubBroadcastColGradient) {
  util::Rng rng(3);
  Tensor a = RandTensor(3, 4, &rng);
  Tensor b = RandTensor(3, 1, &rng);
  CheckGradients({a, b}, [&]() { return Sum(Square(Sub(a, b))); });
}

TEST(TensorTest, MulScalarBroadcastGradient) {
  util::Rng rng(4);
  Tensor a = RandTensor(2, 3, &rng);
  Tensor b = RandTensor(1, 1, &rng);
  CheckGradients({a, b}, [&]() { return Sum(Mul(a, b)); });
}

TEST(TensorTest, UnaryOpGradients) {
  util::Rng rng(5);
  Tensor a = RandTensor(2, 3, &rng);
  CheckGradients({a}, [&]() { return Sum(Tanh(a)); });
  CheckGradients({a}, [&]() { return Sum(Sigmoid(a)); });
  CheckGradients({a}, [&]() { return Sum(Square(a)); });
  CheckGradients({a}, [&]() { return Sum(Exp(a)); });
}

TEST(TensorTest, ReluGradientAwayFromKink) {
  Tensor a = Tensor::FromVector(1, 4, {-2, -1, 1, 2}, true);
  CheckGradients({a}, [&]() { return Sum(Relu(a)); });
}

TEST(TensorTest, LogSqrtGradientPositiveDomain) {
  util::Rng rng(6);
  Tensor a = Tensor::Zeros(2, 3, true);
  for (float& v : a.value()) v = static_cast<float>(rng.Uniform(0.5, 2.0));
  CheckGradients({a}, [&]() { return Sum(Log(a)); });
  CheckGradients({a}, [&]() { return Sum(Sqrt(a)); });
}

TEST(TensorTest, TransposeGradient) {
  util::Rng rng(7);
  Tensor a = RandTensor(2, 5, &rng);
  CheckGradients({a}, [&]() { return Sum(Square(Transpose(a))); });
}

TEST(TensorTest, SoftmaxRowsSumToOne) {
  util::Rng rng(8);
  const Tensor a = RandTensor(4, 6, &rng, 3.0f);
  const Tensor s = SoftmaxRows(a);
  for (int r = 0; r < 4; ++r) {
    float total = 0;
    for (int c = 0; c < 6; ++c) {
      total += s.at(r, c);
      EXPECT_GT(s.at(r, c), 0);
    }
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(TensorTest, SoftmaxGradient) {
  util::Rng rng(9);
  Tensor a = RandTensor(2, 4, &rng);
  Tensor w = RandTensor(2, 4, &rng);
  CheckGradients({a}, [&]() { return Sum(Mul(SoftmaxRows(a), w)); });
}

TEST(TensorTest, RowSumAndMeanGradient) {
  util::Rng rng(10);
  Tensor a = RandTensor(3, 4, &rng);
  CheckGradients({a}, [&]() { return Sum(Square(RowSum(a))); });
  CheckGradients({a}, [&]() { return Sum(Square(RowMean(a))); });
}

TEST(TensorTest, ConcatSliceGradient) {
  util::Rng rng(11);
  Tensor a = RandTensor(2, 3, &rng);
  Tensor b = RandTensor(2, 2, &rng);
  CheckGradients({a, b}, [&]() {
    const Tensor cat = ConcatCols({a, b});
    return Sum(Square(SliceCols(cat, 1, 3)));
  });
  CheckGradients({a, b}, [&]() {
    const Tensor cat = ConcatRows({SliceCols(a, 0, 2), b});
    return Sum(Square(SliceRows(cat, 1, 2)));
  });
}

TEST(TensorTest, GatherRowsGradientAccumulates) {
  Tensor table = Tensor::FromVector(3, 2, {1, 2, 3, 4, 5, 6}, true);
  const Tensor gathered = GatherRows(table, {0, 2, 0});
  EXPECT_FLOAT_EQ(gathered.at(0, 0), 1);
  EXPECT_FLOAT_EQ(gathered.at(1, 1), 6);
  Tensor loss = Sum(gathered);
  table.ZeroGrad();
  loss.Backward();
  // Row 0 gathered twice -> gradient 2; row 1 never -> 0; row 2 once -> 1.
  EXPECT_FLOAT_EQ(table.grad()[0], 2);
  EXPECT_FLOAT_EQ(table.grad()[2], 0);
  EXPECT_FLOAT_EQ(table.grad()[4], 1);
}

TEST(TensorTest, CrossEntropyMatchesManual) {
  const Tensor logits = Tensor::FromVector(2, 3, {1, 2, 3, 3, 2, 1}, true);
  const Tensor loss = CrossEntropy(logits, {2, 0});
  // Both rows have the target at the max logit with the same gaps.
  const float expected =
      -std::log(std::exp(3.0f) / (std::exp(1.0f) + std::exp(2.0f) + std::exp(3.0f)));
  EXPECT_NEAR(loss.value()[0], expected, 1e-5f);
}

TEST(TensorTest, CrossEntropyGradient) {
  util::Rng rng(12);
  Tensor logits = RandTensor(3, 4, &rng, 2.0f);
  CheckGradients({logits}, [&]() { return CrossEntropy(logits, {1, 3, 0}); });
}

TEST(TensorTest, LossGradients) {
  util::Rng rng(13);
  Tensor pred = RandTensor(3, 2, &rng);
  Tensor target = RandTensor(3, 2, &rng);
  target = target.Detach();
  CheckGradients({pred}, [&]() { return MseLoss(pred, target); });
  CheckGradients({pred}, [&]() { return L1Loss(pred, target); });
}

TEST(TensorTest, BceLossGradient) {
  util::Rng rng(14);
  Tensor logits = RandTensor(4, 1, &rng);
  Tensor target = Tensor::FromVector(4, 1, {1, 0, 1, 0});
  CheckGradients({logits},
                 [&]() { return BceLoss(Sigmoid(logits), target); });
}

TEST(TensorTest, ChainedGraphGradient) {
  // A deeper composite expression exercising shared subexpressions.
  util::Rng rng(15);
  Tensor w1 = RandTensor(3, 4, &rng);
  Tensor w2 = RandTensor(4, 2, &rng);
  Tensor x = RandTensor(2, 3, &rng);
  x = x.Detach();
  CheckGradients({w1, w2}, [&]() {
    const Tensor h = Tanh(MatMul(x, w1));
    const Tensor y = MatMul(h, w2);
    return Mean(Square(Add(y, Scale(y, 0.5f))));  // y used twice
  });
}

TEST(TensorTest, BackwardAccumulatesAcrossCalls) {
  Tensor a = Tensor::Scalar(2.0f, true);
  Tensor l1 = Square(a);
  l1.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 4.0f);
  Tensor l2 = Square(a);
  l2.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 8.0f);  // accumulated
  a.ZeroGrad();
  EXPECT_FLOAT_EQ(a.grad()[0], 0.0f);
}

TEST(TensorTest, DetachStopsGradient) {
  Tensor a = Tensor::Scalar(3.0f, true);
  const Tensor d = a.Detach();
  Tensor loss = Square(d);
  loss.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 0.0f);
}

TEST(TensorTest, NoGradGraphForConstants) {
  const Tensor a = Tensor::Zeros(2, 2);
  const Tensor b = Tensor::Zeros(2, 2);
  const Tensor c = Add(a, b);
  EXPECT_FALSE(c.requires_grad());
}

TEST(TensorTest, DropoutTrainKeepsScale) {
  util::Rng rng(16);
  const Tensor a = Tensor::Full(100, 10, 1.0f);
  const Tensor d = Dropout(a, 0.5f, &rng);
  double total = 0;
  for (float v : d.value()) total += v;
  // E[sum] = numel; allow generous slack.
  EXPECT_NEAR(total / a.numel(), 1.0, 0.15);
}

TEST(TensorTest, ClipGradNorm) {
  Tensor a = Tensor::Scalar(10.0f, true);
  Tensor loss = Square(a);  // grad = 20
  loss.Backward();
  const float norm = ClipGradNorm({a}, 1.0f);
  EXPECT_NEAR(norm, 20.0f, 1e-4f);
  EXPECT_NEAR(a.grad()[0], 1.0f, 1e-5f);
}

TEST(TensorTest, DeepGraphBackwardDoesNotOverflowStack) {
  // 5000 chained ops — must not recurse.
  Tensor x = Tensor::Scalar(0.5f, true);
  Tensor y = x;
  for (int i = 0; i < 5000; ++i) y = AddScalar(y, 0.001f);
  Tensor loss = Square(y);
  loss.Backward();
  EXPECT_GT(x.grad()[0], 0.0f);
}

// --- Fused serving kernels --------------------------------------------------
//
// The fused kernels promise bit-identical forwards to the op chains they
// replace; these tests enforce exact (==) float equality, not tolerance.

// Values bounded away from the ReLU kink so central differences and the
// subgradient agree.
Tensor KinkFreeTensor(int rows, int cols, util::Rng* rng) {
  Tensor t = Tensor::Zeros(rows, cols, /*requires_grad=*/true);
  for (float& v : t.value()) {
    const float x = static_cast<float>(rng->Uniform(0.1, 1.0));
    v = rng->Bernoulli(0.5) ? x : -x;
  }
  return t;
}

TEST(FusedKernelTest, BiasReluMatchesUnfusedBitExact) {
  util::Rng rng(71);
  const Tensor a = RandTensor(5, 7, &rng);
  const Tensor bias = RandTensor(1, 7, &rng);
  const Tensor fused = BiasRelu(a, bias);
  const Tensor unfused = Relu(Add(a, bias));
  ASSERT_EQ(fused.numel(), unfused.numel());
  for (int i = 0; i < fused.numel(); ++i) {
    EXPECT_EQ(fused.value()[i], unfused.value()[i]) << "element " << i;
  }
  // Gradients accumulate in the same row-major order as the Add/Relu
  // chain, so they are exact too.
  Sum(fused).Backward();
  const std::vector<float> fused_a = a.grad(), fused_b = bias.grad();
  a.ZeroGrad();
  bias.ZeroGrad();
  Sum(unfused).Backward();
  for (int i = 0; i < a.numel(); ++i) EXPECT_EQ(fused_a[i], a.grad()[i]);
  for (int i = 0; i < bias.numel(); ++i) EXPECT_EQ(fused_b[i], bias.grad()[i]);
}

TEST(FusedKernelTest, BiasGeluMatchesGeluOfAddBitExact) {
  util::Rng rng(72);
  const Tensor a = RandTensor(4, 6, &rng);
  const Tensor bias = RandTensor(1, 6, &rng);
  const Tensor fused = BiasGelu(a, bias);
  const Tensor unfused = Gelu(Add(a, bias));
  for (int i = 0; i < fused.numel(); ++i) {
    EXPECT_EQ(fused.value()[i], unfused.value()[i]) << "element " << i;
  }
}

TEST(FusedKernelTest, BiasReluGradient) {
  util::Rng rng(73);
  const Tensor a = KinkFreeTensor(3, 5, &rng);
  Tensor bias = Tensor::Zeros(1, 5, /*requires_grad=*/true);  // keeps a+b off 0
  CheckGradients({a, bias}, [&]() { return Sum(BiasRelu(a, bias)); });
}

TEST(FusedKernelTest, GeluForwardAndGradient) {
  // Exact erf form: gelu(0) = 0, gelu(x) -> x for large x, -> 0 for small.
  const Tensor x =
      Tensor::FromVector(1, 3, {0.0f, 10.0f, -10.0f}, /*requires_grad=*/true);
  const Tensor y = Gelu(x);
  EXPECT_EQ(y.value()[0], 0.0f);
  EXPECT_NEAR(y.value()[1], 10.0f, 1e-4f);
  EXPECT_NEAR(y.value()[2], 0.0f, 1e-4f);
  util::Rng rng(74);
  const Tensor a = RandTensor(3, 4, &rng);
  CheckGradients({a}, [&]() { return Sum(Gelu(a)); });
  const Tensor b = RandTensor(2, 4, &rng);
  const Tensor bias = RandTensor(1, 4, &rng, 0.3f);
  CheckGradients({b, bias}, [&]() { return Sum(BiasGelu(b, bias)); });
}

TEST(FusedKernelTest, LayerNormRowsMatchesCompositeChainBitExact) {
  util::Rng rng(75);
  const Tensor x = RandTensor(6, 9, &rng);
  const Tensor gamma = RandTensor(1, 9, &rng);
  const Tensor beta = RandTensor(1, 9, &rng);
  const Tensor fused = LayerNormRows(x, gamma, beta);
  // The op chain LayerNorm::Forward used before the fused kernel existed.
  const Tensor mean = RowMean(x);
  const Tensor centered = Sub(x, mean);
  const Tensor var = RowMean(Square(centered));
  const Tensor inv_std = Sqrt(AddScalar(var, 1e-5f));
  const Tensor recip = Exp(Scale(Log(inv_std), -1.0f));
  const Tensor unfused = Add(Mul(Mul(centered, recip), gamma), beta);
  for (int i = 0; i < fused.numel(); ++i) {
    EXPECT_EQ(fused.value()[i], unfused.value()[i]) << "element " << i;
  }
}

TEST(FusedKernelTest, LayerNormRowsGradient) {
  util::Rng rng(76);
  const Tensor x = RandTensor(4, 6, &rng);
  const Tensor gamma = RandTensor(1, 6, &rng);
  const Tensor beta = RandTensor(1, 6, &rng);
  // Weighted sum so row gradients are not uniform.
  const Tensor w = RandTensor(6, 1, &rng);
  CheckGradients({x, gamma, beta},
                 [&]() { return Sum(MatMul(LayerNormRows(x, gamma, beta), w)); });
}

TEST(FusedKernelTest, SoftmaxRowsMaskedMatchesUnpaddedBitExactScalar) {
  // At the scalar dispatch level the fused kernel is the seed-bit-exact
  // reference: row r over its valid prefix must equal SoftmaxRows on the
  // unpadded row exactly, and the padding tail must be exactly zero.
  SimdLevelGuard guard(simd::Level::kScalar);
  util::Rng rng(77);
  const Tensor a = RandTensor(3, 6, &rng);
  const std::vector<int> valid = {6, 4, 2};
  const Tensor masked = SoftmaxRowsMasked(a, valid);
  for (int r = 0; r < 3; ++r) {
    const Tensor row = SoftmaxRows(SliceCols(SliceRows(a, r, 1), 0, valid[r]));
    for (int c = 0; c < valid[r]; ++c) {
      EXPECT_EQ(masked.at(r, c), row.at(0, c)) << r << "," << c;
    }
    for (int c = valid[r]; c < 6; ++c) EXPECT_EQ(masked.at(r, c), 0.0f);
  }
}

TEST(FusedKernelTest, SoftmaxRowsMaskedMatchesUnpaddedWithinEpsilon) {
  // Under the machine's vector level the kernel's exp lanes are polynomial
  // (~2 ulp), so the comparison against the scalar-exp op chain is gated
  // by the epsilon contract instead of bitwise. On a machine without a
  // vector table this degenerates to the scalar case and still holds.
  SimdLevelGuard guard(simd::HardwareLevel());
  util::Rng rng(77);
  const Tensor a = RandTensor(5, 23, &rng);
  const std::vector<int> valid = {23, 17, 8, 3, 1};
  const Tensor masked = SoftmaxRowsMasked(a, valid);
  for (int r = 0; r < 5; ++r) {
    const Tensor row = SoftmaxRows(SliceCols(SliceRows(a, r, 1), 0, valid[r]));
    for (int c = 0; c < valid[r]; ++c) {
      EXPECT_NEAR(masked.at(r, c), row.at(0, c), 1e-6f) << r << "," << c;
    }
    for (int c = valid[r]; c < 23; ++c) EXPECT_EQ(masked.at(r, c), 0.0f);
  }
}

TEST(FusedKernelTest, SoftmaxRowsMaskedGradient) {
  util::Rng rng(78);
  const Tensor a = RandTensor(3, 5, &rng);
  const std::vector<int> valid = {5, 3, 1};
  const Tensor w = RandTensor(5, 1, &rng);
  CheckGradients(
      {a}, [&]() { return Sum(MatMul(SoftmaxRowsMasked(a, valid), w)); });
}

// Compares the fused packed attention against the per-sequence, per-head
// op chain ForwardBatch used before the fused kernel existed. tol == 0
// demands bitwise equality (valid at the scalar dispatch level); a
// positive tol applies the epsilon contract (vector levels, where the
// kernel's exp lanes are polynomial).
void CheckAttentionPackedAgainstChain(float tol) {
  util::Rng rng(79);
  const int dim = 8, num_heads = 2, dh = dim / num_heads;
  const std::vector<int> offsets = {0, 5};
  const std::vector<int> lengths = {5, 3};
  const Tensor q = RandTensor(8, dim, &rng);
  const Tensor k = RandTensor(8, dim, &rng);
  const Tensor v = RandTensor(8, dim, &rng);
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  const Tensor fused =
      MultiHeadAttentionPacked(q, k, v, offsets, lengths, num_heads, scale);
  for (size_t s = 0; s < lengths.size(); ++s) {
    const Tensor qs = SliceRows(q, offsets[s], lengths[s]);
    const Tensor ks = SliceRows(k, offsets[s], lengths[s]);
    const Tensor vs = SliceRows(v, offsets[s], lengths[s]);
    for (int h = 0; h < num_heads; ++h) {
      const Tensor qh = SliceCols(qs, h * dh, dh);
      const Tensor kh = SliceCols(ks, h * dh, dh);
      const Tensor vh = SliceCols(vs, h * dh, dh);
      const Tensor ctx =
          MatMul(SoftmaxRows(Scale(MatMul(qh, Transpose(kh)), scale)), vh);
      for (int i = 0; i < lengths[s]; ++i) {
        for (int c = 0; c < dh; ++c) {
          const float got = fused.at(offsets[s] + i, h * dh + c);
          const float want = ctx.at(i, c);
          if (tol == 0.0f) {
            EXPECT_EQ(got, want)
                << "seq " << s << " head " << h << " (" << i << "," << c << ")";
          } else {
            EXPECT_NEAR(got, want, tol)
                << "seq " << s << " head " << h << " (" << i << "," << c << ")";
          }
        }
      }
    }
  }
}

TEST(FusedKernelTest, MultiHeadAttentionPackedMatchesChainBitExactScalar) {
  SimdLevelGuard guard(simd::Level::kScalar);
  CheckAttentionPackedAgainstChain(0.0f);
}

TEST(FusedKernelTest, MultiHeadAttentionPackedMatchesChainWithinEpsilon) {
  SimdLevelGuard guard(simd::HardwareLevel());
  CheckAttentionPackedAgainstChain(1e-6f);
}

TEST(FusedKernelTest, MultiHeadAttentionPackedGradient) {
  util::Rng rng(80);
  const int dim = 6, num_heads = 2;
  const std::vector<int> offsets = {0, 4};
  const std::vector<int> lengths = {4, 2};
  const Tensor q = RandTensor(6, dim, &rng);
  const Tensor k = RandTensor(6, dim, &rng);
  const Tensor v = RandTensor(6, dim, &rng);
  const Tensor w = RandTensor(dim, 1, &rng);
  const float scale = 1.0f / std::sqrt(3.0f);
  CheckGradients({q, k, v}, [&]() {
    return Sum(MatMul(
        MultiHeadAttentionPacked(q, k, v, offsets, lengths, num_heads, scale),
        w));
  });
}

}  // namespace
}  // namespace qpe::nn
