#include <cmath>
#include <functional>
#include <vector>

#include "gtest/gtest.h"
#include "nn/loss.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace qpe::nn {
namespace {

// Numerical gradient check: compares autograd gradients of
// scalar_fn(inputs...) against central finite differences.
void CheckGradients(const std::vector<Tensor>& inputs,
                    const std::function<Tensor()>& scalar_fn,
                    float tolerance = 2e-2f) {
  Tensor loss = scalar_fn();
  ASSERT_EQ(loss.numel(), 1);
  for (Tensor input : inputs) input.ZeroGrad();
  loss.Backward();
  // Capture analytic gradients before perturbing values.
  std::vector<std::vector<float>> analytic;
  for (const Tensor& input : inputs) analytic.push_back(input.grad());

  const float eps = 1e-2f;
  for (size_t t = 0; t < inputs.size(); ++t) {
    Tensor input = inputs[t];
    for (int i = 0; i < input.numel(); ++i) {
      const float original = input.value()[i];
      input.value()[i] = original + eps;
      const float plus = scalar_fn().value()[0];
      input.value()[i] = original - eps;
      const float minus = scalar_fn().value()[0];
      input.value()[i] = original;
      const float numeric = (plus - minus) / (2 * eps);
      EXPECT_NEAR(analytic[t][i], numeric,
                  tolerance * std::max(1.0f, std::abs(numeric)))
          << "tensor " << t << " element " << i;
    }
  }
}

Tensor RandTensor(int rows, int cols, util::Rng* rng, float scale = 1.0f) {
  Tensor t = Tensor::Zeros(rows, cols, /*requires_grad=*/true);
  for (float& v : t.value()) {
    v = static_cast<float>(rng->Uniform(-scale, scale));
  }
  return t;
}

TEST(TensorTest, ConstructionShapes) {
  const Tensor t = Tensor::Zeros(3, 4);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 4);
  EXPECT_EQ(t.numel(), 12);
  EXPECT_FALSE(t.requires_grad());
  EXPECT_TRUE(Tensor::Scalar(2.0f, true).requires_grad());
}

TEST(TensorTest, MatMulForward) {
  const Tensor a = Tensor::FromVector(2, 3, {1, 2, 3, 4, 5, 6});
  const Tensor b = Tensor::FromVector(3, 2, {7, 8, 9, 10, 11, 12});
  const Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154);
}

TEST(TensorTest, MatMulGradient) {
  util::Rng rng(1);
  Tensor a = RandTensor(3, 4, &rng);
  Tensor b = RandTensor(4, 2, &rng);
  CheckGradients({a, b}, [&]() { return Sum(MatMul(a, b)); });
}

TEST(TensorTest, AddBroadcastRowGradient) {
  util::Rng rng(2);
  Tensor a = RandTensor(3, 4, &rng);
  Tensor b = RandTensor(1, 4, &rng);
  CheckGradients({a, b}, [&]() { return Sum(Add(a, b)); });
}

TEST(TensorTest, SubBroadcastColGradient) {
  util::Rng rng(3);
  Tensor a = RandTensor(3, 4, &rng);
  Tensor b = RandTensor(3, 1, &rng);
  CheckGradients({a, b}, [&]() { return Sum(Square(Sub(a, b))); });
}

TEST(TensorTest, MulScalarBroadcastGradient) {
  util::Rng rng(4);
  Tensor a = RandTensor(2, 3, &rng);
  Tensor b = RandTensor(1, 1, &rng);
  CheckGradients({a, b}, [&]() { return Sum(Mul(a, b)); });
}

TEST(TensorTest, UnaryOpGradients) {
  util::Rng rng(5);
  Tensor a = RandTensor(2, 3, &rng);
  CheckGradients({a}, [&]() { return Sum(Tanh(a)); });
  CheckGradients({a}, [&]() { return Sum(Sigmoid(a)); });
  CheckGradients({a}, [&]() { return Sum(Square(a)); });
  CheckGradients({a}, [&]() { return Sum(Exp(a)); });
}

TEST(TensorTest, ReluGradientAwayFromKink) {
  Tensor a = Tensor::FromVector(1, 4, {-2, -1, 1, 2}, true);
  CheckGradients({a}, [&]() { return Sum(Relu(a)); });
}

TEST(TensorTest, LogSqrtGradientPositiveDomain) {
  util::Rng rng(6);
  Tensor a = Tensor::Zeros(2, 3, true);
  for (float& v : a.value()) v = static_cast<float>(rng.Uniform(0.5, 2.0));
  CheckGradients({a}, [&]() { return Sum(Log(a)); });
  CheckGradients({a}, [&]() { return Sum(Sqrt(a)); });
}

TEST(TensorTest, TransposeGradient) {
  util::Rng rng(7);
  Tensor a = RandTensor(2, 5, &rng);
  CheckGradients({a}, [&]() { return Sum(Square(Transpose(a))); });
}

TEST(TensorTest, SoftmaxRowsSumToOne) {
  util::Rng rng(8);
  const Tensor a = RandTensor(4, 6, &rng, 3.0f);
  const Tensor s = SoftmaxRows(a);
  for (int r = 0; r < 4; ++r) {
    float total = 0;
    for (int c = 0; c < 6; ++c) {
      total += s.at(r, c);
      EXPECT_GT(s.at(r, c), 0);
    }
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(TensorTest, SoftmaxGradient) {
  util::Rng rng(9);
  Tensor a = RandTensor(2, 4, &rng);
  Tensor w = RandTensor(2, 4, &rng);
  CheckGradients({a}, [&]() { return Sum(Mul(SoftmaxRows(a), w)); });
}

TEST(TensorTest, RowSumAndMeanGradient) {
  util::Rng rng(10);
  Tensor a = RandTensor(3, 4, &rng);
  CheckGradients({a}, [&]() { return Sum(Square(RowSum(a))); });
  CheckGradients({a}, [&]() { return Sum(Square(RowMean(a))); });
}

TEST(TensorTest, ConcatSliceGradient) {
  util::Rng rng(11);
  Tensor a = RandTensor(2, 3, &rng);
  Tensor b = RandTensor(2, 2, &rng);
  CheckGradients({a, b}, [&]() {
    const Tensor cat = ConcatCols({a, b});
    return Sum(Square(SliceCols(cat, 1, 3)));
  });
  CheckGradients({a, b}, [&]() {
    const Tensor cat = ConcatRows({SliceCols(a, 0, 2), b});
    return Sum(Square(SliceRows(cat, 1, 2)));
  });
}

TEST(TensorTest, GatherRowsGradientAccumulates) {
  Tensor table = Tensor::FromVector(3, 2, {1, 2, 3, 4, 5, 6}, true);
  const Tensor gathered = GatherRows(table, {0, 2, 0});
  EXPECT_FLOAT_EQ(gathered.at(0, 0), 1);
  EXPECT_FLOAT_EQ(gathered.at(1, 1), 6);
  Tensor loss = Sum(gathered);
  table.ZeroGrad();
  loss.Backward();
  // Row 0 gathered twice -> gradient 2; row 1 never -> 0; row 2 once -> 1.
  EXPECT_FLOAT_EQ(table.grad()[0], 2);
  EXPECT_FLOAT_EQ(table.grad()[2], 0);
  EXPECT_FLOAT_EQ(table.grad()[4], 1);
}

TEST(TensorTest, CrossEntropyMatchesManual) {
  const Tensor logits = Tensor::FromVector(2, 3, {1, 2, 3, 3, 2, 1}, true);
  const Tensor loss = CrossEntropy(logits, {2, 0});
  // Both rows have the target at the max logit with the same gaps.
  const float expected =
      -std::log(std::exp(3.0f) / (std::exp(1.0f) + std::exp(2.0f) + std::exp(3.0f)));
  EXPECT_NEAR(loss.value()[0], expected, 1e-5f);
}

TEST(TensorTest, CrossEntropyGradient) {
  util::Rng rng(12);
  Tensor logits = RandTensor(3, 4, &rng, 2.0f);
  CheckGradients({logits}, [&]() { return CrossEntropy(logits, {1, 3, 0}); });
}

TEST(TensorTest, LossGradients) {
  util::Rng rng(13);
  Tensor pred = RandTensor(3, 2, &rng);
  Tensor target = RandTensor(3, 2, &rng);
  target = target.Detach();
  CheckGradients({pred}, [&]() { return MseLoss(pred, target); });
  CheckGradients({pred}, [&]() { return L1Loss(pred, target); });
}

TEST(TensorTest, BceLossGradient) {
  util::Rng rng(14);
  Tensor logits = RandTensor(4, 1, &rng);
  Tensor target = Tensor::FromVector(4, 1, {1, 0, 1, 0});
  CheckGradients({logits},
                 [&]() { return BceLoss(Sigmoid(logits), target); });
}

TEST(TensorTest, ChainedGraphGradient) {
  // A deeper composite expression exercising shared subexpressions.
  util::Rng rng(15);
  Tensor w1 = RandTensor(3, 4, &rng);
  Tensor w2 = RandTensor(4, 2, &rng);
  Tensor x = RandTensor(2, 3, &rng);
  x = x.Detach();
  CheckGradients({w1, w2}, [&]() {
    const Tensor h = Tanh(MatMul(x, w1));
    const Tensor y = MatMul(h, w2);
    return Mean(Square(Add(y, Scale(y, 0.5f))));  // y used twice
  });
}

TEST(TensorTest, BackwardAccumulatesAcrossCalls) {
  Tensor a = Tensor::Scalar(2.0f, true);
  Tensor l1 = Square(a);
  l1.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 4.0f);
  Tensor l2 = Square(a);
  l2.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 8.0f);  // accumulated
  a.ZeroGrad();
  EXPECT_FLOAT_EQ(a.grad()[0], 0.0f);
}

TEST(TensorTest, DetachStopsGradient) {
  Tensor a = Tensor::Scalar(3.0f, true);
  const Tensor d = a.Detach();
  Tensor loss = Square(d);
  loss.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 0.0f);
}

TEST(TensorTest, NoGradGraphForConstants) {
  const Tensor a = Tensor::Zeros(2, 2);
  const Tensor b = Tensor::Zeros(2, 2);
  const Tensor c = Add(a, b);
  EXPECT_FALSE(c.requires_grad());
}

TEST(TensorTest, DropoutTrainKeepsScale) {
  util::Rng rng(16);
  const Tensor a = Tensor::Full(100, 10, 1.0f);
  const Tensor d = Dropout(a, 0.5f, &rng);
  double total = 0;
  for (float v : d.value()) total += v;
  // E[sum] = numel; allow generous slack.
  EXPECT_NEAR(total / a.numel(), 1.0, 0.15);
}

TEST(TensorTest, ClipGradNorm) {
  Tensor a = Tensor::Scalar(10.0f, true);
  Tensor loss = Square(a);  // grad = 20
  loss.Backward();
  const float norm = ClipGradNorm({a}, 1.0f);
  EXPECT_NEAR(norm, 20.0f, 1e-4f);
  EXPECT_NEAR(a.grad()[0], 1.0f, 1e-5f);
}

TEST(TensorTest, DeepGraphBackwardDoesNotOverflowStack) {
  // 5000 chained ops — must not recurse.
  Tensor x = Tensor::Scalar(0.5f, true);
  Tensor y = x;
  for (int i = 0; i < 5000; ++i) y = AddScalar(y, 0.001f);
  Tensor loss = Square(y);
  loss.Backward();
  EXPECT_GT(x.grad()[0], 0.0f);
}

}  // namespace
}  // namespace qpe::nn
