// Reproduces paper Figure 11: plan-pair regression MAE as a function of the
// fraction of target-domain training data, pretrained (on the corpus) vs
// no-pretraining, per domain. Shape to match: pretraining wins at small
// fractions on TPC-H/TPC-DS and converges by ~0.3; on SPATIAL the gap is
// small.

#include <iostream>
#include <memory>

#include "bench_common.h"
#include "data/datasets.h"
#include "encoder/ppsr.h"
#include "nn/serialize.h"

int main(int argc, char** argv) {
  const int corpus_pairs = qpe::bench::FlagInt(argc, argv, "--corpus-pairs", 600);
  const int domain_pairs = qpe::bench::FlagInt(argc, argv, "--domain-pairs", 300);
  const int pretrain_epochs = qpe::bench::FlagInt(argc, argv, "--pretrain-epochs", 3);
  const int finetune_epochs = qpe::bench::FlagInt(argc, argv, "--finetune-epochs", 3);

  const std::vector<double> kFractions = {0.1, 0.3, 0.5, 0.7, 1.0};

  std::cout << "Figure 11: PPSR MAE vs fraction of training data "
               "(pretrained vs scratch)\n\n";

  qpe::data::PairDatasetOptions corpus_options;
  corpus_options.num_pairs = corpus_pairs;
  corpus_options.corpus.max_nodes = 40;
  const auto corpus = qpe::data::BuildCorpusPairDataset(corpus_options);

  qpe::util::Rng rng(29);
  qpe::encoder::StructureEncoderConfig config;
  config.dropout = 0.0f;
  // Pretrain the transformer encoder once.
  qpe::encoder::PpsrModel pretrained(
      std::make_unique<qpe::encoder::TransformerPlanEncoder>(config, &rng),
      &rng);
  qpe::encoder::PpsrTrainOptions pretrain_options;
  pretrain_options.epochs = pretrain_epochs;
  qpe::encoder::TrainPpsr(&pretrained, corpus.train, pretrain_options);

  qpe::simdb::TpchWorkload tpch(0.5);
  qpe::simdb::TpcdsWorkload tpcds(0.5);
  qpe::simdb::SpatialWorkload spatial(0.1);
  struct Domain {
    const char* name;
    const qpe::simdb::BenchmarkWorkload* workload;
    uint64_t seed;
  };
  const std::vector<Domain> domains = {
      {"TPC-H", &tpch, 71}, {"TPC-DS", &tpcds, 72}, {"SPATIAL", &spatial, 73}};

  for (const Domain& domain : domains) {
    qpe::data::PairDatasetOptions options;
    options.num_pairs = domain_pairs;
    options.seed = domain.seed;
    const auto pairs =
        qpe::data::BuildWorkloadPairDataset(*domain.workload, options);

    qpe::util::TablePrinter table(
        {"fraction", "pretrained MAE", "scratch MAE"});
    for (double fraction : kFractions) {
      std::vector<qpe::data::PlanPair> subset;
      const size_t keep = static_cast<size_t>(pairs.train.size() * fraction);
      for (size_t i = 0; i < keep; ++i) {
        qpe::data::PlanPair pair;
        pair.left = pairs.train[i].left->Clone();
        pair.right = pairs.train[i].right->Clone();
        pair.smatch = pairs.train[i].smatch;
        subset.push_back(std::move(pair));
      }
      qpe::encoder::PpsrTrainOptions finetune_options;
      finetune_options.epochs = finetune_epochs;

      qpe::encoder::PpsrModel finetuned(
          std::make_unique<qpe::encoder::TransformerPlanEncoder>(config, &rng),
          &rng);
      qpe::nn::CopyParameters(pretrained, &finetuned);
      qpe::encoder::TrainPpsr(&finetuned, subset, finetune_options);

      qpe::encoder::PpsrModel scratch(
          std::make_unique<qpe::encoder::TransformerPlanEncoder>(config, &rng),
          &rng);
      qpe::encoder::PpsrTrainOptions scratch_options = finetune_options;
      scratch_options.epochs = finetune_epochs + pretrain_epochs;
      qpe::encoder::TrainPpsr(&scratch, subset, scratch_options);

      table.AddRow({qpe::util::TablePrinter::Num(fraction, 1),
                    qpe::util::TablePrinter::Num(
                        qpe::encoder::EvaluatePpsrMae(finetuned, pairs.test), 4),
                    qpe::util::TablePrinter::Num(
                        qpe::encoder::EvaluatePpsrMae(scratch, pairs.test), 4)});
    }
    std::cout << "--- " << domain.name << " ---\n";
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Paper shape: pretrained curve sits below scratch at small "
               "fractions, with the gap closing as the fraction grows.\n";
  return 0;
}
