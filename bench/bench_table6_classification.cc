// Reproduces paper Table 6: query classification accuracy on the Join Order
// Benchmark (113 templates, 33 clusters) — template and cluster accuracy on
// dev and test for Structure-Only / Performance-Only / Both, plus Both
// trained on 0.1 and 0.3 fractions of the data. Shape to match: structure
// dominates; adding performance helps by a few points; both generalizes
// best; cluster accuracy well above template accuracy; small-fraction
// training stays respectable.

#include <iostream>
#include <memory>

#include "bench_common.h"
#include "data/datasets.h"
#include "encoder/ppsr.h"
#include "tasks/classifier.h"

namespace {

struct Splits {
  std::vector<std::vector<float>> train_x, dev_x, test_x;
  std::vector<int> train_y, dev_y, test_y;
};

Splits SplitFeatures(const std::vector<std::vector<float>>& features,
                     const std::vector<int>& labels, uint64_t seed) {
  // Paper split 13505/1362/1362 ~= 0.83/0.085/0.085.
  qpe::util::Rng rng(seed);
  std::vector<int> main_idx, dev_idx, test_idx;
  qpe::data::SplitIndices(static_cast<int>(features.size()), 0.085, 0.085,
                          &rng, &main_idx, &dev_idx, &test_idx);
  Splits splits;
  for (int i : main_idx) {
    splits.train_x.push_back(features[i]);
    splits.train_y.push_back(labels[i]);
  }
  for (int i : dev_idx) {
    splits.dev_x.push_back(features[i]);
    splits.dev_y.push_back(labels[i]);
  }
  for (int i : test_idx) {
    splits.test_x.push_back(features[i]);
    splits.test_y.push_back(labels[i]);
  }
  return splits;
}

}  // namespace

int main(int argc, char** argv) {
  const int num_configs = qpe::bench::FlagInt(argc, argv, "--configs", 12);
  const int epochs = qpe::bench::FlagInt(argc, argv, "--epochs", 30);
  const int ppsr_pairs = qpe::bench::FlagInt(argc, argv, "--ppsr-pairs", 300);

  qpe::simdb::JobWorkload job;
  std::cout << "Table 6: query classification on the Join Order Benchmark "
               "(113 templates / 33 clusters, " << num_configs
            << " configurations -> " << 113 * num_configs << " plans)\n\n";

  const auto executed = qpe::bench::RunBenchmark(job, num_configs, 1, 4021);

  // Pretrained encoders: structure on the corpus PPSR task, performance on
  // out-of-domain TPC-H executions (the paper pretrains on the crowdsourced
  // corpus and TPC-H/TPC-DS respectively).
  qpe::util::Rng rng(2);
  qpe::encoder::StructureEncoderConfig s_config;
  s_config.dropout = 0.0f;
  auto structure_encoder =
      std::make_unique<qpe::encoder::TransformerPlanEncoder>(s_config, &rng);
  {
    qpe::data::PairDatasetOptions pair_options;
    pair_options.num_pairs = ppsr_pairs;
    pair_options.corpus.max_nodes = 40;
    const auto pairs = qpe::data::BuildCorpusPairDataset(pair_options);
    qpe::encoder::PpsrModel ppsr(std::move(structure_encoder), &rng);
    qpe::encoder::PpsrTrainOptions ppsr_options;
    ppsr_options.epochs = 2;
    qpe::encoder::TrainPpsr(&ppsr, pairs.train, ppsr_options);
    // Performance encoders pretrained out-of-domain (TPC-H/TPC-DS), as in
    // the paper — their JOB embeddings are transfer features, not features
    // fit to JOB itself.
    qpe::simdb::TpchWorkload tpch(0.2);
    const auto tpch_executed = qpe::bench::RunBenchmark(tpch, 10, 1, 5150);
    auto perf = qpe::bench::PretrainPerfEncoders(
        tpch_executed, tpch.GetCatalog(), /*epochs=*/20, 33);

    // Featurize with three configurations: structure-only, perf-only, both.
    qpe::tasks::EmbeddingFeaturizer::Config structure_only;
    structure_only.structure = ppsr.encoder();
    structure_only.catalog = &job.GetCatalog();
    structure_only.include_db_features = false;
    qpe::tasks::EmbeddingFeaturizer::Config perf_only;
    perf_only.catalog = &job.GetCatalog();
    perf.FillFeaturizerConfig(&perf_only);
    perf_only.include_db_features = false;
    // Classification consumes the C(p) embeddings themselves, not the
    // latency-head predictions (those are a latency-task feature).
    perf_only.include_group_predictions = false;
    qpe::tasks::EmbeddingFeaturizer::Config both = perf_only;
    both.structure = ppsr.encoder();

    std::vector<int> labels;
    for (const auto& record : executed) labels.push_back(record.template_index);
    std::vector<int> template_to_cluster(job.NumTemplates());
    for (int t = 0; t < job.NumTemplates(); ++t) {
      template_to_cluster[t] = job.ClusterOf(t);
    }

    qpe::util::TablePrinter table({"Methods", "dev template", "dev cluster",
                                   "test template", "test cluster"});
    auto run = [&](const std::string& name,
                   const qpe::tasks::EmbeddingFeaturizer::Config& f_config,
                   double fraction) {
      qpe::tasks::EmbeddingFeaturizer featurizer(f_config);
      const auto features = featurizer.FeaturizeAll(executed);
      Splits splits = SplitFeatures(features, labels, 11);
      if (fraction < 1.0) {
        const size_t keep =
            static_cast<size_t>(splits.train_x.size() * fraction);
        splits.train_x.resize(keep);
        splits.train_y.resize(keep);
      }
      qpe::tasks::QueryClassifier::Config c_config;
      c_config.feature_dim = featurizer.FeatureDim();
      c_config.hidden_dim = 96;
      c_config.template_to_cluster = template_to_cluster;
      qpe::util::Rng c_rng(7);
      qpe::tasks::QueryClassifier classifier(c_config, &c_rng);
      qpe::tasks::QueryClassifier::TrainOptions options;
      options.epochs = epochs;
      classifier.Train(splits.train_x, splits.train_y, options);
      const auto dev = classifier.Evaluate(splits.dev_x, splits.dev_y);
      const auto test = classifier.Evaluate(splits.test_x, splits.test_y);
      table.AddRow({name,
                    qpe::util::TablePrinter::Num(dev.template_accuracy, 4),
                    qpe::util::TablePrinter::Num(dev.cluster_accuracy, 4),
                    qpe::util::TablePrinter::Num(test.template_accuracy, 4),
                    qpe::util::TablePrinter::Num(test.cluster_accuracy, 4)});
    };

    run("Structure-Only", structure_only, 1.0);
    run("Performance-Only", perf_only, 1.0);
    run("Both", both, 1.0);
    run("Both0.1", both, 0.1);
    run("Both0.3", both, 0.3);
    table.Print(std::cout);
  }

  std::cout << "\nPaper reference (Table 6):\n"
               "  Structure-Only   dev 0.2452/0.4670  test 0.1946/0.3847\n"
               "  Performance-Only dev 0.1645/0.2973  test 0.0977/0.1769\n"
               "  Both             dev 0.2783/0.5573  test 0.2518/0.4647\n"
               "  Both0.1          dev 0.2000/0.4927  test 0.1510/0.3340\n"
               "  Both0.3          dev 0.2555/0.5228  test 0.1843/0.3855\n";
  return 0;
}
