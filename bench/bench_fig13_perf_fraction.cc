// Reproduces paper Figure 13: finetuning the pretrained performance
// encoders on a new domain (TPC-DS SF-8 in the paper; a larger unseen scale
// factor here) with increasing fractions of the target training data,
// against models trained from scratch. Shape to match: pretrained MAE is
// flat-ish and low from ~0.3 of the data onward; scratch needs 0.5-0.7 of
// the data to catch up.

#include <iostream>

#include "bench_common.h"
#include "nn/serialize.h"

int main(int argc, char** argv) {
  const int pretrain_configs = qpe::bench::FlagInt(argc, argv, "--pretrain-configs", 8);
  const int finetune_configs = qpe::bench::FlagInt(argc, argv, "--finetune-configs", 10);
  const int pretrain_epochs = qpe::bench::FlagInt(argc, argv, "--pretrain-epochs", 30);
  const int finetune_epochs = qpe::bench::FlagInt(argc, argv, "--finetune-epochs", 35);
  const double target_sf = qpe::bench::FlagDouble(argc, argv, "--target-sf", 0.8);

  const std::vector<double> kFractions = {0.1, 0.3, 0.5, 0.7, 1.0};

  std::cout << "Figure 13: pretrained vs scratch MAE by training-data "
               "fraction (target: TPC-DS SF " << target_sf << ")\n\n";

  // Pretrain on mixed TPC-H/TPC-DS small scale factors.
  const auto pretrain_data = qpe::bench::BuildPerfPretrainData(
      {0.2, 0.5, 1.0}, pretrain_configs, 707);
  std::vector<std::unique_ptr<qpe::encoder::PerformanceEncoder>> pretrained;
  qpe::util::Rng rng(13);
  for (int g = 0; g < 4; ++g) {
    pretrained.push_back(
        std::make_unique<qpe::encoder::PerformanceEncoder>(
            qpe::encoder::PerfEncoderConfig{}, &rng));
    qpe::encoder::PerfTrainOptions options;
    options.epochs = pretrain_epochs;
    options.seed = 300 + g;
    qpe::encoder::TrainPerformanceEncoder(pretrained.back().get(),
                                          pretrain_data[g], options);
  }

  // Target domain data (paper limits: 2000 train / 500 test plans).
  qpe::simdb::TpcdsWorkload target(target_sf);
  const auto finetune_data =
      qpe::bench::BuildPerfFinetuneData(target, finetune_configs, 808);

  for (int g = 0; g < 4; ++g) {
    std::cout << "--- " << qpe::plan::GroupName(
                     static_cast<qpe::plan::OperatorGroup>(g))
              << " operator ---\n";
    qpe::util::TablePrinter table(
        {"fraction", "pretrained test MAE ms", "scratch test MAE ms"});
    for (double fraction : kFractions) {
      const auto subset = qpe::bench::FractionOf(finetune_data[g], fraction);
      qpe::encoder::PerfTrainOptions options;
      options.epochs = finetune_epochs;
      options.lr = 1e-3f;  // gentler than pretraining: big domain shifts
      options.seed = 400 + g;

      qpe::encoder::PerformanceEncoder finetuned({}, &rng);
      qpe::nn::CopyParameters(*pretrained[g], &finetuned);
      const auto ft_history =
          qpe::encoder::TrainPerformanceEncoder(&finetuned, subset, options);

      qpe::encoder::PerformanceEncoder scratch({}, &rng);
      const auto sc_history =
          qpe::encoder::TrainPerformanceEncoder(&scratch, subset, options);

      table.AddRow(
          {qpe::util::TablePrinter::Num(fraction, 1),
           qpe::util::TablePrinter::Num(
               ft_history.empty() ? 0 : ft_history.back().test_mae_ms, 2),
           qpe::util::TablePrinter::Num(
               sc_history.empty() ? 0 : sc_history.back().test_mae_ms, 2)});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Paper shape: pretrained curve flat and below scratch; "
               "scratch approaches it only at 0.5-0.7 fractions.\n";
  return 0;
}
