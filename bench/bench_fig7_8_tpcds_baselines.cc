// Reproduces paper Figures 7 and 8: per-template latency-prediction MAE on
// the TPC-DS benchmark, comparing the plan-encoder latency model against
// TAM, SVM, RBF and QPPNet. The paper splits its TPC-DS plan dataset 80:20;
// Figure 7 lists templates where the plan-encoder model beats the majority
// of baselines, Figure 8 those where it does not. Shape to match: wins on
// roughly half the templates (paper: 33 vs 27), with large wins on complex
// templates.

#include <iostream>
#include <map>
#include <memory>

#include "bench_common.h"
#include "tasks/latency_model.h"
#include "tasks/qppnet.h"

int main(int argc, char** argv) {
  const double scale_factor = qpe::bench::FlagDouble(argc, argv, "--sf", 1.0);
  const int num_configs = qpe::bench::FlagInt(argc, argv, "--configs", 24);
  const int perf_epochs = qpe::bench::FlagInt(argc, argv, "--perf-epochs", 30);
  const int latency_epochs =
      qpe::bench::FlagInt(argc, argv, "--latency-epochs", 150);

  qpe::simdb::TpcdsWorkload tpcds(scale_factor);
  std::cout << "Figures 7/8: per-template MAE on TPC-DS (SF " << scale_factor
            << ", " << num_configs << " configurations, 80:20 split)\n\n";

  const auto all = qpe::bench::RunBenchmark(tpcds, num_configs, 1, 1337);
  std::vector<qpe::simdb::ExecutedQuery> train, test;
  qpe::bench::SplitRecords(all, /*test_every=*/5, &train, &test);

  // Plan-encoder model.
  auto perf = qpe::bench::PretrainPerfEncoders(train, tpcds.GetCatalog(),
                                               perf_epochs, 88);
  qpe::tasks::EmbeddingFeaturizer::Config f_config;
  f_config.catalog = &tpcds.GetCatalog();
  perf.FillFeaturizerConfig(&f_config);
  qpe::tasks::EmbeddingFeaturizer featurizer(f_config);
  qpe::util::Rng rng(5);
  qpe::tasks::LatencyPredictor ours(&featurizer, 128, &rng);
  qpe::tasks::LatencyPredictor::TrainOptions latency_options;
  latency_options.epochs = latency_epochs;
  ours.Train(train, latency_options);

  // Baselines.
  qpe::tasks::TamBaseline tam;
  qpe::tasks::SvrBaseline svm;
  qpe::tasks::RbfBaseline rbf;
  qpe::tasks::QppNet::Config qpp_config;
  qpe::tasks::QppNet qppnet(qpp_config, &rng);
  tam.Train(train);
  svm.Train(train);
  rbf.Train(train);
  qppnet.Train(train);

  auto ours_mae = qpe::bench::PerTemplateMae(
      test, [&](const qpe::simdb::ExecutedQuery& r) { return ours.PredictMs(r); });
  std::map<int, double> tam_mae, svm_mae, rbf_mae, qpp_mae;
  auto fill = [&](std::map<int, double>* out, qpe::tasks::LatencyBaseline* b) {
    for (const auto& [t, mae] : qpe::bench::PerTemplateMae(
             test, [&](const qpe::simdb::ExecutedQuery& r) {
               return b->PredictMs(r);
             })) {
      (*out)[t] = mae;
    }
  };
  fill(&tam_mae, &tam);
  fill(&svm_mae, &svm);
  fill(&rbf_mae, &rbf);
  fill(&qpp_mae, &qppnet);

  qpe::util::TablePrinter won({"template", "ours", "TAM", "SVM", "RBF",
                               "QPPNet", "best baseline"});
  qpe::util::TablePrinter lost({"template", "ours", "TAM", "SVM", "RBF",
                                "QPPNet", "best baseline"});
  int wins = 0, losses = 0, big_wins = 0;
  using qpe::util::TablePrinter;
  for (const auto& [t, mae] : ours_mae) {
    const double baselines[4] = {tam_mae[t], svm_mae[t], rbf_mae[t],
                                 qpp_mae[t]};
    int beaten = 0;
    double best = baselines[0];
    for (double b : baselines) {
      beaten += mae < b;
      best = std::min(best, b);
    }
    const std::vector<std::string> row = {
        tpcds.TemplateName(t),        TablePrinter::Num(mae, 1),
        TablePrinter::Num(tam_mae[t], 1), TablePrinter::Num(svm_mae[t], 1),
        TablePrinter::Num(rbf_mae[t], 1), TablePrinter::Num(qpp_mae[t], 1),
        TablePrinter::Num(best, 1)};
    if (beaten >= 3) {  // beats the majority of baselines (Figure 7)
      won.AddRow(row);
      ++wins;
      if (mae < 0.75 * best) ++big_wins;
    } else {  // Figure 8
      lost.AddRow(row);
      ++losses;
    }
  }

  std::cout << "--- Figure 7: templates where the plan-encoder model beats "
               "the majority of baselines ---\n";
  won.Print(std::cout);
  std::cout << "\n--- Figure 8: templates where it does not ---\n";
  lost.Print(std::cout);
  std::cout << "\nSummary: wins " << wins << " / loses " << losses
            << " (paper: 33 / 27 out of 60); " << big_wins
            << " templates with >=25% less error than the best baseline "
               "(paper: 23).\n";
  return 0;
}
