// Reproduces paper Figure 6: mean absolute error of the latency-prediction
// model per spatial query template, compared against the template's latency
// *variability* (p95 - p5 across configurations). The paper reports that at
// least 68% of queries have MAE below 10% of variability and 90% below 30%.

#include <iostream>
#include <map>

#include "bench_common.h"
#include "tasks/latency_model.h"

int main(int argc, char** argv) {
  const int train_configs = qpe::bench::FlagInt(argc, argv, "--train-configs", 100);
  const int test_configs = qpe::bench::FlagInt(argc, argv, "--test-configs", 16);
  const double region_scale =
      qpe::bench::FlagDouble(argc, argv, "--region-scale", 0.1);
  const int perf_epochs = qpe::bench::FlagInt(argc, argv, "--perf-epochs", 40);

  qpe::simdb::SpatialWorkload spatial(region_scale);
  std::cout << "Figure 6: latency model MAE vs variability on the spatial "
               "benchmark (" << train_configs << " train / " << test_configs
            << " test configurations)\n\n";

  // Train set: all templates across `train_configs` configurations; test
  // set: the *same query instances* under fresh configurations (the paper
  // re-ran each benchmark 50 times with very different settings — Jackpine
  // and OSM queries have fixed literals, so only the knobs change).
  qpe::config::LhsSampler train_sampler((qpe::util::Rng(500)));
  qpe::config::LhsSampler test_sampler((qpe::util::Rng(900)));
  qpe::simdb::RunOptions run_options;
  run_options.seed = 4242;  // same seed -> same instances in both runs
  const auto train = qpe::simdb::RunWorkload(
      spatial, train_sampler.Sample(train_configs), run_options);
  const auto test_raw = qpe::simdb::RunWorkload(
      spatial, test_sampler.Sample(test_configs), run_options);
  std::vector<qpe::simdb::ExecutedQuery> test;
  for (const auto& record : test_raw) test.push_back(record.Clone());

  // Pretrain the per-operator performance encoders on the training plans.
  auto perf = qpe::bench::PretrainPerfEncoders(train, spatial.GetCatalog(),
                                               perf_epochs, 321);
  qpe::tasks::EmbeddingFeaturizer::Config f_config;
  f_config.catalog = &spatial.GetCatalog();
  perf.FillFeaturizerConfig(&f_config);
  qpe::tasks::EmbeddingFeaturizer featurizer(f_config);

  qpe::util::Rng rng(17);
  qpe::tasks::LatencyPredictor predictor(&featurizer, 128, &rng);
  qpe::tasks::LatencyPredictor::TrainOptions options;
  options.epochs = qpe::bench::FlagInt(argc, argv, "--latency-epochs", 250);
  predictor.Train(train, options);

  // Per-template MAE and variability.
  std::map<int, std::vector<double>> latencies;
  for (const auto& record : test) {
    latencies[record.template_index].push_back(record.latency_ms);
  }
  const auto mae_rows = qpe::bench::PerTemplateMae(
      test, [&](const qpe::simdb::ExecutedQuery& record) {
        return predictor.PredictMs(record);
      });

  qpe::util::TablePrinter table(
      {"template", "MAE ms", "variability ms (p95-p5)", "MAE/variability"});
  int under_10 = 0, under_30 = 0, total = 0;
  for (const auto& [t, mae] : mae_rows) {
    const auto& values = latencies[t];
    const double variability = qpe::util::Percentile(values, 95) -
                               qpe::util::Percentile(values, 5);
    const double ratio = mae / std::max(1e-9, variability);
    table.AddRow({spatial.TemplateName(t),
                  qpe::util::TablePrinter::Num(mae, 1),
                  qpe::util::TablePrinter::Num(variability, 1),
                  qpe::util::TablePrinter::Num(ratio, 2)});
    under_10 += ratio < 0.10;
    under_30 += ratio < 0.30;
    ++total;
  }
  table.Print(std::cout);
  std::cout << "\nMAE < 10% of variability: " << under_10 << "/" << total
            << " (" << 100.0 * under_10 / total << "%)  [paper: >=68%]\n"
            << "MAE < 30% of variability: " << under_30 << "/" << total
            << " (" << 100.0 * under_30 / total << "%)  [paper: >=90%]\n";
  return 0;
}
