// Reproduces paper Table 5: statistics (median / 95th / 5th percentile) of
// the database configuration settings generated for training data via Latin
// Hypercube Sampling. Paper reference values are printed alongside for
// direct comparison — the shape to match is: medians near the range
// midpoints, percentiles near the range edges.

#include <iostream>

#include "bench_common.h"
#include "config/db_config.h"
#include "config/lhs_sampler.h"

int main(int argc, char** argv) {
  using qpe::util::TablePrinter;
  const int n = qpe::bench::FlagInt(argc, argv, "--configs", 120);

  // Paper Table 5 (median, 95th, 5th), indexed in canonical knob order.
  struct PaperRow {
    double median, p95, p5;
  };
  const PaperRow kPaper[qpe::config::kNumKnobs] = {
      {4860.00, 9421.05, 456.00},
      {515.00, 958.05, 55.00},
      {300.00, 540.00, 60.00},
      {300000.00, 540000.00, 26000.00},
      {4827.50, 9563.00, 454.85},
      {1048576.00, 1966080.00, 131072.00},
      {52.00, 96.00, 6.00},
      {7340032.00, 15728640.00, 876953.60},
      {3072.00, 5120.00, 417.95},
      {5028.60, 9507.39, 560.40},
      {2097152.00, 3932160.00, 131072.00},
      {130624.00, 131072.00, 12416.00},
      {15728640.00, 31457280.00, 1048576.00},
  };

  qpe::config::LhsSampler sampler((qpe::util::Rng(2021)));
  const auto configs = sampler.Sample(n);

  std::cout << "Table 5: statistics of " << n
            << " LHS-generated configurations (measured vs paper)\n\n";
  TablePrinter table({"Database Setting", "Unit", "Median", "95th", "5th",
                      "Paper Median", "Paper 95th", "Paper 5th"});
  for (int k = 0; k < qpe::config::kNumKnobs; ++k) {
    const auto& info = qpe::config::KnobTable()[k];
    std::vector<double> values;
    values.reserve(configs.size());
    for (const auto& config : configs) {
      values.push_back(config.Get(static_cast<qpe::config::Knob>(k)));
    }
    table.AddRow({info.name, info.unit,
                  TablePrinter::Num(qpe::util::Median(values), 2),
                  TablePrinter::Num(qpe::util::Percentile(values, 95), 2),
                  TablePrinter::Num(qpe::util::Percentile(values, 5), 2),
                  TablePrinter::Num(kPaper[k].median, 2),
                  TablePrinter::Num(kPaper[k].p95, 2),
                  TablePrinter::Num(kPaper[k].p5, 2)});
  }
  table.Print(std::cout);
  std::cout << "\nNote: wal_buffers saturates at its maximum in the paper "
               "(95th == max); our range reproduces the same saturation "
               "shape.\n";
  return 0;
}
