// Reproduces paper Figure 15: the three-column DNN performance encoder vs a
// standard single-column DNN of comparable capacity — both pretrained on
// the same mixed workloads, then finetuned with 0.3 of target data on (a)
// TPC-DS SF-8 and (b) the Spatial benchmark. Shape to match: three-column
// at least matches single-column on most operators on TPC-DS, and beats it
// clearly on the spatial workload.

#include <iostream>

#include "bench_common.h"
#include "nn/serialize.h"

namespace {

template <typename Model>
std::vector<std::unique_ptr<Model>> Pretrain(
    const std::vector<qpe::data::OperatorDataset>& data, int epochs,
    uint64_t seed, qpe::util::Rng* rng) {
  std::vector<std::unique_ptr<Model>> models;
  for (int g = 0; g < 4; ++g) {
    models.push_back(
        std::make_unique<Model>(qpe::encoder::PerfEncoderConfig{}, rng));
    qpe::encoder::PerfTrainOptions options;
    options.epochs = epochs;
    options.seed = seed + g;
    qpe::encoder::TrainPerformanceEncoder(models.back().get(), data[g],
                                          options);
  }
  return models;
}

}  // namespace

int main(int argc, char** argv) {
  const int pretrain_configs = qpe::bench::FlagInt(argc, argv, "--pretrain-configs", 8);
  const int finetune_configs = qpe::bench::FlagInt(argc, argv, "--finetune-configs", 14);
  const int pretrain_epochs = qpe::bench::FlagInt(argc, argv, "--pretrain-epochs", 30);
  const int finetune_epochs = qpe::bench::FlagInt(argc, argv, "--finetune-epochs", 35);
  const double fraction = qpe::bench::FlagDouble(argc, argv, "--fraction", 0.3);

  std::cout << "Figure 15: three-column vs single-column (standard) DNN "
               "performance encoder at " << fraction << " finetuning data\n\n";

  const auto pretrain_data = qpe::bench::BuildPerfPretrainData(
      {0.2, 0.5, 1.0}, pretrain_configs, 727);
  qpe::util::Rng rng(15);
  auto multi = Pretrain<qpe::encoder::PerformanceEncoder>(
      pretrain_data, pretrain_epochs, 520, &rng);
  auto single = Pretrain<qpe::encoder::SingleColumnPerformanceEncoder>(
      pretrain_data, pretrain_epochs, 540, &rng);

  qpe::simdb::TpcdsWorkload tpcds(0.8);
  qpe::simdb::SpatialWorkload spatial(0.1);
  struct Target {
    const char* name;
    const qpe::simdb::BenchmarkWorkload* workload;
    uint64_t seed;
  };
  for (const Target& target :
       {Target{"TPC-DS SF-8 analogue", &tpcds, 828},
        Target{"Spatial benchmark", &spatial, 929}}) {
    const auto finetune_data = qpe::bench::BuildPerfFinetuneData(
        *target.workload,
        // Spatial templates are fewer; use more configurations for a
        // comparable sample count.
        target.workload->NumTemplates() < 30 ? finetune_configs * 2
                                             : finetune_configs,
        target.seed);
    std::cout << "--- " << target.name << " ---\n";
    qpe::util::TablePrinter table({"operator", "three-column MAE ms",
                                   "single-column MAE ms"});
    for (int g = 0; g < 4; ++g) {
      const auto subset = qpe::bench::FractionOf(finetune_data[g], fraction);
      qpe::encoder::PerfTrainOptions options;
      options.epochs = finetune_epochs;
      options.lr = 1e-3f;  // gentler than pretraining: big domain shifts
      options.seed = 700 + g;

      qpe::encoder::PerformanceEncoder multi_ft({}, &rng);
      qpe::nn::CopyParameters(*multi[g], &multi_ft);
      const auto m =
          qpe::encoder::TrainPerformanceEncoder(&multi_ft, subset, options);

      qpe::encoder::SingleColumnPerformanceEncoder single_ft({}, &rng);
      qpe::nn::CopyParameters(*single[g], &single_ft);
      const auto s =
          qpe::encoder::TrainPerformanceEncoder(&single_ft, subset, options);

      table.AddRow(
          {qpe::plan::GroupName(static_cast<qpe::plan::OperatorGroup>(g)),
           qpe::util::TablePrinter::Num(m.empty() ? 0 : m.back().test_mae_ms, 2),
           qpe::util::TablePrinter::Num(s.empty() ? 0 : s.back().test_mae_ms,
                                        2)});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Paper shape: three-column wins everywhere on the spatial "
               "workload and on all but (at most) one operator on TPC-DS.\n";
  return 0;
}
