// Reproduces paper Figure 12: convergence of train/validation/test MAE (on
// the Actual Total Time label) while pretraining the computational
// performance encoders for the Scan, Join, Sort and Aggregate operators on
// mixed TPC-H + TPC-DS data at several scale factors. Shape to match: all
// three curves converge together; the converged MAE differs per operator
// (the paper reports Join < Scan < Sort).

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  const int configs = qpe::bench::FlagInt(argc, argv, "--configs", 10);
  const int epochs = qpe::bench::FlagInt(argc, argv, "--epochs", 40);

  // Paper: scale factors 1, 2, 3, 5 on >=20 configurations; scaled down.
  const std::vector<double> kScaleFactors = {0.1, 0.2, 0.3, 0.5};

  std::cout << "Figure 12: performance-encoder pretraining convergence "
               "(TPC-H + TPC-DS, SF {0.1,0.2,0.3,0.5}, " << configs
            << " configurations each)\n\n";

  const auto datasets =
      qpe::bench::BuildPerfPretrainData(kScaleFactors, configs, 606);

  qpe::util::Rng rng(12);
  for (int g = 0; g < 4; ++g) {
    qpe::encoder::PerformanceEncoder model({}, &rng);
    qpe::encoder::PerfTrainOptions options;
    options.epochs = epochs;
    options.seed = 200 + g;
    options.patience_epochs = 12;
    const auto history =
        qpe::encoder::TrainPerformanceEncoder(&model, datasets[g], options);

    std::cout << "--- " << qpe::plan::GroupName(
                     static_cast<qpe::plan::OperatorGroup>(g))
              << " operator (" << datasets[g].train.size() << " train / "
              << datasets[g].val.size() << " val / " << datasets[g].test.size()
              << " test samples) ---\n";
    qpe::util::TablePrinter table(
        {"epoch", "train MAE ms", "val MAE ms", "test MAE ms"});
    for (size_t e = 0; e < history.size(); ++e) {
      if (e % 4 != 0 && e + 1 != history.size()) continue;  // thin the series
      table.AddRow({std::to_string(e + 1),
                    qpe::util::TablePrinter::Num(history[e].train_mae_ms, 2),
                    qpe::util::TablePrinter::Num(history[e].val_mae_ms, 2),
                    qpe::util::TablePrinter::Num(history[e].test_mae_ms, 2)});
    }
    table.Print(std::cout);
    // Best-validation epoch's test MAE (the paper's reporting protocol).
    size_t best = 0;
    for (size_t e = 1; e < history.size(); ++e) {
      if (history[e].val_mae_ms < history[best].val_mae_ms) best = e;
    }
    std::cout << "best val epoch " << best + 1 << ": test MAE "
              << qpe::util::TablePrinter::Num(history[best].test_mae_ms, 2)
              << " ms\n\n";
  }
  std::cout << "Paper shape: curves converge to tens-of-milliseconds MAE; "
               "per-operator bests differ (Join lowest).\n";
  return 0;
}
