// Micro-benchmarks (google-benchmark) of the library's hot paths: Smatch
// scoring, plan linearization, physical planning, executor simulation,
// encoder inference, MatMul kernels (blocked vs naive reference), and full
// training steps parameterised over the thread count.

#include <benchmark/benchmark.h>

#include <memory>

#include "config/db_config.h"
#include "data/datasets.h"
#include "data/features.h"
#include "data/plan_corpus.h"
#include "encoder/performance_encoder.h"
#include "encoder/ppsr.h"
#include "encoder/structure_encoder.h"
#include "nn/tensor.h"
#include "plan/linearize.h"
#include "simdb/executor.h"
#include "simdb/planner.h"
#include "simdb/workloads.h"
#include "smatch/smatch.h"
#include "util/thread_pool.h"

namespace {

std::unique_ptr<qpe::plan::PlanNode> MakePlan(int nodes, uint64_t seed) {
  qpe::data::CorpusOptions options;
  options.min_nodes = nodes;
  options.max_nodes = nodes + 4;
  qpe::data::RandomPlanGenerator generator(qpe::util::Rng(seed), options);
  return generator.Generate();
}

void BM_SmatchScore(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const auto a = MakePlan(nodes, 1);
  const auto b = MakePlan(nodes, 2);
  const auto fa = qpe::smatch::Flatten(*a);
  const auto fb = qpe::smatch::Flatten(*b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qpe::smatch::Score(fa, fb).f1);
  }
}
BENCHMARK(BM_SmatchScore)->Arg(10)->Arg(40)->Arg(100);

void BM_SmatchExact(benchmark::State& state) {
  const auto a = MakePlan(7, 3);
  const auto b = MakePlan(7, 4);
  const auto fa = qpe::smatch::Flatten(*a);
  const auto fb = qpe::smatch::Flatten(*b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qpe::smatch::ScoreExact(fa, fb).f1);
  }
}
BENCHMARK(BM_SmatchExact);

void BM_LinearizeDfsBracket(benchmark::State& state) {
  const auto plan = MakePlan(static_cast<int>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qpe::plan::LinearizeDfsBracket(*plan));
  }
}
BENCHMARK(BM_LinearizeDfsBracket)->Arg(20)->Arg(100);

void BM_PlannerTpchQ5(benchmark::State& state) {
  qpe::simdb::TpchWorkload tpch(1.0);
  qpe::config::DbConfig db_config;
  qpe::simdb::Planner planner(&tpch.GetCatalog(), &db_config);
  qpe::util::Rng rng(6);
  const qpe::simdb::QuerySpec spec = tpch.Instantiate(4, &rng);  // Q5, 6-way
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.PlanQuery(spec).NumNodes());
  }
}
BENCHMARK(BM_PlannerTpchQ5);

void BM_ExecutorTpchQ5(benchmark::State& state) {
  qpe::simdb::TpchWorkload tpch(1.0);
  qpe::config::DbConfig db_config;
  qpe::simdb::Planner planner(&tpch.GetCatalog(), &db_config);
  qpe::simdb::ExecutorSim executor(&tpch.GetCatalog(), &db_config);
  qpe::util::Rng rng(6);
  const qpe::simdb::QuerySpec spec = tpch.Instantiate(4, &rng);
  qpe::util::Rng noise(1);
  for (auto _ : state) {
    qpe::plan::Plan planned = planner.PlanQuery(spec);
    benchmark::DoNotOptimize(
        executor.Execute(&planned, spec.cardinality_seed, &noise));
  }
}
BENCHMARK(BM_ExecutorTpchQ5);

void BM_StructureEncoderInference(benchmark::State& state) {
  qpe::util::Rng rng(7);
  qpe::encoder::StructureEncoderConfig config;
  qpe::encoder::TransformerPlanEncoder encoder(config, &rng);
  const auto plan = MakePlan(static_cast<int>(state.range(0)), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.Encode(*plan, nullptr).at(0, 0));
  }
}
BENCHMARK(BM_StructureEncoderInference)->Arg(20)->Arg(60);

void BM_PerfEncoderInference(benchmark::State& state) {
  qpe::util::Rng rng(9);
  qpe::encoder::PerformanceEncoder model({}, &rng);
  std::vector<qpe::data::OperatorSample> samples(state.range(0));
  for (auto& sample : samples) {
    sample.node_features.assign(qpe::data::kNodeFeatureDim, 0.1);
    sample.meta_features.assign(qpe::catalog::Catalog::kMetaFeatureDim, 0.2);
    sample.db_features.assign(qpe::config::DbConfig::FeatureDim(), 0.3);
  }
  std::vector<int> all(samples.size());
  for (size_t i = 0; i < samples.size(); ++i) all[i] = static_cast<int>(i);
  for (auto _ : state) {
    const auto batch = qpe::encoder::MakePerfBatch(samples, all);
    benchmark::DoNotOptimize(
        model.PredictLabels(model.Embed(batch.node, batch.meta, batch.db))
            .at(0, 0));
  }
}
BENCHMARK(BM_PerfEncoderInference)->Arg(1)->Arg(32);

// --- MatMul kernels ---------------------------------------------------------

qpe::nn::Tensor RandomTensor(int rows, int cols, uint64_t seed,
                             bool requires_grad) {
  qpe::util::Rng rng(seed);
  std::vector<float> data(static_cast<size_t>(rows) * cols);
  for (float& v : data) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  return qpe::nn::Tensor::FromVector(rows, cols, data, requires_grad);
}

// Forward + full backward (dA and dB) through the blocked kernels.
// Args: {size, threads}.
void BM_MatMul(benchmark::State& state) {
  const int size = static_cast<int>(state.range(0));
  qpe::util::SetMaxThreads(static_cast<int>(state.range(1)));
  qpe::nn::Tensor a = RandomTensor(size, size, 11, /*requires_grad=*/true);
  qpe::nn::Tensor b = RandomTensor(size, size, 12, /*requires_grad=*/true);
  for (auto _ : state) {
    a.ZeroGrad();
    b.ZeroGrad();
    const qpe::nn::Tensor out = MatMul(a, b);
    Sum(out).Backward();
    benchmark::DoNotOptimize(a.grad()[0]);
  }
  // Forward plus two backward products, 2*n^3 flops each.
  state.SetItemsProcessed(state.iterations() * 3 * 2LL * size * size * size);
  qpe::util::SetMaxThreads(1);
}
BENCHMARK(BM_MatMul)
    ->Args({64, 1})
    ->Args({256, 1})
    ->Args({512, 1})
    ->Args({64, 4})
    ->Args({256, 4})
    ->Args({512, 4});

// Same workload through the pre-blocking naive kernel (always
// single-threaded): the baseline the blocked kernels are measured against.
void BM_MatMulReference(benchmark::State& state) {
  const int size = static_cast<int>(state.range(0));
  qpe::util::SetMaxThreads(1);
  qpe::nn::Tensor a = RandomTensor(size, size, 11, /*requires_grad=*/true);
  qpe::nn::Tensor b = RandomTensor(size, size, 12, /*requires_grad=*/true);
  for (auto _ : state) {
    a.ZeroGrad();
    b.ZeroGrad();
    const qpe::nn::Tensor out = qpe::nn::MatMulReference(a, b);
    Sum(out).Backward();
    benchmark::DoNotOptimize(a.grad()[0]);
  }
  state.SetItemsProcessed(state.iterations() * 3 * 2LL * size * size * size);
}
BENCHMARK(BM_MatMulReference)->Arg(64)->Arg(256)->Arg(512);

// --- Fused kernels ----------------------------------------------------------

// Fused LayerNorm kernel vs the 8-op composite chain it replaced (both
// inference-mode forwards; the fused forward is bit-identical by contract).
void BM_LayerNormFused(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const int cols = 64;
  qpe::nn::NoGradGuard no_grad;
  const qpe::nn::Tensor x = RandomTensor(rows, cols, 21, false);
  const qpe::nn::Tensor gamma = RandomTensor(1, cols, 22, false);
  const qpe::nn::Tensor beta = RandomTensor(1, cols, 23, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LayerNormRows(x, gamma, beta).at(0, 0));
  }
  state.SetItemsProcessed(state.iterations() * rows * cols);
}
BENCHMARK(BM_LayerNormFused)->Arg(16)->Arg(256);

void BM_LayerNormUnfused(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const int cols = 64;
  qpe::nn::NoGradGuard no_grad;
  const qpe::nn::Tensor x = RandomTensor(rows, cols, 21, false);
  const qpe::nn::Tensor gamma = RandomTensor(1, cols, 22, false);
  const qpe::nn::Tensor beta = RandomTensor(1, cols, 23, false);
  for (auto _ : state) {
    const qpe::nn::Tensor mean = RowMean(x);
    const qpe::nn::Tensor centered = Sub(x, mean);
    const qpe::nn::Tensor var = RowMean(Square(centered));
    const qpe::nn::Tensor inv_std = Sqrt(AddScalar(var, 1e-5f));
    const qpe::nn::Tensor recip = Exp(Scale(Log(inv_std), -1.0f));
    benchmark::DoNotOptimize(
        Add(Mul(Mul(centered, recip), gamma), beta).at(0, 0));
  }
  state.SetItemsProcessed(state.iterations() * rows * cols);
}
BENCHMARK(BM_LayerNormUnfused)->Arg(16)->Arg(256);

// Fused bias+GELU (the batched FFN activation) vs Gelu(Add(a, bias)).
void BM_BiasGeluFused(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const int cols = 96;
  qpe::nn::NoGradGuard no_grad;
  const qpe::nn::Tensor a = RandomTensor(rows, cols, 24, false);
  const qpe::nn::Tensor bias = RandomTensor(1, cols, 25, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BiasGelu(a, bias).at(0, 0));
  }
  state.SetItemsProcessed(state.iterations() * rows * cols);
}
BENCHMARK(BM_BiasGeluFused)->Arg(16)->Arg(256);

void BM_BiasGeluUnfused(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const int cols = 96;
  qpe::nn::NoGradGuard no_grad;
  const qpe::nn::Tensor a = RandomTensor(rows, cols, 24, false);
  const qpe::nn::Tensor bias = RandomTensor(1, cols, 25, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Gelu(Add(a, bias)).at(0, 0));
  }
  state.SetItemsProcessed(state.iterations() * rows * cols);
}
BENCHMARK(BM_BiasGeluUnfused)->Arg(16)->Arg(256);

// Masked row softmax (the batched attention kernel) with all rows fully
// valid, against the unmasked kernel it must match bit-for-bit.
void BM_SoftmaxRowsMasked(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const int cols = 64;
  qpe::nn::NoGradGuard no_grad;
  const qpe::nn::Tensor a = RandomTensor(rows, cols, 26, false);
  const std::vector<int> valid(rows, cols);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SoftmaxRowsMasked(a, valid).at(0, 0));
  }
  state.SetItemsProcessed(state.iterations() * rows * cols);
}
BENCHMARK(BM_SoftmaxRowsMasked)->Arg(16)->Arg(256);

void BM_SoftmaxRowsUnmasked(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const int cols = 64;
  qpe::nn::NoGradGuard no_grad;
  const qpe::nn::Tensor a = RandomTensor(rows, cols, 26, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SoftmaxRows(a).at(0, 0));
  }
  state.SetItemsProcessed(state.iterations() * rows * cols);
}
BENCHMARK(BM_SoftmaxRowsUnmasked)->Arg(16)->Arg(256);

// --- Training steps ---------------------------------------------------------

// One PPSR training epoch (24 pairs, transformer encoder) per iteration.
// Arg: thread count.
void BM_TrainStepPpsr(benchmark::State& state) {
  qpe::util::SetMaxThreads(static_cast<int>(state.range(0)));
  qpe::data::PairDatasetOptions options;
  options.num_pairs = 24;
  options.corpus.min_nodes = 4;
  options.corpus.max_nodes = 16;
  const qpe::data::PlanPairDataset dataset =
      qpe::data::BuildCorpusPairDataset(options);
  qpe::util::Rng rng(14);
  qpe::encoder::StructureEncoderConfig config;
  config.num_layers = 1;
  qpe::encoder::PpsrModel model(
      std::make_unique<qpe::encoder::TransformerPlanEncoder>(config, &rng),
      &rng);
  qpe::encoder::PpsrTrainOptions train_options;
  train_options.epochs = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        qpe::encoder::TrainPpsr(&model, dataset.train, train_options));
  }
  qpe::util::SetMaxThreads(1);
}
BENCHMARK(BM_TrainStepPpsr)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// One performance-encoder training epoch (128 synthetic operator samples,
// including the per-epoch train-MAE evaluation) per iteration. Arg: thread
// count.
void BM_TrainStepPerfEncoder(benchmark::State& state) {
  qpe::util::SetMaxThreads(static_cast<int>(state.range(0)));
  qpe::util::Rng rng(9);
  qpe::encoder::PerformanceEncoder model({}, &rng);
  qpe::data::OperatorDataset dataset;
  dataset.train.resize(128);
  qpe::util::Rng feature_rng(10);
  for (size_t i = 0; i < dataset.train.size(); ++i) {
    auto& sample = dataset.train[i];
    sample.node_features.resize(qpe::data::kNodeFeatureDim);
    sample.meta_features.resize(qpe::catalog::Catalog::kMetaFeatureDim);
    sample.db_features.resize(qpe::config::DbConfig::FeatureDim());
    for (double& v : sample.node_features) v = feature_rng.Uniform();
    for (double& v : sample.meta_features) v = feature_rng.Uniform();
    for (double& v : sample.db_features) v = feature_rng.Uniform();
    sample.actual_total_time_ms = 10.0 * (i % 7 + 1);
    sample.total_cost = 100.0 * (i % 5 + 1);
    sample.startup_cost = 1.0 * (i % 3 + 1);
  }
  qpe::encoder::PerfTrainOptions options;
  options.epochs = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        qpe::encoder::TrainPerformanceEncoder(&model, dataset, options)
            .size());
  }
  qpe::util::SetMaxThreads(1);
}
BENCHMARK(BM_TrainStepPerfEncoder)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): stamp this binary's build type
// into the JSON context so the baseline scripts can refuse debug-recorded
// numbers. (The reporter's own `library_build_type` field describes how
// libbenchmark was compiled, not this binary.)
int main(int argc, char** argv) {
  benchmark::AddCustomContext("qpe_build_type", QPE_BUILD_TYPE);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
