// Micro-benchmarks (google-benchmark) of the library's hot paths: Smatch
// scoring, plan linearization, physical planning, executor simulation,
// structure-encoder inference, and performance-encoder inference.

#include <benchmark/benchmark.h>

#include <memory>

#include "config/db_config.h"
#include "data/datasets.h"
#include "data/features.h"
#include "data/plan_corpus.h"
#include "encoder/performance_encoder.h"
#include "encoder/structure_encoder.h"
#include "plan/linearize.h"
#include "simdb/executor.h"
#include "simdb/planner.h"
#include "simdb/workloads.h"
#include "smatch/smatch.h"

namespace {

std::unique_ptr<qpe::plan::PlanNode> MakePlan(int nodes, uint64_t seed) {
  qpe::data::CorpusOptions options;
  options.min_nodes = nodes;
  options.max_nodes = nodes + 4;
  qpe::data::RandomPlanGenerator generator(qpe::util::Rng(seed), options);
  return generator.Generate();
}

void BM_SmatchScore(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const auto a = MakePlan(nodes, 1);
  const auto b = MakePlan(nodes, 2);
  const auto fa = qpe::smatch::Flatten(*a);
  const auto fb = qpe::smatch::Flatten(*b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qpe::smatch::Score(fa, fb).f1);
  }
}
BENCHMARK(BM_SmatchScore)->Arg(10)->Arg(40)->Arg(100);

void BM_SmatchExact(benchmark::State& state) {
  const auto a = MakePlan(7, 3);
  const auto b = MakePlan(7, 4);
  const auto fa = qpe::smatch::Flatten(*a);
  const auto fb = qpe::smatch::Flatten(*b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qpe::smatch::ScoreExact(fa, fb).f1);
  }
}
BENCHMARK(BM_SmatchExact);

void BM_LinearizeDfsBracket(benchmark::State& state) {
  const auto plan = MakePlan(static_cast<int>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qpe::plan::LinearizeDfsBracket(*plan));
  }
}
BENCHMARK(BM_LinearizeDfsBracket)->Arg(20)->Arg(100);

void BM_PlannerTpchQ5(benchmark::State& state) {
  qpe::simdb::TpchWorkload tpch(1.0);
  qpe::config::DbConfig db_config;
  qpe::simdb::Planner planner(&tpch.GetCatalog(), &db_config);
  qpe::util::Rng rng(6);
  const qpe::simdb::QuerySpec spec = tpch.Instantiate(4, &rng);  // Q5, 6-way
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.PlanQuery(spec).NumNodes());
  }
}
BENCHMARK(BM_PlannerTpchQ5);

void BM_ExecutorTpchQ5(benchmark::State& state) {
  qpe::simdb::TpchWorkload tpch(1.0);
  qpe::config::DbConfig db_config;
  qpe::simdb::Planner planner(&tpch.GetCatalog(), &db_config);
  qpe::simdb::ExecutorSim executor(&tpch.GetCatalog(), &db_config);
  qpe::util::Rng rng(6);
  const qpe::simdb::QuerySpec spec = tpch.Instantiate(4, &rng);
  qpe::util::Rng noise(1);
  for (auto _ : state) {
    qpe::plan::Plan planned = planner.PlanQuery(spec);
    benchmark::DoNotOptimize(
        executor.Execute(&planned, spec.cardinality_seed, &noise));
  }
}
BENCHMARK(BM_ExecutorTpchQ5);

void BM_StructureEncoderInference(benchmark::State& state) {
  qpe::util::Rng rng(7);
  qpe::encoder::StructureEncoderConfig config;
  qpe::encoder::TransformerPlanEncoder encoder(config, &rng);
  const auto plan = MakePlan(static_cast<int>(state.range(0)), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.Encode(*plan, nullptr).at(0, 0));
  }
}
BENCHMARK(BM_StructureEncoderInference)->Arg(20)->Arg(60);

void BM_PerfEncoderInference(benchmark::State& state) {
  qpe::util::Rng rng(9);
  qpe::encoder::PerformanceEncoder model({}, &rng);
  std::vector<qpe::data::OperatorSample> samples(state.range(0));
  for (auto& sample : samples) {
    sample.node_features.assign(qpe::data::kNodeFeatureDim, 0.1);
    sample.meta_features.assign(qpe::catalog::Catalog::kMetaFeatureDim, 0.2);
    sample.db_features.assign(qpe::config::DbConfig::FeatureDim(), 0.3);
  }
  std::vector<int> all(samples.size());
  for (size_t i = 0; i < samples.size(); ++i) all[i] = static_cast<int>(i);
  for (auto _ : state) {
    const auto batch = qpe::encoder::MakePerfBatch(samples, all);
    benchmark::DoNotOptimize(
        model.PredictLabels(model.Embed(batch.node, batch.meta, batch.db))
            .at(0, 0));
  }
}
BENCHMARK(BM_PerfEncoderInference)->Arg(1)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
