// Micro-benchmarks (google-benchmark) of the library's hot paths: Smatch
// scoring, plan linearization, physical planning, executor simulation,
// encoder inference, MatMul kernels (blocked vs naive reference), and full
// training steps parameterised over the thread count.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "config/db_config.h"
#include "data/datasets.h"
#include "nn/packed_forward.h"
#include "nn/quant.h"
#include "nn/simd.h"
#include "data/features.h"
#include "data/plan_corpus.h"
#include "encoder/performance_encoder.h"
#include "encoder/ppsr.h"
#include "encoder/structure_encoder.h"
#include "nn/tensor.h"
#include "plan/linearize.h"
#include "simdb/executor.h"
#include "simdb/planner.h"
#include "simdb/workloads.h"
#include "smatch/smatch.h"
#include "util/thread_pool.h"

namespace {

std::unique_ptr<qpe::plan::PlanNode> MakePlan(int nodes, uint64_t seed) {
  qpe::data::CorpusOptions options;
  options.min_nodes = nodes;
  options.max_nodes = nodes + 4;
  qpe::data::RandomPlanGenerator generator(qpe::util::Rng(seed), options);
  return generator.Generate();
}

void BM_SmatchScore(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const auto a = MakePlan(nodes, 1);
  const auto b = MakePlan(nodes, 2);
  const auto fa = qpe::smatch::Flatten(*a);
  const auto fb = qpe::smatch::Flatten(*b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qpe::smatch::Score(fa, fb).f1);
  }
}
BENCHMARK(BM_SmatchScore)->Arg(10)->Arg(40)->Arg(100);

void BM_SmatchExact(benchmark::State& state) {
  const auto a = MakePlan(7, 3);
  const auto b = MakePlan(7, 4);
  const auto fa = qpe::smatch::Flatten(*a);
  const auto fb = qpe::smatch::Flatten(*b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qpe::smatch::ScoreExact(fa, fb).f1);
  }
}
BENCHMARK(BM_SmatchExact);

void BM_LinearizeDfsBracket(benchmark::State& state) {
  const auto plan = MakePlan(static_cast<int>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qpe::plan::LinearizeDfsBracket(*plan));
  }
}
BENCHMARK(BM_LinearizeDfsBracket)->Arg(20)->Arg(100);

void BM_PlannerTpchQ5(benchmark::State& state) {
  qpe::simdb::TpchWorkload tpch(1.0);
  qpe::config::DbConfig db_config;
  qpe::simdb::Planner planner(&tpch.GetCatalog(), &db_config);
  qpe::util::Rng rng(6);
  const qpe::simdb::QuerySpec spec = tpch.Instantiate(4, &rng);  // Q5, 6-way
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.PlanQuery(spec).NumNodes());
  }
}
BENCHMARK(BM_PlannerTpchQ5);

void BM_ExecutorTpchQ5(benchmark::State& state) {
  qpe::simdb::TpchWorkload tpch(1.0);
  qpe::config::DbConfig db_config;
  qpe::simdb::Planner planner(&tpch.GetCatalog(), &db_config);
  qpe::simdb::ExecutorSim executor(&tpch.GetCatalog(), &db_config);
  qpe::util::Rng rng(6);
  const qpe::simdb::QuerySpec spec = tpch.Instantiate(4, &rng);
  qpe::util::Rng noise(1);
  for (auto _ : state) {
    qpe::plan::Plan planned = planner.PlanQuery(spec);
    benchmark::DoNotOptimize(
        executor.Execute(&planned, spec.cardinality_seed, &noise));
  }
}
BENCHMARK(BM_ExecutorTpchQ5);

void BM_StructureEncoderInference(benchmark::State& state) {
  qpe::util::Rng rng(7);
  qpe::encoder::StructureEncoderConfig config;
  qpe::encoder::TransformerPlanEncoder encoder(config, &rng);
  const auto plan = MakePlan(static_cast<int>(state.range(0)), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.Encode(*plan, nullptr).at(0, 0));
  }
}
BENCHMARK(BM_StructureEncoderInference)->Arg(20)->Arg(60);

void BM_PerfEncoderInference(benchmark::State& state) {
  qpe::util::Rng rng(9);
  qpe::encoder::PerformanceEncoder model({}, &rng);
  std::vector<qpe::data::OperatorSample> samples(state.range(0));
  for (auto& sample : samples) {
    sample.node_features.assign(qpe::data::kNodeFeatureDim, 0.1);
    sample.meta_features.assign(qpe::catalog::Catalog::kMetaFeatureDim, 0.2);
    sample.db_features.assign(qpe::config::DbConfig::FeatureDim(), 0.3);
  }
  std::vector<int> all(samples.size());
  for (size_t i = 0; i < samples.size(); ++i) all[i] = static_cast<int>(i);
  for (auto _ : state) {
    const auto batch = qpe::encoder::MakePerfBatch(samples, all);
    benchmark::DoNotOptimize(
        model.PredictLabels(model.Embed(batch.node, batch.meta, batch.db))
            .at(0, 0));
  }
}
BENCHMARK(BM_PerfEncoderInference)->Arg(1)->Arg(32);

// --- MatMul kernels ---------------------------------------------------------

qpe::nn::Tensor RandomTensor(int rows, int cols, uint64_t seed,
                             bool requires_grad) {
  qpe::util::Rng rng(seed);
  std::vector<float> data(static_cast<size_t>(rows) * cols);
  for (float& v : data) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  return qpe::nn::Tensor::FromVector(rows, cols, data, requires_grad);
}

// Forward + full backward (dA and dB) through the blocked kernels.
// Args: {size, threads}.
void BM_MatMul(benchmark::State& state) {
  const int size = static_cast<int>(state.range(0));
  qpe::util::SetMaxThreads(static_cast<int>(state.range(1)));
  qpe::nn::Tensor a = RandomTensor(size, size, 11, /*requires_grad=*/true);
  qpe::nn::Tensor b = RandomTensor(size, size, 12, /*requires_grad=*/true);
  for (auto _ : state) {
    a.ZeroGrad();
    b.ZeroGrad();
    const qpe::nn::Tensor out = MatMul(a, b);
    Sum(out).Backward();
    benchmark::DoNotOptimize(a.grad()[0]);
  }
  // Forward plus two backward products, 2*n^3 flops each.
  state.SetItemsProcessed(state.iterations() * 3 * 2LL * size * size * size);
  qpe::util::SetMaxThreads(1);
}
BENCHMARK(BM_MatMul)
    ->Args({64, 1})
    ->Args({256, 1})
    ->Args({512, 1})
    ->Args({64, 4})
    ->Args({256, 4})
    ->Args({512, 4});

// Same workload through the pre-blocking naive kernel (always
// single-threaded): the baseline the blocked kernels are measured against.
void BM_MatMulReference(benchmark::State& state) {
  const int size = static_cast<int>(state.range(0));
  qpe::util::SetMaxThreads(1);
  qpe::nn::Tensor a = RandomTensor(size, size, 11, /*requires_grad=*/true);
  qpe::nn::Tensor b = RandomTensor(size, size, 12, /*requires_grad=*/true);
  for (auto _ : state) {
    a.ZeroGrad();
    b.ZeroGrad();
    const qpe::nn::Tensor out = qpe::nn::MatMulReference(a, b);
    Sum(out).Backward();
    benchmark::DoNotOptimize(a.grad()[0]);
  }
  state.SetItemsProcessed(state.iterations() * 3 * 2LL * size * size * size);
}
BENCHMARK(BM_MatMulReference)->Arg(64)->Arg(256)->Arg(512);

// --- Fused kernels ----------------------------------------------------------

// Fused LayerNorm kernel vs the 8-op composite chain it replaced (both
// inference-mode forwards; the fused forward is bit-identical by contract).
void BM_LayerNormFused(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const int cols = 64;
  qpe::nn::NoGradGuard no_grad;
  const qpe::nn::Tensor x = RandomTensor(rows, cols, 21, false);
  const qpe::nn::Tensor gamma = RandomTensor(1, cols, 22, false);
  const qpe::nn::Tensor beta = RandomTensor(1, cols, 23, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LayerNormRows(x, gamma, beta).at(0, 0));
  }
  state.SetItemsProcessed(state.iterations() * rows * cols);
}
BENCHMARK(BM_LayerNormFused)->Arg(16)->Arg(256);

void BM_LayerNormUnfused(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const int cols = 64;
  qpe::nn::NoGradGuard no_grad;
  const qpe::nn::Tensor x = RandomTensor(rows, cols, 21, false);
  const qpe::nn::Tensor gamma = RandomTensor(1, cols, 22, false);
  const qpe::nn::Tensor beta = RandomTensor(1, cols, 23, false);
  for (auto _ : state) {
    const qpe::nn::Tensor mean = RowMean(x);
    const qpe::nn::Tensor centered = Sub(x, mean);
    const qpe::nn::Tensor var = RowMean(Square(centered));
    const qpe::nn::Tensor inv_std = Sqrt(AddScalar(var, 1e-5f));
    const qpe::nn::Tensor recip = Exp(Scale(Log(inv_std), -1.0f));
    benchmark::DoNotOptimize(
        Add(Mul(Mul(centered, recip), gamma), beta).at(0, 0));
  }
  state.SetItemsProcessed(state.iterations() * rows * cols);
}
BENCHMARK(BM_LayerNormUnfused)->Arg(16)->Arg(256);

// Fused bias+GELU (the batched FFN activation) vs Gelu(Add(a, bias)).
void BM_BiasGeluFused(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const int cols = 96;
  qpe::nn::NoGradGuard no_grad;
  const qpe::nn::Tensor a = RandomTensor(rows, cols, 24, false);
  const qpe::nn::Tensor bias = RandomTensor(1, cols, 25, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BiasGelu(a, bias).at(0, 0));
  }
  state.SetItemsProcessed(state.iterations() * rows * cols);
}
BENCHMARK(BM_BiasGeluFused)->Arg(16)->Arg(256);

void BM_BiasGeluUnfused(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const int cols = 96;
  qpe::nn::NoGradGuard no_grad;
  const qpe::nn::Tensor a = RandomTensor(rows, cols, 24, false);
  const qpe::nn::Tensor bias = RandomTensor(1, cols, 25, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Gelu(Add(a, bias)).at(0, 0));
  }
  state.SetItemsProcessed(state.iterations() * rows * cols);
}
BENCHMARK(BM_BiasGeluUnfused)->Arg(16)->Arg(256);

// Masked row softmax (the batched attention kernel) with all rows fully
// valid, against the unmasked kernel it must match bit-for-bit.
void BM_SoftmaxRowsMasked(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const int cols = 64;
  qpe::nn::NoGradGuard no_grad;
  const qpe::nn::Tensor a = RandomTensor(rows, cols, 26, false);
  const std::vector<int> valid(rows, cols);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SoftmaxRowsMasked(a, valid).at(0, 0));
  }
  state.SetItemsProcessed(state.iterations() * rows * cols);
}
BENCHMARK(BM_SoftmaxRowsMasked)->Arg(16)->Arg(256);

void BM_SoftmaxRowsUnmasked(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const int cols = 64;
  qpe::nn::NoGradGuard no_grad;
  const qpe::nn::Tensor a = RandomTensor(rows, cols, 26, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SoftmaxRows(a).at(0, 0));
  }
  state.SetItemsProcessed(state.iterations() * rows * cols);
}
BENCHMARK(BM_SoftmaxRowsUnmasked)->Arg(16)->Arg(256);

// --- SIMD kernel dispatch ---------------------------------------------------
//
// Each pair drives the same kernel table entry once through the scalar
// reference table and once through the best table this hardware dispatches
// (on scalar-only machines both rows measure the scalar kernel, so the
// pair reads as 1.0x rather than failing). The kernels are called directly
// — no autograd graph — so the pair isolates the vectorization win itself.

const qpe::nn::simd::Kernels& ScalarKernels() {
  return *qpe::nn::simd::TableFor(qpe::nn::simd::Level::kScalar);
}

const qpe::nn::simd::Kernels& BestKernels() {
  return *qpe::nn::simd::TableFor(qpe::nn::simd::HardwareLevel());
}

std::vector<float> RandomBuffer(size_t n, uint64_t seed) {
  qpe::util::Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.Uniform(-1.0, 1.0));
  return v;
}

// Forward-only GEMM at the serving shape family. Args: {m, k, n}.
void MatMulForwardKernel(benchmark::State& state,
                         const qpe::nn::simd::Kernels& kern) {
  const int m = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const int n = static_cast<int>(state.range(2));
  const std::vector<float> a = RandomBuffer(static_cast<size_t>(m) * k, 31);
  const std::vector<float> b = RandomBuffer(static_cast<size_t>(k) * n, 32);
  std::vector<float> out(static_cast<size_t>(m) * n);
  for (auto _ : state) {
    std::fill(out.begin(), out.end(), 0.0f);
    kern.matmul_forward_range(a.data(), b.data(), out.data(), 0, m, k, n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * m * k * n);
  state.SetLabel(kern.name);
}
void BM_MatMulForwardScalar(benchmark::State& state) {
  MatMulForwardKernel(state, ScalarKernels());
}
void BM_MatMulForwardSimd(benchmark::State& state) {
  MatMulForwardKernel(state, BestKernels());
}
BENCHMARK(BM_MatMulForwardScalar)->Args({256, 48, 48})->Args({256, 256, 256});
BENCHMARK(BM_MatMulForwardSimd)->Args({256, 48, 48})->Args({256, 256, 256});

void LayerNormKernel(benchmark::State& state,
                     const qpe::nn::simd::Kernels& kern) {
  const int rows = static_cast<int>(state.range(0));
  const int cols = 64;
  const std::vector<float> x =
      RandomBuffer(static_cast<size_t>(rows) * cols, 33);
  const std::vector<float> gamma = RandomBuffer(cols, 34);
  const std::vector<float> beta = RandomBuffer(cols, 35);
  std::vector<float> out(x.size());
  const float invn = 1.0f / static_cast<float>(cols);
  for (auto _ : state) {
    kern.layer_norm_rows(x.data(), gamma.data(), beta.data(), out.data(),
                         rows, cols, invn);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * rows * cols);
  state.SetLabel(kern.name);
}
void BM_LayerNormScalar(benchmark::State& state) {
  LayerNormKernel(state, ScalarKernels());
}
void BM_LayerNormSimd(benchmark::State& state) {
  LayerNormKernel(state, BestKernels());
}
BENCHMARK(BM_LayerNormScalar)->Arg(256);
BENCHMARK(BM_LayerNormSimd)->Arg(256);

void SoftmaxMaskedKernel(benchmark::State& state,
                         const qpe::nn::simd::Kernels& kern) {
  const int rows = static_cast<int>(state.range(0));
  const int cols = 64;
  const std::vector<float> a =
      RandomBuffer(static_cast<size_t>(rows) * cols, 36);
  const std::vector<int> valid(rows, cols);
  std::vector<float> out(a.size());
  for (auto _ : state) {
    kern.softmax_rows_masked(a.data(), out.data(), valid.data(), rows, cols);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * rows * cols);
  state.SetLabel(kern.name);
}
void BM_SoftmaxMaskedScalar(benchmark::State& state) {
  SoftmaxMaskedKernel(state, ScalarKernels());
}
void BM_SoftmaxMaskedSimd(benchmark::State& state) {
  SoftmaxMaskedKernel(state, BestKernels());
}
BENCHMARK(BM_SoftmaxMaskedScalar)->Arg(256);
BENCHMARK(BM_SoftmaxMaskedSimd)->Arg(256);

// Packed ragged-batch attention at the model shape (48 dims, 4 heads),
// 16 sequences of the given length. Arg: sequence length.
void AttentionPackedKernel(benchmark::State& state,
                           const qpe::nn::simd::Kernels& kern) {
  const int len = static_cast<int>(state.range(0));
  const int num_seqs = 16, num_heads = 4, dim = 48;
  std::vector<int> offsets(num_seqs), lengths(num_seqs, len);
  for (int s = 0; s < num_seqs; ++s) offsets[s] = s * len;
  const int total = num_seqs * len;
  const std::vector<float> q = RandomBuffer(static_cast<size_t>(total) * dim, 37);
  const std::vector<float> k = RandomBuffer(static_cast<size_t>(total) * dim, 38);
  const std::vector<float> v = RandomBuffer(static_cast<size_t>(total) * dim, 39);
  std::vector<float> out(q.size());
  const float scale = 1.0f / std::sqrt(static_cast<float>(dim / num_heads));
  for (auto _ : state) {
    kern.attention_forward_packed(q.data(), k.data(), v.data(), out.data(),
                                  offsets.data(), lengths.data(), num_seqs,
                                  num_heads, dim, scale);
    benchmark::DoNotOptimize(out.data());
  }
  // Scores + context: 2 * T^2 * dim MACs per sequence.
  state.SetItemsProcessed(state.iterations() * num_seqs * 2LL * len * len *
                          dim * 2);
  state.SetLabel(kern.name);
}
void BM_AttentionPackedScalar(benchmark::State& state) {
  AttentionPackedKernel(state, ScalarKernels());
}
void BM_AttentionPackedSimd(benchmark::State& state) {
  AttentionPackedKernel(state, BestKernels());
}
BENCHMARK(BM_AttentionPackedScalar)->Arg(32);
BENCHMARK(BM_AttentionPackedSimd)->Arg(32);

// Head-blocked attention at the same shape, including the per-layer K/V
// repack the engine pays — the pair against BM_AttentionPacked measures
// what head blocking buys end to end. Arg: sequence length.
void AttentionBlockedKernel(benchmark::State& state,
                            const qpe::nn::simd::Kernels& kern) {
  const int len = static_cast<int>(state.range(0));
  const int num_seqs = 16, num_heads = 4, dim = 48;
  std::vector<int> offsets(num_seqs), lengths(num_seqs, len);
  for (int s = 0; s < num_seqs; ++s) offsets[s] = s * len;
  const int total = num_seqs * len;
  const std::vector<float> q = RandomBuffer(static_cast<size_t>(total) * dim, 37);
  const std::vector<float> k = RandomBuffer(static_cast<size_t>(total) * dim, 38);
  const std::vector<float> v = RandomBuffer(static_cast<size_t>(total) * dim, 39);
  std::vector<float> kbt(k.size()), vb(v.size());
  std::vector<float> probs(static_cast<size_t>(len) * len);
  std::vector<float> out(q.size());
  const float scale = 1.0f / std::sqrt(static_cast<float>(dim / num_heads));
  for (auto _ : state) {
    qpe::nn::RepackHeadsKT(k.data(), total, dim, num_heads, kbt.data());
    qpe::nn::RepackHeadsVB(v.data(), total, dim, num_heads, vb.data());
    kern.attention_forward_blocked(q.data(), kbt.data(), vb.data(),
                                   out.data(), offsets.data(), lengths.data(),
                                   num_seqs, num_heads, total, dim, scale,
                                   probs.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * num_seqs * 2LL * len * len *
                          dim * 2);
  state.SetLabel(kern.name);
}
void BM_AttentionBlockedScalar(benchmark::State& state) {
  AttentionBlockedKernel(state, ScalarKernels());
}
void BM_AttentionBlockedSimd(benchmark::State& state) {
  AttentionBlockedKernel(state, BestKernels());
}
BENCHMARK(BM_AttentionBlockedScalar)->Arg(32);
BENCHMARK(BM_AttentionBlockedSimd)->Arg(32);

// Fused embedding gather + positional add at the model dims (24+12+12),
// the packed pipeline's batch-assembly kernel. Arg: packed rows.
void EmbedGatherKernel(benchmark::State& state,
                       const qpe::nn::simd::Kernels& kern) {
  const int rows = static_cast<int>(state.range(0));
  const int d1 = 24, d2 = 12, d3 = 12;
  const int d = d1 + d2 + d3;
  const int vocab = 64, max_len = 256;
  const std::vector<float> e1 = RandomBuffer(static_cast<size_t>(vocab) * d1, 51);
  const std::vector<float> e2 = RandomBuffer(static_cast<size_t>(vocab) * d2, 52);
  const std::vector<float> e3 = RandomBuffer(static_cast<size_t>(vocab) * d3, 53);
  const std::vector<float> pos =
      RandomBuffer(static_cast<size_t>(max_len) * d, 54);
  qpe::util::Rng rng(55);
  std::vector<int> ids1(rows), ids2(rows), ids3(rows), positions(rows);
  for (int r = 0; r < rows; ++r) {
    ids1[r] = rng.UniformInt(0, vocab - 1);
    ids2[r] = rng.UniformInt(0, vocab - 1);
    ids3[r] = rng.UniformInt(0, vocab - 1);
    positions[r] = rng.UniformInt(0, max_len - 1);
  }
  std::vector<float> out(static_cast<size_t>(rows) * d);
  for (auto _ : state) {
    kern.embed_gather_add(e1.data(), e2.data(), e3.data(), pos.data(),
                          ids1.data(), ids2.data(), ids3.data(),
                          positions.data(), out.data(), rows, d1, d2, d3);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * rows * d);
  state.SetLabel(kern.name);
}
void BM_EmbedGatherScalar(benchmark::State& state) {
  EmbedGatherKernel(state, ScalarKernels());
}
void BM_EmbedGatherSimd(benchmark::State& state) {
  EmbedGatherKernel(state, BestKernels());
}
BENCHMARK(BM_EmbedGatherScalar)->Arg(512);
BENCHMARK(BM_EmbedGatherSimd)->Arg(512);

// Int8 GEMM (quantized serving engine) vs the fp32 forward kernel at the
// same shape — the quantization win on top of vectorization. Uses the
// dispatched (best) table for both rows. Args: {m, k, n}.
void BM_Int8Gemm(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const int n = static_cast<int>(state.range(2));
  const qpe::nn::simd::Kernels& kern = BestKernels();
  qpe::util::Rng rng(40);
  std::vector<int8_t> a(static_cast<size_t>(m) * k);
  std::vector<int8_t> b(static_cast<size_t>(n) * k);
  for (int8_t& x : a) {
    x = static_cast<int8_t>(rng.UniformInt(-127, 127));
  }
  for (int8_t& x : b) {
    x = static_cast<int8_t>(rng.UniformInt(-127, 127));
  }
  const std::vector<float> a_scale(m, 0.01f);
  const std::vector<float> b_scale(n, 0.02f);
  const std::vector<float> bias = RandomBuffer(n, 41);
  std::vector<float> c(static_cast<size_t>(m) * n);
  for (auto _ : state) {
    kern.int8_gemm(a.data(), b.data(), c.data(), m, k, n, a_scale.data(),
                   b_scale.data(), bias.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * m * k * n);
  state.SetLabel(kern.name);
}
BENCHMARK(BM_Int8Gemm)->Args({256, 48, 48})->Args({256, 256, 256});

// Int8 GEMM over pre-packed weight tiles (the serving layout after
// Quantize() repacks). Packing happens once outside the loop, exactly as
// in QuantizedLinear; the pair against BM_Int8Gemm isolates the tile
// layout's win. Args: {m, k, n}.
void BM_Int8GemmPacked(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const int n = static_cast<int>(state.range(2));
  const qpe::nn::simd::Kernels& kern = BestKernels();
  qpe::util::Rng rng(40);
  const int k_pad = qpe::nn::simd::Int8PackedKPad(k);
  std::vector<int8_t> a(static_cast<size_t>(m) * k_pad, 0);
  std::vector<int8_t> b(static_cast<size_t>(n) * k);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < k; ++j) {
      a[static_cast<size_t>(i) * k_pad + j] =
          static_cast<int8_t>(rng.UniformInt(-127, 127));
    }
  }
  for (int8_t& x : b) {
    x = static_cast<int8_t>(rng.UniformInt(-127, 127));
  }
  std::vector<int16_t> packed(qpe::nn::simd::Int8PackedSize(k, n));
  qpe::nn::simd::PackInt8WeightTiles(b.data(), k, n, packed.data());
  const std::vector<float> a_scale(m, 0.01f);
  const std::vector<float> b_scale(n, 0.02f);
  const std::vector<float> bias = RandomBuffer(n, 41);
  std::vector<float> c(static_cast<size_t>(m) * n);
  for (auto _ : state) {
    kern.int8_gemm_packed(a.data(), packed.data(), c.data(), m, k, n,
                          a_scale.data(), b_scale.data(), bias.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * m * k * n);
  state.SetLabel(kern.name);
}
BENCHMARK(BM_Int8GemmPacked)->Args({256, 48, 48})->Args({256, 256, 256});

// --- Training steps ---------------------------------------------------------

// One PPSR training epoch (24 pairs, transformer encoder) per iteration.
// Arg: thread count.
void BM_TrainStepPpsr(benchmark::State& state) {
  qpe::util::SetMaxThreads(static_cast<int>(state.range(0)));
  qpe::data::PairDatasetOptions options;
  options.num_pairs = 24;
  options.corpus.min_nodes = 4;
  options.corpus.max_nodes = 16;
  const qpe::data::PlanPairDataset dataset =
      qpe::data::BuildCorpusPairDataset(options);
  qpe::util::Rng rng(14);
  qpe::encoder::StructureEncoderConfig config;
  config.num_layers = 1;
  qpe::encoder::PpsrModel model(
      std::make_unique<qpe::encoder::TransformerPlanEncoder>(config, &rng),
      &rng);
  qpe::encoder::PpsrTrainOptions train_options;
  train_options.epochs = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        qpe::encoder::TrainPpsr(&model, dataset.train, train_options));
  }
  qpe::util::SetMaxThreads(1);
}
BENCHMARK(BM_TrainStepPpsr)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// One performance-encoder training epoch (128 synthetic operator samples,
// including the per-epoch train-MAE evaluation) per iteration. Arg: thread
// count.
void BM_TrainStepPerfEncoder(benchmark::State& state) {
  qpe::util::SetMaxThreads(static_cast<int>(state.range(0)));
  qpe::util::Rng rng(9);
  qpe::encoder::PerformanceEncoder model({}, &rng);
  qpe::data::OperatorDataset dataset;
  dataset.train.resize(128);
  qpe::util::Rng feature_rng(10);
  for (size_t i = 0; i < dataset.train.size(); ++i) {
    auto& sample = dataset.train[i];
    sample.node_features.resize(qpe::data::kNodeFeatureDim);
    sample.meta_features.resize(qpe::catalog::Catalog::kMetaFeatureDim);
    sample.db_features.resize(qpe::config::DbConfig::FeatureDim());
    for (double& v : sample.node_features) v = feature_rng.Uniform();
    for (double& v : sample.meta_features) v = feature_rng.Uniform();
    for (double& v : sample.db_features) v = feature_rng.Uniform();
    sample.actual_total_time_ms = 10.0 * (i % 7 + 1);
    sample.total_cost = 100.0 * (i % 5 + 1);
    sample.startup_cost = 1.0 * (i % 3 + 1);
  }
  qpe::encoder::PerfTrainOptions options;
  options.epochs = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        qpe::encoder::TrainPerformanceEncoder(&model, dataset, options)
            .size());
  }
  qpe::util::SetMaxThreads(1);
}
BENCHMARK(BM_TrainStepPerfEncoder)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// --- train_step_speedup context stamp ---------------------------------------

// Best-of-3 single-threaded PPSR training epochs (same model shape and data
// as BM_TrainStepPpsr), fresh model per repetition so every measurement
// times epoch 1 from identical weights.
double BestTrainEpochMs(const qpe::data::PlanPairDataset& dataset) {
  qpe::util::SetMaxThreads(1);
  double best_ms = 0;
  for (int rep = 0; rep < 3; ++rep) {
    qpe::util::Rng rng(14);
    qpe::encoder::StructureEncoderConfig config;
    config.num_layers = 1;
    qpe::encoder::PpsrModel model(
        std::make_unique<qpe::encoder::TransformerPlanEncoder>(config, &rng),
        &rng);
    qpe::encoder::PpsrTrainOptions train_options;
    train_options.epochs = 1;
    const auto start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(
        qpe::encoder::TrainPpsr(&model, dataset.train, train_options));
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (rep == 0 || ms < best_ms) best_ms = ms;
  }
  return best_ms;
}

// The packed-training win, measured in-process so the regression gate can
// hold an absolute floor on it: per-plan op-chain training graphs
// (QPE_PACKED_TRAIN=0) vs the packed columnar forward/backward (the
// default) on the exact same single-threaded epoch. A ratio of wall-clock
// ratios is largely frequency-insensitive, which is what an absolute
// floor needs on shared hosts.
std::string MeasureTrainStepSpeedup() {
  qpe::data::PairDatasetOptions options;
  options.num_pairs = 24;
  options.corpus.min_nodes = 4;
  options.corpus.max_nodes = 16;
  const qpe::data::PlanPairDataset dataset =
      qpe::data::BuildCorpusPairDataset(options);
  const char* saved = std::getenv("QPE_PACKED_TRAIN");
  setenv("QPE_PACKED_TRAIN", "0", 1);
  const double per_plan_ms = BestTrainEpochMs(dataset);
  if (saved != nullptr) {
    setenv("QPE_PACKED_TRAIN", saved, 1);
  } else {
    unsetenv("QPE_PACKED_TRAIN");
  }
  const double packed_ms = BestTrainEpochMs(dataset);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f",
                packed_ms > 0 ? per_plan_ms / packed_ms : 0.0);
  return buf;
}

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): stamp this binary's build type
// into the JSON context so the baseline scripts can refuse debug-recorded
// numbers. (The reporter's own `library_build_type` field describes how
// libbenchmark was compiled, not this binary.)
int main(int argc, char** argv) {
  benchmark::AddCustomContext("qpe_build_type", QPE_BUILD_TYPE);
  benchmark::AddCustomContext(
      "qpe_simd_level",
      qpe::nn::simd::LevelName(qpe::nn::simd::ActiveLevel()));
  benchmark::AddCustomContext("train_step_speedup",
                              MeasureTrainStepSpeedup());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
