#ifndef QPE_BENCH_BENCH_COMMON_H_
#define QPE_BENCH_BENCH_COMMON_H_

// Shared helpers for the table/figure reproduction harnesses. Each bench is
// a standalone binary printing the same rows/series the paper reports;
// flags scale the experiment up toward paper-sized runs.

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "config/lhs_sampler.h"
#include "data/datasets.h"
#include "encoder/performance_encoder.h"
#include "simdb/workload_runner.h"
#include "simdb/workloads.h"
#include "tasks/embeddings.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace qpe::bench {

// Minimal --flag value parsing.
inline double FlagDouble(int argc, char** argv, const char* name,
                         double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

inline int FlagInt(int argc, char** argv, const char* name, int fallback) {
  return static_cast<int>(FlagDouble(argc, argv, name, fallback));
}

// Runs all (or selected) templates of a workload across LHS configurations.
inline std::vector<simdb::ExecutedQuery> RunBenchmark(
    const simdb::BenchmarkWorkload& workload, int num_configs,
    int instances_per_template, uint64_t seed) {
  config::LhsSampler sampler((util::Rng(seed)));
  const auto configs = sampler.Sample(num_configs);
  simdb::RunOptions options;
  options.instances_per_template = instances_per_template;
  options.seed = seed + 1;
  return simdb::RunWorkload(workload, configs, options);
}

// Deterministic train/test split by record index.
inline void SplitRecords(const std::vector<simdb::ExecutedQuery>& all,
                         int test_every,
                         std::vector<simdb::ExecutedQuery>* train,
                         std::vector<simdb::ExecutedQuery>* test) {
  for (size_t i = 0; i < all.size(); ++i) {
    (static_cast<int>(i) % test_every == 0 ? test : train)
        ->push_back(all[i].Clone());
  }
}

// Per-operator-group performance encoders pretrained on executed queries.
struct PerfEncoderSet {
  std::vector<std::unique_ptr<encoder::PerformanceEncoder>> encoders;
  // Training history per group (empty when the group had too few samples).
  std::vector<std::vector<encoder::PerfEpochStats>> histories;

  void FillFeaturizerConfig(tasks::EmbeddingFeaturizer::Config* config) const {
    for (int g = 0; g < 4; ++g) {
      config->performance[g] = encoders[g].get();
    }
  }
};

inline PerfEncoderSet PretrainPerfEncoders(
    const std::vector<simdb::ExecutedQuery>& executed,
    const catalog::Catalog& catalog, int epochs, uint64_t seed,
    const encoder::PerfEncoderConfig& config = {}) {
  PerfEncoderSet set;
  util::Rng rng(seed);
  for (int g = 0; g < 4; ++g) {
    set.encoders.push_back(
        std::make_unique<encoder::PerformanceEncoder>(config, &rng));
    auto samples = data::ExtractOperatorSamples(
        executed, catalog, static_cast<plan::OperatorGroup>(g));
    std::vector<encoder::PerfEpochStats> history;
    if (samples.size() >= 30) {
      auto dataset = data::SplitOperatorSamples(std::move(samples), seed + g);
      encoder::PerfTrainOptions options;
      options.epochs = epochs;
      options.seed = seed + 10 + g;
      history = encoder::TrainPerformanceEncoder(set.encoders.back().get(),
                                                 dataset, options);
    }
    set.histories.push_back(std::move(history));
  }
  return set;
}

// Mixed-workload per-operator pretraining data (paper §6.2: TPC-H and
// TPC-DS at several scale factors, each on LHS-sampled configurations).
inline std::vector<data::OperatorDataset> BuildPerfPretrainData(
    const std::vector<double>& scale_factors, int configs_per_workload,
    uint64_t seed) {
  std::vector<data::OperatorSample> samples[4];
  int salt = 0;
  for (double sf : scale_factors) {
    simdb::TpchWorkload tpch(sf);
    simdb::TpcdsWorkload tpcds(sf);
    for (const simdb::BenchmarkWorkload* workload :
         {static_cast<const simdb::BenchmarkWorkload*>(&tpch),
          static_cast<const simdb::BenchmarkWorkload*>(&tpcds)}) {
      const auto records =
          RunBenchmark(*workload, configs_per_workload, 1, seed + salt++);
      for (int g = 0; g < 4; ++g) {
        auto extracted = data::ExtractOperatorSamples(
            records, workload->GetCatalog(),
            static_cast<plan::OperatorGroup>(g));
        for (auto& sample : extracted) samples[g].push_back(std::move(sample));
      }
    }
  }
  std::vector<data::OperatorDataset> datasets;
  for (int g = 0; g < 4; ++g) {
    datasets.push_back(
        data::SplitOperatorSamples(std::move(samples[g]), seed + 100 + g));
  }
  return datasets;
}

// Per-operator finetuning data from a single target workload.
inline std::vector<data::OperatorDataset> BuildPerfFinetuneData(
    const simdb::BenchmarkWorkload& workload, int num_configs, uint64_t seed,
    int max_train_samples = 2000, int max_test_samples = 500) {
  const auto records = RunBenchmark(workload, num_configs, 1, seed);
  std::vector<data::OperatorDataset> datasets;
  for (int g = 0; g < 4; ++g) {
    auto samples = data::ExtractOperatorSamples(
        records, workload.GetCatalog(), static_cast<plan::OperatorGroup>(g));
    auto dataset = data::SplitOperatorSamples(std::move(samples), seed + g,
                                              /*val_fraction=*/0.15,
                                              /*test_fraction=*/0.2);
    if (static_cast<int>(dataset.train.size()) > max_train_samples) {
      dataset.train.resize(max_train_samples);
    }
    if (static_cast<int>(dataset.test.size()) > max_test_samples) {
      dataset.test.resize(max_test_samples);
    }
    datasets.push_back(std::move(dataset));
  }
  return datasets;
}

// Truncates a dataset's training split to the given fraction.
inline data::OperatorDataset FractionOf(const data::OperatorDataset& dataset,
                                        double fraction) {
  data::OperatorDataset out;
  const size_t keep = static_cast<size_t>(dataset.train.size() * fraction);
  for (size_t i = 0; i < keep; ++i) out.train.push_back(dataset.train[i]);
  out.val = dataset.val;
  out.test = dataset.test;
  return out;
}

// Per-template MAE aggregation: groups test records by template and reports
// the MAE of `predict` against observed latency.
template <typename PredictFn>
std::vector<std::pair<int, double>> PerTemplateMae(
    const std::vector<simdb::ExecutedQuery>& test, PredictFn&& predict) {
  std::vector<std::pair<int, double>> result;
  std::vector<int> templates;
  for (const auto& record : test) {
    bool seen = false;
    for (int t : templates) seen = seen || t == record.template_index;
    if (!seen) templates.push_back(record.template_index);
  }
  for (int t : templates) {
    double total = 0;
    int count = 0;
    for (const auto& record : test) {
      if (record.template_index != t) continue;
      total += std::abs(predict(record) - record.latency_ms);
      ++count;
    }
    result.emplace_back(t, count > 0 ? total / count : 0.0);
  }
  return result;
}

}  // namespace qpe::bench

#endif  // QPE_BENCH_BENCH_COMMON_H_
