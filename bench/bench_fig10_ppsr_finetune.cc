// Reproduces paper Figure 10: MAE of predicted vs true Smatch score on the
// plan-pair similarity regression task, per target domain (TPC-H, TPC-DS,
// SPATIAL), for:
//   from scratch:   FNN, LSTM, Transformer
//   pretrained:     Sparse-AE (finetuned), LSTM-PPSR (finetuned),
//                   Transformer-PPSR-fixed (frozen encoder),
//                   Transformer-PPSR (finetuned)
// Shape to match: Transformer-PPSR (finetuned) best on TPC-H/TPC-DS; the
// fixed-feature variant much worse; pretraining helps little on SPATIAL.

#include <iostream>
#include <memory>

#include "bench_common.h"
#include "data/datasets.h"
#include "encoder/ppsr.h"
#include "nn/serialize.h"

namespace {

using qpe::encoder::FnnPlanEncoder;
using qpe::encoder::LstmPlanEncoder;
using qpe::encoder::PlanSequenceEncoder;
using qpe::encoder::PpsrModel;
using qpe::encoder::SparseAutoencoder;
using qpe::encoder::StructureEncoderConfig;
using qpe::encoder::TransformerPlanEncoder;

StructureEncoderConfig EncoderConfig() {
  StructureEncoderConfig config;
  config.dropout = 0.0f;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const int corpus_pairs = qpe::bench::FlagInt(argc, argv, "--corpus-pairs", 600);
  const int domain_pairs = qpe::bench::FlagInt(argc, argv, "--domain-pairs", 300);
  const int pretrain_epochs = qpe::bench::FlagInt(argc, argv, "--pretrain-epochs", 3);
  const int finetune_epochs = qpe::bench::FlagInt(argc, argv, "--finetune-epochs", 3);

  std::cout << "Figure 10: PPSR finetuning MAE per domain ("
            << corpus_pairs << " corpus pairs, " << domain_pairs
            << " pairs per domain)\n\n";

  // Pretraining corpus (crowdsourced stand-in).
  qpe::data::PairDatasetOptions corpus_options;
  corpus_options.num_pairs = corpus_pairs;
  corpus_options.corpus.max_nodes = 40;
  const auto corpus = qpe::data::BuildCorpusPairDataset(corpus_options);

  // Target domains.
  qpe::simdb::TpchWorkload tpch(0.5);
  qpe::simdb::TpcdsWorkload tpcds(0.5);
  qpe::simdb::SpatialWorkload spatial(0.1);
  struct Domain {
    const char* name;
    qpe::data::PlanPairDataset pairs;
  };
  auto domain_pairsets = [&](const qpe::simdb::BenchmarkWorkload& w,
                             uint64_t seed) {
    qpe::data::PairDatasetOptions options;
    options.num_pairs = domain_pairs;
    options.seed = seed;
    return qpe::data::BuildWorkloadPairDataset(w, options);
  };
  std::vector<Domain> domains;
  domains.push_back({"TPC-H", domain_pairsets(tpch, 61)});
  domains.push_back({"TPC-DS", domain_pairsets(tpcds, 62)});
  domains.push_back({"SPATIAL", domain_pairsets(spatial, 63)});

  // Model constructors.
  qpe::util::Rng rng(19);
  auto make_transformer = [&]() {
    return std::make_unique<TransformerPlanEncoder>(EncoderConfig(), &rng);
  };
  auto make_lstm = [&]() {
    return std::make_unique<LstmPlanEncoder>(EncoderConfig(), &rng);
  };
  auto make_fnn = [&]() { return std::make_unique<FnnPlanEncoder>(64, 48, &rng); };

  qpe::util::TablePrinter table(
      {"Method", "TPC-H MAE", "TPC-DS MAE", "SPATIAL MAE"});

  // Scratch rows: train on the domain only.
  auto scratch_row = [&](const char* name, auto make_encoder) {
    std::vector<std::string> row = {name};
    for (const Domain& domain : domains) {
      PpsrModel model(make_encoder(), &rng);
      qpe::encoder::PpsrTrainOptions options;
      options.epochs = finetune_epochs + pretrain_epochs;  // equal budget
      qpe::encoder::TrainPpsr(&model, domain.pairs.train, options);
      row.push_back(qpe::util::TablePrinter::Num(
          qpe::encoder::EvaluatePpsrMae(model, domain.pairs.test), 4));
    }
    table.AddRow(row);
  };
  scratch_row("FNN (scratch)", make_fnn);
  scratch_row("LSTM (scratch)", make_lstm);
  scratch_row("Transformer (scratch)", make_transformer);

  // Pretrained rows: pretrain once on the corpus, then adapt per domain.
  auto pretrained_row = [&](const char* name, auto make_encoder,
                            bool freeze_encoder) {
    // Pretrain.
    PpsrModel pretrained(make_encoder(), &rng);
    qpe::encoder::PpsrTrainOptions pretrain_options;
    pretrain_options.epochs = pretrain_epochs;
    qpe::encoder::TrainPpsr(&pretrained, corpus.train, pretrain_options);
    std::vector<std::string> row = {name};
    for (const Domain& domain : domains) {
      PpsrModel finetuned(make_encoder(), &rng);
      qpe::nn::CopyParameters(pretrained, &finetuned);
      qpe::encoder::PpsrTrainOptions finetune_options;
      finetune_options.epochs = finetune_epochs;
      finetune_options.freeze_encoder = freeze_encoder;
      qpe::encoder::TrainPpsr(&finetuned, domain.pairs.train, finetune_options);
      row.push_back(qpe::util::TablePrinter::Num(
          qpe::encoder::EvaluatePpsrMae(finetuned, domain.pairs.test), 4));
    }
    table.AddRow(row);
  };

  // Sparse-AE: self-supervised pretraining on corpus plans, then the match
  // head is trained on the domain (encoder finetuned as well).
  {
    std::vector<const qpe::plan::PlanNode*> corpus_plans;
    for (const auto& pair : corpus.train) {
      corpus_plans.push_back(pair.left.get());
    }
    auto autoencoder = std::make_unique<SparseAutoencoder>(48, &rng);
    qpe::encoder::PretrainSparseAutoencoder(autoencoder.get(), corpus_plans,
                                            pretrain_epochs * 2, 3e-3f, 5);
    SparseAutoencoder* raw = autoencoder.get();
    PpsrModel model(std::move(autoencoder), &rng);
    (void)raw;
    std::vector<std::string> row = {"Sparse-AE (pretrained)"};
    for (const Domain& domain : domains) {
      PpsrModel finetuned(std::make_unique<SparseAutoencoder>(48, &rng), &rng);
      qpe::nn::CopyParameters(model, &finetuned);
      qpe::encoder::PpsrTrainOptions options;
      options.epochs = finetune_epochs;
      qpe::encoder::TrainPpsr(&finetuned, domain.pairs.train, options);
      row.push_back(qpe::util::TablePrinter::Num(
          qpe::encoder::EvaluatePpsrMae(finetuned, domain.pairs.test), 4));
    }
    table.AddRow(row);
  }

  pretrained_row("LSTM-PPSR (pretrained)", make_lstm, false);
  pretrained_row("Transformer-PPSR-fixed", make_transformer, true);
  pretrained_row("Transformer-PPSR", make_transformer, false);

  table.Print(std::cout);
  std::cout << "\nPaper shape: Transformer-PPSR lowest MAE on TPC-H/TPC-DS; "
               "-fixed much worse than finetuned; on SPATIAL the scratch "
               "LSTM/Transformer are already competitive.\n";
  return 0;
}
