// Ablation (paper §3.1.2 design claim): the DFS-bracket linearization
// "keeps more structural information ... shows less ambiguity than simple
// BFS and DFS strategies". This bench quantifies that claim two ways:
//   1. Ambiguity: the fraction of structurally distinct plan pairs whose
//      linearizations collide, per strategy.
//   2. Task impact: PPSR MAE of the transformer encoder when trained on
//      each linearization.

#include <iostream>
#include <map>
#include <memory>

#include "bench_common.h"
#include "data/datasets.h"
#include "encoder/ppsr.h"
#include "plan/linearize.h"

namespace {

// A transformer encoder whose Encode() uses a configurable traversal.
class TraversalEncoder : public qpe::encoder::TransformerPlanEncoder {
 public:
  enum class Strategy { kDfsBracket, kDfs, kBfs };

  TraversalEncoder(Strategy strategy,
                   const qpe::encoder::StructureEncoderConfig& config,
                   qpe::util::Rng* rng)
      : TransformerPlanEncoder(config, rng), strategy_(strategy) {}

  qpe::nn::Tensor Encode(const qpe::plan::PlanNode& root,
                         qpe::util::Rng* dropout_rng) const override {
    std::vector<qpe::plan::OperatorType> tokens;
    const qpe::plan::Taxonomy& tax = qpe::plan::Taxonomy::Get();
    switch (strategy_) {
      case Strategy::kDfsBracket:
        return TransformerPlanEncoder::Encode(root, dropout_rng);
      case Strategy::kDfs:
        tokens = qpe::plan::LinearizeDfs(root);
        break;
      case Strategy::kBfs:
        tokens = qpe::plan::LinearizeBfs(root);
        break;
    }
    // Add CLS/SEP so the pooling position exists.
    std::vector<qpe::plan::OperatorType> wrapped;
    wrapped.push_back(qpe::plan::OperatorType(
        static_cast<uint8_t>(tax.cls()), 0, 0));
    wrapped.insert(wrapped.end(), tokens.begin(), tokens.end());
    wrapped.push_back(qpe::plan::OperatorType(
        static_cast<uint8_t>(tax.sep()), 0, 0));
    return EncodeTokens(wrapped, dropout_rng);
  }

 private:
  Strategy strategy_;
};

std::string TokensKey(const std::vector<qpe::plan::OperatorType>& tokens) {
  std::string key;
  for (const auto& token : tokens) {
    key += token.ToString(true);
    key += '|';
  }
  return key;
}

}  // namespace

int main(int argc, char** argv) {
  const int num_plans = qpe::bench::FlagInt(argc, argv, "--plans", 3000);
  const int num_pairs = qpe::bench::FlagInt(argc, argv, "--pairs", 300);

  std::cout << "Ablation: DFS-bracket vs plain DFS vs BFS linearization\n\n";

  // --- 1. Ambiguity ---
  // Collisions require plans that differ only in *topology*: generate random
  // trees over a minimal operator pool (one unary, one binary, one leaf
  // type) so sequences of types alone cannot identify the tree.
  qpe::util::Rng topo_rng(3);
  auto random_minimal_tree = [&]() {
    auto root = std::make_unique<qpe::plan::PlanNode>(
        qpe::plan::OperatorType::Parse("Sort"));
    std::vector<qpe::plan::PlanNode*> frontier = {root.get()};
    const int nodes = static_cast<int>(topo_rng.UniformInt(2, 7));
    for (int i = 0; i < nodes; ++i) {
      qpe::plan::PlanNode* parent =
          frontier[topo_rng.UniformInt(0, frontier.size() - 1)];
      const bool join = topo_rng.Bernoulli(0.4);
      qpe::plan::PlanNode* child = parent->AddChild(
          qpe::plan::OperatorType::Parse(join ? "Join-Hash" : "Sort"));
      frontier.push_back(child);
    }
    return root;
  };
  std::map<std::string, std::string> bracket_seen, dfs_seen, bfs_seen;
  int bracket_collisions = 0, dfs_collisions = 0, bfs_collisions = 0;
  for (int i = 0; i < num_plans; ++i) {
    const auto plan = random_minimal_tree();
    // Canonical structural identity: the bracket string IS injective for
    // trees, so use it as ground truth; a "collision" for a strategy means
    // two structurally different plans produced identical sequences.
    const std::string truth =
        TokensKey(qpe::plan::LinearizeDfsBracket(*plan, false));
    auto check = [&](std::map<std::string, std::string>* seen,
                     const std::vector<qpe::plan::OperatorType>& tokens,
                     int* collisions) {
      const std::string key = TokensKey(tokens);
      auto [it, inserted] = seen->emplace(key, truth);
      if (!inserted && it->second != truth) ++(*collisions);
    };
    check(&bracket_seen, qpe::plan::LinearizeDfsBracket(*plan, false),
          &bracket_collisions);
    check(&dfs_seen, qpe::plan::LinearizeDfs(*plan), &dfs_collisions);
    check(&bfs_seen, qpe::plan::LinearizeBfs(*plan), &bfs_collisions);
  }
  qpe::util::TablePrinter ambiguity({"strategy", "collisions (distinct trees, same sequence)"});
  ambiguity.AddRow({"DFS-bracket", std::to_string(bracket_collisions)});
  ambiguity.AddRow({"plain DFS", std::to_string(dfs_collisions)});
  ambiguity.AddRow({"plain BFS", std::to_string(bfs_collisions)});
  ambiguity.Print(std::cout);

  // --- 2. PPSR accuracy per strategy ---
  qpe::data::PairDatasetOptions pair_options;
  pair_options.num_pairs = num_pairs;
  pair_options.corpus.max_nodes = 30;
  const auto pairs = qpe::data::BuildCorpusPairDataset(pair_options);

  std::cout << "\n";
  qpe::util::TablePrinter task({"strategy", "PPSR test MAE"});
  qpe::encoder::StructureEncoderConfig config;
  config.dropout = 0.0f;
  for (auto [name, strategy] :
       {std::make_pair("DFS-bracket", TraversalEncoder::Strategy::kDfsBracket),
        std::make_pair("plain DFS", TraversalEncoder::Strategy::kDfs),
        std::make_pair("plain BFS", TraversalEncoder::Strategy::kBfs)}) {
    qpe::util::Rng rng(99);
    qpe::encoder::PpsrModel model(
        std::make_unique<TraversalEncoder>(strategy, config, &rng), &rng);
    qpe::encoder::PpsrTrainOptions options;
    options.epochs = 4;
    qpe::encoder::TrainPpsr(&model, pairs.train, options);
    task.AddRow({name, qpe::util::TablePrinter::Num(
                           qpe::encoder::EvaluatePpsrMae(model, pairs.test),
                           4)});
  }
  task.Print(std::cout);
  std::cout << "\nExpected: zero collisions for DFS-bracket (injective for "
               "trees) and non-zero for plain DFS/BFS; DFS-bracket at least "
               "matches the others on PPSR.\n";
  return 0;
}
