// End-to-end serving benchmark: plans/sec of the per-plan encode path vs
// the batched serving path (cache disabled) vs the warm plan-fingerprint
// cache, plus request latency percentiles. Writes machine-readable results
// (consumed by scripts/check_bench_regression.sh) and prints a human
// summary.
//
// The workload is a template-replay mix (22 TPC-H templates, 4
// instantiations each): instantiations of the same template usually plan
// to the same operator tree, so the 88-plan request holds ~30 distinct
// structures. The batched serving path fingerprints the request and
// encodes each distinct plan once (within-request dedup — no cross-request
// state), which the stateless per-plan path cannot do; the raw EncodeBatch
// number without dedup is reported separately so the two effects
// (dedup vs. kernel/dispatch amortization) stay distinguishable.
//
// All numbers are single-thread by construction (SetMaxThreads(1)) so they
// are comparable across machines and across runs on shared hardware; the
// batched-vs-per-plan ratio is the serving-path win, not parallelism.
//
// Usage: bench_serving [output.json]   (default BENCH_serving.json)

#include <ctime>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "config/db_config.h"
#include "encoder/quantized_encoder.h"
#include "encoder/structure_encoder.h"
#include "nn/simd.h"
#include "nn/tensor.h"
#include "plan/serialize.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/embedding_service.h"
#include "simdb/planner.h"
#include "simdb/workloads.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

// Process CPU time, not wall clock: the benchmark is single-threaded, so
// CPU seconds equal the work done regardless of what else runs on the
// machine. Throughput is then best-of-N repetitions, the standard defense
// against residual noise on shared hardware.
double CpuSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
}

constexpr int kBatchSize = 16;

// Best-of repetitions and replay passes. QPE_BENCH_SMOKE=1 shrinks the
// whole workload to a single quick pass — enough to smoke-test the
// harness (scripts/profile_serving.sh runs under it in run_all.sh), never
// to be recorded as a baseline.
int g_encode_reps = 5;     // best-of repetitions (after 1 warmup)
int g_replay_passes = 20;  // template replays for the cache bench

// Daemon load generator: closed-loop clients per tenant, fixed wall-clock
// window. Latency here is wall time by necessity (it includes queueing and
// the socket round trip — exactly what the daemon adds over the in-process
// service), so the regression gate holds daemon_p99_ms to a coarser
// threshold than the CPU-time throughput metrics.
constexpr int kDaemonClientsPerTenant = 2;
constexpr int kDaemonPlansPerRequest = 8;
double g_daemon_window_seconds = 1.2;

struct LoadResult {
  std::vector<double> latencies_ms;
  uint64_t completed = 0;
  uint64_t shed = 0;
};

double PercentileMs(std::vector<double>* sorted_ms, double q) {
  if (sorted_ms->empty()) return 0;
  const size_t idx = std::min(
      sorted_ms->size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted_ms->size())));
  return (*sorted_ms)[idx];
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_serving.json";
  if (std::getenv("QPE_BENCH_SMOKE") != nullptr) {
    g_encode_reps = 1;
    g_replay_passes = 2;
    g_daemon_window_seconds = 0.2;
  }
  qpe::util::SetMaxThreads(1);

  // The paper-default structure encoder over the TPC-H template catalog:
  // one plan per template, several instantiations, like a live workload
  // mixing repeated templates.
  qpe::util::Rng rng(20240806);
  const qpe::encoder::StructureEncoderConfig config;  // paper defaults
  const qpe::encoder::TransformerPlanEncoder encoder(config, &rng);

  const qpe::simdb::TpchWorkload tpch(0.05);
  const qpe::config::DbConfig db_config;
  qpe::simdb::Planner planner(&tpch.GetCatalog(), &db_config);
  std::vector<std::unique_ptr<qpe::plan::PlanNode>> plans;
  const int instances_per_template = 4;
  for (int i = 0; i < instances_per_template; ++i) {
    for (int t = 0; t < tpch.NumTemplates(); ++t) {
      plans.push_back(
          std::move(planner.PlanQuery(tpch.Instantiate(t, &rng)).root));
    }
  }
  std::vector<const qpe::plan::PlanNode*> ptrs;
  ptrs.reserve(plans.size());
  for (const auto& p : plans) ptrs.push_back(p.get());
  const int n = static_cast<int>(ptrs.size());

  qpe::nn::NoGradGuard no_grad;

  // --- 1. Per-plan encode (the pre-batching baseline) -----------------------
  double per_plan_secs = 1e30;
  for (int rep = 0; rep <= g_encode_reps; ++rep) {
    const double start = CpuSeconds();
    for (const auto* p : ptrs) {
      qpe::nn::Tensor e = encoder.Encode(*p, nullptr);
      (void)e;
    }
    if (rep > 0) {  // rep 0 is warmup
      per_plan_secs = std::min(per_plan_secs, CpuSeconds() - start);
    }
  }
  const double per_plan_rate = n / per_plan_secs;

  // --- 2a. Raw EncodeBatch, no dedup (pure batching/kernel win) -------------
  double raw_batched_secs = 1e30;
  for (int rep = 0; rep <= g_encode_reps; ++rep) {
    const double start = CpuSeconds();
    for (int begin = 0; begin < n; begin += kBatchSize) {
      const int count = std::min(kBatchSize, n - begin);
      std::vector<qpe::nn::Tensor> out = encoder.EncodeBatch(
          std::span<const qpe::plan::PlanNode* const>(ptrs.data() + begin,
                                                      count),
          nullptr);
      (void)out;
    }
    if (rep > 0) {
      raw_batched_secs = std::min(raw_batched_secs, CpuSeconds() - start);
    }
  }
  const double raw_batched_rate = n / raw_batched_secs;
  const double raw_batch_speedup = raw_batched_rate / per_plan_rate;

  // --- 2b. Batched serving path, cache disabled -----------------------------
  // The whole workload is one request: the service fingerprints all 88
  // plans, encodes each distinct structure once in micro-batches of
  // kBatchSize, and fans results out to the repeats. No state survives
  // between requests (enable_cache = false), so this is the batched-uncached
  // number.
  qpe::serve::EmbeddingServiceConfig uncached_config;
  uncached_config.batch_size = kBatchSize;
  uncached_config.enable_cache = false;
  qpe::serve::EmbeddingService uncached(&encoder, uncached_config);
  double batched_secs = 1e30;
  for (int rep = 0; rep <= g_encode_reps; ++rep) {
    const double start = CpuSeconds();
    (void)uncached.EncodeAll(ptrs);
    if (rep > 0) batched_secs = std::min(batched_secs, CpuSeconds() - start);
  }
  const double batched_rate = n / batched_secs;
  const double batch_speedup = batched_rate / per_plan_rate;
  // Distinct structures actually encoded per request (encoded_plans counts
  // every request including warmup, all identical).
  const int unique_plans = static_cast<int>(uncached.GetStats().encoded_plans /
                                            uncached.GetStats().requests);

  // --- 2c. Int8 quantized serving, cache disabled ---------------------------
  // Same request shape as 2b through the int8 engine: weights quantized
  // per-channel, activation scales calibrated on the template plans (the
  // first instantiation of each template — a held-out-style sample of the
  // workload's plan structures).
  std::vector<const qpe::plan::PlanNode*> calibration(
      ptrs.begin(), ptrs.begin() + tpch.NumTemplates());
  const std::unique_ptr<qpe::encoder::QuantizedPlanEncoder> quantized =
      encoder.Quantize(calibration);
  qpe::serve::EmbeddingService quantized_service(quantized.get(),
                                                 uncached_config);
  double quantized_secs = 1e30;
  for (int rep = 0; rep <= g_encode_reps; ++rep) {
    const double start = CpuSeconds();
    (void)quantized_service.EncodeAll(ptrs);
    if (rep > 0) {
      quantized_secs = std::min(quantized_secs, CpuSeconds() - start);
    }
  }
  const double quantized_rate = n / quantized_secs;
  const double quantized_speedup = quantized_rate / batched_rate;

  // --- 3. Template replay through the warm cache ----------------------------
  qpe::serve::EmbeddingServiceConfig service_config;
  service_config.batch_size = kBatchSize;
  qpe::serve::EmbeddingService service(&encoder, service_config);
  // One request per replay pass over the unique template plans: the first
  // pass misses and fills the cache, the remaining passes hit.
  std::vector<const qpe::plan::PlanNode*> templates(
      ptrs.begin(), ptrs.begin() + tpch.NumTemplates());
  const double replay_start = CpuSeconds();
  for (int pass = 0; pass < g_replay_passes; ++pass) {
    (void)service.EncodeAll(templates);
  }
  const double replay_secs = CpuSeconds() - replay_start;
  const qpe::serve::ServiceStats stats = service.GetStats();
  const double hit_rate = stats.cache.HitRate();
  const double cached_rate =
      g_replay_passes * templates.size() / replay_secs;

  // --- 4. Daemon serving: closed-loop load over the Unix socket -------------
  // The full qpe_served path — wire protocol, admission control, WFQ, a
  // worker shard, the warm cache — driven by closed-loop clients for two
  // equal-weight tenants. Requests cycle over the template plans, so after
  // the first pass the daemon serves from cache and the measured latency is
  // the serving-stack overhead (framing + admission + queueing + IPC), not
  // encode time. Per-tenant completion counts give the fairness ratio: with
  // equal weights and equal offered load it should be ~1.0.
  qpe::serve::ServingDaemonConfig daemon_config;
  daemon_config.socket_path =
      "/tmp/qpe_bench_daemon_" + std::to_string(::getpid()) + ".sock";
  daemon_config.workers = 1;  // single-thread numbers, like everything above
  daemon_config.service.batch_size = kBatchSize;
  qpe::serve::ServingDaemon daemon(&encoder, daemon_config);
  double daemon_rate = 0, daemon_p50 = 0, daemon_p99 = 0, daemon_p999 = 0;
  double daemon_shed_fraction = 0, daemon_fairness = 0;
  uint64_t daemon_requests = 0;
  if (qpe::util::Status s = daemon.Start(); !s.ok()) {
    std::cerr << "daemon start failed: " << s.ToString() << "\n";
    return 1;
  }
  {
    std::vector<std::string> plan_texts;
    plan_texts.reserve(tpch.NumTemplates());
    for (int t = 0; t < tpch.NumTemplates(); ++t) {
      plan_texts.push_back(qpe::plan::SerializePlanNode(*ptrs[t]));
    }
    const auto window_end =
        std::chrono::steady_clock::now() +
        std::chrono::duration<double>(g_daemon_window_seconds);
    const char* tenants[] = {"alpha", "beta"};
    LoadResult per_tenant[2];
    std::mutex result_mu;
    std::vector<std::thread> clients;
    for (int tenant = 0; tenant < 2; ++tenant) {
      for (int c = 0; c < kDaemonClientsPerTenant; ++c) {
        clients.emplace_back([&, tenant, c] {
          auto client_or =
              qpe::serve::DaemonClient::Connect(daemon_config.socket_path);
          if (!client_or.ok()) return;
          LoadResult local;
          int cursor = c;  // stagger the template rotation across clients
          while (std::chrono::steady_clock::now() < window_end) {
            qpe::serve::EncodeRequest request;
            request.tenant = tenants[tenant];
            for (int i = 0; i < kDaemonPlansPerRequest; ++i) {
              request.plans.push_back(
                  plan_texts[cursor++ % plan_texts.size()]);
            }
            qpe::serve::ErrorResponse shed_error;
            const auto start = std::chrono::steady_clock::now();
            const auto response = client_or->Encode(request, &shed_error);
            const double ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            if (response.ok()) {
              local.latencies_ms.push_back(ms);
              ++local.completed;
            } else if (!shed_error.message.empty()) {
              ++local.shed;
            } else {
              break;  // transport error: connection gone
            }
          }
          std::lock_guard<std::mutex> lock(result_mu);
          LoadResult& merged = per_tenant[tenant];
          merged.completed += local.completed;
          merged.shed += local.shed;
          merged.latencies_ms.insert(merged.latencies_ms.end(),
                                     local.latencies_ms.begin(),
                                     local.latencies_ms.end());
        });
      }
    }
    for (std::thread& t : clients) t.join();
    daemon.Stop();
    std::remove(daemon_config.socket_path.c_str());

    std::vector<double> all_ms;
    uint64_t total_shed = 0;
    for (const LoadResult& r : per_tenant) {
      all_ms.insert(all_ms.end(), r.latencies_ms.begin(),
                    r.latencies_ms.end());
      daemon_requests += r.completed;
      total_shed += r.shed;
    }
    std::sort(all_ms.begin(), all_ms.end());
    daemon_p50 = PercentileMs(&all_ms, 0.50);
    daemon_p99 = PercentileMs(&all_ms, 0.99);
    daemon_p999 = PercentileMs(&all_ms, 0.999);
    daemon_rate = static_cast<double>(daemon_requests) *
                  kDaemonPlansPerRequest / g_daemon_window_seconds;
    daemon_shed_fraction =
        daemon_requests + total_shed == 0
            ? 0
            : static_cast<double>(total_shed) /
                  static_cast<double>(daemon_requests + total_shed);
    const double lo = static_cast<double>(
        std::min(per_tenant[0].completed, per_tenant[1].completed));
    const double hi = static_cast<double>(
        std::max(per_tenant[0].completed, per_tenant[1].completed));
    daemon_fairness = hi == 0 ? 0 : lo / hi;
  }

  // --- 5. Drift-sentinel observation overhead -------------------------------
  // Same template load through a drift-enabled daemon (baseline sketches
  // built over the very plans being served, so the sentinel stays quiet and
  // we measure the steady-state cost: fingerprint + sketch updates per
  // plan). The gate metric is that cost as a fraction of the section-4
  // request p99 — the sentinel must be invisible next to one socket round
  // trip, not just cheap in absolute terms.
  double drift_observe_us = 0, drift_overhead_pct = 0;
  {
    std::vector<std::string> plan_texts;
    plan_texts.reserve(tpch.NumTemplates());
    for (int t = 0; t < tpch.NumTemplates(); ++t) {
      plan_texts.push_back(qpe::plan::SerializePlanNode(*ptrs[t]));
    }
    qpe::serve::ServingDaemonConfig drift_config;
    drift_config.socket_path =
        "/tmp/qpe_bench_drift_" + std::to_string(::getpid()) + ".sock";
    drift_config.workers = 1;
    drift_config.service.batch_size = kBatchSize;
    drift_config.enable_drift = true;
    drift_config.drift_corpus = plan_texts;
    qpe::serve::ServingDaemon drift_daemon(&encoder, drift_config);
    if (qpe::util::Status s = drift_daemon.Start(); !s.ok()) {
      std::cerr << "drift daemon start failed: " << s.ToString() << "\n";
      return 1;
    }
    auto client_or =
        qpe::serve::DaemonClient::Connect(drift_config.socket_path);
    if (client_or.ok()) {
      int cursor = 0;
      for (int r = 0; r < 64; ++r) {  // ~512 observed plans: stable average
        qpe::serve::EncodeRequest request;
        request.tenant = "default";
        for (int i = 0; i < kDaemonPlansPerRequest; ++i) {
          request.plans.push_back(plan_texts[cursor++ % plan_texts.size()]);
        }
        (void)client_or->Encode(request);
      }
    }
    drift_daemon.Stop();
    std::remove(drift_config.socket_path.c_str());
    drift_observe_us = drift_daemon.GetStats().drift_observe_us_per_plan;
    const double per_request_ms =
        drift_observe_us * kDaemonPlansPerRequest / 1000.0;
    drift_overhead_pct =
        daemon_p99 > 0 ? 100.0 * per_request_ms / daemon_p99 : 0;
  }

  const char* simd_level =
      qpe::nn::simd::LevelName(qpe::nn::simd::ActiveLevel());
  std::printf(
      "serving benchmark (1 thread, batch %d, %d plans, %d distinct, simd %s)\n",
      kBatchSize, n, unique_plans, simd_level);
  std::printf("  per-plan encode      : %8.1f plans/sec\n", per_plan_rate);
  std::printf("  raw EncodeBatch      : %8.1f plans/sec  (%.2fx, no dedup)\n",
              raw_batched_rate, raw_batch_speedup);
  std::printf("  batched serving      : %8.1f plans/sec  (%.2fx, cache off)\n",
              batched_rate, batch_speedup);
  std::printf("  int8 quantized       : %8.1f plans/sec  (%.2fx vs batched)\n",
              quantized_rate, quantized_speedup);
  std::printf("  warm-cache replay    : %8.1f plans/sec  (hit rate %.1f%%)\n",
              cached_rate, 100.0 * hit_rate);
  std::printf("  request latency      : p50 %.3f ms, p99 %.3f ms\n",
              stats.p50_ms, stats.p99_ms);
  std::printf(
      "  daemon (UDS, 2 tenants): %8.1f plans/sec, %llu requests, "
      "shed %.1f%%\n",
      daemon_rate, static_cast<unsigned long long>(daemon_requests),
      100.0 * daemon_shed_fraction);
  std::printf(
      "  daemon latency       : p50 %.3f ms, p99 %.3f ms, p99.9 %.3f ms, "
      "fairness %.2f\n",
      daemon_p50, daemon_p99, daemon_p999, daemon_fairness);
  std::printf(
      "  drift sentinel       : %.3f us/plan observed  (%.2f%% of daemon "
      "p99)\n",
      drift_observe_us, drift_overhead_pct);

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out.precision(6);
  out << "{\n"
      << "  \"build_type\": \"" << QPE_BUILD_TYPE << "\",\n"
      << "  \"simd_level\": \"" << simd_level << "\",\n"
      << "  \"threads\": 1,\n"
      << "  \"batch_size\": " << kBatchSize << ",\n"
      << "  \"num_plans\": " << n << ",\n"
      << "  \"unique_plans\": " << unique_plans << ",\n"
      << "  \"replay_passes\": " << g_replay_passes << ",\n"
      << "  \"per_plan_plans_per_sec\": " << per_plan_rate << ",\n"
      << "  \"raw_batched_plans_per_sec\": " << raw_batched_rate << ",\n"
      << "  \"raw_batch_speedup\": " << raw_batch_speedup << ",\n"
      << "  \"batched_plans_per_sec\": " << batched_rate << ",\n"
      << "  \"batch_speedup\": " << batch_speedup << ",\n"
      << "  \"quantized_plans_per_sec\": " << quantized_rate << ",\n"
      << "  \"quantized_speedup\": " << quantized_speedup << ",\n"
      << "  \"cached_plans_per_sec\": " << cached_rate << ",\n"
      << "  \"cache_hit_rate\": " << hit_rate << ",\n"
      << "  \"p50_ms\": " << stats.p50_ms << ",\n"
      << "  \"p99_ms\": " << stats.p99_ms << ",\n"
      << "  \"daemon_clients\": " << 2 * kDaemonClientsPerTenant << ",\n"
      << "  \"daemon_requests\": " << daemon_requests << ",\n"
      << "  \"daemon_plans_per_sec\": " << daemon_rate << ",\n"
      << "  \"daemon_shed_fraction\": " << daemon_shed_fraction << ",\n"
      << "  \"daemon_fairness_ratio\": " << daemon_fairness << ",\n"
      << "  \"daemon_p50_ms\": " << daemon_p50 << ",\n"
      << "  \"daemon_p99_ms\": " << daemon_p99 << ",\n"
      << "  \"daemon_p999_ms\": " << daemon_p999 << ",\n"
      << "  \"drift_observe_us_per_plan\": " << drift_observe_us << ",\n"
      << "  \"drift_overhead_pct\": " << drift_overhead_pct << "\n"
      << "}\n";
  std::cout << "\nWrote " << out_path << "\n";
  return 0;
}
