// Reproduces paper Figure 5: per-template latency statistics of spatial
// queries (median > 500 ms) from the Jackpine (Q*) and OSM (OSM*)
// benchmarks across database configurations — median (the paper's blue
// bar) plus 5th/95th percentile (the orange variability line).

#include <iostream>
#include <map>

#include "bench_common.h"

int main(int argc, char** argv) {
  const int num_configs = qpe::bench::FlagInt(argc, argv, "--configs", 50);
  const double region_scale =
      qpe::bench::FlagDouble(argc, argv, "--region-scale", 0.25);
  const double threshold_ms =
      qpe::bench::FlagDouble(argc, argv, "--threshold-ms", 500);

  qpe::simdb::SpatialWorkload spatial(region_scale);
  std::cout << "Figure 5: spatial query latency variability over "
            << num_configs << " configurations (region scale " << region_scale
            << ", showing templates with median > " << threshold_ms
            << " ms)\n\n";

  const auto executed =
      qpe::bench::RunBenchmark(spatial, num_configs, /*instances=*/1, 77);

  std::map<int, std::vector<double>> latencies;
  for (const auto& record : executed) {
    latencies[record.template_index].push_back(record.latency_ms);
  }

  qpe::util::TablePrinter table(
      {"template", "median ms", "5th pct ms", "95th pct ms", "p95/p5"});
  int shown = 0;
  for (const auto& [t, values] : latencies) {
    const double median = qpe::util::Median(values);
    if (median <= threshold_ms) continue;
    const double p5 = qpe::util::Percentile(values, 5);
    const double p95 = qpe::util::Percentile(values, 95);
    table.AddRow({spatial.TemplateName(t),
                  qpe::util::TablePrinter::Num(median, 0),
                  qpe::util::TablePrinter::Num(p5, 0),
                  qpe::util::TablePrinter::Num(p95, 0),
                  qpe::util::TablePrinter::Num(p95 / std::max(1e-9, p5), 2)});
    ++shown;
  }
  table.Print(std::cout);
  std::cout << "\n" << shown << " of " << latencies.size()
            << " templates exceed the median threshold. Expected shape "
               "(paper): heavy-tailed medians spanning ~3 orders of "
               "magnitude with wide per-template variability bars.\n";
  return 0;
}
