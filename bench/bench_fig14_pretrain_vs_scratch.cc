// Reproduces paper Figure 14: test MAE of pretrained vs scratch performance
// encoders when finetuned with only 0.3 of the target training data, per
// operator, on (a) TPC-DS SF-8 and (b) the Spatial benchmark. Shape to
// match: the pretrained model beats scratch by a considerable margin for
// every operator on both workloads.

#include <iostream>

#include "bench_common.h"
#include "nn/serialize.h"

int main(int argc, char** argv) {
  const int pretrain_configs = qpe::bench::FlagInt(argc, argv, "--pretrain-configs", 8);
  const int finetune_configs = qpe::bench::FlagInt(argc, argv, "--finetune-configs", 14);
  const int pretrain_epochs = qpe::bench::FlagInt(argc, argv, "--pretrain-epochs", 30);
  const int finetune_epochs = qpe::bench::FlagInt(argc, argv, "--finetune-epochs", 35);
  const double fraction = qpe::bench::FlagDouble(argc, argv, "--fraction", 0.3);

  std::cout << "Figure 14: pretrained vs scratch at " << fraction
            << " of finetuning data\n\n";

  const auto pretrain_data = qpe::bench::BuildPerfPretrainData(
      {0.2, 0.5, 1.0}, pretrain_configs, 717);
  std::vector<std::unique_ptr<qpe::encoder::PerformanceEncoder>> pretrained;
  qpe::util::Rng rng(14);
  for (int g = 0; g < 4; ++g) {
    pretrained.push_back(std::make_unique<qpe::encoder::PerformanceEncoder>(
        qpe::encoder::PerfEncoderConfig{}, &rng));
    qpe::encoder::PerfTrainOptions options;
    options.epochs = pretrain_epochs;
    options.seed = 500 + g;
    qpe::encoder::TrainPerformanceEncoder(pretrained.back().get(),
                                          pretrain_data[g], options);
  }

  qpe::simdb::TpcdsWorkload tpcds(0.8);
  qpe::simdb::SpatialWorkload spatial(0.1);
  struct Target {
    const char* name;
    const qpe::simdb::BenchmarkWorkload* workload;
    uint64_t seed;
  };
  for (const Target& target :
       {Target{"TPC-DS SF-8 analogue", &tpcds, 818},
        Target{"Spatial benchmark", &spatial, 919}}) {
    const auto finetune_data = qpe::bench::BuildPerfFinetuneData(
        *target.workload,
        // Spatial templates are fewer; use more configurations for a
        // comparable sample count.
        target.workload->NumTemplates() < 30 ? finetune_configs * 2
                                             : finetune_configs,
        target.seed);
    std::cout << "--- " << target.name << " ---\n";
    qpe::util::TablePrinter table(
        {"operator", "pretrained test MAE ms", "scratch test MAE ms",
         "improvement"});
    for (int g = 0; g < 4; ++g) {
      const auto subset = qpe::bench::FractionOf(finetune_data[g], fraction);
      qpe::encoder::PerfTrainOptions options;
      options.epochs = finetune_epochs;
      options.lr = 1e-3f;  // gentler than pretraining: big domain shifts
      options.seed = 600 + g;

      qpe::encoder::PerformanceEncoder finetuned({}, &rng);
      qpe::nn::CopyParameters(*pretrained[g], &finetuned);
      const auto ft =
          qpe::encoder::TrainPerformanceEncoder(&finetuned, subset, options);
      qpe::encoder::PerformanceEncoder scratch({}, &rng);
      const auto sc =
          qpe::encoder::TrainPerformanceEncoder(&scratch, subset, options);

      const double ft_mae = ft.empty() ? 0 : ft.back().test_mae_ms;
      const double sc_mae = sc.empty() ? 0 : sc.back().test_mae_ms;
      table.AddRow(
          {qpe::plan::GroupName(static_cast<qpe::plan::OperatorGroup>(g)),
           qpe::util::TablePrinter::Num(ft_mae, 2),
           qpe::util::TablePrinter::Num(sc_mae, 2),
           qpe::util::TablePrinter::Num(
               sc_mae > 0 ? 100.0 * (sc_mae - ft_mae) / sc_mae : 0, 1) + "%"});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Paper shape: pretrained beats scratch by a considerable "
               "margin in all cases.\n";
  return 0;
}
