// Reproduces paper Figure 9: average latency-prediction MAE over several
// TPC-DS test batches as a function of the *structure* embedding size, with
// the performance embedding size fixed. Shape to match: a U-ish curve —
// mid-sized structure embeddings help a little, tiny or oversized ones
// hurt; performance features dominate overall.

#include <iostream>
#include <memory>

#include "bench_common.h"
#include "data/datasets.h"
#include "encoder/ppsr.h"
#include "tasks/latency_model.h"

int main(int argc, char** argv) {
  const double scale_factor = qpe::bench::FlagDouble(argc, argv, "--sf", 0.5);
  const int num_configs = qpe::bench::FlagInt(argc, argv, "--configs", 16);
  const int num_batches = qpe::bench::FlagInt(argc, argv, "--test-batches", 5);
  const int ppsr_pairs = qpe::bench::FlagInt(argc, argv, "--ppsr-pairs", 300);

  // Paper sweeps 32..256 with perf dim 300; we sweep scaled-down sizes with
  // perf dim 32.
  const std::vector<int> kSizes = {8, 16, 24, 32, 48, 64};

  qpe::simdb::TpcdsWorkload tpcds(scale_factor);
  std::cout << "Figure 9: latency MAE vs structure embedding size (TPC-DS SF "
            << scale_factor << ", " << num_batches << " test batches)\n\n";

  const auto all = qpe::bench::RunBenchmark(tpcds, num_configs, 1, 909);
  std::vector<qpe::simdb::ExecutedQuery> train, rest;
  qpe::bench::SplitRecords(all, /*test_every=*/3, &rest, &train);
  // Carve `num_batches` test batches out of the held-out records.
  std::vector<std::vector<qpe::simdb::ExecutedQuery>> batches(num_batches);
  for (size_t i = 0; i < rest.size(); ++i) {
    batches[i % num_batches].push_back(rest[i].Clone());
  }

  // Shared performance encoders (fixed size, as in the paper).
  auto perf = qpe::bench::PretrainPerfEncoders(train, tpcds.GetCatalog(),
                                               /*epochs=*/25, 77);

  // One PPSR-pretrained structure encoder per sweep size.
  qpe::data::PairDatasetOptions pair_options;
  pair_options.num_pairs = ppsr_pairs;
  pair_options.corpus.max_nodes = 40;
  const qpe::data::PlanPairDataset pairs =
      qpe::data::BuildCorpusPairDataset(pair_options);

  qpe::util::TablePrinter table({"structure dim", "avg test MAE (ms)"});
  for (int size : kSizes) {
    qpe::util::Rng rng(1000 + size);
    qpe::encoder::StructureEncoderConfig s_config;
    s_config.output_dim = size;
    s_config.dropout = 0.0f;
    auto structure = std::make_unique<qpe::encoder::TransformerPlanEncoder>(
        s_config, &rng);
    {
      qpe::encoder::PpsrModel ppsr(std::move(structure), &rng);
      qpe::encoder::PpsrTrainOptions ppsr_options;
      ppsr_options.epochs = 2;
      qpe::encoder::TrainPpsr(&ppsr, pairs.train, ppsr_options);
      // Reuse the pretrained encoder inside the featurizer.
      qpe::tasks::EmbeddingFeaturizer::Config f_config;
      f_config.structure = ppsr.encoder();
      f_config.catalog = &tpcds.GetCatalog();
      perf.FillFeaturizerConfig(&f_config);
      qpe::tasks::EmbeddingFeaturizer featurizer(f_config);

      qpe::tasks::LatencyPredictor predictor(&featurizer, 96, &rng);
      qpe::tasks::LatencyPredictor::TrainOptions options;
      options.epochs = 60;
      predictor.Train(train, options);

      double total = 0;
      for (const auto& batch : batches) {
        total += predictor.EvaluateMaeMs(batch);
      }
      table.AddRow({std::to_string(size),
                    qpe::util::TablePrinter::Num(total / num_batches, 1)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nPaper shape: sizes 128/160 (of 32..256, perf dim 300) "
               "performed best; structure features matter far less than "
               "performance features for latency.\n";
  return 0;
}
