// qpe_client: command-line client for qpe_served.
//
// Generates random query plans (or reads serialized plan s-expressions from
// a file, one per line), sends them to the daemon in ENCODE requests, and
// prints per-request outcomes — including typed shed errors with their
// retry-after hints, so backpressure is visible from the shell.
//
//   ./build/examples/qpe_client --socket=/tmp/qpe.sock --plans=32
//   ./build/examples/qpe_client --socket=/tmp/qpe.sock --stats
//   ./build/examples/qpe_client --socket=/tmp/qpe.sock --ping
//
// Flags:
//   --socket=PATH       daemon socket (default /tmp/qpe_served.sock)
//   --tenant=NAME       tenant to bill the requests to (default "default")
//   --plans=N           random plans to encode (default 8)
//   --per-request=N     plans per ENCODE request (default 8)
//   --requests=N        number of requests; 0 = derive from --plans (default 0)
//   --deadline-ms=N     per-request deadline (default: none)
//   --seed=N            plan-generator seed (default 1)
//   --min-nodes=N       plan-generator minimum plan size (default 4)
//   --max-nodes=N       plan-generator maximum plan size (default 24);
//                       raising this past the daemon's drift-corpus size
//                       produces structurally novel plans (the chaos
//                       drill's drifted stream)
//   --plan-file=PATH    read plans from a file instead (one s-expr per line)
//   --retries=N         retry shed/transport failures up to N times, honoring
//                       the daemon's retry-after hints with capped
//                       exponential backoff + deterministic jitter (default 0)
//   --max-backoff-ms=N  backoff cap for --retries (default 2000)
//   --stats             fetch and print the daemon's stats JSON, then exit
//   --ping              health-check the daemon, then exit

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "data/plan_corpus.h"
#include "plan/serialize.h"
#include "serve/client.h"
#include "util/rng.h"

namespace {

bool FlagValue(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = "/tmp/qpe_served.sock";
  std::string tenant = "default";
  std::string plan_file;
  int total_plans = 8;
  int per_request = 8;
  int requests = 0;
  uint32_t deadline_ms = qpe::serve::kNoDeadline;
  uint64_t seed = 1;
  int min_nodes = 4;
  int max_nodes = 24;
  int retries = 0;
  uint32_t max_backoff_ms = 2000;
  bool stats_only = false;
  bool ping_only = false;

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (FlagValue(argv[i], "--socket", &v)) {
      socket_path = v;
    } else if (FlagValue(argv[i], "--tenant", &v)) {
      tenant = v;
    } else if (FlagValue(argv[i], "--plans", &v)) {
      total_plans = std::atoi(v.c_str());
    } else if (FlagValue(argv[i], "--per-request", &v)) {
      per_request = std::atoi(v.c_str());
    } else if (FlagValue(argv[i], "--requests", &v)) {
      requests = std::atoi(v.c_str());
    } else if (FlagValue(argv[i], "--deadline-ms", &v)) {
      deadline_ms = static_cast<uint32_t>(std::atoll(v.c_str()));
    } else if (FlagValue(argv[i], "--seed", &v)) {
      seed = static_cast<uint64_t>(std::atoll(v.c_str()));
    } else if (FlagValue(argv[i], "--min-nodes", &v)) {
      min_nodes = std::atoi(v.c_str());
    } else if (FlagValue(argv[i], "--max-nodes", &v)) {
      max_nodes = std::atoi(v.c_str());
    } else if (FlagValue(argv[i], "--plan-file", &v)) {
      plan_file = v;
    } else if (FlagValue(argv[i], "--retries", &v)) {
      retries = std::atoi(v.c_str());
    } else if (FlagValue(argv[i], "--max-backoff-ms", &v)) {
      max_backoff_ms = static_cast<uint32_t>(std::atoll(v.c_str()));
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      stats_only = true;
    } else if (std::strcmp(argv[i], "--ping") == 0) {
      ping_only = true;
    } else {
      std::fprintf(stderr, "qpe_client: unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }

  auto client_or = qpe::serve::DaemonClient::Connect(socket_path);
  if (!client_or.ok()) {
    std::fprintf(stderr, "qpe_client: connect to %s failed: %s\n",
                 socket_path.c_str(), client_or.status().ToString().c_str());
    return 1;
  }
  qpe::serve::DaemonClient client = std::move(*client_or);

  if (ping_only) {
    if (qpe::util::Status s = client.Ping(); !s.ok()) {
      std::fprintf(stderr, "qpe_client: ping failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    std::printf("PONG\n");
    return 0;
  }
  if (stats_only) {
    auto json = client.StatsJson();
    if (!json.ok()) {
      std::fprintf(stderr, "qpe_client: stats failed: %s\n",
                   json.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", json->c_str());
    return 0;
  }

  // Build the plan set: either from a file of serialized s-expressions or
  // from the same random-plan generator the tests and benchmarks use.
  std::vector<std::string> plans;
  if (!plan_file.empty()) {
    std::ifstream is(plan_file);
    if (!is) {
      std::fprintf(stderr, "qpe_client: cannot open '%s'\n", plan_file.c_str());
      return 1;
    }
    std::string line;
    while (std::getline(is, line)) {
      if (!line.empty()) plans.push_back(line);
    }
  } else {
    qpe::data::CorpusOptions options;
    options.min_nodes = min_nodes;
    options.max_nodes = max_nodes;
    qpe::data::RandomPlanGenerator generator(qpe::util::Rng(seed), options);
    plans.reserve(total_plans);
    for (int i = 0; i < total_plans; ++i) {
      plans.push_back(qpe::plan::SerializePlanNode(*generator.Generate()));
    }
  }
  if (plans.empty()) {
    std::fprintf(stderr, "qpe_client: no plans to send\n");
    return 1;
  }
  if (per_request <= 0) per_request = 1;
  if (requests <= 0) {
    requests = static_cast<int>((plans.size() + per_request - 1) / per_request);
  }

  int ok_count = 0, shed_count = 0, failed = 0;
  for (int r = 0; r < requests; ++r) {
    qpe::serve::EncodeRequest request;
    request.tenant = tenant;
    request.deadline_ms = deadline_ms;
    for (int i = 0; i < per_request; ++i) {
      request.plans.push_back(plans[(r * per_request + i) % plans.size()]);
    }
    qpe::serve::ErrorResponse error;
    qpe::serve::RetryStats retry_stats;
    qpe::serve::RetryPolicy policy;
    policy.max_retries = retries;
    policy.max_backoff_ms = max_backoff_ms;
    policy.jitter_seed = seed + static_cast<uint64_t>(r);
    auto response =
        retries > 0 ? client.EncodeWithRetry(request, policy, &error,
                                             &retry_stats)
                    : client.Encode(request, &error);
    if (response.ok()) {
      ++ok_count;
      std::printf("request %d: OK — %zu embedding(s) of dim %u", r,
                  response->embeddings.size(), response->dim);
      if (retry_stats.attempts > 1) {
        std::printf(" (after %d attempt(s), %d reconnect(s))",
                    retry_stats.attempts, retry_stats.reconnects);
      }
      if (response->stale) {
        std::printf(" [STALE: drift state %u, score %.3f]",
                    response->drift_state, response->drift_score);
      }
      std::printf("\n");
    } else if (error.message.empty()) {
      ++failed;
      std::fprintf(stderr, "request %d: transport error: %s\n", r,
                   response.status().ToString().c_str());
      return 1;  // connection is gone; no point continuing
    } else {
      ++shed_count;
      if (error.retry_after_ms == qpe::serve::kRetryNever) {
        std::printf("request %d: %s (retry: never) — %s\n", r,
                    qpe::serve::WireErrorName(error.code),
                    error.message.c_str());
      } else {
        std::printf("request %d: %s (retry after %u ms) — %s\n", r,
                    qpe::serve::WireErrorName(error.code), error.retry_after_ms,
                    error.message.c_str());
      }
    }
  }
  std::printf("done: %d ok, %d shed, %d failed\n", ok_count, shed_count,
              failed);
  return failed == 0 ? 0 : 1;
}
