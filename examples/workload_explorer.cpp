// Workload characterization motivation demo (paper §1): the same query
// responds very differently to configuration knobs than another query.
// Runs a handful of TPC-H templates under LHS-sampled configurations and
// prints per-template latency statistics — the per-query "knob response"
// that makes workload characterization necessary.

#include <cstring>
#include <iostream>
#include <map>
#include <vector>

#include "config/lhs_sampler.h"
#include "simdb/workload_runner.h"
#include "simdb/workloads.h"
#include "util/stats.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

// Usage: workload_explorer [--threads=N] [scale_factor] [num_configs]
int main(int argc, char** argv) {
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      qpe::util::SetMaxThreads(std::atoi(argv[i] + 10));
    } else {
      positional.push_back(argv[i]);
    }
  }
  const double scale_factor =
      positional.size() > 0 ? std::atof(positional[0]) : 0.1;
  const int num_configs = positional.size() > 1 ? std::atoi(positional[1]) : 24;

  qpe::simdb::TpchWorkload tpch(scale_factor);
  qpe::config::LhsSampler sampler((qpe::util::Rng(11)));
  const std::vector<qpe::config::DbConfig> configs = sampler.Sample(num_configs);

  std::cout << "TPC-H (SF " << scale_factor << ") on " << num_configs
            << " LHS-sampled configurations, " << qpe::util::MaxThreads()
            << " thread(s)\n\n";

  qpe::simdb::RunOptions options;
  const auto executed = qpe::simdb::RunWorkload(tpch, configs, options);

  std::map<int, std::vector<double>> latencies;
  for (const auto& record : executed) {
    latencies[record.template_index].push_back(record.latency_ms);
  }

  qpe::util::TablePrinter table({"template", "median ms", "p5 ms", "p95 ms",
                                 "variability (p95-p5)", "p95/p5"});
  for (const auto& [t, values] : latencies) {
    const double p5 = qpe::util::Percentile(values, 5);
    const double p95 = qpe::util::Percentile(values, 95);
    table.AddRow({tpch.TemplateName(t), qpe::util::TablePrinter::Num(
                                            qpe::util::Median(values), 1),
                  qpe::util::TablePrinter::Num(p5, 1),
                  qpe::util::TablePrinter::Num(p95, 1),
                  qpe::util::TablePrinter::Num(p95 - p5, 1),
                  qpe::util::TablePrinter::Num(p95 / std::max(1e-9, p5), 2)});
  }
  table.Print(std::cout);
  std::cout << "\nQueries with a large p95/p5 ratio are the ones whose "
               "latency depends heavily on the knob settings — TPC-H Q18 vs "
               "Q7 in the paper's introduction.\n";
  return 0;
}
