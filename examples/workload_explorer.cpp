// Workload characterization motivation demo (paper §1): the same query
// responds very differently to configuration knobs than another query.
// Runs a handful of TPC-H templates under LHS-sampled configurations and
// prints per-template latency statistics — the per-query "knob response"
// that makes workload characterization necessary.
//
// With --checkpoint-dir=DIR the run is fault-tolerant end to end: the
// executed-query dataset is persisted to DIR/executed.qpe and a Scan-group
// performance encoder is trained with crash-safe checkpoints in
// DIR/scan_encoder.ckpt. A killed run restarted with --resume skips the
// completed workload execution and continues training from the last
// checkpoint, finishing with bit-identical weights (the printed model
// fingerprint) to an uninterrupted run.

#include <sys/stat.h>

#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "config/lhs_sampler.h"
#include "data/dataset_io.h"
#include "data/datasets.h"
#include "data/features.h"
#include "data/plan_corpus.h"
#include "encoder/encoder_suite.h"
#include "encoder/performance_encoder.h"
#include "encoder/quantized_encoder.h"
#include "nn/arena.h"
#include "plan/explain.h"
#include "serve/embedding_service.h"
#include "simdb/workload_runner.h"
#include "simdb/workloads.h"
#include "util/checksum.h"
#include "util/stats.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace {

// CRC32 over every parameter buffer: two runs produced the same weights iff
// the fingerprints match, which is what the crash-resume smoke compares.
uint32_t ModelFingerprint(const qpe::nn::Module& model) {
  uint32_t crc = 0;
  for (const auto& [name, tensor] : model.NamedParameters()) {
    crc = qpe::util::Crc32(tensor.value().data(),
                           tensor.value().size() * sizeof(float), crc);
  }
  return crc;
}

// Prints the tensor-arena telemetry at scope exit, so every return path in
// main() reports it when --mem-stats is set.
struct MemStatsReport {
  bool enabled = false;
  ~MemStatsReport() {
    if (!enabled) return;
    const qpe::nn::MemoryStats stats = qpe::nn::GlobalMemoryStats();
    std::cout << "\nMemory stats (tensor arena):\n"
              << "  bytes requested:  " << stats.bytes_requested << "\n"
              << "  arena hits:       " << stats.arena_hits << "\n"
              << "  arena misses:     " << stats.arena_misses << "\n"
              << "  recycled buffers: " << stats.recycled_buffers << "\n"
              << "  released buffers: " << stats.released_buffers << "\n"
              << "  graph epochs:     " << stats.epochs << "\n"
              << "  peak arena bytes: " << stats.peak_arena_bytes << "\n"
              << "  peak RSS bytes:   " << qpe::nn::PeakRssBytes() << "\n";
  }
};

void PrintEmbedding(const char* label, const qpe::nn::Tensor& embedding) {
  std::cout << "  " << label << " [" << embedding.cols() << "-d]:";
  const int show = std::min(8, embedding.cols());
  for (int c = 0; c < show; ++c) {
    std::cout << (c == 0 ? " " : ", ")
              << qpe::util::TablePrinter::Num(embedding.at(0, c), 4);
  }
  if (show < embedding.cols()) std::cout << ", ...";
  std::cout << "\n";
}

// --ingest mode: parse a foreign EXPLAIN text file, report every repaired
// defect, and emit the structural + per-group performance embeddings an
// (untrained) encoder suite produces for it — the end-to-end path a
// crowdsourced plan would take into the characterization pipeline.
int RunIngest(const std::string& path, bool strict, bool quantized) {
  const auto policy = strict ? qpe::plan::IngestionPolicy::kStrict
                             : qpe::plan::IngestionPolicy::kLenient;
  auto ingested = qpe::data::IngestExplainFile(path, policy);
  if (!ingested.ok()) {
    std::cerr << "ingestion rejected: " << ingested.status().ToString() << "\n";
    return 1;
  }
  const qpe::plan::PlanNode& root = *ingested->plan.root;
  std::cout << "Ingested " << path << " under the "
            << (strict ? "strict" : "lenient") << " policy\n"
            << ingested->stats.ToString() << "\n";
  if (!ingested->warnings.empty()) {
    std::cout << "repairs (" << ingested->warnings.total() << " warning(s)):\n"
              << ingested->warnings.ToString();
  }
  std::cout << "\nSanitized plan (" << root.NumNodes() << " nodes, depth "
            << root.Depth() << "):\n"
            << qpe::plan::Explain(root) << "\n";

  qpe::encoder::EncoderSuite suite;
  // With --quantized, the structural serving path runs through the int8
  // quantized twin of the structure encoder: weights quantized per output
  // channel, activation scales calibrated on a small random plan sample
  // (production would calibrate on held-out workload plans).
  std::unique_ptr<qpe::encoder::QuantizedPlanEncoder> quantized_encoder;
  if (quantized) {
    qpe::data::CorpusOptions corpus;
    corpus.min_nodes = 4;
    corpus.max_nodes = 48;
    qpe::data::RandomPlanGenerator generator(qpe::util::Rng(2021), corpus);
    std::vector<std::unique_ptr<qpe::plan::PlanNode>> sample;
    std::vector<const qpe::plan::PlanNode*> calibration;
    for (int i = 0; i < 32; ++i) {
      sample.push_back(generator.Generate());
      calibration.push_back(sample.back().get());
    }
    calibration.push_back(&root);
    quantized_encoder = suite.structure()->Quantize(calibration);
  }
  // The ingested plan takes the same serving path production traffic does:
  // fingerprint, cache probe, batched encode on a miss.
  qpe::serve::EmbeddingService service(
      quantized ? static_cast<const qpe::encoder::PlanSequenceEncoder*>(
                      quantized_encoder.get())
                : suite.structure());
  PrintEmbedding(quantized ? "structural embedding (int8)"
                           : "structural embedding",
                 service.EncodeOne(root));
  // A replay of the same plan must be served from the warm cache.
  (void)service.EncodeOne(root);
  const qpe::serve::ServiceStats serving = service.GetStats();
  std::cout << "serving: " << serving.plans << " plan(s) over "
            << serving.requests << " request(s); cache " << serving.cache.hits
            << " hit(s), " << serving.cache.misses << " miss(es); simd "
            << serving.simd_level << "\n\n";

  // Per-group performance embeddings over the summed same-group node
  // features (§3.2.1); meta features come from the TPC-H catalog (foreign
  // relation names simply contribute nothing) and the default DbConfig.
  const qpe::simdb::TpchWorkload tpch(0.05);
  const qpe::config::DbConfig db_config;
  const std::vector<double> db = db_config.ToFeatures();
  const std::vector<double> meta =
      qpe::data::NodeMetaFeatures(root, tpch.GetCatalog());
  auto to_tensor = [](const std::vector<double>& values) {
    std::vector<float> row(values.begin(), values.end());
    return qpe::nn::Tensor::FromVector(1, static_cast<int>(row.size()), row);
  };
  for (const auto group :
       {qpe::plan::OperatorGroup::kScan, qpe::plan::OperatorGroup::kJoin,
        qpe::plan::OperatorGroup::kSort, qpe::plan::OperatorGroup::kAggregate}) {
    std::vector<std::vector<double>> rows;
    root.Visit([&](const qpe::plan::PlanNode& node) {
      if (qpe::plan::GroupOf(node.type()) == group) {
        rows.push_back(qpe::data::NodeFeatures(node));
      }
    });
    if (rows.empty()) continue;
    const qpe::nn::Tensor embedding =
        suite.performance(group)->Embed(to_tensor(qpe::data::SumFeatures(rows)),
                                        to_tensor(meta), to_tensor(db));
    const std::string label = std::string(qpe::plan::GroupName(group)) +
                              " performance embedding (" +
                              std::to_string(rows.size()) + " node(s))";
    PrintEmbedding(label.c_str(), embedding);
  }
  return 0;
}

}  // namespace

// Usage: workload_explorer [--threads=N] [--checkpoint-dir=DIR] [--resume]
//                          [--ingest=EXPLAIN.txt [--strict] [--quantized]]
//                          [--mem-stats] [scale_factor] [num_configs]
int main(int argc, char** argv) {
  std::vector<const char*> positional;
  std::string checkpoint_dir;
  std::string ingest_path;
  bool resume = false;
  bool strict = false;
  bool quantized = false;
  MemStatsReport mem_report;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      qpe::util::SetMaxThreads(std::atoi(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--checkpoint-dir=", 17) == 0) {
      checkpoint_dir = argv[i] + 17;
    } else if (std::strncmp(argv[i], "--ingest=", 9) == 0) {
      ingest_path = argv[i] + 9;
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else if (std::strcmp(argv[i], "--quantized") == 0) {
      quantized = true;
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
    } else if (std::strcmp(argv[i], "--mem-stats") == 0) {
      mem_report.enabled = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (!ingest_path.empty()) return RunIngest(ingest_path, strict, quantized);
  if (quantized) {
    std::cerr << "--quantized applies to the --ingest serving path\n";
    return 1;
  }
  if (resume && checkpoint_dir.empty()) {
    std::cerr << "--resume requires --checkpoint-dir=DIR\n";
    return 1;
  }
  const double scale_factor =
      positional.size() > 0 ? std::atof(positional[0]) : 0.1;
  const int num_configs = positional.size() > 1 ? std::atoi(positional[1]) : 24;

  qpe::simdb::TpchWorkload tpch(scale_factor);
  qpe::config::LhsSampler sampler((qpe::util::Rng(11)));
  const std::vector<qpe::config::DbConfig> configs = sampler.Sample(num_configs);

  std::cout << "TPC-H (SF " << scale_factor << ") on " << num_configs
            << " LHS-sampled configurations, " << qpe::util::MaxThreads()
            << " thread(s)\n\n";

  const std::string executed_path = checkpoint_dir + "/executed.qpe";
  std::vector<qpe::simdb::ExecutedQuery> executed;
  bool loaded = false;
  if (resume) {
    auto restored = qpe::data::LoadExecutedQueriesChecked(executed_path);
    if (restored.ok()) {
      executed = std::move(restored.value());
      loaded = true;
      std::cout << "Resumed " << executed.size() << " executed queries from "
                << executed_path << " (workload execution skipped)\n\n";
    } else if (restored.status().code() != qpe::util::StatusCode::kNotFound) {
      // A corrupt dataset is an error; a missing one just means the first
      // run died before the workload finished — re-execute it.
      std::cerr << "cannot resume: " << restored.status().ToString() << "\n";
      return 1;
    }
  }
  if (!loaded) {
    qpe::simdb::RunOptions options;
    executed = qpe::simdb::RunWorkload(tpch, configs, options);
    if (!checkpoint_dir.empty()) {
      ::mkdir(checkpoint_dir.c_str(), 0755);
      const qpe::util::Status saved =
          qpe::data::SaveExecutedQueriesStatus(executed, executed_path);
      if (!saved.ok()) {
        std::cerr << "cannot persist executed queries: " << saved.ToString()
                  << "\n";
        return 1;
      }
      std::cout << "Persisted " << executed.size() << " executed queries to "
                << executed_path << "\n\n";
    }
  }

  std::map<int, std::vector<double>> latencies;
  for (const auto& record : executed) {
    latencies[record.template_index].push_back(record.latency_ms);
  }

  qpe::util::TablePrinter table({"template", "median ms", "p5 ms", "p95 ms",
                                 "variability (p95-p5)", "p95/p5"});
  for (const auto& [t, values] : latencies) {
    const double p5 = qpe::util::Percentile(values, 5);
    const double p95 = qpe::util::Percentile(values, 95);
    table.AddRow({tpch.TemplateName(t), qpe::util::TablePrinter::Num(
                                            qpe::util::Median(values), 1),
                  qpe::util::TablePrinter::Num(p5, 1),
                  qpe::util::TablePrinter::Num(p95, 1),
                  qpe::util::TablePrinter::Num(p95 - p5, 1),
                  qpe::util::TablePrinter::Num(p95 / std::max(1e-9, p5), 2)});
  }
  table.Print(std::cout);
  std::cout << "\nQueries with a large p95/p5 ratio are the ones whose "
               "latency depends heavily on the knob settings — TPC-H Q18 vs "
               "Q7 in the paper's introduction.\n";

  if (checkpoint_dir.empty()) return 0;

  // --- Fault-tolerant encoder training over the executed workload ---------
  std::cout << "\nTraining a Scan-group performance encoder with crash-safe "
               "checkpoints in "
            << checkpoint_dir << "\n";
  auto samples = qpe::data::ExtractOperatorSamples(
      executed, tpch.GetCatalog(), qpe::plan::OperatorGroup::kScan);
  if (samples.size() < 30) {
    std::cout << "  only " << samples.size()
              << " Scan samples — skipping training (need >= 30)\n";
    return 0;
  }
  auto dataset = qpe::data::SplitOperatorSamples(std::move(samples), 100);
  qpe::util::Rng rng(9);
  qpe::encoder::PerfEncoderConfig perf_config;
  qpe::encoder::PerformanceEncoder model(perf_config, &rng);
  qpe::encoder::PerfTrainOptions options;
  options.epochs = 12;
  options.checkpoint.path = checkpoint_dir + "/scan_encoder.ckpt";
  options.checkpoint.interval_epochs = 1;
  options.checkpoint.resume = resume;
  qpe::util::Status io_status;
  options.io_status = &io_status;
  const auto history =
      qpe::encoder::TrainPerformanceEncoder(&model, dataset, options);
  if (!io_status.ok()) {
    std::cerr << "checkpoint error: " << io_status.ToString() << "\n";
    return 1;
  }
  if (resume) {
    std::cout << "  resumed training: ran " << history.size() << " of "
              << options.epochs << " epochs this process\n";
  }
  int skipped = 0;
  for (const auto& stats : history) skipped += stats.skipped_batches;
  if (!history.empty()) {
    std::cout << "  final val MAE " << history.back().val_mae_ms << " ms, "
              << skipped << " batch(es) skipped by the loss-spike guard\n";
  }
  std::cout << "  model fingerprint: " << ModelFingerprint(model) << "\n";
  return 0;
}
