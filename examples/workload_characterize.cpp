// Workload characterization end-to-end (the paper's titular goal): embed
// every Join Order Benchmark plan with a PPSR-pretrained structure encoder,
// cluster the embeddings with k-means, and measure how well the discovered
// clusters recover JOB's ground-truth 33 query clusters — characterizing
// the workload without ever sharing query text.

#include <algorithm>
#include <iostream>
#include <map>
#include <memory>
#include <vector>

#include "config/db_config.h"
#include "data/datasets.h"
#include "encoder/ppsr.h"
#include "encoder/structure_encoder.h"
#include "simdb/planner.h"
#include "simdb/workloads.h"
#include "tasks/workload_similarity.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  const int ppsr_pairs = argc > 1 ? std::atoi(argv[1]) : 400;

  // --- Pretrain the structure encoder -------------------------------------
  std::cout << "Pretraining the structure encoder (PPSR, " << ppsr_pairs
            << " pairs)...\n";
  qpe::data::PairDatasetOptions pair_options;
  pair_options.num_pairs = ppsr_pairs;
  pair_options.corpus.max_nodes = 40;
  const auto pairs = qpe::data::BuildCorpusPairDataset(pair_options);
  qpe::util::Rng rng(21);
  qpe::encoder::StructureEncoderConfig config;
  config.dropout = 0.0f;
  qpe::encoder::PpsrModel ppsr(
      std::make_unique<qpe::encoder::TransformerPlanEncoder>(config, &rng),
      &rng);
  qpe::encoder::PpsrTrainOptions train_options;
  train_options.epochs = 4;
  qpe::encoder::TrainPpsr(&ppsr, pairs.train, train_options);

  // --- Embed all 113 JOB plans --------------------------------------------
  qpe::simdb::JobWorkload job;
  qpe::config::DbConfig db_config;
  qpe::simdb::Planner planner(&job.GetCatalog(), &db_config);
  std::vector<std::vector<double>> embeddings;
  std::vector<int> truth;
  qpe::util::Rng query_rng(4);
  for (int t = 0; t < job.NumTemplates(); ++t) {
    const qpe::simdb::QuerySpec spec = job.Instantiate(t, &query_rng);
    const qpe::plan::Plan planned = planner.PlanQuery(spec);
    const qpe::nn::Tensor e = ppsr.encoder()->Encode(*planned.root, nullptr);
    std::vector<double> row(e.cols());
    for (int c = 0; c < e.cols(); ++c) row[c] = e.at(0, c);
    embeddings.push_back(std::move(row));
    truth.push_back(job.ClusterOf(t));
  }

  // --- Cluster and score against ground truth ------------------------------
  const auto assignment = qpe::tasks::KMeansCluster(
      embeddings, qpe::simdb::JobWorkload::kNumClusters, 50, 33);

  // Cluster purity: each discovered cluster votes for its majority true
  // cluster; purity = fraction of plans matching their cluster's majority.
  std::map<int, std::map<int, int>> votes;
  for (size_t i = 0; i < assignment.size(); ++i) {
    ++votes[assignment[i]][truth[i]];
  }
  int matched = 0;
  for (const auto& [cluster, counts] : votes) {
    int best = 0;
    for (const auto& [label, count] : counts) best = std::max(best, count);
    matched += best;
  }
  const double purity = static_cast<double>(matched) / assignment.size();

  // Random baseline purity for comparison.
  qpe::util::Rng base_rng(77);
  std::map<int, std::map<int, int>> base_votes;
  for (size_t i = 0; i < assignment.size(); ++i) {
    ++base_votes[static_cast<int>(base_rng.UniformInt(0, 32))][truth[i]];
  }
  int base_matched = 0;
  for (const auto& [cluster, counts] : base_votes) {
    int best = 0;
    for (const auto& [label, count] : counts) best = std::max(best, count);
    base_matched += best;
  }
  const double base_purity =
      static_cast<double>(base_matched) / assignment.size();

  std::cout << "\nClustered 113 JOB plans into 33 clusters by structure "
               "embedding.\n"
            << "Cluster purity vs ground truth: "
            << qpe::util::TablePrinter::Num(purity, 3)
            << "  (random assignment baseline: "
            << qpe::util::TablePrinter::Num(base_purity, 3) << ")\n\n";

  // Show a few discovered clusters.
  std::cout << "Sample discovered clusters (template -> true cluster):\n";
  int shown = 0;
  for (const auto& [cluster, counts] : votes) {
    if (shown++ >= 5) break;
    std::cout << "  cluster " << cluster << ": ";
    for (size_t i = 0; i < assignment.size(); ++i) {
      if (assignment[i] == cluster) {
        std::cout << job.TemplateName(static_cast<int>(i)) << " ";
      }
    }
    std::cout << "\n";
  }
  return 0;
}
