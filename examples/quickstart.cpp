// Quickstart: the core objects of the library in one tour —
//   1. build a query plan tree and linearize it (DFS-bracket),
//   2. compare two plans with Smatch,
//   3. plan + "execute" a TPC-H-style query under a configuration with the
//      simulated database substrate,
//   4. embed the plan with the (untrained) structure encoder.
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/quickstart

#include <iostream>
#include <memory>

#include "config/db_config.h"
#include "encoder/structure_encoder.h"
#include "plan/explain.h"
#include "plan/linearize.h"
#include "plan/plan_node.h"
#include "plan/serialize.h"
#include "simdb/executor.h"
#include "simdb/planner.h"
#include "simdb/workloads.h"
#include "smatch/smatch.h"
#include "util/rng.h"

int main() {
  using qpe::plan::OperatorType;
  using qpe::plan::PlanNode;

  // --- 1. Build and linearize a plan ------------------------------------
  auto root = std::make_unique<PlanNode>(OperatorType::Parse("Sort"));
  PlanNode* join = root->AddChild(OperatorType::Parse("Join-Hash"));
  join->AddChild(OperatorType::Parse("Scan-Seq"))->AddRelation("orders");
  join->AddChild(OperatorType::Parse("Scan-Index"))->AddRelation("lineitem");

  std::cout << "Plan (" << root->NumNodes() << " nodes), DFS-bracket:\n  "
            << qpe::plan::ToBracketString(qpe::plan::LinearizeDfsBracket(*root))
            << "\n\n";

  // --- 2. Smatch similarity ---------------------------------------------
  auto variant = root->Clone();
  variant->children()[0]->set_type(OperatorType::Parse("Join-Merge"));
  const qpe::smatch::SmatchScore score = qpe::smatch::Score(*root, *variant);
  std::cout << "Smatch(plan, variant) = " << score.f1 << "  (precision "
            << score.precision << ", recall " << score.recall << ")\n\n";

  // --- 3. Plan + execute a query on the simulated database ---------------
  qpe::simdb::TpchWorkload tpch(/*scale_factor=*/0.1);
  qpe::util::Rng rng(7);
  const qpe::simdb::QuerySpec q3 = tpch.Instantiate(2, &rng);  // TPC-H Q3
  qpe::config::DbConfig db_config;  // knob midpoints
  qpe::simdb::Planner planner(&tpch.GetCatalog(), &db_config);
  qpe::simdb::ExecutorSim executor(&tpch.GetCatalog(), &db_config);
  qpe::plan::Plan planned = planner.PlanQuery(q3);
  qpe::util::Rng noise(1);
  const double latency_ms =
      executor.Execute(&planned, q3.cardinality_seed, &noise);
  std::cout << "TPC-H Q3 under the default configuration ("
            << latency_ms << " ms), EXPLAIN ANALYZE:\n"
            << qpe::plan::Explain(*planned.root) << "\n";

  // Knobs change the plan and the latency: shrink work_mem drastically.
  qpe::config::DbConfig tiny_mem = db_config;
  tiny_mem.Set(qpe::config::Knob::kWorkMem, 65536);
  qpe::simdb::Planner tiny_planner(&tpch.GetCatalog(), &tiny_mem);
  qpe::simdb::ExecutorSim tiny_executor(&tpch.GetCatalog(), &tiny_mem);
  qpe::plan::Plan tiny_plan = tiny_planner.PlanQuery(q3);
  qpe::util::Rng noise2(1);
  std::cout << "Same query with work_mem=64KB: latency "
            << tiny_executor.Execute(&tiny_plan, q3.cardinality_seed, &noise2)
            << " ms\n\n";

  // --- 4. Structural embedding -------------------------------------------
  qpe::encoder::StructureEncoderConfig config;
  qpe::util::Rng model_rng(42);
  qpe::encoder::TransformerPlanEncoder encoder(config, &model_rng);
  const qpe::nn::Tensor embedding = encoder.Encode(*planned.root, nullptr);
  std::cout << "Structure embedding S(p): " << embedding.cols()
            << " dims, first 4 = [";
  for (int c = 0; c < 4; ++c) {
    std::cout << embedding.at(0, c) << (c < 3 ? ", " : "]\n");
  }
  std::cout << "\nSee examples/plan_similarity.cpp and "
               "examples/latency_prediction.cpp for trained encoders.\n";
  return 0;
}
