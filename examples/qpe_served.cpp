// qpe_served: the persistent multi-tenant embedding daemon.
//
// Serves plan embeddings over a Unix-domain socket with per-tenant quotas,
// weighted-fair scheduling, admission control under overload, and graceful
// drain on SIGTERM/SIGINT (in-flight work is flushed and the warm cache is
// persisted for the next start). See serve/daemon.h for the architecture
// and DESIGN.md ("Serving daemon") for the wire format.
//
// Quick start (two terminals):
//   ./build/examples/qpe_served --socket=/tmp/qpe.sock --warm-state=/tmp/qpe.warm
//   ./build/examples/qpe_client --socket=/tmp/qpe.sock --plans=32
//
// Flags:
//   --socket=PATH          socket path (default /tmp/qpe_served.sock)
//   --workers=N            encode worker shards (default 2)
//   --seed=N               weight-init seed; restarts must reuse it or the
//                          model fingerprint changes and warm restore is
//                          refused (default 42)
//   --small                small encoder (fast startup; tests/CI)
//   --cache-capacity=N     embedding cache entries (default 4096)
//   --batch-size=N         encode micro-batch size (default 16)
//   --warm-state=PATH      warm-restart snapshot file ("" disables)
//   --snapshot-every=N     also snapshot every N completed requests
//                          (default 32; 0 = only at drain)
//   --drain-deadline=SEC   bound on the drain phase (default 5)
//   --default-rate=R       default tenant quota, plans/sec (default: unlimited)
//   --default-burst=B      default tenant burst, plans (default: unlimited)
//   --default-queue=N      default per-tenant queue bound (default 64)
//   --tenant=NAME:RATE:BURST:WEIGHT[:QUEUE]   per-tenant override
//                          (repeatable; RATE=0 and BURST=0 is a zero-quota
//                          tenant — always shed, retry "never")
//
// Drift sentinel (see DESIGN.md "Drift detection & online adaptation"):
//   --drift                enable the streaming drift sentinel: baseline
//                          sketches are built over a generated corpus at
//                          startup, every served plan is folded into the
//                          sliding window, and v2 responses carry a
//                          stale flag + drift score once drift is declared
//   --drift-window=N       plans per detector window (default 64)
//   --drift-corpus-plans=N baseline corpus size (default 96)
//   --drift-corpus-seed=N  baseline corpus generator seed (default 7)
//   --adapt-dir=PATH       crash-safe self-healing state directory; enables
//                          incremental fine-tuning on DRIFTED ("" = detect
//                          only). A daemon killed mid-adaptation resumes
//                          the round from its checkpoint on the next start.
//   --adapt-epochs=N       fine-tune epochs per round (default 6)
//   --adapt-pairs=N        PPSR pairs built from the drifted slice (default 48)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "data/plan_corpus.h"
#include "encoder/structure_encoder.h"
#include "plan/serialize.h"
#include "serve/daemon.h"
#include "serve/warm_state.h"
#include "util/rng.h"

namespace {

bool FlagValue(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

// NAME:RATE:BURST:WEIGHT[:QUEUE]
bool ParseTenantSpec(const std::string& spec, std::string* name,
                     qpe::serve::TenantConfig* config) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t colon = spec.find(':', start);
    parts.push_back(spec.substr(start, colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  if (parts.size() < 4 || parts.size() > 5 || parts[0].empty()) return false;
  *name = parts[0];
  config->rate_plans_per_sec = std::atof(parts[1].c_str());
  config->burst_plans = std::atof(parts[2].c_str());
  config->weight = std::atof(parts[3].c_str());
  if (parts.size() == 5) {
    config->max_queued_requests =
        static_cast<size_t>(std::atoll(parts[4].c_str()));
  }
  return config->weight > 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = "/tmp/qpe_served.sock";
  uint64_t seed = 42;
  bool small = false;
  int drift_corpus_plans = 96;
  uint64_t drift_corpus_seed = 7;
  qpe::serve::ServingDaemonConfig config;
  config.install_signal_handlers = true;
  config.snapshot_every_requests = 32;

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (FlagValue(argv[i], "--socket", &v)) {
      socket_path = v;
    } else if (FlagValue(argv[i], "--workers", &v)) {
      config.workers = std::atoi(v.c_str());
    } else if (FlagValue(argv[i], "--seed", &v)) {
      seed = static_cast<uint64_t>(std::atoll(v.c_str()));
    } else if (std::strcmp(argv[i], "--small") == 0) {
      small = true;
    } else if (FlagValue(argv[i], "--cache-capacity", &v)) {
      config.service.cache.capacity = static_cast<size_t>(std::atoll(v.c_str()));
    } else if (FlagValue(argv[i], "--batch-size", &v)) {
      config.service.batch_size = std::atoi(v.c_str());
    } else if (FlagValue(argv[i], "--warm-state", &v)) {
      config.warm_state_path = v;
    } else if (FlagValue(argv[i], "--snapshot-every", &v)) {
      config.snapshot_every_requests =
          static_cast<uint64_t>(std::atoll(v.c_str()));
    } else if (FlagValue(argv[i], "--drain-deadline", &v)) {
      config.drain_deadline_seconds = std::atof(v.c_str());
    } else if (FlagValue(argv[i], "--default-rate", &v)) {
      config.admission.default_tenant.rate_plans_per_sec = std::atof(v.c_str());
    } else if (FlagValue(argv[i], "--default-burst", &v)) {
      config.admission.default_tenant.burst_plans = std::atof(v.c_str());
    } else if (FlagValue(argv[i], "--default-queue", &v)) {
      config.admission.default_tenant.max_queued_requests =
          static_cast<size_t>(std::atoll(v.c_str()));
    } else if (std::strcmp(argv[i], "--drift") == 0) {
      config.enable_drift = true;
    } else if (FlagValue(argv[i], "--drift-window", &v)) {
      config.drift_sentinel.detector.window_size = std::atoi(v.c_str());
    } else if (FlagValue(argv[i], "--drift-corpus-plans", &v)) {
      drift_corpus_plans = std::atoi(v.c_str());
    } else if (FlagValue(argv[i], "--drift-corpus-seed", &v)) {
      drift_corpus_seed = static_cast<uint64_t>(std::atoll(v.c_str()));
    } else if (FlagValue(argv[i], "--adapt-dir", &v)) {
      config.adaptation.dir = v;
    } else if (FlagValue(argv[i], "--adapt-epochs", &v)) {
      config.adaptation.epochs = std::atoi(v.c_str());
    } else if (FlagValue(argv[i], "--adapt-pairs", &v)) {
      config.adaptation.pairs = std::atoi(v.c_str());
    } else if (FlagValue(argv[i], "--tenant", &v)) {
      std::string name;
      qpe::serve::TenantConfig tenant;
      if (!ParseTenantSpec(v, &name, &tenant)) {
        std::fprintf(stderr,
                     "qpe_served: bad --tenant spec '%s' "
                     "(want NAME:RATE:BURST:WEIGHT[:QUEUE])\n",
                     v.c_str());
        return 2;
      }
      config.admission.tenants[name] = tenant;
    } else {
      std::fprintf(stderr, "qpe_served: unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }
  config.socket_path = socket_path;

  // Deterministic weight init: the same --seed always produces the same
  // model, so the fingerprint-gated warm restore works across restarts.
  qpe::encoder::StructureEncoderConfig encoder_config;
  if (small) {
    encoder_config.level1_dim = 12;
    encoder_config.level2_dim = 6;
    encoder_config.level3_dim = 6;
    encoder_config.num_heads = 2;
    encoder_config.ff_dim = 32;
    encoder_config.num_layers = 2;
    encoder_config.max_len = 128;
  }
  encoder_config.dropout = 0.0f;
  qpe::util::Rng rng(seed);
  qpe::encoder::TransformerPlanEncoder encoder(encoder_config, &rng);
  config.model_fingerprint = qpe::serve::ModelFingerprint(encoder);

  if (config.enable_drift) {
    // The baseline corpus stands in for "the plans this model was trained
    // on": deterministic given the seed, so restarts rebuild the same
    // baseline sketches.
    qpe::data::CorpusOptions corpus_options;
    corpus_options.min_nodes = 4;
    corpus_options.max_nodes = 24;
    qpe::data::RandomPlanGenerator generator(qpe::util::Rng(drift_corpus_seed),
                                             corpus_options);
    config.drift_corpus.reserve(static_cast<size_t>(drift_corpus_plans));
    for (int i = 0; i < drift_corpus_plans; ++i) {
      config.drift_corpus.push_back(
          qpe::plan::SerializePlanNode(*generator.Generate()));
    }
  }

  qpe::serve::ServingDaemon daemon(&encoder, config);
  if (qpe::util::Status s = daemon.Start(); !s.ok()) {
    std::fprintf(stderr, "qpe_served: start failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "qpe_served: listening on %s (workers=%d, fingerprint=%llu)\n",
               socket_path.c_str(), config.workers,
               static_cast<unsigned long long>(config.model_fingerprint));
  std::fflush(stderr);

  daemon.Join();  // returns after SIGTERM/SIGINT-triggered drain completes
  std::fprintf(stderr, "qpe_served: drained, exiting\n");
  return 0;
}
