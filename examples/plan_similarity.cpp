// Plan similarity with a pretrained structure encoder (paper §3.1):
// pretrains the transformer structure encoder on Smatch-labelled plan pairs
// from the synthetic crowdsourced corpus, then uses the learned embeddings
// to find the most structurally similar TPC-H templates — clustering
// similar-featured queries without sharing the queries themselves.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <memory>
#include <vector>

#include "data/datasets.h"
#include "encoder/ppsr.h"
#include "encoder/structure_encoder.h"
#include "simdb/planner.h"
#include "simdb/workloads.h"
#include "util/table_printer.h"

namespace {

double CosineSimilarity(const qpe::nn::Tensor& a, const qpe::nn::Tensor& b) {
  double dot = 0, na = 0, nb = 0;
  for (int c = 0; c < a.cols(); ++c) {
    dot += a.at(0, c) * b.at(0, c);
    na += a.at(0, c) * a.at(0, c);
    nb += b.at(0, c) * b.at(0, c);
  }
  return dot / std::max(1e-12, std::sqrt(na) * std::sqrt(nb));
}

}  // namespace

int main(int argc, char** argv) {
  const int num_pairs = argc > 1 ? std::atoi(argv[1]) : 400;

  // --- Pretrain on the corpus -------------------------------------------
  std::cout << "Pretraining structure encoder on " << num_pairs
            << " Smatch-labelled plan pairs...\n";
  qpe::data::PairDatasetOptions pair_options;
  pair_options.num_pairs = num_pairs;
  pair_options.corpus.max_nodes = 40;
  const qpe::data::PlanPairDataset dataset =
      qpe::data::BuildCorpusPairDataset(pair_options);

  qpe::util::Rng rng(42);
  qpe::encoder::StructureEncoderConfig config;
  config.dropout = 0.05f;
  qpe::encoder::PpsrModel model(
      std::make_unique<qpe::encoder::TransformerPlanEncoder>(config, &rng),
      &rng);
  qpe::encoder::PpsrTrainOptions train_options;
  train_options.epochs = 4;
  qpe::encoder::TrainPpsr(&model, dataset.train, train_options);
  std::cout << "  dev MAE vs true Smatch: "
            << qpe::encoder::EvaluatePpsrMae(model, dataset.dev) << "\n\n";

  // --- Embed TPC-H templates and find neighbours --------------------------
  qpe::simdb::TpchWorkload tpch(1.0);
  qpe::config::DbConfig db_config;
  qpe::simdb::Planner planner(&tpch.GetCatalog(), &db_config);
  qpe::util::Rng query_rng(7);

  std::vector<qpe::nn::Tensor> embeddings;
  for (int t = 0; t < tpch.NumTemplates(); ++t) {
    const qpe::simdb::QuerySpec spec = tpch.Instantiate(t, &query_rng);
    const qpe::plan::Plan planned = planner.PlanQuery(spec);
    embeddings.push_back(
        model.encoder()->Encode(*planned.root, nullptr).Detach());
  }

  qpe::util::TablePrinter table({"template", "nearest", "cosine", "2nd", "cosine"});
  for (int t = 0; t < tpch.NumTemplates(); ++t) {
    std::vector<std::pair<double, int>> scored;
    for (int o = 0; o < tpch.NumTemplates(); ++o) {
      if (o == t) continue;
      scored.emplace_back(CosineSimilarity(embeddings[t], embeddings[o]), o);
    }
    std::sort(scored.rbegin(), scored.rend());
    table.AddRow({tpch.TemplateName(t), tpch.TemplateName(scored[0].second),
                  qpe::util::TablePrinter::Num(scored[0].first, 3),
                  tpch.TemplateName(scored[1].second),
                  qpe::util::TablePrinter::Num(scored[1].first, 3)});
  }
  std::cout << "Structurally nearest TPC-H templates by S(p) cosine:\n";
  table.Print(std::cout);
  std::cout << "\nQueries with similar join shapes (e.g. the 2-table "
               "aggregation templates) should cluster together.\n";
  return 0;
}
