// End-to-end query latency prediction (paper §4.1, Figure 4): pretrains the
// per-operator computational performance encoders on executed TPC-H plans,
// fuses their embeddings with the database settings in the downstream
// latency model, and compares against the TAM calibrated-cost baseline on a
// held-out split.

#include <iostream>
#include <memory>
#include <vector>

#include "config/lhs_sampler.h"
#include "data/datasets.h"
#include "encoder/performance_encoder.h"
#include "simdb/workload_runner.h"
#include "simdb/workloads.h"
#include "tasks/baselines.h"
#include "tasks/embeddings.h"
#include "tasks/latency_model.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  const int num_configs = argc > 1 ? std::atoi(argv[1]) : 20;

  // --- Collect executed plans --------------------------------------------
  qpe::simdb::TpchWorkload tpch(0.1);
  qpe::config::LhsSampler sampler((qpe::util::Rng(3)));
  const auto configs = sampler.Sample(num_configs);
  qpe::simdb::RunOptions run_options;
  run_options.instances_per_template = 2;
  std::cout << "Executing 22 TPC-H templates x 2 instances x " << num_configs
            << " configurations...\n";
  const auto executed = qpe::simdb::RunWorkload(tpch, configs, run_options);

  std::vector<qpe::simdb::ExecutedQuery> train, test;
  for (size_t i = 0; i < executed.size(); ++i) {
    qpe::simdb::ExecutedQuery copy;
    copy.query = executed[i].query.CloneDeep();
    copy.db_config = executed[i].db_config;
    copy.latency_ms = executed[i].latency_ms;
    copy.template_index = executed[i].template_index;
    (i % 5 == 0 ? test : train).push_back(std::move(copy));
  }
  std::cout << "  " << train.size() << " train / " << test.size()
            << " test executed plans\n\n";

  // --- Pretrain per-operator performance encoders -------------------------
  qpe::util::Rng rng(9);
  qpe::encoder::PerfEncoderConfig perf_config;
  std::vector<std::unique_ptr<qpe::encoder::PerformanceEncoder>> encoders;
  qpe::tasks::EmbeddingFeaturizer::Config featurizer_config;
  featurizer_config.catalog = &tpch.GetCatalog();
  for (int g = 0; g < 4; ++g) {
    const auto group = static_cast<qpe::plan::OperatorGroup>(g);
    auto samples = qpe::data::ExtractOperatorSamples(
        train, tpch.GetCatalog(), group);
    encoders.push_back(
        std::make_unique<qpe::encoder::PerformanceEncoder>(perf_config, &rng));
    if (samples.size() >= 30) {
      auto dataset =
          qpe::data::SplitOperatorSamples(std::move(samples), 100 + g);
      qpe::encoder::PerfTrainOptions options;
      options.epochs = 25;
      const auto history =
          qpe::encoder::TrainPerformanceEncoder(encoders.back().get(),
                                                dataset, options);
      std::cout << "Pretrained " << qpe::plan::GroupName(group)
                << " encoder: test MAE " << history.back().test_mae_ms
                << " ms after " << history.size() << " epochs\n";
    }
    featurizer_config.performance[g] = encoders.back().get();
  }

  // --- Downstream latency model -------------------------------------------
  qpe::tasks::EmbeddingFeaturizer featurizer(featurizer_config);
  qpe::tasks::LatencyPredictor predictor(&featurizer, 64, &rng);
  qpe::tasks::LatencyPredictor::TrainOptions train_options;
  train_options.epochs = 50;
  std::cout << "\nTraining the latency model on fused embeddings...\n";
  predictor.Train(train, train_options);

  qpe::tasks::TamBaseline tam;
  tam.Train(train);
  qpe::tasks::SvrBaseline svr;
  svr.Train(train);

  qpe::util::TablePrinter table({"model", "test MAE (ms)"});
  table.AddRow({"Plan Encoders (ours)", qpe::util::TablePrinter::Num(
                                            predictor.EvaluateMaeMs(test), 1)});
  table.AddRow({"TAM (calibrated cost)",
                qpe::util::TablePrinter::Num(tam.EvaluateMaeMs(test), 1)});
  table.AddRow({"SVM (linear SVR)",
                qpe::util::TablePrinter::Num(svr.EvaluateMaeMs(test), 1)});
  std::cout << "\n";
  table.Print(std::cout);
  return 0;
}
