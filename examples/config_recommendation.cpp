// Configuration recommendation — the paper's motivating application (§1):
// once a latency model understands a workload's knob response, candidate
// configurations can be ranked *offline*, without running the workload.
// This example trains the latency model on a TPC-H workload under observed
// configurations, then scores a fresh pool of LHS-sampled candidates by
// predicted total workload latency and compares the recommendation against
// the true best (which the simulator can reveal).

#include <algorithm>
#include <iostream>
#include <vector>

#include "config/lhs_sampler.h"
#include "data/datasets.h"
#include "encoder/performance_encoder.h"
#include "simdb/executor.h"
#include "simdb/planner.h"
#include "simdb/workload_runner.h"
#include "simdb/workloads.h"
#include "tasks/embeddings.h"
#include "tasks/latency_model.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  const int observed_configs = argc > 1 ? std::atoi(argv[1]) : 40;
  const int candidate_configs = argc > 2 ? std::atoi(argv[2]) : 30;

  qpe::simdb::TpchWorkload tpch(0.1);
  // The "workload" is a weighted subset of templates (paper §2.1).
  const std::vector<int> workload_templates = {2, 4, 8, 17};

  std::cout << "Config recommendation for a TPC-H sub-workload (templates "
               "Q3, Q5, Q9, Q18)\n\n";

  // --- Observe the workload under LHS-sampled configurations --------------
  qpe::config::LhsSampler sampler((qpe::util::Rng(31)));
  qpe::simdb::RunOptions run_options;
  run_options.seed = 777;
  const auto observed = qpe::simdb::RunWorkloadTemplates(
      tpch, workload_templates, sampler.Sample(observed_configs), run_options);

  // --- Train the latency model -------------------------------------------
  auto perf_samples_seed = 55;
  qpe::util::Rng rng(9);
  qpe::encoder::PerfEncoderConfig perf_config;
  std::vector<std::unique_ptr<qpe::encoder::PerformanceEncoder>> encoders;
  qpe::tasks::EmbeddingFeaturizer::Config f_config;
  f_config.catalog = &tpch.GetCatalog();
  for (int g = 0; g < 4; ++g) {
    encoders.push_back(
        std::make_unique<qpe::encoder::PerformanceEncoder>(perf_config, &rng));
    auto samples = qpe::data::ExtractOperatorSamples(
        observed, tpch.GetCatalog(), static_cast<qpe::plan::OperatorGroup>(g));
    if (samples.size() >= 30) {
      auto dataset = qpe::data::SplitOperatorSamples(std::move(samples),
                                                     perf_samples_seed + g);
      qpe::encoder::PerfTrainOptions options;
      options.epochs = 25;
      qpe::encoder::TrainPerformanceEncoder(encoders.back().get(), dataset,
                                            options);
    }
    f_config.performance[g] = encoders.back().get();
  }
  qpe::tasks::EmbeddingFeaturizer featurizer(f_config);
  qpe::tasks::LatencyPredictor predictor(&featurizer, 96, &rng);
  qpe::tasks::LatencyPredictor::TrainOptions train_options;
  train_options.epochs = 120;
  predictor.Train(observed, train_options);

  // --- Score fresh candidate configurations offline -----------------------
  qpe::config::LhsSampler candidate_sampler((qpe::util::Rng(99)));
  const auto candidates = candidate_sampler.Sample(candidate_configs);
  // Same query instances as training (same run seed), fresh knobs.
  const auto candidate_runs = qpe::simdb::RunWorkloadTemplates(
      tpch, workload_templates, candidates, run_options);

  std::vector<double> predicted(candidate_configs, 0.0);
  std::vector<double> actual(candidate_configs, 0.0);
  for (size_t i = 0; i < candidate_runs.size(); ++i) {
    const int config_index = static_cast<int>(i) % candidate_configs;
    predicted[config_index] += predictor.PredictMs(candidate_runs[i]);
    actual[config_index] += candidate_runs[i].latency_ms;
  }

  std::vector<int> by_predicted(candidate_configs);
  for (int i = 0; i < candidate_configs; ++i) by_predicted[i] = i;
  std::sort(by_predicted.begin(), by_predicted.end(),
            [&](int a, int b) { return predicted[a] < predicted[b]; });
  const int recommended = by_predicted[0];
  int true_best = 0;
  for (int i = 1; i < candidate_configs; ++i) {
    if (actual[i] < actual[true_best]) true_best = i;
  }
  double worst = actual[0];
  for (double a : actual) worst = std::max(worst, a);

  qpe::util::TablePrinter table(
      {"candidate", "predicted total ms", "actual total ms"});
  for (int rank = 0; rank < std::min(5, candidate_configs); ++rank) {
    const int c = by_predicted[rank];
    table.AddRow({"#" + std::to_string(c),
                  qpe::util::TablePrinter::Num(predicted[c], 0),
                  qpe::util::TablePrinter::Num(actual[c], 0)});
  }
  std::cout << "Top-5 candidates by predicted workload latency:\n";
  table.Print(std::cout);
  std::cout << "\nRecommended config #" << recommended << ": actual "
            << qpe::util::TablePrinter::Num(actual[recommended], 0)
            << " ms;  true best #" << true_best << ": "
            << qpe::util::TablePrinter::Num(actual[true_best], 0)
            << " ms;  worst candidate: "
            << qpe::util::TablePrinter::Num(worst, 0) << " ms\n"
            << "Regret vs best: "
            << qpe::util::TablePrinter::Num(
                   100.0 * (actual[recommended] - actual[true_best]) /
                       actual[true_best],
                   1)
            << "%  (picking at random risks "
            << qpe::util::TablePrinter::Num(
                   100.0 * (worst - actual[true_best]) / actual[true_best], 1)
            << "% regret)\n";
  return 0;
}
