#include "serve/admission.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace qpe::serve {

namespace {

constexpr uint32_t kRetryNeverMs = 0xFFFFFFFFu;

uint32_t RetrySecondsToMs(double seconds) {
  if (seconds < 0) return kRetryNeverMs;
  const double ms = std::ceil(seconds * 1e3);
  if (ms >= static_cast<double>(kRetryNeverMs)) return kRetryNeverMs - 1;
  return std::max<uint32_t>(1, static_cast<uint32_t>(ms));
}

}  // namespace

AdmissionController::AdmissionController(const Config& config)
    : config_(config) {}

TenantState* AdmissionController::TenantFor(const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    const auto cfg_it = config_.tenants.find(name);
    const TenantConfig& cfg = cfg_it != config_.tenants.end()
                                  ? cfg_it->second
                                  : config_.default_tenant;
    it = tenants_.emplace(name, std::make_unique<TenantState>(name, cfg))
             .first;
  }
  return it->second.get();
}

AdmissionController::Result AdmissionController::Offer(QueuedRequest request,
                                                       double now) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantState* tenant = TenantFor(request.tenant);
  if (draining_ || aborted_) {
    ++tenant->counters.shed_draining;
    return {Decision::kShedDraining, 0};
  }
  if (request.deadline <= now) {
    ++tenant->counters.shed_deadline;
    return {Decision::kShedDeadline, 0};
  }
  double retry_after_seconds = 0;
  if (!tenant->bucket.TrySpend(request.cost, now, &retry_after_seconds)) {
    ++tenant->counters.shed_quota;
    return {Decision::kShedQuota, RetrySecondsToMs(retry_after_seconds)};
  }
  std::deque<QueuedRequest>& queue = queues_[request.tenant];
  if (static_cast<int>(queue.size()) >= tenant->config.max_queued_requests) {
    ++tenant->counters.shed_queue_full;
    return {Decision::kShedQueueFull, config_.queue_full_retry_ms};
  }
  request.enqueue_time = now;
  request.virtual_start = std::max(virtual_time_, tenant->last_virtual_finish);
  const double weight = std::max(tenant->config.weight, 1e-9);
  request.virtual_finish =
      request.virtual_start + static_cast<double>(request.cost) / weight;
  tenant->last_virtual_finish = request.virtual_finish;
  ++tenant->counters.admitted;
  tenant->counters.plans += request.cost;
  queue.push_back(std::move(request));
  tenant->counters.queue_depth = static_cast<int>(queue.size());
  ++total_queued_;
  work_cv_.notify_one();
  return {Decision::kAdmitted, 0};
}

std::optional<QueuedRequest> AdmissionController::PopBlocking() {
  std::unique_lock<std::mutex> lock(mu_);
  work_cv_.wait(lock, [this] {
    return total_queued_ > 0 || draining_ || aborted_;
  });
  if (total_queued_ == 0) return std::nullopt;  // draining/aborted and empty
  // Serve the tenant whose head request finishes earliest in virtual time.
  std::deque<QueuedRequest>* best = nullptr;
  for (auto& [name, queue] : queues_) {
    if (queue.empty()) continue;
    if (best == nullptr ||
        queue.front().virtual_finish < best->front().virtual_finish) {
      best = &queue;
    }
  }
  QueuedRequest request = std::move(best->front());
  best->pop_front();
  TenantFor(request.tenant)->counters.queue_depth =
      static_cast<int>(best->size());
  --total_queued_;
  virtual_time_ = std::max(virtual_time_, request.virtual_start);
  return request;
}

std::optional<QueuedRequest> AdmissionController::TryPop() {
  std::unique_lock<std::mutex> lock(mu_);
  if (total_queued_ == 0) return std::nullopt;
  std::deque<QueuedRequest>* best = nullptr;
  for (auto& [name, queue] : queues_) {
    if (queue.empty()) continue;
    if (best == nullptr ||
        queue.front().virtual_finish < best->front().virtual_finish) {
      best = &queue;
    }
  }
  QueuedRequest request = std::move(best->front());
  best->pop_front();
  TenantFor(request.tenant)->counters.queue_depth =
      static_cast<int>(best->size());
  --total_queued_;
  virtual_time_ = std::max(virtual_time_, request.virtual_start);
  return request;
}

void AdmissionController::SetDraining() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
  work_cv_.notify_all();
}

bool AdmissionController::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

std::vector<QueuedRequest> AdmissionController::Abort() {
  std::lock_guard<std::mutex> lock(mu_);
  aborted_ = true;
  std::vector<QueuedRequest> remaining;
  for (auto& [name, queue] : queues_) {
    TenantFor(name)->counters.queue_depth = 0;
    while (!queue.empty()) {
      remaining.push_back(std::move(queue.front()));
      queue.pop_front();
    }
  }
  total_queued_ = 0;
  work_cv_.notify_all();
  return remaining;
}

void AdmissionController::RecordCompleted(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  ++TenantFor(tenant)->counters.completed;
}

void AdmissionController::RecordDeadlineMissed(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  ++TenantFor(tenant)->counters.deadline_missed;
}

std::vector<std::pair<std::string, TenantCounters>>
AdmissionController::CountersSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, TenantCounters>> out;
  out.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) {
    out.emplace_back(name, tenant->counters);
  }
  return out;
}

size_t AdmissionController::TotalQueued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_queued_;
}

}  // namespace qpe::serve
