#ifndef QPE_SERVE_CLIENT_H_
#define QPE_SERVE_CLIENT_H_

#include <string>

#include "serve/wire_protocol.h"
#include "util/socket.h"
#include "util/status.h"

namespace qpe::serve {

// Blocking client for the qpe_served wire protocol: one connection, one
// outstanding request at a time (the daemon itself handles pipelining;
// this client keeps the common case simple). Used by the qpe_client CLI,
// the bench_serving load generator, and the daemon tests.
//
// A transport failure (daemon gone, truncated frame) surfaces as a non-OK
// Status from the call. A *typed daemon error* — shed under overload,
// deadline exceeded, draining — also returns a non-OK Status, but fills
// *typed_error with the wire code, retry-after hint, and message so
// callers can implement backoff instead of string-matching.
class DaemonClient {
 public:
  DaemonClient() = default;

  static util::StatusOr<DaemonClient> Connect(const std::string& socket_path);

  bool connected() const { return fd_.valid(); }

  util::Status Ping();

  // Encodes request.plans; embeddings come back in request order.
  util::StatusOr<EncodeResponse> Encode(const EncodeRequest& request,
                                        ErrorResponse* typed_error = nullptr);

  util::StatusOr<std::string> StatsJson();

  // Closes the connection immediately (tests use this to hang up with a
  // request in flight).
  void Close() { fd_.Reset(); }

  // Raw access for tests that write deliberately hostile bytes.
  int raw_fd() const { return fd_.get(); }

 private:
  util::StatusOr<Frame> RoundTrip(FrameType type, std::string_view payload);

  util::UniqueFd fd_;
  size_t max_payload_bytes_ = 64u << 20;
};

}  // namespace qpe::serve

#endif  // QPE_SERVE_CLIENT_H_
