#ifndef QPE_SERVE_CLIENT_H_
#define QPE_SERVE_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "serve/wire_protocol.h"
#include "util/socket.h"
#include "util/status.h"

namespace qpe::serve {

// Client-side retry discipline for EncodeWithRetry. Two failure families
// are retryable:
//   - typed shed errors (RESOURCE_EXHAUSTED / UNAVAILABLE) whose
//     retry_after_ms is not kRetryNever: the daemon said "come back";
//   - transport loss (EOF, broken pipe): the daemon restarted or dropped
//     the connection; the client reconnects, bounded by max_reconnects.
// INVALID_ARGUMENT, DEADLINE_EXCEEDED, and kRetryNever sheds never retry —
// repeating them can only repeat the answer.
//
// The backoff for retry i is
//     min(max(retry_after_hint, initial_backoff_ms << i), max_backoff_ms)
// plus deterministic jitter in [0, backoff/4] drawn from jitter_seed, so a
// fleet of clients with distinct seeds decorrelates without any global
// randomness (and tests replay exact schedules).
struct RetryPolicy {
  int max_retries = 3;                // attempts after the first
  uint32_t initial_backoff_ms = 10;
  uint32_t max_backoff_ms = 2000;
  int max_reconnects = 1;             // reconnect-on-EOF budget per call
  uint64_t jitter_seed = 1;
  // Test hook: when set, called with each backoff instead of sleeping.
  std::function<void(uint32_t)> sleep_override;
};

// What a retried call actually did (telemetry + test assertions).
struct RetryStats {
  int attempts = 0;                   // Encode attempts, including the first
  int reconnects = 0;
  std::vector<uint32_t> backoffs_ms;  // each sleep, in order
};

// Blocking client for the qpe_served wire protocol: one connection, one
// outstanding request at a time (the daemon itself handles pipelining;
// this client keeps the common case simple). Used by the qpe_client CLI,
// the bench_serving load generator, and the daemon tests.
//
// A transport failure (daemon gone, truncated frame) surfaces as a non-OK
// Status from the call. A *typed daemon error* — shed under overload,
// deadline exceeded, draining — also returns a non-OK Status, but fills
// *typed_error with the wire code, retry-after hint, and message so
// callers can implement backoff instead of string-matching.
class DaemonClient {
 public:
  DaemonClient() = default;

  static util::StatusOr<DaemonClient> Connect(const std::string& socket_path);

  bool connected() const { return fd_.valid(); }

  util::Status Ping();

  // Encodes request.plans; embeddings come back in request order.
  util::StatusOr<EncodeResponse> Encode(const EncodeRequest& request,
                                        ErrorResponse* typed_error = nullptr);

  // Encode with the retry discipline documented on RetryPolicy: honors the
  // daemon's typed retry_after_ms hints under capped exponential backoff
  // with deterministic jitter, and reconnects (bounded) when the daemon
  // hangs up mid-conversation. Returns the last attempt's result.
  util::StatusOr<EncodeResponse> EncodeWithRetry(
      const EncodeRequest& request, const RetryPolicy& policy,
      ErrorResponse* typed_error = nullptr, RetryStats* retry_stats = nullptr);

  util::StatusOr<std::string> StatsJson();

  // Closes the connection immediately (tests use this to hang up with a
  // request in flight).
  void Close() { fd_.Reset(); }

  // Raw access for tests that write deliberately hostile bytes.
  int raw_fd() const { return fd_.get(); }

 private:
  util::StatusOr<Frame> RoundTrip(FrameType type, std::string_view payload);

  util::UniqueFd fd_;
  std::string socket_path_;  // for EncodeWithRetry reconnects
  size_t max_payload_bytes_ = 64u << 20;
};

}  // namespace qpe::serve

#endif  // QPE_SERVE_CLIENT_H_
