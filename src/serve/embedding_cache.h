#ifndef QPE_SERVE_EMBEDDING_CACHE_H_
#define QPE_SERVE_EMBEDDING_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace qpe::serve {

// Configuration of the plan-fingerprint embedding cache.
struct EmbeddingCacheConfig {
  // Total number of embeddings held across all shards.
  size_t capacity = 4096;
  // Number of independent LRU shards (rounded up to a power of two). More
  // shards means less lock contention under concurrent serving; 1 shard
  // gives a single globally-ordered LRU (useful for eviction-order tests).
  int shards = 8;
};

// Sharded, thread-safe LRU cache of plan embeddings keyed by the 64-bit
// plan fingerprint (plan::FingerprintPlan — a hash of the sanitized
// DFS-bracket linearization, i.e. exactly the encoder's input, so equal
// keys mean equal embeddings up to hash collisions).
//
// Each shard is an independent LRU protected by its own mutex; a key's
// shard is derived from its low bits, which the fingerprint's splitmix64
// finalizer distributes uniformly. Values are raw float rows (the [1, d]
// embedding's storage), not nn::Tensor handles, so cached entries never
// alias autograd state.
class EmbeddingCache {
 public:
  explicit EmbeddingCache(const EmbeddingCacheConfig& config = {});

  // On hit copies the cached embedding into *out (out may be null to probe)
  // and refreshes its LRU position; returns true. Counts one hit or miss.
  bool Lookup(uint64_t key, std::vector<float>* out);

  // Inserts or refreshes `key`; the least-recently-used entry of the
  // key's shard is evicted when the shard exceeds its capacity share.
  void Insert(uint64_t key, std::vector<float> embedding);

  // Probe without touching LRU order or counters (tests, introspection).
  bool Contains(uint64_t key) const;

  void Clear();

  // Consistent point-in-time dump of every entry for warm-restart
  // persistence (serve/warm_state.h): all shard locks are held at once, so
  // the snapshot is a true cut of the cache. Entries are ordered
  // shard-by-shard, least-recently-used first, so Restore() replays them
  // with Insert() and reproduces each shard's exact LRU order.
  std::vector<std::pair<uint64_t, std::vector<float>>> Snapshot() const;

  // Inserts `entries` in order (see Snapshot for the ordering contract).
  // Counters are unchanged: restored entries are neither hits nor misses.
  void Restore(std::vector<std::pair<uint64_t, std::vector<float>>> entries);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
    double HitRate() const {
      const uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };
  // Aggregated over shards under *all* shard locks at once, so the totals
  // are a consistent point-in-time cut: GetStats can never observe one
  // shard's counters from before a concurrent operation and another
  // shard's from after it (torn hit/miss/eviction totals). Writers only
  // ever take one shard lock, so the all-locks acquisition (in fixed shard
  // order) cannot deadlock against them.
  Stats GetStats() const;

  size_t capacity() const { return capacity_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Shard {
    mutable std::mutex mu;
    // Front = most recently used. The map stores iterators into the list.
    std::list<std::pair<uint64_t, std::vector<float>>> lru;
    std::unordered_map<uint64_t, decltype(lru)::iterator> index;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(uint64_t key);
  const Shard& ShardFor(uint64_t key) const;

  size_t capacity_ = 0;
  size_t shard_capacity_ = 0;
  uint64_t shard_mask_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace qpe::serve

#endif  // QPE_SERVE_EMBEDDING_CACHE_H_
