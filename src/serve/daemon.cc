#include "serve/daemon.h"

#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "plan/serialize.h"
#include "serve/warm_state.h"
#include "util/fault_injection.h"

namespace qpe::serve {

namespace {

constexpr double kInfiniteDeadline = std::numeric_limits<double>::infinity();
constexpr int kPollTimeoutMs = 50;

}  // namespace

// One client connection. The IO thread owns the receive buffer and the
// lifetime (it alone erases connections from its map); workers hold a
// shared_ptr and write responses under write_mu, so a response to a
// connection that died mid-encode lands on a closed flag, not a dangling
// fd.
struct ServingDaemon::Connection {
  util::UniqueFd fd;
  std::mutex write_mu;
  std::atomic<bool> closed{false};
  std::string in_buf;  // IO thread only
  // Wire version of the client's most recent frame; every response goes
  // out stamped with it, so v1 clients keep getting v1 frames from a v2
  // daemon. Written by the IO thread, read by workers.
  std::atomic<uint8_t> wire_version{1};
};

ServingDaemon::ServingDaemon(const encoder::PlanSequenceEncoder* encoder,
                             const ServingDaemonConfig& config)
    : encoder_(encoder),
      config_(config),
      service_(std::make_unique<EmbeddingService>(encoder, config.service)),
      admission_(std::make_unique<AdmissionController>(config.admission)) {}

ServingDaemon::~ServingDaemon() {
  if (started_.load() && !stopped_.load()) Stop();
}

double ServingDaemon::Now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_time_)
      .count();
}

util::Status ServingDaemon::Start() {
  if (started_.exchange(true)) {
    return util::FailedPreconditionError("daemon already started");
  }
  start_time_ = std::chrono::steady_clock::now();
  if (!drain_pipe_.valid()) {
    return util::IoError("cannot create the drain self-pipe");
  }
  util::StatusOr<util::UniqueFd> listener =
      util::ListenUnix(config_.socket_path, config_.listen_backlog);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  if (util::Status s = util::SetNonBlocking(listener_.get()); !s.ok()) {
    return s;
  }
  if (config_.install_signal_handlers) {
    if (util::Status s = util::InstallShutdownSignalHandler(&drain_pipe_);
        !s.ok()) {
      return s;
    }
  }

  // Drift sentinel first: if a completed adaptation round's weights are on
  // disk they become the serving model (with their own fingerprint), and
  // the warm restore below must validate against *that* fingerprint.
  if (config_.enable_drift) {
    if (util::Status s = InitDrift(); !s.ok()) return s;
  }

  // Warm restore: best effort — a missing, corrupt, or wrong-model
  // snapshot starts cold, it never blocks startup.
  if (!config_.warm_state_path.empty() && service_->cache() != nullptr &&
      WarmStateExists(config_.warm_state_path)) {
    WarmState warm;
    util::Status s = LoadWarmState(config_.warm_state_path,
                                   config_.model_fingerprint, &warm);
    if (s.ok()) {
      service_->cache()->Restore(std::move(warm.entries));
      warm_restored_entries_.store(service_->cache()->GetStats().entries);
      std::fprintf(stderr, "qpe_served: warm cache restored: %zu entries\n",
                   static_cast<size_t>(warm_restored_entries_.load()));
    } else {
      std::fprintf(stderr, "qpe_served: warm restore skipped: %s\n",
                   s.ToString().c_str());
    }
  }

  workers_.reserve(static_cast<size_t>(std::max(config_.workers, 1)));
  workers_running_.store(std::max(config_.workers, 1));
  for (int i = 0; i < std::max(config_.workers, 1); ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  io_thread_ = std::thread([this] { IoLoop(); });

  // Restart re-entry: a persisted manifest proves the previous process was
  // SIGKILLed mid-ADAPTING. Re-enter the state immediately (responses flag
  // stale from the first request) and resume the fine-tune from its last
  // checkpoint while serving continues.
  if (sentinel_ != nullptr && !config_.adaptation.dir.empty() &&
      drift::AdaptationPending(config_.adaptation.dir)) {
    std::fprintf(stderr, "qpe_served: resuming interrupted adaptation\n");
    sentinel_->ForceAdapting();
    adaptations_resumed_.fetch_add(1, std::memory_order_relaxed);
    StartAdaptationThread(/*resumed=*/true);
  }
  return util::OkStatus();
}

util::Status ServingDaemon::InitDrift() {
  const auto* base =
      dynamic_cast<const encoder::TransformerPlanEncoder*>(encoder_);
  if (base == nullptr) {
    return util::InvalidArgumentError(
        "drift sentinel requires a TransformerPlanEncoder");
  }
  if (config_.drift_corpus.empty()) {
    return util::InvalidArgumentError(
        "drift sentinel needs a baseline corpus (drift_corpus is empty)");
  }
  corpus_plans_.reserve(config_.drift_corpus.size());
  for (const std::string& text : config_.drift_corpus) {
    util::StatusOr<std::unique_ptr<plan::PlanNode>> parsed =
        plan::ParsePlanNodeChecked(text);
    if (!parsed.ok()) return parsed.status();
    corpus_plans_.push_back(std::move(*parsed));
  }

  // A completed round the previous process never got to swap in (or
  // swapped in and then exited): its weights are the model to serve now.
  const std::string& dir = config_.adaptation.dir;
  if (!dir.empty() && drift::AdaptedWeightsPresent(dir)) {
    util::StatusOr<std::unique_ptr<encoder::TransformerPlanEncoder>> adapted =
        drift::LoadAdaptedEncoder(dir, base->config());
    if (adapted.ok()) {
      adapted_encoder_ = std::move(*adapted);
      encoder_ = adapted_encoder_.get();
      service_->SwapEncoder(encoder_);  // pre-thread: nothing concurrent
      config_.model_fingerprint = ModelFingerprint(*adapted_encoder_);
      std::fprintf(stderr,
                   "qpe_served: adapted model restored: fingerprint %" PRIu64
                   "\n",
                   config_.model_fingerprint);
    } else {
      // Corrupt adapted weights degrade to the base model, never to a
      // failed start.
      std::fprintf(stderr, "qpe_served: adapted model load skipped: %s\n",
                   adapted.status().ToString().c_str());
    }
  }

  std::vector<const plan::PlanNode*> ptrs;
  ptrs.reserve(corpus_plans_.size());
  for (const auto& p : corpus_plans_) ptrs.push_back(p.get());
  sentinel_ = std::make_unique<drift::DriftSentinel>(
      drift::BuildDriftBaseline(*encoder_, ptrs, config_.drift_baseline),
      config_.drift_sentinel);
  return util::OkStatus();
}

void ServingDaemon::TriggerDrain() { drain_pipe_.Notify(); }

void ServingDaemon::Join() {
  std::lock_guard<std::mutex> lock(join_mu_);
  if (io_thread_.joinable()) io_thread_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  if (adapt_thread_.joinable()) adapt_thread_.join();
  stopped_.store(true);
}

void ServingDaemon::Stop() {
  TriggerDrain();
  Join();
}

void ServingDaemon::SendFrame(const ConnPtr& conn, FrameType type,
                              std::string_view payload) {
  if (conn->closed.load(std::memory_order_acquire)) return;
  const std::string frame = EncodeFrame(
      type, payload, conn->wire_version.load(std::memory_order_relaxed));
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (conn->closed.load(std::memory_order_acquire)) return;
  if (util::Status s = util::WriteFull(conn->fd.get(), frame.data(),
                                       frame.size());
      !s.ok()) {
    // Slow consumer (SO_SNDTIMEO), hangup, or injected fault: this
    // connection is done, the daemon is not.
    io_errors_.fetch_add(1, std::memory_order_relaxed);
    conn->closed.store(true, std::memory_order_release);
  }
}

void ServingDaemon::SendError(const ConnPtr& conn, WireError code,
                              uint32_t retry_after_ms, std::string message) {
  ErrorResponse error;
  error.code = code;
  error.retry_after_ms = retry_after_ms;
  error.message = std::move(message);
  SendFrame(conn, FrameType::kErrorResponse,
            EncodeErrorResponsePayload(error));
}

void ServingDaemon::HandleEncodeRequest(const ConnPtr& conn,
                                        std::string payload,
                                        uint8_t wire_version) {
  // Admission runs on the head fields only — tenant, deadline, cost — so
  // shedding a request under overload never pays for plan parsing.
  util::StatusOr<EncodeRequestHead> head =
      PeekEncodeRequestHead(payload, config_.max_plans_per_request);
  if (!head.ok()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    SendError(conn, WireError::kInvalidArgument, 0, head.status().ToString());
    return;
  }
  const double now = Now();
  QueuedRequest request;
  request.tenant = head->tenant;
  request.cost = head->plan_count;
  request.deadline = head->deadline_ms == kNoDeadline
                         ? kInfiniteDeadline
                         : now + head->deadline_ms * 1e-3;
  request.payload = std::move(payload);
  request.context = conn;
  request.wire_version = wire_version;
  const AdmissionController::Result result =
      admission_->Offer(std::move(request), now);
  switch (result.decision) {
    case AdmissionController::Decision::kAdmitted:
      return;  // a worker will respond
    case AdmissionController::Decision::kShedDraining:
      SendError(conn, WireError::kUnavailable, result.retry_after_ms,
                "daemon is draining");
      return;
    case AdmissionController::Decision::kShedDeadline:
      SendError(conn, WireError::kDeadlineExceeded, 0,
                "deadline expired before admission");
      return;
    case AdmissionController::Decision::kShedQuota:
      SendError(conn, WireError::kResourceExhausted, result.retry_after_ms,
                result.retry_after_ms == kRetryNever
                    ? "tenant quota can never cover this request"
                    : "tenant quota exhausted");
      return;
    case AdmissionController::Decision::kShedQueueFull:
      SendError(conn, WireError::kResourceExhausted, result.retry_after_ms,
                "tenant queue is full");
      return;
  }
}

void ServingDaemon::HandleFrame(const ConnPtr& conn, Frame frame) {
  // Version negotiation: a connection speaks whatever version its latest
  // frame used, and every response echoes it.
  conn->wire_version.store(frame.version, std::memory_order_relaxed);
  switch (frame.type) {
    case FrameType::kEncodeRequest:
      HandleEncodeRequest(conn, std::move(frame.payload), frame.version);
      return;
    case FrameType::kStatsRequest:
      SendFrame(conn, FrameType::kStatsResponse, StatsJson());
      return;
    case FrameType::kPingRequest:
      SendFrame(conn, FrameType::kPongResponse, "");
      return;
    default:
      // A client sending response-typed frames is confused; treat as a
      // protocol error and drop the connection.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      SendError(conn, WireError::kInvalidArgument, 0,
                "unexpected frame type on the request channel");
      conn->closed.store(true, std::memory_order_release);
      return;
  }
}

void ServingDaemon::ProcessWork(QueuedRequest work) {
  const ConnPtr conn = std::static_pointer_cast<Connection>(work.context);
  // Deadline re-check at dequeue: queued work whose budget lapsed is
  // cancelled without touching the encoder — that is what keeps a backlog
  // from wasting capacity on responses nobody is waiting for anymore.
  if (Now() > work.deadline) {
    admission_->RecordDeadlineMissed(work.tenant);
    SendError(conn, WireError::kDeadlineExceeded, 0,
              "deadline expired while queued");
    return;
  }
  util::StatusOr<EncodeRequest> request = ParseEncodeRequestPayload(
      work.payload, config_.max_plans_per_request);
  if (!request.ok()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    SendError(conn, WireError::kInvalidArgument, 0,
              request.status().ToString());
    admission_->RecordCompleted(work.tenant);
    return;
  }
  std::vector<std::unique_ptr<plan::PlanNode>> plans;
  plans.reserve(request->plans.size());
  for (size_t i = 0; i < request->plans.size(); ++i) {
    util::StatusOr<std::unique_ptr<plan::PlanNode>> parsed =
        plan::ParsePlanNodeChecked(request->plans[i]);
    if (!parsed.ok()) {
      SendError(conn, WireError::kInvalidArgument, 0,
                "plan " + std::to_string(i) + ": " +
                    parsed.status().ToString());
      admission_->RecordCompleted(work.tenant);
      return;
    }
    plans.push_back(std::move(*parsed));
  }
  std::vector<const plan::PlanNode*> ptrs;
  ptrs.reserve(plans.size());
  for (const auto& p : plans) ptrs.push_back(p.get());

  EncodeResponse response;
  {
    // Shared model lock: the encode, the dim read, and the sentinel's
    // observation of the produced embeddings all see one consistent model —
    // an adaptation swap (exclusive side) can never land in between.
    std::shared_lock<std::shared_mutex> model_lock(model_mu_);
    const std::vector<nn::Tensor> embeddings = service_->EncodeAll(ptrs);
    response.dim = static_cast<uint32_t>(encoder_->output_dim());
    response.embeddings.reserve(embeddings.size());
    for (const nn::Tensor& e : embeddings) {
      response.embeddings.push_back(e.value());
    }
    if (sentinel_ != nullptr) {
      const auto observe_start = std::chrono::steady_clock::now();
      for (size_t i = 0; i < plans.size(); ++i) {
        sentinel_->Observe(*plans[i], response.embeddings[i].data(),
                           response.dim);
      }
      drift_observe_ns_.fetch_add(
          static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - observe_start)
                  .count()),
          std::memory_order_relaxed);
      drift_observed_.fetch_add(plans.size(), std::memory_order_relaxed);
    }
  }
  if (sentinel_ != nullptr) {
    response.stale = sentinel_->stale();
    response.drift_state = static_cast<uint8_t>(sentinel_->state());
    response.drift_score = sentinel_->last_score();
  }
  SendFrame(conn, FrameType::kEncodeResponse,
            EncodeEncodeResponsePayload(response, work.wire_version));
  // The encode ran to completion whether or not the client stuck around to
  // read the response, so `completed` counts it either way — keeping the
  // invariant admitted == completed + deadline_missed for every tenant.
  admission_->RecordCompleted(work.tenant);
  completed_since_snapshot_.fetch_add(1, std::memory_order_relaxed);
}

void ServingDaemon::WorkerLoop() {
  while (true) {
    std::optional<QueuedRequest> work = admission_->PopBlocking();
    if (!work.has_value()) break;  // draining/aborted and queues empty
    ProcessWork(std::move(*work));
  }
  workers_running_.fetch_sub(1, std::memory_order_acq_rel);
}

void ServingDaemon::MaybeSnapshot(bool force) {
  if (config_.warm_state_path.empty() || service_->cache() == nullptr) return;
  if (!force) {
    if (config_.snapshot_every_requests == 0) return;
    if (completed_since_snapshot_.load(std::memory_order_relaxed) <
        config_.snapshot_every_requests) {
      return;
    }
  }
  completed_since_snapshot_.store(0, std::memory_order_relaxed);
  WarmState warm;
  {
    // Shared model lock: fingerprint and cache contents are captured as a
    // consistent pair. Without it an adaptation swap could land between the
    // two reads, stamping the *old* fingerprint onto the *new* model's
    // cache — a snapshot a restarted daemon would happily restore against
    // the wrong weights.
    std::shared_lock<std::shared_mutex> model_lock(model_mu_);
    warm.model_fingerprint = config_.model_fingerprint;
    warm.dim = static_cast<uint32_t>(encoder_->output_dim());
    warm.entries = service_->cache()->Snapshot();
  }
  if (warm.entries.empty()) return;  // nothing worth persisting
  if (util::Status s = SaveWarmState(config_.warm_state_path, warm); s.ok()) {
    snapshots_written_.fetch_add(1, std::memory_order_relaxed);
  } else {
    // A failed snapshot (disk full, injected fault) degrades warm restart,
    // not serving; the crash-safe writer left no torn file behind.
    io_errors_.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr, "qpe_served: warm snapshot failed: %s\n",
                 s.ToString().c_str());
  }
}

void ServingDaemon::MaybeStartAdaptation() {
  // IO-thread only (like everything that touches adapt_thread_ after
  // Start), so the check-then-spawn below has no race.
  if (sentinel_ == nullptr || config_.adaptation.dir.empty()) return;
  if (adapt_running_.load(std::memory_order_acquire)) return;
  if (sentinel_->state() != drift::DriftState::kDrifted) return;
  StartAdaptationThread(/*resumed=*/false);
}

void ServingDaemon::StartAdaptationThread(bool resumed) {
  adapt_running_.store(true, std::memory_order_release);
  if (adapt_thread_.joinable()) adapt_thread_.join();  // reap the last round
  adapt_thread_ = std::thread([this, resumed] { AdaptationRound(resumed); });
}

void ServingDaemon::AdaptationRound(bool resumed) {
  // Fresh rounds take the DRIFTED -> ADAPTING edge; a resumed round was
  // forced into ADAPTING by Start() already.
  if (!resumed && !sentinel_->BeginAdaptation()) {
    adapt_running_.store(false, std::memory_order_release);
    return;
  }
  std::fprintf(stderr, "qpe_served: adaptation started%s\n",
               resumed ? " (resumed from checkpoint)" : "");
  const std::vector<std::string> slice = sentinel_->SliceSnapshot();
  drift::AdaptationConfig adapt_config = config_.adaptation;
  adapt_config.abort = &adapt_abort_;
  const encoder::TransformerPlanEncoder* base = nullptr;
  {
    std::shared_lock<std::shared_mutex> model_lock(model_mu_);
    base = dynamic_cast<const encoder::TransformerPlanEncoder*>(encoder_);
  }
  // RunAdaptation only *reads* the base encoder (it trains a clone), so
  // serving continues on it concurrently without the model lock.
  util::StatusOr<drift::AdaptationResult> result =
      drift::RunAdaptation(*base, slice, adapt_config);
  if (!result.ok()) {
    std::fprintf(stderr, "qpe_served: adaptation failed: %s\n",
                 result.status().ToString().c_str());
    sentinel_->AbortAdaptation();  // back to DRIFTED; retry-eligible
    adapt_running_.store(false, std::memory_order_release);
    return;
  }
  if (result->aborted) {
    // Drain interrupted the round: manifest + checkpoint persist, the next
    // start resumes. The state stays ADAPTING until then.
    std::fprintf(stderr,
                 "qpe_served: adaptation interrupted by drain; will resume\n");
    adapt_running_.store(false, std::memory_order_release);
    return;
  }
  InstallAdaptedEncoder(std::move(result->encoder),
                        std::move(result->slice_plans));
  adaptations_completed_.fetch_add(1, std::memory_order_relaxed);
  adapt_running_.store(false, std::memory_order_release);
}

void ServingDaemon::InstallAdaptedEncoder(
    std::unique_ptr<encoder::TransformerPlanEncoder> fresh,
    std::vector<std::unique_ptr<plan::PlanNode>> slice_plans) {
  // The drifted slice joins the baseline corpus: after the swap the adapted
  // distribution *is* normal, and the rebuilt baseline must say so.
  for (auto& p : slice_plans) corpus_plans_.push_back(std::move(p));
  std::vector<const plan::PlanNode*> ptrs;
  ptrs.reserve(corpus_plans_.size());
  for (const auto& p : corpus_plans_) ptrs.push_back(p.get());
  drift::DriftBaseline baseline =
      drift::BuildDriftBaseline(*fresh, ptrs, config_.drift_baseline);
  const uint64_t fingerprint = ModelFingerprint(*fresh);
  std::unique_ptr<encoder::TransformerPlanEncoder> retired;
  {
    // The swap: encoder pointer, embedding cache (cleared transactionally
    // by SwapEncoder), and fingerprint change as one unit under the
    // exclusive lock. Encodes and snapshots see the old triple or the new
    // one, never a mix.
    std::unique_lock<std::shared_mutex> model_lock(model_mu_);
    retired = std::move(adapted_encoder_);
    adapted_encoder_ = std::move(fresh);
    encoder_ = adapted_encoder_.get();
    service_->SwapEncoder(encoder_);
    config_.model_fingerprint = fingerprint;
  }
  sentinel_->CompleteAdaptation(std::move(baseline));
  std::fprintf(stderr,
               "qpe_served: adaptation complete: fingerprint %" PRIu64
               " now serving\n",
               fingerprint);
}

void ServingDaemon::IoLoop() {
  std::map<int, ConnPtr> conns;
  bool listener_open = true;
  double drain_start = 0;
  bool drain_aborted = false;

  const auto close_conn = [&](int fd) {
    auto it = conns.find(fd);
    if (it == conns.end()) return;
    it->second->closed.store(true, std::memory_order_release);
    conns.erase(it);
    connections_open_.store(conns.size(), std::memory_order_relaxed);
  };

  while (true) {
    std::vector<pollfd> fds;
    fds.push_back({drain_pipe_.read_fd(), POLLIN, 0});
    if (listener_open) fds.push_back({listener_.get(), POLLIN, 0});
    for (const auto& [fd, conn] : conns) fds.push_back({fd, POLLIN, 0});
    const int ready = ::poll(fds.data(), fds.size(), kPollTimeoutMs);
    if (ready < 0 && errno != EINTR) break;  // poll itself failed: bail out

    // 1. Shutdown signal (SIGTERM/SIGINT via self-pipe, or TriggerDrain).
    if (drain_pipe_.Drain() && !draining_.load()) {
      // An in-flight adaptation stops at its next batch boundary WITHOUT
      // checkpointing (SIGKILL-equivalent); its manifest survives, so the
      // next start resumes the round.
      adapt_abort_.store(true, std::memory_order_release);
      draining_.store(true, std::memory_order_release);
      admission_->SetDraining();  // new work -> UNAVAILABLE; queues flush
      listener_.Reset();          // stop accepting
      listener_open = false;
      drain_start = Now();
    }

    // 2. New connections.
    if (listener_open) {
      while (true) {
        if (util::Status s = util::InjectFault("daemon.accept"); !s.ok()) {
          io_errors_.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        const int fd = ::accept(listener_.get(), nullptr, nullptr);
        if (fd < 0) {
          if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
            io_errors_.fetch_add(1, std::memory_order_relaxed);
          }
          break;
        }
        // Reads are multiplexed with MSG_DONTWAIT; writes stay blocking
        // with a send timeout so a stalled consumer cannot pin a worker.
        if (config_.write_timeout_seconds > 0) {
          timeval tv{};
          tv.tv_sec = static_cast<time_t>(config_.write_timeout_seconds);
          tv.tv_usec = static_cast<suseconds_t>(
              (config_.write_timeout_seconds - static_cast<double>(tv.tv_sec)) *
              1e6);
          ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
        }
        auto conn = std::make_shared<Connection>();
        conn->fd.Reset(fd);
        conns.emplace(fd, std::move(conn));
        connections_accepted_.fetch_add(1, std::memory_order_relaxed);
        connections_open_.store(conns.size(), std::memory_order_relaxed);
      }
    }

    // 3. Connection reads: accumulate bytes, extract complete frames.
    std::vector<int> dead;
    for (auto& [fd, conn] : conns) {
      if (conn->closed.load(std::memory_order_acquire)) {
        dead.push_back(fd);
        continue;
      }
      char buf[4096];
      bool conn_dead = false;
      while (true) {
        if (util::Status s = util::InjectFault("daemon.conn.read"); !s.ok()) {
          io_errors_.fetch_add(1, std::memory_order_relaxed);
          conn_dead = true;
          break;
        }
        const ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
        if (n > 0) {
          conn->in_buf.append(buf, static_cast<size_t>(n));
          if (static_cast<ssize_t>(sizeof(buf)) == n) continue;
          break;
        }
        if (n == 0) {  // peer hung up (possibly mid-frame: dropped cleanly)
          conn_dead = true;
        } else if (errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR) {
          io_errors_.fetch_add(1, std::memory_order_relaxed);
          conn_dead = true;
        }
        break;
      }
      while (!conn_dead) {
        Frame frame;
        size_t consumed = 0;
        util::Status error;
        const FrameParse parse =
            NextFrame(conn->in_buf, config_.max_payload_bytes, &frame,
                      &consumed, &error);
        if (parse == FrameParse::kNeedMore) break;
        if (parse == FrameParse::kError) {
          // Garbage on the wire: answer with a typed error (best effort —
          // the stream is unframed now) and drop the connection.
          protocol_errors_.fetch_add(1, std::memory_order_relaxed);
          SendError(conn, WireError::kInvalidArgument, 0, error.ToString());
          conn_dead = true;
          break;
        }
        conn->in_buf.erase(0, consumed);
        HandleFrame(conn, std::move(frame));
        if (conn->closed.load(std::memory_order_acquire)) {
          conn_dead = true;
          break;
        }
      }
      if (conn_dead) dead.push_back(fd);
    }
    for (const int fd : dead) close_conn(fd);

    // 4. Periodic warm snapshot + drift-triggered adaptation.
    if (!draining_.load()) {
      MaybeSnapshot(/*force=*/false);
      MaybeStartAdaptation();
    }

    // 5. Drain state machine.
    if (draining_.load()) {
      const bool workers_done = workers_running_.load() == 0;
      const bool overdue = Now() - drain_start > config_.drain_deadline_seconds;
      if (overdue && !drain_aborted) {
        // Admitted work we could not flush in time: fail it with a typed
        // error rather than serving it late into a closed window.
        drain_aborted = true;
        for (QueuedRequest& request : admission_->Abort()) {
          SendError(std::static_pointer_cast<Connection>(request.context),
                    WireError::kUnavailable, 0,
                    "daemon drain deadline exceeded");
        }
      }
      if (workers_done) {
        // Everything admitted has been answered (or failed above). Close
        // out: connections, final snapshot, exit.
        for (auto& [fd, conn] : conns) {
          conn->closed.store(true, std::memory_order_release);
        }
        conns.clear();
        connections_open_.store(0, std::memory_order_relaxed);
        MaybeSnapshot(/*force=*/true);
        break;
      }
    }
  }
}

DaemonStats ServingDaemon::GetStats() const {
  DaemonStats stats;
  stats.draining = draining_.load();
  stats.connections_accepted = connections_accepted_.load();
  stats.connections_open = connections_open_.load();
  stats.protocol_errors = protocol_errors_.load();
  stats.io_errors = io_errors_.load();
  stats.warm_restored_entries = warm_restored_entries_.load();
  stats.snapshots_written = snapshots_written_.load();
  stats.service = service_->GetStats();
  stats.tenants = admission_->CountersSnapshot();
  {
    std::shared_lock<std::shared_mutex> model_lock(model_mu_);
    stats.current_fingerprint = config_.model_fingerprint;
  }
  stats.drift_enabled = sentinel_ != nullptr;
  if (sentinel_ != nullptr) {
    stats.drift = sentinel_->Snapshot();
    stats.adaptations_completed =
        adaptations_completed_.load(std::memory_order_relaxed);
    stats.adaptations_resumed =
        adaptations_resumed_.load(std::memory_order_relaxed);
    const uint64_t observed = drift_observed_.load(std::memory_order_relaxed);
    if (observed > 0) {
      stats.drift_observe_us_per_plan =
          static_cast<double>(drift_observe_ns_.load(
              std::memory_order_relaxed)) *
          1e-3 / static_cast<double>(observed);
    }
  }
  return stats;
}

std::string ServingDaemon::StatsJson() const {
  const DaemonStats stats = GetStats();
  std::ostringstream os;
  os.precision(6);
  os << "{\n"
     << "  \"draining\": " << (stats.draining ? "true" : "false") << ",\n"
     << "  \"connections_accepted\": " << stats.connections_accepted << ",\n"
     << "  \"connections_open\": " << stats.connections_open << ",\n"
     << "  \"protocol_errors\": " << stats.protocol_errors << ",\n"
     << "  \"io_errors\": " << stats.io_errors << ",\n"
     << "  \"warm_restored_entries\": " << stats.warm_restored_entries
     << ",\n"
     << "  \"snapshots_written\": " << stats.snapshots_written << ",\n"
     << "  \"model_fingerprint\": " << stats.current_fingerprint << ",\n";
  os << "  \"drift\": {\n"
     << "    \"enabled\": " << (stats.drift_enabled ? "true" : "false");
  if (stats.drift_enabled) {
    const drift::DriftStatusSnapshot& d = stats.drift;
    os << ",\n"
       << "    \"state\": \"" << drift::DriftStateName(d.state) << "\",\n"
       << "    \"stale\": "
       << (d.state == drift::DriftState::kDrifted ||
                   d.state == drift::DriftState::kAdapting
               ? "true"
               : "false")
       << ",\n"
       << "    \"score\": " << d.last_score << ",\n"
       << "    \"windows\": " << d.windows << ",\n"
       << "    \"alarms\": " << d.alarms << ",\n"
       << "    \"observed_plans\": " << d.observed_plans << ",\n"
       << "    \"slice_size\": " << d.slice_size << ",\n"
       << "    \"adaptations_completed\": " << stats.adaptations_completed
       << ",\n"
       << "    \"adaptations_resumed\": " << stats.adaptations_resumed << ",\n"
       << "    \"observe_us_per_plan\": " << stats.drift_observe_us_per_plan;
    if (d.has_report) {
      const drift::DriftWindowReport& r = d.last_report;
      os << ",\n    \"last_window\": {"
         << "\"plans\": " << r.plans << ", \"novel_rate\": " << r.novel_rate
         << ", \"novel_score\": " << r.novel_score
         << ", \"token_score\": " << r.token_score
         << ", \"cluster_score\": " << r.cluster_score
         << ", \"outlier_rate\": " << r.outlier_rate
         << ", \"score\": " << r.score << ", \"dominant\": \""
         << drift::DriftComponentName(r.dominant) << "\", \"top_tokens\": [";
      for (size_t i = 0; i < r.top_tokens.size(); ++i) {
        os << (i == 0 ? "" : ", ") << "{\"name\": \"" << r.top_tokens[i].name
           << "\", \"delta\": " << r.top_tokens[i].delta << "}";
      }
      os << "], \"top_clusters\": [";
      for (size_t i = 0; i < r.top_clusters.size(); ++i) {
        os << (i == 0 ? "" : ", ")
           << "{\"cluster\": " << r.top_clusters[i].cluster
           << ", \"delta\": " << r.top_clusters[i].delta << "}";
      }
      os << "]}";
    }
  }
  os << "\n  },\n"
     << "  \"service\": {\n"
     << "    \"requests\": " << stats.service.requests << ",\n"
     << "    \"plans\": " << stats.service.plans << ",\n"
     << "    \"encoded_plans\": " << stats.service.encoded_plans << ",\n"
     << "    \"plans_per_second\": " << stats.service.plans_per_second
     << ",\n"
     << "    \"p50_ms\": " << stats.service.p50_ms << ",\n"
     << "    \"p99_ms\": " << stats.service.p99_ms << ",\n"
     << "    \"cache_hits\": " << stats.service.cache.hits << ",\n"
     << "    \"cache_misses\": " << stats.service.cache.misses << ",\n"
     << "    \"cache_evictions\": " << stats.service.cache.evictions << ",\n"
     << "    \"cache_entries\": " << stats.service.cache.entries << ",\n"
     << "    \"cache_hit_rate\": " << stats.service.cache.HitRate() << "\n"
     << "  },\n"
     << "  \"tenants\": {";
  bool first = true;
  for (const auto& [name, counters] : stats.tenants) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    \"" << name << "\": {"
       << "\"admitted\": " << counters.admitted
       << ", \"completed\": " << counters.completed
       << ", \"plans\": " << counters.plans
       << ", \"shed_quota\": " << counters.shed_quota
       << ", \"shed_queue_full\": " << counters.shed_queue_full
       << ", \"shed_draining\": " << counters.shed_draining
       << ", \"shed_deadline\": " << counters.shed_deadline
       << ", \"deadline_missed\": " << counters.deadline_missed
       << ", \"queue_depth\": " << counters.queue_depth << "}";
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

}  // namespace qpe::serve
