#include "serve/daemon.h"

#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "plan/serialize.h"
#include "serve/warm_state.h"
#include "util/fault_injection.h"

namespace qpe::serve {

namespace {

constexpr double kInfiniteDeadline = std::numeric_limits<double>::infinity();
constexpr int kPollTimeoutMs = 50;

}  // namespace

// One client connection. The IO thread owns the receive buffer and the
// lifetime (it alone erases connections from its map); workers hold a
// shared_ptr and write responses under write_mu, so a response to a
// connection that died mid-encode lands on a closed flag, not a dangling
// fd.
struct ServingDaemon::Connection {
  util::UniqueFd fd;
  std::mutex write_mu;
  std::atomic<bool> closed{false};
  std::string in_buf;  // IO thread only
};

ServingDaemon::ServingDaemon(const encoder::PlanSequenceEncoder* encoder,
                             const ServingDaemonConfig& config)
    : encoder_(encoder),
      config_(config),
      service_(std::make_unique<EmbeddingService>(encoder, config.service)),
      admission_(std::make_unique<AdmissionController>(config.admission)) {}

ServingDaemon::~ServingDaemon() {
  if (started_.load() && !stopped_.load()) Stop();
}

double ServingDaemon::Now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_time_)
      .count();
}

util::Status ServingDaemon::Start() {
  if (started_.exchange(true)) {
    return util::FailedPreconditionError("daemon already started");
  }
  start_time_ = std::chrono::steady_clock::now();
  if (!drain_pipe_.valid()) {
    return util::IoError("cannot create the drain self-pipe");
  }
  util::StatusOr<util::UniqueFd> listener =
      util::ListenUnix(config_.socket_path, config_.listen_backlog);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  if (util::Status s = util::SetNonBlocking(listener_.get()); !s.ok()) {
    return s;
  }
  if (config_.install_signal_handlers) {
    if (util::Status s = util::InstallShutdownSignalHandler(&drain_pipe_);
        !s.ok()) {
      return s;
    }
  }

  // Warm restore: best effort — a missing, corrupt, or wrong-model
  // snapshot starts cold, it never blocks startup.
  if (!config_.warm_state_path.empty() && service_->cache() != nullptr &&
      WarmStateExists(config_.warm_state_path)) {
    WarmState warm;
    util::Status s = LoadWarmState(config_.warm_state_path,
                                   config_.model_fingerprint, &warm);
    if (s.ok()) {
      service_->cache()->Restore(std::move(warm.entries));
      warm_restored_entries_.store(service_->cache()->GetStats().entries);
      std::fprintf(stderr, "qpe_served: warm cache restored: %zu entries\n",
                   static_cast<size_t>(warm_restored_entries_.load()));
    } else {
      std::fprintf(stderr, "qpe_served: warm restore skipped: %s\n",
                   s.ToString().c_str());
    }
  }

  workers_.reserve(static_cast<size_t>(std::max(config_.workers, 1)));
  workers_running_.store(std::max(config_.workers, 1));
  for (int i = 0; i < std::max(config_.workers, 1); ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  io_thread_ = std::thread([this] { IoLoop(); });
  return util::OkStatus();
}

void ServingDaemon::TriggerDrain() { drain_pipe_.Notify(); }

void ServingDaemon::Join() {
  std::lock_guard<std::mutex> lock(join_mu_);
  if (io_thread_.joinable()) io_thread_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  stopped_.store(true);
}

void ServingDaemon::Stop() {
  TriggerDrain();
  Join();
}

void ServingDaemon::SendFrame(const ConnPtr& conn, FrameType type,
                              std::string_view payload) {
  if (conn->closed.load(std::memory_order_acquire)) return;
  const std::string frame = EncodeFrame(type, payload);
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (conn->closed.load(std::memory_order_acquire)) return;
  if (util::Status s = util::WriteFull(conn->fd.get(), frame.data(),
                                       frame.size());
      !s.ok()) {
    // Slow consumer (SO_SNDTIMEO), hangup, or injected fault: this
    // connection is done, the daemon is not.
    io_errors_.fetch_add(1, std::memory_order_relaxed);
    conn->closed.store(true, std::memory_order_release);
  }
}

void ServingDaemon::SendError(const ConnPtr& conn, WireError code,
                              uint32_t retry_after_ms, std::string message) {
  ErrorResponse error;
  error.code = code;
  error.retry_after_ms = retry_after_ms;
  error.message = std::move(message);
  SendFrame(conn, FrameType::kErrorResponse,
            EncodeErrorResponsePayload(error));
}

void ServingDaemon::HandleEncodeRequest(const ConnPtr& conn,
                                        std::string payload) {
  // Admission runs on the head fields only — tenant, deadline, cost — so
  // shedding a request under overload never pays for plan parsing.
  util::StatusOr<EncodeRequestHead> head =
      PeekEncodeRequestHead(payload, config_.max_plans_per_request);
  if (!head.ok()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    SendError(conn, WireError::kInvalidArgument, 0, head.status().ToString());
    return;
  }
  const double now = Now();
  QueuedRequest request;
  request.tenant = head->tenant;
  request.cost = head->plan_count;
  request.deadline = head->deadline_ms == kNoDeadline
                         ? kInfiniteDeadline
                         : now + head->deadline_ms * 1e-3;
  request.payload = std::move(payload);
  request.context = conn;
  const AdmissionController::Result result =
      admission_->Offer(std::move(request), now);
  switch (result.decision) {
    case AdmissionController::Decision::kAdmitted:
      return;  // a worker will respond
    case AdmissionController::Decision::kShedDraining:
      SendError(conn, WireError::kUnavailable, result.retry_after_ms,
                "daemon is draining");
      return;
    case AdmissionController::Decision::kShedDeadline:
      SendError(conn, WireError::kDeadlineExceeded, 0,
                "deadline expired before admission");
      return;
    case AdmissionController::Decision::kShedQuota:
      SendError(conn, WireError::kResourceExhausted, result.retry_after_ms,
                result.retry_after_ms == kRetryNever
                    ? "tenant quota can never cover this request"
                    : "tenant quota exhausted");
      return;
    case AdmissionController::Decision::kShedQueueFull:
      SendError(conn, WireError::kResourceExhausted, result.retry_after_ms,
                "tenant queue is full");
      return;
  }
}

void ServingDaemon::HandleFrame(const ConnPtr& conn, Frame frame) {
  switch (frame.type) {
    case FrameType::kEncodeRequest:
      HandleEncodeRequest(conn, std::move(frame.payload));
      return;
    case FrameType::kStatsRequest:
      SendFrame(conn, FrameType::kStatsResponse, StatsJson());
      return;
    case FrameType::kPingRequest:
      SendFrame(conn, FrameType::kPongResponse, "");
      return;
    default:
      // A client sending response-typed frames is confused; treat as a
      // protocol error and drop the connection.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      SendError(conn, WireError::kInvalidArgument, 0,
                "unexpected frame type on the request channel");
      conn->closed.store(true, std::memory_order_release);
      return;
  }
}

void ServingDaemon::ProcessWork(QueuedRequest work) {
  const ConnPtr conn = std::static_pointer_cast<Connection>(work.context);
  // Deadline re-check at dequeue: queued work whose budget lapsed is
  // cancelled without touching the encoder — that is what keeps a backlog
  // from wasting capacity on responses nobody is waiting for anymore.
  if (Now() > work.deadline) {
    admission_->RecordDeadlineMissed(work.tenant);
    SendError(conn, WireError::kDeadlineExceeded, 0,
              "deadline expired while queued");
    return;
  }
  util::StatusOr<EncodeRequest> request = ParseEncodeRequestPayload(
      work.payload, config_.max_plans_per_request);
  if (!request.ok()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    SendError(conn, WireError::kInvalidArgument, 0,
              request.status().ToString());
    admission_->RecordCompleted(work.tenant);
    return;
  }
  std::vector<std::unique_ptr<plan::PlanNode>> plans;
  plans.reserve(request->plans.size());
  for (size_t i = 0; i < request->plans.size(); ++i) {
    util::StatusOr<std::unique_ptr<plan::PlanNode>> parsed =
        plan::ParsePlanNodeChecked(request->plans[i]);
    if (!parsed.ok()) {
      SendError(conn, WireError::kInvalidArgument, 0,
                "plan " + std::to_string(i) + ": " +
                    parsed.status().ToString());
      admission_->RecordCompleted(work.tenant);
      return;
    }
    plans.push_back(std::move(*parsed));
  }
  std::vector<const plan::PlanNode*> ptrs;
  ptrs.reserve(plans.size());
  for (const auto& p : plans) ptrs.push_back(p.get());

  const std::vector<nn::Tensor> embeddings = service_->EncodeAll(ptrs);
  EncodeResponse response;
  response.dim = static_cast<uint32_t>(encoder_->output_dim());
  response.embeddings.reserve(embeddings.size());
  for (const nn::Tensor& e : embeddings) {
    response.embeddings.push_back(e.value());
  }
  SendFrame(conn, FrameType::kEncodeResponse,
            EncodeEncodeResponsePayload(response));
  // The encode ran to completion whether or not the client stuck around to
  // read the response, so `completed` counts it either way — keeping the
  // invariant admitted == completed + deadline_missed for every tenant.
  admission_->RecordCompleted(work.tenant);
  completed_since_snapshot_.fetch_add(1, std::memory_order_relaxed);
}

void ServingDaemon::WorkerLoop() {
  while (true) {
    std::optional<QueuedRequest> work = admission_->PopBlocking();
    if (!work.has_value()) break;  // draining/aborted and queues empty
    ProcessWork(std::move(*work));
  }
  workers_running_.fetch_sub(1, std::memory_order_acq_rel);
}

void ServingDaemon::MaybeSnapshot(bool force) {
  if (config_.warm_state_path.empty() || service_->cache() == nullptr) return;
  if (!force) {
    if (config_.snapshot_every_requests == 0) return;
    if (completed_since_snapshot_.load(std::memory_order_relaxed) <
        config_.snapshot_every_requests) {
      return;
    }
  }
  completed_since_snapshot_.store(0, std::memory_order_relaxed);
  WarmState warm;
  warm.model_fingerprint = config_.model_fingerprint;
  warm.dim = static_cast<uint32_t>(encoder_->output_dim());
  warm.entries = service_->cache()->Snapshot();
  if (warm.entries.empty()) return;  // nothing worth persisting
  if (util::Status s = SaveWarmState(config_.warm_state_path, warm); s.ok()) {
    snapshots_written_.fetch_add(1, std::memory_order_relaxed);
  } else {
    // A failed snapshot (disk full, injected fault) degrades warm restart,
    // not serving; the crash-safe writer left no torn file behind.
    io_errors_.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr, "qpe_served: warm snapshot failed: %s\n",
                 s.ToString().c_str());
  }
}

void ServingDaemon::IoLoop() {
  std::map<int, ConnPtr> conns;
  bool listener_open = true;
  double drain_start = 0;
  bool drain_aborted = false;

  const auto close_conn = [&](int fd) {
    auto it = conns.find(fd);
    if (it == conns.end()) return;
    it->second->closed.store(true, std::memory_order_release);
    conns.erase(it);
    connections_open_.store(conns.size(), std::memory_order_relaxed);
  };

  while (true) {
    std::vector<pollfd> fds;
    fds.push_back({drain_pipe_.read_fd(), POLLIN, 0});
    if (listener_open) fds.push_back({listener_.get(), POLLIN, 0});
    for (const auto& [fd, conn] : conns) fds.push_back({fd, POLLIN, 0});
    const int ready = ::poll(fds.data(), fds.size(), kPollTimeoutMs);
    if (ready < 0 && errno != EINTR) break;  // poll itself failed: bail out

    // 1. Shutdown signal (SIGTERM/SIGINT via self-pipe, or TriggerDrain).
    if (drain_pipe_.Drain() && !draining_.load()) {
      draining_.store(true, std::memory_order_release);
      admission_->SetDraining();  // new work -> UNAVAILABLE; queues flush
      listener_.Reset();          // stop accepting
      listener_open = false;
      drain_start = Now();
    }

    // 2. New connections.
    if (listener_open) {
      while (true) {
        if (util::Status s = util::InjectFault("daemon.accept"); !s.ok()) {
          io_errors_.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        const int fd = ::accept(listener_.get(), nullptr, nullptr);
        if (fd < 0) {
          if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
            io_errors_.fetch_add(1, std::memory_order_relaxed);
          }
          break;
        }
        // Reads are multiplexed with MSG_DONTWAIT; writes stay blocking
        // with a send timeout so a stalled consumer cannot pin a worker.
        if (config_.write_timeout_seconds > 0) {
          timeval tv{};
          tv.tv_sec = static_cast<time_t>(config_.write_timeout_seconds);
          tv.tv_usec = static_cast<suseconds_t>(
              (config_.write_timeout_seconds - static_cast<double>(tv.tv_sec)) *
              1e6);
          ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
        }
        auto conn = std::make_shared<Connection>();
        conn->fd.Reset(fd);
        conns.emplace(fd, std::move(conn));
        connections_accepted_.fetch_add(1, std::memory_order_relaxed);
        connections_open_.store(conns.size(), std::memory_order_relaxed);
      }
    }

    // 3. Connection reads: accumulate bytes, extract complete frames.
    std::vector<int> dead;
    for (auto& [fd, conn] : conns) {
      if (conn->closed.load(std::memory_order_acquire)) {
        dead.push_back(fd);
        continue;
      }
      char buf[4096];
      bool conn_dead = false;
      while (true) {
        if (util::Status s = util::InjectFault("daemon.conn.read"); !s.ok()) {
          io_errors_.fetch_add(1, std::memory_order_relaxed);
          conn_dead = true;
          break;
        }
        const ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
        if (n > 0) {
          conn->in_buf.append(buf, static_cast<size_t>(n));
          if (static_cast<ssize_t>(sizeof(buf)) == n) continue;
          break;
        }
        if (n == 0) {  // peer hung up (possibly mid-frame: dropped cleanly)
          conn_dead = true;
        } else if (errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR) {
          io_errors_.fetch_add(1, std::memory_order_relaxed);
          conn_dead = true;
        }
        break;
      }
      while (!conn_dead) {
        Frame frame;
        size_t consumed = 0;
        util::Status error;
        const FrameParse parse =
            NextFrame(conn->in_buf, config_.max_payload_bytes, &frame,
                      &consumed, &error);
        if (parse == FrameParse::kNeedMore) break;
        if (parse == FrameParse::kError) {
          // Garbage on the wire: answer with a typed error (best effort —
          // the stream is unframed now) and drop the connection.
          protocol_errors_.fetch_add(1, std::memory_order_relaxed);
          SendError(conn, WireError::kInvalidArgument, 0, error.ToString());
          conn_dead = true;
          break;
        }
        conn->in_buf.erase(0, consumed);
        HandleFrame(conn, std::move(frame));
        if (conn->closed.load(std::memory_order_acquire)) {
          conn_dead = true;
          break;
        }
      }
      if (conn_dead) dead.push_back(fd);
    }
    for (const int fd : dead) close_conn(fd);

    // 4. Periodic warm snapshot.
    if (!draining_.load()) MaybeSnapshot(/*force=*/false);

    // 5. Drain state machine.
    if (draining_.load()) {
      const bool workers_done = workers_running_.load() == 0;
      const bool overdue = Now() - drain_start > config_.drain_deadline_seconds;
      if (overdue && !drain_aborted) {
        // Admitted work we could not flush in time: fail it with a typed
        // error rather than serving it late into a closed window.
        drain_aborted = true;
        for (QueuedRequest& request : admission_->Abort()) {
          SendError(std::static_pointer_cast<Connection>(request.context),
                    WireError::kUnavailable, 0,
                    "daemon drain deadline exceeded");
        }
      }
      if (workers_done) {
        // Everything admitted has been answered (or failed above). Close
        // out: connections, final snapshot, exit.
        for (auto& [fd, conn] : conns) {
          conn->closed.store(true, std::memory_order_release);
        }
        conns.clear();
        connections_open_.store(0, std::memory_order_relaxed);
        MaybeSnapshot(/*force=*/true);
        break;
      }
    }
  }
}

DaemonStats ServingDaemon::GetStats() const {
  DaemonStats stats;
  stats.draining = draining_.load();
  stats.connections_accepted = connections_accepted_.load();
  stats.connections_open = connections_open_.load();
  stats.protocol_errors = protocol_errors_.load();
  stats.io_errors = io_errors_.load();
  stats.warm_restored_entries = warm_restored_entries_.load();
  stats.snapshots_written = snapshots_written_.load();
  stats.service = service_->GetStats();
  stats.tenants = admission_->CountersSnapshot();
  return stats;
}

std::string ServingDaemon::StatsJson() const {
  const DaemonStats stats = GetStats();
  std::ostringstream os;
  os.precision(6);
  os << "{\n"
     << "  \"draining\": " << (stats.draining ? "true" : "false") << ",\n"
     << "  \"connections_accepted\": " << stats.connections_accepted << ",\n"
     << "  \"connections_open\": " << stats.connections_open << ",\n"
     << "  \"protocol_errors\": " << stats.protocol_errors << ",\n"
     << "  \"io_errors\": " << stats.io_errors << ",\n"
     << "  \"warm_restored_entries\": " << stats.warm_restored_entries
     << ",\n"
     << "  \"snapshots_written\": " << stats.snapshots_written << ",\n"
     << "  \"model_fingerprint\": " << config_.model_fingerprint << ",\n"
     << "  \"service\": {\n"
     << "    \"requests\": " << stats.service.requests << ",\n"
     << "    \"plans\": " << stats.service.plans << ",\n"
     << "    \"encoded_plans\": " << stats.service.encoded_plans << ",\n"
     << "    \"plans_per_second\": " << stats.service.plans_per_second
     << ",\n"
     << "    \"p50_ms\": " << stats.service.p50_ms << ",\n"
     << "    \"p99_ms\": " << stats.service.p99_ms << ",\n"
     << "    \"cache_hits\": " << stats.service.cache.hits << ",\n"
     << "    \"cache_misses\": " << stats.service.cache.misses << ",\n"
     << "    \"cache_evictions\": " << stats.service.cache.evictions << ",\n"
     << "    \"cache_entries\": " << stats.service.cache.entries << ",\n"
     << "    \"cache_hit_rate\": " << stats.service.cache.HitRate() << "\n"
     << "  },\n"
     << "  \"tenants\": {";
  bool first = true;
  for (const auto& [name, counters] : stats.tenants) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    \"" << name << "\": {"
       << "\"admitted\": " << counters.admitted
       << ", \"completed\": " << counters.completed
       << ", \"plans\": " << counters.plans
       << ", \"shed_quota\": " << counters.shed_quota
       << ", \"shed_queue_full\": " << counters.shed_queue_full
       << ", \"shed_draining\": " << counters.shed_draining
       << ", \"shed_deadline\": " << counters.shed_deadline
       << ", \"deadline_missed\": " << counters.deadline_missed
       << ", \"queue_depth\": " << counters.queue_depth << "}";
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

}  // namespace qpe::serve
