#include "serve/warm_state.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <sys/stat.h>

#ifdef __unix__
#include <fcntl.h>
#include <unistd.h>
#endif

#include "util/checksum.h"
#include "util/fault_injection.h"

namespace qpe::serve {

namespace {

constexpr uint32_t kWarmMagic = 0x57455051;  // "QPEW" little-endian
constexpr uint32_t kWarmVersion = 1;
constexpr size_t kHeaderSize = 4 + 4 + 8 + 4;

void PutBytes(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}
void PutU32(std::string* out, uint32_t v) { PutBytes(out, &v, sizeof(v)); }
void PutU64(std::string* out, uint64_t v) { PutBytes(out, &v, sizeof(v)); }

#ifdef __unix__
util::Status FsyncPath(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return util::IoError("cannot reopen '" + path + "' for fsync");
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return util::IoError("fsync of '" + path + "' failed");
  return util::OkStatus();
}
#endif

}  // namespace

bool WarmStateExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

util::Status SaveWarmState(const std::string& path, const WarmState& state) {
  std::string payload;
  payload.reserve(16 + state.entries.size() *
                           (8 + state.dim * sizeof(float)));
  PutU64(&payload, state.model_fingerprint);
  PutU32(&payload, state.dim);
  PutU32(&payload, static_cast<uint32_t>(state.entries.size()));
  for (const auto& [key, embedding] : state.entries) {
    if (embedding.size() != state.dim) {
      return util::InvalidArgumentError(
          "warm-state entry has " + std::to_string(embedding.size()) +
          " float(s), expected dim " + std::to_string(state.dim));
    }
    PutU64(&payload, key);
    PutBytes(&payload, embedding.data(), embedding.size() * sizeof(float));
  }
  const uint32_t crc = util::Crc32(payload);

  const std::string tmp_path = path + ".tmp";
  // Any failure past this point must not leave a stray temp file behind.
  auto fail = [&tmp_path](util::Status s) {
    std::remove(tmp_path.c_str());
    return s;
  };
  if (util::Status s = util::InjectFault("warm_state.open_tmp"); !s.ok()) {
    return fail(std::move(s));
  }
  {
    std::ofstream os(tmp_path, std::ios::binary | std::ios::trunc);
    if (!os) {
      return util::IoError("cannot open '" + tmp_path + "' for writing");
    }
    std::string header;
    PutU32(&header, kWarmMagic);
    PutU32(&header, kWarmVersion);
    PutU64(&header, payload.size());
    PutU32(&header, crc);
    os.write(header.data(), static_cast<std::streamsize>(header.size()));
    if (util::Status s = util::InjectFault("warm_state.write"); !s.ok()) {
      return fail(std::move(s));
    }
    os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    os.flush();
    if (util::Status s = util::InjectFault("warm_state.flush"); !s.ok()) {
      return fail(std::move(s));
    }
    if (!os) return fail(util::IoError("write to '" + tmp_path + "' failed"));
  }
#ifdef __unix__
  // Durability: the data must be on disk *before* the rename publishes it.
  if (util::Status s = FsyncPath(tmp_path); !s.ok()) return fail(std::move(s));
#endif
  if (util::Status s = util::InjectFault("warm_state.rename"); !s.ok()) {
    return fail(std::move(s));
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return fail(util::IoError("atomic rename '" + tmp_path + "' -> '" + path +
                              "' failed"));
  }
  return util::OkStatus();
}

util::Status LoadWarmState(const std::string& path,
                           uint64_t expected_fingerprint, WarmState* state) {
  if (util::Status s = util::InjectFault("warm_state.read.open"); !s.ok()) {
    return s;
  }
  std::ifstream is(path, std::ios::binary);
  if (!is) return util::NotFoundError("cannot open warm state '" + path + "'");
  std::ostringstream buffer(std::ios::binary);
  buffer << is.rdbuf();
  if (util::Status s = util::InjectFault("warm_state.read"); !s.ok()) return s;
  if (is.bad()) return util::IoError("read of warm state '" + path + "' failed");
  const std::string file = buffer.str();

  if (file.size() < kHeaderSize) {
    return util::DataLossError("warm state '" + path + "' is " +
                               std::to_string(file.size()) +
                               " byte(s), smaller than the header");
  }
  uint32_t magic = 0, version = 0, crc = 0;
  uint64_t payload_size = 0;
  std::memcpy(&magic, file.data(), 4);
  std::memcpy(&version, file.data() + 4, 4);
  std::memcpy(&payload_size, file.data() + 8, 8);
  std::memcpy(&crc, file.data() + 16, 4);
  if (magic != kWarmMagic) {
    return util::DataLossError("warm state '" + path + "' has bad magic");
  }
  if (version != kWarmVersion) {
    return util::DataLossError("warm state '" + path + "' has version " +
                               std::to_string(version) + ", expected " +
                               std::to_string(kWarmVersion));
  }
  if (file.size() - kHeaderSize != payload_size) {
    return util::DataLossError(
        "warm state '" + path + "' payload is " +
        std::to_string(file.size() - kHeaderSize) + " byte(s), header claims " +
        std::to_string(payload_size));
  }
  const std::string_view payload(file.data() + kHeaderSize, payload_size);
  if (util::Crc32(payload) != crc) {
    return util::DataLossError("warm state '" + path + "' payload CRC mismatch");
  }

  // Stage everything before committing to *state.
  WarmState staged;
  size_t pos = 0;
  auto read_bytes = [&](void* out, size_t size,
                        const char* what) -> util::Status {
    if (size > payload.size() - pos) {
      return util::DataLossError(std::string("warm state truncated reading ") +
                                 what + " at offset " + std::to_string(pos));
    }
    std::memcpy(out, payload.data() + pos, size);
    pos += size;
    return util::OkStatus();
  };
  if (util::Status s = read_bytes(&staged.model_fingerprint, 8, "fingerprint");
      !s.ok())
    return s;
  if (util::Status s = read_bytes(&staged.dim, 4, "dim"); !s.ok()) return s;
  uint32_t count = 0;
  if (util::Status s = read_bytes(&count, 4, "entry count"); !s.ok()) return s;
  const size_t entry_bytes = 8 + static_cast<size_t>(staged.dim) * sizeof(float);
  if (staged.dim == 0 || count > (payload.size() - pos) / entry_bytes) {
    return util::DataLossError(
        "warm state claims " + std::to_string(count) + " entries of dim " +
        std::to_string(staged.dim) + " but only " +
        std::to_string(payload.size() - pos) + " byte(s) remain");
  }
  staged.entries.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (util::Status s = read_bytes(&staged.entries[i].first, 8, "entry key");
        !s.ok())
      return s;
    staged.entries[i].second.resize(staged.dim);
    if (util::Status s =
            read_bytes(staged.entries[i].second.data(),
                       staged.dim * sizeof(float), "entry embedding");
        !s.ok())
      return s;
  }
  if (pos != payload.size()) {
    return util::DataLossError("warm state has " +
                               std::to_string(payload.size() - pos) +
                               " trailing byte(s)");
  }
  if (expected_fingerprint != 0 &&
      staged.model_fingerprint != expected_fingerprint) {
    return util::FailedPreconditionError(
        "warm state '" + path + "' was produced by model fingerprint " +
        std::to_string(staged.model_fingerprint) + ", serving model is " +
        std::to_string(expected_fingerprint) + " — starting cold");
  }
  *state = std::move(staged);
  return util::OkStatus();
}

uint64_t ModelFingerprint(const nn::Module& module) {
  uint32_t crc = 0;
  uint64_t params = 0;
  for (const auto& [name, tensor] : module.NamedParameters()) {
    crc = util::Crc32(name.data(), name.size(), crc);
    crc = util::Crc32(tensor.value().data(),
                      tensor.value().size() * sizeof(float), crc);
    ++params;
  }
  return (params << 32) | crc;
}

uint64_t QuantizedModelFingerprint(const nn::Module& fp32) {
  // A fixed tag keeps the two engines' caches mutually exclusive; the
  // constant is arbitrary but stable across builds.
  return ModelFingerprint(fp32) ^ 0x5154385F5154385FULL;  // "QT8_QT8_"
}

}  // namespace qpe::serve
