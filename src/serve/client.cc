#include "serve/client.h"

#include <cstring>
#include <utility>

namespace qpe::serve {

namespace {

// Maps a typed daemon error to the Status a caller sees. kInvalidArgument
// keeps its code; everything else (shed, deadline, draining, internal) is a
// precondition of the daemon's current state, not of the caller's input.
util::Status WireErrorToStatus(const ErrorResponse& error) {
  std::string text = std::string("daemon: ") + WireErrorName(error.code) +
                     ": " + error.message;
  if (error.code == WireError::kInvalidArgument) {
    return util::InvalidArgumentError(std::move(text));
  }
  return util::FailedPreconditionError(std::move(text));
}

}  // namespace

util::StatusOr<DaemonClient> DaemonClient::Connect(
    const std::string& socket_path) {
  util::StatusOr<util::UniqueFd> fd = util::ConnectUnix(socket_path);
  if (!fd.ok()) return fd.status();
  DaemonClient client;
  client.fd_ = std::move(*fd);
  return client;
}

util::StatusOr<Frame> DaemonClient::RoundTrip(FrameType type,
                                              std::string_view payload) {
  if (!fd_.valid()) {
    return util::FailedPreconditionError("client is not connected");
  }
  const std::string frame = EncodeFrame(type, payload);
  if (util::Status s = util::WriteFull(fd_.get(), frame.data(), frame.size());
      !s.ok()) {
    fd_.Reset();
    return s;
  }

  char header[kFrameHeaderSize];
  if (util::Status s = util::ReadFull(fd_.get(), header, sizeof(header));
      !s.ok()) {
    fd_.Reset();
    if (s.code() == util::StatusCode::kNotFound) {
      // Clean hangup where a response was owed: the daemon dropped us
      // (protocol error, drain deadline, write timeout).
      return util::IoError("daemon closed the connection before responding");
    }
    return s;
  }
  uint32_t magic = 0, payload_size = 0;
  uint8_t version = 0, raw_type = 0;
  uint16_t reserved = 0;
  std::memcpy(&magic, header, 4);
  std::memcpy(&version, header + 4, 1);
  std::memcpy(&raw_type, header + 5, 1);
  std::memcpy(&reserved, header + 6, 2);
  std::memcpy(&payload_size, header + 8, 4);
  if (magic != kWireMagic || version != kWireVersion || reserved != 0) {
    fd_.Reset();
    return util::DataLossError("daemon response has a corrupt frame header");
  }
  if (payload_size > max_payload_bytes_) {
    fd_.Reset();
    return util::DataLossError("daemon response payload of " +
                               std::to_string(payload_size) +
                               " byte(s) exceeds the client limit");
  }
  Frame response;
  response.type = static_cast<FrameType>(raw_type);
  response.payload.resize(payload_size);
  if (payload_size > 0) {
    if (util::Status s =
            util::ReadFull(fd_.get(), response.payload.data(), payload_size);
        !s.ok()) {
      fd_.Reset();
      return s;
    }
  }
  return response;
}

util::Status DaemonClient::Ping() {
  util::StatusOr<Frame> response = RoundTrip(FrameType::kPingRequest, "");
  if (!response.ok()) return response.status();
  if (response->type != FrameType::kPongResponse) {
    return util::DataLossError("expected PONG, got frame type " +
                               std::to_string(static_cast<int>(response->type)));
  }
  return util::OkStatus();
}

util::StatusOr<EncodeResponse> DaemonClient::Encode(
    const EncodeRequest& request, ErrorResponse* typed_error) {
  const std::string payload = EncodeEncodeRequestPayload(request);
  util::StatusOr<Frame> response =
      RoundTrip(FrameType::kEncodeRequest, payload);
  if (!response.ok()) return response.status();
  if (response->type == FrameType::kErrorResponse) {
    util::StatusOr<ErrorResponse> error =
        ParseErrorResponsePayload(response->payload);
    if (!error.ok()) return error.status();
    if (typed_error != nullptr) *typed_error = *error;
    return WireErrorToStatus(*error);
  }
  if (response->type != FrameType::kEncodeResponse) {
    return util::DataLossError("expected ENCODE response, got frame type " +
                               std::to_string(static_cast<int>(response->type)));
  }
  return ParseEncodeResponsePayload(response->payload);
}

util::StatusOr<std::string> DaemonClient::StatsJson() {
  util::StatusOr<Frame> response = RoundTrip(FrameType::kStatsRequest, "");
  if (!response.ok()) return response.status();
  if (response->type == FrameType::kErrorResponse) {
    util::StatusOr<ErrorResponse> error =
        ParseErrorResponsePayload(response->payload);
    if (!error.ok()) return error.status();
    return WireErrorToStatus(*error);
  }
  if (response->type != FrameType::kStatsResponse) {
    return util::DataLossError("expected STATS response, got frame type " +
                               std::to_string(static_cast<int>(response->type)));
  }
  return std::move(response->payload);
}

}  // namespace qpe::serve
