#include "serve/client.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace qpe::serve {

namespace {

// Maps a typed daemon error to the Status a caller sees. kInvalidArgument
// keeps its code; everything else (shed, deadline, draining, internal) is a
// precondition of the daemon's current state, not of the caller's input.
util::Status WireErrorToStatus(const ErrorResponse& error) {
  std::string text = std::string("daemon: ") + WireErrorName(error.code) +
                     ": " + error.message;
  if (error.code == WireError::kInvalidArgument) {
    return util::InvalidArgumentError(std::move(text));
  }
  return util::FailedPreconditionError(std::move(text));
}

// splitmix64 finalizer — the deterministic jitter stream. Seeded per
// (policy.jitter_seed, retry index) so every retry of every client draws a
// distinct but replayable offset.
uint64_t JitterMix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// True iff the typed error invites a retry. kRetryNever means the request
// can never be admitted (zero-quota tenant, request larger than the burst).
bool TypedErrorRetryable(const ErrorResponse& error) {
  if (error.retry_after_ms == kRetryNever) return false;
  return error.code == WireError::kResourceExhausted ||
         error.code == WireError::kUnavailable;
}

}  // namespace

util::StatusOr<DaemonClient> DaemonClient::Connect(
    const std::string& socket_path) {
  util::StatusOr<util::UniqueFd> fd = util::ConnectUnix(socket_path);
  if (!fd.ok()) return fd.status();
  DaemonClient client;
  client.fd_ = std::move(*fd);
  client.socket_path_ = socket_path;
  return client;
}

util::StatusOr<Frame> DaemonClient::RoundTrip(FrameType type,
                                              std::string_view payload) {
  if (!fd_.valid()) {
    return util::FailedPreconditionError("client is not connected");
  }
  const std::string frame = EncodeFrame(type, payload);
  if (util::Status s = util::WriteFull(fd_.get(), frame.data(), frame.size());
      !s.ok()) {
    fd_.Reset();
    return s;
  }

  char header[kFrameHeaderSize];
  if (util::Status s = util::ReadFull(fd_.get(), header, sizeof(header));
      !s.ok()) {
    fd_.Reset();
    if (s.code() == util::StatusCode::kNotFound) {
      // Clean hangup where a response was owed: the daemon dropped us
      // (protocol error, drain deadline, write timeout).
      return util::IoError("daemon closed the connection before responding");
    }
    return s;
  }
  uint32_t magic = 0, payload_size = 0;
  uint8_t version = 0, raw_type = 0;
  uint16_t reserved = 0;
  std::memcpy(&magic, header, 4);
  std::memcpy(&version, header + 4, 1);
  std::memcpy(&raw_type, header + 5, 1);
  std::memcpy(&reserved, header + 6, 2);
  std::memcpy(&payload_size, header + 8, 4);
  if (magic != kWireMagic || version < kWireVersionMin ||
      version > kWireVersion || reserved != 0) {
    fd_.Reset();
    return util::DataLossError("daemon response has a corrupt frame header");
  }
  if (payload_size > max_payload_bytes_) {
    fd_.Reset();
    return util::DataLossError("daemon response payload of " +
                               std::to_string(payload_size) +
                               " byte(s) exceeds the client limit");
  }
  Frame response;
  response.type = static_cast<FrameType>(raw_type);
  response.payload.resize(payload_size);
  if (payload_size > 0) {
    if (util::Status s =
            util::ReadFull(fd_.get(), response.payload.data(), payload_size);
        !s.ok()) {
      fd_.Reset();
      return s;
    }
  }
  return response;
}

util::Status DaemonClient::Ping() {
  util::StatusOr<Frame> response = RoundTrip(FrameType::kPingRequest, "");
  if (!response.ok()) return response.status();
  if (response->type != FrameType::kPongResponse) {
    return util::DataLossError("expected PONG, got frame type " +
                               std::to_string(static_cast<int>(response->type)));
  }
  return util::OkStatus();
}

util::StatusOr<EncodeResponse> DaemonClient::Encode(
    const EncodeRequest& request, ErrorResponse* typed_error) {
  const std::string payload = EncodeEncodeRequestPayload(request);
  util::StatusOr<Frame> response =
      RoundTrip(FrameType::kEncodeRequest, payload);
  if (!response.ok()) return response.status();
  if (response->type == FrameType::kErrorResponse) {
    util::StatusOr<ErrorResponse> error =
        ParseErrorResponsePayload(response->payload);
    if (!error.ok()) return error.status();
    if (typed_error != nullptr) *typed_error = *error;
    return WireErrorToStatus(*error);
  }
  if (response->type != FrameType::kEncodeResponse) {
    return util::DataLossError("expected ENCODE response, got frame type " +
                               std::to_string(static_cast<int>(response->type)));
  }
  return ParseEncodeResponsePayload(response->payload);
}

util::StatusOr<EncodeResponse> DaemonClient::EncodeWithRetry(
    const EncodeRequest& request, const RetryPolicy& policy,
    ErrorResponse* typed_error, RetryStats* retry_stats) {
  util::StatusOr<EncodeResponse> result =
      util::FailedPreconditionError("no attempt made");
  int reconnects_left = policy.max_reconnects;
  for (int attempt = 0; attempt <= std::max(policy.max_retries, 0);
       ++attempt) {
    ErrorResponse error;
    // Sentinel: Encode only writes *typed_error when the daemon answered
    // with an ERROR frame, so a zero code afterwards means transport-level
    // failure (wire codes start at 1).
    error.code = static_cast<WireError>(0);
    if (retry_stats != nullptr) ++retry_stats->attempts;
    result = Encode(request, &error);
    if (result.ok()) {
      if (typed_error != nullptr) *typed_error = ErrorResponse{};
      return result;
    }
    const bool got_typed = error.code != static_cast<WireError>(0);
    if (typed_error != nullptr) {
      *typed_error = got_typed ? error : ErrorResponse{};
    }
    if (attempt == policy.max_retries) break;  // budget spent

    uint32_t hint_ms = 0;
    if (got_typed) {
      // A typed daemon error: retry only the shed family, and only when
      // the daemon's hint says a retry can ever succeed.
      if (!TypedErrorRetryable(error)) break;
      hint_ms = error.retry_after_ms;
    } else if (!connected()) {
      // Transport loss — EOF or broken pipe dropped the connection. A
      // bounded number of reconnects covers a daemon restart (warm
      // restarts are the normal deployment path); past the budget the
      // daemon is genuinely gone.
      if (reconnects_left <= 0) break;
      --reconnects_left;
      if (retry_stats != nullptr) ++retry_stats->reconnects;
    } else {
      break;  // non-retryable local failure (e.g. corrupt response frame)
    }

    // Capped exponential backoff, floored at the daemon's hint, plus
    // deterministic jitter in [0, backoff/4].
    uint64_t backoff = policy.initial_backoff_ms;
    backoff <<= std::min(attempt, 20);
    backoff = std::max<uint64_t>(backoff, hint_ms);
    backoff = std::min<uint64_t>(backoff, policy.max_backoff_ms);
    backoff += JitterMix(policy.jitter_seed ^ static_cast<uint64_t>(attempt)) %
               (backoff / 4 + 1);
    const auto backoff_ms = static_cast<uint32_t>(backoff);
    if (retry_stats != nullptr) retry_stats->backoffs_ms.push_back(backoff_ms);
    if (policy.sleep_override) {
      policy.sleep_override(backoff_ms);
    } else if (backoff_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    }
    if (!connected()) {
      util::StatusOr<DaemonClient> fresh = Connect(socket_path_);
      if (!fresh.ok()) {
        result = fresh.status();
        continue;  // next attempt fails fast on "not connected" — or we
                   // reconnect again if budget remains
      }
      fd_ = std::move(fresh->fd_);
    }
  }
  return result;
}

util::StatusOr<std::string> DaemonClient::StatsJson() {
  util::StatusOr<Frame> response = RoundTrip(FrameType::kStatsRequest, "");
  if (!response.ok()) return response.status();
  if (response->type == FrameType::kErrorResponse) {
    util::StatusOr<ErrorResponse> error =
        ParseErrorResponsePayload(response->payload);
    if (!error.ok()) return error.status();
    return WireErrorToStatus(*error);
  }
  if (response->type != FrameType::kStatsResponse) {
    return util::DataLossError("expected STATS response, got frame type " +
                               std::to_string(static_cast<int>(response->type)));
  }
  return std::move(response->payload);
}

}  // namespace qpe::serve
