#ifndef QPE_SERVE_EMBEDDING_SERVICE_H_
#define QPE_SERVE_EMBEDDING_SERVICE_H_

#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "encoder/structure_encoder.h"
#include "nn/arena.h"
#include "nn/tensor.h"
#include "plan/plan_node.h"
#include "serve/embedding_cache.h"

namespace qpe::serve {

struct EmbeddingServiceConfig {
  // Micro-batch size: a request's cache misses are encoded in chunks of
  // this many plans, each chunk one EncodeBatch call; chunks run
  // data-parallel on the global util::ThreadPool.
  int batch_size = 16;
  // Embedding cache; capacity 0 disables caching entirely (every plan is
  // encoded, nothing is stored — the benchmark baseline).
  EmbeddingCacheConfig cache;
  bool enable_cache = true;
};

// Serving statistics. Latency percentiles are over EncodeAll requests;
// throughput is total plans over total request wall time.
struct ServiceStats {
  uint64_t requests = 0;
  uint64_t plans = 0;
  uint64_t encoded_plans = 0;  // plans that actually ran the encoder
  double total_seconds = 0;
  double plans_per_second = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  EmbeddingCache::Stats cache;
  // Process-wide allocation telemetry (all TensorArenas, not just this
  // service's worker threads) plus peak RSS, snapshotted by GetStats().
  nn::MemoryStats memory;
  uint64_t peak_rss_bytes = 0;
  // Process-wide count of packed-workspace reallocation events
  // (nn::PackedBatch::TotalGrowthEvents). Flat once serving reaches steady
  // state — growth after warmup means the workspace high-water mark moved.
  uint64_t packed_growth_events = 0;
  // Active SIMD kernel level ("scalar", "avx2", "neon"), from nn/simd.h.
  const char* simd_level = "scalar";
};

// High-throughput embedding-serving facade over a PlanSequenceEncoder: the
// layer every caller that wants plan embeddings at volume (ingestion, eval
// loops, downstream featurizers) routes through.
//
// A request (EncodeAll) is served in four steps:
//   1. fingerprint every plan (plan::FingerprintPlan, a pure function of
//      the encoder's input tokens);
//   2. look each fingerprint up in the sharded LRU cache, deduplicating
//      repeats within the request;
//   3. micro-batch the unique misses into EncodeBatch calls of
//      `batch_size` plans, run data-parallel across the thread pool under
//      NoGradGuard;
//   4. insert the fresh embeddings sequentially in request order (so the
//      cache's LRU state is deterministic for a given request stream) and
//      assemble results.
//
// Embeddings returned for hits are bit-identical to a fresh Encode: the
// cache stores the raw float rows the batched forward produced, and the
// batched forward is bit-identical to the single-plan path by the nn/
// determinism contract. The service is safe to call from multiple threads
// concurrently (the cache is sharded-locked; stats are mutex-protected).
class EmbeddingService {
 public:
  // `encoder` must outlive the service. Encoding runs with no dropout and
  // no autograd, regardless of the encoder's training flag.
  EmbeddingService(const encoder::PlanSequenceEncoder* encoder,
                   const EmbeddingServiceConfig& config = {});

  // Embeddings for all plans, in request order; result i is [1, output_dim].
  std::vector<nn::Tensor> EncodeAll(
      std::span<const plan::PlanNode* const> plans);

  nn::Tensor EncodeOne(const plan::PlanNode& plan);

  // Swaps the serving encoder and clears the cache in one step, so no
  // cached embedding from the old model can ever be returned as if the new
  // one produced it. NOT internally synchronized against EncodeAll/
  // EncodeOne: the caller must exclude concurrent encodes for the duration
  // of the call (the daemon holds its model lock exclusively here).
  void SwapEncoder(const encoder::PlanSequenceEncoder* encoder);

  ServiceStats GetStats() const;
  void ResetStats();

  EmbeddingCache* cache() { return cache_enabled_ ? &cache_ : nullptr; }

 private:
  const encoder::PlanSequenceEncoder* encoder_;
  EmbeddingServiceConfig config_;
  bool cache_enabled_;
  EmbeddingCache cache_;

  mutable std::mutex stats_mu_;
  uint64_t requests_ = 0;
  uint64_t plans_ = 0;
  uint64_t encoded_plans_ = 0;
  double total_seconds_ = 0;
  std::vector<double> request_latencies_ms_;
};

}  // namespace qpe::serve

#endif  // QPE_SERVE_EMBEDDING_SERVICE_H_
