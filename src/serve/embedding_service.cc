#include "serve/embedding_service.h"

#include <chrono>
#include <unordered_map>
#include <utility>

#include "nn/arena.h"
#include "nn/simd.h"
#include "plan/fingerprint.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace qpe::serve {

EmbeddingService::EmbeddingService(const encoder::PlanSequenceEncoder* encoder,
                                   const EmbeddingServiceConfig& config)
    : encoder_(encoder),
      config_(config),
      cache_enabled_(config.enable_cache && config.cache.capacity > 0),
      cache_(config.cache) {}

std::vector<nn::Tensor> EmbeddingService::EncodeAll(
    std::span<const plan::PlanNode* const> plans) {
  const auto start = std::chrono::steady_clock::now();
  const int n = static_cast<int>(plans.size());
  const int dim = encoder_->output_dim();
  std::vector<nn::Tensor> results(n);

  // Step 1+2: fingerprint, probe the cache, and deduplicate repeats. A
  // fingerprint seen earlier in this request is encoded once; later
  // occurrences share the first occurrence's result.
  std::vector<uint64_t> keys(n);
  std::vector<const plan::PlanNode*> to_encode;   // unique misses
  std::vector<std::vector<int>> slots;            // request indices per miss
  std::unordered_map<uint64_t, int> miss_index;   // key -> to_encode index
  for (int i = 0; i < n; ++i) {
    keys[i] = plan::FingerprintPlan(*plans[i]);
    if (cache_enabled_) {
      std::vector<float> cached;
      if (cache_.Lookup(keys[i], &cached)) {
        results[i] = nn::Tensor::FromVector(1, dim, cached);
        continue;
      }
    }
    auto [it, inserted] =
        miss_index.try_emplace(keys[i], static_cast<int>(to_encode.size()));
    if (inserted) {
      to_encode.push_back(plans[i]);
      slots.emplace_back();
    }
    slots[it->second].push_back(i);
  }

  // Step 3: encode unique misses in micro-batches of batch_size plans,
  // data-parallel across the thread pool. Each chunk writes only its own
  // disjoint slice of `encoded` (the pool's determinism contract).
  const int misses = static_cast<int>(to_encode.size());
  std::vector<nn::Tensor> encoded(misses);
  if (misses > 0) {
    const int batch = std::max(config_.batch_size, 1);
    const int chunks = (misses + batch - 1) / batch;
    util::ParallelRun(chunks, [&](int c) {
      // Per-chunk graph epoch: intermediates recycle; the returned
      // embeddings escape the epoch and are released to the heap.
      nn::ArenaScope arena;
      nn::NoGradGuard no_grad;
      const int begin = c * batch;
      const int count = std::min(batch, misses - begin);
      std::vector<nn::Tensor> out = encoder_->EncodeBatch(
          std::span<const plan::PlanNode* const>(to_encode.data() + begin,
                                                 count),
          /*dropout_rng=*/nullptr);
      for (int j = 0; j < count; ++j) encoded[begin + j] = std::move(out[j]);
    });
  }

  // Step 4: publish to the cache sequentially in request order — the LRU
  // state after a request stream is then independent of thread count —
  // and fan results out to every occurrence.
  for (int m = 0; m < misses; ++m) {
    if (cache_enabled_) {
      cache_.Insert(keys[slots[m][0]], encoded[m].value());
    }
    for (const int i : slots[m]) results[i] = encoded[m];
  }

  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    requests_ += 1;
    plans_ += static_cast<uint64_t>(n);
    encoded_plans_ += static_cast<uint64_t>(misses);
    total_seconds_ += seconds;
    request_latencies_ms_.push_back(seconds * 1e3);
  }
  return results;
}

nn::Tensor EmbeddingService::EncodeOne(const plan::PlanNode& plan) {
  const plan::PlanNode* ptr = &plan;
  return EncodeAll(std::span<const plan::PlanNode* const>(&ptr, 1))[0];
}

void EmbeddingService::SwapEncoder(const encoder::PlanSequenceEncoder* encoder) {
  encoder_ = encoder;
  if (cache_enabled_) cache_.Clear();
}

ServiceStats EmbeddingService::GetStats() const {
  ServiceStats stats;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats.requests = requests_;
    stats.plans = plans_;
    stats.encoded_plans = encoded_plans_;
    stats.total_seconds = total_seconds_;
    if (total_seconds_ > 0) {
      stats.plans_per_second = static_cast<double>(plans_) / total_seconds_;
    }
    if (!request_latencies_ms_.empty()) {
      stats.p50_ms = util::Percentile(request_latencies_ms_, 50.0);
      stats.p99_ms = util::Percentile(request_latencies_ms_, 99.0);
    }
  }
  if (cache_enabled_) stats.cache = cache_.GetStats();
  stats.memory = nn::GlobalMemoryStats();
  stats.peak_rss_bytes = nn::PeakRssBytes();
  stats.packed_growth_events = nn::PackedBatch::TotalGrowthEvents();
  stats.simd_level = nn::simd::LevelName(nn::simd::ActiveLevel());
  return stats;
}

void EmbeddingService::ResetStats() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  requests_ = 0;
  plans_ = 0;
  encoded_plans_ = 0;
  total_seconds_ = 0;
  request_latencies_ms_.clear();
}

}  // namespace qpe::serve
