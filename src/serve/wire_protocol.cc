#include "serve/wire_protocol.h"

#include <cstring>

namespace qpe::serve {

namespace {

void PutU16(std::string* out, uint16_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

// Bounds-checked cursor over a payload; every failure names the field and
// offset so a fuzzed frame is diagnosable, and no read ever passes the end.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  util::Status Bytes(void* out, size_t size, const char* what) {
    if (size > data_.size() - pos_) {
      return util::DataLossError(std::string("frame payload truncated reading ") +
                                 what + " at offset " + std::to_string(pos_));
    }
    std::memcpy(out, data_.data() + pos_, size);
    pos_ += size;
    return util::OkStatus();
  }
  util::Status U16(uint16_t* v, const char* what) {
    return Bytes(v, sizeof(*v), what);
  }
  util::Status U32(uint32_t* v, const char* what) {
    return Bytes(v, sizeof(*v), what);
  }
  util::Status View(std::string_view* out, size_t size, const char* what) {
    if (size > data_.size() - pos_) {
      return util::DataLossError(std::string("frame payload truncated reading ") +
                                 what + " at offset " + std::to_string(pos_));
    }
    *out = data_.substr(pos_, size);
    pos_ += size;
    return util::OkStatus();
  }

  size_t pos() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

bool KnownFrameType(uint8_t type) {
  switch (static_cast<FrameType>(type)) {
    case FrameType::kEncodeRequest:
    case FrameType::kStatsRequest:
    case FrameType::kPingRequest:
    case FrameType::kEncodeResponse:
    case FrameType::kStatsResponse:
    case FrameType::kPongResponse:
    case FrameType::kErrorResponse:
      return true;
  }
  return false;
}

util::Status TrailingBytes(const Cursor& cursor, const char* what) {
  return util::DataLossError(std::string(what) + " payload has " +
                             std::to_string(cursor.remaining()) +
                             " trailing byte(s) at offset " +
                             std::to_string(cursor.pos()));
}

}  // namespace

const char* WireErrorName(WireError code) {
  switch (code) {
    case WireError::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case WireError::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case WireError::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case WireError::kUnavailable:
      return "UNAVAILABLE";
    case WireError::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string EncodeFrame(FrameType type, std::string_view payload,
                        uint8_t version) {
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  PutU32(&out, kWireMagic);
  out.push_back(static_cast<char>(version));
  out.push_back(static_cast<char>(type));
  PutU16(&out, 0);  // reserved
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

FrameParse NextFrame(std::string_view buf, size_t max_payload, Frame* out,
                     size_t* consumed, util::Status* error) {
  *consumed = 0;
  if (buf.size() < kFrameHeaderSize) {
    // Reject garbage as early as possible: a wrong magic prefix can never
    // grow into a valid frame.
    uint32_t magic = 0;
    const size_t have = std::min(buf.size(), sizeof(magic));
    std::memcpy(&magic, buf.data(), have);
    const uint32_t mask =
        have >= 4 ? 0xFFFFFFFFu : ((1u << (8 * have)) - 1u);
    if ((magic & mask) != (kWireMagic & mask)) {
      *error = util::DataLossError("bad frame magic");
      return FrameParse::kError;
    }
    return FrameParse::kNeedMore;
  }
  uint32_t magic = 0, payload_size = 0;
  uint16_t reserved = 0;
  std::memcpy(&magic, buf.data(), 4);
  const uint8_t version = static_cast<uint8_t>(buf[4]);
  const uint8_t type = static_cast<uint8_t>(buf[5]);
  std::memcpy(&reserved, buf.data() + 6, 2);
  std::memcpy(&payload_size, buf.data() + 8, 4);
  if (magic != kWireMagic) {
    *error = util::DataLossError("bad frame magic");
    return FrameParse::kError;
  }
  if (version < kWireVersionMin || version > kWireVersion) {
    *error = util::DataLossError("unsupported frame version " +
                                 std::to_string(version));
    return FrameParse::kError;
  }
  if (reserved != 0) {
    *error = util::DataLossError("non-zero reserved frame bits");
    return FrameParse::kError;
  }
  if (!KnownFrameType(type)) {
    *error =
        util::DataLossError("unknown frame type " + std::to_string(type));
    return FrameParse::kError;
  }
  if (payload_size > max_payload) {
    *error = util::InvalidArgumentError(
        "frame payload of " + std::to_string(payload_size) +
        " byte(s) exceeds the " + std::to_string(max_payload) + "-byte limit");
    return FrameParse::kError;
  }
  if (buf.size() < kFrameHeaderSize + payload_size) return FrameParse::kNeedMore;
  out->type = static_cast<FrameType>(type);
  out->version = version;
  out->payload.assign(buf.data() + kFrameHeaderSize, payload_size);
  *consumed = kFrameHeaderSize + payload_size;
  return FrameParse::kFrame;
}

std::string EncodeEncodeRequestPayload(const EncodeRequest& request) {
  std::string out;
  PutU16(&out, static_cast<uint16_t>(request.tenant.size()));
  out.append(request.tenant);
  PutU32(&out, request.deadline_ms);
  PutU32(&out, static_cast<uint32_t>(request.plans.size()));
  for (const std::string& plan : request.plans) {
    PutU32(&out, static_cast<uint32_t>(plan.size()));
    out.append(plan);
  }
  return out;
}

util::StatusOr<EncodeRequestHead> PeekEncodeRequestHead(
    std::string_view payload, size_t max_plans) {
  Cursor cursor(payload);
  EncodeRequestHead head;
  uint16_t tenant_len = 0;
  if (util::Status s = cursor.U16(&tenant_len, "tenant length"); !s.ok())
    return s;
  std::string_view tenant;
  if (util::Status s = cursor.View(&tenant, tenant_len, "tenant name");
      !s.ok())
    return s;
  head.tenant.assign(tenant);
  if (util::Status s = cursor.U32(&head.deadline_ms, "deadline_ms"); !s.ok())
    return s;
  if (util::Status s = cursor.U32(&head.plan_count, "plan count"); !s.ok())
    return s;
  if (head.plan_count == 0) {
    return util::InvalidArgumentError("encode request carries zero plans");
  }
  if (head.plan_count > max_plans) {
    return util::InvalidArgumentError(
        "encode request carries " + std::to_string(head.plan_count) +
        " plan(s), above the " + std::to_string(max_plans) + "-plan limit");
  }
  return head;
}

util::StatusOr<EncodeRequest> ParseEncodeRequestPayload(
    std::string_view payload, size_t max_plans) {
  util::StatusOr<EncodeRequestHead> head =
      PeekEncodeRequestHead(payload, max_plans);
  if (!head.ok()) return head.status();
  EncodeRequest request;
  request.tenant = std::move(head->tenant);
  request.deadline_ms = head->deadline_ms;
  Cursor cursor(payload);
  // Reposition past the head: tenant_len u16 + tenant + deadline + count.
  uint16_t tenant_len = 0;
  (void)cursor.U16(&tenant_len, "tenant length");
  std::string_view skip;
  (void)cursor.View(&skip, tenant_len, "tenant name");
  uint32_t dummy = 0;
  (void)cursor.U32(&dummy, "deadline_ms");
  (void)cursor.U32(&dummy, "plan count");
  request.plans.reserve(head->plan_count);
  for (uint32_t i = 0; i < head->plan_count; ++i) {
    uint32_t len = 0;
    if (util::Status s = cursor.U32(&len, "plan length"); !s.ok()) return s;
    std::string_view plan;
    if (util::Status s = cursor.View(&plan, len, "plan body"); !s.ok())
      return s;
    request.plans.emplace_back(plan);
  }
  if (cursor.remaining() != 0) return TrailingBytes(cursor, "encode request");
  return request;
}

std::string EncodeEncodeResponsePayload(const EncodeResponse& response,
                                        uint8_t version) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(response.embeddings.size()));
  PutU32(&out, response.dim);
  for (const std::vector<float>& row : response.embeddings) {
    out.append(reinterpret_cast<const char*>(row.data()),
               row.size() * sizeof(float));
  }
  if (version >= 2) {
    out.push_back(static_cast<char>(response.stale ? 1 : 0));
    out.push_back(static_cast<char>(response.drift_state));
    out.append(reinterpret_cast<const char*>(&response.drift_score),
               sizeof(response.drift_score));
  }
  return out;
}

util::StatusOr<EncodeResponse> ParseEncodeResponsePayload(
    std::string_view payload) {
  Cursor cursor(payload);
  EncodeResponse response;
  uint32_t count = 0;
  if (util::Status s = cursor.U32(&count, "embedding count"); !s.ok())
    return s;
  if (util::Status s = cursor.U32(&response.dim, "embedding dim"); !s.ok())
    return s;
  const size_t row_bytes = static_cast<size_t>(response.dim) * sizeof(float);
  if (row_bytes == 0 || count > cursor.remaining() / row_bytes) {
    return util::DataLossError(
        "encode response claims " + std::to_string(count) + " x " +
        std::to_string(response.dim) + " floats but only " +
        std::to_string(cursor.remaining()) + " byte(s) remain");
  }
  response.embeddings.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    response.embeddings[i].resize(response.dim);
    if (util::Status s = cursor.Bytes(response.embeddings[i].data(), row_bytes,
                                      "embedding row");
        !s.ok())
      return s;
  }
  // Version auto-detect: a v1 payload ends exactly at the rows; a v2
  // payload carries the 6-byte drift trailer. Any other remainder is a
  // malformed frame.
  if (cursor.remaining() == 0) return response;
  constexpr size_t kDriftTrailerSize = 1 + 1 + sizeof(float);
  if (cursor.remaining() != kDriftTrailerSize) {
    return TrailingBytes(cursor, "encode response");
  }
  uint8_t stale = 0;
  if (util::Status s = cursor.Bytes(&stale, 1, "stale flag"); !s.ok()) return s;
  response.stale = stale != 0;
  if (util::Status s = cursor.Bytes(&response.drift_state, 1, "drift state");
      !s.ok())
    return s;
  if (util::Status s = cursor.Bytes(&response.drift_score,
                                    sizeof(response.drift_score),
                                    "drift score");
      !s.ok())
    return s;
  return response;
}

std::string EncodeErrorResponsePayload(const ErrorResponse& error) {
  std::string out;
  PutU16(&out, static_cast<uint16_t>(error.code));
  PutU32(&out, error.retry_after_ms);
  PutU32(&out, static_cast<uint32_t>(error.message.size()));
  out.append(error.message);
  return out;
}

util::StatusOr<ErrorResponse> ParseErrorResponsePayload(
    std::string_view payload) {
  Cursor cursor(payload);
  ErrorResponse error;
  uint16_t code = 0;
  if (util::Status s = cursor.U16(&code, "error code"); !s.ok()) return s;
  error.code = static_cast<WireError>(code);
  if (util::Status s = cursor.U32(&error.retry_after_ms, "retry_after_ms");
      !s.ok())
    return s;
  uint32_t msg_len = 0;
  if (util::Status s = cursor.U32(&msg_len, "message length"); !s.ok())
    return s;
  std::string_view msg;
  if (util::Status s = cursor.View(&msg, msg_len, "message"); !s.ok())
    return s;
  error.message.assign(msg);
  if (cursor.remaining() != 0) return TrailingBytes(cursor, "error response");
  return error;
}

}  // namespace qpe::serve
