#ifndef QPE_SERVE_ADMISSION_H_
#define QPE_SERVE_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "serve/tenant.h"

namespace qpe::serve {

// Admission control + weighted-fair scheduling between the daemon's IO
// thread (producer) and its worker shards (consumers).
//
// The overload contract: a request is either *admitted* — it joins its
// tenant's bounded FIFO queue and will be served (or cancelled at its
// deadline) — or *shed immediately* with a typed reason and a retry-after
// hint. Nothing ever waits in an unbounded line, so queueing delay, and
// with it p99 latency, is bounded by queue_bound x service_time instead of
// growing without limit as offered load passes capacity.
//
// Shed reasons, in check order:
//   kShedDraining   — the daemon is draining; clients should reconnect
//                     elsewhere (UNAVAILABLE on the wire).
//   kShedDeadline   — the request's deadline had already expired on
//                     arrival (DEADLINE_EXCEEDED).
//   kShedQuota      — the tenant's token bucket (cost = plan count) cannot
//                     cover the request now; retry_after_ms says when it
//                     could, or kRetryNever for a zero-quota tenant or a
//                     request larger than the burst (RESOURCE_EXHAUSTED).
//   kShedQueueFull  — the tenant already has max_queued_requests waiting
//                     (RESOURCE_EXHAUSTED).
//
// Scheduling is start-time weighted fair queueing over virtual time: an
// admitted request is tagged
//     start  = max(V, tenant.last_virtual_finish)
//     finish = start + cost / weight
// and PopBlocking serves the tenant whose head request has the smallest
// finish tag, advancing V to that request's start tag. Backlogged tenants
// therefore share worker capacity in proportion to their weights
// regardless of how bursty each one's arrivals are, and an idle tenant's
// unused share is redistributed (its next start tag snaps up to V).
//
// Thread safety: every method is safe to call concurrently; one mutex
// guards tenants, queues, and virtual time.

struct QueuedRequest {
  std::string tenant;
  uint32_t cost = 0;          // plans in the request (token-bucket cost)
  double enqueue_time = 0;    // monotonic seconds, set by Offer
  // Absolute monotonic deadline in seconds; infinity when the client set
  // no deadline. Checked by Offer (expired-on-arrival) and again by the
  // worker at dequeue (expired-while-queued -> cancelled, never encoded).
  double deadline = 0;
  double virtual_start = 0;
  double virtual_finish = 0;
  std::string payload;              // opaque wire payload (parsed by worker)
  std::shared_ptr<void> context;    // opaque connection handle
  // Wire version of the request frame (serve/wire_protocol.h); the worker
  // encodes the response in the requester's version.
  uint8_t wire_version = 1;
};

class AdmissionController {
 public:
  struct Config {
    TenantConfig default_tenant;                    // for unknown tenants
    std::map<std::string, TenantConfig> tenants;    // per-tenant overrides
    uint32_t queue_full_retry_ms = 20;              // hint when queue-bound shed
  };

  explicit AdmissionController(const Config& config);

  enum class Decision {
    kAdmitted,
    kShedQuota,
    kShedQueueFull,
    kShedDeadline,
    kShedDraining,
  };
  struct Result {
    Decision decision = Decision::kAdmitted;
    uint32_t retry_after_ms = 0;  // kRetryNever-style sentinel: 0xFFFFFFFF
  };

  // Admits `request` into its tenant's queue or sheds it. `now` is
  // monotonic seconds (the daemon's clock; tests drive it directly).
  // Tenants are auto-registered on first sight with the default config
  // unless an override is present.
  Result Offer(QueuedRequest request, double now);

  // Next request under the WFQ discipline. Blocks until work arrives;
  // returns nullopt once the controller is draining and every queue is
  // empty (worker shutdown), or after Abort().
  std::optional<QueuedRequest> PopBlocking();
  std::optional<QueuedRequest> TryPop();

  // Drain mode: every subsequent Offer is shed with kShedDraining; queued
  // work keeps flowing to PopBlocking until the queues empty out.
  void SetDraining();
  bool draining() const;

  // Wakes all blocked consumers immediately (forced shutdown). Queued
  // requests are returned so the caller can fail them with typed errors.
  std::vector<QueuedRequest> Abort();

  // Worker-side counter hooks (the controller cannot observe completion).
  void RecordCompleted(const std::string& tenant);
  void RecordDeadlineMissed(const std::string& tenant);

  // Consistent snapshot of every tenant's counters (one lock, no tearing).
  std::vector<std::pair<std::string, TenantCounters>> CountersSnapshot() const;

  size_t TotalQueued() const;

 private:
  TenantState* TenantFor(const std::string& name);  // requires mu_ held

  Config config_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::map<std::string, std::unique_ptr<TenantState>> tenants_;
  std::map<std::string, std::deque<QueuedRequest>> queues_;
  double virtual_time_ = 0;
  size_t total_queued_ = 0;
  bool draining_ = false;
  bool aborted_ = false;
};

}  // namespace qpe::serve

#endif  // QPE_SERVE_ADMISSION_H_
