#ifndef QPE_SERVE_WARM_STATE_H_
#define QPE_SERVE_WARM_STATE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "nn/module.h"
#include "util/status.h"

namespace qpe::serve {

// Warm-restart state for the serving daemon: the embedding cache's
// contents plus the fingerprint of the model that produced them, persisted
// with the same crash-safe discipline as nn/checkpoint (write `path.tmp`,
// flush + fsync, atomic rename; CRC32-guarded payload) so a SIGKILL at any
// moment leaves either the previous snapshot or the new one, never a torn
// file. A restarted daemon restores the snapshot and serves its first
// requests from a warm cache instead of re-encoding the entire working
// set.
//
// The model fingerprint gates restore: cached embeddings are only valid
// for the exact weights that produced them, so a snapshot whose
// fingerprint differs from the serving model's is refused
// (kFailedPrecondition) and the daemon starts cold. Quantized and fp32
// engines of the same weights fingerprint differently by construction
// (see QuantizedModelFingerprint).
//
// On-disk format:
//   header : magic u32 "QPEW" | version u32 | payload_size u64 | crc u32
//   payload: model_fingerprint u64 | dim u32 | entry_count u32
//            | entry_count x { key u64 | dim f32 }
//
// Fault sites (util/fault_injection.h): "warm_state.open_tmp",
// "warm_state.write", "warm_state.flush", "warm_state.rename",
// "warm_state.read.open", "warm_state.read".

struct WarmState {
  uint64_t model_fingerprint = 0;
  uint32_t dim = 0;
  // Cache entries in EmbeddingCache::Snapshot() order (LRU-first per
  // shard); every embedding has exactly `dim` floats.
  std::vector<std::pair<uint64_t, std::vector<float>>> entries;
};

util::Status SaveWarmState(const std::string& path, const WarmState& state);

// Transactional load: any error (missing file, truncation, CRC mismatch,
// bad magic/version, ragged embedding rows) returns a descriptive Status
// and leaves *state untouched. `expected_fingerprint` != 0 additionally
// requires the snapshot to match the serving model.
util::Status LoadWarmState(const std::string& path,
                           uint64_t expected_fingerprint, WarmState* state);

bool WarmStateExists(const std::string& path);

// CRC32 over every named parameter buffer, widened with the parameter
// count: two modules fingerprint equal iff their weights are bit-equal.
// The same function the crash-resume smoke test applies to training runs,
// exposed here so the daemon can stamp snapshots.
uint64_t ModelFingerprint(const nn::Module& module);

// Fingerprint for an int8-quantized serving engine derived from `fp32`:
// the fp32 fingerprint XOR a fixed tag, so a quantized daemon never
// restores an fp32 daemon's cache (or vice versa) even though both came
// from the same trained weights.
uint64_t QuantizedModelFingerprint(const nn::Module& fp32);

}  // namespace qpe::serve

#endif  // QPE_SERVE_WARM_STATE_H_
