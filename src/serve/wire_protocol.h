#ifndef QPE_SERVE_WIRE_PROTOCOL_H_
#define QPE_SERVE_WIRE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace qpe::serve {

// Length-prefixed request/response protocol between qpe_served and its
// clients, over a Unix-domain stream socket. No third-party deps: frames
// are a fixed 12-byte header followed by a bounded payload, all fields
// little-endian (same-host IPC; the daemon never crosses byte orders).
//
//   header:  magic u32 ("QPE1") | version u8 | type u8 | reserved u16 (0)
//            | payload_size u32
//   payload: per-type layout below
//
// The parser treats the wire as hostile: bad magic, unknown version or
// type, non-zero reserved bits, oversized or truncated payloads, and
// inner length fields pointing past the payload all yield a typed Status
// (never a crash or over-read) — fuzzed in daemon_test with
// util::MutateBytes.
//
// ENCODE request payload:
//   tenant_len u16 | tenant bytes | deadline_ms u32 | plan_count u32
//   | plan_count x { plan_len u32 | serialized plan s-expr }
// deadline_ms is the request's time budget measured from daemon receipt;
// kNoDeadline disables it, 0 is already expired on arrival.
//
// ENCODE response payload: count u32 | dim u32 | count*dim f32 rows.
// In protocol version 2 the response grows an optional drift trailer:
//   ... rows | stale u8 | drift_state u8 | drift_score f32
// The trailer is version-negotiated per connection: the daemon replies in
// the version of the request frame, so a v1 client never sees the trailer
// and keeps parsing unchanged. The parser auto-detects by the exact
// remaining length after the rows (0 bytes → v1 defaults, 6 bytes → v2
// trailer, anything else → typed error).
// STATS  response payload: a JSON object (see ServingDaemon::StatsJson).
// ERROR  response payload:
//   code u16 (WireError) | retry_after_ms u32 | msg_len u32 | msg bytes
// retry_after_ms is the daemon's backoff hint; kRetryNever marks a request
// that will never be admitted (e.g. a zero-quota tenant).

inline constexpr uint32_t kWireMagic = 0x31455051;  // "QPE1" little-endian
// Current protocol version. The daemon accepts every version in
// [kWireVersionMin, kWireVersion] and answers each request in the version
// the request frame carried.
inline constexpr uint8_t kWireVersion = 2;
inline constexpr uint8_t kWireVersionMin = 1;
inline constexpr size_t kFrameHeaderSize = 12;
inline constexpr uint32_t kNoDeadline = 0xFFFFFFFFu;
inline constexpr uint32_t kRetryNever = 0xFFFFFFFFu;

enum class FrameType : uint8_t {
  // Requests.
  kEncodeRequest = 1,
  kStatsRequest = 2,
  kPingRequest = 3,
  // Responses.
  kEncodeResponse = 17,
  kStatsResponse = 18,
  kPongResponse = 19,
  kErrorResponse = 31,
};

// Typed error codes carried in ERROR frames. The names follow the usual
// RPC vocabulary; kResourceExhausted is the admission-control shed signal
// (quota or queue bound), kUnavailable means the daemon is draining.
enum class WireError : uint16_t {
  kInvalidArgument = 1,
  kResourceExhausted = 2,
  kDeadlineExceeded = 3,
  kUnavailable = 4,
  kInternal = 5,
};

const char* WireErrorName(WireError code);

struct Frame {
  FrameType type = FrameType::kPingRequest;
  uint8_t version = kWireVersion;  // as carried on the wire
  std::string payload;
};

// Serializes a complete frame (header + payload). `version` is stamped
// into the header; responders pass the version negotiated from the
// request frame so old clients keep parsing.
std::string EncodeFrame(FrameType type, std::string_view payload,
                        uint8_t version = kWireVersion);

// Incremental frame extraction from a receive buffer. Returns:
//   kNeedMore — `buf` holds a prefix of a valid frame; read more bytes.
//   kFrame    — one frame extracted into *out; *consumed bytes were used.
//   kError    — the buffer can never become a valid frame; *error says why
//               and the connection should be failed.
enum class FrameParse { kNeedMore, kFrame, kError };
FrameParse NextFrame(std::string_view buf, size_t max_payload, Frame* out,
                     size_t* consumed, util::Status* error);

struct EncodeRequest {
  std::string tenant;
  uint32_t deadline_ms = kNoDeadline;
  std::vector<std::string> plans;  // serialized plan s-expressions
};

std::string EncodeEncodeRequestPayload(const EncodeRequest& request);
// Bounds-checked inverse; `max_plans` guards against a hostile count field.
util::StatusOr<EncodeRequest> ParseEncodeRequestPayload(
    std::string_view payload, size_t max_plans);

// Cheap admission peek: extracts only tenant / deadline / plan count
// without copying the plan bodies (the IO thread admits on this; the
// worker parses the full request).
struct EncodeRequestHead {
  std::string tenant;
  uint32_t deadline_ms = kNoDeadline;
  uint32_t plan_count = 0;
};
util::StatusOr<EncodeRequestHead> PeekEncodeRequestHead(
    std::string_view payload, size_t max_plans);

struct EncodeResponse {
  uint32_t dim = 0;
  std::vector<std::vector<float>> embeddings;  // count rows of dim floats
  // v2 drift trailer. `stale` means the daemon's drift monitor has declared
  // the serving model stale for the live workload (state DRIFTED or
  // ADAPTING); drift_state is the raw drift::DriftState value and
  // drift_score the last fused window score. v1 responses leave defaults.
  bool stale = false;
  uint8_t drift_state = 0;
  float drift_score = 0.0f;
};

// `version` selects the payload layout: v1 omits the drift trailer so old
// clients parse the response unchanged; v2 appends it.
std::string EncodeEncodeResponsePayload(const EncodeResponse& response,
                                        uint8_t version = kWireVersion);
util::StatusOr<EncodeResponse> ParseEncodeResponsePayload(
    std::string_view payload);

struct ErrorResponse {
  WireError code = WireError::kInternal;
  uint32_t retry_after_ms = 0;
  std::string message;
};

std::string EncodeErrorResponsePayload(const ErrorResponse& error);
util::StatusOr<ErrorResponse> ParseErrorResponsePayload(
    std::string_view payload);

}  // namespace qpe::serve

#endif  // QPE_SERVE_WIRE_PROTOCOL_H_
