#include "serve/embedding_cache.h"

#include <algorithm>
#include <utility>

namespace qpe::serve {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

EmbeddingCache::EmbeddingCache(const EmbeddingCacheConfig& config) {
  const size_t shard_count =
      RoundUpPow2(static_cast<size_t>(std::max(config.shards, 1)));
  capacity_ = std::max<size_t>(config.capacity, 1);
  // Every shard gets an equal share, at least one entry.
  shard_capacity_ = std::max<size_t>(capacity_ / shard_count, 1);
  shard_mask_ = shard_count - 1;
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

EmbeddingCache::Shard& EmbeddingCache::ShardFor(uint64_t key) {
  return *shards_[key & shard_mask_];
}

const EmbeddingCache::Shard& EmbeddingCache::ShardFor(uint64_t key) const {
  return *shards_[key & shard_mask_];
}

bool EmbeddingCache::Lookup(uint64_t key, std::vector<float>* out) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return false;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  if (out != nullptr) *out = it->second->second;
  return true;
}

void EmbeddingCache::Insert(uint64_t key, std::vector<float> embedding) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = std::move(embedding);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, std::move(embedding));
  shard.index[key] = shard.lru.begin();
  if (shard.lru.size() > shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

bool EmbeddingCache::Contains(uint64_t key) const {
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.index.count(key) != 0;
}

void EmbeddingCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
    shard->hits = shard->misses = shard->evictions = 0;
  }
}

EmbeddingCache::Stats EmbeddingCache::GetStats() const {
  // Hold every shard lock at once (fixed shard order; writers take only a
  // single shard lock, so this cannot deadlock) — the aggregate is then a
  // consistent cut instead of a shard-at-a-time read that could mix
  // before/after states of one concurrent operation.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) locks.emplace_back(shard->mu);
  Stats stats;
  for (const auto& shard : shards_) {
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.evictions += shard->evictions;
    stats.entries += shard->lru.size();
  }
  return stats;
}

std::vector<std::pair<uint64_t, std::vector<float>>> EmbeddingCache::Snapshot()
    const {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) locks.emplace_back(shard->mu);
  std::vector<std::pair<uint64_t, std::vector<float>>> entries;
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->lru.size();
  entries.reserve(total);
  for (const auto& shard : shards_) {
    // Back of the list is least recently used; emitting LRU-first lets
    // Restore() replay with plain Insert() calls and end up with the same
    // recency order (the last insert is the most recent).
    for (auto it = shard->lru.rbegin(); it != shard->lru.rend(); ++it) {
      entries.emplace_back(it->first, it->second);
    }
  }
  return entries;
}

void EmbeddingCache::Restore(
    std::vector<std::pair<uint64_t, std::vector<float>>> entries) {
  for (auto& [key, embedding] : entries) Insert(key, std::move(embedding));
}

}  // namespace qpe::serve
