#include "serve/tenant.h"

#include <algorithm>

namespace qpe::serve {

TokenBucket::TokenBucket(double rate_per_sec, double burst)
    : rate_(std::max(rate_per_sec, 0.0)),
      burst_(std::max(burst, 0.0)),
      tokens_(burst_) {}

void TokenBucket::Refill(double now) {
  if (now <= last_refill_) return;  // monotonic clock; tolerate equal stamps
  tokens_ = std::min(burst_, tokens_ + rate_ * (now - last_refill_));
  last_refill_ = now;
}

bool TokenBucket::TrySpend(double cost, double now,
                           double* retry_after_seconds) {
  Refill(now);
  if (tokens_ >= cost) {
    tokens_ -= cost;
    *retry_after_seconds = 0;
    return true;
  }
  if (cost > burst_ || rate_ <= 0) {
    // The bucket can never cover this cost: zero-quota tenant, or a
    // request larger than the burst capacity.
    *retry_after_seconds = -1;
    return false;
  }
  *retry_after_seconds = (cost - tokens_) / rate_;
  return false;
}

double TokenBucket::tokens_at(double now) const {
  if (now <= last_refill_) return tokens_;
  return std::min(burst_, tokens_ + rate_ * (now - last_refill_));
}

}  // namespace qpe::serve
