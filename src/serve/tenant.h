#ifndef QPE_SERVE_TENANT_H_
#define QPE_SERVE_TENANT_H_

#include <cstdint>
#include <string>

namespace qpe::serve {

// Per-tenant quota and fairness knobs. Costs are measured in *plans*, not
// requests: a 64-plan batch spends 64 tokens, so one tenant cannot buy
// unlimited compute by packing giant requests.
struct TenantConfig {
  // Token bucket: sustained plans/sec and burst capacity. rate == 0 with
  // burst == 0 is a zero-quota tenant — every request is shed immediately
  // with RESOURCE_EXHAUSTED and a "never" retry hint.
  double rate_plans_per_sec = 1e9;  // effectively unlimited by default
  double burst_plans = 1e9;
  // Weighted-fair-queueing weight: a tenant with weight 2 drains twice as
  // fast as a weight-1 tenant when both are backlogged.
  double weight = 1.0;
  // Bound on queued (admitted, not yet executing) requests. Admission
  // sheds with RESOURCE_EXHAUSTED once the bound is reached — bounded
  // queues are what keep p99 bounded under overload.
  int max_queued_requests = 64;
};

// Rolling per-tenant serving counters, exposed via the STATS verb. All
// counts are cumulative since daemon start; queue depth is instantaneous.
struct TenantCounters {
  uint64_t admitted = 0;          // requests admitted into the queue
  uint64_t completed = 0;         // responses sent successfully
  uint64_t shed_quota = 0;        // token bucket empty (or zero quota)
  uint64_t shed_queue_full = 0;   // per-tenant queue bound hit
  uint64_t shed_draining = 0;     // rejected because the daemon is draining
  uint64_t shed_deadline = 0;     // deadline already expired at enqueue
  uint64_t deadline_missed = 0;   // expired while queued; cancelled unserved
  uint64_t plans = 0;             // plans admitted (token-bucket cost)
  int queue_depth = 0;
};

// Deterministic token bucket over a caller-supplied clock (seconds). Not
// internally locked: the admission controller serializes access under its
// own mutex.
class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(double rate_per_sec, double burst);

  // Tries to spend `cost` tokens at time `now` (monotonic seconds). On
  // success returns true. On failure *retry_after_seconds is the earliest
  // time the bucket could cover the cost, or a negative value if it never
  // can (cost exceeds burst or the rate is zero).
  bool TrySpend(double cost, double now, double* retry_after_seconds);

  double tokens_at(double now) const;
  double rate() const { return rate_; }
  double burst() const { return burst_; }

 private:
  void Refill(double now);

  double rate_ = 0;
  double burst_ = 0;
  double tokens_ = 0;
  double last_refill_ = 0;
};

// One tenant's admission state: quota bucket, WFQ virtual-time tag, and
// counters. Owned by the AdmissionController and protected by its mutex.
struct TenantState {
  explicit TenantState(std::string tenant_name, const TenantConfig& cfg)
      : name(std::move(tenant_name)),
        config(cfg),
        bucket(cfg.rate_plans_per_sec, cfg.burst_plans) {}

  std::string name;
  TenantConfig config;
  TokenBucket bucket;
  // WFQ bookkeeping: virtual finish time of the tenant's most recently
  // enqueued request (see admission.h for the scheduling discipline).
  double last_virtual_finish = 0;
  TenantCounters counters;
};

}  // namespace qpe::serve

#endif  // QPE_SERVE_TENANT_H_
