#ifndef QPE_SERVE_DAEMON_H_
#define QPE_SERVE_DAEMON_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "drift/adaptation.h"
#include "drift/sentinel.h"
#include "serve/admission.h"
#include "serve/embedding_service.h"
#include "serve/tenant.h"
#include "serve/wire_protocol.h"
#include "util/socket.h"
#include "util/status.h"

namespace qpe::serve {

// qpe_served: the persistent multi-tenant embedding daemon. Promotes the
// in-process EmbeddingService to a long-running server on a Unix-domain
// socket, with a robustness layer between clients and the encoder:
//
//   client --UDS--> IO thread --admission control--> WFQ queues
//                                                       |
//                              worker shards  <---------+
//                              (EmbeddingService::EncodeAll)
//
// - One IO thread owns accept + all connection reads (poll + MSG_DONTWAIT)
//   and parses length-prefixed frames (serve/wire_protocol.h). A complete
//   ENCODE frame is admitted or shed *before* any plan parsing happens, so
//   overload decisions cost microseconds, not encodes.
// - AdmissionController (serve/admission.h) enforces per-tenant
//   token-bucket quotas, bounded per-tenant queues, and weighted-fair
//   dequeue. Shed requests get a typed ERROR frame (RESOURCE_EXHAUSTED /
//   DEADLINE_EXCEEDED / UNAVAILABLE) with a retry-after hint — bounded
//   latency under overload instead of queue collapse.
// - N worker threads pop admitted work, re-check the deadline (expired
//   queued work is cancelled, never encoded), parse the plans, run the
//   shared EmbeddingService (fingerprint cache + micro-batched encode),
//   and write the response directly to the client socket (SO_SNDTIMEO
//   bounds how long a slow consumer can hold a worker).
// - SIGTERM/SIGINT are routed through an async-signal-safe self-pipe
//   (util::SelfPipe) into the IO thread's poll loop: the daemon stops
//   accepting, sheds new requests with UNAVAILABLE, flushes everything
//   already admitted (bounded by drain_deadline_seconds), persists the
//   warm cache + model fingerprint via the crash-safe warm-state layer
//   (serve/warm_state.h), and exits. A restarted daemon restores the
//   snapshot and serves warm immediately.
//
// Fault sites for deterministic chaos tests: "daemon.accept",
// "daemon.conn.read", plus the socket-layer sites ("socket.read",
// "socket.write", "socket.write.short") and the warm-state sites. Each
// injected fault must degrade one connection or one snapshot, never the
// daemon.

struct ServingDaemonConfig {
  std::string socket_path;
  int workers = 2;
  int listen_backlog = 64;
  size_t max_payload_bytes = 16u << 20;
  size_t max_plans_per_request = 1024;
  AdmissionController::Config admission;
  EmbeddingServiceConfig service;
  // Warm-restart snapshot file; "" disables persistence entirely.
  std::string warm_state_path;
  // Also snapshot after every N completed requests (0 = only at drain), so
  // a SIGKILLed daemon still restarts warm from the last periodic snapshot.
  uint64_t snapshot_every_requests = 0;
  // Upper bound on the drain phase: admitted-but-unserved work past this
  // deadline is failed with UNAVAILABLE and connections are closed.
  double drain_deadline_seconds = 5.0;
  // SO_SNDTIMEO on client sockets: a consumer that stalls longer than this
  // while a worker is writing to it is disconnected.
  double write_timeout_seconds = 5.0;
  // Install the SIGTERM/SIGINT self-pipe handler (the qpe_served binary
  // does; tests usually call TriggerDrain() directly).
  bool install_signal_handlers = false;
  // Fingerprint of the serving model (serve/warm_state.h). Stamped into
  // snapshots and required of restored ones; 0 skips the check.
  uint64_t model_fingerprint = 0;

  // --- Drift sentinel & self-healing (optional) ---------------------------
  // Enables the streaming drift sentinel. Requires drift_corpus (serialized
  // training plans) so Start() can build the baseline — embedding-space
  // centroids, token frequencies, fingerprint bloom — against the serving
  // encoder, and requires that encoder to be a TransformerPlanEncoder.
  bool enable_drift = false;
  std::vector<std::string> drift_corpus;
  drift::DriftBaselineConfig drift_baseline;
  drift::DriftSentinelConfig drift_sentinel;
  // Self-healing: the crash-safe adaptation round's state directory lives in
  // adaptation.dir; "" keeps the sentinel alarm-only (detect + flag stale
  // responses, never fine-tune). When set, a DRIFTED verdict starts an
  // incremental fine-tune on the drifted slice in a background thread, and
  // Start() resumes (or installs) a round the previous process left behind.
  drift::AdaptationConfig adaptation;
};

// Daemon-level counters (connection/protocol health; admission and cache
// health live in TenantCounters and ServiceStats). Snapshot via GetStats.
struct DaemonStats {
  bool draining = false;
  uint64_t connections_accepted = 0;
  uint64_t connections_open = 0;
  uint64_t protocol_errors = 0;   // bad frames (magic/version/size/parse)
  uint64_t io_errors = 0;         // read/write/accept failures, timeouts
  uint64_t warm_restored_entries = 0;
  uint64_t snapshots_written = 0;
  ServiceStats service;
  std::vector<std::pair<std::string, TenantCounters>> tenants;
  // Drift sentinel state (drift fields valid iff drift_enabled).
  bool drift_enabled = false;
  drift::DriftStatusSnapshot drift;
  uint64_t adaptations_completed = 0;
  uint64_t adaptations_resumed = 0;
  // Fingerprint of the model serving right now (tracks adaptation swaps,
  // unlike the construction-time config value).
  uint64_t current_fingerprint = 0;
  // Mean sentinel Observe cost per served plan — the detector's overhead.
  double drift_observe_us_per_plan = 0;
};

class ServingDaemon {
 public:
  // `encoder` must outlive the daemon.
  ServingDaemon(const encoder::PlanSequenceEncoder* encoder,
                const ServingDaemonConfig& config);
  ~ServingDaemon();

  ServingDaemon(const ServingDaemon&) = delete;
  ServingDaemon& operator=(const ServingDaemon&) = delete;

  // Binds the socket, restores warm state if present (a fingerprint
  // mismatch or corrupt snapshot logs and starts cold — never fatal), and
  // spawns the IO thread + worker shards. Returns only setup errors.
  util::Status Start();

  // Initiates graceful drain exactly as a SIGTERM would (the same
  // self-pipe path). Non-blocking; pair with Join().
  void TriggerDrain();

  // Blocks until the daemon has fully drained and every thread exited.
  void Join();

  // TriggerDrain + Join.
  void Stop();

  bool draining() const { return draining_.load(std::memory_order_relaxed); }

  DaemonStats GetStats() const;
  // The STATS verb's payload: GetStats rendered as a JSON object.
  std::string StatsJson() const;

  EmbeddingService* service() { return service_.get(); }

 private:
  struct Connection;
  using ConnPtr = std::shared_ptr<Connection>;

  void IoLoop();
  void WorkerLoop();
  void HandleFrame(const ConnPtr& conn, Frame frame);
  void HandleEncodeRequest(const ConnPtr& conn, std::string payload,
                           uint8_t wire_version);
  void ProcessWork(QueuedRequest work);
  void SendFrame(const ConnPtr& conn, FrameType type,
                 std::string_view payload);
  void SendError(const ConnPtr& conn, WireError code, uint32_t retry_after_ms,
                 std::string message);
  void MaybeSnapshot(bool force);
  double Now() const;  // monotonic seconds since Start

  // Drift plumbing (all no-ops unless config_.enable_drift).
  util::Status InitDrift();             // Start(): baseline + restart re-entry
  void MaybeStartAdaptation();          // IO thread: DRIFTED -> spawn round
  void StartAdaptationThread(bool resumed);
  void AdaptationRound(bool resumed);   // adaptation thread body
  void InstallAdaptedEncoder(
      std::unique_ptr<encoder::TransformerPlanEncoder> fresh,
      std::vector<std::unique_ptr<plan::PlanNode>> slice_plans);

  const encoder::PlanSequenceEncoder* encoder_;
  ServingDaemonConfig config_;
  std::unique_ptr<EmbeddingService> service_;
  std::unique_ptr<AdmissionController> admission_;
  util::SelfPipe drain_pipe_;
  util::UniqueFd listener_;
  std::thread io_thread_;
  std::vector<std::thread> workers_;
  std::atomic<int> workers_running_{0};
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};
  std::chrono::steady_clock::time_point start_time_;

  std::mutex join_mu_;  // serializes Join callers

  // Guards the serving-model triple — encoder_ (and the service's copy of
  // it), the embedding cache, and config_.model_fingerprint — as one unit.
  // EncodeAll + sentinel observation and warm snapshots take it shared; an
  // adaptation swap takes it exclusive, so a snapshot can never pair the
  // old fingerprint with the refreshed cache (or vice versa).
  mutable std::shared_mutex model_mu_;
  std::unique_ptr<encoder::TransformerPlanEncoder> adapted_encoder_;
  std::unique_ptr<drift::DriftSentinel> sentinel_;
  std::vector<std::unique_ptr<plan::PlanNode>> corpus_plans_;
  std::thread adapt_thread_;
  std::atomic<bool> adapt_running_{false};
  std::atomic<bool> adapt_abort_{false};
  std::atomic<uint64_t> adaptations_completed_{0};
  std::atomic<uint64_t> adaptations_resumed_{0};
  std::atomic<uint64_t> drift_observe_ns_{0};
  std::atomic<uint64_t> drift_observed_{0};

  // Counters (relaxed: monitoring only).
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_open_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> io_errors_{0};
  std::atomic<uint64_t> warm_restored_entries_{0};
  std::atomic<uint64_t> snapshots_written_{0};
  std::atomic<uint64_t> completed_since_snapshot_{0};
};

}  // namespace qpe::serve

#endif  // QPE_SERVE_DAEMON_H_
