#ifndef QPE_SIMDB_EXECUTOR_H_
#define QPE_SIMDB_EXECUTOR_H_

#include <cstdint>

#include "catalog/catalog.h"
#include "config/db_config.h"
#include "plan/plan_node.h"
#include "util/rng.h"

namespace qpe::simdb {

// Analytical executor simulator: the stand-in for actually running the plan
// on PostgreSQL and reading EXPLAIN (ANALYZE, BUFFERS) output. Walking the
// planned tree bottom-up it fills in all "actual" properties — Actual Rows
// (optimizer estimates distorted by data-dependent misestimation noise),
// Actual Total/Startup Time, shared/temp buffer counts, realized sort
// methods and hash batches — and returns the query latency.
//
// Knob sensitivity (what makes latency configuration-dependent at *run*
// time, on top of the planner's choices):
//   - shared_buffers + effective_cache_size: page-cache hit ratio;
//   - work_mem: hash-join batching, hash-aggregate spill, external sorts;
//   - effective_io_concurrency: prefetch speedup for bitmap/seq I/O.
// The remaining knobs (bgwriter_*, checkpoint_timeout, deadlock_timeout,
// wal_buffers, ...) do not affect read-query latency — they are nuisance
// features the learned models must learn to ignore, exactly as in the
// paper's setting.
class ExecutorSim {
 public:
  ExecutorSim(const catalog::Catalog* catalog,
              const config::DbConfig* db_config)
      : catalog_(catalog), config_(db_config) {}

  // Fills actuals in-place and returns the root's actual total time (ms).
  // `cardinality_seed` fixes the query instance's true cardinalities
  // (identical across configurations); `run_noise` models run-to-run
  // measurement jitter.
  double Execute(plan::Plan* query, uint64_t cardinality_seed,
                 util::Rng* run_noise) const;

  // --- Hardware model constants (ms) ---
  static constexpr double kHitPageMs = 0.0002;   // page already cached
  static constexpr double kSeqPageMs = 0.008;    // sequential read
  static constexpr double kRandPageMs = 0.06;    // random read
  static constexpr double kCpuRowMs = 0.00008;   // per-tuple CPU
  static constexpr double kCpuOpMs = 0.00004;    // per-operator-evaluation
  static constexpr double kHashBuildRowMs = 0.0002;
  static constexpr double kSortRowMs = 0.00012;  // per comparison
  static constexpr double kGeomRowMs = 0.004;    // spatial predicate base

 private:
  struct NodeExec {
    double rows = 0;
    double total_ms = 0;
    double startup_ms = 0;
    double hit_blocks = 0;
    double read_blocks = 0;
    double temp_read = 0;
    double temp_written = 0;
  };

  NodeExec ExecuteNode(plan::PlanNode* node, uint64_t cardinality_seed,
                       int* node_index, int joins_below,
                       util::Rng* run_noise) const;

  double CacheHitRatio(const catalog::TableStats& table) const;
  double IoConcurrencyFactor() const;
  double ActualRows(const plan::PlanNode& node, uint64_t cardinality_seed,
                    int node_index, int joins_below) const;

  const catalog::Catalog* catalog_;
  const config::DbConfig* config_;
};

}  // namespace qpe::simdb

#endif  // QPE_SIMDB_EXECUTOR_H_
