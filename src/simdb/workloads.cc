#include "simdb/workloads.h"

#include <algorithm>
#include <cmath>

#include "catalog/schemas.h"

namespace qpe::simdb {

namespace {

double Clamp(double v, double lo, double hi) {
  return std::min(hi, std::max(lo, v));
}

// Shorthand builders for template tables.
FilterSpec Filter(const char* table, const char* column, double selectivity,
                  bool spatial = false) {
  FilterSpec f;
  f.table = table;
  f.column = column;
  f.selectivity = selectivity;
  f.spatial = spatial;
  return f;
}

JoinSpec Join(const char* lt, const char* lc, const char* rt, const char* rc,
              bool spatial = false) {
  JoinSpec j;
  j.left_table = lt;
  j.left_column = lc;
  j.right_table = rt;
  j.right_column = rc;
  j.spatial = spatial;
  return j;
}

struct Shape {
  bool aggregate = false;
  int group_keys = 0;
  double group_fraction = 0.1;
  bool sort = false;
  int sort_keys = 1;
  bool limit = false;
  double limit_rows = 100;
};

QuerySpec MakeSpec(const char* benchmark, std::string template_id,
                   std::vector<const char*> tables,
                   std::vector<JoinSpec> joins, std::vector<FilterSpec> filters,
                   const Shape& shape, int cluster_id = -1) {
  QuerySpec spec;
  for (const char* t : tables) spec.tables.emplace_back(t);
  spec.joins = std::move(joins);
  spec.filters = std::move(filters);
  spec.has_aggregate = shape.aggregate;
  spec.num_group_keys = shape.group_keys;
  spec.group_fraction = shape.group_fraction;
  spec.has_sort = shape.sort;
  spec.num_sort_keys = shape.sort_keys;
  spec.has_limit = shape.limit;
  spec.limit_rows = shape.limit_rows;
  spec.benchmark = benchmark;
  spec.template_id = std::move(template_id);
  spec.cluster_id = cluster_id;
  return spec;
}

Shape Agg(int group_keys, double group_fraction, bool sort = true) {
  Shape s;
  s.aggregate = true;
  s.group_keys = group_keys;
  s.group_fraction = group_fraction;
  s.sort = sort;
  return s;
}

Shape AggLimit(int group_keys, double group_fraction, double limit_rows) {
  Shape s = Agg(group_keys, group_fraction);
  s.limit = true;
  s.limit_rows = limit_rows;
  return s;
}

Shape SortLimit(double limit_rows) {
  Shape s;
  s.sort = true;
  s.limit = true;
  s.limit_rows = limit_rows;
  return s;
}

}  // namespace

QuerySpec BenchmarkWorkload::Instantiate(int template_index,
                                         util::Rng* rng) const {
  QuerySpec spec = templates_[template_index];
  // Literal substitution: jitter every filter's selectivity around the
  // template's base value (log-normal, clipped).
  for (FilterSpec& filter : spec.filters) {
    filter.selectivity =
        Clamp(filter.selectivity * rng->LognormalFactor(0.35), 1e-7, 1.0);
  }
  spec.cardinality_seed = rng->NextU64();
  return spec;
}

// ---------------------------------------------------------------------------
// TPC-H
// ---------------------------------------------------------------------------

TpchWorkload::TpchWorkload(double scale_factor)
    : BenchmarkWorkload(catalog::MakeTpchCatalog(scale_factor)) {
  const char* kB = "tpch";
  templates_.push_back(MakeSpec(kB, "Q1", {"lineitem"}, {},
                                {Filter("lineitem", "l_shipdate", 0.98)},
                                Agg(4, 1e-6)));
  templates_.push_back(MakeSpec(
      kB, "Q2", {"part", "partsupp", "supplier", "nation", "region"},
      {Join("part", "p_partkey", "partsupp", "ps_partkey"),
       Join("partsupp", "ps_suppkey", "supplier", "s_suppkey"),
       Join("supplier", "s_nationkey", "nation", "n_nationkey"),
       Join("nation", "n_regionkey", "region", "r_regionkey")},
      {Filter("part", "p_size", 0.02), Filter("region", "r_name", 0.2)},
      SortLimit(100)));
  templates_.push_back(MakeSpec(
      kB, "Q3", {"customer", "orders", "lineitem"},
      {Join("customer", "c_custkey", "orders", "o_custkey"),
       Join("orders", "o_orderkey", "lineitem", "l_orderkey")},
      {Filter("customer", "c_mktsegment", 0.2),
       Filter("orders", "o_orderdate", 0.48),
       Filter("lineitem", "l_shipdate", 0.54)},
      AggLimit(2, 0.6, 10)));
  templates_.push_back(MakeSpec(
      kB, "Q4", {"orders", "lineitem"},
      {Join("orders", "o_orderkey", "lineitem", "l_orderkey")},
      {Filter("orders", "o_orderdate", 0.04)}, Agg(1, 1e-5)));
  templates_.push_back(MakeSpec(
      kB, "Q5",
      {"customer", "orders", "lineitem", "supplier", "nation", "region"},
      {Join("customer", "c_custkey", "orders", "o_custkey"),
       Join("orders", "o_orderkey", "lineitem", "l_orderkey"),
       Join("lineitem", "l_suppkey", "supplier", "s_suppkey"),
       Join("supplier", "s_nationkey", "nation", "n_nationkey"),
       Join("nation", "n_regionkey", "region", "r_regionkey")},
      {Filter("region", "r_name", 0.2), Filter("orders", "o_orderdate", 0.15)},
      Agg(1, 1e-5)));
  templates_.push_back(MakeSpec(kB, "Q6", {"lineitem"}, {},
                                {Filter("lineitem", "l_shipdate", 0.15),
                                 Filter("lineitem", "l_discount", 0.27),
                                 Filter("lineitem", "l_quantity", 0.48)},
                                Agg(0, 1.0, /*sort=*/false)));
  templates_.push_back(MakeSpec(
      kB, "Q7", {"supplier", "lineitem", "orders", "customer", "nation"},
      {Join("supplier", "s_suppkey", "lineitem", "l_suppkey"),
       Join("lineitem", "l_orderkey", "orders", "o_orderkey"),
       Join("orders", "o_custkey", "customer", "c_custkey"),
       Join("supplier", "s_nationkey", "nation", "n_nationkey")},
      {Filter("nation", "n_name", 0.08),
       Filter("lineitem", "l_shipdate", 0.3)},
      Agg(3, 1e-5)));
  templates_.push_back(MakeSpec(
      kB, "Q8",
      {"part", "lineitem", "supplier", "orders", "customer", "nation",
       "region"},
      {Join("part", "p_partkey", "lineitem", "l_partkey"),
       Join("lineitem", "l_suppkey", "supplier", "s_suppkey"),
       Join("lineitem", "l_orderkey", "orders", "o_orderkey"),
       Join("orders", "o_custkey", "customer", "c_custkey"),
       Join("customer", "c_nationkey", "nation", "n_nationkey"),
       Join("nation", "n_regionkey", "region", "r_regionkey")},
      {Filter("part", "p_type", 0.007), Filter("region", "r_name", 0.2),
       Filter("orders", "o_orderdate", 0.3)},
      Agg(1, 1e-6)));
  templates_.push_back(MakeSpec(
      kB, "Q9", {"part", "supplier", "lineitem", "partsupp", "orders",
                 "nation"},
      {Join("part", "p_partkey", "lineitem", "l_partkey"),
       Join("supplier", "s_suppkey", "lineitem", "l_suppkey"),
       Join("partsupp", "ps_partkey", "lineitem", "l_partkey"),
       Join("lineitem", "l_orderkey", "orders", "o_orderkey"),
       Join("supplier", "s_nationkey", "nation", "n_nationkey")},
      {Filter("part", "p_type", 0.055)}, Agg(2, 1e-4)));
  templates_.push_back(MakeSpec(
      kB, "Q10", {"customer", "orders", "lineitem", "nation"},
      {Join("customer", "c_custkey", "orders", "o_custkey"),
       Join("orders", "o_orderkey", "lineitem", "l_orderkey"),
       Join("customer", "c_nationkey", "nation", "n_nationkey")},
      {Filter("orders", "o_orderdate", 0.04),
       Filter("lineitem", "l_returnflag", 0.33)},
      AggLimit(4, 0.3, 20)));
  templates_.push_back(MakeSpec(
      kB, "Q11", {"partsupp", "supplier", "nation"},
      {Join("partsupp", "ps_suppkey", "supplier", "s_suppkey"),
       Join("supplier", "s_nationkey", "nation", "n_nationkey")},
      {Filter("nation", "n_name", 0.04)}, Agg(1, 0.1)));
  templates_.push_back(MakeSpec(
      kB, "Q12", {"orders", "lineitem"},
      {Join("orders", "o_orderkey", "lineitem", "l_orderkey")},
      {Filter("lineitem", "l_shipmode", 0.28),
       Filter("lineitem", "l_receiptdate", 0.15)},
      Agg(1, 1e-6)));
  templates_.push_back(MakeSpec(
      kB, "Q13", {"customer", "orders"},
      {Join("customer", "c_custkey", "orders", "o_custkey")},
      {Filter("orders", "o_orderpriority", 0.98)}, Agg(1, 1e-4)));
  templates_.push_back(MakeSpec(
      kB, "Q14", {"lineitem", "part"},
      {Join("lineitem", "l_partkey", "part", "p_partkey")},
      {Filter("lineitem", "l_shipdate", 0.013)},
      Agg(0, 1.0, /*sort=*/false)));
  templates_.push_back(MakeSpec(
      kB, "Q15", {"lineitem", "supplier"},
      {Join("lineitem", "l_suppkey", "supplier", "s_suppkey")},
      {Filter("lineitem", "l_shipdate", 0.04)}, Agg(1, 0.002)));
  templates_.push_back(MakeSpec(
      kB, "Q16", {"partsupp", "part", "supplier"},
      {Join("partsupp", "ps_partkey", "part", "p_partkey"),
       Join("partsupp", "ps_suppkey", "supplier", "s_suppkey")},
      {Filter("part", "p_brand", 0.96), Filter("part", "p_size", 0.16)},
      Agg(3, 1e-3)));
  templates_.push_back(MakeSpec(
      kB, "Q17", {"lineitem", "part"},
      {Join("lineitem", "l_partkey", "part", "p_partkey")},
      {Filter("part", "p_brand", 0.04), Filter("part", "p_container", 0.025)},
      Agg(0, 1.0, /*sort=*/false)));
  templates_.push_back(MakeSpec(
      kB, "Q18", {"customer", "orders", "lineitem"},
      {Join("customer", "c_custkey", "orders", "o_custkey"),
       Join("orders", "o_orderkey", "lineitem", "l_orderkey")},
      {Filter("lineitem", "l_quantity", 0.05)}, AggLimit(4, 0.01, 100)));
  templates_.push_back(MakeSpec(
      kB, "Q19", {"lineitem", "part"},
      {Join("lineitem", "l_partkey", "part", "p_partkey")},
      {Filter("part", "p_brand", 0.12), Filter("part", "p_container", 0.1),
       Filter("lineitem", "l_quantity", 0.2),
       Filter("lineitem", "l_shipmode", 0.28)},
      Agg(0, 1.0, /*sort=*/false)));
  templates_.push_back(MakeSpec(
      kB, "Q20", {"supplier", "nation", "partsupp", "part"},
      {Join("supplier", "s_suppkey", "partsupp", "ps_suppkey"),
       Join("partsupp", "ps_partkey", "part", "p_partkey"),
       Join("supplier", "s_nationkey", "nation", "n_nationkey")},
      {Filter("part", "p_type", 0.05), Filter("nation", "n_name", 0.04)},
      Shape{.sort = true}));
  templates_.push_back(MakeSpec(
      kB, "Q21", {"supplier", "lineitem", "orders", "nation"},
      {Join("supplier", "s_suppkey", "lineitem", "l_suppkey"),
       Join("lineitem", "l_orderkey", "orders", "o_orderkey"),
       Join("supplier", "s_nationkey", "nation", "n_nationkey")},
      {Filter("orders", "o_orderstatus", 0.33),
       Filter("nation", "n_name", 0.04)},
      AggLimit(1, 1e-4, 100)));
  templates_.push_back(MakeSpec(
      kB, "Q22", {"customer", "orders"},
      {Join("customer", "c_custkey", "orders", "o_custkey")},
      {Filter("customer", "c_acctbal", 0.13)}, Agg(1, 1e-5)));
}

// ---------------------------------------------------------------------------
// TPC-DS
// ---------------------------------------------------------------------------

namespace {

struct FkEdge {
  const char* fact_col;
  const char* dim;
  const char* dim_col;
};

struct FactInfo {
  const char* name;
  std::vector<FkEdge> fks;
};

const std::vector<FactInfo>& TpcdsFacts() {
  static const std::vector<FactInfo>* const kFacts = new std::vector<FactInfo>{
      {"store_sales",
       {{"ss_item_sk", "item", "i_item_sk"},
        {"ss_customer_sk", "customer", "c_customer_sk"},
        {"ss_store_sk", "store", "s_store_sk"},
        {"ss_sold_date_sk", "date_dim", "d_date_sk"},
        {"ss_promo_sk", "promotion", "p_promo_sk"}}},
      {"catalog_sales",
       {{"cs_item_sk", "item", "i_item_sk"},
        {"cs_bill_customer_sk", "customer", "c_customer_sk"},
        {"cs_call_center_sk", "call_center", "cc_call_center_sk"},
        {"cs_sold_date_sk", "date_dim", "d_date_sk"}}},
      {"web_sales",
       {{"ws_item_sk", "item", "i_item_sk"},
        {"ws_bill_customer_sk", "customer", "c_customer_sk"},
        {"ws_web_site_sk", "web_site", "web_site_sk"},
        {"ws_sold_date_sk", "date_dim", "d_date_sk"}}},
      {"store_returns",
       {{"sr_item_sk", "item", "i_item_sk"},
        {"sr_customer_sk", "customer", "c_customer_sk"},
        {"sr_returned_date_sk", "date_dim", "d_date_sk"}}},
      {"inventory",
       {{"inv_item_sk", "item", "i_item_sk"},
        {"inv_warehouse_sk", "warehouse", "w_warehouse_sk"},
        {"inv_date_sk", "date_dim", "d_date_sk"}}},
  };
  return *kFacts;
}

// Representative filterable columns per dimension table.
struct DimFilter {
  const char* table;
  const char* column;
  double min_sel;
  double max_sel;
};

const std::vector<DimFilter>& TpcdsDimFilters() {
  static const std::vector<DimFilter>* const kFilters =
      new std::vector<DimFilter>{
          {"date_dim", "d_year", 0.005, 0.1},
          {"date_dim", "d_moy", 0.03, 0.2},
          {"item", "i_category", 0.05, 0.3},
          {"item", "i_class", 0.005, 0.1},
          {"customer", "c_birth_year", 0.01, 0.2},
          {"customer_address", "ca_state", 0.005, 0.1},
          {"store", "s_state", 0.05, 0.5},
          {"customer_demographics", "cd_gender", 0.3, 0.6},
          {"customer_demographics", "cd_marital_status", 0.1, 0.4},
          {"promotion", "p_channel_email", 0.3, 0.6},
          {"household_demographics", "hd_buy_potential", 0.1, 0.4},
      };
  return *kFilters;
}

}  // namespace

TpcdsWorkload::TpcdsWorkload(double scale_factor, int num_templates)
    : BenchmarkWorkload(catalog::MakeTpcdsCatalog(scale_factor)) {
  for (int i = 0; i < num_templates; ++i) {
    util::Rng rng(9000 + i);  // template i is always the same shape
    const FactInfo& fact = TpcdsFacts()[rng.UniformInt(0, TpcdsFacts().size() - 1)];

    QuerySpec spec;
    spec.benchmark = "tpcds";
    spec.template_id = "Q" + std::to_string(i + 1);
    spec.tables.push_back(fact.name);

    // Join 2..min(4, fks) dimensions.
    const int max_dims = static_cast<int>(fact.fks.size());
    const int num_dims = static_cast<int>(rng.UniformInt(2, std::min(4, max_dims)));
    std::vector<int> order = rng.Permutation(max_dims);
    bool has_customer = false;
    for (int d = 0; d < num_dims; ++d) {
      const FkEdge& fk = fact.fks[order[d]];
      spec.tables.push_back(fk.dim);
      spec.joins.push_back(Join(fact.name, fk.fact_col, fk.dim, fk.dim_col));
      if (std::string(fk.dim) == "customer") has_customer = true;
    }
    // Snowflake out of customer sometimes.
    if (has_customer && rng.Bernoulli(0.5)) {
      if (rng.Bernoulli(0.5)) {
        spec.tables.push_back("customer_address");
        spec.joins.push_back(Join("customer", "c_current_addr_sk",
                                  "customer_address", "ca_address_sk"));
      } else {
        spec.tables.push_back("customer_demographics");
        spec.joins.push_back(Join("customer", "c_current_cdemo_sk",
                                  "customer_demographics", "cd_demo_sk"));
      }
    }

    // 1..3 filters on joined tables.
    const int num_filters = static_cast<int>(rng.UniformInt(1, 3));
    int added = 0;
    std::vector<int> filter_order = rng.Permutation(
        static_cast<int>(TpcdsDimFilters().size()));
    for (int f = 0; f < static_cast<int>(filter_order.size()) && added < num_filters;
         ++f) {
      const DimFilter& dim_filter = TpcdsDimFilters()[filter_order[f]];
      bool joined = false;
      for (const std::string& t : spec.tables) joined = joined || t == dim_filter.table;
      if (!joined) continue;
      const double log_lo = std::log(dim_filter.min_sel);
      const double log_hi = std::log(dim_filter.max_sel);
      spec.filters.push_back(Filter(dim_filter.table, dim_filter.column,
                                    std::exp(rng.Uniform(log_lo, log_hi))));
      ++added;
    }
    // Occasionally filter the fact table itself.
    if (rng.Bernoulli(0.3)) {
      const catalog::TableStats* fact_table = catalog_.FindTable(fact.name);
      if (fact_table != nullptr && fact_table->columns.size() > 4) {
        spec.filters.push_back(
            Filter(fact.name, fact_table->columns.back().name.c_str(),
                   rng.Uniform(0.2, 0.8)));
      }
    }

    if (rng.Bernoulli(0.8)) {
      spec.has_aggregate = true;
      spec.num_group_keys = static_cast<int>(rng.UniformInt(1, 4));
      spec.group_fraction = std::pow(10.0, -rng.Uniform(1.0, 4.0));
    }
    spec.has_sort = rng.Bernoulli(0.7);
    spec.num_sort_keys = static_cast<int>(rng.UniformInt(1, 3));
    if (rng.Bernoulli(0.4)) {
      spec.has_limit = true;
      spec.limit_rows = 100;
    }
    templates_.push_back(std::move(spec));
  }
}

// ---------------------------------------------------------------------------
// Join Order Benchmark
// ---------------------------------------------------------------------------

namespace {

// Bridge tables connect to `title` via movie_id; each optionally pulls in a
// dimension table.
struct JobBridge {
  const char* table;
  const char* dim;        // nullptr if none
  const char* bridge_col; // FK column in bridge pointing at dim
  const char* dim_col;
};

const std::vector<JobBridge>& JobBridges() {
  static const std::vector<JobBridge>* const kBridges =
      new std::vector<JobBridge>{
          {"movie_companies", "company_name", "company_id", "id"},
          {"movie_info", "info_type", "info_type_id", "id"},
          {"movie_info_idx", "info_type", "info_type_id", "id"},
          {"movie_keyword", "keyword", "keyword_id", "id"},
          {"cast_info", "name", "person_id", "id"},
          {"complete_cast", "comp_cast_type", "subject_id", "id"},
          {"movie_link", "link_type", "link_type_id", "id"},
          {"aka_title", nullptr, nullptr, nullptr},
      };
  return *kBridges;
}

struct JobFilter {
  const char* table;
  const char* column;
  double sel;
};

const std::vector<JobFilter>& JobFilters() {
  static const std::vector<JobFilter>* const kFilters =
      new std::vector<JobFilter>{
          {"title", "production_year", 0.15},
          {"title", "kind_id", 0.4},
          {"company_name", "country_code", 0.05},
          {"info_type", "info", 0.009},
          {"keyword", "keyword", 0.0001},
          {"name", "gender", 0.3},
          {"movie_companies", "company_type_id", 0.5},
          {"cast_info", "role_id", 0.09},
          {"movie_info", "info_type_id", 0.014},
          {"link_type", "link", 0.06},
      };
  return *kFilters;
}

}  // namespace

JobWorkload::JobWorkload() : BenchmarkWorkload(catalog::MakeImdbCatalog()) {
  // 113 = 14 clusters of 4 variants + 19 clusters of 3 variants.
  int template_counter = 0;
  for (int cluster = 0; cluster < kNumClusters; ++cluster) {
    util::Rng rng(7000 + cluster);

    // Cluster base: title plus 2..4 bridges (and their dims).
    const int num_bridges = static_cast<int>(rng.UniformInt(2, 4));
    std::vector<const char*> tables = {"title"};
    std::vector<JoinSpec> joins;
    std::vector<int> order =
        rng.Permutation(static_cast<int>(JobBridges().size()));
    for (int b = 0; b < num_bridges; ++b) {
      const JobBridge& bridge = JobBridges()[order[b]];
      tables.push_back(bridge.table);
      joins.push_back(Join("title", "id", bridge.table, "movie_id"));
      if (bridge.dim != nullptr && rng.Bernoulli(0.7)) {
        tables.push_back(bridge.dim);
        joins.push_back(
            Join(bridge.table, bridge.bridge_col, bridge.dim, bridge.dim_col));
      }
    }
    if (rng.Bernoulli(0.3)) {
      tables.push_back("kind_type");
      joins.push_back(Join("title", "kind_id", "kind_type", "id"));
    }

    // Base filters: 2..4 on the joined tables.
    std::vector<FilterSpec> base_filters;
    const int num_filters = static_cast<int>(rng.UniformInt(2, 4));
    std::vector<int> filter_order =
        rng.Permutation(static_cast<int>(JobFilters().size()));
    for (int f = 0;
         f < static_cast<int>(filter_order.size()) &&
         static_cast<int>(base_filters.size()) < num_filters;
         ++f) {
      const JobFilter& job_filter = JobFilters()[filter_order[f]];
      bool joined = false;
      for (const char* t : tables) {
        joined = joined || std::string(t) == job_filter.table;
      }
      if (!joined) continue;
      base_filters.push_back(
          Filter(job_filter.table, job_filter.column, job_filter.sel));
    }

    const int variants = cluster < 14 ? 4 : 3;
    for (int v = 0; v < variants && template_counter < kNumTemplates; ++v) {
      QuerySpec spec;
      spec.benchmark = "job";
      spec.template_id =
          std::to_string(cluster + 1) + static_cast<char>('a' + v);
      spec.cluster_id = cluster;
      for (const char* t : tables) spec.tables.emplace_back(t);
      spec.joins = joins;
      spec.filters = base_filters;
      // Variants differ in predicate selectivity (like 11a..11d): variant v
      // scales filter f by a deterministic factor.
      for (size_t f = 0; f < spec.filters.size(); ++f) {
        const double factor =
            std::pow(3.0, ((v + static_cast<int>(f)) % 4) - 1.5);
        spec.filters[f].selectivity =
            Clamp(spec.filters[f].selectivity * factor, 1e-7, 0.98);
      }
      // JOB queries are SELECT MIN(...) FROM ... : plain aggregate.
      spec.has_aggregate = true;
      spec.num_group_keys = 0;
      spec.group_fraction = 1.0;
      templates_.push_back(std::move(spec));
      ++template_counter;
    }
  }
}

// ---------------------------------------------------------------------------
// Spatial (Jackpine + OSM)
// ---------------------------------------------------------------------------

SpatialWorkload::SpatialWorkload(double region_scale)
    : BenchmarkWorkload(catalog::MakeSpatialCatalog(region_scale)) {
  const char* kB = "spatial";
  const bool kSp = true;
  // Jackpine-style templates.
  templates_.push_back(MakeSpec(
      kB, "Q1", {"arealm", "areawater"},
      {Join("arealm", "geom", "areawater", "geom", kSp)},
      {Filter("arealm", "geom", 0.05, kSp)}, Agg(0, 1.0, false)));
  templates_.push_back(MakeSpec(
      kB, "Q2", {"pointlm", "arealm"},
      {Join("pointlm", "geom", "arealm", "geom", kSp)}, {},
      Agg(0, 1.0, false)));
  templates_.push_back(MakeSpec(
      kB, "Q3", {"edges", "arealm"},
      {Join("edges", "geom", "arealm", "geom", kSp)},
      {Filter("edges", "roadflg", 0.5)}, Agg(0, 1.0, false)));
  templates_.push_back(MakeSpec(
      kB, "Q4", {"pointlm", "edges"},
      {Join("pointlm", "geom", "edges", "geom", kSp)},
      {Filter("pointlm", "mtfcc", 0.1)}, Agg(0, 1.0, false)));
  templates_.push_back(MakeSpec(
      kB, "Q5", {"county", "arealm"},
      {Join("county", "geom", "arealm", "geom", kSp)}, {},
      Agg(1, 0.001)));
  templates_.push_back(MakeSpec(
      kB, "Q6", {"areawater", "county"},
      {Join("areawater", "geom", "county", "geom", kSp)},
      {Filter("county", "name", 0.05)}, Agg(0, 1.0, false)));
  templates_.push_back(MakeSpec(
      kB, "Q7", {"edges", "county"},
      {Join("edges", "geom", "county", "geom", kSp)},
      {Filter("edges", "mtfcc", 0.08)}, Agg(1, 0.0001)));
  templates_.push_back(
      MakeSpec(kB, "Q8", {"arealm"}, {},
               {Filter("arealm", "geom", 0.01, kSp)}, Shape{.sort = true}));
  templates_.push_back(MakeSpec(kB, "Q9", {"edges"}, {},
                                {Filter("edges", "geom", 0.001, kSp)},
                                SortLimit(1000)));
  templates_.push_back(MakeSpec(
      kB, "Q10", {"pointlm"}, {},
      {Filter("pointlm", "geom", 0.005, kSp)}, Agg(1, 0.01)));
  templates_.push_back(MakeSpec(
      kB, "Q11", {"areawater"}, {},
      {Filter("areawater", "geom", 0.02, kSp)}, Agg(0, 1.0, false)));
  templates_.push_back(MakeSpec(
      kB, "Q12", {"edges", "pointlm", "arealm"},
      {Join("edges", "geom", "pointlm", "geom", kSp),
       Join("edges", "geom", "arealm", "geom", kSp)},
      {Filter("edges", "roadflg", 0.5)}, Agg(1, 0.001)));
  // OSM-style templates.
  templates_.push_back(MakeSpec(
      kB, "OSM1", {"osm_points", "osm_polygons"},
      {Join("osm_points", "geom", "osm_polygons", "geom", kSp)},
      {Filter("osm_points", "amenity", 0.02)}, Agg(0, 1.0, false)));
  templates_.push_back(MakeSpec(
      kB, "OSM2", {"osm_lines", "osm_polygons"},
      {Join("osm_lines", "geom", "osm_polygons", "geom", kSp)},
      {Filter("osm_lines", "highway", 0.2)}, Agg(1, 0.0005)));
  templates_.push_back(MakeSpec(
      kB, "OSM3", {"osm_roads", "osm_points"},
      {Join("osm_roads", "geom", "osm_points", "geom", kSp)}, {},
      Agg(0, 1.0, false)));
  templates_.push_back(MakeSpec(
      kB, "OSM4", {"osm_polygons"}, {},
      {Filter("osm_polygons", "geom", 0.002, kSp),
       Filter("osm_polygons", "building", 0.4)},
      SortLimit(500)));
  templates_.push_back(MakeSpec(
      kB, "OSM5", {"osm_points"}, {},
      {Filter("osm_points", "amenity", 0.01),
       Filter("osm_points", "geom", 0.05, kSp)},
      Agg(1, 0.01)));
  templates_.push_back(MakeSpec(
      kB, "OSM6", {"osm_roads", "osm_lines"},
      {Join("osm_roads", "geom", "osm_lines", "geom", kSp)},
      {Filter("osm_roads", "ref", 0.05)}, Agg(0, 1.0, false)));
  templates_.push_back(MakeSpec(
      kB, "OSM7", {"osm_lines"}, {},
      {Filter("osm_lines", "geom", 0.01, kSp)}, Agg(2, 0.001)));
  templates_.push_back(MakeSpec(
      kB, "OSM8", {"osm_points", "osm_roads", "osm_polygons"},
      {Join("osm_points", "geom", "osm_roads", "geom", kSp),
       Join("osm_roads", "geom", "osm_polygons", "geom", kSp)},
      {Filter("osm_polygons", "building", 0.3)}, Agg(1, 0.0001)));
}

}  // namespace qpe::simdb
