#include "simdb/workload_runner.h"

#include "simdb/executor.h"
#include "simdb/planner.h"

namespace qpe::simdb {

std::vector<ExecutedQuery> RunWorkloadTemplates(
    const BenchmarkWorkload& workload,
    const std::vector<int>& template_indices,
    const std::vector<config::DbConfig>& configs, const RunOptions& options) {
  std::vector<ExecutedQuery> executed;
  executed.reserve(template_indices.size() * options.instances_per_template *
                   configs.size());
  // Two independent streams: instance generation must not depend on how
  // many configurations are run, so that the same seed reproduces the same
  // query instances — letting callers execute one instance set under
  // *different* configuration sets (train vs test configurations, as in the
  // paper's Figure 5/6 protocol).
  util::Rng instance_stream(options.seed);
  util::Rng noise_stream(options.seed ^ 0xA5A5A5A5A5A5A5A5ULL);
  for (int t : template_indices) {
    for (int i = 0; i < options.instances_per_template; ++i) {
      // Fix the instance (literals + data) once, then run it under every
      // configuration.
      util::Rng instance_rng = instance_stream.Fork();
      const QuerySpec spec = workload.Instantiate(t, &instance_rng);
      for (const config::DbConfig& db_config : configs) {
        Planner planner(&workload.GetCatalog(), &db_config);
        ExecutorSim executor(&workload.GetCatalog(), &db_config);
        ExecutedQuery record;
        record.query = planner.PlanQuery(spec);
        util::Rng run_noise = noise_stream.Fork();
        record.latency_ms =
            executor.Execute(&record.query, spec.cardinality_seed, &run_noise);
        record.db_config = db_config;
        record.template_index = t;
        record.instance_index = i;
        executed.push_back(std::move(record));
      }
    }
  }
  return executed;
}

std::vector<ExecutedQuery> RunWorkload(
    const BenchmarkWorkload& workload,
    const std::vector<config::DbConfig>& configs, const RunOptions& options) {
  std::vector<int> all(workload.NumTemplates());
  for (int i = 0; i < workload.NumTemplates(); ++i) all[i] = i;
  return RunWorkloadTemplates(workload, all, configs, options);
}

}  // namespace qpe::simdb
