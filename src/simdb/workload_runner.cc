#include "simdb/workload_runner.h"

#include "simdb/executor.h"
#include "simdb/planner.h"
#include "util/thread_pool.h"

namespace qpe::simdb {

std::vector<ExecutedQuery> RunWorkloadTemplates(
    const BenchmarkWorkload& workload,
    const std::vector<int>& template_indices,
    const std::vector<config::DbConfig>& configs, const RunOptions& options) {
  // Two independent streams: instance generation must not depend on how
  // many configurations are run, so that the same seed reproduces the same
  // query instances — letting callers execute one instance set under
  // *different* configuration sets (train vs test configurations, as in the
  // paper's Figure 5/6 protocol).
  //
  // Every per-run RNG is forked sequentially up front, in the same nested
  // (template, instance, config) order the sequential loop used, and each
  // parallel task writes a precomputed slot of the output — so the result
  // is bit-identical to a single-threaded run for any thread count.
  util::Rng instance_stream(options.seed);
  util::Rng noise_stream(options.seed ^ 0xA5A5A5A5A5A5A5A5ULL);
  struct Item {
    int template_index = -1;
    int instance_index = -1;
    util::Rng instance_rng;
    std::vector<util::Rng> noise_rngs;  // one per configuration
  };
  std::vector<Item> items;
  items.reserve(template_indices.size() * options.instances_per_template);
  for (int t : template_indices) {
    for (int i = 0; i < options.instances_per_template; ++i) {
      Item item;
      item.template_index = t;
      item.instance_index = i;
      item.instance_rng = instance_stream.Fork();
      item.noise_rngs.reserve(configs.size());
      for (size_t c = 0; c < configs.size(); ++c) {
        item.noise_rngs.push_back(noise_stream.Fork());
      }
      items.push_back(std::move(item));
    }
  }
  const int num_configs = static_cast<int>(configs.size());
  std::vector<ExecutedQuery> executed(items.size() * configs.size());
  util::ParallelRun(static_cast<int>(items.size()), [&](int idx) {
    Item& item = items[idx];
    // Fix the instance (literals + data) once, then run it under every
    // configuration.
    const QuerySpec spec =
        workload.Instantiate(item.template_index, &item.instance_rng);
    for (int c = 0; c < num_configs; ++c) {
      const config::DbConfig& db_config = configs[c];
      Planner planner(&workload.GetCatalog(), &db_config);
      ExecutorSim executor(&workload.GetCatalog(), &db_config);
      ExecutedQuery record;
      record.query = planner.PlanQuery(spec);
      record.latency_ms = executor.Execute(&record.query, spec.cardinality_seed,
                                           &item.noise_rngs[c]);
      record.db_config = db_config;
      record.template_index = item.template_index;
      record.instance_index = item.instance_index;
      executed[static_cast<size_t>(idx) * num_configs + c] = std::move(record);
    }
  });
  return executed;
}

std::vector<ExecutedQuery> RunWorkload(
    const BenchmarkWorkload& workload,
    const std::vector<config::DbConfig>& configs, const RunOptions& options) {
  std::vector<int> all(workload.NumTemplates());
  for (int i = 0; i < workload.NumTemplates(); ++i) all[i] = i;
  return RunWorkloadTemplates(workload, all, configs, options);
}

}  // namespace qpe::simdb
