#ifndef QPE_SIMDB_QUERY_SPEC_H_
#define QPE_SIMDB_QUERY_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

namespace qpe::simdb {

// A predicate on one table. `selectivity` is the true fraction of rows
// passing; `spatial` marks geometry predicates (ST_Intersects & co), which
// are far more expensive per row and harder to estimate.
struct FilterSpec {
  std::string table;
  std::string column;
  double selectivity = 0.1;
  bool spatial = false;
};

// An equi-join (or spatial join when `spatial`) between two tables.
struct JoinSpec {
  std::string left_table;
  std::string left_column;
  std::string right_table;
  std::string right_column;
  bool spatial = false;
};

// Logical description of a query: the planner turns this plus a catalog and
// a configuration into a physical plan. This is the analogue of the SQL
// text of one benchmark query instance.
struct QuerySpec {
  std::vector<std::string> tables;
  std::vector<JoinSpec> joins;      // join graph; must connect `tables`
  std::vector<FilterSpec> filters;

  bool has_aggregate = false;
  int num_group_keys = 0;
  double group_fraction = 0.1;  // fraction of input rows surviving GROUP BY

  bool has_sort = false;
  int num_sort_keys = 1;

  bool has_limit = false;
  double limit_rows = 100;

  // Identity/metadata.
  std::string benchmark;
  std::string template_id;
  int cluster_id = -1;

  // Seed fixing the query instance's *data-dependent* randomness (true
  // cardinalities). The same instance executed under different knob
  // configurations sees identical data, so this seed must not change with
  // the configuration.
  uint64_t cardinality_seed = 0;
};

}  // namespace qpe::simdb

#endif  // QPE_SIMDB_QUERY_SPEC_H_
