#ifndef QPE_SIMDB_PLANNER_H_
#define QPE_SIMDB_PLANNER_H_

#include "catalog/catalog.h"
#include "config/db_config.h"
#include "plan/plan_node.h"
#include "simdb/query_spec.h"

namespace qpe::simdb {

// Cost-based physical planner: the stand-in for the PostgreSQL optimizer.
// Given a logical QuerySpec, table statistics, and configuration knobs, it
// chooses access paths (seq / index / bitmap heap scan), a greedy join
// order, join algorithms (hash / merge / nested loop, with or without an
// inner index), and aggregation/sort strategies, producing a plan tree with
// optimizer estimates (Plan Rows, Plan Width, Startup/Total Cost).
//
// Configuration knobs influence planning the way they do in PostgreSQL:
// random_page_cost and effective_cache_size steer scan choice, work_mem
// steers hash/sort strategy and batching. That is what makes the same query
// produce *different plans* under different configurations — the phenomenon
// the paper's workload characterization is built around.
class Planner {
 public:
  Planner(const catalog::Catalog* catalog, const config::DbConfig* db_config)
      : catalog_(catalog), config_(db_config) {}

  // Plans the query. The returned plan carries estimates and the chosen
  // physical structure; actual runtime properties are filled in later by
  // ExecutorSim.
  plan::Plan PlanQuery(const QuerySpec& spec) const;

  // Cost-model constants (PostgreSQL defaults, arbitrary cost units).
  static constexpr double kSeqPageCost = 1.0;
  static constexpr double kCpuTupleCost = 0.01;
  static constexpr double kCpuIndexTupleCost = 0.005;
  static constexpr double kCpuOperatorCost = 0.0025;

  // Parallel-query model: worker count, startup overhead (parallel_setup_
  // cost analogue) and the table size above which a Gather plan is offered.
  static constexpr double kParallelWorkers = 4.0;
  static constexpr double kParallelSetupCost = 1000.0;
  static constexpr double kParallelPageThreshold = 50000.0;

  // The random_page_cost knob is stored scaled by 1000 in the knob table
  // (paper Table 5 medians ~5000); the effective multiplier is value/1000.
  double RandomPageCost() const;

  // Random-page cost discounted by the expected cache residency of a table
  // (effective_cache_size + shared_buffers vs table size).
  double EffectiveRandomPageCost(const catalog::TableStats& table) const;

 private:
  const catalog::Catalog* catalog_;
  const config::DbConfig* config_;
};

}  // namespace qpe::simdb

#endif  // QPE_SIMDB_PLANNER_H_
