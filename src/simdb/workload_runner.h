#ifndef QPE_SIMDB_WORKLOAD_RUNNER_H_
#define QPE_SIMDB_WORKLOAD_RUNNER_H_

#include <cstdint>
#include <vector>

#include "config/db_config.h"
#include "plan/plan_node.h"
#include "simdb/workloads.h"

namespace qpe::simdb {

// One executed query: the plan (with all actual properties filled in), the
// configuration it ran under, and the observed latency. This is the unit of
// training data for the performance encoder and the downstream tasks — the
// analogue of one uploaded EXPLAIN ANALYZE record in the paper's pipeline.
struct ExecutedQuery {
  plan::Plan query;
  config::DbConfig db_config;
  double latency_ms = 0;
  int template_index = -1;
  int instance_index = -1;

  ExecutedQuery Clone() const {
    ExecutedQuery copy;
    copy.query = query.CloneDeep();
    copy.db_config = db_config;
    copy.latency_ms = latency_ms;
    copy.template_index = template_index;
    copy.instance_index = instance_index;
    return copy;
  }
};

// Options for a workload run.
struct RunOptions {
  int instances_per_template = 1;  // distinct literal instantiations
  uint64_t seed = 42;
};

// Executes every template of `workload` under every configuration. The same
// query instance (fixed literals and data) is executed under all
// configurations, so per-template latency variability across configurations
// is attributable to the knobs — the setting of the paper's Figure 5.
std::vector<ExecutedQuery> RunWorkload(
    const BenchmarkWorkload& workload,
    const std::vector<config::DbConfig>& configs, const RunOptions& options);

// Convenience: runs only the given template indices.
std::vector<ExecutedQuery> RunWorkloadTemplates(
    const BenchmarkWorkload& workload, const std::vector<int>& template_indices,
    const std::vector<config::DbConfig>& configs, const RunOptions& options);

}  // namespace qpe::simdb

#endif  // QPE_SIMDB_WORKLOAD_RUNNER_H_
