#ifndef QPE_SIMDB_WORKLOADS_H_
#define QPE_SIMDB_WORKLOADS_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "simdb/query_spec.h"
#include "util/rng.h"

namespace qpe::simdb {

// A benchmark workload: a catalog plus a fixed set of query templates.
// Instantiate() produces a query instance — same structure as the template,
// with literal parameters (filter selectivities) jittered and a fresh
// cardinality seed, mirroring how benchmark drivers substitute random
// literals into templates.
class BenchmarkWorkload {
 public:
  virtual ~BenchmarkWorkload() = default;

  const catalog::Catalog& GetCatalog() const { return catalog_; }
  int NumTemplates() const { return static_cast<int>(templates_.size()); }
  const QuerySpec& Template(int i) const { return templates_[i]; }
  const std::string& TemplateName(int i) const {
    return templates_[i].template_id;
  }
  int ClusterOf(int i) const { return templates_[i].cluster_id; }

  QuerySpec Instantiate(int template_index, util::Rng* rng) const;

 protected:
  explicit BenchmarkWorkload(catalog::Catalog catalog)
      : catalog_(std::move(catalog)) {}

  catalog::Catalog catalog_;
  std::vector<QuerySpec> templates_;
};

// TPC-H: 22 templates approximating the shapes of Q1..Q22.
class TpchWorkload : public BenchmarkWorkload {
 public:
  explicit TpchWorkload(double scale_factor);
};

// TPC-DS: `num_templates` star/snowflake templates over the TPC-DS schema,
// generated deterministically (template i is always the same query shape).
class TpcdsWorkload : public BenchmarkWorkload {
 public:
  explicit TpcdsWorkload(double scale_factor, int num_templates = 60);
};

// Join Order Benchmark: 113 templates in 33 clusters over the IMDB schema.
// Templates within a cluster share a join graph and differ in predicates,
// like JOB's 11a/11b/11c/11d variants.
class JobWorkload : public BenchmarkWorkload {
 public:
  JobWorkload();
  static constexpr int kNumClusters = 33;
  static constexpr int kNumTemplates = 113;
};

// Spatial benchmark: 12 Jackpine-style templates (prefix "Q") plus 8
// OSM-style templates (prefix "OSM").
class SpatialWorkload : public BenchmarkWorkload {
 public:
  explicit SpatialWorkload(double region_scale = 1.0);
};

}  // namespace qpe::simdb

#endif  // QPE_SIMDB_WORKLOADS_H_
