#include "simdb/planner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace qpe::simdb {

namespace {

using catalog::ColumnStats;
using catalog::TableStats;
using plan::JoinKind;
using plan::OperatorType;
using plan::ParentRelationship;
using plan::PlanNode;

OperatorType Op(const char* token) { return OperatorType::Parse(token); }

// A planned sub-result during join enumeration.
struct Rel {
  std::unique_ptr<PlanNode> node;
  std::set<std::string> tables;
  double rows = 1;
  double width = 8;
  double cost = 0;          // total cost of the subtree
  double startup_cost = 0;  // cost before the first output row
  std::string sorted_on;    // column the output is ordered by, if any
};

struct ScanChoice {
  std::unique_ptr<PlanNode> node;
  double cost = 0;
  double startup = 0;
  std::string sorted_on;
};

double Clamp(double v, double lo, double hi) {
  return std::min(hi, std::max(lo, v));
}

}  // namespace

double Planner::RandomPageCost() const {
  return Clamp(config_->Get(config::Knob::kRandomPageCost) / 1000.0, 0.1, 10.0);
}

double Planner::EffectiveRandomPageCost(const TableStats& table) const {
  const double cache_bytes =
      config_->Get(config::Knob::kEffectiveCacheSize) +
      config_->Get(config::Knob::kSharedBuffers);
  const double cache_frac = Clamp(cache_bytes / table.TotalBytes(), 0.0, 1.0);
  return std::max(kSeqPageCost, RandomPageCost() * (1.0 - 0.7 * cache_frac));
}

plan::Plan Planner::PlanQuery(const QuerySpec& spec) const {
  const double work_mem = config_->Get(config::Knob::kWorkMem);

  // ---------------------------------------------------------------------
  // 1. Plan one access path per base table.
  // ---------------------------------------------------------------------
  std::vector<Rel> rels;
  for (const std::string& table_name : spec.tables) {
    const TableStats* table = catalog_->FindTable(table_name);
    if (table == nullptr) continue;
    const double pages = table->PageCount();
    const double rows = table->row_count;

    // Combined selectivity and best indexed filter column for this table.
    double selectivity = 1.0;
    int num_filters = 0;
    bool any_spatial = false;
    const ColumnStats* best_index_col = nullptr;
    double best_index_sel = 1.0;
    for (const FilterSpec& filter : spec.filters) {
      if (filter.table != table_name) continue;
      selectivity *= Clamp(filter.selectivity, 1e-8, 1.0);
      ++num_filters;
      any_spatial = any_spatial || filter.spatial;
      const ColumnStats* col = table->FindColumn(filter.column);
      if (col != nullptr && col->indexed && filter.selectivity < best_index_sel) {
        best_index_sel = filter.selectivity;
        best_index_col = col;
      }
    }
    const double out_rows = std::max(1.0, rows * selectivity);

    std::vector<ScanChoice> choices;

    // Sequential scan: read every page, test every row.
    {
      ScanChoice seq;
      seq.node = std::make_unique<PlanNode>(Op("Scan-Seq"));
      seq.cost = pages * kSeqPageCost + rows * kCpuTupleCost +
                 num_filters * rows * kCpuOperatorCost;
      seq.startup = 0;
      choices.push_back(std::move(seq));
    }

    // Parallel sequential scan under a Gather node: CPU work divides across
    // kParallelWorkers, IO does not; worthwhile only for big tables.
    if (pages > kParallelPageThreshold) {
      ScanChoice parallel;
      auto gather = std::make_unique<PlanNode>(Op("Gather"));
      PlanNode* worker_scan = gather->AddChild(Op("Scan-Seq-Parallel"));
      worker_scan->props().parallel = true;
      worker_scan->props().parallel_aware = true;
      worker_scan->props().partial_mode = true;
      worker_scan->props().plan_rows = out_rows / kParallelWorkers;
      worker_scan->props().plan_width = table->RowWidth() * 0.6;
      worker_scan->props().has_filter = num_filters > 0;
      worker_scan->AddRelation(table_name);
      const double cpu = (rows * kCpuTupleCost +
                          num_filters * rows * kCpuOperatorCost) /
                         kParallelWorkers;
      const double io = pages * kSeqPageCost;  // shared I/O bandwidth
      worker_scan->props().total_cost = io + cpu;
      parallel.cost = io + cpu + kParallelSetupCost +
                      out_rows * kCpuTupleCost * 0.1;  // gather motion
      parallel.startup = kParallelSetupCost;
      parallel.node = std::move(gather);
      choices.push_back(std::move(parallel));
    }

    if (best_index_col != nullptr) {
      const double eff_random = EffectiveRandomPageCost(*table);
      const double corr = std::abs(best_index_col->correlation);
      // Index scan: random heap fetches, fewer when physically correlated.
      {
        const double fetched =
            Clamp(pages * best_index_sel * (2.0 - corr), 1.0, pages);
        ScanChoice idx;
        idx.node = std::make_unique<PlanNode>(Op("Scan-Index"));
        idx.node->props().has_index_condition = true;
        idx.cost = fetched * eff_random +
                   rows * best_index_sel * (kCpuIndexTupleCost + kCpuTupleCost) +
                   num_filters * rows * best_index_sel * kCpuOperatorCost;
        idx.startup = 0;
        idx.sorted_on = corr > 0.8 ? best_index_col->name : "";
        choices.push_back(std::move(idx));
      }
      // Bitmap heap scan: batch the random fetches in heap order.
      {
        const double fetched = Clamp(2.0 * pages * best_index_sel, 1.0, pages);
        const double page_cost =
            kSeqPageCost +
            (eff_random - kSeqPageCost) * std::sqrt(best_index_sel);
        ScanChoice bitmap;
        bitmap.node = std::make_unique<PlanNode>(Op("Scan-Heap-Bitmap"));
        bitmap.node->props().has_index_condition = true;
        bitmap.node->props().has_recheck_condition = true;
        PlanNode* bitmap_index = bitmap.node->AddChild(Op("Scan-Index-Bitmap"));
        bitmap_index->props().has_index_condition = true;
        bitmap_index->props().plan_rows = out_rows;
        bitmap_index->props().plan_width = 0;
        bitmap_index->AddRelation(table_name);
        // Index part startup: the bitmap must be built before output.
        const double index_cost =
            rows * best_index_sel * kCpuIndexTupleCost + best_index_sel * pages * 0.1;
        bitmap_index->props().total_cost = index_cost;
        bitmap.cost = index_cost + fetched * page_cost +
                      rows * best_index_sel * (kCpuTupleCost + kCpuOperatorCost) +
                      num_filters * rows * best_index_sel * kCpuOperatorCost;
        bitmap.startup = index_cost;
        choices.push_back(std::move(bitmap));
      }
    }

    size_t best = 0;
    for (size_t i = 1; i < choices.size(); ++i) {
      if (choices[i].cost < choices[best].cost) best = i;
    }
    ScanChoice chosen = std::move(choices[best]);
    chosen.node->AddRelation(table_name);
    chosen.node->props().plan_rows = out_rows;
    chosen.node->props().plan_width = table->RowWidth() * 0.6;
    chosen.node->props().has_filter = num_filters > 0;
    chosen.node->props().heap_blocks =
        chosen.node->type().ToString() == "Scan-Heap-Bitmap"
            ? Clamp(2.0 * pages * selectivity, 1.0, pages)
            : 0;
    chosen.node->props().startup_cost = chosen.startup;
    chosen.node->props().total_cost = chosen.cost;
    if (any_spatial) chosen.node->props().has_recheck_condition = true;

    Rel rel;
    rel.tables.insert(table_name);
    rel.rows = out_rows;
    rel.width = table->RowWidth() * 0.6;
    rel.cost = chosen.cost;
    rel.startup_cost = chosen.startup;
    rel.sorted_on = chosen.sorted_on;
    rel.node = std::move(chosen.node);
    rels.push_back(std::move(rel));
  }

  // ---------------------------------------------------------------------
  // 2. Greedy join-order enumeration over the join graph.
  // ---------------------------------------------------------------------
  auto join_selectivity = [&](const JoinSpec& join) {
    if (join.spatial) {
      // Spatial joins emit a few matches per outer feature.
      const TableStats* right = catalog_->FindTable(join.right_table);
      return right == nullptr ? 1e-6 : 3.0 / std::max(1.0, right->row_count);
    }
    double left_ndv = 1, right_ndv = 1;
    if (const TableStats* t = catalog_->FindTable(join.left_table)) {
      if (const ColumnStats* c = t->FindColumn(join.left_column)) left_ndv = c->ndv;
    }
    if (const TableStats* t = catalog_->FindTable(join.right_table)) {
      if (const ColumnStats* c = t->FindColumn(join.right_column)) right_ndv = c->ndv;
    }
    return 1.0 / std::max({left_ndv, right_ndv, 1.0});
  };

  while (rels.size() > 1) {
    // Pick the cheapest joinable pair (connected by some join edge).
    double best_cost = std::numeric_limits<double>::infinity();
    size_t best_a = 0, best_b = 1;
    const JoinSpec* best_join = nullptr;
    for (size_t a = 0; a < rels.size(); ++a) {
      for (size_t b = 0; b < rels.size(); ++b) {
        if (a == b) continue;
        for (const JoinSpec& join : spec.joins) {
          const bool connects = rels[a].tables.count(join.left_table) > 0 &&
                                rels[b].tables.count(join.right_table) > 0;
          if (!connects) continue;
          const double out =
              rels[a].rows * rels[b].rows * join_selectivity(join);
          if (out < best_cost) {
            best_cost = out;
            best_a = a;
            best_b = b;
            best_join = &join;
          }
        }
      }
    }
    if (best_join == nullptr) break;  // disconnected graph; stop joining

    // Outer = larger side result so the hash build is on the smaller input.
    size_t outer_idx = best_a, inner_idx = best_b;
    if (rels[outer_idx].rows < rels[inner_idx].rows) {
      std::swap(outer_idx, inner_idx);
    }
    Rel& outer = rels[outer_idx];
    Rel& inner = rels[inner_idx];
    const double out_rows = std::max(
        1.0, outer.rows * inner.rows * join_selectivity(*best_join));
    const double out_width = std::min(400.0, outer.width + inner.width);

    // Spatial joins are executed as GiST-index nested loops (PostGIS): the
    // outer side probes the inner relation's spatial index per row. No
    // hash/merge strategy exists for geometry predicates.
    if (best_join->spatial && inner.tables.size() == 1) {
      const std::string& inner_name = *inner.tables.begin();
      const TableStats* inner_table_sp = catalog_->FindTable(inner_name);
      if (inner_table_sp != nullptr &&
          inner_table_sp->FindColumn("geom") != nullptr) {
        auto join_node = std::make_unique<PlanNode>(Op("Loop-Nested"));
        auto inner_scan = std::make_unique<PlanNode>(Op("Scan-Index"));
        inner_scan->props().has_index_condition = true;
        inner_scan->props().has_recheck_condition = true;  // geometry recheck
        inner_scan->props().plan_rows =
            std::max(1.0, out_rows / std::max(1.0, outer.rows));
        inner_scan->props().plan_width = inner.width;
        inner_scan->props().actual_loops = outer.rows;
        inner_scan->props().parent_relationship = ParentRelationship::kInner;
        // GiST descent: a few random index/heap pages per probe, plus the
        // geometry test on each candidate.
        const double probe_cost =
            3.0 * EffectiveRandomPageCost(*inner_table_sp) +
            8.0 * kCpuOperatorCost;
        inner_scan->props().total_cost = probe_cost;
        inner_scan->AddRelation(inner_name);
        outer.node->props().parent_relationship = ParentRelationship::kOuter;
        const double total =
            outer.cost + inner.cost * 0.0 + outer.rows * probe_cost +
            out_rows * kCpuTupleCost;
        join_node->props().join_kind = JoinKind::kInner;
        join_node->props().plan_rows = out_rows;
        join_node->props().plan_width = out_width;
        join_node->props().total_cost = total;
        join_node->props().startup_cost = outer.startup_cost;
        join_node->AddChild(std::move(outer.node));
        join_node->AddChild(std::move(inner_scan));

        Rel joined_sp;
        joined_sp.tables = outer.tables;
        joined_sp.tables.insert(inner.tables.begin(), inner.tables.end());
        joined_sp.rows = out_rows;
        joined_sp.width = out_width;
        joined_sp.cost = total;
        joined_sp.startup_cost = join_node->props().startup_cost;
        joined_sp.node = std::move(join_node);
        const size_t hi_sp = std::max(outer_idx, inner_idx);
        const size_t lo_sp = std::min(outer_idx, inner_idx);
        rels.erase(rels.begin() + hi_sp);
        rels.erase(rels.begin() + lo_sp);
        rels.push_back(std::move(joined_sp));
        continue;
      }
    }

    // --- Candidate join strategies ---
    const double inner_bytes = inner.rows * inner.width;
    const double inner_data_pages = inner_bytes / catalog::kPageSizeBytes;
    const double outer_data_pages =
        outer.rows * outer.width / catalog::kPageSizeBytes;

    // Hash join (with batching when the build side exceeds work_mem).
    double hash_batches = 1;
    double hash_cost = inner.rows * (kCpuTupleCost + kCpuOperatorCost) +
                       outer.rows * kCpuOperatorCost * 1.5 +
                       out_rows * kCpuTupleCost;
    if (inner_bytes > work_mem) {
      hash_batches = std::pow(
          2.0, std::ceil(std::log2(std::max(2.0, inner_bytes / work_mem))));
      hash_cost += 2.0 * (inner_data_pages + outer_data_pages) * kSeqPageCost;
    }
    const double hash_total = hash_cost + outer.cost + inner.cost;

    // Index nested loop: only if the inner side is a bare scan of a table
    // whose join column is indexed.
    double inl_total = std::numeric_limits<double>::infinity();
    const TableStats* inner_table = nullptr;
    const ColumnStats* inner_join_col = nullptr;
    if (inner.tables.size() == 1 && !best_join->spatial) {
      const std::string& inner_name = *inner.tables.begin();
      const std::string& join_col = inner_name == best_join->right_table
                                        ? best_join->right_column
                                        : best_join->left_column;
      inner_table = catalog_->FindTable(inner_name);
      if (inner_table != nullptr) {
        inner_join_col = inner_table->FindColumn(join_col);
        if (inner_join_col != nullptr && inner_join_col->indexed) {
          const double probe =
              EffectiveRandomPageCost(*inner_table) + 5.0 * kCpuIndexTupleCost;
          inl_total = outer.cost + outer.rows * probe + out_rows * kCpuTupleCost;
        }
      }
    }

    // Naive nested loop for tiny inputs.
    double nl_total = std::numeric_limits<double>::infinity();
    if (outer.rows * inner.rows < 1e7) {
      nl_total = outer.cost + inner.cost +
                 outer.rows * inner.rows * kCpuOperatorCost +
                 out_rows * kCpuTupleCost;
    }

    // Merge join: cheap when both inputs are already ordered on the join
    // columns; otherwise it must pay for sorts.
    const bool outer_sorted = outer.sorted_on == best_join->left_column ||
                              outer.sorted_on == best_join->right_column;
    const bool inner_sorted = inner.sorted_on == best_join->left_column ||
                              inner.sorted_on == best_join->right_column;
    auto sort_cost = [&](double rows, double width) {
      const double bytes = rows * width;
      double cost = rows * std::log2(std::max(2.0, rows)) * kCpuOperatorCost * 2.0;
      if (bytes > work_mem) {
        cost += 2.0 * (bytes / catalog::kPageSizeBytes) * kSeqPageCost;
      }
      return cost;
    };
    double merge_cost = (outer.rows + inner.rows) * kCpuTupleCost * 1.1 +
                        out_rows * kCpuTupleCost;
    if (!outer_sorted) merge_cost += sort_cost(outer.rows, outer.width);
    if (!inner_sorted) merge_cost += sort_cost(inner.rows, inner.width);
    const double merge_total = merge_cost + outer.cost + inner.cost;

    const double best_total =
        std::min({hash_total, inl_total, nl_total, merge_total});

    Rel joined;
    joined.tables = outer.tables;
    joined.tables.insert(inner.tables.begin(), inner.tables.end());
    joined.rows = out_rows;
    joined.width = out_width;
    joined.cost = best_total;

    std::unique_ptr<PlanNode> join_node;
    if (best_total == hash_total) {
      join_node = std::make_unique<PlanNode>(Op("Join-Hash"));
      join_node->props().has_hash_condition = true;
      join_node->props().hash_batches = hash_batches;
      join_node->props().hash_buckets =
          std::pow(2.0, std::ceil(std::log2(std::max(
                            1024.0, inner.rows / hash_batches))));
      join_node->props().peak_memory_kb =
          std::min(inner_bytes, work_mem) / 1024.0;
      auto hash_node = std::make_unique<PlanNode>(Op("Hash"));
      hash_node->props().plan_rows = inner.rows;
      hash_node->props().plan_width = inner.width;
      hash_node->props().hash_batches = hash_batches;
      hash_node->props().peak_memory_kb =
          std::min(inner_bytes, work_mem) / 1024.0;
      hash_node->props().startup_cost = inner.cost;
      hash_node->props().total_cost =
          inner.cost + inner.rows * kCpuTupleCost;
      hash_node->props().parent_relationship = ParentRelationship::kInner;
      inner.node->props().parent_relationship = ParentRelationship::kOuter;
      hash_node->AddChild(std::move(inner.node));
      outer.node->props().parent_relationship = ParentRelationship::kOuter;
      // Hash join startup: the build side must finish first.
      joined.startup_cost = hash_node->props().total_cost;
      join_node->AddChild(std::move(outer.node));
      join_node->AddChild(std::move(hash_node));
    } else if (best_total == inl_total) {
      join_node = std::make_unique<PlanNode>(Op("Loop-Nested"));
      join_node->props().inner_unique =
          inner_join_col != nullptr &&
          inner_join_col->ndv >= inner_table->row_count * 0.99;
      // Replace the inner side with a parameterized index scan.
      auto inner_scan = std::make_unique<PlanNode>(Op("Scan-Index"));
      inner_scan->props().has_index_condition = true;
      inner_scan->props().plan_rows = std::max(
          1.0, inner_table->row_count / std::max(1.0, inner_join_col->ndv));
      inner_scan->props().plan_width = inner.width;
      inner_scan->props().actual_loops = outer.rows;
      inner_scan->props().parent_relationship = ParentRelationship::kInner;
      inner_scan->props().total_cost =
          EffectiveRandomPageCost(*inner_table) + 5.0 * kCpuIndexTupleCost;
      inner_scan->AddRelation(inner_table->name);
      outer.node->props().parent_relationship = ParentRelationship::kOuter;
      joined.startup_cost = outer.startup_cost;
      join_node->AddChild(std::move(outer.node));
      join_node->AddChild(std::move(inner_scan));
    } else if (best_total == merge_total) {
      join_node = std::make_unique<PlanNode>(Op("Join-Merge"));
      join_node->props().has_merge_condition = true;
      auto maybe_sort = [&](std::unique_ptr<PlanNode> child, bool sorted,
                            double rows, double width,
                            double child_cost) -> std::unique_ptr<PlanNode> {
        if (sorted) return child;
        auto sort_node = std::make_unique<PlanNode>(Op("Sort"));
        sort_node->props().plan_rows = rows;
        sort_node->props().plan_width = width;
        sort_node->props().num_sort_keys = 1;
        const double bytes = rows * width;
        sort_node->props().sort_method = bytes > work_mem
                                             ? plan::SortMethod::kExternalMerge
                                             : plan::SortMethod::kQuicksort;
        sort_node->props().sort_space_on_disk = bytes > work_mem;
        sort_node->props().peak_memory_kb = std::min(bytes, work_mem) / 1024.0;
        sort_node->props().startup_cost = child_cost + sort_cost(rows, width);
        sort_node->props().total_cost = sort_node->props().startup_cost;
        sort_node->AddChild(std::move(child));
        return sort_node;
      };
      auto outer_in = maybe_sort(std::move(outer.node), outer_sorted,
                                 outer.rows, outer.width, outer.cost);
      auto inner_in = maybe_sort(std::move(inner.node), inner_sorted,
                                 inner.rows, inner.width, inner.cost);
      outer_in->props().parent_relationship = ParentRelationship::kOuter;
      inner_in->props().parent_relationship = ParentRelationship::kInner;
      joined.startup_cost = best_total * 0.3;
      join_node->AddChild(std::move(outer_in));
      join_node->AddChild(std::move(inner_in));
      joined.sorted_on = best_join->left_column;
    } else {
      // Naive nested loop: the inner side is rescanned once per outer row,
      // so PostgreSQL interposes a Materialize node that caches it.
      join_node = std::make_unique<PlanNode>(Op("Loop-Nested"));
      outer.node->props().parent_relationship = ParentRelationship::kOuter;
      auto materialize = std::make_unique<PlanNode>(Op("Materialize"));
      materialize->props().plan_rows = inner.rows;
      materialize->props().plan_width = inner.width;
      materialize->props().parent_relationship = ParentRelationship::kInner;
      materialize->props().startup_cost = inner.cost;
      materialize->props().total_cost =
          inner.cost + inner.rows * kCpuOperatorCost;
      materialize->props().peak_memory_kb =
          std::min(inner.rows * inner.width, work_mem) / 1024.0;
      inner.node->props().parent_relationship = ParentRelationship::kOuter;
      materialize->AddChild(std::move(inner.node));
      joined.startup_cost = outer.startup_cost + inner.startup_cost;
      join_node->AddChild(std::move(outer.node));
      join_node->AddChild(std::move(materialize));
    }
    join_node->props().join_kind =
        best_join->spatial ? JoinKind::kInner : JoinKind::kInner;
    join_node->props().plan_rows = out_rows;
    join_node->props().plan_width = out_width;
    join_node->props().total_cost = best_total;
    join_node->props().startup_cost = joined.startup_cost;
    joined.node = std::move(join_node);

    // Remove the two inputs, append the join result.
    const size_t hi = std::max(outer_idx, inner_idx);
    const size_t lo = std::min(outer_idx, inner_idx);
    rels.erase(rels.begin() + hi);
    rels.erase(rels.begin() + lo);
    rels.push_back(std::move(joined));
  }

  Rel result = std::move(rels.front());

  // ---------------------------------------------------------------------
  // 3. Aggregation.
  // ---------------------------------------------------------------------
  if (spec.has_aggregate) {
    const double groups =
        std::max(1.0, result.rows * Clamp(spec.group_fraction, 0.0, 1.0));
    const double group_bytes = groups * 48.0;
    const bool hashed = spec.num_group_keys > 0 && group_bytes < work_mem;
    std::unique_ptr<PlanNode> agg_node;
    if (spec.num_group_keys == 0) {
      agg_node = std::make_unique<PlanNode>(Op("Aggregate"));
      agg_node->props().aggregate_strategy = plan::AggregateStrategy::kPlain;
    } else if (hashed) {
      agg_node = std::make_unique<PlanNode>(Op("Aggregate-Hash"));
      agg_node->props().aggregate_strategy = plan::AggregateStrategy::kHashed;
      agg_node->props().hash_buckets = std::pow(
          2.0, std::ceil(std::log2(std::max(1024.0, groups))));
      agg_node->props().peak_memory_kb = group_bytes / 1024.0;
    } else {
      // GroupAggregate needs sorted input.
      agg_node = std::make_unique<PlanNode>(Op("GroupAggregate"));
      agg_node->props().aggregate_strategy = plan::AggregateStrategy::kSorted;
      if (result.sorted_on.empty()) {
        auto sort_node = std::make_unique<PlanNode>(Op("Sort"));
        const double bytes = result.rows * result.width;
        sort_node->props().plan_rows = result.rows;
        sort_node->props().plan_width = result.width;
        sort_node->props().num_sort_keys = spec.num_group_keys;
        sort_node->props().sort_method = bytes > work_mem
                                             ? plan::SortMethod::kExternalMerge
                                             : plan::SortMethod::kQuicksort;
        sort_node->props().sort_space_on_disk = bytes > work_mem;
        sort_node->props().peak_memory_kb = std::min(bytes, work_mem) / 1024.0;
        const double scost =
            result.rows * std::log2(std::max(2.0, result.rows)) *
                kCpuOperatorCost * 2.0 +
            (bytes > work_mem
                 ? 2.0 * bytes / catalog::kPageSizeBytes * kSeqPageCost
                 : 0.0);
        sort_node->props().startup_cost = result.cost + scost;
        sort_node->props().total_cost = result.cost + scost;
        sort_node->AddChild(std::move(result.node));
        result.node = std::move(sort_node);
        result.cost += scost;
        result.startup_cost = result.cost;
      }
    }
    const double agg_cost =
        result.rows * kCpuOperatorCost * (hashed ? 1.2 : 0.8) +
        groups * kCpuTupleCost;
    agg_node->props().plan_rows = groups;
    agg_node->props().plan_width = std::min(result.width, 64.0);
    agg_node->props().total_cost = result.cost + agg_cost;
    agg_node->props().startup_cost =
        hashed || spec.num_group_keys == 0 ? result.cost + agg_cost * 0.9
                                           : result.startup_cost;
    agg_node->AddChild(std::move(result.node));
    result.node = std::move(agg_node);
    result.rows = groups;
    result.width = std::min(result.width, 64.0);
    result.cost += agg_cost;
    result.startup_cost = result.node->props().startup_cost;
    result.sorted_on.clear();
  }

  // ---------------------------------------------------------------------
  // 4. Ordering and limit.
  // ---------------------------------------------------------------------
  if (spec.has_sort) {
    auto sort_node = std::make_unique<PlanNode>(Op("Sort"));
    const bool top_n = spec.has_limit && spec.limit_rows * 64.0 < work_mem &&
                       spec.limit_rows < result.rows;
    const double bytes = result.rows * result.width;
    sort_node->props().plan_rows = result.rows;
    sort_node->props().plan_width = result.width;
    sort_node->props().num_sort_keys = spec.num_sort_keys;
    if (top_n) {
      sort_node->props().sort_method = plan::SortMethod::kTopN;
      sort_node->props().peak_memory_kb = spec.limit_rows * 64.0 / 1024.0;
    } else if (bytes > work_mem) {
      sort_node->props().sort_method = plan::SortMethod::kExternalMerge;
      sort_node->props().sort_space_on_disk = true;
      sort_node->props().peak_memory_kb = work_mem / 1024.0;
    } else {
      sort_node->props().sort_method = plan::SortMethod::kQuicksort;
      sort_node->props().peak_memory_kb = bytes / 1024.0;
    }
    const double scost =
        result.rows * std::log2(std::max(2.0, result.rows)) *
            kCpuOperatorCost * (top_n ? 1.0 : 2.0) +
        (sort_node->props().sort_space_on_disk
             ? 2.0 * bytes / catalog::kPageSizeBytes * kSeqPageCost
             : 0.0);
    sort_node->props().startup_cost = result.cost + scost;
    sort_node->props().total_cost = result.cost + scost;
    sort_node->AddChild(std::move(result.node));
    result.node = std::move(sort_node);
    result.cost += scost;
    result.startup_cost = result.cost;
  }

  if (spec.has_limit) {
    auto limit_node = std::make_unique<PlanNode>(Op("Limit"));
    limit_node->props().plan_rows = std::min(result.rows, spec.limit_rows);
    limit_node->props().plan_width = result.width;
    limit_node->props().startup_cost = result.startup_cost;
    limit_node->props().total_cost = result.cost;
    limit_node->AddChild(std::move(result.node));
    result.node = std::move(limit_node);
    result.rows = std::min(result.rows, spec.limit_rows);
  }

  plan::Plan planned;
  planned.root = std::move(result.node);
  planned.benchmark = spec.benchmark;
  planned.template_id = spec.template_id;
  planned.cluster_id = spec.cluster_id;
  return planned;
}

}  // namespace qpe::simdb
