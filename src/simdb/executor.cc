#include "simdb/executor.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace qpe::simdb {

namespace {

using catalog::TableStats;
using plan::PlanNode;

double Clamp(double v, double lo, double hi) {
  return std::min(hi, std::max(lo, v));
}

uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2));
}

}  // namespace

double ExecutorSim::CacheHitRatio(const TableStats& table) const {
  const double cache_bytes =
      config_->Get(config::Knob::kSharedBuffers) +
      0.5 * config_->Get(config::Knob::kEffectiveCacheSize);
  return Clamp(cache_bytes / table.TotalBytes(), 0.02, 0.995);
}

double ExecutorSim::IoConcurrencyFactor() const {
  const double eioc = config_->Get(config::Knob::kEffectiveIoConcurrency);
  return 1.0 + 0.08 * std::sqrt(Clamp(eioc, 0.0, 128.0));
}

double ExecutorSim::ActualRows(const PlanNode& node, uint64_t cardinality_seed,
                               int node_index, int joins_below) const {
  // Data-dependent cardinality: the optimizer estimate distorted by
  // misestimation noise that compounds with join depth, is worse for
  // spatial data, and shrinks with default_statistics_target.
  const auto& dst_info = config::GetKnobInfo(config::Knob::kDefaultStatisticsTarget);
  const double dst_norm =
      Clamp((config_->Get(config::Knob::kDefaultStatisticsTarget) -
             dst_info.min_value) /
                (dst_info.max_value - dst_info.min_value),
            0.0, 1.0);
  double sigma = catalog_->spatial() ? 0.7 : 0.25;
  sigma *= 1.0 + 0.15 * joins_below;
  sigma *= 1.3 - 0.3 * dst_norm;
  util::Rng rng(HashCombine(cardinality_seed, static_cast<uint64_t>(node_index)));
  return std::max(1.0, node.props().plan_rows * rng.LognormalFactor(sigma));
}

ExecutorSim::NodeExec ExecutorSim::ExecuteNode(PlanNode* node,
                                               uint64_t cardinality_seed,
                                               int* node_index,
                                               int joins_below,
                                               util::Rng* run_noise) const {
  const int my_index = (*node_index)++;
  const std::string type = node->type().ToString();
  const bool is_join = plan::GroupOf(node->type()) == plan::OperatorGroup::kJoin;

  // Execute children first (preorder indices, postorder times).
  std::vector<NodeExec> child_exec;
  for (const auto& child : node->children()) {
    child_exec.push_back(ExecuteNode(child.get(), cardinality_seed, node_index,
                                     joins_below + (is_join ? 1 : 0),
                                     run_noise));
  }

  const double work_mem = config_->Get(config::Knob::kWorkMem);
  auto& props = node->props();

  NodeExec exec;
  exec.rows = ActualRows(*node, cardinality_seed, my_index, joins_below);

  double own_ms = 0;       // this node's own processing time
  double startup_ms = 0;   // time before the first output row
  double child_total = 0;  // sum of child total times
  for (const NodeExec& c : child_exec) {
    child_total += c.total_ms;
    exec.hit_blocks += c.hit_blocks;
    exec.read_blocks += c.read_blocks;
    exec.temp_read += c.temp_read;
    exec.temp_written += c.temp_written;
  }

  const TableStats* table =
      node->relations().empty() ? nullptr
                                : catalog_->FindTable(node->relations()[0]);

  if ((type == "Scan-Seq" || type == "Scan-Seq-Parallel") &&
      table != nullptr) {
    // Parallel workers split the per-tuple CPU; the I/O stream is shared.
    const double workers = type == "Scan-Seq-Parallel" ? 4.0 : 1.0;
    const double pages = table->PageCount();
    const double hr = CacheHitRatio(*table);
    own_ms = pages * (hr * kHitPageMs +
                      (1.0 - hr) * kSeqPageMs / IoConcurrencyFactor());
    own_ms += table->row_count * kCpuRowMs / workers;
    if (props.has_filter) own_ms += table->row_count * kCpuOpMs / workers;
    if (props.has_recheck_condition && catalog_->spatial()) {
      const double geom_width =
          table->FindColumn("geom") != nullptr
              ? table->FindColumn("geom")->avg_width
              : 400.0;
      own_ms += table->row_count * kGeomRowMs * (geom_width / 400.0);
    }
    exec.hit_blocks += pages * hr;
    exec.read_blocks += pages * (1.0 - hr);
    props.rows_removed_by_filter = std::max(0.0, table->row_count - exec.rows);
  } else if (type == "Scan-Index" && table != nullptr) {
    const double loops = std::max(1.0, props.actual_loops);
    const double hr = CacheHitRatio(*table);
    const double sel = Clamp(exec.rows / std::max(1.0, table->row_count),
                             1e-9, 1.0);
    double fetched =
        Clamp(table->PageCount() * sel * 1.5, 1.0, table->PageCount());
    double per_loop = fetched * (hr * kHitPageMs + (1.0 - hr) * kRandPageMs) +
                      exec.rows * kCpuRowMs * 1.5;
    if (props.has_recheck_condition && catalog_->spatial()) {
      // GiST probe: a few random index+heap pages per descent plus the
      // geometry recheck on each candidate tuple. This is where spatial
      // workloads become strongly cache-sensitive.
      fetched = std::max(fetched, 3.0);
      per_loop = fetched * (hr * kHitPageMs + (1.0 - hr) * kRandPageMs) +
                 std::max(1.0, exec.rows) * kGeomRowMs * 3.0;
    }
    own_ms = per_loop * loops;
    exec.hit_blocks += fetched * hr * loops;
    exec.read_blocks += fetched * (1.0 - hr) * loops;
  } else if (type == "Scan-Heap-Bitmap" && table != nullptr) {
    const double hr = CacheHitRatio(*table);
    const double sel = Clamp(exec.rows / std::max(1.0, table->row_count),
                             1e-9, 1.0);
    const double fetched =
        Clamp(2.0 * table->PageCount() * sel, 1.0, table->PageCount());
    own_ms = fetched * (hr * kHitPageMs +
                        (1.0 - hr) * kRandPageMs / IoConcurrencyFactor());
    own_ms += exec.rows * (kCpuRowMs + kCpuOpMs);  // recheck
    if (catalog_->spatial() && props.has_recheck_condition) {
      own_ms += exec.rows * kGeomRowMs;
    }
    props.heap_blocks = fetched;
    exec.hit_blocks += fetched * hr;
    exec.read_blocks += fetched * (1.0 - hr);
    // The bitmap must be complete before the heap scan starts.
    startup_ms = child_total;
  } else if (type == "Scan-Index-Bitmap" && table != nullptr) {
    own_ms = exec.rows * kCpuRowMs * 0.3 + 0.05;
  } else if (type == "Hash") {
    const double in_rows = child_exec.empty() ? 0 : child_exec[0].rows;
    own_ms = in_rows * kHashBuildRowMs;
    startup_ms = child_total + own_ms;  // build is blocking
    exec.rows = in_rows;
  } else if (type == "Join-Hash") {
    const double outer_rows = child_exec.empty() ? 0 : child_exec[0].rows;
    const double inner_rows = child_exec.size() > 1 ? child_exec[1].rows : 0;
    const double inner_width =
        node->children().size() > 1 ? node->children()[1]->props().plan_width
                                    : 32.0;
    const double inner_bytes = inner_rows * inner_width;
    double batches = 1;
    if (inner_bytes > work_mem) {
      batches = std::pow(
          2.0, std::ceil(std::log2(std::max(2.0, inner_bytes / work_mem))));
      const double outer_width = node->children()[0]->props().plan_width;
      const double spill_pages =
          (inner_bytes + outer_rows * outer_width) / catalog::kPageSizeBytes;
      own_ms += 2.0 * spill_pages * kSeqPageMs;
      exec.temp_written += spill_pages;
      exec.temp_read += spill_pages;
    }
    props.hash_batches = batches;
    props.peak_memory_kb = std::min(inner_bytes, work_mem) / 1024.0;
    own_ms += outer_rows * kCpuOpMs * 1.5 + exec.rows * kCpuRowMs;
    // Startup: the hash build (inner child) must finish first.
    startup_ms = child_exec.size() > 1 ? child_exec[1].total_ms : 0;
  } else if (type == "Join-Merge") {
    double in_rows = 0;
    for (const NodeExec& c : child_exec) in_rows += c.rows;
    own_ms = in_rows * kCpuRowMs * 0.6 + exec.rows * kCpuRowMs;
  } else if (type == "Loop-Nested") {
    const double outer_rows = child_exec.empty() ? 0 : child_exec[0].rows;
    const bool indexed_inner =
        node->children().size() > 1 &&
        node->children()[1]->type().ToString() == "Scan-Index" &&
        node->children()[1]->props().actual_loops > 1;
    if (indexed_inner) {
      // The inner child was already charged per-loop in its own execution;
      // the child's actual_loops was set at plan time from the estimate, so
      // rescale to the realized outer cardinality.
      PlanNode* inner = node->children()[1].get();
      const double planned_loops = std::max(1.0, inner->props().actual_loops);
      const double scale = outer_rows / planned_loops;
      inner->props().actual_loops = outer_rows;
      child_exec[1].total_ms *= scale;
      child_total = child_exec[0].total_ms + child_exec[1].total_ms;
      own_ms = exec.rows * kCpuRowMs;
    } else {
      const double inner_rows = child_exec.size() > 1 ? child_exec[1].rows : 0;
      own_ms = outer_rows * inner_rows * kCpuOpMs + exec.rows * kCpuRowMs;
      if (catalog_->spatial()) {
        own_ms += outer_rows * std::max(1.0, inner_rows) * 0.05 * kGeomRowMs;
      }
    }
  } else if (type == "Sort") {
    const double in_rows = child_exec.empty() ? 1 : std::max(1.0, child_exec[0].rows);
    const double width = props.plan_width > 0 ? props.plan_width : 32.0;
    const double bytes = in_rows * width;
    if (props.sort_method == plan::SortMethod::kTopN) {
      own_ms = in_rows * std::log2(std::max(2.0, props.plan_rows)) * kSortRowMs;
      props.peak_memory_kb = props.plan_rows * width / 1024.0;
    } else if (bytes > work_mem) {
      props.sort_method = plan::SortMethod::kExternalMerge;
      props.sort_space_on_disk = true;
      const double pages = bytes / catalog::kPageSizeBytes;
      own_ms = in_rows * std::log2(std::max(2.0, in_rows)) * kSortRowMs +
               2.0 * pages * kSeqPageMs;
      exec.temp_written += pages;
      exec.temp_read += pages;
      props.sort_space_used_kb = bytes / 1024.0;
      props.peak_memory_kb = work_mem / 1024.0;
    } else {
      props.sort_method = plan::SortMethod::kQuicksort;
      props.sort_space_on_disk = false;
      own_ms = in_rows * std::log2(std::max(2.0, in_rows)) * kSortRowMs;
      props.sort_space_used_kb = bytes / 1024.0;
      props.peak_memory_kb = bytes / 1024.0;
    }
    startup_ms = child_total + own_ms;  // sorting is blocking
    if (props.sort_method != plan::SortMethod::kTopN) exec.rows = in_rows;
  } else if (type == "Aggregate-Hash") {
    const double in_rows = child_exec.empty() ? 0 : child_exec[0].rows;
    own_ms = in_rows * kCpuOpMs * 1.2 + exec.rows * kCpuRowMs;
    const double group_bytes = exec.rows * 48.0;
    if (group_bytes > work_mem) {
      const double pages = group_bytes / catalog::kPageSizeBytes;
      own_ms += 2.0 * pages * kSeqPageMs;
      exec.temp_written += pages;
      exec.temp_read += pages;
      props.hash_batches =
          std::pow(2.0, std::ceil(std::log2(group_bytes / work_mem)));
    }
    props.peak_memory_kb = std::min(group_bytes, work_mem) / 1024.0;
    startup_ms = child_total + own_ms * 0.9;
  } else if (type == "GroupAggregate" || type == "Aggregate") {
    const double in_rows = child_exec.empty() ? 0 : child_exec[0].rows;
    own_ms = in_rows * kCpuOpMs * 0.8 + exec.rows * kCpuRowMs;
    if (type == "Aggregate") exec.rows = 1;
  } else if (type == "Gather") {
    // Worker startup plus tuple motion through the shared queue.
    const double in_rows = child_exec.empty() ? 0 : child_exec[0].rows;
    own_ms = 2.0 + in_rows * kCpuOpMs * 2.0;
    startup_ms = 2.0 + (child_exec.empty() ? 0.0 : child_exec[0].startup_ms);
  } else if (type == "Limit") {
    const double in_rows = child_exec.empty() ? 1 : std::max(1.0, child_exec[0].rows);
    exec.rows = std::min(in_rows, std::max(1.0, props.plan_rows));
    // A pipelined child can stop early: pay startup plus the consumed
    // fraction of the streaming phase.
    const double child_startup =
        child_exec.empty() ? 0 : child_exec[0].startup_ms;
    const double frac = Clamp(exec.rows / in_rows, 0.0, 1.0);
    child_total = child_startup + frac * (child_total - child_startup);
    own_ms = exec.rows * kCpuOpMs;
  } else {
    // Generic pass-through operator (Materialize, Result, ...).
    const double in_rows = child_exec.empty() ? 0 : child_exec[0].rows;
    own_ms = in_rows * kCpuOpMs;
  }

  // Run-to-run measurement jitter. Kept small relative to knob-induced
  // variability: repeated executions of the same query under the same
  // configuration are stable once caches are warm, which is what makes the
  // paper's MAE-vs-variability comparison (Fig. 6) meaningful.
  const double jitter =
      run_noise->LognormalFactor(catalog_->spatial() ? 0.05 : 0.03);
  own_ms *= jitter;

  exec.total_ms = child_total + own_ms;
  exec.startup_ms =
      startup_ms > 0
          ? std::min(startup_ms, exec.total_ms)
          : (child_exec.empty() ? 0.0
                                : std::min(child_exec[0].startup_ms, exec.total_ms));

  // Publish actuals into the node's property bag.
  props.actual_rows = exec.rows;
  props.actual_total_time_ms = exec.total_ms;
  props.actual_startup_time_ms = exec.startup_ms;
  props.shared_hit_blocks = exec.hit_blocks;
  props.shared_read_blocks = exec.read_blocks;
  props.temp_read_blocks = exec.temp_read;
  props.temp_written_blocks = exec.temp_written;
  props.plan_buffers = exec.hit_blocks + exec.read_blocks;
  return exec;
}

double ExecutorSim::Execute(plan::Plan* query, uint64_t cardinality_seed,
                            util::Rng* run_noise) const {
  if (query->root == nullptr) return 0.0;
  int node_index = 0;
  const NodeExec exec = ExecuteNode(query->root.get(), cardinality_seed,
                                    &node_index, 0, run_noise);
  return exec.total_ms;
}

}  // namespace qpe::simdb
