#include "nn/arena.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace qpe::nn {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

// Registry of live arenas plus the accumulated counters of destroyed ones
// (thread_local arenas die with their thread; their traffic must still show
// up in GlobalMemoryStats).
std::mutex g_registry_mu;
std::vector<const TensorArena*>& Registry() {
  static std::vector<const TensorArena*> registry;
  return registry;
}
MemoryStats& RetiredStats() {
  static MemoryStats retired;
  return retired;
}

void Accumulate(MemoryStats* total, const MemoryStats& s) {
  total->bytes_requested += s.bytes_requested;
  total->arena_hits += s.arena_hits;
  total->arena_misses += s.arena_misses;
  total->recycled_buffers += s.recycled_buffers;
  total->released_buffers += s.released_buffers;
  total->epochs += s.epochs;
  total->peak_arena_bytes += s.peak_arena_bytes;
}

thread_local TensorArena* tl_current_arena = nullptr;

std::atomic<bool> g_enabled{[] {
  const char* env = std::getenv("QPE_ARENA");
  return !(env != nullptr && env[0] == '0');
}()};

// Smallest bucket such that n floats fit in 2^bucket.
int BucketFor(size_t n) {
  int bucket = 0;
  while ((size_t{1} << bucket) < n) ++bucket;
  return bucket;
}

}  // namespace

TensorArena::TensorArena() {
  std::lock_guard<std::mutex> lock(g_registry_mu);
  Registry().push_back(this);
}

TensorArena::~TensorArena() {
  std::lock_guard<std::mutex> lock(g_registry_mu);
  Accumulate(&RetiredStats(), stats());
  auto& registry = Registry();
  for (size_t i = 0; i < registry.size(); ++i) {
    if (registry[i] == this) {
      registry.erase(registry.begin() + i);
      break;
    }
  }
}

std::shared_ptr<Tensor::Impl> TensorArena::Acquire(int rows, int cols,
                                                   bool zero_fill) {
  const size_t n = static_cast<size_t>(rows) * static_cast<size_t>(cols);
  const int bucket = BucketFor(n);
  bytes_requested_.fetch_add(n * sizeof(float), kRelaxed);

  std::shared_ptr<Tensor::Impl> impl;
#if !defined(QPE_SANITIZE_BUILD)
  auto& pool = pools_[bucket];
  if (!pool.empty()) {
    impl = std::move(pool.back());
    pool.pop_back();
    hits_.fetch_add(1, kRelaxed);
  }
#endif
  if (!impl) {
    impl = std::make_shared<Tensor::Impl>();
    impl->arena_bucket = bucket;
    // Reserve the whole bucket so any later tenant of this node resizes
    // within capacity — steady state never reallocates.
    impl->value.reserve(size_t{1} << bucket);
    misses_.fetch_add(1, kRelaxed);
    const uint64_t cur = cur_bytes_.fetch_add((uint64_t{1} << bucket) *
                                                  sizeof(float),
                                              kRelaxed) +
                         (uint64_t{1} << bucket) * sizeof(float);
    uint64_t peak = peak_bytes_.load(kRelaxed);
    while (cur > peak && !peak_bytes_.compare_exchange_weak(peak, cur, kRelaxed)) {
    }
  }

  impl->rows = rows;
  impl->cols = cols;
  impl->requires_grad = false;
  if (zero_fill) {
    impl->value.assign(n, 0.0f);
  } else {
    impl->value.resize(n);  // stale contents: caller overwrites every element
  }
  live_.push_back(impl);
  return impl;
}

void TensorArena::EndEpoch() {
  epochs_.fetch_add(1, kRelaxed);
  uint64_t recycled = 0, released = 0, freed_bytes = 0;
  // Newest-first: children were acquired after their parents, so resetting
  // a dead node's parent edges drops the last references to its parents
  // before the sweep reaches them — one pass unravels the whole graph.
  for (size_t idx = live_.size(); idx-- > 0;) {
    std::shared_ptr<Tensor::Impl>& slot = live_[idx];
    const uint64_t bucket_bytes =
        (uint64_t{1} << slot->arena_bucket) * sizeof(float);
#if !defined(QPE_SANITIZE_BUILD)
    if (slot.use_count() == 1) {  // dead: only the arena sees it
      Tensor::Impl* impl = slot.get();
      impl->parents.clear();      // keeps capacity; drops parent references
      impl->backward_fn.Reset();  // destroys the closure (and its captures)
      impl->visited = false;
      impl->requires_grad = false;
      impl->grad.clear();  // keeps capacity; EnsureGrad re-zeroes on reuse
      pools_[impl->arena_bucket].push_back(std::move(slot));
      ++recycled;
      continue;
    }
#endif
    // Escaped (or sanitizer build): hand ownership to the remaining
    // holders — the node becomes an ordinary heap object.
    slot.reset();
    ++released;
    freed_bytes += bucket_bytes;
  }
  live_.clear();
  recycled_.fetch_add(recycled, kRelaxed);
  released_.fetch_add(released, kRelaxed);
  cur_bytes_.fetch_sub(freed_bytes, kRelaxed);
}

MemoryStats TensorArena::stats() const {
  MemoryStats s;
  s.bytes_requested = bytes_requested_.load(kRelaxed);
  s.arena_hits = hits_.load(kRelaxed);
  s.arena_misses = misses_.load(kRelaxed);
  s.recycled_buffers = recycled_.load(kRelaxed);
  s.released_buffers = released_.load(kRelaxed);
  s.epochs = epochs_.load(kRelaxed);
  s.peak_arena_bytes = peak_bytes_.load(kRelaxed);
  return s;
}

TensorArena* TensorArena::Current() { return tl_current_arena; }

TensorArena* TensorArena::ThreadLocal() {
  thread_local TensorArena arena;
  return &arena;
}

void TensorArena::SetEnabled(bool enabled) {
  g_enabled.store(enabled, kRelaxed);
}

bool TensorArena::Enabled() { return g_enabled.load(kRelaxed); }

bool TensorArena::RecyclingEnabled() {
#if defined(QPE_SANITIZE_BUILD)
  return false;
#else
  return true;
#endif
}

ArenaScope::ArenaScope() : arena_(nullptr), previous_(tl_current_arena) {
  // Nested scopes are no-ops: the outermost scope owns the graph epoch, so
  // an inner library scope never recycles (or releases) its caller's
  // still-building graph mid-flight.
  if (previous_ == nullptr && TensorArena::Enabled()) {
    arena_ = TensorArena::ThreadLocal();
    tl_current_arena = arena_;
  }
}

ArenaScope::ArenaScope(TensorArena* arena)
    : arena_(arena), previous_(tl_current_arena) {
  tl_current_arena = arena_;
}

ArenaScope::~ArenaScope() {
  if (arena_ != nullptr) arena_->EndEpoch();
  tl_current_arena = previous_;
}

MemoryStats GlobalMemoryStats() {
  std::lock_guard<std::mutex> lock(g_registry_mu);
  MemoryStats total = RetiredStats();
  for (const TensorArena* arena : Registry()) {
    Accumulate(&total, arena->stats());
  }
  return total;
}

uint64_t PeakRssBytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      std::sscanf(line + 6, "%lu", &kb);
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
#else
  return 0;
#endif
}

}  // namespace qpe::nn
