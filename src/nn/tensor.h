#ifndef QPE_NN_TENSOR_H_
#define QPE_NN_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "util/rng.h"

namespace qpe::nn {

// A 2-D float tensor with reverse-mode automatic differentiation. This is
// the computational substrate for every model in the library (the paper
// trains with a deep-learning framework on GPU; we implement the same
// mathematics from scratch for CPU).
//
// Tensor is a cheap shared handle: copies alias the same storage and the
// same autograd node. Each forward pass builds a fresh dynamic graph;
// calling Backward() on a scalar result accumulates gradients into every
// reachable tensor that requires_grad (notably model parameters, whose
// gradients persist until the optimizer clears them).
//
// Shapes are [rows, cols]; scalars are [1, 1]. Broadcasting in binary ops
// supports a [1, n] row vector, an [m, 1] column vector, or a [1, 1] scalar
// against an [m, n] tensor.
class Tensor {
 public:
  Tensor() = default;

  // --- Construction ---
  static Tensor Zeros(int rows, int cols, bool requires_grad = false);
  static Tensor Full(int rows, int cols, float value,
                     bool requires_grad = false);
  static Tensor FromVector(int rows, int cols, const std::vector<float>& data,
                           bool requires_grad = false);
  static Tensor Scalar(float value, bool requires_grad = false);
  // Xavier/Glorot-uniform initialization, for parameter matrices.
  static Tensor Xavier(int rows, int cols, util::Rng* rng);
  // Gaussian init with the given stddev.
  static Tensor Gaussian(int rows, int cols, float stddev, util::Rng* rng);

  bool defined() const { return impl_ != nullptr; }
  int rows() const;
  int cols() const;
  int numel() const { return rows() * cols(); }
  bool requires_grad() const;

  // Raw storage access (row-major).
  std::vector<float>& value();
  const std::vector<float>& value() const;
  std::vector<float>& grad();
  const std::vector<float>& grad() const;
  float at(int r, int c) const;
  void set(int r, int c, float v);

  // --- Autograd ---
  // Backpropagates from this tensor; it must be a scalar ([1,1]).
  void Backward() const;
  void ZeroGrad() const;

  // Detached copy sharing no graph history (same values).
  Tensor Detach() const;

  // --- Ops (each returns a new tensor wired into the graph) ---
  friend Tensor MatMul(const Tensor& a, const Tensor& b);
  friend Tensor Add(const Tensor& a, const Tensor& b);       // broadcasting
  friend Tensor Sub(const Tensor& a, const Tensor& b);       // broadcasting
  friend Tensor Mul(const Tensor& a, const Tensor& b);       // broadcasting
  friend Tensor Scale(const Tensor& a, float s);
  friend Tensor AddScalar(const Tensor& a, float s);
  friend Tensor Relu(const Tensor& a);
  friend Tensor Sigmoid(const Tensor& a);
  friend Tensor Tanh(const Tensor& a);
  friend Tensor Exp(const Tensor& a);
  friend Tensor Log(const Tensor& a);    // clamped at 1e-12
  friend Tensor Sqrt(const Tensor& a);   // clamped at 0
  friend Tensor Square(const Tensor& a);
  friend Tensor Abs(const Tensor& a);
  friend Tensor Transpose(const Tensor& a);
  friend Tensor Sum(const Tensor& a);                   // -> [1,1]
  friend Tensor Mean(const Tensor& a);                  // -> [1,1]
  friend Tensor RowSum(const Tensor& a);                // -> [m,1]
  friend Tensor RowMean(const Tensor& a);               // -> [m,1]
  friend Tensor SoftmaxRows(const Tensor& a);           // rowwise softmax
  friend Tensor ConcatCols(const std::vector<Tensor>& parts);
  friend Tensor ConcatRows(const std::vector<Tensor>& parts);
  friend Tensor SliceCols(const Tensor& a, int start, int len);
  friend Tensor SliceRows(const Tensor& a, int start, int len);
  // Row gather: out[i] = a[indices[i]]; backward scatters. This is the
  // embedding lookup primitive.
  friend Tensor GatherRows(const Tensor& a, const std::vector<int>& indices);
  // Dropout: zeroes entries with probability p and rescales by 1/(1-p).
  friend Tensor Dropout(const Tensor& a, float p, util::Rng* rng);
  // Negative log-likelihood of target classes under rowwise log-softmax of
  // logits; returns the mean over rows ([1,1]).
  friend Tensor CrossEntropy(const Tensor& logits,
                             const std::vector<int>& targets);

  // Implementation details below — public so the op implementations (some
  // in internal linkage within tensor.cc) can build graph nodes; not part of
  // the stable API.
  struct Impl {
    int rows = 0;
    int cols = 0;
    bool requires_grad = false;
    std::vector<float> value;
    std::vector<float> grad;
    std::vector<std::shared_ptr<Impl>> parents;
    std::function<void()> backward_fn;
    bool visited = false;  // scratch for topological sort
  };

  explicit Tensor(std::shared_ptr<Impl> impl) : impl_(std::move(impl)) {}
  static Tensor MakeResult(int rows, int cols,
                           std::vector<std::shared_ptr<Impl>> parents);
  Impl* impl() const { return impl_.get(); }

  std::shared_ptr<Impl> impl_;
};

// Namespace-scope declarations of the op set (the in-class friend
// declarations alone are only found via ADL, which braced-init-list
// arguments defeat).
Tensor MatMul(const Tensor& a, const Tensor& b);
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Scale(const Tensor& a, float s);
Tensor AddScalar(const Tensor& a, float s);
Tensor Relu(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Square(const Tensor& a);
Tensor Abs(const Tensor& a);
Tensor Transpose(const Tensor& a);
Tensor Sum(const Tensor& a);
Tensor Mean(const Tensor& a);
Tensor RowSum(const Tensor& a);
Tensor RowMean(const Tensor& a);
Tensor SoftmaxRows(const Tensor& a);
Tensor ConcatCols(const std::vector<Tensor>& parts);
Tensor ConcatRows(const std::vector<Tensor>& parts);
Tensor SliceCols(const Tensor& a, int start, int len);
Tensor SliceRows(const Tensor& a, int start, int len);
Tensor GatherRows(const Tensor& a, const std::vector<int>& indices);
Tensor Dropout(const Tensor& a, float p, util::Rng* rng);
Tensor CrossEntropy(const Tensor& logits, const std::vector<int>& targets);

// Gradient utilities.

// Clips the global L2 norm of the given tensors' gradients to `max_norm`;
// returns the pre-clip norm.
float ClipGradNorm(const std::vector<Tensor>& params, float max_norm);

}  // namespace qpe::nn

#endif  // QPE_NN_TENSOR_H_
