#ifndef QPE_NN_TENSOR_H_
#define QPE_NN_TENSOR_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <new>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace qpe::nn {

// Inline-storage callable for autograd backward functions. Training builds
// (and tears down) one closure per graph node per step; std::function would
// heap-allocate every one of them because the captures exceed its small-
// buffer size. This stores the closure in-place (capacity checked at
// compile time), so node recycling through TensorArena makes the backward
// bookkeeping allocation-free. Not copyable or movable: it lives inside
// Tensor::Impl, which never relocates.
class BackwardFn {
 public:
  BackwardFn() = default;
  ~BackwardFn() { Reset(); }
  BackwardFn(const BackwardFn&) = delete;
  BackwardFn& operator=(const BackwardFn&) = delete;

  template <typename F>
  BackwardFn& operator=(F&& fn) {
    using Fn = std::decay_t<F>;
    static_assert(!std::is_same_v<Fn, BackwardFn>);
    static_assert(sizeof(Fn) <= kCapacity,
                  "backward closure exceeds BackwardFn inline storage; "
                  "shrink the capture list or raise kCapacity");
    static_assert(alignof(Fn) <= alignof(std::max_align_t));
    Reset();
    new (storage_) Fn(std::forward<F>(fn));
    invoke_ = [](void* s) { (*static_cast<Fn*>(s))(); };
    destroy_ = [](void* s) { static_cast<Fn*>(s)->~Fn(); };
    return *this;
  }

  void operator()() { invoke_(storage_); }
  explicit operator bool() const { return invoke_ != nullptr; }

  void Reset() {
    if (destroy_ != nullptr) destroy_(storage_);
    invoke_ = nullptr;
    destroy_ = nullptr;
  }

 private:
  static constexpr size_t kCapacity = 128;

  void (*invoke_)(void*) = nullptr;
  void (*destroy_)(void*) = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kCapacity];
};

// A 2-D float tensor with reverse-mode automatic differentiation. This is
// the computational substrate for every model in the library (the paper
// trains with a deep-learning framework on GPU; we implement the same
// mathematics from scratch for CPU).
//
// Tensor is a cheap shared handle: copies alias the same storage and the
// same autograd node. Each forward pass builds a fresh dynamic graph;
// calling Backward() on a scalar result accumulates gradients into every
// reachable tensor that requires_grad (notably model parameters, whose
// gradients persist until the optimizer clears them).
//
// Shapes are [rows, cols]; scalars are [1, 1]. Broadcasting in binary ops
// supports a [1, n] row vector, an [m, 1] column vector, or a [1, 1] scalar
// against an [m, n] tensor.
class Tensor {
 public:
  Tensor() = default;

  // --- Construction ---
  static Tensor Zeros(int rows, int cols, bool requires_grad = false);
  static Tensor Full(int rows, int cols, float value,
                     bool requires_grad = false);
  static Tensor FromVector(int rows, int cols, const std::vector<float>& data,
                           bool requires_grad = false);
  static Tensor Scalar(float value, bool requires_grad = false);
  // Xavier/Glorot-uniform initialization, for parameter matrices.
  static Tensor Xavier(int rows, int cols, util::Rng* rng);
  // Gaussian init with the given stddev.
  static Tensor Gaussian(int rows, int cols, float stddev, util::Rng* rng);

  bool defined() const { return impl_ != nullptr; }
  int rows() const;
  int cols() const;
  int numel() const { return rows() * cols(); }
  bool requires_grad() const;

  // Raw storage access (row-major). Gradient storage is allocated lazily —
  // a tensor that never participates in a Backward() pass (eval-mode
  // activations, detached copies) never pays for a grad buffer; the
  // accessors allocate a zeroed buffer on first touch.
  std::vector<float>& value();
  const std::vector<float>& value() const;
  std::vector<float>& grad();
  const std::vector<float>& grad() const;
  float at(int r, int c) const;
  void set(int r, int c, float v);

  // --- Autograd ---
  // Backpropagates from this tensor; it must be a scalar ([1,1]).
  void Backward() const;
  void ZeroGrad() const;

  // Detached copy sharing no graph history (same values).
  Tensor Detach() const;

  // --- Ops (each returns a new tensor wired into the graph) ---
  friend Tensor MatMul(const Tensor& a, const Tensor& b);
  friend Tensor Add(const Tensor& a, const Tensor& b);       // broadcasting
  friend Tensor Sub(const Tensor& a, const Tensor& b);       // broadcasting
  friend Tensor Mul(const Tensor& a, const Tensor& b);       // broadcasting
  friend Tensor Scale(const Tensor& a, float s);
  friend Tensor AddScalar(const Tensor& a, float s);
  friend Tensor Relu(const Tensor& a);
  friend Tensor Gelu(const Tensor& a);
  friend Tensor Sigmoid(const Tensor& a);
  friend Tensor Tanh(const Tensor& a);
  friend Tensor Exp(const Tensor& a);
  friend Tensor Log(const Tensor& a);    // clamped at 1e-12
  friend Tensor Sqrt(const Tensor& a);   // clamped at 0
  friend Tensor Square(const Tensor& a);
  friend Tensor Abs(const Tensor& a);
  friend Tensor Transpose(const Tensor& a);
  friend Tensor Sum(const Tensor& a);                   // -> [1,1]
  friend Tensor Mean(const Tensor& a);                  // -> [1,1]
  friend Tensor RowSum(const Tensor& a);                // -> [m,1]
  friend Tensor RowMean(const Tensor& a);               // -> [m,1]
  friend Tensor SoftmaxRows(const Tensor& a);           // rowwise softmax
  // --- Fused serving kernels (see "Fused kernels" below) ---
  friend Tensor LinearRowBias(const Tensor& x, const Tensor& w,
                              const Tensor& bias);
  friend Tensor LinearRowBiasRelu(const Tensor& x, const Tensor& w,
                                  const Tensor& bias);
  friend Tensor BiasRelu(const Tensor& a, const Tensor& bias);
  friend Tensor BiasGelu(const Tensor& a, const Tensor& bias);
  friend Tensor LayerNormRows(const Tensor& x, const Tensor& gamma,
                              const Tensor& beta);
  friend Tensor SoftmaxRowsMasked(const Tensor& a,
                                  const std::vector<int>& valid);
  friend Tensor MultiHeadAttentionPacked(const Tensor& q, const Tensor& k,
                                         const Tensor& v,
                                         const std::vector<int>& offsets,
                                         const std::vector<int>& lengths,
                                         int num_heads, float scale);
  friend Tensor ConcatCols(const std::vector<Tensor>& parts);
  friend Tensor ConcatRows(const std::vector<Tensor>& parts);
  friend Tensor SliceCols(const Tensor& a, int start, int len);
  friend Tensor SliceRows(const Tensor& a, int start, int len);
  // Row gather: out[i] = a[indices[i]]; backward scatters. This is the
  // embedding lookup primitive.
  friend Tensor GatherRows(const Tensor& a, const std::vector<int>& indices);
  // Dropout: zeroes entries with probability p and rescales by 1/(1-p).
  friend Tensor Dropout(const Tensor& a, float p, util::Rng* rng);
  // Negative log-likelihood of target classes under rowwise log-softmax of
  // logits; returns the mean over rows ([1,1]).
  friend Tensor CrossEntropy(const Tensor& logits,
                             const std::vector<int>& targets);

  // Implementation details below — public so the op implementations (some
  // in internal linkage within tensor.cc) can build graph nodes; not part of
  // the stable API.
  struct Impl {
    int rows = 0;
    int cols = 0;
    bool requires_grad = false;
    bool visited = false;   // scratch for topological sort
    int arena_bucket = -1;  // TensorArena pool index; -1 for plain heap impls
    std::vector<float> value;
    std::vector<float> grad;  // lazily sized; see EnsureGrad()
    std::vector<std::shared_ptr<Impl>> parents;
    BackwardFn backward_fn;

    void EnsureGrad() {
      if (grad.size() != value.size()) grad.assign(value.size(), 0.0f);
    }
  };

  // How MakeResult prepares the result buffer. kOverwrite skips the zero
  // fill and hands back sized-but-stale storage when the buffer comes from
  // an arena — only valid for ops whose forward writes EVERY element
  // (accumulating kernels like MatMul must use kZero).
  enum class Fill { kZero, kOverwrite };

  explicit Tensor(std::shared_ptr<Impl> impl) : impl_(std::move(impl)) {}
  static Tensor MakeResult(int rows, int cols,
                           std::initializer_list<std::shared_ptr<Impl>> parents,
                           Fill fill = Fill::kZero);
  static Tensor MakeResult(int rows, int cols,
                           const std::vector<std::shared_ptr<Impl>>& parents,
                           Fill fill = Fill::kZero);
  Impl* impl() const { return impl_.get(); }

  std::shared_ptr<Impl> impl_;
};

// Namespace-scope declarations of the op set (the in-class friend
// declarations alone are only found via ADL, which braced-init-list
// arguments defeat).
Tensor MatMul(const Tensor& a, const Tensor& b);
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Scale(const Tensor& a, float s);
Tensor AddScalar(const Tensor& a, float s);
Tensor Relu(const Tensor& a);
Tensor Gelu(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Square(const Tensor& a);
Tensor Abs(const Tensor& a);
Tensor Transpose(const Tensor& a);
Tensor Sum(const Tensor& a);
Tensor Mean(const Tensor& a);
Tensor RowSum(const Tensor& a);
Tensor RowMean(const Tensor& a);
Tensor SoftmaxRows(const Tensor& a);
Tensor ConcatCols(const std::vector<Tensor>& parts);
Tensor ConcatRows(const std::vector<Tensor>& parts);
Tensor SliceCols(const Tensor& a, int start, int len);
Tensor SliceRows(const Tensor& a, int start, int len);
Tensor GatherRows(const Tensor& a, const std::vector<int>& indices);
Tensor Dropout(const Tensor& a, float p, util::Rng* rng);
Tensor CrossEntropy(const Tensor& logits, const std::vector<int>& targets);

// --- Fused kernels ----------------------------------------------------------
//
// Single-node forward/backward kernels for the serving hot path. Each one
// replaces a chain of elementwise ops (and the graph nodes, allocations and
// memory passes that come with it) by one pass over contiguous rows with
// restrict-qualified pointers. Forward results are bit-identical to the op
// chains they replace, so swapping them into a model changes no numbers.

// x * w + bias with x [m, k], w [k, n], bias [1, n]: Linear's whole forward
// as one graph node instead of MatMul followed by a broadcasting Add. The
// multiply completes before the bias row is added, so values are
// bit-identical to the Add(MatMul(x, w), bias) chain while saving one graph
// node, one [m, n] buffer and one full memory pass per Linear layer.
Tensor LinearRowBias(const Tensor& x, const Tensor& w, const Tensor& bias);

// max(x * w + bias, 0): a whole Linear + ReLU layer as one graph node. The
// forward runs the packed pipeline's linear_bias_act kernel (GEMM with the
// bias add and ReLU clamp riding the epilogue), whose contract makes it
// bit-identical to the LinearRowBias + Relu chain; the backward recovers
// the pre-activation gradient by gating on the output (out > 0 iff the
// pre-activation was > 0 — the GEMM accumulator never produces -0) and
// reuses the matmul/bias backward kernels on it, so gradients match the
// chain bit for bit too. Saves a graph node, an [m, n] buffer and two full
// memory passes per hidden MLP layer; the MLP training hot path.
Tensor LinearRowBiasRelu(const Tensor& x, const Tensor& w, const Tensor& bias);

// max(a + bias, 0) with a [1, n] bias row: fuses Linear's bias add with the
// ReLU that follows it (one pass instead of two ops).
Tensor BiasRelu(const Tensor& a, const Tensor& bias);

// gelu(a + bias) (exact erf form, as in BERT/PyTorch defaults). The GELU
// feed-forward variant of BiasRelu; selected by TransformerEncoderLayer's
// ff_activation config.
Tensor BiasGelu(const Tensor& a, const Tensor& bias);

// Row-wise layer normalization: y = (x - mean) / sqrt(var + 1e-5) * gamma
// + beta, one kernel instead of the 8-op autograd chain LayerNorm::Forward
// used to build. Forward arithmetic replicates the original chain exactly
// (including its exp(-log(std)) reciprocal), so existing weights produce
// bit-identical activations.
Tensor LayerNormRows(const Tensor& x, const Tensor& gamma, const Tensor& beta);

// Row-wise softmax over the first valid[r] columns of row r; the remaining
// (padding) columns are exactly 0. Over the valid prefix this matches
// SoftmaxRows on the unpadded row — bit-for-bit at the scalar dispatch
// level, within the epsilon contract under a vector level (the kernel's
// exp lanes are polynomial; see nn/simd_kernels_inl.h). The padding mask
// of the batched attention path.
Tensor SoftmaxRowsMasked(const Tensor& a, const std::vector<int>& valid);

// Fused multi-head self-attention over a ragged packed batch. q/k/v are
// [sum(lengths), dim] projections; rows [offsets[s], offsets[s]+lengths[s])
// form sequence s. For every sequence and every head (head h spans columns
// [h*dh, (h+1)*dh), dh = dim/num_heads) the output block equals
//   MatMul(SoftmaxRows(Scale(MatMul(qh, Transpose(kh)), scale)), vh)
// — bit-for-bit at the scalar dispatch level, within the epsilon contract
// under a vector level (polynomial exp lanes; see nn/simd_kernels_inl.h) —
// but runs as one op instead of ~8 per sequence per head: on short plan
// sequences the chain's per-op dispatch/allocation dominates the actual
// arithmetic. Keys never cross sequence boundaries, so packing imposes an
// exact attention mask by construction. Both MultiHeadSelfAttention paths
// (single-sequence Forward and packed ForwardBatch) route through this op,
// so batched-vs-single equality is bitwise at every dispatch level.
Tensor MultiHeadAttentionPacked(const Tensor& q, const Tensor& k,
                                const Tensor& v,
                                const std::vector<int>& offsets,
                                const std::vector<int>& lengths,
                                int num_heads, float scale);

// Naive triple-loop matrix multiply (the pre-blocking kernel), kept as the
// reference implementation for the blocked/tiled MatMul: tests assert
// forward/backward equivalence and the micro-benchmarks use it as the
// baseline. Not for production paths.
Tensor MatMulReference(const Tensor& a, const Tensor& b);

// --- Threading / autograd interaction --------------------------------------

// While alive on a thread, ops built on that thread record no graph edges
// and no backward functions (like torch.no_grad()): forward passes over
// trainable parameters become pure computations. Use for evaluation paths;
// nests correctly.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

// True unless a NoGradGuard is alive on this thread. The packed inference
// pipeline keys off this: it is graph-free, so it only engages when the
// caller has already declared (via NoGradGuard) that no gradients are
// wanted from the pass.
bool GradEnabled();

// While alive on a thread, gradient accumulation into the given target
// tensors (typically model parameters, the only tensors shared between
// data-parallel shard graphs) is redirected into the caller-provided
// buffers instead of the tensors' own grad storage. This is what lets
// several worker threads run Backward() concurrently on graphs that share
// parameter leaves: every shared write is redirected to a private buffer,
// and the training loop then reduces the buffers in shard order so the
// result is identical for every thread count.
//
// `buffers` is resized to one zeroed buffer per target (capacity is reused
// across steps). Affects only the constructing thread. An inner capture
// fully replaces an outer one for its lifetime (redirects only its own
// targets); the outer redirect is restored on destruction.
class GradientCapture {
 public:
  GradientCapture(const std::vector<Tensor>& targets,
                  std::vector<std::vector<float>>* buffers);
  ~GradientCapture();
  GradientCapture(const GradientCapture&) = delete;
  GradientCapture& operator=(const GradientCapture&) = delete;

 private:
  std::unordered_map<Tensor::Impl*, float*> map_;
  const std::unordered_map<Tensor::Impl*, float*>* previous_;
};

// Gradient utilities.

// Where a backward function accumulates a tensor's gradient: the impl's
// own (lazily allocated) grad buffer, or the thread's GradientCapture
// shadow buffer when one is redirecting this impl. Every backward that
// writes parameter gradients — the op closures in tensor.cc and the
// packed-batch training backward — must go through this so data-parallel
// shards never write shared memory.
float* GradPtr(Tensor::Impl* p);

// Clips the global L2 norm of the given tensors' gradients to `max_norm`;
// returns the pre-clip norm.
float ClipGradNorm(const std::vector<Tensor>& params, float max_norm);

}  // namespace qpe::nn

#endif  // QPE_NN_TENSOR_H_
