#ifndef QPE_NN_SIMD_KERNELS_INL_H_
#define QPE_NN_SIMD_KERNELS_INL_H_

// Kernel bodies shared by every SIMD level. Each instruction set provides a
// small vector-ops policy (lane count, load/store/broadcast, mul/add/max,
// horizontal max) and instantiates these templates; qpe/nn/simd.cc holds
// the scalar policy, simd_avx2.cc / simd_neon.cc the vector ones. One body
// per kernel keeps the three tables in lockstep: a numerics fix lands in
// all of them at once.
//
// Exactness discipline (see simd.h): loops vectorize only across
// independent output lanes. Reductions (row sums, exp sums, dot products)
// stay scalar in ascending order; max reductions may vectorize because
// float max is exactly associative and commutative on the finite inputs
// these kernels see. Policies must implement Mul/Add as separate
// operations (never a fused multiply-add), and the per-ISA translation
// units compile with -ffp-contract=off so the compiler cannot re-fuse
// them.
//
// The one sanctioned deviation is V::Exp. The scalar policy's Exp is
// std::exp — the scalar table therefore reproduces the pre-SIMD results
// bit for bit, as required — but the vector policies implement a
// polynomial expf (~2 ulp), so softmax outputs under a vector level agree
// with the scalar reference only within the epsilon contract. Profiling
// showed scalar expf dominating the attention softmax (~40% of an
// end-to-end forward on short plan sequences), and unlike the sum loops
// there is no ordering argument that would make a lane-parallel exp
// bit-exact anyway — exp is elementwise, the divergence is purely the
// polynomial. Every consumer of these kernels reaches them through the
// same dispatch table, so batched-vs-single bit-equality still holds at
// every level; only cross-level equality is epsilon-gated.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace qpe::nn::simd {

// Row statistics of the fused LayerNorm, replicating the original autograd
// chain's arithmetic exactly: mean and variance accumulate in ascending
// column order and scale by a precomputed 1/n, and the reciprocal standard
// deviation goes through the same clamped sqrt/log/exp chain the composite
// forward used (Sqrt -> Log -> Scale(-1) -> Exp). Shared by the forward
// kernels here and the (scalar) backward closure in nn/tensor.cc.
inline void LayerNormRowStats(const float* __restrict row, int n, float invn,
                              float* mean_out, float* recip_out) {
  constexpr float kLogEps = 1e-12f;
  float total = 0;
  for (int c = 0; c < n; ++c) total += row[c];
  const float mean = total * invn;
  float sq = 0;
  for (int c = 0; c < n; ++c) {
    const float d = row[c] - mean;
    sq += d * d;
  }
  const float var = sq * invn;
  const float inv_std = std::sqrt(std::max(var + 1e-5f, 0.0f));
  const float log_std = std::log(std::max(inv_std, kLogEps));
  *mean_out = mean;
  *recip_out = std::exp(std::min(-log_std, 30.0f));
}

// MatMul tile sizes, identical to the pre-SIMD blocked kernel: a
// [kKC x kNC] panel of B (64 KB) stays resident in L1/L2 while it is
// streamed against every row of A.
inline constexpr int kSimdMatMulKC = 64;
inline constexpr int kSimdMatMulNC = 256;

// out[i0:i1, :] += A[i0:i1, :] * B. Vector levels run register-tiled:
// each output tile is held in accumulator registers across the whole
// k-block instead of being streamed through memory on every k step. Per
// output element this is the exact operation sequence of the original
// saxpy loop — the same mul-then-add pairs, over the same aval != 0
// subsequence of k, in the same ascending order; only the intermediate
// loads/stores of the output row disappear, and those never round. Every
// level therefore produces the same bits as the pre-SIMD kernel, for
// every thread count. What the tiling buys is breaking the loop-carried
// store-to-load dependency the saxpy form had (~10 cycles per k step
// through the store buffer, vs one add latency per independent
// accumulator) — on the model's small GEMMs this was the single largest
// cost in an end-to-end forward. The width-1 scalar policy keeps the
// original p-outer saxpy shape (same bits again): at one float per
// "vector" the tiles would walk B column-wise with a sparsity branch per
// tile instead of per k step, which measured ~1.4x slower than the
// seed loop it is required to reproduce.
template <typename V>
void MatMulForwardRangeT(const float* __restrict av, const float* __restrict bv,
                         float* __restrict ov, int i0, int i1, int k, int n) {
  constexpr int L = V::kLanes;
  for (int p0 = 0; p0 < k; p0 += kSimdMatMulKC) {
    const int p1 = std::min(k, p0 + kSimdMatMulKC);
    for (int j0 = 0; j0 < n; j0 += kSimdMatMulNC) {
      const int j1 = std::min(n, j0 + kSimdMatMulNC);
      for (int i = i0; i < i1; ++i) {
        const float* __restrict arow = av + static_cast<size_t>(i) * k;
        float* __restrict orow = ov + static_cast<size_t>(i) * n;
        if constexpr (L == 1) {
          for (int p = p0; p < p1; ++p) {
            const float aval = arow[p];
            if (aval == 0.0f) continue;  // Relu outputs are often sparse
            const float* __restrict brow = bv + static_cast<size_t>(p) * n;
            for (int j = j0; j < j1; ++j) orow[j] += aval * brow[j];
          }
          continue;
        }
        int j = j0;
        // 4-vector tiles: 4 independent accumulator chains in flight.
        for (; j + 4 * L <= j1; j += 4 * L) {
          auto a0 = V::Load(orow + j);
          auto a1 = V::Load(orow + j + L);
          auto a2 = V::Load(orow + j + 2 * L);
          auto a3 = V::Load(orow + j + 3 * L);
          for (int p = p0; p < p1; ++p) {
            const float aval = arow[p];
            if (aval == 0.0f) continue;  // Relu outputs are often sparse
            const float* __restrict brow =
                bv + static_cast<size_t>(p) * n + j;
            const auto va = V::Broadcast(aval);
            a0 = V::Add(a0, V::Mul(va, V::Load(brow)));
            a1 = V::Add(a1, V::Mul(va, V::Load(brow + L)));
            a2 = V::Add(a2, V::Mul(va, V::Load(brow + 2 * L)));
            a3 = V::Add(a3, V::Mul(va, V::Load(brow + 3 * L)));
          }
          V::Store(orow + j, a0);
          V::Store(orow + j + L, a1);
          V::Store(orow + j + 2 * L, a2);
          V::Store(orow + j + 3 * L, a3);
        }
        // 2-vector and 1-vector remainder tiles.
        for (; j + 2 * L <= j1; j += 2 * L) {
          auto a0 = V::Load(orow + j);
          auto a1 = V::Load(orow + j + L);
          for (int p = p0; p < p1; ++p) {
            const float aval = arow[p];
            if (aval == 0.0f) continue;
            const float* __restrict brow =
                bv + static_cast<size_t>(p) * n + j;
            const auto va = V::Broadcast(aval);
            a0 = V::Add(a0, V::Mul(va, V::Load(brow)));
            a1 = V::Add(a1, V::Mul(va, V::Load(brow + L)));
          }
          V::Store(orow + j, a0);
          V::Store(orow + j + L, a1);
        }
        for (; j + L <= j1; j += L) {
          auto a0 = V::Load(orow + j);
          for (int p = p0; p < p1; ++p) {
            const float aval = arow[p];
            if (aval == 0.0f) continue;
            a0 = V::Add(a0, V::Mul(V::Broadcast(aval),
                                   V::Load(bv + static_cast<size_t>(p) * n + j)));
          }
          V::Store(orow + j, a0);
        }
        for (; j < j1; ++j) {
          float acc = orow[j];
          for (int p = p0; p < p1; ++p) {
            const float aval = arow[p];
            if (aval == 0.0f) continue;
            acc += aval * bv[static_cast<size_t>(p) * n + j];
          }
          orow[j] = acc;
        }
      }
    }
  }
}

// out = max(a + bias, 0): elementwise, so vector lanes are bit-identical
// to the scalar loop.
template <typename V>
void BiasReluT(const float* __restrict av, const float* __restrict bv,
               float* __restrict ov, int m, int n) {
  constexpr int L = V::kLanes;
  const int nv = (n / L) * L;
  const auto zero = V::Broadcast(0.0f);
  for (int r = 0; r < m; ++r) {
    const float* __restrict arow = av + static_cast<size_t>(r) * n;
    float* __restrict orow = ov + static_cast<size_t>(r) * n;
    int c = 0;
    for (; c < nv; c += L) {
      V::Store(orow + c,
               V::Max(V::Add(V::Load(arow + c), V::Load(bv + c)), zero));
    }
    for (; c < n; ++c) {
      const float s = arow[c] + bv[c];
      orow[c] = s > 0 ? s : 0.0f;
    }
  }
}

// y = ((x - mean) * recip) * gamma + beta. Stats stay scalar (reductions);
// the normalize pass is elementwise and vectorizes bit-identically.
template <typename V>
void LayerNormRowsT(const float* __restrict xv, const float* __restrict gv,
                    const float* __restrict bv, float* __restrict ov, int m,
                    int n, float invn) {
  constexpr int L = V::kLanes;
  const int nv = (n / L) * L;
  for (int r = 0; r < m; ++r) {
    const float* __restrict xrow = xv + static_cast<size_t>(r) * n;
    float* __restrict orow = ov + static_cast<size_t>(r) * n;
    float mean, recip;
    LayerNormRowStats(xrow, n, invn, &mean, &recip);
    const auto vmean = V::Broadcast(mean);
    const auto vrecip = V::Broadcast(recip);
    int c = 0;
    for (; c < nv; c += L) {
      const auto xhat = V::Mul(V::Sub(V::Load(xrow + c), vmean), vrecip);
      V::Store(orow + c, V::Add(V::Mul(xhat, V::Load(gv + c)), V::Load(bv + c)));
    }
    for (; c < n; ++c) {
      orow[c] = ((xrow[c] - mean) * recip) * gv[c] + bv[c];
    }
  }
}

// Masked row softmax over the first valid[r] columns. The max reduction
// vectorizes (exact) and exp vectorizes through V::Exp (scalar level:
// std::exp, bit-exact to seed; vector levels: polynomial, epsilon-gated);
// the normalizing sum stays scalar in ascending order over the stored exp
// values, and the final divide is elementwise.
template <typename V>
void SoftmaxRowsMaskedT(const float* __restrict av, float* __restrict ov,
                        const int* __restrict valid, int m, int n) {
  constexpr int L = V::kLanes;
  for (int r = 0; r < m; ++r) {
    const int v = std::min(std::max(valid[r], 0), n);
    const float* __restrict row = av + static_cast<size_t>(r) * n;
    float* __restrict orow = ov + static_cast<size_t>(r) * n;
    if (v == 0) continue;  // row already zero
    float max_v = row[0];
    int c = 1;
    if (v >= L) {
      auto vmax = V::Load(row);
      for (c = L; c + L <= v; c += L) vmax = V::Max(vmax, V::Load(row + c));
      max_v = V::HMax(vmax);
    }
    for (; c < v; ++c) max_v = std::max(max_v, row[c]);
    const int cv = (v / L) * L;
    {
      const auto vm = V::Broadcast(max_v);
      int j = 0;
      for (; j < cv; j += L) {
        V::Store(orow + j, V::Exp(V::Sub(V::Load(row + j), vm)));
      }
      for (; j < v; ++j) orow[j] = std::exp(row[j] - max_v);
    }
    float total = 0;
    for (int j = 0; j < v; ++j) total += orow[j];
    const auto vtotal = V::Broadcast(total);
    int j = 0;
    for (; j < cv; j += L) V::Store(orow + j, V::Div(V::Load(orow + j), vtotal));
    for (; j < v; ++j) orow[j] /= total;
  }
}

// Fused packed multi-head attention forward (semantics documented at
// nn::MultiHeadAttentionPacked). The score and context loops are
// axpy-shaped and vectorize across their independent output lanes; the
// softmax inside follows the same max-vector/exp-via-V::Exp/sum-scalar
// split as SoftmaxRowsMaskedT.
template <typename V>
void AttentionForwardPackedT(const float* __restrict qv,
                             const float* __restrict kv,
                             const float* __restrict vv, float* __restrict ov,
                             const int* __restrict offsets,
                             const int* __restrict lengths, int num_seqs,
                             int num_heads, int dim, float scale) {
  constexpr int L = V::kLanes;
  const int dh = dim / num_heads;
  const int dhv = (dh / L) * L;
  std::vector<float> probs;  // per-(sequence, head) [len, len] scratch
  std::vector<float> kt;     // packed k^T head block, [dh, len]
  for (int s = 0; s < num_seqs; ++s) {
    const int off = offsets[s];
    const int len = lengths[s];
    const int lenv = (len / L) * L;
    probs.resize(static_cast<size_t>(len) * len);
    kt.resize(static_cast<size_t>(dh) * len);
    for (int h = 0; h < num_heads; ++h) {
      const int col0 = h * dh;
      // Pack the head's key block transposed so the score loops run
      // saxpy-style over a contiguous j dimension.
      for (int j = 0; j < len; ++j) {
        const float* __restrict krow =
            kv + static_cast<size_t>(off + j) * dim + col0;
        for (int c = 0; c < dh; ++c) {
          kt[static_cast<size_t>(c) * len + j] = krow[c];
        }
      }
      // Scores then row softmax: ascending-c accumulation scaled once
      // after the sum, then max/exp/sum/divide per row — the same
      // arithmetic as Scale(MatMul(qh, Transpose(kh)), scale) and
      // SoftmaxRows, element for element.
      for (int i = 0; i < len; ++i) {
        const float* __restrict qrow =
            qv + static_cast<size_t>(off + i) * dim + col0;
        float* __restrict prow = probs.data() + static_cast<size_t>(i) * len;
        // Scores q·k, register-tiled over j like MatMulForwardRangeT: the
        // per-element sum still accumulates ascending c from zero, so the
        // bits match the old zero-then-axpy form at every level. The
        // scalar policy keeps the axpy shape (identical bits, better
        // locality at width 1 — same reasoning as MatMulForwardRangeT).
        if constexpr (L == 1) {
          for (int j = 0; j < len; ++j) prow[j] = 0.0f;
          for (int c = 0; c < dh; ++c) {
            const float qc = qrow[c];
            const float* __restrict ktrow =
                kt.data() + static_cast<size_t>(c) * len;
            for (int j = 0; j < len; ++j) prow[j] += qc * ktrow[j];
          }
        } else {
          const float* __restrict ktv = kt.data();
          const auto zero = V::Broadcast(0.0f);
          int j = 0;
          for (; j + 2 * L <= len; j += 2 * L) {
            auto a0 = zero;
            auto a1 = zero;
            for (int c = 0; c < dh; ++c) {
              const float* __restrict ktrow =
                  ktv + static_cast<size_t>(c) * len + j;
              const auto vq = V::Broadcast(qrow[c]);
              a0 = V::Add(a0, V::Mul(vq, V::Load(ktrow)));
              a1 = V::Add(a1, V::Mul(vq, V::Load(ktrow + L)));
            }
            V::Store(prow + j, a0);
            V::Store(prow + j + L, a1);
          }
          for (; j + L <= len; j += L) {
            auto a0 = zero;
            for (int c = 0; c < dh; ++c) {
              a0 = V::Add(a0, V::Mul(V::Broadcast(qrow[c]),
                                     V::Load(ktv + static_cast<size_t>(c) * len +
                                             j)));
            }
            V::Store(prow + j, a0);
          }
          for (; j < len; ++j) {
            float acc = 0;
            for (int c = 0; c < dh; ++c) {
              acc += qrow[c] * ktv[static_cast<size_t>(c) * len + j];
            }
            prow[j] = acc;
          }
        }
        // Scale all scores, then take the row max (exact reduction).
        {
          const auto vs = V::Broadcast(scale);
          int j = 0;
          for (; j < lenv; j += L) {
            V::Store(prow + j, V::Mul(V::Load(prow + j), vs));
          }
          for (; j < len; ++j) prow[j] *= scale;
        }
        float max_v = prow[0];
        {
          int j = 1;
          if (len >= L) {
            auto vmax = V::Load(prow);
            for (j = L; j + L <= len; j += L) {
              vmax = V::Max(vmax, V::Load(prow + j));
            }
            max_v = V::HMax(vmax);
          }
          for (; j < len; ++j) max_v = std::max(max_v, prow[j]);
        }
        {
          const auto vm = V::Broadcast(max_v);
          int j = 0;
          for (; j < lenv; j += L) {
            V::Store(prow + j, V::Exp(V::Sub(V::Load(prow + j), vm)));
          }
          for (; j < len; ++j) prow[j] = std::exp(prow[j] - max_v);
        }
        float sum = 0;
        for (int j = 0; j < len; ++j) sum += prow[j];
        {
          const auto vsum = V::Broadcast(sum);
          int j = 0;
          for (; j < lenv; j += L) {
            V::Store(prow + j, V::Div(V::Load(prow + j), vsum));
          }
          for (; j < len; ++j) prow[j] /= sum;
        }
      }
      // Context = probs * vh: j-outer saxpy over the contiguous c lanes of
      // v; per element this accumulates ascending j, exactly like
      // MatMul(probs, vh).
      for (int i = 0; i < len; ++i) {
        const float* __restrict prow =
            probs.data() + static_cast<size_t>(i) * len;
        float* __restrict orow = ov + static_cast<size_t>(off + i) * dim + col0;
        // Context probs * vh, register-tiled over the head lanes c: the
        // per-element sum accumulates ascending j from zero, exactly like
        // the old zero-then-axpy form. The scalar policy keeps the axpy
        // shape (identical bits, better locality at width 1).
        if constexpr (L == 1) {
          for (int c = 0; c < dh; ++c) orow[c] = 0.0f;
          for (int j = 0; j < len; ++j) {
            const float p = prow[j];
            const float* __restrict vrow =
                vv + static_cast<size_t>(off + j) * dim + col0;
            for (int c = 0; c < dh; ++c) orow[c] += p * vrow[c];
          }
        } else {
          const auto zero = V::Broadcast(0.0f);
          int c = 0;
          for (; c < dhv; c += L) {
            auto a0 = zero;
            for (int j = 0; j < len; ++j) {
              a0 = V::Add(a0, V::Mul(V::Broadcast(prow[j]),
                                     V::Load(vv + static_cast<size_t>(off + j) *
                                                      dim +
                                             col0 + c)));
            }
            V::Store(orow + c, a0);
          }
          for (; c < dh; ++c) {
            float acc = 0;
            for (int j = 0; j < len; ++j) {
              acc +=
                  prow[j] * vv[static_cast<size_t>(off + j) * dim + col0 + c];
            }
            orow[c] = acc;
          }
        }
      }
    }
  }
}

}  // namespace qpe::nn::simd

#endif  // QPE_NN_SIMD_KERNELS_INL_H_
